type t = {
  rate : float;
  burst : float;
  mutable tokens : float;
  mutable last : float;
}

let create ~rate ~burst ~now =
  let rate = if rate <= 0. then infinity else rate in
  let burst = if burst <= 0. then 1. else burst in
  { rate; burst; tokens = burst; last = now }

let refill t ~now =
  let now = if now < t.last then t.last else now in
  (* unlimited stays pinned at burst: (now - last) * infinity is NaN
     when the elapsed time is zero *)
  if t.rate = infinity then t.tokens <- t.burst
  else t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last) *. t.rate));
  t.last <- now

let take t ~now n =
  refill t ~now;
  t.tokens <- t.tokens -. n

let ready t ~now =
  refill t ~now;
  t.tokens >= 0.

let delay t ~now =
  refill t ~now;
  if t.tokens >= 0. then 0.
  else if t.rate = infinity then 0.
  else -.t.tokens /. t.rate

let tokens t ~now =
  refill t ~now;
  t.tokens
