(** CRC-32 (IEEE 802.3 / zlib polynomial, reflected, init and final
    xor [0xFFFFFFFF]) over byte ranges. Used by the durable stream
    store to checksum record bodies; table-driven, no dependencies.
    Values are returned in the low 32 bits of an [int] (the OCaml
    [int] is 63-bit on every platform we target). *)

val digest : ?crc:int -> Bytes.t -> pos:int -> len:int -> int
(** [digest b ~pos ~len] is the CRC-32 of [len] bytes of [b] starting
    at [pos]. Pass [?crc] (a previous result) to continue a running
    checksum across chunks. Raises [Invalid_argument] if the range is
    out of bounds. *)

val string : ?crc:int -> string -> int
(** [string s] is [digest] over all of [s]. *)
