(** SHA-256 (FIPS 180-4) and HMAC-SHA256 (RFC 2104), pure OCaml.

    Small and dependency-free on purpose: the relay's authenticated
    frame mode needs a keyed MAC and the container ships no crypto
    library. Throughput is a few hundred MB/s on the int32 path — far
    above what the frame sizes here require. Not constant-time in the
    digest itself (inputs are not secret); MAC comparison should use
    {!equal_constant_time}. *)

(* round constants: first 32 bits of the fractional parts of the cube
   roots of the first 64 primes *)
let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl
   ; 0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l
   ; 0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l
   ; 0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl
   ; 0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l
   ; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l
   ; 0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl
   ; 0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l
   ; 0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l
   ; 0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l
   ; 0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl
   ; 0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l
   ; 0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
let ( +% ) = Int32.add
let ( ^% ) = Int32.logxor
let ( &% ) = Int32.logand

type ctx = {
  h : int32 array;  (** running hash state, 8 words *)
  block : Bytes.t;  (** 64-byte working block *)
  mutable fill : int;  (** bytes currently in [block] *)
  mutable total : int64;  (** message length so far, bytes *)
  w : int32 array;  (** message schedule scratch, 64 words *)
}

let init () : ctx =
  { h =
      [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl
       ; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |]
  ; block = Bytes.create 64; fill = 0; total = 0L; w = Array.make 64 0l }

let compress (c : ctx) (blk : Bytes.t) (off : int) : unit =
  let w = c.w in
  for i = 0 to 15 do
    w.(i) <- Bytes.get_int32_be blk (off + (4 * i))
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 ^% rotr w.(i - 15) 18
             ^% Int32.shift_right_logical w.(i - 15) 3 in
    let s1 = rotr w.(i - 2) 17 ^% rotr w.(i - 2) 19
             ^% Int32.shift_right_logical w.(i - 2) 10 in
    w.(i) <- w.(i - 16) +% s0 +% w.(i - 7) +% s1
  done;
  let a = ref c.h.(0) and b = ref c.h.(1) and cc = ref c.h.(2)
  and d = ref c.h.(3) and e = ref c.h.(4) and f = ref c.h.(5)
  and g = ref c.h.(6) and h = ref c.h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 ^% rotr !e 11 ^% rotr !e 25 in
    let ch = (!e &% !f) ^% (Int32.lognot !e &% !g) in
    let t1 = !h +% s1 +% ch +% k.(i) +% w.(i) in
    let s0 = rotr !a 2 ^% rotr !a 13 ^% rotr !a 22 in
    let maj = (!a &% !b) ^% (!a &% !cc) ^% (!b &% !cc) in
    let t2 = s0 +% maj in
    h := !g; g := !f; f := !e; e := !d +% t1;
    d := !cc; cc := !b; b := !a; a := t1 +% t2
  done;
  c.h.(0) <- c.h.(0) +% !a; c.h.(1) <- c.h.(1) +% !b;
  c.h.(2) <- c.h.(2) +% !cc; c.h.(3) <- c.h.(3) +% !d;
  c.h.(4) <- c.h.(4) +% !e; c.h.(5) <- c.h.(5) +% !f;
  c.h.(6) <- c.h.(6) +% !g; c.h.(7) <- c.h.(7) +% !h

let feed_bytes (c : ctx) (data : Bytes.t) (off : int) (len : int) : unit =
  if off < 0 || len < 0 || off + len > Bytes.length data then
    invalid_arg "Sha256.feed";
  c.total <- Int64.add c.total (Int64.of_int len);
  let off = ref off and len = ref len in
  (* top up a partial block first *)
  if c.fill > 0 then begin
    let take = min !len (64 - c.fill) in
    Bytes.blit data !off c.block c.fill take;
    c.fill <- c.fill + take;
    off := !off + take;
    len := !len - take;
    if c.fill = 64 then begin
      compress c c.block 0;
      c.fill <- 0
    end
  end;
  while !len >= 64 do
    compress c data !off;
    off := !off + 64;
    len := !len - 64
  done;
  if !len > 0 then begin
    Bytes.blit data !off c.block c.fill !len;
    c.fill <- c.fill + !len
  end

let feed (c : ctx) (s : string) : unit =
  feed_bytes c (Bytes.unsafe_of_string s) 0 (String.length s)

let finish (c : ctx) : string =
  let bitlen = Int64.mul c.total 8L in
  (* pad: 0x80, zeros to 56 mod 64, then the 64-bit bit length *)
  Bytes.set c.block c.fill '\x80';
  c.fill <- c.fill + 1;
  if c.fill > 56 then begin
    Bytes.fill c.block c.fill (64 - c.fill) '\x00';
    compress c c.block 0;
    c.fill <- 0
  end;
  Bytes.fill c.block c.fill (56 - c.fill) '\x00';
  Bytes.set_int64_be c.block 56 bitlen;
  compress c c.block 0;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    Bytes.set_int32_be out (4 * i) c.h.(i)
  done;
  Bytes.unsafe_to_string out

let digest (s : string) : string =
  let c = init () in
  feed c s;
  finish c

let digest_bytes (b : Bytes.t) (off : int) (len : int) : string =
  let c = init () in
  feed_bytes c b off len;
  finish c

let hex (s : string) : string =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun ch -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code ch))) s;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* HMAC (RFC 2104)                                                      *)
(* ------------------------------------------------------------------ *)

let block_size = 64

let hmac ~(key : string) (msg : string) : string =
  let key = if String.length key > block_size then digest key else key in
  let pad fill =
    let b = Bytes.make block_size fill in
    String.iteri
      (fun i ch -> Bytes.set b i (Char.chr (Char.code ch lxor Char.code fill)))
      key;
    Bytes.unsafe_to_string b
  in
  let inner = init () in
  feed inner (pad '\x36');
  feed inner msg;
  let c = init () in
  feed c (pad '\x5c');
  feed c (finish inner);
  finish c

(** Timing-safe equality for MAC comparison. *)
let equal_constant_time (a : string) (b : string) : bool =
  String.length a = String.length b
  &&
  let acc = ref 0 in
  String.iteri
    (fun i ch -> acc := !acc lor (Char.code ch lxor Char.code b.[i]))
    a;
  !acc = 0
