type t = { buf : Bytes.t; off : int; len : int }

let make (buf : Bytes.t) (off : int) (len : int) : t =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg
      (Printf.sprintf "Slice.make: window [%d,%d) escapes buffer of %d" off
         (off + len) (Bytes.length buf));
  { buf; off; len }

let of_bytes ?(off = 0) ?len (buf : Bytes.t) : t =
  match (off, len) with
  | 0, None -> { buf; off = 0; len = Bytes.length buf }
  | off, len ->
    let len = match len with Some l -> l | None -> Bytes.length buf - off in
    if off < 0 || len < 0 || off + len > Bytes.length buf then
      invalid_arg
        (Printf.sprintf "Slice.of_bytes: window [%d,%d) escapes buffer of %d"
           off (off + len) (Bytes.length buf));
    { buf; off; len }
let of_string (s : string) : t = of_bytes (Bytes.of_string s)
let empty = { buf = Bytes.empty; off = 0; len = 0 }
let length (s : t) = s.len
let is_empty (s : t) = s.len = 0

let get (s : t) (i : int) : char =
  if i < 0 || i >= s.len then invalid_arg "Slice.get: out of bounds";
  Bytes.unsafe_get s.buf (s.off + i)

let sub (s : t) (off : int) (len : int) : t =
  if off < 0 || len < 0 || off + len > s.len then
    invalid_arg
      (Printf.sprintf "Slice.sub: window [%d,%d) escapes slice of %d" off
         (off + len) s.len);
  { buf = s.buf; off = s.off + off; len }

let blit (s : t) (dst : Bytes.t) (dpos : int) : unit =
  Bytes.blit s.buf s.off dst dpos s.len

let to_bytes (s : t) : Bytes.t = Bytes.sub s.buf s.off s.len
let to_string (s : t) : string = Bytes.sub_string s.buf s.off s.len
let total (l : t list) : int = List.fold_left (fun a s -> a + s.len) 0 l

let concat (l : t list) : Bytes.t =
  let b = Bytes.create (total l) in
  let pos = ref 0 in
  List.iter
    (fun s ->
      blit s b !pos;
      pos := !pos + s.len)
    l;
  b

let equal_bytes (s : t) (b : Bytes.t) : bool =
  s.len = Bytes.length b
  &&
  let rec go i = i >= s.len || (get s i = Bytes.get b i && go (i + 1)) in
  go 0
