(* Reflected CRC-32, polynomial 0xEDB88320 (IEEE / zlib). The table is
   built once at module init; lookups stay in the low 32 bits so the
   result fits a native int everywhere. *)

let mask = 0xFFFFFFFF

let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
    done;
    t.(n) <- !c land mask
  done;
  t

let digest ?(crc = 0) (b : Bytes.t) ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.digest";
  let c = ref (crc lxor mask) in
  for i = pos to pos + len - 1 do
    let byte = Char.code (Bytes.unsafe_get b i) in
    c := table.((!c lxor byte) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor mask land mask

let string ?crc s =
  digest ?crc (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
