(** SHA-256 (FIPS 180-4) and HMAC-SHA256 (RFC 2104), pure OCaml — the
    keyed-MAC substrate for the relay's authenticated frame mode. *)

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx
val feed : ctx -> string -> unit
val feed_bytes : ctx -> Bytes.t -> int -> int -> unit
val finish : ctx -> string
(** The 32-byte raw digest. The context must not be reused after. *)

val digest : string -> string
(** One-shot 32-byte raw digest. *)

val digest_bytes : Bytes.t -> int -> int -> string

val hex : string -> string
(** Lowercase hex of a raw digest. *)

val hmac : key:string -> string -> string
(** [hmac ~key msg] is the 32-byte raw HMAC-SHA256 tag. Keys longer
    than the 64-byte block are hashed first, per RFC 2104. *)

val equal_constant_time : string -> string -> bool
(** Length + content equality without early exit on mismatch — use for
    MAC tag comparison. *)
