type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 16

let cell (t : t) name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t name r;
    r

let incr t ?(by = 1) name =
  let r = cell t name in
  r := !r + by

let set t name v = cell t name := v
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let dump t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_text t =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%s %d\n" name v))
    (dump t);
  Buffer.contents b

let of_text s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         match String.index_opt line ' ' with
         | None -> None
         | Some i ->
           let name = String.sub line 0 i in
           let v = String.sub line (i + 1) (String.length line - i - 1) in
           (match int_of_string_opt (String.trim v) with
           | Some v when name <> "" -> Some (name, v)
           | _ -> None))
