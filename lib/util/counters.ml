type t = {
  mu : Mutex.t;
  tbl : (string, int ref) Hashtbl.t;
}

let create () : t = { mu = Mutex.create (); tbl = Hashtbl.create 16 }

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
    Mutex.unlock t.mu;
    v
  | exception e ->
    Mutex.unlock t.mu;
    raise e

let cell t name =
  match Hashtbl.find_opt t.tbl name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.tbl name r;
    r

let incr t ?(by = 1) name =
  locked t (fun () ->
      let r = cell t name in
      r := !r + by)

let set t name v = locked t (fun () -> cell t name := v)

(* Histograms are encoded as plain counters under the reserved "hist."
   group so they ride every existing transport for free (STATS text,
   [merged] across shards, [of_text]): cumulative buckets
   "hist.<name>.le_<bound>" (zero-padded so sorted = numeric order),
   "hist.<name>.le_inf", plus "hist.<name>.count" / "hist.<name>.sum".
   Summing two snapshots bucket-wise is exactly histogram merge. *)
let default_bounds =
  [50; 100; 250; 500; 1000; 2500; 5000; 10000; 25000; 50000; 100000; 250000; 1000000]

let bucket_key name bound = Printf.sprintf "hist.%s.le_%09d" name bound

let observe t ?(bounds = default_bounds) name v =
  locked t (fun () ->
      List.iter
        (fun bound ->
          if v <= bound then Stdlib.incr (cell t (bucket_key name bound)))
        bounds;
      Stdlib.incr (cell t (Printf.sprintf "hist.%s.le_inf" name));
      Stdlib.incr (cell t (Printf.sprintf "hist.%s.count" name));
      let sum = cell t (Printf.sprintf "hist.%s.sum" name) in
      sum := !sum + v)
let remove t name = locked t (fun () -> Hashtbl.remove t.tbl name)

let get t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with Some r -> !r | None -> 0)

let dump t =
  locked t (fun () -> Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merged (ts : t list) : (string * int) list =
  let acc = Hashtbl.create 32 in
  List.iter
    (fun t ->
      List.iter
        (fun (name, v) ->
          match Hashtbl.find_opt acc name with
          | Some r -> r := !r + v
          | None -> Hashtbl.replace acc name (ref v))
        (dump t))
    ts;
  Hashtbl.fold (fun name r l -> (name, !r) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_text t =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%s %d\n" name v))
    (dump t);
  Buffer.contents b

let of_text s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         match String.index_opt line ' ' with
         | None -> None
         | Some i ->
           let name = String.sub line 0 i in
           let v = String.sub line (i + 1) (String.length line - i - 1) in
           (match int_of_string_opt (String.trim v) with
           | Some v when name <> "" -> Some (name, v)
           | _ -> None))

let metric_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
  | _ -> '_'

(* Per-subject gauges are named "<group>.<subject>.<metric>" internally
   (e.g. "stream.flights.queue_depth", "mirror.flights.lag_frames");
   Prometheus wants the subject as a label, not baked into the metric
   name, so same-metric series aggregate across streams. The first and
   last dot-separated segments are group and metric (neither ever
   contains a dot); everything between is the subject verbatim — stream
   names may themselves contain dots. *)
let split_labeled (name : string) : (string * string * string) option =
  match String.index_opt name '.' with
  | None -> None
  | Some i -> (
    match String.rindex_opt name '.' with
    | Some j when j > i ->
      Some
        ( String.sub name 0 i
        , String.sub name (i + 1) (j - i - 1)
        , String.sub name (j + 1) (String.length name - j - 1) )
    | _ -> None)

let label_escape (s : string) : string =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* "le_000000250" -> "250"; "le_inf" -> "+Inf". *)
let le_label (metric : string) : string =
  let digits = String.sub metric 3 (String.length metric - 3) in
  if digits = "inf" then "+Inf"
  else
    let n = String.length digits in
    let i = ref 0 in
    while !i < n - 1 && digits.[!i] = '0' do
      Stdlib.incr i
    done;
    String.sub digits !i (n - !i)

(* Scrape-to-scrape memory for staleness marks: the value of every
   series at the previous render, keyed by component + series name
   (one tracker may serve several components, e.g. relay + mirror
   behind one /metrics). *)
type staleness = (string, int) Hashtbl.t

let staleness () : staleness = Hashtbl.create 64

let prometheus ?staleness:(tracker : staleness option) ~component
    (snapshot : (string * int) list) : string =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      Buffer.add_string b "omf_";
      Buffer.add_string b (String.map metric_char component);
      Buffer.add_char b '_';
      (match split_labeled name with
      | Some ("hist", hname, metric) ->
        Buffer.add_string b (String.map metric_char hname);
        if String.length metric > 3 && String.sub metric 0 3 = "le_" then (
          Buffer.add_string b "_bucket{le=\"";
          Buffer.add_string b (le_label metric);
          Buffer.add_string b "\"}")
        else (
          Buffer.add_char b '_';
          Buffer.add_string b (String.map metric_char metric))
      | Some (group, subject, metric) ->
        Buffer.add_string b (String.map metric_char group);
        Buffer.add_char b '_';
        Buffer.add_string b (String.map metric_char metric);
        Buffer.add_string b "{stream=\"";
        Buffer.add_string b (label_escape subject);
        Buffer.add_string b "\"}"
      | None -> Buffer.add_string b (String.map metric_char name));
      Buffer.add_string b (Printf.sprintf " %d\n" v))
    snapshot;
  (match tracker with
  | None -> ()
  | Some prev ->
    (* A series is stale when this scrape sees the same value as the
       previous one; series first seen this scrape count as fresh. *)
    let stale = ref 0 in
    List.iter
      (fun (name, v) ->
        let key = component ^ "\x00" ^ name in
        (match Hashtbl.find_opt prev key with
        | Some old when old = v -> Stdlib.incr stale
        | _ -> ());
        Hashtbl.replace prev key v)
      snapshot;
    Buffer.add_string b
      (Printf.sprintf
         "# staleness: %s: %d of %d series unchanged since previous scrape\n"
         component !stale (List.length snapshot));
    Buffer.add_string b
      (Printf.sprintf "omf_%s_stale %d\n" (String.map metric_char component)
         !stale));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Push-gateway mode                                                    *)
(* ------------------------------------------------------------------ *)

(* "http://host[:port]/path" -> (host, port, path). Hand-rolled on raw
   sockets because omf_util sits below omf_httpd in the library stack —
   the HTTP client lives up there and cannot be used from here. *)
let parse_push_url (url : string) : (string * int * string, string) result =
  let prefix = "http://" in
  let pl = String.length prefix in
  if String.length url <= pl || String.sub url 0 pl <> prefix then
    Error (Printf.sprintf "push: unsupported url %S (want http://...)" url)
  else
    let rest = String.sub url pl (String.length url - pl) in
    let hostport, path =
      match String.index_opt rest '/' with
      | Some i ->
        (String.sub rest 0 i, String.sub rest i (String.length rest - i))
      | None -> (rest, "/metrics/job/omf")
    in
    match String.index_opt hostport ':' with
    | Some i -> (
      let host = String.sub hostport 0 i in
      match
        int_of_string_opt
          (String.sub hostport (i + 1) (String.length hostport - i - 1))
      with
      | Some port when host <> "" && port > 0 -> Ok (host, port, path)
      | _ -> Error (Printf.sprintf "push: malformed host:port in %S" url))
    | None ->
      if hostport = "" then Error (Printf.sprintf "push: no host in %S" url)
      else Ok (hostport, 80, path)

(** One-shot POST of Prometheus text to [url] — push-gateway mode for
    short-lived tools (relay_loadgen, the bench harness) whose
    counters would vanish before any scrape. Blocking, bounded by
    [timeout_s] on connect and I/O; all failures come back as
    [Error msg] (a metrics push must never kill the tool). *)
let push ?(timeout_s = 2.0) ~url
    (sources : (string * (string * int) list) list) : (unit, string) result =
  match parse_push_url url with
  | Error _ as e -> e
  | Ok (host, port, path) -> (
    let body =
      String.concat ""
        (List.map
           (fun (component, snapshot) -> prometheus ~component snapshot)
           sources)
    in
    match
      let addr =
        match (Unix.getaddrinfo host (string_of_int port)
                 [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ])
        with
        | { Unix.ai_addr; _ } :: _ -> ai_addr
        | [] -> failwith (Printf.sprintf "push: cannot resolve %s" host)
      in
      let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
      Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
      @@ fun () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
      Unix.connect fd addr;
      let req =
        Printf.sprintf
          "POST %s HTTP/1.1\r\nHost: %s:%d\r\nContent-Type: text/plain; \
           version=0.0.4\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
          path host port (String.length body) body
      in
      let rec write off =
        if off < String.length req then
          let n =
            Unix.write_substring fd req off (String.length req - off)
          in
          write (off + n)
      in
      write 0;
      let buf = Bytes.create 256 in
      let n = Unix.read fd buf 0 (Bytes.length buf) in
      let status = Bytes.sub_string buf 0 (max 0 n) in
      (* "HTTP/1.x NNN ..." — accept any 2xx *)
      if n >= 12 && String.length status >= 12 && status.[9] = '2' then ()
      else
        failwith
          (Printf.sprintf "push: %s refused: %s" url
             (match String.index_opt status '\r' with
             | Some i -> String.sub status 0 i
             | None -> status))
    with
    | () -> Ok ()
    | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "push %s: %s: %s" url fn (Unix.error_message e))
    | exception Failure m -> Error m
    | exception e -> Error (Printexc.to_string e))
