(** Named monotonic counters: the cheap observability substrate used by
    long-running servers (the relay daemon's STATS reply, the load
    generator's report, the `/metrics` endpoint). Thread-safe: each
    table carries a mutex so relay shards running on separate domains
    can be snapshotted ({!dump}, {!merged}) from any thread while their
    loops keep counting. *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** [incr t name] adds [by] (default 1) to [name], creating it at 0. *)

val set : t -> string -> int -> unit
(** [set t name v] overwrites [name] with [v] — the gauge primitive
    (queue depths, store segment/byte totals) next to the monotonic
    {!incr}. *)

val observe : t -> ?bounds:int list -> string -> int -> unit
(** [observe t name v] records one sample in the histogram [name]
    (e.g. a latency in microseconds). Histograms are stored as plain
    counters under the reserved ["hist."] group — cumulative buckets
    ["hist.<name>.le_<bound>"] (zero-padded), ["hist.<name>.le_inf"],
    ["hist.<name>.count"] and ["hist.<name>.sum"] — so they flow
    through {!dump}, {!to_text} and {!merged} unchanged, and summing
    per-shard snapshots merges histograms bucket-wise. [bounds] are the
    inclusive upper bounds, ascending ({!default_bounds} when omitted);
    every call site for a given [name] must use the same bounds. *)

val default_bounds : int list
(** 50 .. 1_000_000 — microsecond-scale latency buckets. *)

val remove : t -> string -> unit
(** Drop a gauge whose subject went away (e.g. a stream whose store
    segments were all retired); no-op if absent. *)

val get : t -> string -> int
(** 0 for counters never touched. *)

val dump : t -> (string * int) list
(** All counters, sorted by name. *)

val merged : t list -> (string * int) list
(** Sum same-named counters across tables (per-shard totals into one
    view), sorted by name. *)

val to_text : t -> string
(** One ["name value\n"] line per counter, sorted — the STATS wire body. *)

val of_text : string -> (string * int) list
(** Parse {!to_text} output (unparseable lines are skipped). *)

type staleness
(** Scrape-to-scrape memory for {!prometheus} staleness marks. *)

val staleness : unit -> staleness
(** A fresh tracker; share one across every component rendered behind
    the same scrape endpoint. *)

val prometheus :
  ?staleness:staleness -> component:string -> (string * int) list -> string
(** Render a snapshot in Prometheus text exposition format, one
    [omf_<component>_<name> <value>] line per counter; characters
    outside [[a-zA-Z0-9_]] in [component] or names become ['_'].

    Per-subject gauges named [<group>.<subject>.<metric>] (the relay's
    ["stream.flights.queue_depth"], the mirror's
    ["mirror.flights.lag_frames"]) render with the subject as a label —
    [omf_<component>_<group>_<metric>{stream="<subject>"}] — so one
    metric aggregates across streams. The subject is the text between
    the first and last dot and may itself contain dots; quotes,
    backslashes and newlines in it are escaped.

    Histogram counters from {!observe} ([hist.<name>.*]) render in the
    Prometheus histogram convention:
    [omf_<component>_<name>_bucket{le="<bound>"}] (with [le="+Inf"] for
    the overflow bucket), [omf_<component>_<name>_sum] and
    [omf_<component>_<name>_count].

    With [?staleness], each render also compares every series against
    the tracker's previous scrape and appends a
    [# staleness: <component>: K of N series unchanged since previous
    scrape] annotation plus a [omf_<component>_stale K] marker series —
    a scrape-time signal that a component has gone quiet (or that a
    gauge source is wedged) without any server-side timers. Series
    first seen this scrape count as fresh. *)

val push :
  ?timeout_s:float ->
  url:string ->
  (string * (string * int) list) list ->
  (unit, string) result
(** [push ~url sources] POSTs the {!prometheus} rendering of each
    [(component, snapshot)] source to [url] in one shot — push-gateway
    mode for short-lived tools (the load generator, the bench harness)
    that exit before any scrape could happen. [url] is
    [http://host[:port][/path]]; the path defaults to
    [/metrics/job/omf]. Blocking, bounded by [timeout_s] (default 2 s)
    per socket operation; every failure (resolution, refusal, non-2xx)
    is returned as [Error message], never raised. *)
