(** Named monotonic counters: the cheap observability substrate used by
    long-running servers (the relay daemon's STATS reply, the load
    generator's report). Single-threaded by design — callers serialise
    access (the relay's event loop already does). *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** [incr t name] adds [by] (default 1) to [name], creating it at 0. *)

val set : t -> string -> int -> unit

val get : t -> string -> int
(** 0 for counters never touched. *)

val dump : t -> (string * int) list
(** All counters, sorted by name. *)

val to_text : t -> string
(** One ["name value\n"] line per counter, sorted — the STATS wire body. *)

val of_text : string -> (string * int) list
(** Parse {!to_text} output (unparseable lines are skipped). *)
