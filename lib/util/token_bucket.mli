(** Per-connection ingress rate limiting for event-loop servers.

    A token bucket refills at [rate] tokens/second up to a cap of
    [burst]. Because a reactor only learns about a frame after it has
    already been read and decoded, {!take} is debt-tolerant: the
    balance may go negative, and {!delay} reports how long the caller
    should stop reading from that connection before the balance is
    non-negative again. All operations take an explicit [~now]
    (seconds, any monotonic-enough base such as [Unix.gettimeofday])
    so behaviour is deterministic under test. Not thread-safe: a
    bucket belongs to the loop that owns its connection. *)

type t

val create : rate:float -> burst:float -> now:float -> t
(** [rate <= 0] means unlimited; [burst <= 0] is clamped to 1. The
    bucket starts full. *)

val take : t -> now:float -> float -> unit
(** Consume [n] tokens (the balance may go negative — the frames were
    already read off the wire). *)

val ready : t -> now:float -> bool
(** True when the balance is non-negative, i.e. reading may continue. *)

val delay : t -> now:float -> float
(** Seconds until the balance refills to zero; [0.] if already ready. *)

val tokens : t -> now:float -> float
(** Current balance after refill (informational / tests). *)
