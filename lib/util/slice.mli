(** Immutable views into shared byte buffers.

    A slice is a [(buffer, offset, length)] triple: a window onto a
    backing [Bytes.t] that is shared, never copied, by construction.
    The zero-copy frame path threads slices from socket ingress through
    fanout, store append, and the write queues — a published payload is
    materialised once and every subscriber queue holds a view of the
    same backing buffer (doc/REACTOR.md).

    Immutability is by convention, not enforcement: once a buffer has
    been wrapped in a slice that escapes (queued on a connection,
    handed to a store), the producer must not mutate it again. Fresh
    buffers per fill (decoder pops, segment read buffers) make this
    easy to honour.

    A wire message is a [t list] — an iovec in miniature: for a framed
    message, a 4-byte length-header slice followed by the shared body
    slice. *)

type t = private {
  buf : Bytes.t;  (** backing buffer, shared *)
  off : int;  (** first byte of the view *)
  len : int;  (** view length *)
}

val make : Bytes.t -> int -> int -> t
(** [make buf off len] views [len] bytes of [buf] at [off]. Raises
    [Invalid_argument] when the window is out of bounds. *)

val of_bytes : ?off:int -> ?len:int -> Bytes.t -> t
(** The whole buffer (or the [off]/[len] window of it) as a slice, no
    copy. Raises [Invalid_argument] naming the offending window when it
    escapes the buffer. *)

val of_string : string -> t
(** Copies [s] once into a fresh buffer (strings are immutable, so the
    copy is the price of a mutable backing store). *)

val empty : t

val length : t -> int
val is_empty : t -> bool

val get : t -> int -> char
(** [get s i] is byte [i] of the view. Raises [Invalid_argument] out of
    bounds. *)

val sub : t -> int -> int -> t
(** [sub s off len] is a sub-view sharing the same backing buffer.
    Raises [Invalid_argument] naming the offending [off]/[len] window
    when it escapes [s] (including negative offsets and lengths). *)

val blit : t -> Bytes.t -> int -> unit
(** [blit s dst dpos] copies the viewed bytes into [dst] at [dpos]. *)

val to_bytes : t -> Bytes.t
(** A fresh copy of the viewed bytes (use to escape a borrowed
    buffer, e.g. a Chunks-mode read slice). *)

val to_string : t -> string

val total : t list -> int
(** Summed length of a wire message. *)

val concat : t list -> Bytes.t
(** One fresh buffer holding the message's bytes in order. *)

val equal_bytes : t -> Bytes.t -> bool
(** Byte equality against a plain buffer (tests). *)
