let src = Logs.Src.create "omf.store" ~doc:"Durable stream store"

module Log = (val Logs.src_log src : Logs.LOG)
module Slice = Omf_util.Slice
module Compress = Omf_compress.Compress

exception Store_error of string

let store_error fmt = Fmt.kstr (fun s -> raise (Store_error s)) fmt

type fsync_policy = Never | Every_n of int | Interval of float

let fsync_policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "never" -> Ok Never
  | s when String.length s > 6 && String.sub s 0 6 = "every=" -> (
    match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
    | Some n when n > 0 -> Ok (Every_n n)
    | _ -> Error "every=N needs a positive integer")
  | s when String.length s > 9 && String.sub s 0 9 = "interval=" -> (
    match float_of_string_opt (String.sub s 9 (String.length s - 9)) with
    | Some f when f > 0. -> Ok (Interval f)
    | _ -> Error "interval=SECS needs a positive number")
  | _ -> Error "expected never, every=N or interval=SECS"

let fsync_policy_to_string = function
  | Never -> "never"
  | Every_n n -> Printf.sprintf "every=%d" n
  | Interval s -> Printf.sprintf "interval=%g" s

type config = {
  root : string;
  segment_bytes : int;
  index_every : int;
  fsync : fsync_policy;
  retain_segments : int;
  retain_bytes : int;
  retain_age : float;
  compress : bool;
      (** rewrite each segment as one LZ block when it is sealed
          (doc/COMPRESS.md); the tail stays uncompressed so appends and
          torn-tail recovery are unchanged, and retention budgets count
          the compressed on-disk size *)
}

let default_config ~root =
  {
    root;
    segment_bytes = 64 * 1024 * 1024;
    index_every = 64;
    fsync = Interval 0.1;
    retain_segments = 0;
    retain_bytes = 0;
    retain_age = 0.;
    compress = false;
  }

(* On-disk framing: magic header, then [u32 len | u32 crc | body]
   records. Meta bodies start with a kind byte ('S' schema text, 'D'
   verbatim descriptor frame, 'A' advertisement metadata as "k=v"
   lines — latest wins); segment bodies are verbatim 'M' frames. *)

let seg_magic = "OMFSEG01"

(* A sealed-and-compressed segment: magic, then one {!Omf_compress}
   block whose plaintext is the record region a plain segment would
   hold after its magic. Only sealed segments ever carry this magic —
   [roll] creates the fresh tail {e before} rewriting the sealed file
   (tmp + rename), so the newest segment, the only one torn-tail
   recovery scans, is always a plain [seg_magic] file. *)
let seg_magic_z = "OMFSEGZ1"
let meta_magic = "OMFMETA1"
let magic_len = 8
let header_len = 8
let max_record = 1 lsl 26

type seg = {
  s_base : int; (* offset of first record *)
  s_path : string;
  mutable s_count : int;
  mutable s_size : int; (* file bytes incl. magic *)
  mutable s_index : (int * int) list; (* sparse (offset, pos), descending *)
  mutable s_sealed_at : float; (* mtime proxy for age retention *)
}

type t = {
  cfg : config;
  name : string;
  dir : string;
  meta_path : string;
  mutable meta_fd : Unix.file_descr;
  mutable schema_ : string option;
  mutable meta_kvs : (string * string) list;
  seen_desc : (string, unit) Hashtbl.t;
  mutable descs_rev : Bytes.t list;
  mutable segs : seg list; (* ascending base; last is the tail *)
  mutable tail_fd : Unix.file_descr;
  mutable tail_off : int; (* next offset *)
  mutable durable_ : int;
  mutable unsynced : int;
  mutable dirty : bool;
  mutable truncated : int;
  mutable comp_raw : int;
      (** record-region bytes fed to segment compression this run *)
  mutable comp_stored : int;
      (** what those regions occupy on disk after sealing *)
  mutable closed : bool;
  mutable wbuf : Bytes.t;
      (** reusable record-staging buffer: header + body are framed here
          and written with one syscall, so an append allocates nothing
          (oversized records fall back to a one-shot buffer) *)
}

(* ------------------------------------------------------------------ *)
(* small IO helpers *)

let write_all fd b pos len =
  let off = ref pos and left = ref len in
  while !left > 0 do
    let n = Unix.write fd b !off !left in
    off := !off + n;
    left := !left - n
  done

let read_exact fd b pos len =
  (* returns bytes actually read (< len only at EOF) *)
  let off = ref pos and left = ref len in
  (try
     while !left > 0 do
       let n = Unix.read fd b !off !left in
       if n = 0 then raise Exit;
       off := !off + n;
       left := !left - n
     done
   with Exit -> ());
  len - !left

let put_u32 b pos v =
  Bytes.set b pos (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set b (pos + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (pos + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (pos + 3) (Char.chr (v land 0xFF))

let get_u32 b pos =
  (Char.code (Bytes.get b pos) lsl 24)
  lor (Char.code (Bytes.get b (pos + 1)) lsl 16)
  lor (Char.code (Bytes.get b (pos + 2)) lsl 8)
  lor Char.code (Bytes.get b (pos + 3))

let fsync_dir path =
  (* Persist directory entries (segment creation/unlink); best effort —
     some filesystems reject fsync on directories. *)
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd

let mkdir_p path =
  let rec mk p =
    if p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      mk (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mk path

(* Stream names become directory names; escape anything outside a safe
   alphabet so arbitrary stream names (slashes, dots) cannot traverse. *)

let safe_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
  | _ -> false

let sanitize name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      if safe_char c then Buffer.add_char b c
      else Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
    name;
  if Buffer.length b = 0 then "%empty" else Buffer.contents b

let unsanitize dir_name =
  if dir_name = "%empty" then Some ""
  else
    let b = Buffer.create (String.length dir_name) in
    let n = String.length dir_name in
    let rec go i =
      if i >= n then Some (Buffer.contents b)
      else if dir_name.[i] = '%' then
        if i + 2 < n then (
          match int_of_string_opt ("0x" ^ String.sub dir_name (i + 1) 2) with
          | Some c ->
            Buffer.add_char b (Char.chr c);
            go (i + 3)
          | None -> None)
        else None
      else begin
        Buffer.add_char b dir_name.[i];
        go (i + 1)
      end
    in
    go 0

let seg_path dir base = Filename.concat dir (Printf.sprintf "%020d.seg" base)

let seg_base_of_name name =
  if Filename.check_suffix name ".seg" then
    int_of_string_opt (Filename.chop_suffix name ".seg")
  else None

(* ------------------------------------------------------------------ *)
(* record IO *)

(* records bigger than this don't go through the reusable staging
   buffer, so one huge append cannot pin megabytes forever *)
let wbuf_max = 1 lsl 20

let staging_buf t len =
  if len <= Bytes.length t.wbuf then t.wbuf
  else if len > wbuf_max then Bytes.create len
  else begin
    let cap = ref (max 4096 (2 * Bytes.length t.wbuf)) in
    while !cap < len do
      cap := !cap * 2
    done;
    t.wbuf <- Bytes.create !cap;
    t.wbuf
  end

let write_record t fd (body : Slice.t) =
  let len = Slice.length body in
  let buf = staging_buf t (header_len + len) in
  put_u32 buf 0 len;
  put_u32 buf 4 (Omf_util.Crc32.digest body.Slice.buf ~pos:body.Slice.off ~len);
  Slice.blit body buf header_len;
  write_all fd buf 0 (header_len + len);
  header_len + len

(* Scan one record at [pos]. [`Record (body, next_pos)] on success;
   [`Eof] when [pos] is exactly the end; [`Bad pos] when the bytes from
   [pos] on are torn or corrupt (truncation point). *)
let scan_record fd ~path ~size pos =
  if pos = size then `Eof
  else if pos + header_len > size then `Bad pos
  else begin
    ignore (Unix.lseek fd pos Unix.SEEK_SET);
    let hdr = Bytes.create header_len in
    if read_exact fd hdr 0 header_len < header_len then `Bad pos
    else
      let len = get_u32 hdr 0 and crc = get_u32 hdr 4 in
      if len < 1 || len > max_record || pos + header_len + len > size then
        `Bad pos
      else
        let body = Bytes.create len in
        if read_exact fd body 0 len < len then `Bad pos
        else if Omf_util.Crc32.digest body ~pos:0 ~len <> crc then `Bad pos
        else begin
          ignore path;
          `Record (body, pos + header_len + len)
        end
  end

(* Skip over a record without reading its body (used when seeking to a
   replay start inside a sealed segment). CRC is not checked here; it
   is checked when the record is actually delivered. *)
let skip_record fd ~size pos =
  if pos + header_len > size then `Bad pos
  else begin
    ignore (Unix.lseek fd pos Unix.SEEK_SET);
    let hdr = Bytes.create header_len in
    if read_exact fd hdr 0 header_len < header_len then `Bad pos
    else
      let len = get_u32 hdr 0 in
      if len < 1 || len > max_record || pos + header_len + len > size then
        `Bad pos
      else `Next (pos + header_len + len)
  end

(* ------------------------------------------------------------------ *)
(* meta log *)

(* 'A' record bodies: one "k=v" line per entry, newline-terminated —
   the same line syntax the relay's ADVERTISE metadata uses on the
   wire, so persisted bindings round-trip verbatim. *)

let meta_kvs_to_text (kvs : (string * string) list) : string =
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf "%s=%s\n" k v) kvs)

let meta_kvs_of_text (s : string) : (string * string) list =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         match String.index_opt line '=' with
         | Some i when i > 0 ->
           Some
             ( String.sub line 0 i
             , String.sub line (i + 1) (String.length line - i - 1) )
         | _ -> None)

let load_meta t =
  if not (Sys.file_exists t.meta_path) then begin
    let fd =
      Unix.openfile t.meta_path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
    in
    write_all fd (Bytes.of_string meta_magic) 0 magic_len;
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd;
    fsync_dir t.dir
  end;
  let fd = Unix.openfile t.meta_path [ Unix.O_RDONLY ] 0 in
  let size = (Unix.fstat fd).Unix.st_size in
  let bad_magic () =
    let m = Bytes.create magic_len in
    read_exact fd m 0 magic_len < magic_len
    || Bytes.to_string m <> meta_magic
  in
  if size < magic_len || bad_magic () then begin
    Unix.close fd;
    if size < magic_len then begin
      (* torn during creation: rewrite *)
      let wfd =
        Unix.openfile t.meta_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644
      in
      write_all wfd (Bytes.of_string meta_magic) 0 magic_len;
      (try Unix.fsync wfd with Unix.Unix_error _ -> ());
      Unix.close wfd;
      t.truncated <- t.truncated + size
    end
    else
      store_error "%s: bad magic (not a store meta log)" t.meta_path
  end
  else begin
    let pos = ref magic_len in
    let stop = ref false in
    while not !stop do
      match scan_record fd ~path:t.meta_path ~size !pos with
      | `Eof -> stop := true
      | `Bad p ->
        Unix.close fd;
        let wfd = Unix.openfile t.meta_path [ Unix.O_WRONLY ] 0o644 in
        Unix.ftruncate wfd p;
        (try Unix.fsync wfd with Unix.Unix_error _ -> ());
        Unix.close wfd;
        t.truncated <- t.truncated + (size - p);
        Log.warn (fun m ->
            m "stream %S: truncated torn meta record at byte %d (%d bytes)"
              t.name p (size - p));
        raise Exit
      | `Record (body, next) ->
        (match Bytes.get body 0 with
        | 'S' ->
          t.schema_ <-
            Some (Bytes.sub_string body 1 (Bytes.length body - 1))
        | 'D' ->
          let digest =
            Omf_util.Sha256.digest_bytes body 0 (Bytes.length body)
          in
          if not (Hashtbl.mem t.seen_desc digest) then begin
            Hashtbl.replace t.seen_desc digest ();
            t.descs_rev <- body :: t.descs_rev
          end
        | 'A' ->
          t.meta_kvs <-
            meta_kvs_of_text
              (Bytes.sub_string body 1 (Bytes.length body - 1))
        | k ->
          Log.warn (fun m ->
              m "stream %S: unknown meta record kind %C ignored" t.name k));
        pos := next
    done;
    Unix.close fd
  end

let open_meta_append t =
  t.meta_fd <-
    Unix.openfile t.meta_path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644

(* ------------------------------------------------------------------ *)
(* segments *)

let create_segment t base =
  let path = seg_path t.dir base in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  write_all fd (Bytes.of_string seg_magic) 0 magic_len;
  fsync_dir t.dir;
  let seg =
    {
      s_base = base;
      s_path = path;
      s_count = 0;
      s_size = magic_len;
      s_index = [];
      s_sealed_at = Unix.gettimeofday ();
    }
  in
  (seg, fd)

(* Scan the tail segment: count records, build the sparse index,
   truncate at the first torn/corrupt record. Returns the record
   count, or `Torn_header if even the magic is damaged. *)
let recover_tail t (seg : seg) =
  let fd = Unix.openfile seg.s_path [ Unix.O_RDWR ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let magic_ok =
    size >= magic_len
    &&
    let m = Bytes.create magic_len in
    read_exact fd m 0 magic_len = magic_len && Bytes.to_string m = seg_magic
  in
  if not magic_ok then begin
    Unix.close fd;
    `Torn_header size
  end
  else begin
    let pos = ref magic_len and count = ref 0 and stop = ref false in
    let index = ref [] in
    while not !stop do
      match scan_record fd ~path:seg.s_path ~size !pos with
      | `Eof -> stop := true
      | `Bad p ->
        Unix.ftruncate fd p;
        (try Unix.fsync fd with Unix.Unix_error _ -> ());
        t.truncated <- t.truncated + (size - p);
        Log.warn (fun m ->
            m "stream %S: truncated torn record at %s byte %d (%d bytes)"
              t.name (Filename.basename seg.s_path) p (size - p));
        seg.s_size <- p;
        stop := true
      | `Record (_, next) ->
        if !count mod t.cfg.index_every = 0 then
          index := (seg.s_base + !count, !pos) :: !index;
        incr count;
        pos := next;
        seg.s_size <- next
    done;
    Unix.close fd;
    seg.s_count <- !count;
    seg.s_index <- !index;
    `Recovered !count
  end

let load_segments t =
  (* sweep rewrite leftovers from a crash mid-compression: the plain
     original was still in place, so a tmp file is pure garbage *)
  Array.iter
    (fun n ->
      if Filename.check_suffix n ".seg.tmp" then
        try Unix.unlink (Filename.concat t.dir n) with Unix.Unix_error _ -> ())
    (Sys.readdir t.dir);
  let names =
    Sys.readdir t.dir |> Array.to_list
    |> List.filter_map (fun n ->
           match seg_base_of_name n with Some b -> Some (b, n) | None -> None)
    |> List.sort compare
  in
  match names with
  | [] ->
    let seg, fd = create_segment t 0 in
    t.segs <- [ seg ];
    t.tail_fd <- fd;
    t.tail_off <- 0
  | names ->
    let arr = Array.of_list names in
    let n = Array.length arr in
    let segs = ref [] in
    for i = n - 1 downto 0 do
      let base, name = arr.(i) in
      let path = Filename.concat t.dir name in
      let st = Unix.stat path in
      let count =
        (* sealed: dense offsets make the count pure filename
           arithmetic; the tail (-1) is scanned by recover_tail *)
        if i + 1 < n then fst arr.(i + 1) - base else -1
      in
      if i + 1 < n && count <= 0 then
        store_error "%s: segment bases out of order" path;
      segs :=
        {
          s_base = base;
          s_path = path;
          s_count = count;
          s_size = st.Unix.st_size;
          s_index = [];
          s_sealed_at = st.Unix.st_mtime;
        }
        :: !segs
    done;
    let rec split_last = function
      | [] -> assert false
      | [ x ] -> ([], x)
      | x :: rest ->
        let sealed, last = split_last rest in
        (x :: sealed, last)
    in
    let sealed, tail_seg = split_last !segs in
    (match recover_tail t tail_seg with
    | `Recovered count ->
      t.segs <- sealed @ [ tail_seg ];
      t.tail_off <- tail_seg.s_base + count;
      t.tail_fd <-
        Unix.openfile tail_seg.s_path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644
    | `Torn_header sz ->
      (* The newest segment's header itself is torn (crash during
         creation): no record in it can be valid, so replace it with a
         fresh empty segment at the same base. *)
      Log.warn (fun m ->
          m "stream %S: dropping segment %s with torn header (%d bytes)"
            t.name (Filename.basename tail_seg.s_path) sz);
      t.truncated <- t.truncated + sz;
      Unix.unlink tail_seg.s_path;
      let seg, fd = create_segment t tail_seg.s_base in
      t.segs <- sealed @ [ seg ];
      t.tail_off <- seg.s_base;
      t.tail_fd <- fd)

(* ------------------------------------------------------------------ *)

let stream t = t.name
let tail t = t.tail_off
let durable t = t.durable_
let oldest t = match t.segs with [] -> 0 | s :: _ -> s.s_base
let segments t = List.length t.segs
let bytes t = List.fold_left (fun a s -> a + s.s_size) 0 t.segs
let schema t = t.schema_
let meta t = t.meta_kvs
let descriptors t = List.rev t.descs_rev
let truncated_bytes t = t.truncated
let comp_raw_bytes t = t.comp_raw
let comp_stored_bytes t = t.comp_stored

let check_open t = if t.closed then store_error "stream %S: closed" t.name

let do_sync t =
  if t.dirty then begin
    (try Unix.fsync t.tail_fd
     with Unix.Unix_error (e, _, _) ->
       store_error "stream %S: fsync: %s" t.name (Unix.error_message e));
    t.dirty <- false
  end;
  t.unsynced <- 0;
  t.durable_ <- t.tail_off;
  t.durable_

let sync t =
  check_open t;
  do_sync t

let apply_retention t =
  let deleted = ref 0 in
  let now = Unix.gettimeofday () in
  let excess () =
    match t.segs with
    | [] | [ _ ] -> false (* never delete the tail *)
    | oldest_seg :: _ ->
      (t.cfg.retain_segments > 0 && List.length t.segs > t.cfg.retain_segments)
      || (t.cfg.retain_bytes > 0 && bytes t > t.cfg.retain_bytes)
      || t.cfg.retain_age > 0.
         && now -. oldest_seg.s_sealed_at > t.cfg.retain_age
  in
  while excess () do
    match t.segs with
    | old :: rest ->
      (try Unix.unlink old.s_path with Unix.Unix_error _ -> ());
      t.segs <- rest;
      incr deleted;
      Log.info (fun m ->
          m "stream %S: retention dropped segment %s (%d records)" t.name
            (Filename.basename old.s_path) old.s_count)
    | [] -> assert false
  done;
  if !deleted > 0 then fsync_dir t.dir;
  !deleted

let tail_seg t =
  match List.rev t.segs with
  | last :: _ -> last
  | [] -> store_error "stream %S: no tail segment" t.name

(* Rewrite a freshly sealed segment as one compressed block. Crash-safe
   by ordering: the caller has already created the new tail, so if this
   dies mid-rewrite the original plain segment survives (the tmp file
   is invisible to {!seg_base_of_name} and swept on open) and if it
   dies after the rename the compressed form is complete. Best-effort:
   an IO failure or an incompressible region leaves the segment plain —
   the read side sniffs the magic per file either way. *)
let compress_sealed t (seg : seg) =
  match
    let fd = Unix.openfile seg.s_path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        let m = Bytes.create magic_len in
        if
          size <= magic_len
          || read_exact fd m 0 magic_len < magic_len
          || Bytes.to_string m <> seg_magic
        then None
        else begin
          let region = Bytes.create (size - magic_len) in
          if read_exact fd region 0 (size - magic_len) < size - magic_len
          then None
          else
            let blk = Compress.compress region in
            if magic_len + Bytes.length blk >= size then None
            else Some (blk, size)
        end)
  with
  | None -> ()
  | Some (blk, raw_size) ->
    let tmp = seg.s_path ^ ".tmp" in
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    write_all fd (Bytes.of_string seg_magic_z) 0 magic_len;
    write_all fd blk 0 (Bytes.length blk);
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd;
    Unix.rename tmp seg.s_path;
    fsync_dir t.dir;
    seg.s_size <- magic_len + Bytes.length blk;
    seg.s_index <- [];
    t.comp_raw <- t.comp_raw + (raw_size - magic_len);
    t.comp_stored <- t.comp_stored + seg.s_size;
    Log.debug (fun m ->
        m "stream %S: sealed %s compressed %d -> %d bytes" t.name
          (Filename.basename seg.s_path) raw_size seg.s_size)
  | exception (Unix.Unix_error _ | Sys_error _) -> ()

let roll t =
  (* Seal the current tail: make it durable, then start a new segment.
     When compressing, the new tail must exist on disk before the
     sealed file is rewritten — see {!compress_sealed}. *)
  (try Unix.fsync t.tail_fd with Unix.Unix_error _ -> ());
  Unix.close t.tail_fd;
  t.dirty <- false;
  t.unsynced <- 0;
  t.durable_ <- t.tail_off;
  let sealed = tail_seg t in
  sealed.s_sealed_at <- Unix.gettimeofday ();
  let seg, fd = create_segment t t.tail_off in
  t.segs <- t.segs @ [ seg ];
  t.tail_fd <- fd;
  if t.cfg.compress then compress_sealed t sealed;
  ignore (apply_retention t)

let append_slice t (frame : Slice.t) =
  check_open t;
  if Slice.length frame = 0 then store_error "stream %S: empty frame" t.name;
  if Slice.length frame > max_record then
    store_error "stream %S: frame of %d bytes exceeds record limit" t.name
      (Slice.length frame);
  if (tail_seg t).s_size >= t.cfg.segment_bytes && (tail_seg t).s_count > 0
  then roll t;
  let seg = tail_seg t in
  if seg.s_count mod t.cfg.index_every = 0 then
    seg.s_index <- (t.tail_off, seg.s_size) :: seg.s_index;
  let written = write_record t t.tail_fd frame in
  let off = t.tail_off in
  seg.s_count <- seg.s_count + 1;
  seg.s_size <- seg.s_size + written;
  t.tail_off <- off + 1;
  t.unsynced <- t.unsynced + 1;
  t.dirty <- true;
  (match t.cfg.fsync with
  | Never ->
    (* Durable enough for process crashes: the write is in the page
       cache. Power loss can still lose it; that is the contract. *)
    t.durable_ <- t.tail_off
  | Every_n n -> if t.unsynced >= n then ignore (do_sync t)
  | Interval _ -> ());
  off

let append t frame = append_slice t (Slice.of_bytes frame)

let append_meta t body =
  let _ = write_record t t.meta_fd (Slice.of_bytes body) in
  try Unix.fsync t.meta_fd
  with Unix.Unix_error (e, _, _) ->
    store_error "stream %S: meta fsync: %s" t.name (Unix.error_message e)

let append_descriptor t frame =
  check_open t;
  let digest = Omf_util.Sha256.digest_bytes frame 0 (Bytes.length frame) in
  if Hashtbl.mem t.seen_desc digest then false
  else begin
    Hashtbl.replace t.seen_desc digest ();
    t.descs_rev <- Bytes.copy frame :: t.descs_rev;
    append_meta t frame;
    true
  end

let set_schema t text =
  check_open t;
  if t.schema_ <> Some text then begin
    t.schema_ <- Some text;
    let body = Bytes.create (1 + String.length text) in
    Bytes.set body 0 'S';
    Bytes.blit_string text 0 body 1 (String.length text);
    append_meta t body
  end

let set_meta t kvs =
  check_open t;
  if t.meta_kvs <> kvs then begin
    t.meta_kvs <- kvs;
    let text = meta_kvs_to_text kvs in
    let body = Bytes.create (1 + String.length text) in
    Bytes.set body 0 'A';
    Bytes.blit_string text 0 body 1 (String.length text);
    append_meta t body
  end

(* Reading: per call we open a fresh read-only fd per segment, seek to
   the nearest sparse-index entry at or below the requested offset, and
   skip forward. Records actually delivered are CRC-checked. Compressed
   sealed segments (magic sniffed per open) are instead inflated whole —
   they are bounded by [segment_bytes] — and iterated from memory. *)

let seg_kind t (seg : seg) fd =
  let m = Bytes.create magic_len in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  if seg.s_size < magic_len || read_exact fd m 0 magic_len < magic_len then
    store_error "stream %S: truncated segment %s" t.name
      (Filename.basename seg.s_path);
  match Bytes.to_string m with
  | s when s = seg_magic -> `Plain
  | s when s = seg_magic_z -> `Compressed
  | _ ->
    store_error "stream %S: segment %s: bad magic" t.name
      (Filename.basename seg.s_path)

let inflate_seg t (seg : seg) fd : Bytes.t =
  let zlen = seg.s_size - magic_len in
  let blob = Bytes.create zlen in
  ignore (Unix.lseek fd magic_len Unix.SEEK_SET);
  if read_exact fd blob 0 zlen < zlen then
    store_error "stream %S: truncated segment %s" t.name
      (Filename.basename seg.s_path);
  match Compress.decompress blob with
  | region -> region
  | exception Compress.Error msg ->
    store_error "stream %S: segment %s: corrupt compressed region: %s" t.name
      (Filename.basename seg.s_path) msg

(* Walk an inflated record region (record [i] lives at stream offset
   [seg.s_base + i]); the slices handed out view the freshly inflated
   buffer, so they stay valid after this returns. *)
let iter_region t (seg : seg) (region : Bytes.t) ~from ~upto
    (f : int -> Slice.t -> unit) =
  let size = Bytes.length region in
  let seg_end = min upto (seg.s_base + seg.s_count) in
  let corrupt p =
    store_error "stream %S: corrupt record at %s byte %d" t.name
      (Filename.basename seg.s_path) (p + magic_len)
  in
  let off = ref seg.s_base and pos = ref 0 in
  while !off < seg_end do
    if !pos + header_len > size then corrupt !pos;
    let len = get_u32 region !pos and crc = get_u32 region (!pos + 4) in
    if len < 1 || len > max_record || !pos + header_len + len > size then
      corrupt !pos;
    if !off >= from then begin
      if Omf_util.Crc32.digest region ~pos:(!pos + header_len) ~len <> crc
      then corrupt !pos;
      f !off (Slice.make region (!pos + header_len) len)
    end;
    pos := !pos + header_len + len;
    incr off
  done

let iter_seg t (seg : seg) ~from f =
  if from < seg.s_base + seg.s_count then begin
    let fd = Unix.openfile seg.s_path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        match seg_kind t seg fd with
        | `Compressed ->
          let region = inflate_seg t seg fd in
          iter_region t seg region ~from ~upto:max_int (fun off body ->
              (* bytes-callback contract: each body is a private copy *)
              f off (Slice.to_bytes body))
        | `Plain ->
        let size = seg.s_size in
        let start_off, start_pos =
          (* s_index is descending; find the first entry <= from *)
          let rec find = function
            | [] -> (seg.s_base, magic_len)
            | (o, p) :: rest -> if o <= from then (o, p) else find rest
          in
          find seg.s_index
        in
        let off = ref start_off and pos = ref start_pos in
        (* skip to [from] without reading bodies *)
        while !off < from do
          match skip_record fd ~size !pos with
          | `Next p ->
            pos := p;
            incr off
          | `Bad p ->
            store_error "stream %S: corrupt record at %s byte %d" t.name
              (Filename.basename seg.s_path) p
        done;
        let seg_end = seg.s_base + seg.s_count in
        while !off < seg_end do
          match scan_record fd ~path:seg.s_path ~size !pos with
          | `Record (body, next) ->
            f !off body;
            pos := next;
            incr off
          | `Eof | `Bad _ ->
            store_error "stream %S: corrupt record at %s byte %d" t.name
              (Filename.basename seg.s_path) !pos
        done)
  end

let iter_from t from f =
  check_open t;
  let from = max from (oldest t) in
  if from < t.tail_off then
    List.iter
      (fun seg ->
        if seg.s_base + seg.s_count > from then
          iter_seg t seg ~from:(max from seg.s_base) f)
      t.segs

exception Range_done

let iter_range t from upto f =
  check_open t;
  let from = max from (oldest t) in
  let upto = min upto t.tail_off in
  if from < upto then
    try
      List.iter
        (fun seg ->
          if seg.s_base >= upto then raise Range_done;
          if seg.s_base + seg.s_count > from then
            iter_seg t seg ~from:(max from seg.s_base) (fun off body ->
                if off >= upto then raise Range_done;
                f off body))
        t.segs
    with Range_done -> ()

(* Slice replay: instead of one fresh body buffer per record, read a
   span of the segment file into one buffer and hand out CRC-checked
   sub-slices — a replay chunk costs one allocation per [fill_bytes]
   window, not one per frame. Each window is a {e fresh} buffer (never
   reused), because the slices handed to [f] are typically queued on
   connection write queues and must stay valid after this returns. *)

let fill_bytes = 256 * 1024

let iter_seg_slices t (seg : seg) ~from ~upto
    (f : int -> Slice.t -> unit) =
  let seg_end = min upto (seg.s_base + seg.s_count) in
  if from < seg_end then begin
    let fd = Unix.openfile seg.s_path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        match seg_kind t seg fd with
        | `Compressed ->
          iter_region t seg (inflate_seg t seg fd) ~from ~upto f
        | `Plain ->
        let size = seg.s_size in
        let corrupt p =
          store_error "stream %S: corrupt record at %s byte %d" t.name
            (Filename.basename seg.s_path) p
        in
        let start_off, start_pos =
          let rec find = function
            | [] -> (seg.s_base, magic_len)
            | (o, p) :: rest -> if o <= from then (o, p) else find rest
          in
          find seg.s_index
        in
        let off = ref start_off and pos = ref start_pos in
        while !off < from do
          match skip_record fd ~size !pos with
          | `Next p ->
            pos := p;
            incr off
          | `Bad p -> corrupt p
        done;
        while !off < seg_end do
          let want = min fill_bytes (size - !pos) in
          if want < header_len then corrupt !pos;
          let buf = Bytes.create want in
          ignore (Unix.lseek fd !pos Unix.SEEK_SET);
          let got = read_exact fd buf 0 want in
          if got < header_len then corrupt !pos;
          let p = ref 0 in
          let progressed = ref false in
          (try
             while !off < seg_end && !p + header_len <= got do
               let len = get_u32 buf !p and crc = get_u32 buf (!p + 4) in
               if
                 len < 1 || len > max_record
                 || !pos + !p + header_len + len > size
               then corrupt (!pos + !p);
               if !p + header_len + len > got then
                 (* crosses the window boundary: refill from here *)
                 raise Exit;
               if Omf_util.Crc32.digest buf ~pos:(!p + header_len) ~len <> crc
               then corrupt (!pos + !p);
               f !off (Slice.make buf (!p + header_len) len);
               progressed := true;
               p := !p + header_len + len;
               incr off
             done
           with Exit -> ());
          pos := !pos + !p;
          if not !progressed then begin
            (* a record larger than the fill window: read it exactly *)
            let len = get_u32 buf 0 and crc = get_u32 buf 4 in
            let big = Bytes.create len in
            ignore (Unix.lseek fd (!pos + header_len) Unix.SEEK_SET);
            if read_exact fd big 0 len < len then corrupt !pos;
            if Omf_util.Crc32.digest big ~pos:0 ~len <> crc then corrupt !pos;
            f !off (Slice.of_bytes big);
            pos := !pos + header_len + len;
            incr off
          end
        done)
  end

(** {!iter_range} delivering bodies as slices into shared read
    buffers; the relay's chunked stored replay enqueues them without
    copying (doc/STORE.md). *)
let iter_range_slices t from upto (f : int -> Slice.t -> unit) =
  check_open t;
  let from = max from (oldest t) in
  let upto = min upto t.tail_off in
  if from < upto then
    try
      List.iter
        (fun seg ->
          if seg.s_base >= upto then raise Range_done;
          if seg.s_base + seg.s_count > from then
            iter_seg_slices t seg ~from:(max from seg.s_base) ~upto f)
        t.segs
    with Range_done -> ()

let close t =
  if not t.closed then begin
    (try ignore (do_sync t) with Store_error _ -> ());
    (try Unix.close t.tail_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.meta_fd with Unix.Unix_error _ -> ());
    t.closed <- true
  end

let open_stream cfg name =
  let dir = Filename.concat cfg.root (sanitize name) in
  mkdir_p dir;
  let t =
    {
      cfg;
      name;
      dir;
      meta_path = Filename.concat dir "meta.log";
      meta_fd = Unix.stdin (* replaced below *);
      schema_ = None;
      meta_kvs = [];
      seen_desc = Hashtbl.create 8;
      descs_rev = [];
      segs = [];
      tail_fd = Unix.stdin;
      tail_off = 0;
      durable_ = 0;
      unsynced = 0;
      dirty = false;
      truncated = 0;
      comp_raw = 0;
      comp_stored = 0;
      closed = false;
      wbuf = Bytes.create 4096;
    }
  in
  (try load_meta t with Exit -> ());
  open_meta_append t;
  load_segments t;
  (* Everything that survived recovery is on disk by definition. *)
  t.durable_ <- t.tail_off;
  Log.debug (fun m ->
      m "stream %S: opened at offset %d (%d segments%s)" t.name t.tail_off
        (List.length t.segs)
        (if t.truncated > 0 then
           Printf.sprintf ", %d torn bytes truncated" t.truncated
         else ""));
  t

let streams cfg =
  if not (Sys.file_exists cfg.root) then []
  else
    Sys.readdir cfg.root |> Array.to_list
    |> List.filter (fun n ->
           Sys.is_directory (Filename.concat cfg.root n)
           && Sys.file_exists (Filename.concat (Filename.concat cfg.root n) "meta.log"))
    |> List.filter_map unsanitize
    |> List.sort compare
