(** Durable per-stream store: a segmented append-only log.

    Each stream gets a directory under the store root holding

    - [meta.log] — the stream's self-describing metadata, in
      descriptor-before-first-use order like {!Omf_journal}: the
      advertised schema plus every NDR descriptor frame seen, so a
      recovered stream can be re-advertised and late joiners can decode
      stored messages without the original publisher; and
    - numbered segment files ([<base>.seg], 20-digit decimal base
      offset) holding message frames.

    Both use the same record framing: [u32 len | u32 crc32 | body],
    big-endian, CRC-32 over the body. Appends go to the newest (tail)
    segment; when it reaches [segment_bytes] it is fsynced, sealed, and
    a new tail is created. Recovery scans only the tail segment,
    truncates a torn final record, and resumes appending — sealed
    segments are trusted structurally and CRC-checked on read.

    Offsets are dense per-stream message sequence numbers starting at
    0; [oldest]..[tail-1] are readable, [durable-1] is the newest
    offset guaranteed on disk (per the fsync policy). Handles are not
    thread-safe: the relay gives each shard its own handles. *)

exception Store_error of string

type fsync_policy =
  | Never  (** never fsync; durability = OS page cache (survives
               SIGKILL, not power loss) *)
  | Every_n of int  (** fsync once per [n] appends *)
  | Interval of float  (** caller fsyncs via {!sync} on a timer *)

val fsync_policy_of_string : string -> (fsync_policy, string) result
(** ["never"], ["every=N"], ["interval=SECS"]. *)

val fsync_policy_to_string : fsync_policy -> string

type config = {
  root : string;  (** store root directory; created on demand *)
  segment_bytes : int;  (** roll threshold per segment file *)
  index_every : int;  (** sparse-index granularity in records *)
  fsync : fsync_policy;
  retain_segments : int;  (** keep at most this many segments; 0 = all *)
  retain_bytes : int;  (** total bytes across segments; 0 = unlimited *)
  retain_age : float;  (** drop sealed segments older than this; 0 = never *)
  compress : bool;
      (** rewrite each segment as one LZ block when it is sealed
          (doc/COMPRESS.md): the tail stays plain so appends and
          torn-tail recovery are untouched, reads sniff the per-file
          magic and inflate transparently, and {!bytes} — hence the
          retention budgets — counts the compressed on-disk size *)
}

val default_config : root:string -> config
(** 64 MiB segments, index every 64 records, [Interval 0.1], no
    retention limits. *)

type t

val open_stream : config -> string -> t
(** Open (or create) the stream's log and recover: replay [meta.log],
    scan the tail segment validating CRCs, truncate any torn final
    record, and position for appending. Raises {!Store_error} on
    structural corruption that truncation can't repair. *)

val stream : t -> string
val close : t -> unit
(** Fsync and close; idempotent. *)

(** {2 Appending} *)

val append : t -> Bytes.t -> int
(** Append one message frame (the verbatim relayed ['M'] frame);
    returns its offset. Rolls the segment and applies retention as
    needed, and fsyncs per the policy. Record framing is staged in a
    reusable per-store buffer, so an append allocates nothing. *)

val append_slice : t -> Omf_util.Slice.t -> int
(** {!append} from a buffer view — the zero-copy frame path appends
    straight from the shared fanout slice. *)

val append_descriptor : t -> Bytes.t -> bool
(** Record a descriptor frame in [meta.log] unless an identical one
    (by SHA-256) was already stored; returns [true] if newly written.
    Descriptor writes are always fsynced before returning so no stored
    message can outlive its descriptor. *)

val set_schema : t -> string -> unit
(** Persist the stream's advertised schema (latest wins); fsynced. *)

val set_meta : t -> (string * string) list -> unit
(** Persist the stream's advertisement metadata — the [k=v] lines an
    ADVERTISE carried (registry binding [subject]/[version]/
    [fingerprint], replication [origin]/[epoch]; PROTOCOLS.md §14/§15)
    — latest list wins; fsynced. A restarted relay re-advertises the
    stream with exactly this metadata, so registry bindings and
    mirror origin tags survive without the original publisher. *)

val sync : t -> int
(** Fsync pending appends (no-op when clean) and return the new
    [durable]. This is what the relay's interval timer calls. *)

(** {2 Reading} *)

val iter_from : t -> int -> (int -> Bytes.t -> unit) -> unit
(** [iter_from t from f] calls [f offset frame] for every stored
    message in [[max from (oldest t), tail t)], in order. Raises
    {!Store_error} if a sealed record fails its CRC. *)

val iter_range : t -> int -> int -> (int -> Bytes.t -> unit) -> unit
(** [iter_range t from upto f] is {!iter_from} bounded above:
    [f offset frame] for every stored message in
    [[max from (oldest t), min upto (tail t))]. This is the chunked
    replay primitive — a reader chasing the tail pulls a bounded slice
    per reactor writable callback instead of the whole suffix. *)

val iter_range_slices :
  t -> int -> int -> (int -> Omf_util.Slice.t -> unit) -> unit
(** {!iter_range} delivering each body as a slice into a shared
    segment read buffer: one ~256 KiB buffer allocation per window of
    records instead of one buffer per record. Buffers are fresh per
    window (never reused), so the slices stay valid after the call —
    the relay enqueues them on subscriber write queues as-is. *)

val schema : t -> string option

val meta : t -> (string * string) list
(** The last persisted advertisement metadata ([] if none). *)

val descriptors : t -> Bytes.t list
(** Stored descriptor frames in first-use order. *)

(** {2 Introspection} *)

val tail : t -> int  (** next offset to be assigned *)

val durable : t -> int  (** offsets [< durable] are on disk *)

val oldest : t -> int  (** first offset still retained *)

val segments : t -> int
val bytes : t -> int  (** total segment-file bytes (excl. meta.log) *)

val truncated_bytes : t -> int
(** Bytes dropped by torn-tail truncation during [open_stream]. *)

val comp_raw_bytes : t -> int
(** Record-region bytes fed to segment compression since this handle
    opened (0 unless [config.compress]); the relay's
    [store.<stream>.comp_raw] gauge. *)

val comp_stored_bytes : t -> int
(** What those regions occupy on disk after sealing — compare with
    {!comp_raw_bytes} for the achieved ratio. *)

val apply_retention : t -> int
(** Enforce retention limits now; returns segments deleted. Also runs
    automatically at segment roll. *)

val streams : config -> string list
(** Stream names present under the store root (no handles opened). *)
