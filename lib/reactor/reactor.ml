(** A single-threaded readiness engine shared by every server stack in
    this repository (relay shards, the embedded httpd, the format
    server, [Tcp.serve]).

    One reactor owns one [Unix.select] loop. Everything else is built
    on three primitives:

    - {b interest sets}: file descriptors register read/write callbacks
      and toggle interest without re-registering ({!register},
      {!set_read}, {!set_write});
    - {b a timer wheel}: a binary min-heap of (deadline, seq) pairs with
      lazy cancellation ({!Wheel}, surfaced as {!after} / {!cancel}),
      driving per-connection deadlines and drain timeouts;
    - {b a self-pipe}: {!inject} enqueues a thunk from any thread (or
      any domain) and wakes the loop, which is how accepted sockets are
      handed to relay shards and how shutdown is requested from signal
      handlers and foreign threads.

    The loop itself never spawns threads; blocking work belongs to the
    caller's threads, which communicate with the loop via {!inject}. *)

let log = Logs.Src.create "omf.reactor" ~doc:"shared readiness engine"

module Log = (val Logs.src_log log)

(** Wall-clock seconds ([Unix.gettimeofday]). [Sys.time] measures CPU
    time and stalls while the loop sleeps in select, so deadlines use
    the wall clock; a clock step therefore shifts pending deadlines,
    which is acceptable for the sub-minute timeouts used here. *)
let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Timer wheel                                                          *)
(* ------------------------------------------------------------------ *)

module Wheel = struct
  (** Binary min-heap ordered by (deadline, insertion seq). The seq
      tie-break makes firing order deterministic: two timers due at the
      same instant fire in the order they were scheduled — the property
      [test_reactor.ml] checks against a sorted model. Cancellation is
      lazy: the entry stays in the heap and is skipped when it
      surfaces. *)

  type timer = {
    deadline : float;
    seq : int;
    action : unit -> unit;
    mutable live : bool;
  }

  type t = {
    mutable heap : timer array;  (** [heap.(0)] is the minimum *)
    mutable size : int;
    mutable next_seq : int;
    mutable live_count : int;
  }

  let dummy =
    { deadline = 0.0; seq = -1; action = ignore; live = false }

  let create () = { heap = Array.make 16 dummy; size = 0; next_seq = 0
                  ; live_count = 0 }

  let before a b =
    a.deadline < b.deadline || (a.deadline = b.deadline && a.seq < b.seq)

  let swap h i j =
    let tmp = h.heap.(i) in
    h.heap.(i) <- h.heap.(j);
    h.heap.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before h.heap.(i) h.heap.(parent) then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.size && before h.heap.(l) h.heap.(!smallest) then smallest := l;
    if r < h.size && before h.heap.(r) h.heap.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let schedule (h : t) ~(at : float) (action : unit -> unit) : timer =
    let t = { deadline = at; seq = h.next_seq; action; live = true } in
    h.next_seq <- h.next_seq + 1;
    if h.size = Array.length h.heap then begin
      let bigger = Array.make (2 * h.size) dummy in
      Array.blit h.heap 0 bigger 0 h.size;
      h.heap <- bigger
    end;
    h.heap.(h.size) <- t;
    h.size <- h.size + 1;
    sift_up h (h.size - 1);
    h.live_count <- h.live_count + 1;
    t

  let cancel (t : timer) : unit = t.live <- false
  (* live_count is corrected lazily when the dead entry surfaces *)

  let pop_min h =
    let min = h.heap.(0) in
    h.size <- h.size - 1;
    h.heap.(0) <- h.heap.(h.size);
    h.heap.(h.size) <- dummy;
    if h.size > 0 then sift_down h 0;
    min

  (** Drop cancelled entries off the top so [next_deadline] reflects a
      live timer. *)
  let rec prune h =
    if h.size > 0 && not h.heap.(0).live then begin
      ignore (pop_min h);
      prune h
    end

  let next_deadline (h : t) : float option =
    prune h;
    if h.size = 0 then None else Some h.heap.(0).deadline

  (** Live (scheduled, not yet fired or cancelled) timer count. *)
  let pending (h : t) : int =
    prune h;
    let n = ref 0 in
    for i = 0 to h.size - 1 do
      if h.heap.(i).live then incr n
    done;
    !n

  (** [fire h ~now] runs every live timer with [deadline <= now], in
      (deadline, seq) order, and returns how many fired. Actions run
      after the timer is removed, so an action rescheduling itself is
      fine. *)
  let fire (h : t) ~(now : float) : int =
    let fired = ref 0 in
    let rec go () =
      prune h;
      if h.size > 0 && h.heap.(0).deadline <= now then begin
        let t = pop_min h in
        t.live <- false;
        incr fired;
        t.action ();
        go ()
      end
    in
    go ();
    !fired
end

type timer = Wheel.timer

(* ------------------------------------------------------------------ *)
(* Registrations                                                        *)
(* ------------------------------------------------------------------ *)

type registration = {
  r_fd : Unix.file_descr;
  mutable r_read : bool;
  mutable r_write : bool;
  mutable r_on_readable : unit -> unit;
  mutable r_on_writable : unit -> unit;
  mutable r_active : bool;
}

type t = {
  wheel : Wheel.t;
  regs : (Unix.file_descr, registration) Hashtbl.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mu : Mutex.t;  (** guards [injected] and [stop_requested] writes *)
  injected : (unit -> unit) Queue.t;
  deferred : (unit -> unit) Queue.t;  (** loop-thread only *)
  scratch : Bytes.t;  (** shared read buffer for this loop's conns *)
  gather : Bytes.t;
      (** shared write-coalescing buffer: {!Conn}'s flush loop copies
          small adjacent queue slices here so one [Unix.write] covers
          them. Distinct from [scratch] because a Chunks-mode read
          callback may be borrowing [scratch] while a doom-triggered
          opportunistic flush runs. *)
  mutable on_tick : unit -> unit;
      (** runs once at the top of every loop iteration — for embeddings
          that must poll a plain flag set from a signal handler, where
          {!inject}'s mutex is off-limits *)
  mutable stop_requested : bool;
  mutable running : bool;
}

let create () : t =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  { wheel = Wheel.create ()
  ; regs = Hashtbl.create 64
  ; wake_r
  ; wake_w
  ; mu = Mutex.create ()
  ; injected = Queue.create ()
  ; deferred = Queue.create ()
  ; scratch = Bytes.create 65536
  ; gather = Bytes.create 65536
  ; on_tick = ignore
  ; stop_requested = false
  ; running = false }

let scratch t = t.scratch
let gather t = t.gather

let register (t : t) (fd : Unix.file_descr) ~(on_readable : unit -> unit)
    ~(on_writable : unit -> unit) : registration =
  if Hashtbl.mem t.regs fd then
    invalid_arg "Reactor.register: fd already registered";
  let r =
    { r_fd = fd; r_read = true; r_write = false
    ; r_on_readable = on_readable; r_on_writable = on_writable
    ; r_active = true }
  in
  Hashtbl.replace t.regs fd r;
  r

let set_read (r : registration) (b : bool) = r.r_read <- b
let set_write (r : registration) (b : bool) = r.r_write <- b

let set_handlers (r : registration) ~(on_readable : unit -> unit)
    ~(on_writable : unit -> unit) =
  r.r_on_readable <- on_readable;
  r.r_on_writable <- on_writable

let deregister (t : t) (r : registration) =
  if r.r_active then begin
    r.r_active <- false;
    Hashtbl.remove t.regs r.r_fd
  end

let fd_count (t : t) = Hashtbl.length t.regs

(** Install a per-iteration hook (see the [on_tick] field). Set it
    before {!run}; only signal-handler-safe flag polling belongs here. *)
let set_on_tick (t : t) (fn : unit -> unit) = t.on_tick <- fn

let after (t : t) (delay_s : float) (action : unit -> unit) : timer =
  Wheel.schedule t.wheel ~at:(now () +. delay_s) action

let cancel (_t : t) (tm : timer) = Wheel.cancel tm

let pending_timers (t : t) = Wheel.pending t.wheel

(** Run [fn] on the loop thread after the current dispatch round —
    loop-thread callers only (used for close sweeps that must not
    invalidate state mid-dispatch). *)
let defer (t : t) (fn : unit -> unit) = Queue.add fn t.deferred

let wake (t : t) =
  (* best-effort single byte; a full pipe already guarantees a wakeup *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | EPIPE | EBADF), _, _)
  -> ()

(** Thread-safe (and domain-safe): enqueue [fn] to run on the loop
    thread and wake the loop. *)
let inject (t : t) (fn : unit -> unit) =
  Mutex.lock t.mu;
  Queue.add fn t.injected;
  Mutex.unlock t.mu;
  wake t

(** Thread-safe: ask the loop to exit after the current round. *)
let stop (t : t) =
  Mutex.lock t.mu;
  t.stop_requested <- true;
  Mutex.unlock t.mu;
  wake t

let drain_wake_pipe (t : t) =
  let junk = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r junk 0 (Bytes.length junk) with
    | n when n = Bytes.length junk -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  go ()

let run_injected (t : t) =
  let pending = Queue.create () in
  Mutex.lock t.mu;
  Queue.transfer t.injected pending;
  Mutex.unlock t.mu;
  Queue.iter (fun fn -> fn ()) pending

let run_deferred (t : t) =
  while not (Queue.is_empty t.deferred) do
    (Queue.pop t.deferred) ()
  done

(** A closed fd slipped into the interest set (a bug in the caller, or
    a race with an external close): deactivate it so select can make
    progress, rather than spinning on EBADF. *)
let prune_bad_fds (t : t) =
  let bad =
    Hashtbl.fold
      (fun fd r acc ->
        match Unix.fstat fd with
        | _ -> acc
        | exception Unix.Unix_error (EBADF, _, _) -> r :: acc)
      t.regs []
  in
  List.iter
    (fun r ->
      Log.warn (fun m -> m "dropping registration for closed fd");
      deregister t r)
    bad

let select_timeout (t : t) =
  match Wheel.next_deadline t.wheel with
  | None -> 0.5
  | Some d -> Float.max 0.0 (Float.min (d -. now ()) 0.5)

(** The loop: fire due timers, run injected thunks, select on the
    interest sets, dispatch writes then reads, then run deferred
    cleanups — until {!stop}. Returns with all injected/deferred work
    drained; registered fds are {e not} closed (owners do that). *)
let run (t : t) =
  if t.running then invalid_arg "Reactor.run: already running";
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      while not t.stop_requested do
        ignore (Wheel.fire t.wheel ~now:(now ()));
        run_injected t;
        t.on_tick ();
        run_deferred t;
        if not t.stop_requested then begin
          let timeout = select_timeout t in
          let reads =
            Hashtbl.fold
              (fun fd r acc -> if r.r_active && r.r_read then fd :: acc else acc)
              t.regs [ t.wake_r ]
          in
          let writes =
            Hashtbl.fold
              (fun fd r acc ->
                if r.r_active && r.r_write then fd :: acc else acc)
              t.regs []
          in
          match Unix.select reads writes [] timeout with
          | exception Unix.Unix_error (EINTR, _, _) -> ()
          | exception Unix.Unix_error (EBADF, _, _) -> prune_bad_fds t
          | readable, writable, _ ->
            if List.memq t.wake_r readable then begin
              drain_wake_pipe t;
              run_injected t
            end;
            List.iter
              (fun fd ->
                match Hashtbl.find_opt t.regs fd with
                | Some r when r.r_active && r.r_write -> r.r_on_writable ()
                | _ -> ())
              writable;
            List.iter
              (fun fd ->
                if fd != t.wake_r then
                  match Hashtbl.find_opt t.regs fd with
                  | Some r when r.r_active && r.r_read -> r.r_on_readable ()
                  | _ -> ())
              readable;
            run_deferred t
        end
      done;
      (* final sweep so close/cleanup thunks queued by the last round
         (or by stop itself) still run *)
      run_injected t;
      run_deferred t)

(** Release the wake pipe. Call only after {!run} has returned. *)
let dispose (t : t) =
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()
