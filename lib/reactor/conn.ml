(** Generic buffered connection driver for reactor-hosted servers.

    A [Conn.t] owns one non-blocking socket on one {!Reactor.t} and
    factors out the plumbing every server used to hand-roll: read
    reassembly (length-prefixed frames via {!Frame.Decoder}, or raw
    chunks for line protocols like HTTP), a bounded write queue with
    partial-write tracking and droppable entries (backpressure
    shedding), graceful close (best-effort flush of queued replies),
    per-connection deadlines on the reactor's timer wheel, and
    {!detach}/{!adopt} to migrate a live connection between reactors
    (relay shard handoff).

    Write queues hold {!Omf_util.Slice} lists (iovec-style wire
    messages), not copies: {!send} frames a body as a fresh 4-byte
    header slice plus the body buffer shared as-is, so fanning one
    payload out to N connections queues N views of a single buffer.
    The flush loop writes large slices straight from their backing
    buffers and coalesces each run of small adjacent slices through
    the reactor's gather buffer into a single [Unix.write]. Queued
    buffers are owned by the queue: callers must not mutate a body
    after sending it.

    Protocol logic stays in callbacks; the driver never interprets
    frame contents. *)

module Slice = Omf_util.Slice

let log = Logs.Src.create "omf.reactor.conn" ~doc:"buffered connection driver"

module Log = (val Logs.src_log log)

type mode =
  | Frames  (** 4-byte big-endian length prefix, reassembled frames *)
  | Chunks  (** raw reads delivered as-is (HTTP and friends) *)

type entry = {
  iov : Slice.t array;  (** wire slices: header + shared body *)
  mutable idx : int;  (** first slice not yet fully written *)
  mutable off : int;  (** bytes already written within [iov.(idx)] *)
  droppable : bool;  (** sheddable data frame *)
  total : int;  (** summed slice lengths at enqueue *)
}

type state =
  | Alive
  | Closing  (** flush the queue, then close *)
  | Doomed of string  (** one best-effort flush, close after dispatch *)
  | Closed of string

type t = {
  fd : Unix.file_descr;
  mode : mode;
  decoder : Frame.Decoder.t;
  outq : entry Queue.t;
  mutable q_droppable : int;
  mutable q_bytes : int;  (** unwritten bytes across all queued entries *)
  mutable loop : Reactor.t option;  (** [None] while detached *)
  mutable reg : Reactor.registration option;
  mutable on_input : t -> Bytes.t -> unit;
  mutable on_chunk : (t -> Slice.t -> unit) option;
      (** Chunks-mode zero-copy delivery; see {!attach} *)
  mutable on_close : t -> string -> unit;
  mutable on_progress : t -> unit;
  mutable on_decode_error : t -> string -> unit;
  mutable on_bytes : t -> [ `In | `Out ] -> int -> unit;
  mutable deadline : Reactor.timer option;
  mutable state : state;
  mutable reading : bool;  (** caller's read intent (publisher pause) *)
}

exception Write_failed of string

let fd (c : t) = c.fd
let alive (c : t) = c.state = Alive
let queued (c : t) = Queue.length c.outq
let queued_droppable (c : t) = c.q_droppable
let queued_bytes (c : t) = c.q_bytes
let pending_input (c : t) = Frame.Decoder.pending_bytes c.decoder

let sync_interest (c : t) =
  match c.reg with
  | None -> ()
  | Some r ->
    Reactor.set_read r (c.reading && c.state = Alive);
    Reactor.set_write r
      (not (Queue.is_empty c.outq)
      &&
      match c.state with Alive | Closing -> true | Doomed _ | Closed _ -> false)

let clear_deadline (c : t) =
  match (c.deadline, c.loop) with
  | Some tm, Some loop ->
    Reactor.cancel loop tm;
    c.deadline <- None
  | _ -> c.deadline <- None

let close_now (c : t) (reason : string) =
  match c.state with
  | Closed _ -> ()
  | _ ->
    c.state <- Closed reason;
    clear_deadline c;
    (match (c.reg, c.loop) with
    | Some r, Some loop -> Reactor.deregister loop r
    | _ -> ());
    c.reg <- None;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    c.on_close c reason

let entry_done (e : entry) = e.idx >= Array.length e.iov

(** Pop fully-written (or empty) entries off the queue head. *)
let pop_done (c : t) =
  while (not (Queue.is_empty c.outq)) && entry_done (Queue.peek c.outq) do
    let e = Queue.pop c.outq in
    if e.droppable then c.q_droppable <- c.q_droppable - 1
  done

(** Consume [n] freshly-written bytes from the queue head, advancing
    per-entry slice cursors and popping completed entries. *)
let advance (c : t) (n : int) =
  c.q_bytes <- c.q_bytes - n;
  let left = ref n in
  while !left > 0 do
    let e = Queue.peek c.outq in
    if entry_done e then begin
      ignore (Queue.pop c.outq);
      if e.droppable then c.q_droppable <- c.q_droppable - 1
    end
    else begin
      let rem = Slice.length e.iov.(e.idx) - e.off in
      if !left >= rem then begin
        left := !left - rem;
        e.off <- 0;
        e.idx <- e.idx + 1
      end
      else begin
        e.off <- e.off + !left;
        left := 0
      end
    end
  done;
  pop_done c

(** Pieces at least this long are written straight from their backing
    buffers (zero copy) when they reach the queue head; shorter pieces
    — frame headers, entry tails left by a partial write — are
    coalesced into the reactor's gather buffer. A large piece {e is}
    blended into a gather, but only when it fits whole in the
    remaining capacity: one memcpy into the reused buffer is cheaper
    than the extra syscall, and it keeps a 4-byte header slice from
    ever going out as its own tinygram segment. A large piece is
    never {e split} across a gather boundary — a partially blended
    body would let the staging run fill the buffer to exactly its
    capacity and emit maximal (≈MSS) segments, which parks the
    receiver on its ~40 ms delayed-ACK timer and collapses throughput
    on small-buffer sockets. Stopping at the first oversized piece
    instead preserves the one-small-plus-one-large segment rhythm per
    pump that keeps the peer's TCP stack in immediate-ACK mode. *)
let gather_threshold = 2048

(** Copy queued pieces into [gbuf], starting at the queue head's
    cursor: small pieces (< {!gather_threshold}) always, large pieces
    only when their whole remainder fits in the unfilled capacity —
    stopping at the first large piece that does not fit (written
    zero-copy by the caller's next iteration), at the end of the
    queue, or when [gbuf] is full. Staging into the preallocated
    gather buffer allocates nothing, and one write per run beats a
    syscall per piece. Returns the bytes staged. *)
let stage_gather (c : t) (gbuf : Bytes.t) : int =
  let cap = Bytes.length gbuf in
  let filled = ref 0 in
  (try
     Queue.iter
       (fun e ->
         let i = ref e.idx and o = ref e.off in
         while !i < Array.length e.iov do
           let s = e.iov.(!i) in
           let rem = Slice.length s - !o in
           if rem >= gather_threshold && rem > cap - !filled then
             raise Exit;
           let copy = min rem (cap - !filled) in
           Bytes.blit s.Slice.buf (s.Slice.off + !o) gbuf !filled copy;
           filled := !filled + copy;
           if !filled = cap then raise Exit;
           o := 0;
           incr i
         done)
       c.outq
   with Exit -> ());
  !filled

(** Write as much of the queue as the socket accepts right now: large
    slices go straight from their backing buffers, runs of small
    adjacent slices coalesce into one gather write. Raises
    {!Write_failed} on a hard socket error. *)
let flush_step (c : t) : bool =
  (* the gather buffer lives on the reactor; while detached (shard
     handoff) fall back to per-slice writes *)
  let gbuf =
    match c.loop with Some loop -> Some (Reactor.gather loop) | None -> None
  in
  let progressed = ref false in
  let continue = ref true in
  while
    !continue
    &&
    (pop_done c;
     not (Queue.is_empty c.outq))
  do
    let e = Queue.peek c.outq in
    let s = e.iov.(e.idx) in
    let rem = Slice.length s - e.off in
    let buf, off, len =
      match gbuf with
      | Some g when rem < gather_threshold ->
        let staged = stage_gather c g in
        (g, 0, staged)
      | _ -> (s.Slice.buf, s.Slice.off + e.off, rem)
    in
    match Unix.write c.fd buf off len with
    | n ->
      progressed := true;
      advance c n;
      c.on_bytes c `Out n;
      if n < len then continue := false
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error (err, _, _) ->
      raise (Write_failed (Unix.error_message err))
  done;
  !progressed

(** Stop reading, try one opportunistic flush (small replies — an error
    frame, say — usually fit the socket buffer), close after the current
    dispatch round. Idempotent; the first reason wins. *)
let doom (c : t) (reason : string) =
  match c.state with
  | Doomed _ | Closed _ -> ()
  | Alive | Closing ->
    c.state <- Doomed reason;
    (try ignore (flush_step c) with Write_failed _ -> ());
    sync_interest c;
    (match c.loop with
    | Some loop -> Reactor.defer loop (fun () -> close_now c reason)
    | None -> close_now c reason)

(** Flush everything queued, then close ("graceful": HTTP responses). *)
let flush_close (c : t) =
  match c.state with
  | Doomed _ | Closed _ | Closing -> ()
  | Alive ->
    if Queue.is_empty c.outq then
      match c.loop with
      | Some loop -> Reactor.defer loop (fun () -> close_now c "done")
      | None -> close_now c "done"
    else begin
      c.state <- Closing;
      c.reading <- false;
      sync_interest c
    end

let writable (c : t) =
  match flush_step c with
  | progressed ->
    if Queue.is_empty c.outq then begin
      match c.state with
      | Closing -> close_now c "done"
      | _ -> sync_interest c
    end
    else sync_interest c;
    if progressed && c.state = Alive then c.on_progress c
  | exception Write_failed msg -> doom c ("write error: " ^ msg)

(** Deliver every complete frame buffered in the decoder. Stops if the
    connection leaves [Alive] or is detached mid-loop (shard handoff
    re-dispatches the rest on the adopting reactor). *)
let rec drain_frames (c : t) =
  if c.state = Alive && c.reg <> None then
    match Frame.Decoder.pop c.decoder with
    | None -> ()
    | Some frame ->
      (try c.on_input c frame
       with e ->
         Log.err (fun m ->
             m "on_frame raised %s; closing connection" (Printexc.to_string e));
         doom c (Printexc.to_string e));
      drain_frames c
    | exception Frame.Frame_error msg ->
      c.on_decode_error c msg;
      doom c msg

let readable (c : t) =
  match c.loop with
  | None -> ()
  | Some loop -> (
    let scratch = Reactor.scratch loop in
    match Unix.read c.fd scratch 0 (Bytes.length scratch) with
    | 0 -> doom c "peer closed"
    | n -> (
      c.on_bytes c `In n;
      match c.mode with
      | Chunks ->
        if c.state = Alive then (
          match c.on_chunk with
          | Some f -> f c (Slice.make scratch 0 n)
          | None -> c.on_input c (Bytes.sub scratch 0 n))
      | Frames ->
        Frame.Decoder.feed c.decoder scratch 0 n;
        drain_frames c)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
      doom c ("read error: " ^ Unix.error_message e))

let default_on_bytes _ _ _ = ()
let default_on_progress _ = ()
let default_on_decode_error _ _ = ()

(** [attach loop fd ~on_close ()] hosts [fd] on [loop].

    Input delivery, by [mode]:
    - [Frames] (default): reassembled frame bodies via [~on_frame]
      (fresh buffers — safe to retain or queue elsewhere).
    - [Chunks] with [~on_chunk]: each read is delivered as a slice
      {e borrowing the reactor's scratch buffer}. The borrow is valid
      only for the duration of the callback — the next read by any
      connection on this loop overwrites it. Copy what must outlive
      the call ({!Slice.to_bytes}) — but a parser that consumes into
      its own accumulator (HTTP's header buffer, say) never needs the
      intermediate copy the old [Bytes.t] interface forced.
    - [Chunks] with only [~on_frame]: legacy copying delivery — each
      read arrives as a fresh [Bytes.t]. *)
let attach (loop : Reactor.t) (fd : Unix.file_descr) ?(mode = Frames)
    ?max_frame ?on_frame ?on_chunk ~(on_close : t -> string -> unit)
    ?(on_progress = default_on_progress)
    ?(on_decode_error = default_on_decode_error)
    ?(on_bytes = default_on_bytes) () : t =
  (match (mode, on_frame, on_chunk) with
  | Frames, None, _ -> invalid_arg "Conn.attach: Frames mode needs ~on_frame"
  | Frames, _, Some _ ->
    invalid_arg "Conn.attach: ~on_chunk is Chunks-mode only"
  | Chunks, None, None ->
    invalid_arg "Conn.attach: Chunks mode needs ~on_chunk or ~on_frame"
  | _ -> ());
  Unix.set_nonblock fd;
  let c =
    { fd; mode; decoder = Frame.Decoder.create ?max_frame ()
    ; outq = Queue.create (); q_droppable = 0; q_bytes = 0; loop = Some loop
    ; reg = None
    ; on_input = (match on_frame with Some f -> f | None -> fun _ _ -> ())
    ; on_chunk; on_close; on_progress; on_decode_error; on_bytes
    ; deadline = None; state = Alive; reading = true }
  in
  let r =
    Reactor.register loop fd
      ~on_readable:(fun () -> readable c)
      ~on_writable:(fun () -> writable c)
  in
  c.reg <- Some r;
  sync_interest c;
  c

let enqueue (c : t) ~droppable (wire : Slice.t list) =
  match c.state with
  | Alive ->
    let iov =
      Array.of_list (List.filter (fun s -> Slice.length s > 0) wire)
    in
    let total = Array.fold_left (fun a s -> a + Slice.length s) 0 iov in
    Queue.add { iov; idx = 0; off = 0; droppable; total } c.outq;
    if droppable then c.q_droppable <- c.q_droppable + 1;
    c.q_bytes <- c.q_bytes + total;
    sync_interest c
  | Closing | Doomed _ | Closed _ -> ()

(** Queue a framed wire message (Frames mode) as-is: the slices'
    backing buffers are shared with the queue, never copied. Callers
    must not mutate them afterwards. *)
let send_wire (c : t) ?(droppable = false) (wire : Slice.t list) =
  enqueue c ~droppable wire

(** Queue a length-prefixed frame (Frames mode). Allocates only the
    4-byte header; [body]'s buffer is shared with the queue (ownership
    transfers — don't mutate it after sending). *)
let send (c : t) ?(droppable = false) (body : Bytes.t) =
  enqueue c ~droppable (Frame.wire [ Slice.of_bytes body ])

(** Queue raw bytes verbatim (Chunks mode / HTTP responses). Takes
    ownership of [wire]. *)
let send_raw (c : t) ?(droppable = false) (wire : Bytes.t) =
  enqueue c ~droppable [ Slice.of_bytes wire ]

(** Drop the oldest fully-unwritten droppable entry, if any
    ([Drop_oldest] backpressure). Returns the wire bytes shed (0 when
    nothing was droppable) so callers can credit byte budgets. *)
let drop_oldest_droppable (c : t) : int =
  let found = ref false in
  let dropped = ref 0 in
  let keep = Queue.create () in
  Queue.iter
    (fun e ->
      if (not !found) && e.droppable && e.idx = 0 && e.off = 0 then begin
        found := true;
        dropped := e.total
      end
      else Queue.add e keep)
    c.outq;
  if !found then begin
    Queue.clear c.outq;
    Queue.transfer keep c.outq;
    c.q_droppable <- c.q_droppable - 1;
    c.q_bytes <- c.q_bytes - !dropped
  end;
  !dropped

(** Pause/resume delivering reads (the relay pauses publishers while a
    subscriber is over its watermark under [Block]). *)
let set_read_intent (c : t) (b : bool) =
  c.reading <- b;
  sync_interest c

(** Arm (or clear) an inactivity deadline: the connection is doomed with
    [reason] if the timer fires. Re-arming cancels the previous timer.
    Deadlines do not survive {!detach}. *)
let set_deadline (c : t) ?(reason = "deadline exceeded") = function
  | None -> clear_deadline c
  | Some delay_s -> (
    clear_deadline c;
    match c.loop with
    | None -> invalid_arg "Conn.set_deadline: detached"
    | Some loop ->
      c.deadline <- Some (Reactor.after loop delay_s (fun () -> doom c reason)))

(** Unhook from the current reactor, keeping fd, decoder backlog, write
    queue, and callbacks intact. Loop-thread only; the conn is inert
    until {!adopt}. *)
let detach (c : t) =
  (match c.state with
  | Alive -> ()
  | _ -> invalid_arg "Conn.detach: connection not alive");
  clear_deadline c;
  (match (c.reg, c.loop) with
  | Some r, Some loop -> Reactor.deregister loop r
  | _ -> ());
  c.reg <- None;
  c.loop <- None

(** Re-register a detached conn on [loop] (called on [loop]'s thread,
    typically from an {!Reactor.inject} thunk). Any frames already
    buffered in the decoder are re-dispatched after the current round. *)
let adopt (loop : Reactor.t) (c : t) =
  if c.reg <> None || c.loop <> None then
    invalid_arg "Conn.adopt: connection still attached";
  (match c.state with
  | Alive -> ()
  | _ -> invalid_arg "Conn.adopt: connection not alive");
  c.loop <- Some loop;
  let r =
    Reactor.register loop c.fd
      ~on_readable:(fun () -> readable c)
      ~on_writable:(fun () -> writable c)
  in
  c.reg <- Some r;
  sync_interest c;
  Reactor.defer loop (fun () -> drain_frames c)

(** Replace the protocol callbacks (a server adopting a foreign conn). *)
let set_callbacks (c : t) ?on_frame ?on_chunk ?on_close ?on_progress
    ?on_decode_error ?on_bytes () =
  Option.iter (fun f -> c.on_input <- f) on_frame;
  Option.iter (fun f -> c.on_chunk <- Some f) on_chunk;
  Option.iter (fun f -> c.on_close <- f) on_close;
  Option.iter (fun f -> c.on_progress <- f) on_progress;
  Option.iter (fun f -> c.on_decode_error <- f) on_decode_error;
  Option.iter (fun f -> c.on_bytes <- f) on_bytes
