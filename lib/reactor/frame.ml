(** Length-prefixed frame codec with incremental reassembly.

    The TCP framing (PROTOCOLS.md section 5) is a 4-byte big-endian
    length followed by the frame body. {!Tcp} reads it with blocking
    [really_read]; an event-loop server ({!Omf_relay}) instead gets
    arbitrary chunks from non-blocking sockets and must reassemble
    frames across partial reads — that is {!Decoder}'s job. The encoder
    side is shared by both. *)

module Slice = Omf_util.Slice

exception Frame_error of string

let frame_error fmt = Printf.ksprintf (fun s -> raise (Frame_error s)) fmt

let header_length = 4

(** Frames longer than this are treated as protocol corruption. *)
let default_max_frame = 1 lsl 30

let write_header (buf : Bytes.t) (off : int) (len : int) : unit =
  Bytes.set buf off (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set buf (off + 2) (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set buf (off + 3) (Char.chr (len land 0xFF))

let read_header (buf : Bytes.t) (off : int) : int =
  let b i = Char.code (Bytes.get buf (off + i)) in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

(** [encode body] is the on-the-wire bytes: header + body, one buffer
    (so one [write] on the socket). Copies [body]; the zero-copy path
    is {!wire}. *)
let encode (body : Bytes.t) : Bytes.t =
  let len = Bytes.length body in
  let b = Bytes.create (header_length + len) in
  write_header b 0 len;
  Bytes.blit body 0 b header_length len;
  b

(** [header len] is a fresh 4-byte length prefix. *)
let header (len : int) : Bytes.t =
  let b = Bytes.create header_length in
  write_header b 0 len;
  b

(** [wire body] is the framed wire message as slices: a fresh header
    slice followed by the body slices, which stay shared (no copy of
    the payload). [Slice.concat (wire body) = encode (Slice.concat
    body)] — the qcheck equivalence property in test_relay. *)
let wire (body : Slice.t list) : Slice.t list =
  Slice.of_bytes (header (Slice.total body)) :: body

(* ------------------------------------------------------------------ *)
(* Incremental decoder                                                  *)
(* ------------------------------------------------------------------ *)

module Decoder = struct
  type t = {
    mutable buf : Bytes.t;  (** accumulated unconsumed bytes *)
    mutable start : int;  (** first live byte in [buf] *)
    mutable stop : int;  (** one past the last live byte *)
    max_frame : int;
  }

  let create ?(max_frame = default_max_frame) () : t =
    { buf = Bytes.create 4096; start = 0; stop = 0; max_frame }

  let pending_bytes t = t.stop - t.start

  let ensure_room t extra =
    let live = pending_bytes t in
    if Bytes.length t.buf - t.stop < extra then
      if Bytes.length t.buf - live >= extra && t.start > 0 then begin
        (* compact in place *)
        Bytes.blit t.buf t.start t.buf 0 live;
        t.start <- 0;
        t.stop <- live
      end
      else begin
        let cap = ref (max 4096 (2 * Bytes.length t.buf)) in
        while !cap < live + extra do
          cap := !cap * 2
        done;
        let nb = Bytes.create !cap in
        Bytes.blit t.buf t.start nb 0 live;
        t.buf <- nb;
        t.start <- 0;
        t.stop <- live
      end

  (** [feed t chunk off len] appends raw socket bytes. *)
  let feed (t : t) (chunk : Bytes.t) (off : int) (len : int) : unit =
    if len < 0 || off < 0 || off + len > Bytes.length chunk then
      invalid_arg "Frame.Decoder.feed";
    ensure_room t len;
    Bytes.blit chunk off t.buf t.stop len;
    t.stop <- t.stop + len

  (** [pop t] is the next complete frame body, if one has fully
      arrived. Raises {!Frame_error} on an over-long or negative length
      header (protocol corruption — the connection is unrecoverable). *)
  let pop (t : t) : Bytes.t option =
    if pending_bytes t < header_length then None
    else begin
      let len = read_header t.buf t.start in
      if len < 0 || len > t.max_frame then
        frame_error "bad frame length %d (max %d)" len t.max_frame;
      if pending_bytes t < header_length + len then None
      else begin
        let body = Bytes.sub t.buf (t.start + header_length) len in
        t.start <- t.start + header_length + len;
        if t.start = t.stop then begin
          t.start <- 0;
          t.stop <- 0
        end;
        Some body
      end
    end
end
