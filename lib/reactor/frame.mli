(** Length-prefixed frame codec with incremental reassembly.

    The TCP framing (PROTOCOLS.md section 5) is a 4-byte big-endian
    length followed by the frame body. {!Tcp} reads it with blocking
    reads; an event-loop server ({!Omf_relay}) gets arbitrary chunks
    from non-blocking sockets and reassembles frames across partial
    reads with {!Decoder}. *)

exception Frame_error of string

val header_length : int
(** 4 — the big-endian length prefix. *)

val default_max_frame : int
(** Frames longer than this (1 GiB) are treated as corruption. *)

val write_header : Bytes.t -> int -> int -> unit
(** [write_header buf off len] writes the 4-byte prefix at [off]. *)

val read_header : Bytes.t -> int -> int
(** [read_header buf off] reads the 4-byte prefix at [off]. *)

val encode : Bytes.t -> Bytes.t
(** [encode body] is header + body in one buffer (one socket write).
    Copies the body; the zero-copy path is {!wire}. *)

val header : int -> Bytes.t
(** [header len] is a fresh 4-byte length prefix. *)

val wire : Omf_util.Slice.t list -> Omf_util.Slice.t list
(** [wire body] frames [body] as slices: a fresh header slice followed
    by the body slices unchanged — the payload is never copied.
    [Slice.concat (wire body)] equals [encode (Slice.concat body)]. *)

module Decoder : sig
  type t

  val create : ?max_frame:int -> unit -> t

  val feed : t -> Bytes.t -> int -> int -> unit
  (** [feed t chunk off len] appends raw socket bytes. *)

  val pop : t -> Bytes.t option
  (** The next complete frame body, if one has fully arrived. Raises
      {!Frame_error} on an over-long or negative length header
      (protocol corruption — the connection is unrecoverable). *)

  val pending_bytes : t -> int
  (** Buffered bytes not yet returned as frames. *)
end
