(** Versioned, content-addressed schema registry.

    Subjects map to immutable version chains. Each version is keyed by
    the SHA-256 fingerprint of its canonicalized descriptor
    ({!Omf_xschema.Schema.canonical}), so registration is idempotent —
    re-registering a structurally identical document returns the
    existing version — and receivers can bind conversion plans by
    fingerprint instead of refetching blobs. Registration passes a
    configurable compatibility gate that structurally diffs the new
    document against the subject's latest version
    ({!Omf_xml2wire.Compat}): a field added with a defaultable value is
    fine, a field removed or retyped is rejected per mode.

    The registry persists on the durable {!Omf_store} machinery
    (append-only, CRC-framed, recovered at startup) and is served over
    both the binary frame protocol and HTTP JSON (doc/REGISTRY.md,
    doc/PROTOCOLS.md section 14). *)

(** {1 Compatibility modes} *)

type compat_mode =
  | No_check  (** accept anything that parses *)
  | Backward
      (** readers of the old version keep working on new data: fields
          may be added, never removed or retyped *)
  | Forward
      (** readers of the new version can consume old data: fields may
          be removed, never added-without-default or retyped *)
  | Full  (** both directions: additions and removals both rejected *)

val compat_mode_of_string : string -> (compat_mode, string) result
(** ["none"], ["backward"], ["forward"], ["full"]. *)

val compat_mode_to_string : compat_mode -> string

(** {1 Versions} *)

type version = {
  subject : string;
  version : int;  (** 1-based, dense per subject *)
  fingerprint : string;  (** lowercase hex SHA-256 of the canonical form *)
  schema : string;  (** the registered document, verbatim *)
}

val fingerprint_of : string -> string
(** [fingerprint_of text] parses [text] as XML Schema and returns the
    hex SHA-256 of its canonical form. Raises
    {!Omf_xschema.Schema.Schema_error} on malformed documents. *)

(** {1 The registry} *)

type t

exception Incompatible of {
  subject : string;
  mode : compat_mode;
  reports : Omf_xml2wire.Compat.report list;
      (** only formats whose verdict exceeds [Safe] *)
}
(** Registration refused by the compatibility gate; the reports carry
    the structured per-format, per-field diff. *)

val diff_lines : Omf_xml2wire.Compat.report list -> string list
(** Render gate reports as one ["severity format.field: description"]
    line per change — the wire and HTTP error body. *)

val create : ?store:Omf_store.Store.config -> ?mode:compat_mode -> unit -> t
(** An empty registry. [mode] (default [Backward]) gates every subject
    unless overridden with {!set_mode}. With [store], state is
    persisted under the store root (stream ["registry"]) and recovered
    here: reopening the same root yields the same subjects, versions,
    fingerprints and mode overrides. *)

val close : t -> unit
(** Flush and close the backing store, if any. Idempotent. *)

val register : t -> subject:string -> string -> version
(** Register a schema document under [subject]. Idempotent by content:
    if the canonical fingerprint already exists in the subject's chain,
    that version is returned unchanged. Otherwise the document is
    gated against the subject's latest version and appended as a new
    immutable version. Raises {!Omf_xschema.Schema.Schema_error} on
    documents that do not parse and {!Incompatible} on gate refusal. *)

val set_mode : t -> subject:string -> compat_mode -> unit
(** Per-subject override of the registry-wide mode; persisted. *)

val mode : t -> subject:string -> compat_mode

val subjects : t -> string list  (** sorted *)

val versions : t -> string -> version list
(** The subject's chain, oldest first; [] for unknown subjects. *)

val find : t -> subject:string -> int -> version option
val latest : t -> string -> version option
val by_fingerprint : t -> string -> version option
(** Content-addressed lookup across all subjects. *)

val stats : t -> (string * int) list
(** Counter snapshot (registrations, idempotent hits, gate rejections,
    lookups, recovered records...). *)

(** {1 Server} *)

module Server : sig
  (** Serves a registry over the binary frame protocol (one reactor
      thread, like the format server) and optionally HTTP JSON.

      Binary requests (length-prefixed frames over {!Omf_transport.Tcp}):
      - ['R' "subject\n" schema] — register; reply
        ['o' "version=N\nfingerprint=HEX"] or ['e' reason] (gate
        refusals carry one diff line per change after the first line)
      - ['V' "subject\nN|latest"] — fetch a version; reply
        ['o' "version=N\nfingerprint=HEX\n" schema] or ['e'];
      - ['F' hex] — content-addressed fetch; reply
        ['o' "subject=S\nversion=N\n" schema] or ['e']
      - ['L'] — list; reply ['o'] with one "subject versions mode" line
        per subject
      - ['t'] — counter snapshot, {!Omf_util.Counters.to_text} body *)

  type server

  val start :
    ?host:string ->
    port:int ->
    ?http_port:int ->
    ?metrics_port:int ->
    t ->
    server
  (** [~port:0] (and the optional HTTP/metrics ports) bind ephemeral
      ports; read them back from the accessors. *)

  val port : server -> int
  val http_port : server -> int option
  val metrics_port : server -> int option
  val shutdown : server -> unit

  val http_handler : t -> Omf_httpd.Http.request_handler
  (** The HTTP JSON surface, exposed for mounting elsewhere (the
      metaserver):
      - [GET /subjects] — subject names
      - [GET /subjects/<s>/versions] — version numbers
      - [GET /subjects/<s>/versions/<n>] — one version ([<n>] numeric
        or [latest]); the schema text is in the JSON [schema] field
      - [POST /subjects/<s>/versions] — register (body = schema XML);
        201 with the version on success, 409 + diff lines on gate
        refusal, 400 on documents that do not parse
      - [GET /schemas/ids/<fingerprint>] — content-addressed fetch *)
end

(** {1 Client} *)

module Client : sig
  type t

  exception Server_unavailable of string
  exception Rejected of string
  (** Registration refused; the message carries the server's diff
      lines. *)

  val connect : ?host:string -> port:int -> ?timeout_s:float -> unit -> t
  val close : t -> unit

  val register : t -> subject:string -> string -> int * string
  (** [(version, fingerprint)]; raises {!Rejected} on gate refusal. *)

  val get : t -> subject:string -> [ `Latest | `N of int ] -> version option
  val by_fingerprint : t -> string -> version option
  val subjects : t -> (string * int * string) list
  (** [(subject, versions, mode)] per subject. *)

  val stats : t -> (string * int) list
end

(** {1 Caching resolver} *)

module Resolver : sig
  (** Client-side cache over a registry connection: positive entries
      are immutable (versions never change under a fingerprint or a
      (subject, version) key, so they cache forever); misses are
      negatively cached for [neg_ttl_s] so a hot path cannot hammer
      the server asking for a version that does not exist; and
      {!prefetch} warms the cache from a background thread so the
      fetch overlaps first-message delivery (async discovery). *)

  type t

  val create : ?neg_ttl_s:float -> Client.t -> t
  (** [neg_ttl_s] defaults to 1.0 s. *)

  val resolve : t -> subject:string -> [ `Latest | `N of int ] -> version option
  (** [`Latest] consults the server each time it is not positively
      cached yet (the chain can grow); [`N _] hits are cached forever.
      [None] while a negative entry is fresh. *)

  val resolve_fingerprint : t -> string -> version option

  val prefetch : t -> subject:string -> [ `Latest | `N of int ] -> unit
  (** Start resolving on a background thread; a later {!resolve} hits
      the warmed cache. Errors are swallowed (the foreground resolve
      will surface them). *)

  val stats : t -> (string * int) list
  (** hits / misses / negative hits / prefetches. *)
end

val discovery_source :
  Resolver.t -> subject:string -> ?version:[ `Latest | `N of int ] -> unit ->
  Omf_xml2wire.Discovery.source
(** A {!Omf_xml2wire.Discovery} source labelled
    ["registry:<subject>"] that resolves the subject through the
    caching resolver — chain it before a compiled-in fallback and
    after {!Resolver.prefetch} to overlap the fetch with first-message
    delivery. *)
