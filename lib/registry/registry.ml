(** Versioned, content-addressed schema registry (doc/REGISTRY.md).

    Subjects map to immutable version chains; each version is keyed by
    the SHA-256 fingerprint of its canonicalized descriptor, making
    registration idempotent by content and letting receivers bind
    conversion plans by fingerprint. Registration is gated by a
    structural diff ({!Omf_xml2wire.Compat}) against the subject's
    latest version, per compatibility mode. State persists on the
    durable {!Omf_store} log and is recovered at open. *)

let log = Logs.Src.create "omf.registry" ~doc:"schema registry"

module Log = (val Logs.src_log log)

module Schema = Omf_xschema.Schema
module Compat = Omf_xml2wire.Compat
module Sha256 = Omf_util.Sha256
module Counters = Omf_util.Counters
module Store = Omf_store.Store

(* ------------------------------------------------------------------ *)
(* Compatibility modes                                                  *)
(* ------------------------------------------------------------------ *)

type compat_mode = No_check | Backward | Forward | Full

let compat_mode_of_string = function
  | "none" -> Ok No_check
  | "backward" -> Ok Backward
  | "forward" -> Ok Forward
  | "full" -> Ok Full
  | s -> Error (Printf.sprintf "unknown compat mode %S (none|backward|forward|full)" s)

let compat_mode_to_string = function
  | No_check -> "none"
  | Backward -> "backward"
  | Forward -> "forward"
  | Full -> "full"

(* ------------------------------------------------------------------ *)
(* Versions and fingerprints                                            *)
(* ------------------------------------------------------------------ *)

type version = {
  subject : string;
  version : int;
  fingerprint : string;
  schema : string;
}

let fingerprint_of_schema (s : Schema.t) : string =
  Sha256.hex (Sha256.digest (Schema.canonical s))

let fingerprint_of (text : string) : string =
  fingerprint_of_schema (Schema.of_string text)

exception Incompatible of {
  subject : string;
  mode : compat_mode;
  reports : Compat.report list;
}

let diff_lines (reports : Compat.report list) : string list =
  List.concat_map
    (fun (r : Compat.report) ->
      List.map
        (fun (c : Compat.change) ->
          Printf.sprintf "%s %s.%s: %s"
            (Compat.severity_label c.Compat.severity)
            r.Compat.format_name c.Compat.field c.Compat.description)
        r.Compat.changes)
    reports

(** The gate: which diffs must be all-[Safe] for [mode]? Backward
    means a reader of the old version keeps working on new data
    ([diff old -> new]); forward means a reader of the new version can
    consume old data ([diff new -> old]); full is both. *)
let gate_reports ~(mode : compat_mode) ~(prior : Schema.t) ~(next : Schema.t) :
    Compat.report list =
  let offending ~old_schema ~new_schema =
    List.filter
      (fun (r : Compat.report) ->
        Compat.severity_rank r.Compat.verdict > Compat.severity_rank Compat.Safe)
      (Compat.diff_schemas ~old_schema ~new_schema)
  in
  match mode with
  | No_check -> []
  | Backward -> offending ~old_schema:prior ~new_schema:next
  | Forward -> offending ~old_schema:next ~new_schema:prior
  | Full ->
    offending ~old_schema:prior ~new_schema:next
    @ offending ~old_schema:next ~new_schema:prior

(* ------------------------------------------------------------------ *)
(* The registry                                                         *)
(* ------------------------------------------------------------------ *)

type t = {
  mutex : Mutex.t;
  default_mode : compat_mode;
  chains : (string, version list) Hashtbl.t;  (** newest first *)
  by_fp : (string, version) Hashtbl.t;  (** first registration wins *)
  modes : (string, compat_mode) Hashtbl.t;
  counters : Counters.t;
  store : Store.t option;
  mutable closed : bool;
}

(** Persistence record formats (kind byte + text body on the CRC-framed
    store): ['V' "subject\nversion\nfingerprint\n" schema] appends a
    version, ['C' "subject\nmode"] records a mode override. *)

let encode_version (v : version) : Bytes.t =
  Bytes.of_string
    (Printf.sprintf "V%s\n%d\n%s\n%s" v.subject v.version v.fingerprint
       v.schema)

let encode_mode subject mode : Bytes.t =
  Bytes.of_string (Printf.sprintf "C%s\n%s" subject (compat_mode_to_string mode))

let split_line (s : string) (from : int) : (string * int) option =
  match String.index_from_opt s from '\n' with
  | None -> None
  | Some i -> Some (String.sub s from (i - from), i + 1)

let decode_record (frame : Bytes.t) :
    [ `Version of version | `Mode of string * compat_mode | `Junk of string ] =
  if Bytes.length frame < 1 then `Junk "empty record"
  else
    let body = Bytes.sub_string frame 1 (Bytes.length frame - 1) in
    match Bytes.get frame 0 with
    | 'V' -> (
      match split_line body 0 with
      | None -> `Junk "version record: missing subject line"
      | Some (subject, p) -> (
        match split_line body p with
        | None -> `Junk "version record: missing version line"
        | Some (vstr, p) -> (
          match (int_of_string_opt vstr, split_line body p) with
          | Some n, Some (fingerprint, p) ->
            `Version
              { subject; version = n; fingerprint
              ; schema = String.sub body p (String.length body - p) }
          | _ -> `Junk "version record: malformed header")))
    | 'C' -> (
      match split_line body 0 with
      | None -> `Junk "mode record: missing subject line"
      | Some (subject, p) -> (
        match
          compat_mode_of_string (String.sub body p (String.length body - p))
        with
        | Ok m -> `Mode (subject, m)
        | Error e -> `Junk e))
    | k -> `Junk (Printf.sprintf "unknown record kind %C" k)

(* table updates shared by registration and recovery; caller holds the
   mutex *)
let admit t (v : version) =
  Hashtbl.replace t.chains v.subject
    (v :: (Option.value ~default:[] (Hashtbl.find_opt t.chains v.subject)));
  if not (Hashtbl.mem t.by_fp v.fingerprint) then
    Hashtbl.replace t.by_fp v.fingerprint v

let recover t (st : Store.t) =
  Store.iter_from st 0 (fun _off frame ->
      match decode_record frame with
      | `Version v ->
        admit t v;
        Counters.incr t.counters "recovered_versions"
      | `Mode (subject, m) ->
        Hashtbl.replace t.modes subject m;
        Counters.incr t.counters "recovered_modes"
      | `Junk reason ->
        (* CRC passed but the body is not ours: skip, loudly *)
        Counters.incr t.counters "recovered_junk";
        Log.warn (fun m -> m "registry recovery skipped a record: %s" reason))

let create ?store ?(mode = Backward) () : t =
  let t =
    { mutex = Mutex.create (); default_mode = mode
    ; chains = Hashtbl.create 16; by_fp = Hashtbl.create 32
    ; modes = Hashtbl.create 8; counters = Counters.create ()
    ; store = Option.map (fun cfg -> Store.open_stream cfg "registry") store
    ; closed = false }
  in
  Option.iter (recover t) t.store;
  t

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Option.iter Store.close t.store
      end)

let persist t (frame : Bytes.t) =
  match t.store with
  | None -> ()
  | Some st ->
    ignore (Store.append st frame);
    (* registry writes are rare and precious: always make them durable
       before acknowledging *)
    ignore (Store.sync st)

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let mode t ~subject =
  locked t (fun () ->
      Option.value ~default:t.default_mode (Hashtbl.find_opt t.modes subject))

let set_mode t ~subject m =
  locked t (fun () ->
      Hashtbl.replace t.modes subject m;
      persist t (encode_mode subject m))

let subjects t =
  locked t (fun () ->
      List.sort compare (Hashtbl.fold (fun s _ acc -> s :: acc) t.chains []))

let versions t subject =
  locked t (fun () ->
      List.rev (Option.value ~default:[] (Hashtbl.find_opt t.chains subject)))

let find t ~subject n =
  locked t (fun () ->
      match Hashtbl.find_opt t.chains subject with
      | None -> None
      | Some chain -> List.find_opt (fun v -> v.version = n) chain)

let latest t subject =
  locked t (fun () ->
      match Hashtbl.find_opt t.chains subject with
      | None | Some [] -> None
      | Some (v :: _) -> Some v)

let by_fingerprint t fp =
  let r = locked t (fun () -> Hashtbl.find_opt t.by_fp fp) in
  Counters.incr t.counters
    (match r with Some _ -> "fingerprint_hits" | None -> "fingerprint_misses");
  r

let stats t = Counters.dump t.counters

let register t ~subject text : version =
  (* parse and fingerprint outside the lock: pure work *)
  let schema = Schema.of_string text in
  let fp = fingerprint_of_schema schema in
  let outcome =
    locked t (fun () ->
        let chain = Option.value ~default:[] (Hashtbl.find_opt t.chains subject) in
        match List.find_opt (fun v -> String.equal v.fingerprint fp) chain with
        | Some existing ->
          Counters.incr t.counters "register_idempotent";
          `Existing existing
        | None -> (
          let m =
            Option.value ~default:t.default_mode (Hashtbl.find_opt t.modes subject)
          in
          match chain with
          | [] -> `Admit (m, None)
          | prior :: _ -> `Admit (m, Some prior)))
  in
  match outcome with
  | `Existing v -> v
  | `Admit (m, prior) -> (
    (* diff outside the lock too — parsing the prior document is the
       expensive part; a racing register of the same subject is caught
       by re-checking the chain head under the lock below *)
    (match prior with
    | None -> ()
    | Some p ->
      let reports = gate_reports ~mode:m ~prior:(Schema.of_string p.schema) ~next:schema in
      if reports <> [] then begin
        Counters.incr t.counters "register_rejected";
        Log.info (fun f ->
            f "subject %s: rejected by %s gate (%d report(s))" subject
              (compat_mode_to_string m) (List.length reports));
        raise (Incompatible { subject; mode = m; reports })
      end);
    locked t (fun () ->
        let chain = Option.value ~default:[] (Hashtbl.find_opt t.chains subject) in
        match List.find_opt (fun v -> String.equal v.fingerprint fp) chain with
        | Some existing ->
          Counters.incr t.counters "register_idempotent";
          existing
        | None ->
          (match (prior, chain) with
          | None, _ :: _ | Some _, [] ->
            (* the chain changed while we were diffing: keep it simple
               and refuse; the caller retries against the new head *)
            Counters.incr t.counters "register_races";
            failwith "registry: subject changed during registration; retry"
          | Some p, head :: _ when not (String.equal p.fingerprint head.fingerprint)
            ->
            Counters.incr t.counters "register_races";
            failwith "registry: subject changed during registration; retry"
          | _ -> ());
          let v =
            { subject; version = List.length chain + 1; fingerprint = fp
            ; schema = text }
          in
          persist t (encode_version v);
          admit t v;
          Counters.incr t.counters "registrations";
          Log.info (fun f ->
              f "subject %s: version %d registered (%s)" subject v.version
                (String.sub fp 0 12));
          v))

(* ------------------------------------------------------------------ *)
(* JSON rendering (hand-rolled: no JSON library in the tree)            *)
(* ------------------------------------------------------------------ *)

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string s = "\"" ^ json_escape s ^ "\""

let json_version (v : version) : string =
  Printf.sprintf
    "{\"subject\":%s,\"version\":%d,\"fingerprint\":%s,\"schema\":%s}"
    (json_string v.subject) v.version (json_string v.fingerprint)
    (json_string v.schema)

(* ------------------------------------------------------------------ *)
(* Server                                                               *)
(* ------------------------------------------------------------------ *)

module Server = struct
  module Reactor = Omf_reactor.Reactor
  module Conn = Omf_reactor.Conn
  module Http = Omf_httpd.Http

  type server = {
    registry : t;
    socket : Unix.file_descr;
    port : int;
    loop : Reactor.t;
    mutable loop_thread : Thread.t;
    conns : (int, Conn.t) Hashtbl.t;  (** loop-thread only *)
    mutable next_conn : int;
    mutable http : Http.server option;
    mutable metrics : Http.server option;
    mutable stopped : bool;
  }

  let reply_ok conn body =
    Conn.send conn (Bytes.of_string ("o" ^ body))

  let reply_err conn msg = Conn.send conn (Bytes.of_string ("e" ^ msg))

  let spec_of_string = function
    | "latest" | "" -> Some `Latest
    | s -> Option.map (fun n -> `N n) (int_of_string_opt s)

  let get_spec registry ~subject = function
    | `Latest -> latest registry subject
    | `N n -> find registry ~subject n

  let handle_frame (s : server) (conn : Conn.t) (frame : Bytes.t) =
    Counters.incr s.registry.counters "frames_in";
    if Bytes.length frame < 1 then Conn.doom conn "empty frame"
    else
      let body = Bytes.sub_string frame 1 (Bytes.length frame - 1) in
      match Bytes.get frame 0 with
      | 'R' -> (
        match split_line body 0 with
        | None -> reply_err conn "register: missing subject line"
        | Some (subject, p) -> (
          let text = String.sub body p (String.length body - p) in
          match register s.registry ~subject text with
          | v ->
            reply_ok conn
              (Printf.sprintf "version=%d\nfingerprint=%s" v.version
                 v.fingerprint)
          | exception Incompatible { mode = m; reports; _ } ->
            reply_err conn
              (String.concat "\n"
                 (Printf.sprintf "incompatible with %s gate"
                    (compat_mode_to_string m)
                 :: diff_lines reports))
          | exception Schema.Schema_error m ->
            reply_err conn (Printf.sprintf "invalid schema: %s" m)
          | exception Failure m -> reply_err conn m))
      | 'V' -> (
        match split_line body 0 with
        | None -> reply_err conn "get: missing subject line"
        | Some (subject, p) -> (
          match spec_of_string (String.sub body p (String.length body - p)) with
          | None -> reply_err conn "get: bad version spec"
          | Some spec -> (
            match get_spec s.registry ~subject spec with
            | Some v ->
              reply_ok conn
                (Printf.sprintf "version=%d\nfingerprint=%s\n%s" v.version
                   v.fingerprint v.schema)
            | None -> reply_err conn "not found")))
      | 'F' -> (
        match by_fingerprint s.registry body with
        | Some v ->
          reply_ok conn
            (Printf.sprintf "subject=%s\nversion=%d\n%s" v.subject v.version
               v.schema)
        | None -> reply_err conn "not found")
      | 'L' ->
        let lines =
          List.map
            (fun subject ->
              Printf.sprintf "%s %d %s" subject
                (List.length (versions s.registry subject))
                (compat_mode_to_string (mode s.registry ~subject)))
            (subjects s.registry)
        in
        reply_ok conn (String.concat "\n" lines)
      | 't' -> reply_ok conn (Counters.to_text s.registry.counters)
      | k -> Conn.doom conn (Printf.sprintf "unknown request kind %C" k)

  let accept_connection s fd =
    let id = s.next_conn in
    s.next_conn <- id + 1;
    Counters.incr s.registry.counters "connections";
    let conn =
      Conn.attach s.loop fd
        ~on_frame:(fun conn frame -> handle_frame s conn frame)
        ~on_close:(fun _ _ -> Hashtbl.remove s.conns id)
        ()
    in
    Hashtbl.replace s.conns id conn

  (* HTTP JSON surface *)

  let segments path =
    match Http.percent_decode path with
    | None -> None
    | Some p ->
      Some (List.filter (fun s -> not (String.equal s "")) (String.split_on_char '/' p))

  let http_handler (registry : t) : Http.request_handler =
   fun (r : Http.request) ->
    Counters.incr registry.counters "http_requests";
    match segments r.Http.path with
    | None -> Http.server_error "malformed percent-encoding"
    | Some segs -> (
      match (r.Http.meth, segs) with
      | "GET", [ "subjects" ] ->
        Http.ok ~content_type:"application/json"
          ("[" ^ String.concat "," (List.map json_string (subjects registry)) ^ "]")
      | "GET", [ "subjects"; subject; "versions" ] ->
        let ns = List.map (fun v -> string_of_int v.version) (versions registry subject) in
        Http.ok ~content_type:"application/json"
          ("[" ^ String.concat "," ns ^ "]")
      | "GET", [ "subjects"; subject; "versions"; spec ] -> (
        match spec_of_string spec with
        | None -> Http.not_found r.Http.path
        | Some spec -> (
          match get_spec registry ~subject spec with
          | Some v -> Http.ok ~content_type:"application/json" (json_version v)
          | None -> Http.not_found r.Http.path))
      | "POST", [ "subjects"; subject; "versions" ] -> (
        match register registry ~subject r.Http.body with
        | v ->
          { (Http.ok ~content_type:"application/json"
               (Printf.sprintf "{\"version\":%d,\"fingerprint\":%s}" v.version
                  (json_string v.fingerprint)))
            with Http.status = 201; reason = "Created" }
        | exception Incompatible { mode = m; reports; _ } ->
          Http.conflict
            (String.concat "\n"
               (Printf.sprintf "incompatible with %s gate"
                  (compat_mode_to_string m)
               :: diff_lines reports))
        | exception Schema.Schema_error m ->
          { Http.status = 400; reason = "Bad Request"
          ; content_type = "text/plain"
          ; body = Printf.sprintf "invalid schema: %s\n" m }
        | exception Failure m -> Http.server_error m)
      | "GET", [ "schemas"; "ids"; fp ] -> (
        match by_fingerprint registry fp with
        | Some v -> Http.ok ~content_type:"application/json" (json_version v)
        | None -> Http.not_found r.Http.path)
      | _ -> Http.not_found r.Http.path)

  let start ?(host = "127.0.0.1") ~port ?http_port ?metrics_port (registry : t)
      : server =
    let socket, bound_port = Omf_transport.Tcp.listener ~host ~port () in
    Unix.set_nonblock socket;
    let s =
      { registry; socket; port = bound_port; loop = Reactor.create ()
      ; loop_thread = Thread.self (); conns = Hashtbl.create 16
      ; next_conn = 0; http = None; metrics = None; stopped = false }
    in
    let rec accept_all () =
      match Unix.accept ~cloexec:true socket with
      | fd, _ ->
        accept_connection s fd;
        accept_all ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> ()
    in
    ignore
      (Reactor.register s.loop socket ~on_readable:accept_all
         ~on_writable:ignore);
    s.loop_thread <- Thread.create Reactor.run s.loop;
    (match http_port with
    | None -> ()
    | Some p -> s.http <- Some (Http.serve_requests ~host ~port:p (http_handler registry)));
    (match metrics_port with
    | None -> ()
    | Some p ->
      s.metrics <-
        Some
          (Http.serve_metrics ~host ~port:p
             [ ("registry", fun () -> Counters.dump registry.counters) ]));
    s

  let port s = s.port
  let http_port s = Option.map Http.port s.http
  let metrics_port s = Option.map Http.port s.metrics

  let shutdown s =
    if not s.stopped then begin
      s.stopped <- true;
      Reactor.inject s.loop (fun () ->
          (try Unix.shutdown s.socket Unix.SHUTDOWN_ALL
           with Unix.Unix_error _ -> ());
          let live = Hashtbl.fold (fun _ c acc -> c :: acc) s.conns [] in
          List.iter (fun c -> Conn.doom c "server shutdown") live;
          Reactor.stop s.loop);
      Thread.join s.loop_thread;
      (try Unix.close s.socket with Unix.Unix_error _ -> ());
      Reactor.dispose s.loop;
      Option.iter Http.shutdown s.http;
      Option.iter Http.shutdown s.metrics
    end
end

(* ------------------------------------------------------------------ *)
(* Client                                                               *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type t = {
    link : Omf_transport.Link.t;
    mutex : Mutex.t;
  }

  exception Server_unavailable of string
  exception Rejected of string

  let connect ?(host = "127.0.0.1") ~port ?timeout_s () : t =
    match
      Omf_transport.Tcp.connect ~host ~port ?connect_timeout_s:timeout_s
        ?io_timeout_s:timeout_s ()
    with
    | link -> { link; mutex = Mutex.create () }
    | exception Omf_transport.Tcp.Tcp_error m -> raise (Server_unavailable m)

  let close t = Omf_transport.Link.close t.link

  (* one request, one reply: ['o' body] -> Ok body, ['e' msg] -> Error *)
  let rpc t (frame : string) : (string, string) result =
    Mutex.lock t.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () ->
        match
          Omf_transport.Link.send t.link (Bytes.of_string frame);
          Omf_transport.Link.recv t.link
        with
        | Some reply when Bytes.length reply >= 1 -> (
          let body = Bytes.sub_string reply 1 (Bytes.length reply - 1) in
          match Bytes.get reply 0 with
          | 'o' -> Ok body
          | 'e' -> Error body
          | k ->
            raise
              (Server_unavailable (Printf.sprintf "unexpected reply kind %C" k)))
        | Some _ | None -> raise (Server_unavailable "connection closed")
        | exception Omf_transport.Link.Timeout ->
          raise (Server_unavailable "timeout")
        | exception Omf_transport.Tcp.Tcp_error m ->
          raise (Server_unavailable m))

  (* "k=v" line parsing for reply headers *)
  let header_int key line =
    let prefix = key ^ "=" in
    if String.length line > String.length prefix
       && String.equal (String.sub line 0 (String.length prefix)) prefix
    then
      int_of_string_opt
        (String.sub line (String.length prefix)
           (String.length line - String.length prefix))
    else None

  let header_str key line =
    let prefix = key ^ "=" in
    if String.length line > String.length prefix
       && String.equal (String.sub line 0 (String.length prefix)) prefix
    then
      Some
        (String.sub line (String.length prefix)
           (String.length line - String.length prefix))
    else None

  let register t ~subject text : int * string =
    match rpc t (Printf.sprintf "R%s\n%s" subject text) with
    | Error msg -> raise (Rejected msg)
    | Ok body -> (
      match split_line body 0 with
      | Some (l1, p) -> (
        match
          ( header_int "version" l1,
            header_str "fingerprint"
              (String.sub body p (String.length body - p)) )
        with
        | Some v, Some fp -> (v, fp)
        | _ -> raise (Server_unavailable "register: malformed reply"))
      | None -> raise (Server_unavailable "register: malformed reply"))

  let spec_string = function `Latest -> "latest" | `N n -> string_of_int n

  let get t ~subject spec : version option =
    match rpc t (Printf.sprintf "V%s\n%s" subject (spec_string spec)) with
    | Error _ -> None
    | Ok body -> (
      match split_line body 0 with
      | None -> None
      | Some (l1, p) -> (
        match split_line body p with
        | None -> None
        | Some (l2, p) -> (
          match (header_int "version" l1, header_str "fingerprint" l2) with
          | Some n, Some fp ->
            Some
              { subject; version = n; fingerprint = fp
              ; schema = String.sub body p (String.length body - p) }
          | _ -> None)))

  let by_fingerprint t fp : version option =
    match rpc t ("F" ^ fp) with
    | Error _ -> None
    | Ok body -> (
      match split_line body 0 with
      | None -> None
      | Some (l1, p) -> (
        match split_line body p with
        | None -> None
        | Some (l2, p) -> (
          match (header_str "subject" l1, header_int "version" l2) with
          | Some subject, Some n ->
            Some
              { subject; version = n; fingerprint = fp
              ; schema = String.sub body p (String.length body - p) }
          | _ -> None)))

  let subjects t : (string * int * string) list =
    match rpc t "L" with
    | Error _ -> []
    | Ok "" -> []
    | Ok body ->
      List.filter_map
        (fun line ->
          match String.split_on_char ' ' line with
          | [ s; n; m ] ->
            Option.map (fun n -> (s, n, m)) (int_of_string_opt n)
          | _ -> None)
        (String.split_on_char '\n' body)

  let stats t : (string * int) list =
    match rpc t "t" with
    | Error _ -> []
    | Ok body -> Counters.of_text body
end

(* ------------------------------------------------------------------ *)
(* Caching resolver                                                     *)
(* ------------------------------------------------------------------ *)

module Resolver = struct
  type t = {
    client : Client.t;
    mutex : Mutex.t;
    pos : (string, version) Hashtbl.t;  (** "subject@spec" -> version *)
    by_fp : (string, version) Hashtbl.t;
    neg : (string, float) Hashtbl.t;  (** key -> expiry *)
    neg_ttl_s : float;
    counters : Counters.t;
  }

  let create ?(neg_ttl_s = 1.0) client : t =
    { client; mutex = Mutex.create (); pos = Hashtbl.create 16
    ; by_fp = Hashtbl.create 16; neg = Hashtbl.create 8; neg_ttl_s
    ; counters = Counters.create () }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let key subject spec = subject ^ "@" ^ Client.spec_string spec

  (* cache a fetched version under every key it answers *)
  let remember t ~key:k (v : version) =
    Hashtbl.replace t.pos k v;
    Hashtbl.replace t.pos (key v.subject (`N v.version)) v;
    Hashtbl.replace t.by_fp v.fingerprint v

  let cached t k =
    locked t (fun () ->
        match Hashtbl.find_opt t.pos k with
        | Some v -> `Hit v
        | None -> (
          match Hashtbl.find_opt t.neg k with
          | Some expiry when Unix.gettimeofday () < expiry -> `Neg
          | Some _ ->
            Hashtbl.remove t.neg k;
            `Miss
          | None -> `Miss))

  let resolve t ~subject spec : version option =
    let k = key subject spec in
    match cached t k with
    | `Hit v ->
      Counters.incr t.counters "hits";
      Some v
    | `Neg ->
      Counters.incr t.counters "negative_hits";
      None
    | `Miss -> (
      Counters.incr t.counters "misses";
      match Client.get t.client ~subject spec with
      | Some v ->
        locked t (fun () -> remember t ~key:k v);
        Some v
      | None ->
        locked t (fun () ->
            Hashtbl.replace t.neg k (Unix.gettimeofday () +. t.neg_ttl_s));
        None
      | exception Client.Server_unavailable _ ->
        (* do not negatively cache an outage: the next resolve should
           try the server again once it returns *)
        Counters.incr t.counters "errors";
        None)

  let resolve_fingerprint t fp : version option =
    let k = "fp:" ^ fp in
    match
      locked t (fun () ->
          match Hashtbl.find_opt t.by_fp fp with
          | Some v -> `Hit v
          | None -> (
            match Hashtbl.find_opt t.neg k with
            | Some expiry when Unix.gettimeofday () < expiry -> `Neg
            | _ -> `Miss))
    with
    | `Hit v ->
      Counters.incr t.counters "hits";
      Some v
    | `Neg ->
      Counters.incr t.counters "negative_hits";
      None
    | `Miss -> (
      Counters.incr t.counters "misses";
      match Client.by_fingerprint t.client fp with
      | Some v ->
        locked t (fun () -> remember t ~key:(key v.subject (`N v.version)) v);
        Some v
      | None ->
        locked t (fun () ->
            Hashtbl.replace t.neg k (Unix.gettimeofday () +. t.neg_ttl_s));
        None
      | exception Client.Server_unavailable _ ->
        Counters.incr t.counters "errors";
        None)

  let prefetch t ~subject spec =
    Counters.incr t.counters "prefetches";
    ignore
      (Thread.create
         (fun () -> try ignore (resolve t ~subject spec) with _ -> ())
         ())

  let stats t = Counters.dump t.counters
end

let discovery_source (resolver : Resolver.t) ~subject ?(version = `Latest) () :
    Omf_xml2wire.Discovery.source =
  Omf_xml2wire.Discovery.from_fetcher ~label:("registry:" ^ subject)
    (fun () ->
      match Resolver.resolve resolver ~subject version with
      | Some v -> v.schema
      | None ->
        failwith
          (Printf.sprintf "registry: subject %s (%s) not found" subject
             (Client.spec_string version)))
