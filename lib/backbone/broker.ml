(** The event backbone (Figures 1 and 3): a publish/subscribe broker for
    named information streams.

    Capture points advertise a stream together with its XML Schema
    metadata; consumers subscribe over any {!Omf_transport.Link.t} and
    receive NDR frames. The broker:

    - relays the publisher's format-negotiation descriptor to every
      subscriber (replaying it to late joiners);
    - serves stream metadata to subscribers, optionally *scoped* by
      subscriber credentials (section 4.4's "format-scoping": slices of a
      stream are exposed or hidden per subscribing application) — a scoped
      subscriber registers the reduced format and NDR's match-by-name
      conversion drops the hidden fields on receive;
    - fans data frames out to all current subscribers. *)

open Omf_xml2wire

let log = Logs.Src.create "omf.backbone" ~doc:"event backbone broker"

module Log = (val Logs.src_log log)

type credentials = (string * string) list
(** free-form subscriber attributes, e.g. [("role", "display")] *)

(** A scope policy: which fields of the stream's types a subscriber with
    given credentials may see. [None] = everything. *)
type scope_policy = credentials -> string list option

exception Unknown_stream of string
exception Access_denied of string

type stream = {
  stream_name : string;
  mutable schema_text : string;
  mutable scope : scope_policy;
  mutable subscribers : subscriber list;
  mutable pending_frames : bytes list;
      (** descriptor frames seen so far, replayed to late joiners *)
  mutable published : int;
}

and subscriber = {
  sub_id : int;
  sub_creds : credentials;
  sub_link : Omf_transport.Link.t;  (** broker's sending end *)
}

type t = {
  streams : (string, stream) Hashtbl.t;
  mutable next_sub_id : int;
}

let create () : t = { streams = Hashtbl.create 8; next_sub_id = 1 }

let find_stream t name =
  match Hashtbl.find_opt t.streams name with
  | Some s -> s
  | None -> raise (Unknown_stream name)

let stream_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.streams []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Publisher side                                                       *)
(* ------------------------------------------------------------------ *)

(** [advertise t ~stream ~schema] announces (or re-announces, for format
    upgrades) a stream and its metadata document. *)
let advertise (t : t) ~(stream : string) ~(schema : string) : unit =
  (* validate the document before accepting it *)
  ignore (Omf_xschema.Schema.of_string schema);
  match Hashtbl.find_opt t.streams stream with
  | Some s ->
    s.schema_text <- schema;
    Log.info (fun m -> m "stream %s: metadata updated" stream)
  | None ->
    Hashtbl.replace t.streams stream
      { stream_name = stream; schema_text = schema
      ; scope = (fun _ -> None); subscribers = []; pending_frames = []
      ; published = 0 };
    Log.info (fun m -> m "stream %s: advertised" stream)

let set_scope (t : t) ~(stream : string) (policy : scope_policy) : unit =
  (find_stream t stream).scope <- policy

(** The publisher's transmission side: a virtual {!Omf_transport.Link.t}
    that fans every frame out to all subscribers; descriptor frames are
    remembered for replay. Use it under
    {!Omf_transport.Endpoint.Sender}. *)
let publisher_link (t : t) ~(stream : string) : Omf_transport.Link.t =
  let s = find_stream t stream in
  { Omf_transport.Link.send =
      (fun frame ->
        if
          Bytes.length frame > 0
          && Char.equal (Bytes.get frame 0)
               Omf_transport.Endpoint.frame_descriptor
        then begin
          (* dedupe by content: a publisher that reconnects (or a store
             recovery replay) re-announces the same descriptors; caching
             them twice would replay duplicates to every late joiner *)
          if not (List.exists (Bytes.equal frame) s.pending_frames) then
            s.pending_frames <- s.pending_frames @ [ Bytes.copy frame ]
        end;
        s.published <- s.published + 1;
        List.iter
          (fun sub ->
            try Omf_transport.Link.send sub.sub_link frame
            with Omf_transport.Link.Closed -> ())
          s.subscribers)
  ; recv = (fun () -> None)
  ; close = (fun () -> ()) }

(* ------------------------------------------------------------------ *)
(* Subscriber side                                                      *)
(* ------------------------------------------------------------------ *)

(** [metadata_for t ~stream creds] returns the stream's schema document,
    scoped to what [creds] may see. This is the "dynamically generated
    metadata based on … authentication credentials" of section 4.4.
    Raises {!Access_denied} when scoping leaves a type empty. *)
let metadata_for (t : t) ~(stream : string) (creds : credentials) : string =
  let s = find_stream t stream in
  match s.scope creds with
  | None -> s.schema_text
  | Some visible ->
    let schema = Omf_xschema.Schema.of_string s.schema_text in
    let scoped_types =
      List.map
        (fun (ct : Omf_xschema.Schema.complex_type) ->
          let kept =
            List.filter
              (fun (e : Omf_xschema.Schema.element) ->
                List.mem e.Omf_xschema.Schema.el_name visible)
              ct.Omf_xschema.Schema.ct_elements
          in
          if kept = [] then
            raise
              (Access_denied
                 (Printf.sprintf "stream %s: no visible fields in type %s"
                    stream ct.Omf_xschema.Schema.ct_name));
          { ct with Omf_xschema.Schema.ct_elements = kept })
        schema.Omf_xschema.Schema.types
    in
    Omf_xschema.Schema_write.to_string
      { schema with Omf_xschema.Schema.types = scoped_types }

(** [subscribe t ~stream ~creds link] attaches the broker's sending end
    [link] (the subscriber holds the other end of the pair). Already-seen
    descriptor frames are replayed so late joiners can decode. Returns a
    function that unsubscribes. *)
let subscribe (t : t) ~(stream : string) ?(creds : credentials = [])
    (link : Omf_transport.Link.t) : unit -> unit =
  let s = find_stream t stream in
  let sub = { sub_id = t.next_sub_id; sub_creds = creds; sub_link = link } in
  t.next_sub_id <- t.next_sub_id + 1;
  List.iter (fun frame -> Omf_transport.Link.send link frame) s.pending_frames;
  s.subscribers <- s.subscribers @ [ sub ];
  Log.info (fun m ->
      m "stream %s: subscriber %d joined (%d total)" stream sub.sub_id
        (List.length s.subscribers));
  fun () ->
    s.subscribers <-
      List.filter (fun o -> o.sub_id <> sub.sub_id) s.subscribers

let subscriber_count (t : t) ~(stream : string) : int =
  List.length (find_stream t stream).subscribers

let published_count (t : t) ~(stream : string) : int =
  (find_stream t stream).published

(* ------------------------------------------------------------------ *)
(* Convenience: a fully wired consumer                                  *)
(* ------------------------------------------------------------------ *)

(** A consumer: discovers (possibly scoped) stream metadata from the
    broker, registers it in a fresh catalog for [abi], subscribes over an
    in-process loopback and decodes frames on demand. *)
type consumer = {
  catalog : Catalog.t;
  endpoint : Omf_transport.Endpoint.Receiver.t;
  unsubscribe : unit -> unit;
}

let attach_consumer (t : t) ~(stream : string)
    ?(creds : credentials = []) (abi : Omf_machine.Abi.t) : consumer =
  let catalog = Catalog.create abi in
  let schema = metadata_for t ~stream creds in
  ignore (Xml2wire.register_schema ~source:("broker:" ^ stream) catalog schema);
  let broker_end, consumer_end = Omf_transport.Loopback.pair () in
  let unsubscribe = subscribe t ~stream ~creds broker_end in
  let endpoint =
    Omf_transport.Endpoint.Receiver.create consumer_end
      (Catalog.registry catalog)
      (Omf_machine.Memory.create abi)
  in
  { catalog; endpoint; unsubscribe }

(** Drain every queued event for [c], returning decoded values. *)
let poll (c : consumer) : (Omf_pbio.Format.t * Omf_pbio.Value.t) list =
  let rec go acc =
    match Omf_transport.Endpoint.Receiver.recv_value c.endpoint with
    | Some ev -> go (ev :: acc)
    | None -> List.rev acc
    | exception Omf_transport.Loopback.Would_block -> List.rev acc
  in
  go []
