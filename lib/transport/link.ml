(** Transport abstraction.

    The paper insists that the metadata system "does not predicate the use
    of specific data delivery mechanisms"; everything above this interface
    (endpoints, the event backbone) works over any duplex byte-message
    link: the in-process {!Loopback}, the deterministic {!Netsim} used for
    latency experiments, or real TCP sockets ({!Tcp}). *)

type t = {
  send : bytes -> unit;
  recv : unit -> bytes option;  (** [None] = link closed and drained *)
  close : unit -> unit;
}

exception Closed

exception Timeout
(** A deadline-carrying link ({!Tcp.connect} with [?io_timeout_s])
    raises this when a send or receive exceeds its deadline. The link
    may be in the middle of a frame: treat it as broken and close it. *)

let send t msg = t.send msg
let recv t = t.recv ()
let close t = t.close ()

(** [recv_exn t] raises {!Closed} instead of returning [None]. *)
let recv_exn t =
  match t.recv () with Some m -> m | None -> raise Closed
