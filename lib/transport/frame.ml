(** Length-prefixed frame codec — re-exported from {!Omf_reactor.Frame}.

    The codec moved into the reactor library so its buffered-connection
    driver can reassemble frames without depending on the transport
    layer; transport users keep their historical [Omf_transport.Frame]
    name (including the [Frame_error] exception identity). *)

include Omf_reactor.Frame
