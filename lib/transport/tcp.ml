(** Real TCP transport (loopback or LAN): length-prefixed byte messages
    over Unix sockets, satisfying {!Link.t}. Used by the runnable example
    binaries; simulations and benchmarks prefer {!Loopback} / {!Netsim}
    for determinism. *)

exception Tcp_error of string

let tcp_error fmt = Printf.ksprintf (fun s -> raise (Tcp_error s)) fmt

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.read fd buf off len in
      if n = 0 then raise End_of_file;
      go (off + n) (len - n)
    end
  in
  go off len

let really_write fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write fd buf off len in
      go (off + n) (len - n)
    end
  in
  go off len

let link_of_fd (fd : Unix.file_descr) : Link.t =
  let closed = ref false in
  let send msg =
    if !closed then raise Link.Closed;
    (* header + body in one buffer, one write: no Nagle interaction *)
    let b = Frame.encode msg in
    really_write fd b 0 (Bytes.length b)
  in
  let recv () =
    if !closed then None
    else
      match
        let hdr = Bytes.create Frame.header_length in
        really_read fd hdr 0 Frame.header_length;
        let len = Frame.read_header hdr 0 in
        if len < 0 || len > Frame.default_max_frame then
          tcp_error "bad frame length %d" len;
        let msg = Bytes.create len in
        really_read fd msg 0 len;
        msg
      with
      | msg -> Some msg
      | exception End_of_file -> None
  in
  let close () =
    if not !closed then begin
      closed := true;
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
  in
  { Link.send; recv; close }

(** [listener ~port ()] binds and listens without spawning any thread —
    for callers running their own accept/event loop ({!Omf_relay}).
    Returns the listening socket and the actually bound port (useful
    with [~port:0]). *)
let listener ?(host = "127.0.0.1") ?(backlog = 64) ~port () :
    Unix.file_descr * int =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock backlog;
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (sock, bound_port)

(** [listen ~port handler] accepts connections forever, spawning a thread
    per connection. Returns the listening socket (close it to stop) and
    the actually bound port. *)
let listen ?(host = "127.0.0.1") ~port (handler : Link.t -> unit) :
    Unix.file_descr * int =
  let sock, bound_port = listener ~host ~backlog:16 ~port () in
  let accept_loop () =
    try
      while true do
        let fd, _ = Unix.accept sock in
        ignore
          (Thread.create
             (fun fd ->
               let link = link_of_fd fd in
               try handler link with _ -> Link.close link)
             fd)
      done
    with Unix.Unix_error _ -> ()
  in
  ignore (Thread.create accept_loop ());
  (sock, bound_port)

(** [connect ~host ~port] opens a client link. *)
let connect ?(host = "127.0.0.1") ~port () : Link.t =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     tcp_error "connect %s:%d: %s" host port (Unix.error_message e));
  link_of_fd sock
