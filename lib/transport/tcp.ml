(** Real TCP transport (loopback or LAN): length-prefixed byte messages
    over Unix sockets, satisfying {!Link.t}. Used by the runnable example
    binaries; simulations and benchmarks prefer {!Loopback} / {!Netsim}
    for determinism. *)

exception Tcp_error of string

let tcp_error fmt = Printf.ksprintf (fun s -> raise (Tcp_error s)) fmt

(* a write to a peer that vanished must surface as EPIPE (an exception
   our reconnect/doom paths handle), not kill the whole process — the
   default SIGPIPE disposition would. Set once, at first use of TCP. *)
let () =
  if not Sys.win32 then
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

(* SO_RCVTIMEO/SO_SNDTIMEO expiry surfaces as EAGAIN/EWOULDBLOCK from a
   blocking read/write — translate it to Link.Timeout *)
let really_read fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n =
        try Unix.read fd buf off len
        with Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          raise Link.Timeout
      in
      if n = 0 then raise End_of_file;
      go (off + n) (len - n)
    end
  in
  go off len

let really_write fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n =
        try Unix.write fd buf off len
        with Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          raise Link.Timeout
      in
      go (off + n) (len - n)
    end
  in
  go off len

(** [link_of_fd fd] wraps a connected socket. [io_timeout_s] arms
    [SO_RCVTIMEO]/[SO_SNDTIMEO]: a receive or send that stalls past the
    deadline raises {!Link.Timeout} instead of blocking forever. *)
let link_of_fd ?io_timeout_s (fd : Unix.file_descr) : Link.t =
  (match io_timeout_s with
  | Some t when t > 0.0 -> (
    try
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO t;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO t
    with Unix.Unix_error _ -> ())
  | _ -> ());
  let closed = ref false in
  let send msg =
    if !closed then raise Link.Closed;
    (* header + body in one buffer, one write: no Nagle interaction *)
    let b = Frame.encode msg in
    really_write fd b 0 (Bytes.length b)
  in
  let recv () =
    if !closed then None
    else
      match
        let hdr = Bytes.create Frame.header_length in
        really_read fd hdr 0 Frame.header_length;
        let len = Frame.read_header hdr 0 in
        if len < 0 || len > Frame.default_max_frame then
          tcp_error "bad frame length %d" len;
        let msg = Bytes.create len in
        really_read fd msg 0 len;
        msg
      with
      | msg -> Some msg
      | exception End_of_file -> None
  in
  let close () =
    if not !closed then begin
      closed := true;
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
  in
  { Link.send; recv; close }

(** [listener ~port ()] binds and listens without spawning any thread —
    for callers running their own accept/event loop ({!Omf_relay}).
    Returns the listening socket and the actually bound port (useful
    with [~port:0]). *)
let listener ?(host = "127.0.0.1") ?(backlog = 64) ~port () :
    Unix.file_descr * int =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock backlog;
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (sock, bound_port)

(** A running [serve] instance. The acceptor is a {!Omf_reactor.Reactor}
    loop in one thread; each accepted connection runs its (blocking)
    handler in its own thread, and — unlike the old [listen], which
    leaked both — {!shutdown} joins all of them. *)
type server = {
  sock : Unix.file_descr;
  srv_port : int;
  loop : Omf_reactor.Reactor.t;
  mutable loop_thread : Thread.t;
  mu : Mutex.t;
  mutable workers : Thread.t list;
  mutable stopped : bool;
}

(** [serve ~port handler] accepts connections until {!shutdown},
    running [handler] with a blocking {!Link.t} in a thread per
    connection (the link is closed when the handler returns or
    raises). *)
let serve ?(host = "127.0.0.1") ?(backlog = 16) ~port
    (handler : Link.t -> unit) : server =
  let sock, bound_port = listener ~host ~backlog ~port () in
  Unix.set_nonblock sock;
  let loop = Omf_reactor.Reactor.create () in
  let s =
    { sock; srv_port = bound_port; loop
    ; loop_thread = Thread.self () (* replaced below *)
    ; mu = Mutex.create (); workers = []; stopped = false }
  in
  let worker fd =
    let link = link_of_fd fd in
    (try handler link with _ -> ());
    Link.close link
  in
  let rec accept_all () =
    match Unix.accept ~cloexec:true sock with
    | fd, _ ->
      let th = Thread.create worker fd in
      Mutex.lock s.mu;
      s.workers <- th :: s.workers;
      Mutex.unlock s.mu;
      accept_all ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  ignore
    (Omf_reactor.Reactor.register loop sock ~on_readable:accept_all
       ~on_writable:ignore);
  s.loop_thread <- Thread.create Omf_reactor.Reactor.run loop;
  s

let server_port (s : server) = s.srv_port

(** Stop accepting, join the acceptor loop and every in-flight handler
    thread. Handlers see their link close once the peer hangs up; a
    handler that never returns will block [shutdown]. Idempotent. *)
let shutdown (s : server) =
  if not s.stopped then begin
    s.stopped <- true;
    Omf_reactor.Reactor.stop s.loop;
    Thread.join s.loop_thread;
    (try Unix.shutdown s.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close s.sock with Unix.Unix_error _ -> ());
    Omf_reactor.Reactor.dispose s.loop;
    Mutex.lock s.mu;
    let workers = s.workers in
    s.workers <- [];
    Mutex.unlock s.mu;
    List.iter Thread.join workers
  end

(** [connect ~host ~port] opens a client link. [connect_timeout_s]
    bounds connection establishment (non-blocking connect + select);
    [io_timeout_s] arms per-operation send/receive deadlines on the
    resulting link ({!Link.Timeout}). *)
let connect ?(host = "127.0.0.1") ~port ?connect_timeout_s ?io_timeout_s () :
    Link.t =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        raise (Tcp_error s))
      fmt
  in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (match connect_timeout_s with
  | None -> (
    try Unix.connect sock addr
    with Unix.Unix_error (e, _, _) ->
      fail "connect %s:%d: %s" host port (Unix.error_message e))
  | Some dt -> (
    Unix.set_nonblock sock;
    (match Unix.connect sock addr with
    | () -> ()
    | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _)
      -> (
      (* wait for writability up to the deadline, then check SO_ERROR *)
      match Unix.select [] [ sock ] [] dt with
      | _, [ _ ], _ -> (
        match Unix.getsockopt_error sock with
        | None -> ()
        | Some e -> fail "connect %s:%d: %s" host port (Unix.error_message e))
      | _ -> fail "connect %s:%d: timeout after %.3gs" host port dt)
    | exception Unix.Unix_error (e, _, _) ->
      fail "connect %s:%d: %s" host port (Unix.error_message e));
    Unix.clear_nonblock sock));
  link_of_fd ?io_timeout_s sock
