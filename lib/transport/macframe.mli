(** Authenticated frames: HMAC-SHA256 sealing of length-prefixed frame
    bodies (PROTOCOLS.md section 12). A sealed body is
    [nonce(8, u64 BE) || tag(32) || payload] where the tag is
    HMAC-SHA256 over [nonce || u32_be(|payload|) || payload]; the
    sequential per-direction nonce and the MAC'd length defeat replay,
    reordering, truncation, and splicing. *)

exception Auth_error of string

val overhead : int
(** Bytes a sealed frame adds: 8 (nonce) + 32 (tag) = 40. *)

val seal : key:string -> nonce:int64 -> Bytes.t -> Bytes.t

val seal_slices :
  key:string -> nonce:int64 -> Omf_util.Slice.t list -> Bytes.t
(** Seal an iovec payload; byte-identical to
    [seal ~key ~nonce (Slice.concat payload)]. The zero-copy frame
    path's one copy-on-seal (auth-negotiated connections only). *)

val verify : key:string -> expected_nonce:int64 -> Bytes.t -> Bytes.t
(** Authenticate a sealed frame and return its payload. Raises
    {!Auth_error} on a short frame, a MAC mismatch, or a nonce other
    than the expected next value. *)

(** {1 Per-connection state} *)

type state
(** Independent send/receive nonce counters over one shared key; both
    directions start at 1 when the mode is negotiated. *)

val state : key:string -> state
val seal_next : state -> Bytes.t -> Bytes.t

val seal_next_slices : state -> Omf_util.Slice.t list -> Bytes.t
(** {!seal_slices} with the state's next send nonce (advances it). *)

val open_next : state -> Bytes.t -> Bytes.t
(** Verify against the expected receive nonce, then advance it. A
    failed frame does not advance the counter. Raises {!Auth_error}. *)

val wrap : state -> Link.t -> Link.t
(** A link that seals on send and verifies on receive; receive raises
    {!Auth_error} on forged traffic — close the link when it does. *)
