(** Authenticated frames: HMAC-SHA256 sealing of the length-prefixed
    {!Frame} bodies (PROTOCOLS.md section 12).

    A sealed frame body is

    {v
    0   8   nonce (u64 BE, strictly sequential per direction, from 1)
    8   32  HMAC-SHA256(key, nonce_be8 || u32_be(|payload|) || payload)
    40  …   payload (the ordinary frame body: kind byte + rest)
    v}

    The MAC covers the nonce and the payload {e length} as well as the
    payload bytes, so a tampered length prefix (truncation) or bytes
    spliced between frames cannot produce a verifiable frame; the
    sequential nonce makes replayed or reordered frames fail too. Each
    direction of a connection runs its own nonce counter; both start at
    1 when the mode is negotiated (the relay's HELLO exchange). *)

exception Auth_error of string

let auth_error fmt = Printf.ksprintf (fun s -> raise (Auth_error s)) fmt

module Sha256 = Omf_util.Sha256
module Slice = Omf_util.Slice

let overhead = 8 + 32

let mac ~key ~(nonce : int64) (payload : Bytes.t) : string =
  let msg = Bytes.create (12 + Bytes.length payload) in
  Bytes.set_int64_be msg 0 nonce;
  Bytes.set_int32_be msg 8 (Int32.of_int (Bytes.length payload));
  Bytes.blit payload 0 msg 12 (Bytes.length payload);
  Sha256.hmac ~key (Bytes.unsafe_to_string msg)

(** [seal ~key ~nonce payload] is the sealed frame body. *)
let seal ~(key : string) ~(nonce : int64) (payload : Bytes.t) : Bytes.t =
  let tag = mac ~key ~nonce payload in
  let b = Bytes.create (overhead + Bytes.length payload) in
  Bytes.set_int64_be b 0 nonce;
  Bytes.blit_string tag 0 b 8 32;
  Bytes.blit payload 0 b overhead (Bytes.length payload);
  b

let mac_slices ~key ~(nonce : int64) (payload : Slice.t list) : string =
  let len = Slice.total payload in
  let msg = Bytes.create (12 + len) in
  Bytes.set_int64_be msg 0 nonce;
  Bytes.set_int32_be msg 8 (Int32.of_int len);
  let pos = ref 12 in
  List.iter
    (fun s ->
      Slice.blit s msg !pos;
      pos := !pos + Slice.length s)
    payload;
  Sha256.hmac ~key (Bytes.unsafe_to_string msg)

(** [seal_slices ~key ~nonce payload] seals an iovec payload —
    byte-identical to [seal ~key ~nonce (Slice.concat payload)]. This
    is the zero-copy frame path's one copy-on-seal: the MAC needs the
    contiguous payload, so sealing materialises it (only on
    connections that negotiated auth). *)
let seal_slices ~(key : string) ~(nonce : int64) (payload : Slice.t list) :
    Bytes.t =
  let len = Slice.total payload in
  let tag = mac_slices ~key ~nonce payload in
  let b = Bytes.create (overhead + len) in
  Bytes.set_int64_be b 0 nonce;
  Bytes.blit_string tag 0 b 8 32;
  let pos = ref overhead in
  List.iter
    (fun s ->
      Slice.blit s b !pos;
      pos := !pos + Slice.length s)
    payload;
  b

(** [verify ~key ~expected_nonce frame] authenticates a sealed frame
    body and returns the payload. Raises {!Auth_error} on a short
    frame, a MAC mismatch, or a nonce that is not exactly the expected
    next value (replay / splice / deletion). *)
let verify ~(key : string) ~(expected_nonce : int64) (frame : Bytes.t) :
    Bytes.t =
  if Bytes.length frame < overhead then
    auth_error "sealed frame too short (%d bytes)" (Bytes.length frame);
  let nonce = Bytes.get_int64_be frame 0 in
  let tag = Bytes.sub_string frame 8 32 in
  let payload = Bytes.sub frame overhead (Bytes.length frame - overhead) in
  if not (Sha256.equal_constant_time tag (mac ~key ~nonce payload)) then
    auth_error "MAC mismatch (nonce %Ld)" nonce;
  if not (Int64.equal nonce expected_nonce) then
    auth_error "nonce %Ld, expected %Ld (replayed or dropped frame)" nonce
      expected_nonce;
  payload

(* ------------------------------------------------------------------ *)
(* Per-connection state                                                 *)
(* ------------------------------------------------------------------ *)

type state = {
  key : string;
  mutable send_nonce : int64;  (** next nonce to use on send *)
  mutable recv_nonce : int64;  (** next nonce expected on receive *)
}

let state ~(key : string) : state =
  { key; send_nonce = 1L; recv_nonce = 1L }

let seal_next (st : state) (payload : Bytes.t) : Bytes.t =
  let b = seal ~key:st.key ~nonce:st.send_nonce payload in
  st.send_nonce <- Int64.succ st.send_nonce;
  b

let seal_next_slices (st : state) (payload : Slice.t list) : Bytes.t =
  let b = seal_slices ~key:st.key ~nonce:st.send_nonce payload in
  st.send_nonce <- Int64.succ st.send_nonce;
  b

(** [open_next st frame] verifies against the expected receive nonce
    and advances it. A failed frame does {e not} advance the counter —
    after in-flight tampering the chain stays broken by design and the
    peer's reject threshold closes the connection. *)
let open_next (st : state) (frame : Bytes.t) : Bytes.t =
  let payload = verify ~key:st.key ~expected_nonce:st.recv_nonce frame in
  st.recv_nonce <- Int64.succ st.recv_nonce;
  payload

(** [wrap st link] seals every sent message and verifies every received
    one. Receive raises {!Auth_error} on a forged, replayed, or spliced
    frame — callers should close the link. *)
let wrap (st : state) (link : Link.t) : Link.t =
  { Link.send = (fun msg -> Link.send link (seal_next st msg))
  ; recv =
      (fun () ->
        match Link.recv link with
        | None -> None
        | Some frame -> Some (open_next st frame))
  ; close = (fun () -> Link.close link) }
