(** Transport abstraction: the metadata system "does not predicate the
    use of specific data delivery mechanisms". Everything above this
    interface works over any duplex byte-message link. *)

type t = {
  send : bytes -> unit;
  recv : unit -> bytes option;  (** [None] = link closed and drained *)
  close : unit -> unit;
}

exception Closed

exception Timeout
(** Raised by deadline-carrying links ({!Tcp.connect} with
    [?io_timeout_s]) when a send or receive exceeds its deadline. The
    link may have consumed part of a frame: treat it as broken. *)

val send : t -> bytes -> unit
val recv : t -> bytes option
val close : t -> unit

val recv_exn : t -> bytes
(** Raises {!Closed} instead of returning [None]. *)
