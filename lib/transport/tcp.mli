(** Real TCP transport: length-prefixed byte messages over Unix sockets,
    satisfying {!Link.t}. Simulations and benchmarks prefer {!Loopback} /
    {!Netsim} for determinism. *)

exception Tcp_error of string

val link_of_fd : ?io_timeout_s:float -> Unix.file_descr -> Link.t
(** Wrap a connected socket. [io_timeout_s] arms per-operation
    send/receive deadlines ([SO_RCVTIMEO]/[SO_SNDTIMEO]): an operation
    that stalls past the deadline raises {!Link.Timeout} and the link
    should be treated as broken. *)

val listener :
  ?host:string -> ?backlog:int -> port:int -> unit -> Unix.file_descr * int
(** Bind and listen without spawning any thread — for callers running
    their own accept/event loop ({!Omf_relay}). Returns the listening
    socket and the actually bound port (useful with [~port:0]). *)

type server
(** A running {!serve} instance with a proper stop handle (the old
    [listen] leaked its acceptor and per-connection threads). *)

val serve :
  ?host:string -> ?backlog:int -> port:int -> (Link.t -> unit) -> server
(** Accept connections until {!shutdown}, running the handler with a
    blocking {!Link.t} in a thread per connection; the link is closed
    when the handler returns. The acceptor is a reactor loop, not a
    blocking thread. [~port:0] binds an ephemeral port — read it with
    {!server_port}. *)

val server_port : server -> int

val shutdown : server -> unit
(** Stop accepting, join the acceptor and every in-flight handler
    thread (a handler that never returns will block this). Idempotent. *)

val connect :
  ?host:string ->
  port:int ->
  ?connect_timeout_s:float ->
  ?io_timeout_s:float ->
  unit ->
  Link.t
(** Raises {!Tcp_error} on failure (including a connect that exceeds
    [connect_timeout_s]). [io_timeout_s] as in {!link_of_fd}. *)
