(** Real TCP transport: length-prefixed byte messages over Unix sockets,
    satisfying {!Link.t}. Simulations and benchmarks prefer {!Loopback} /
    {!Netsim} for determinism. *)

exception Tcp_error of string

val link_of_fd : ?io_timeout_s:float -> Unix.file_descr -> Link.t
(** Wrap a connected socket. [io_timeout_s] arms per-operation
    send/receive deadlines ([SO_RCVTIMEO]/[SO_SNDTIMEO]): an operation
    that stalls past the deadline raises {!Link.Timeout} and the link
    should be treated as broken. *)

val listener :
  ?host:string -> ?backlog:int -> port:int -> unit -> Unix.file_descr * int
(** Bind and listen without spawning any thread — for callers running
    their own accept/event loop ({!Omf_relay}). Returns the listening
    socket and the actually bound port (useful with [~port:0]). *)

val listen :
  ?host:string -> port:int -> (Link.t -> unit) -> Unix.file_descr * int
(** Accept connections forever, one thread per connection. Returns the
    listening socket (close it to stop) and the bound port (useful with
    [~port:0]). *)

val connect :
  ?host:string ->
  port:int ->
  ?connect_timeout_s:float ->
  ?io_timeout_s:float ->
  unit ->
  Link.t
(** Raises {!Tcp_error} on failure (including a connect that exceeds
    [connect_timeout_s]). [io_timeout_s] as in {!link_of_fd}. *)
