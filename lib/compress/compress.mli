(** Negotiated wire compression: a dependency-free LZ block codec.

    The codec is LZ4-flavoured — a hash-chain match finder feeding a
    literal/match token stream — but the block format is our own
    (doc/COMPRESS.md). Every block is self-contained and stateless:
    there is no cross-frame dictionary, so a compressed frame can be
    dropped by queue policy, shared verbatim across a fan-out, or
    replayed out of context without corrupting anything downstream.

    Block layout (first byte is the tag):

    {v
      0x00  stored  — payload is the input verbatim (worst case: n+1)
      0x01  lz      — u32 BE decompressed length, then the token stream
    v}

    An LZ token packs literal length (high nibble) and match length − 4
    (low nibble), each extended past 14 by 255-continuation bytes;
    literals follow the token, then a 2-byte big-endian match distance
    (1..65535). A block ends after a literal run (or exactly after a
    match) when the input is exhausted. The encoder only emits an [lz]
    block when it is strictly smaller than the stored form, so
    incompressible input costs exactly one byte of framing.

    The decoder bounds-checks every read and write and raises [Error]
    on any malformed block — truncated stream, bad tag, distance past
    the output start, or a length that disagrees with the header. *)

exception Error of string
(** Malformed compressed block. *)

val bound : int -> int
(** [bound n] is the worst-case block size for [n] input bytes: [n+1]. *)

type scratch
(** Reusable match-finder workspace (~640 KiB, allocated once). Without
    one, every compress call allocates and initializes its own chain
    arrays — fine for occasional blocks (segment sealing), ruinous at
    frame rate. A scratch is single-owner state: never share one across
    threads. Output is identical with or without. *)

val scratch : unit -> scratch

val compress : ?scratch:scratch -> Bytes.t -> Bytes.t
(** Compress a whole buffer into one self-contained block. *)

val compress_sub : ?scratch:scratch -> Bytes.t -> pos:int -> len:int -> Bytes.t
(** Compress a window of a buffer. Raises [Invalid_argument] when the
    window escapes the buffer. *)

val compress_slice : ?scratch:scratch -> Omf_util.Slice.t -> Bytes.t
(** Compress the viewed bytes without copying them first. *)

val compress_slices : ?scratch:scratch -> Omf_util.Slice.t list -> Bytes.t
(** Compress a wire message (iovec). Single-slice messages compress in
    place; multi-slice messages are gathered once. *)

val decompress : Bytes.t -> Bytes.t
(** Decompress a whole block. Raises [Error] on malformed input. *)

val decompress_sub : Bytes.t -> pos:int -> len:int -> Bytes.t
(** Decompress a block sitting in a window of a larger buffer. Raises
    [Error] on malformed input, [Invalid_argument] on a bad window. *)

val decompress_slice : Omf_util.Slice.t -> Bytes.t
(** Decompress the block viewed by a slice. *)

val is_lz : Bytes.t -> bool
(** Whether the block carries an [lz] payload (false for stored —
    observability only, both forms decompress the same way). *)
