(* LZ block codec — see compress.mli for the format. Pure OCaml, no
   dependencies beyond Slice; hot paths index with unsafe_get after an
   up-front bounds check of the whole window. *)

module Slice = Omf_util.Slice

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let tag_stored = '\x00'
let tag_lz = '\x01'

let min_match = 4
let max_dist = 65535
let hash_bits = 14
let hash_size = 1 lsl hash_bits

(* Inputs shorter than this never win against stored-form framing. *)
let min_compress_len = 16

(* Refuse to allocate absurd outputs for a corrupt header. *)
let max_block_len = 1 lsl 30

let bound n = n + 1

let is_lz b = Bytes.length b > 0 && Bytes.get b 0 = tag_lz

(* -- encoder ------------------------------------------------------- *)

let hash4 src i =
  let b k = Char.code (Bytes.unsafe_get src (i + k)) in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  (v * 0x9E3779B1) lsr (32 - hash_bits) land (hash_size - 1)

(* Longest common run of [a] (at cand) and [b] (at cur), both relative
   to [base], bounded by the end of the window. Overlap (cand + k
   reaching past cur) is fine: by the time the decoder copies byte k,
   bytes before it are already written. *)
let match_len src base cand cur len =
  let k = ref 0 in
  while
    cur + !k < len
    && Bytes.unsafe_get src (base + cand + !k)
       = Bytes.unsafe_get src (base + cur + !k)
  do
    incr k
  done;
  !k

exception Bail
(* Token stream reached the stored-form size: stop and fall back. *)

let stored src pos len =
  let out = Bytes.create (len + 1) in
  Bytes.set out 0 tag_stored;
  Bytes.blit src pos out 1 len;
  out

(* Match-finder workspace, reusable across calls so the hot path never
   allocates or re-initializes the chain arrays. Entries are coded as
   [base + position]: each call claims a fresh [base] past every value
   any earlier call could have stored, so a stale entry decodes to a
   negative position and reads as empty — no clearing between blocks.
   [prev] is a ring over the 64 KiB match window; a slot reused by a
   position one window later decodes to an out-of-range distance and is
   cut by the [max_dist] check. *)
type scratch = {
  head : int array;  (* hash -> coded newest position *)
  prev : int array;  (* coded chain, indexed by position land window *)
  mutable base : int;  (* strictly positive, grows by [len] per call *)
}

let scratch () =
  { head = Array.make hash_size 0
  ; prev = Array.make (max_dist + 1) 0
  ; base = 1 }

let compress_sub ?scratch:ws src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg
      (Printf.sprintf "Compress.compress_sub: window %d+%d of %d" pos len
         (Bytes.length src));
  if len < min_compress_len then stored src pos len
  else begin
    (* token-stream budget: 5 header bytes + budget must undercut the
       stored form's len + 1 *)
    let budget = len - 5 in
    let out = Bytes.create len in
    let opos = ref 0 in
    let put c =
      if !opos >= budget then raise Bail;
      Bytes.unsafe_set out !opos c;
      incr opos
    in
    let put_byte v = put (Char.unsafe_chr (v land 0xff)) in
    let put_run v =
      (* 255-continuation extension bytes *)
      let v = ref v in
      while !v >= 255 do
        put '\xff';
        v := !v - 255
      done;
      put_byte !v
    in
    let put_literals lo llen =
      if !opos + llen > budget then raise Bail;
      Bytes.blit src (pos + lo) out !opos llen;
      opos := !opos + llen
    in
    let emit_seq lo llen mlen dist =
      let ln = if llen >= 15 then 15 else llen in
      let mn = if mlen = 0 then 0 else min (mlen - min_match) 15 in
      put_byte ((ln lsl 4) lor mn);
      if ln = 15 then put_run (llen - 15);
      put_literals lo llen;
      if mlen > 0 then begin
        put_byte (dist lsr 8);
        put_byte dist;
        if mn = 15 then put_run (mlen - min_match - 15)
      end
    in
    let s = match ws with Some s -> s | None -> scratch () in
    let base = s.base in
    s.base <- base + len;
    let head = s.head and prev = s.prev in
    let insert i =
      let h = hash4 src (pos + i) in
      Array.unsafe_set prev (i land max_dist) (Array.unsafe_get head h);
      Array.unsafe_set head h (base + i)
    in
    try
      let i = ref 0 in
      let lit_start = ref 0 in
      let misses = ref 0 in
      let hlimit = len - min_match in
      while !i <= hlimit do
        let cur = !i in
        let h = hash4 src (pos + cur) in
        let best_len = ref 0 in
        let best_dist = ref 0 in
        let cand = ref (head.(h) - base) in
        let tries = ref 32 in
        while !cand >= 0 && !tries > 0 do
          if cur - !cand > max_dist then cand := -1
          else begin
            (* cheap reject: a longer match must extend past best_len *)
            if
              cur + !best_len < len
              && ( !best_len = 0
                 || Bytes.unsafe_get src (pos + !cand + !best_len)
                    = Bytes.unsafe_get src (pos + cur + !best_len) )
            then begin
              let l = match_len src pos !cand cur len in
              if l > !best_len then begin
                best_len := l;
                best_dist := cur - !cand
              end
            end;
            cand := Array.unsafe_get prev (!cand land max_dist) - base;
            decr tries
          end
        done;
        if !best_len >= min_match then begin
          emit_seq !lit_start (cur - !lit_start) !best_len !best_dist;
          (* index the covered positions so later matches can reach
             back into this run *)
          let stop = min (cur + !best_len) (hlimit + 1) in
          let j = ref cur in
          while !j < stop do
            insert !j;
            incr j
          done;
          i := cur + !best_len;
          lit_start := !i;
          misses := 0
        end
        else begin
          insert cur;
          incr misses;
          (* skip acceleration: on long incompressible runs, stride
             grows so worst-case encode stays near memcpy speed *)
          i := cur + 1 + (!misses lsr 6)
        end
      done;
      let tail = len - !lit_start in
      if tail > 0 then emit_seq !lit_start tail 0 0;
      let blk = Bytes.create (5 + !opos) in
      Bytes.set blk 0 tag_lz;
      Bytes.set blk 1 (Char.unsafe_chr ((len lsr 24) land 0xff));
      Bytes.set blk 2 (Char.unsafe_chr ((len lsr 16) land 0xff));
      Bytes.set blk 3 (Char.unsafe_chr ((len lsr 8) land 0xff));
      Bytes.set blk 4 (Char.unsafe_chr (len land 0xff));
      Bytes.blit out 0 blk 5 !opos;
      blk
    with Bail -> stored src pos len
  end

let compress ?scratch src =
  compress_sub ?scratch src ~pos:0 ~len:(Bytes.length src)

let compress_slice ?scratch (s : Slice.t) =
  compress_sub ?scratch s.buf ~pos:s.off ~len:s.len

let compress_slices ?scratch = function
  | [] -> compress ?scratch Bytes.empty
  | [ s ] -> compress_slice ?scratch s
  | parts -> compress ?scratch (Slice.concat parts)

(* -- decoder ------------------------------------------------------- *)

let decompress_sub src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg
      (Printf.sprintf "Compress.decompress_sub: window %d+%d of %d" pos len
         (Bytes.length src));
  if len < 1 then err "empty block";
  match Bytes.get src pos with
  | c when c = tag_stored -> Bytes.sub src (pos + 1) (len - 1)
  | c when c = tag_lz ->
    if len < 5 then err "truncated lz header (%d bytes)" len;
    let b k = Char.code (Bytes.unsafe_get src (pos + k)) in
    let raw_len = (b 1 lsl 24) lor (b 2 lsl 16) lor (b 3 lsl 8) lor b 4 in
    if raw_len > max_block_len then err "block claims %d bytes" raw_len;
    let out = Bytes.create raw_len in
    let iend = pos + len in
    let ip = ref (pos + 5) in
    let op = ref 0 in
    let byte () =
      if !ip >= iend then err "truncated token stream";
      let v = Char.code (Bytes.unsafe_get src !ip) in
      incr ip;
      v
    in
    let run base =
      (* decode a 255-continuation extension *)
      let v = ref base in
      let k = ref 255 in
      while !k = 255 do
        k := byte ();
        v := !v + !k
      done;
      !v
    in
    while !ip < iend do
      let token = byte () in
      let llen =
        let l = token lsr 4 in
        if l = 15 then run 15 else l
      in
      if llen > 0 then begin
        if !ip + llen > iend then err "literal run past block end";
        if !op + llen > raw_len then err "literal run past output end";
        Bytes.blit src !ip out !op llen;
        ip := !ip + llen;
        op := !op + llen
      end;
      if !ip < iend then begin
        let dist = byte () in
        let dist = (dist lsl 8) lor byte () in
        let mlen =
          let m = token land 0xf in
          (if m = 15 then run 15 else m) + min_match
        in
        if dist = 0 || dist > !op then err "match distance %d at offset %d" dist !op;
        if !op + mlen > raw_len then err "match run past output end";
        (* byte-wise copy: correct for overlapping matches (dist < mlen) *)
        let from = ref (!op - dist) in
        for _ = 1 to mlen do
          Bytes.unsafe_set out !op (Bytes.unsafe_get out !from);
          incr op;
          incr from
        done
      end
    done;
    if !op <> raw_len then err "block decoded %d bytes, header said %d" !op raw_len;
    out
  | c -> err "bad block tag 0x%02x" (Char.code c)

let decompress src = decompress_sub src ~pos:0 ~len:(Bytes.length src)

let decompress_slice (s : Slice.t) = decompress_sub s.buf ~pos:s.off ~len:s.len
