(** The networked event relay: the {!Omf_backbone.Broker} served over
    real TCP by a single-threaded, [Unix.select]-driven event loop.

    The deployable form of the paper's event backbone (Figures 1/3):
    capture points and subscribers are separate processes; the relay
    hosts the broker — stream advertisement, per-stream descriptor
    caching with replay for late joiners, credential-scoped metadata —
    behind a small control protocol on the same length-prefixed framing
    as the {!Omf_transport.Endpoint} frames it relays verbatim.

    Control protocol (1-byte kind + body per frame; PROTOCOLS.md §11):
    ['h'] HELLO, ['a'] ADVERTISE, ['p'] PUBLISH, ['s'] SUBSCRIBE,
    ['t'] STATS; replies ['o' body] / ['e' message]. After PUBLISH a
    connection's ['D']/['M'] endpoint frames are fanned out; after
    SUBSCRIBE the connection is receive-only. *)

(** What happens to a subscriber whose bounded outbound queue is full:

    - [Block]: stop reading from the stream's publishers until the
      queue drains — loss-free, TCP pushes back to the capture point;
    - [Drop_oldest]: shed the oldest queued data frame (descriptor
      frames are never shed, so the stream stays decodable);
    - [Evict_slow]: disconnect the laggard; others are unaffected. *)
type policy = Block | Drop_oldest | Evict_slow

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

type t

val create :
  ?host:string ->
  ?port:int ->
  ?policy:policy ->
  ?max_queue:int ->
  ?evict_grace_s:float ->
  ?sndbuf:int ->
  ?drain_s:float ->
  unit ->
  t
(** Bind the listening socket (ephemeral port when [?port] is 0, the
    default). [max_queue] bounds each subscriber's queued data frames
    (default 256); [evict_grace_s] (default 1.0) is how long a
    subscriber may stay continuously over that watermark before
    {!Evict_slow} disconnects it — a consumer that drains back below
    the watermark in time is spared, so momentary bursts never evict
    an actively reading subscriber; [sndbuf] forces a small
    [SO_SNDBUF] on accepted
    sockets (tests use this to provoke backpressure quickly);
    [drain_s] is the graceful-shutdown flush deadline (default 2s). *)

val port : t -> int

val broker : t -> Omf_backbone.Broker.t
(** The embedded broker — e.g. for [Broker.set_scope] policies. *)

val stats : t -> (string * int) list
(** Counters (frames/bytes in/out, events, drops, evictions, …) plus
    per-stream published/subscriber gauges — the STATS reply body. *)

val run : t -> unit
(** Run the event loop in the calling thread until a requested
    shutdown completes its drain. *)

val request_shutdown : t -> unit
(** Ask the loop to drain and stop. Safe from another thread or a
    signal handler (sets a flag, writes a wake pipe). *)

(** {2 Hosted convenience} *)

type handle

val start :
  ?host:string ->
  ?port:int ->
  ?policy:policy ->
  ?max_queue:int ->
  ?evict_grace_s:float ->
  ?sndbuf:int ->
  ?drain_s:float ->
  unit ->
  handle
(** Run a relay loop in a background thread. *)

val relay : handle -> t
val stop : handle -> unit
(** Graceful drain, then join the loop thread. *)

(** {2 Client} *)

(** Blocking client. One connection carries one role: after
    {!Client.publish} the link is an {!Omf_transport.Endpoint.Sender}
    channel; after {!Client.subscribe} it is receive-only. *)
module Client : sig
  exception Error of string
  (** An ['e'] reply from the relay, or a malformed exchange. *)

  type t

  val connect :
    ?host:string -> port:int -> ?creds:(string * string) list -> unit -> t
  (** Connect and HELLO with [creds] (the broker's scoping input). *)

  val advertise : t -> stream:string -> schema:string -> unit
  val publish : t -> stream:string -> Omf_transport.Link.t
  val subscribe : t -> stream:string -> string * Omf_transport.Link.t
  (** The (credential-scoped) stream schema, and the raw link now
      carrying descriptor/message frames. *)

  val stats : t -> (string * int) list
  val close : t -> unit
end

(** {2 A fully wired remote consumer} *)

type consumer = {
  client : Client.t;
  catalog : Omf_xml2wire.Catalog.t;
  endpoint : Omf_transport.Endpoint.Receiver.t;
  schema : string;  (** the scoped schema the relay served *)
}

val attach_consumer :
  ?host:string ->
  port:int ->
  ?creds:(string * string) list ->
  stream:string ->
  Omf_machine.Abi.t ->
  consumer
(** Connect, subscribe, register the served (scoped) schema in a fresh
    catalog for the ABI, and wrap the link in an endpoint receiver —
    the remote mirror of [Broker.attach_consumer]. *)

val recv : consumer -> (Omf_pbio.Format.t * Omf_pbio.Value.t) option
(** Blocking receive of the next decoded event ([None] = stream end). *)

val close_consumer : consumer -> unit
