(** The networked event relay: the {!Omf_backbone.Broker} served over
    real TCP by {!Omf_reactor.Reactor} event loops (one loop per shard;
    a standalone relay is a one-shard special case).

    The deployable form of the paper's event backbone (Figures 1/3):
    capture points and subscribers are separate processes; the relay
    hosts the broker — stream advertisement, per-stream descriptor
    caching with replay for late joiners, credential-scoped metadata —
    behind a small control protocol on the same length-prefixed framing
    as the {!Omf_transport.Endpoint} frames it relays verbatim.

    Control protocol (1-byte kind + body per frame; PROTOCOLS.md §11):
    ['h'] HELLO, ['a'] ADVERTISE, ['p'] PUBLISH, ['s'] SUBSCRIBE,
    ['t'] STATS, ['l'] LIST, ['q'] DESCRIBE, ['m'] PROMOTE; replies
    ['o' body] / ['e' message]. After PUBLISH a connection's
    ['D']/['M'] endpoint frames are fanned out; after SUBSCRIBE the
    connection is receive-only.

    Replication (PROTOCOLS.md §15): every advertised stream carries an
    [origin=relay-id]/[epoch=N] metadata tag. A stream whose origin is
    not the local relay is {e read-only} — only a mirror link
    ([mirror=1] PUBLISH with the matching tag, see {!Omf_mirror}) may
    append — until PROMOTE takes ownership with a bumped epoch. *)

(** What happens to a subscriber whose bounded outbound queue is full:

    - [Block]: stop reading from the stream's publishers until the
      queue drains — loss-free, TCP pushes back to the capture point;
    - [Drop_oldest]: shed the oldest queued data frame (descriptor
      frames are never shed, so the stream stays decodable);
    - [Evict_slow]: disconnect the laggard; others are unaffected. *)
type policy = Block | Drop_oldest | Evict_slow

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

module Store = Omf_store.Store
(** Re-export of the durable stream store the [?store] arguments
    configure (see {!Omf_store.Store} and doc/STORE.md). *)

module Governor = Governor
(** Re-export of the per-shard resource governor the [?governor]
    arguments configure (see {!Governor} and doc/OVERLOAD.md). *)

module Trace = Omf_trace.Trace
(** Re-export of the sampled distributed-tracing substrate the
    [?trace] arguments configure (see {!Omf_trace.Trace}, doc/TRACE.md
    and PROTOCOLS.md §17). *)

type t

val create :
  ?host:string ->
  ?port:int ->
  ?relay_id:string ->
  ?policy:policy ->
  ?max_queue:int ->
  ?evict_grace_s:float ->
  ?sndbuf:int ->
  ?auth_keys:(string * string) list ->
  ?mac_reject_limit:int ->
  ?drain_s:float ->
  ?governor:Governor.config ->
  ?ingress:float * float ->
  ?trace:Trace.settings ->
  ?store:Omf_store.Store.config ->
  unit ->
  t
(** Bind the listening socket (ephemeral port when [?port] is 0, the
    default). [max_queue] bounds each subscriber's queued data frames
    (default 256); [evict_grace_s] (default 1.0) is how long a
    subscriber may stay continuously over that watermark before
    {!Evict_slow} disconnects it — a consumer that drains back below
    the watermark in time is spared, so momentary bursts never evict
    an actively reading subscriber; [sndbuf] forces a small
    [SO_SNDBUF] on accepted
    sockets (tests use this to provoke backpressure quickly);
    [auth_keys] is the [key-id -> secret] table for HMAC-authenticated
    framing (PROTOCOLS.md §12; empty = the mode is refused);
    [mac_reject_limit] (default 3) closes a connection after that many
    frames fail authentication;
    [drain_s] is the graceful-shutdown flush deadline (default 2s).

    [governor] arms overload control (doc/OVERLOAD.md): a per-shard
    byte budget over every queued outbound frame whose watermarks
    drive the [Healthy]/[Degraded]/[Overloaded] health machine —
    Degraded throttles stored replay and evicts slow consumers
    eagerly, Overloaded refuses PUBLISH and [from=] replays with a
    retryable ['b' "retry_ms=N"] reply while control traffic keeps
    flowing. Default: disabled ([budget = 0]). [ingress] is
    [(rate, burst)] for a per-connection token bucket on publisher
    data frames — a publisher exceeding [rate] frames/s (burst
    allowance [burst]) has its reads paused until its bucket refills.

    [trace] arms sampled end-to-end tracing (doc/TRACE.md,
    PROTOCOLS.md §17): each shard records per-stage spans —
    publish-admit, store-append, fanout-enqueue, flush, deliver — for
    sampled (or slow) frames into a fixed ring buffer, exposed via
    {!trace_spans} and the [stage_us.*] latency histograms in
    {!stats}. Default: disabled, and the frame path pays nothing.

    [store] makes the relay durable (doc/STORE.md): every published
    message frame is appended to a per-stream segmented log under the
    configured root before fan-out, [acks=1] publishers receive
    cumulative durability acks, [from=N] subscribers replay stored
    offsets, and at startup the relay recovers every stream found on
    disk — schemas re-advertised, descriptor caches rebuilt — so
    sessions survive a relay restart with no loss and no duplicates.

    [relay_id] is the replication identity stamped as [origin=] on
    locally advertised streams (PROTOCOLS.md §15). Unset, a
    store-backed relay mints one and persists it in [<root>/relay-id]
    (so a restart keeps owning its streams); a memory-only relay gets
    a fresh random id. *)

val port : t -> int

val relay_id : t -> string
(** The replication identity ([origin=] tag) of this relay. *)

val broker : t -> Omf_backbone.Broker.t
(** The embedded broker — e.g. for [Broker.set_scope] policies. *)

val stats : t -> (string * int) list
(** Counters (frames/bytes in/out, events, drops, evictions, …) plus
    per-stream published/subscriber gauges — the STATS reply body. *)

val governor_used : t -> int
(** Bytes currently debited against this relay's governor — by
    invariant, exactly the unwritten bytes across every connection's
    write queue (slice-length accounting; 0 when fully drained). Test
    hook for the debit/credit symmetry guarantee (doc/OVERLOAD.md). *)

val trace_spans : t -> Trace.span list
(** Snapshot of the recorded trace spans, oldest first; empty when
    tracing is disabled. Safe from any thread. *)

val run : t -> unit
(** Run the event loop in the calling thread until a requested
    shutdown completes its drain. *)

val request_shutdown : t -> unit
(** Ask the loop to drain and stop. Safe from another thread or a
    signal handler (sets a flag, writes a wake pipe). *)

(** {2 Sharded cluster}

    N relay shards — one {!Omf_reactor.Reactor} loop per domain —
    behind a single acceptor that deals accepted sockets out
    round-robin. The first ADVERTISE/PUBLISH/SUBSCRIBE naming a stream
    pins it to the shard that received it; a connection landing on the
    wrong shard migrates there before taking a role, so every frame of
    a stream flows through exactly one loop and per-stream delivery
    order is exactly what a standalone relay gives. *)
module Cluster : sig
  type t

  val start :
    ?host:string ->
    ?port:int ->
    ?relay_id:string ->
    ?shards:int ->
    ?policy:policy ->
    ?max_queue:int ->
    ?evict_grace_s:float ->
    ?sndbuf:int ->
    ?auth_keys:(string * string) list ->
    ?mac_reject_limit:int ->
    ?drain_s:float ->
    ?governor:Governor.config ->
    ?ingress:float * float ->
    ?trace:Trace.settings ->
    ?store:Omf_store.Store.config ->
    unit ->
    t
  (** Bind one listening socket and run [?shards] (default 1) relay
      loops, each on its own domain. The relay configuration arguments
      are as for {!create} and apply to every shard. With [?store],
      streams found on disk are recovered before the shards start,
      each on the shard its name hashes to — the same pinning a fresh
      cluster would choose, so recovery is deterministic across
      restarts and every stream's store stays single-loop. *)

  val port : t -> int
  val shard_count : t -> int

  val relay_id : t -> string
  (** The cluster's replication identity (shared by every shard). *)

  val stats : t -> (string * int) list
  (** Cluster-wide counter totals (per-shard counters summed; includes
      [shard_handoffs], the connections migrated between loops). *)

  val trace_spans : t -> Trace.span list
  (** Every shard's recorded trace spans, merged and ordered by start
      time. Safe from any thread. *)

  val request_shutdown : t -> unit
  (** Unblock the acceptor and ask every shard to drain. Safe from a
      signal handler. *)

  val wait : t -> unit
  (** Join the acceptor thread and every shard domain. *)

  val stop : t -> unit
  (** {!request_shutdown} then {!wait}. *)
end

(** {2 Hosted convenience} *)

type handle

val start :
  ?host:string ->
  ?port:int ->
  ?relay_id:string ->
  ?policy:policy ->
  ?max_queue:int ->
  ?evict_grace_s:float ->
  ?sndbuf:int ->
  ?auth_keys:(string * string) list ->
  ?mac_reject_limit:int ->
  ?drain_s:float ->
  ?governor:Governor.config ->
  ?ingress:float * float ->
  ?trace:Trace.settings ->
  ?store:Omf_store.Store.config ->
  unit ->
  handle
(** Run a relay loop in a background thread. *)

val relay : handle -> t
val stop : handle -> unit
(** Graceful drain, then join the loop thread. *)

(** {2 Client} *)

(** Blocking client. One connection carries one role: after
    {!Client.publish} the link is an {!Omf_transport.Endpoint.Sender}
    channel; after {!Client.subscribe} it is receive-only. *)
module Client : sig
  exception Error of string
  (** An ['e'] reply from the relay, or a malformed exchange. *)

  exception Busy of { retry_ms : int }
  (** A ['b' "retry_ms=N"] reply (PROTOCOLS.md §16): the relay is
      overloaded and refused the request {e retryably} — the
      connection is still good; retry the same request after roughly
      [retry_ms] milliseconds. Distinct from {!Error} so callers never
      confuse shed load with rejection or disconnection. *)

  type t

  val connect :
    ?host:string ->
    port:int ->
    ?creds:(string * string) list ->
    ?auth:string * string ->
    ?compress:bool ->
    ?connect_timeout_s:float ->
    ?io_timeout_s:float ->
    unit ->
    t
  (** Connect and HELLO with [creds] (the broker's scoping input).
      [?auth:(key_id, secret)] negotiates HMAC-authenticated framing
      (PROTOCOLS.md §12): the HELLO exchange is plaintext, every later
      frame in both directions is sealed; {!Error} if the relay refuses.
      [~compress:true] offers [comp=lz] (PROTOCOLS.md §18,
      doc/COMPRESS.md): if the relay echoes the capability in its
      banner, every later frame in both directions travels as one LZ
      block (composed inside authentication: seal-of-compressed); a
      relay that doesn't speak it simply leaves the connection
      uncompressed — check {!compressed}. [connect_timeout_s] bounds
      connection establishment and [io_timeout_s] arms per-operation
      send/receive deadlines. Every failure — unreachable port,
      handshake timeout, an ['e'] reply — raises {!Error} with a
      readable reason (never a raw [Unix.Unix_error]) and closes the
      socket. *)

  val compressed : t -> bool
  (** Did the relay grant [comp=lz]? Always [false] without
      [~compress:true]. *)

  val comp_totals : t -> (int * int) option
  (** [(raw_bytes, wire_bytes)] through the compression wrapper in both
      directions — the achieved ratio is [raw / wire]. [None] when the
      connection is uncompressed. *)

  val advertise : t -> stream:string -> schema:string -> unit

  val advertise_meta :
    t ->
    ?subject:string ->
    ?version:int ->
    ?fingerprint:string ->
    stream:string ->
    schema:string ->
    unit ->
    unit
  (** As {!advertise}, attaching the stream's schema-registry binding
      (PROTOCOLS.md §14) — subject, version, content fingerprint — as
      advertisement metadata; {!subscribe_meta} returns it so receivers
      can bind conversion plans by fingerprint. *)

  val publish : ?trace:Trace.ctx -> t -> stream:string -> Omf_transport.Link.t
  (** [?trace] attaches a trace context (PROTOCOLS.md §17) as a
      [trace=] PUBLISH option: a tracing-enabled relay adopts it —
      spans carry the caller's trace/span ids — instead of
      head-sampling its own. Ignored by a relay without tracing. *)

  val subscribe : t -> stream:string -> string * Omf_transport.Link.t
  (** The (credential-scoped) stream schema, and the raw link now
      carrying descriptor/message frames. *)

  val subscribe_meta :
    t ->
    stream:string ->
    (string * string) list * string * Omf_transport.Link.t
  (** As {!subscribe}, also returning the stream's advertised
      registry-binding metadata ([subject] / [version] /
      [fingerprint]); empty when the advertiser supplied none. *)

  val publish_acked :
    ?trace:Trace.ctx -> t -> stream:string -> int option * Omf_transport.Link.t
  (** Publisher mode with durability acks (PROTOCOLS.md §13): against
      a store-backed relay returns [Some durable] — the stream's
      durable watermark, which is also the store offset the next
      message frame sent on the link will occupy — and the relay sends
      a ['k' durable] frame on the link whenever the watermark
      advances. [None]: the relay is memory-only and never acks. *)

  val subscribe_from :
    t -> stream:string -> from:int -> int option * string * Omf_transport.Link.t
  (** Subscribe with stored replay: delivery starts at store offset
      [from] (clamped up past retention), or at the live tail when
      [from] is negative. [Some start] is the offset of the first
      message frame the link carries; [None] when the relay is
      memory-only (delivery is live-tail, as {!subscribe}). *)

  val list_streams : t -> string list
  (** Every stream the relay (all shards of a cluster) currently
      hosts, sorted. *)

  val describe : t -> stream:string -> (string * string) list * string
  (** The stream's advertisement metadata — always including its
      [origin]/[epoch] replication tag (PROTOCOLS.md §15) — and its
      (credential-scoped) schema. Does not change the connection's
      role, so one connection can describe many streams. *)

  val advertise_with_meta :
    t ->
    stream:string ->
    meta:(string * string) list ->
    schema:string ->
    unit
  (** {!advertise} with an explicit metadata list — how a mirror
      re-advertises a replicated stream with the source's metadata
      (registry binding plus [origin]/[epoch]) verbatim. The relay
      gates acceptance on the (origin, epoch) tag: stale epochs and
      origin loops are refused with an ['e'] reply. *)

  val promote : t -> stream:string -> int
  (** Transfer write ownership of a mirrored stream to the relay: its
      origin becomes the relay's id with a bumped epoch (returned).
      Idempotent on streams the relay already owns. Live mirror links
      into the stream are disconnected so their epoch check re-runs. *)

  val publish_mirror :
    ?trace:Trace.ctx ->
    t ->
    stream:string ->
    origin:string ->
    epoch:int ->
    (int * int) option * Omf_transport.Link.t
  (** Publisher mode as a replication link ([mirror=1], PROTOCOLS.md
      §15): accepted only while [(origin, epoch)] matches the relay's
      record for the stream — a promote invalidates the link. Returns
      [Some (durable, tail)] against a store-backed relay (the mirror
      resumes pumping source offsets from [tail]); [None] against a
      memory-only relay (live-only replication). *)

  val stats : t -> (string * int) list
  val close : t -> unit
end

(** {2 A fully wired remote consumer} *)

type consumer = {
  client : Client.t;
  catalog : Omf_xml2wire.Catalog.t;
  endpoint : Omf_transport.Endpoint.Receiver.t;
  schema : string;  (** the scoped schema the relay served *)
}

val attach_consumer :
  ?host:string ->
  port:int ->
  ?creds:(string * string) list ->
  ?auth:string * string ->
  ?compress:bool ->
  stream:string ->
  Omf_machine.Abi.t ->
  consumer
(** Connect, subscribe, register the served (scoped) schema in a fresh
    catalog for the ABI, and wrap the link in an endpoint receiver —
    the remote mirror of [Broker.attach_consumer]. *)

val recv : consumer -> (Omf_pbio.Format.t * Omf_pbio.Value.t) option
(** Blocking receive of the next decoded event ([None] = stream end). *)

val close_consumer : consumer -> unit

(** {2 Fault-tolerant sessions} *)

(** {!Client} plus automatic reconnect/replay: a dropped TCP connection
    degrades to a bounded retry loop (exponential backoff + jitter)
    instead of killing the endpoint. Subscribers replay SUBSCRIBE and
    dedupe the relay's descriptor replay by content digest; publishers
    replay ADVERTISE/PUBLISH, re-announce descriptors per connection,
    and buffer a bounded in-flight window of data frames during the
    outage. *)
module Session : sig
  exception Gave_up of string
  (** The reconnect budget for one outage was exhausted. *)

  exception Overflow of string
  (** The publisher's bounded in-flight window is full while the relay
      is unreachable (the offending event is {e not} enqueued). *)

  type config

  val config :
    ?host:string ->
    ?creds:(string * string) list ->
    ?auth:string * string ->
    ?compress:bool ->
    ?max_attempts:int ->
    ?base_delay_s:float ->
    ?max_delay_s:float ->
    ?connect_timeout_s:float ->
    ?io_timeout_s:float ->
    ?jitter_seed:int64 ->
    port:int ->
    unit ->
    config
  (** [max_attempts] (default 10) bounds reconnect attempts per outage;
      attempt [k] sleeps [min(max_delay_s, base_delay_s * 2^k)] scaled
      by full jitter into [[0.5, 1.0)] of itself (defaults 0.05s/2.0s,
      deterministic under [jitter_seed]). [auth], [compress] (offered
      on every reconnect, renegotiated per connection),
      [connect_timeout_s] (default 5s) and [io_timeout_s] as for
      {!Client.connect}; reconnect HELLOs carry an extra
      [omf-reconnect] credential so relay STATS expose churn
      ([reconnects_accepted]). *)

  (** {3 Subscriber sessions} *)

  type subscriber

  val subscribe :
    ?from:int ->
    ?want_trace:bool ->
    config ->
    stream:string ->
    Omf_machine.Abi.t ->
    subscriber
  (** Connect and subscribe. Failures on this first attempt raise
      immediately (an unknown stream at session start is a
      configuration error, not an outage).

      With [~want_trace:true] the session first DESCRIBEs the stream
      and remembers its [trace=] context, if the relay serves one
      (PROTOCOLS.md §17) — see {!subscriber_trace}.

      Against a store-backed relay, [from] is the store offset to
      start at: [-1] (the default) for the live tail, [0] for the
      oldest retained event. The session counts delivered message
      frames and resubscribes with the next expected offset, so a
      relay restart replays exactly the missed suffix — no event lost,
      none duplicated. Against a memory-only relay [from] is ignored
      and resubscribes are tail-only. *)

  val recv_subscriber :
    subscriber -> (Omf_pbio.Format.t * Omf_pbio.Value.t) option
  (** Blocking receive of the next decoded event, transparently
      reconnecting and resubscribing across outages — replayed
      descriptor frames already learned are skipped, so a relay
      restart delivers no duplicate registrations. [None] only after
      {!close_subscriber}; raises {!Gave_up} when an outage outlives
      the budget. *)

  val subscriber_schema : subscriber -> string
  (** The (scoped) schema from the most recent successful SUBSCRIBE. *)

  val subscriber_offset : subscriber -> int
  (** Store offset of the next message frame this session expects;
      [-1] against a memory-only relay. *)

  val subscriber_reconnects : subscriber -> int

  val subscriber_busy_waits : subscriber -> int
  (** Times a (re)subscribe was answered [busy] and retried after the
      relay's backoff hint — on the same connection, never counted as
      a reconnect. *)

  val subscriber_trace : subscriber -> Trace.ctx option
  (** The stream's trace context as served at subscribe time; [None]
      unless the session was opened with [~want_trace:true] against a
      tracing-enabled relay. *)

  val subscriber_catalog : subscriber -> Omf_xml2wire.Catalog.t
  val subscriber_stats : subscriber -> Omf_pbio.Pbio.Receiver.stats
  val close_subscriber : subscriber -> unit

  (** {3 Publisher sessions} *)

  type publisher

  val publisher :
    ?window:int ->
    ?acked:bool ->
    ?trace:Trace.ctx ->
    config ->
    stream:string ->
    schema:string ->
    Omf_machine.Abi.t ->
    publisher
  (** Connect, ADVERTISE and enter publisher mode; first-attempt
      failures raise immediately. [window] (default 1024) bounds data
      frames buffered while the relay is unreachable. [trace] is
      attached to every PUBLISH — including the replayed one after a
      reconnect — so the stream keeps one trace context across
      outages (PROTOCOLS.md §17).

      With [~acked:true] (and a store-backed relay) frames stay
      buffered until the relay acknowledges them durable: a relay
      killed mid-publish loses nothing — the resume handshake tells
      the session exactly which suffix the store is missing, and it is
      resent with no duplicates. [window] then bounds
      {e unacknowledged} frames and a full window blocks on the ack
      channel rather than raising {!Overflow}. Against a memory-only
      relay the mode degrades to the plain session. *)

  val publisher_format : publisher -> string -> Omf_pbio.Format.t option
  (** Look up a format from the advertised schema by name. *)

  val publish_value :
    publisher -> Omf_pbio.Format.t -> Omf_pbio.Value.t -> unit
  (** Marshal and ship one event. During an outage the frame is
      buffered and reconnection attempted under the budget (descriptors
      are re-announced on the fresh connection); a full window raises
      {!Overflow}, an exhausted budget returns with the frame buffered
      for the next call. With [max_attempts = 0] the session never
      reconnects — frames accumulate until {!Overflow}. *)

  val publisher_reconnects : publisher -> int

  val publisher_busy_waits : publisher -> int
  (** Times a PUBLISH was answered [busy] and retried after the
      relay's backoff hint (jittered), on the same connection — the
      graceful-degradation path: an overloaded relay slows this
      session down instead of disconnecting it. *)

  val publisher_buffered : publisher -> int
  (** Frames currently buffered: awaiting a live connection (plain
      mode) or awaiting a durability ack (ack mode). *)

  val publisher_acked : publisher -> bool
  (** Is the session publishing with durability acks? ([false] after
      degrading against a memory-only relay.) *)

  val publisher_durable : publisher -> int
  (** The relay's durable watermark as of the last ack (ack mode). *)

  val flush_acked : publisher -> unit
  (** Block until every buffered frame is acknowledged durable (ack
      mode) or written (plain mode), reconnecting under the budget;
      {!Gave_up} when the relay stays unreachable. *)

  val close_publisher : publisher -> unit
  (** Flush buffered frames best-effort (no reconnect), then close —
      call {!flush_acked} first for a durable handoff. *)
end
