type health =
  | Healthy
  | Degraded
  | Overloaded

let health_level = function Healthy -> 0 | Degraded -> 1 | Overloaded -> 2

let health_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Overloaded -> "overloaded"

type config = {
  budget : int;
  degraded_hi_pct : int;
  degraded_lo_pct : int;
  overloaded_hi_pct : int;
  overloaded_lo_pct : int;
  busy_retry_ms : int;
}

let config ?(degraded_hi_pct = 70) ?(degraded_lo_pct = 50)
    ?(overloaded_hi_pct = 90) ?(overloaded_lo_pct = 70) ?(busy_retry_ms = 250)
    ~budget () =
  if budget > 0 then begin
    if not (0 < degraded_lo_pct && degraded_lo_pct < degraded_hi_pct) then
      invalid_arg "Governor.config: need 0 < degraded_lo < degraded_hi";
    if not (degraded_hi_pct <= overloaded_hi_pct) then
      invalid_arg "Governor.config: need degraded_hi <= overloaded_hi";
    if not (degraded_lo_pct <= overloaded_lo_pct && overloaded_lo_pct < overloaded_hi_pct)
    then invalid_arg "Governor.config: need degraded_lo <= overloaded_lo < overloaded_hi"
  end;
  { budget;
    degraded_hi_pct;
    degraded_lo_pct;
    overloaded_hi_pct;
    overloaded_lo_pct;
    busy_retry_ms }

type t = {
  cfg : config;
  deg_hi : int;
  deg_lo : int;
  over_hi : int;
  over_lo : int;
  mutable used : int;
  mutable health : health;
  mutable on_transition : health -> health -> unit;
  mutable credited_since_tick : int;
      (** bytes credited (written/shed) since the last {!note_tick} —
          the raw material of the drain-rate estimate *)
  mutable drain_rate : float;  (** EWMA of credits, bytes/second *)
  mutable last_tick : float;  (** [nan] until the first tick *)
}

let pct budget p = budget * p / 100

let create (cfg : config) : t =
  { cfg;
    deg_hi = pct cfg.budget cfg.degraded_hi_pct;
    deg_lo = pct cfg.budget cfg.degraded_lo_pct;
    over_hi = pct cfg.budget cfg.overloaded_hi_pct;
    over_lo = pct cfg.budget cfg.overloaded_lo_pct;
    used = 0;
    health = Healthy;
    on_transition = (fun _ _ -> ());
    credited_since_tick = 0;
    drain_rate = 0.0;
    last_tick = Float.nan }

let on_transition t f = t.on_transition <- f
let used t = t.used
let budget t = t.cfg.budget
let health t = t.health
let enabled t = t.cfg.budget > 0

(* The busy retry hint adapts to the observed drain rate: a client told
   to come back should find room when it does, so the hint estimates
   how long draining the current backlog will take at the recent credit
   rate. The configured [busy_retry_ms] stays meaningful as the floor
   (never retry sooner) and, at 10x, the ceiling (never park a client
   for long on a stale estimate). With no rate observed yet the static
   flag value is the hint, as before. *)
let retry_ceiling = 10

let busy_retry_ms t =
  let floor_ms = t.cfg.busy_retry_ms in
  if t.drain_rate <= 0.0 || t.used <= 0 then floor_ms
  else
    let est_ms = float_of_int t.used /. t.drain_rate *. 1000.0 in
    let cap = float_of_int (retry_ceiling * floor_ms) in
    int_of_float (Float.max (float_of_int floor_ms) (Float.min cap est_ms))

let note_tick t ~now =
  if Float.is_nan t.last_tick then begin
    t.last_tick <- now;
    t.credited_since_tick <- 0
  end
  else begin
    let dt = now -. t.last_tick in
    if dt > 0.01 then begin
      let rate = float_of_int t.credited_since_tick /. dt in
      t.drain_rate <-
        (if t.drain_rate <= 0.0 then rate
         else (0.5 *. t.drain_rate) +. (0.5 *. rate));
      t.credited_since_tick <- 0;
      t.last_tick <- now
    end
  end

let drain_rate t = t.drain_rate

(* Hysteresis: escalate when usage crosses a high watermark, recover
   only once it falls below the corresponding (lower) low watermark, so
   usage oscillating around one threshold cannot flap the state. *)
let reeval t =
  if enabled t then begin
    let u = t.used in
    let next =
      match t.health with
      | Healthy ->
        if u >= t.over_hi then Overloaded
        else if u >= t.deg_hi then Degraded
        else Healthy
      | Degraded ->
        if u >= t.over_hi then Overloaded
        else if u < t.deg_lo then Healthy
        else Degraded
      | Overloaded ->
        if u >= t.over_lo then Overloaded
        else if u < t.deg_lo then Healthy
        else Degraded
    in
    if next <> t.health then begin
      let prev = t.health in
      t.health <- next;
      t.on_transition prev next
    end
  end

let debit t n =
  if n > 0 then begin
    t.used <- t.used + n;
    reeval t
  end

let credit t n =
  if n > 0 then begin
    t.credited_since_tick <- t.credited_since_tick + n;
    t.used <- (if n >= t.used then 0 else t.used - n);
    reeval t
  end
