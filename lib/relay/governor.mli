(** Per-shard resource governor: one global byte budget covering every
    queued outbound frame on the shard (subscriber write queues,
    in-flight replay chunks, mirror-link buffers, control replies).

    The relay debits the governor when a sealed frame is queued on a
    connection and credits it when those bytes are written to the
    socket, dropped by queue policy, or the connection closes. Crossing
    watermarks drives a three-state health machine with hysteresis:

    {v
      Healthy    --used >= degraded_hi-->    Degraded
      Degraded   --used >= overloaded_hi-->  Overloaded
      Degraded   --used <  degraded_lo-->    Healthy
      Overloaded --used <  overloaded_lo-->  Degraded (or Healthy
                                             if already < degraded_lo)
    v}

    The budget is a control target, not a hard cap: admission control
    sheds load at the watermarks, but frames already read off the wire
    are still queued, so [used] may overshoot the budget by a bounded
    amount. Not thread-safe — a governor belongs to one shard loop. *)

type health =
  | Healthy
  | Degraded    (** replays throttled, slow consumers evicted eagerly *)
  | Overloaded  (** PUBLISH and [from=] replays refused with [busy] *)

val health_level : health -> int
(** 0 / 1 / 2 — the STATS / Prometheus gauge encoding. *)

val health_name : health -> string

type config = private {
  budget : int;  (** total byte budget; [<= 0] disables the governor *)
  degraded_hi_pct : int;
  degraded_lo_pct : int;
  overloaded_hi_pct : int;
  overloaded_lo_pct : int;
  busy_retry_ms : int;  (** retry hint carried in [busy] replies *)
}

val config :
  ?degraded_hi_pct:int ->
  ?degraded_lo_pct:int ->
  ?overloaded_hi_pct:int ->
  ?overloaded_lo_pct:int ->
  ?busy_retry_ms:int ->
  budget:int ->
  unit ->
  config
(** Defaults: degraded at 70% (recover < 50%), overloaded at 90%
    (recover < 70%), [busy_retry_ms = 250]. Raises [Invalid_argument]
    if the watermarks are not properly ordered (enabled budgets only). *)

type t

val create : config -> t

val on_transition : t -> (health -> health -> unit) -> unit
(** Install the transition callback [(fun old_health new_health -> …)];
    called synchronously from {!debit}/{!credit}. *)

val debit : t -> int -> unit
val credit : t -> int -> unit
(** Credits clamp at zero (a conservative floor if accounting ever
    drifts); both re-evaluate health and may fire the callback. *)

val used : t -> int
val budget : t -> int
val health : t -> health
val enabled : t -> bool
(** False for [budget <= 0]: usage is still tracked but health is
    pinned to [Healthy] and no callbacks fire. *)

val busy_retry_ms : t -> int
(** The retry hint carried in [busy] replies, in milliseconds. Adaptive:
    once {!note_tick} has observed a drain rate, the hint estimates how
    long draining the current backlog will take at that rate —
    [used / drain_rate] — clamped to
    [[config.busy_retry_ms, 10 * config.busy_retry_ms]]. Before any rate
    is observed (or with an empty backlog) it is the configured
    [busy_retry_ms], unchanged. *)

val note_tick : t -> now:float -> unit
(** Fold the bytes credited since the previous tick into the drain-rate
    estimate (EWMA, half-weight per tick). Call periodically from the
    owning shard loop (the relay calls it from its 1 s gauge tick);
    ticks closer than 10 ms apart are ignored. *)

val drain_rate : t -> float
(** Current drain-rate estimate in bytes/second; [0.] until the first
    complete tick interval. *)
