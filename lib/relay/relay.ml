(** The networked event relay: the {!Omf_backbone.Broker} served over
    real TCP by a single-threaded, [Unix.select]-driven event loop.

    This is the deployable form of the paper's event backbone (Figures 1
    and 3): capture points and subscribers are separate processes on
    separate machines; the relay hosts the broker — stream advertisement,
    per-stream format-descriptor caching with replay for late joiners,
    credential-scoped metadata — behind a small control protocol carried
    on the same length-prefixed TCP framing as the {!Omf_transport.Endpoint}
    descriptor/message frames it relays.

    Design points:

    - {b Single-threaded.} One [select] loop owns every socket;
      non-blocking reads are reassembled into frames by
      {!Omf_transport.Frame.Decoder}, writes are queued per connection
      and flushed on writability. No locks, deterministic fan-out order.
    - {b Bounded queues + backpressure.} Each subscriber has a bounded
      outbound queue of data frames. When a subscriber falls behind, the
      configured {!policy} decides: [Block] stops reading from the
      stream's publishers (loss-free — TCP pushes back to the capture
      point), [Drop_oldest] sheds the oldest queued data frame
      (descriptor frames are never shed, so the stream stays decodable),
      [Evict_slow] disconnects the laggard so the fast majority is
      unaffected.
    - {b Shared format machinery.} Descriptor frames are cached once per
      stream and replayed to every late joiner — the instance-level
      "compile once, serve many consumers" economics the paper's
      metadata design enables.
    - {b Graceful drain.} Shutdown stops accepting and reading, flushes
      every subscriber queue (up to a deadline), then closes.

    Control protocol (each frame: 1-byte kind + body; see PROTOCOLS.md
    section 11):

    - ['h'] HELLO     creds as ["k=v"] lines        -> ['o' banner]
    - ['a'] ADVERTISE ["stream\n<schema xml>"]      -> ['o']
    - ['p'] PUBLISH   ["stream"]                    -> ['o'], connection
      becomes the stream's publisher; subsequent ['D']/['M'] endpoint
      frames are fanned out verbatim
    - ['s'] SUBSCRIBE ["stream"]                    -> ['o' scoped-schema],
      then replayed ['D'] frames, then live frames
    - ['t'] STATS                                   -> ['o' "name value" lines]
    - ['e' message] is the error reply to any of the above. *)

open Omf_transport
module Broker = Omf_backbone.Broker
module Counters = Omf_util.Counters

let log = Logs.Src.create "omf.relay" ~doc:"TCP event relay"

module Log = (val Logs.src_log log)

type policy = Block | Drop_oldest | Evict_slow

let policy_to_string = function
  | Block -> "block"
  | Drop_oldest -> "drop-oldest"
  | Evict_slow -> "evict-slow-consumer"

let policy_of_string = function
  | "block" -> Some Block
  | "drop-oldest" -> Some Drop_oldest
  | "evict-slow-consumer" | "evict-slow" | "evict" -> Some Evict_slow
  | _ -> None

(* control / reply frame kinds (lowercase; relayed endpoint frames are
   the uppercase 'D'/'M' of Omf_transport.Endpoint) *)
let k_hello = 'h'
let k_advertise = 'a'
let k_publish = 'p'
let k_subscribe = 's'
let k_stats = 't'
let k_ok = 'o'
let k_err = 'e'

(* ------------------------------------------------------------------ *)
(* Connections                                                          *)
(* ------------------------------------------------------------------ *)

type role =
  | Pending  (** control commands only, no stream attached yet *)
  | Publisher of { stream : string; link : Link.t }
      (** [link] is the broker's fan-out entry for the stream *)
  | Subscriber of { stream : string; unsubscribe : unit -> unit }

type out_entry = {
  ebuf : Bytes.t;  (** wire bytes: header + frame *)
  mutable eoff : int;  (** bytes already written *)
  droppable : bool;  (** data frame, sheddable under [Drop_oldest] *)
}

type conn = {
  cid : int;
  fd : Unix.file_descr;
  decoder : Frame.Decoder.t;
  outq : out_entry Queue.t;
  mutable q_data : int;  (** droppable frames currently queued *)
  mutable creds : (string * string) list;
  mutable role : role;
  mutable over_since : float option;
      (** when the queue first crossed the watermark (Evict_slow) *)
  mutable doomed : string option;  (** close reason, swept after dispatch *)
}

type state = Running | Draining | Stopped

type t = {
  host : string;
  port : int;
  policy : policy;
  max_queue : int;
  evict_grace : float;
      (** seconds a subscriber may stay over the watermark before
          [Evict_slow] dooms it; a consumer that drains back below the
          watermark in time is spared (momentary bursts are not
          slowness) *)
  sndbuf : int option;  (** forced SO_SNDBUF on accepted sockets *)
  drain_default_s : float;
  lsock : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  broker : Broker.t;
  conns : (int, conn) Hashtbl.t;
  counters : Counters.t;
  scratch : Bytes.t;
  mutable next_cid : int;
  mutable state : state;
  mutable stop_requested : bool;
  mutable drain_deadline : float;
}

let create ?(host = "127.0.0.1") ?(port = 0) ?(policy = Block)
    ?(max_queue = 256) ?(evict_grace_s = 1.0) ?sndbuf ?(drain_s = 2.0) () : t =
  let lsock, bound_port = Tcp.listener ~host ~port () in
  Unix.set_nonblock lsock;
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  { host; port = bound_port; policy; max_queue; evict_grace = evict_grace_s
  ; sndbuf
  ; drain_default_s = drain_s
  ; lsock; wake_r; wake_w; broker = Broker.create ()
  ; conns = Hashtbl.create 64; counters = Counters.create ()
  ; scratch = Bytes.create 65536; next_cid = 1; state = Running
  ; stop_requested = false; drain_deadline = infinity }

let port t = t.port

(** The embedded broker — for scope policies and direct inspection
    ([Broker.set_scope] installs credential-based field scoping exactly
    as for the in-process broker). *)
let broker t = t.broker

let stats t : (string * int) list =
  Counters.dump t.counters
  @ List.concat_map
      (fun s ->
        [ (Printf.sprintf "stream.%s.published" s, Broker.published_count t.broker ~stream:s)
        ; (Printf.sprintf "stream.%s.subscribers" s, Broker.subscriber_count t.broker ~stream:s) ])
      (Broker.stream_names t.broker)

let stats_text t =
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf "%s %d\n" k v) (stats t))

(** Ask the loop to drain and stop. Safe from another thread or a signal
    handler: it only sets a flag and writes the wake pipe. *)
let request_shutdown (t : t) : unit =
  t.stop_requested <- true;
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Outbound queues and backpressure                                     *)
(* ------------------------------------------------------------------ *)

let enqueue_entry (c : conn) ~droppable (frame : Bytes.t) =
  Queue.add { ebuf = Frame.encode frame; eoff = 0; droppable } c.outq;
  if droppable then c.q_data <- c.q_data + 1

(** Drop the oldest fully-unwritten data frame, if any. *)
let drop_oldest_droppable (c : conn) : bool =
  let dropped = ref false in
  let keep = Queue.create () in
  Queue.iter
    (fun e ->
      if (not !dropped) && e.droppable && e.eoff = 0 then dropped := true
      else Queue.add e keep)
    c.outq;
  if !dropped then begin
    Queue.clear c.outq;
    Queue.transfer keep c.outq;
    c.q_data <- c.q_data - 1
  end;
  !dropped

(** Doom [c] as a slow consumer (swept after the current dispatch). *)
let evict_slow (t : t) (c : conn) =
  c.doomed <- Some "slow consumer evicted";
  Counters.incr t.counters "subscribers_evicted";
  Log.info (fun m -> m "conn %d: evicting slow consumer" c.cid)

(** Enqueue a relayed stream frame onto a subscriber, applying the
    backpressure policy. Raises {!Link.Closed} when the subscriber is
    (or becomes) dead so the broker skips it. *)
let enqueue_relayed (t : t) (c : conn) (frame : Bytes.t) =
  if c.doomed <> None then raise Link.Closed;
  let droppable =
    not
      (Bytes.length frame > 0
      && Char.equal (Bytes.get frame 0) Endpoint.frame_descriptor)
  in
  if droppable && c.q_data >= t.max_queue then begin
    match t.policy with
    | Block ->
      (* over the high-watermark: the loop pauses the stream's
         publishers until this queue drains; nothing is lost *)
      ()
    | Drop_oldest ->
      if drop_oldest_droppable c then
        Counters.incr t.counters "frames_dropped"
    | Evict_slow -> (
      (* over the watermark: start (or check) the grace clock rather
         than evicting outright — an actively draining consumer that
         is merely behind for a moment must not be killed.  The queue
         may grow past the watermark during the grace window; it is
         bounded by grace x publish rate. *)
      let now = Unix.gettimeofday () in
      match c.over_since with
      | None -> c.over_since <- Some now
      | Some t0 when now -. t0 >= t.evict_grace ->
        evict_slow t c;
        raise Link.Closed
      | Some _ -> ())
  end;
  enqueue_entry c ~droppable frame;
  Counters.incr t.counters "frames_out"

let reply (t : t) (c : conn) kind (body : string) =
  let b = Bytes.create (1 + String.length body) in
  Bytes.set b 0 kind;
  Bytes.blit_string body 0 b 1 (String.length body);
  enqueue_entry c ~droppable:false b;
  ignore t

let reply_ok t c body = reply t c k_ok body
let reply_err t c msg =
  Counters.incr t.counters "errors";
  reply t c k_err msg

(** Under [Block]: is some subscriber of [stream] over the watermark? *)
let stream_congested (t : t) (stream : string) : bool =
  t.policy = Block
  && Hashtbl.fold
       (fun _ c acc ->
         acc
         || match c.role with
            | Subscriber s ->
              String.equal s.stream stream
              && c.doomed = None && c.q_data >= t.max_queue
            | _ -> false)
       t.conns false

(* ------------------------------------------------------------------ *)
(* Frame dispatch                                                       *)
(* ------------------------------------------------------------------ *)

let parse_creds (s : string) : (string * string) list =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         match String.index_opt line '=' with
         | None -> None
         | Some i ->
           Some
             ( String.sub line 0 i
             , String.sub line (i + 1) (String.length line - i - 1) ))

let handle_control (t : t) (c : conn) kind (body : string) =
  if Char.equal kind k_hello then begin
    c.creds <- parse_creds body;
    reply_ok t c "omf-relay 1"
  end
  else if Char.equal kind k_stats then reply_ok t c (stats_text t)
  else if Char.equal kind k_advertise then begin
    match String.index_opt body '\n' with
    | None -> reply_err t c "advertise: want \"stream\\nschema\""
    | Some i -> (
      let stream = String.sub body 0 i in
      let schema = String.sub body (i + 1) (String.length body - i - 1) in
      match Broker.advertise t.broker ~stream ~schema with
      | () ->
        Counters.incr t.counters "advertisements";
        reply_ok t c ""
      | exception Omf_xschema.Schema.Schema_error m ->
        reply_err t c (Printf.sprintf "advertise %s: %s" stream m))
  end
  else if Char.equal kind k_publish then begin
    match c.role with
    | Publisher _ | Subscriber _ ->
      reply_err t c "publish: connection already has a role"
    | Pending -> (
      match Broker.publisher_link t.broker ~stream:body with
      | link ->
        c.role <- Publisher { stream = body; link };
        Counters.incr t.counters "publishers";
        reply_ok t c ""
      | exception Broker.Unknown_stream s ->
        reply_err t c (Printf.sprintf "publish: unknown stream %s" s))
  end
  else if Char.equal kind k_subscribe then begin
    match c.role with
    | Publisher _ | Subscriber _ ->
      reply_err t c "subscribe: connection already has a role"
    | Pending -> (
      match Broker.metadata_for t.broker ~stream:body c.creds with
      | schema ->
        (* reply first so the scoped schema precedes replayed frames *)
        reply_ok t c schema;
        let link =
          { Link.send = (fun frame -> enqueue_relayed t c frame)
          ; recv = (fun () -> None)
          ; close = (fun () -> ()) }
        in
        let unsubscribe =
          Broker.subscribe t.broker ~stream:body ~creds:c.creds link
        in
        c.role <- Subscriber { stream = body; unsubscribe };
        Counters.incr t.counters "subscriptions"
      | exception Broker.Unknown_stream s ->
        reply_err t c (Printf.sprintf "subscribe: unknown stream %s" s)
      | exception Broker.Access_denied m ->
        reply_err t c (Printf.sprintf "subscribe: access denied: %s" m))
  end
  else begin
    reply_err t c (Printf.sprintf "unknown command %C" kind);
    c.doomed <- Some "protocol error"
  end

let handle_frame (t : t) (c : conn) (frame : Bytes.t) =
  Counters.incr t.counters "frames_in";
  if Bytes.length frame = 0 then begin
    reply_err t c "empty frame";
    c.doomed <- Some "protocol error"
  end
  else
    let kind = Bytes.get frame 0 in
    let is_stream_frame =
      Char.equal kind Endpoint.frame_descriptor
      || Char.equal kind Endpoint.frame_message
    in
    if is_stream_frame then
      match c.role with
      | Publisher p ->
        if Char.equal kind Endpoint.frame_message then
          Counters.incr t.counters "events_relayed";
        Link.send p.link frame
      | Pending ->
        reply_err t c "stream frame before PUBLISH";
        c.doomed <- Some "protocol error"
      | Subscriber _ ->
        reply_err t c "subscriber connections are receive-only";
        c.doomed <- Some "protocol error"
    else
      match c.role with
      | Publisher _ | Pending ->
        handle_control t c kind
          (Bytes.sub_string frame 1 (Bytes.length frame - 1))
      | Subscriber _ ->
        (* replies would interleave with relayed frames: refuse *)
        reply_err t c "subscriber connections are receive-only";
        c.doomed <- Some "protocol error"

(* ------------------------------------------------------------------ *)
(* The event loop                                                       *)
(* ------------------------------------------------------------------ *)

let accept_ready (t : t) =
  let continue = ref true in
  while !continue do
    match Unix.accept t.lsock with
    | fd, _ ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      (match t.sndbuf with
      | Some n -> (
        try Unix.setsockopt_int fd Unix.SO_SNDBUF n
        with Unix.Unix_error _ -> ())
      | None -> ());
      let cid = t.next_cid in
      t.next_cid <- cid + 1;
      Hashtbl.replace t.conns cid
        { cid; fd; decoder = Frame.Decoder.create (); outq = Queue.create ()
        ; q_data = 0; creds = []; role = Pending; over_since = None
        ; doomed = None };
      Counters.incr t.counters "connections";
      Log.debug (fun m -> m "conn %d accepted" cid)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

let read_ready (t : t) (c : conn) =
  match Unix.read c.fd t.scratch 0 (Bytes.length t.scratch) with
  | 0 -> c.doomed <- Some "peer closed"
  | n -> (
    Counters.incr t.counters ~by:n "bytes_in";
    Frame.Decoder.feed c.decoder t.scratch 0 n;
    try
      let rec drain () =
        if c.doomed = None then
          match Frame.Decoder.pop c.decoder with
          | Some frame ->
            handle_frame t c frame;
            drain ()
          | None -> ()
      in
      drain ()
    with
    | Frame.Frame_error m | Broker.Unknown_stream m ->
      c.doomed <- Some m
    | Link.Closed -> ()
    (* subscriber died mid-fanout; its own doom is already set *))
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> c.doomed <- Some "read error"

let write_ready (t : t) (c : conn) =
  let continue = ref true in
  while !continue && not (Queue.is_empty c.outq) do
    let e = Queue.peek c.outq in
    match Unix.write c.fd e.ebuf e.eoff (Bytes.length e.ebuf - e.eoff) with
    | n ->
      Counters.incr t.counters ~by:n "bytes_out";
      e.eoff <- e.eoff + n;
      if e.eoff = Bytes.length e.ebuf then begin
        ignore (Queue.pop c.outq);
        if e.droppable then begin
          c.q_data <- c.q_data - 1;
          (* drained back below the watermark: the consumer recovered,
             so stop the eviction grace clock *)
          if c.q_data < t.max_queue then c.over_since <- None
        end
      end
      else continue := false
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error _ ->
      c.doomed <- Some "write error";
      continue := false
  done

let close_conn (t : t) (c : conn) =
  (* best-effort flush first: a conn doomed for a protocol error has
     its 'e' reply still queued, and the peer should learn why it was
     dropped — push whatever the socket will take without blocking *)
  write_ready t c;
  (match c.role with
  | Subscriber s -> s.unsubscribe ()
  | Publisher _ | Pending -> ());
  Hashtbl.remove t.conns c.cid;
  (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  Log.debug (fun m ->
      m "conn %d closed (%s)" c.cid
        (Option.value ~default:"normal" c.doomed))

let sweep_doomed (t : t) =
  let doomed =
    Hashtbl.fold
      (fun _ c acc -> if c.doomed <> None then c :: acc else acc)
      t.conns []
  in
  List.iter (close_conn t) doomed

(** Sweep grace deadlines: a subscriber that stayed over the watermark
    for the whole grace window is evicted even if no new frame arrives
    to trigger the check in {!enqueue_relayed}. *)
let check_evictions (t : t) =
  if t.policy = Evict_slow then
    let now = Unix.gettimeofday () in
    Hashtbl.iter
      (fun _ c ->
        match c.over_since with
        | Some t0 when c.doomed = None && now -. t0 >= t.evict_grace ->
          evict_slow t c
        | _ -> ())
      t.conns

let drain_wake_pipe (t : t) =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 64 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let conn_wants_read (t : t) (c : conn) : bool =
  c.doomed = None
  && t.state = Running
  &&
  match c.role with
  | Publisher p -> not (stream_congested t p.stream)
  | Pending | Subscriber _ -> true

(** Run the loop until {!request_shutdown} (then drain) completes. *)
let run (t : t) : unit =
  Log.info (fun m ->
      m "listening on %s:%d (policy %s, max queue %d)" t.host t.port
        (policy_to_string t.policy) t.max_queue);
  while t.state <> Stopped do
    (* enter drain on request *)
    if t.stop_requested && t.state = Running then begin
      t.state <- Draining;
      t.drain_deadline <- Unix.gettimeofday () +. t.drain_default_s;
      (try Unix.close t.lsock with Unix.Unix_error _ -> ());
      Log.info (fun m ->
          m "draining %d connections" (Hashtbl.length t.conns))
    end;
    if t.state = Draining then begin
      let pending =
        Hashtbl.fold
          (fun _ c acc -> acc + Queue.length c.outq)
          t.conns 0
      in
      if pending = 0 || Unix.gettimeofday () > t.drain_deadline then begin
        Hashtbl.iter (fun _ c -> c.doomed <- Some "shutdown") t.conns;
        sweep_doomed t;
        (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
        (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
        t.state <- Stopped;
        Log.info (fun m -> m "stopped")
      end
    end;
    if t.state <> Stopped then begin
      let reads =
        t.wake_r
        :: (if t.state = Running then [ t.lsock ] else [])
        @ Hashtbl.fold
            (fun _ c acc -> if conn_wants_read t c then c.fd :: acc else acc)
            t.conns []
      in
      let writes =
        Hashtbl.fold
          (fun _ c acc ->
            if c.doomed = None && not (Queue.is_empty c.outq) then
              c.fd :: acc
            else acc)
          t.conns []
      in
      let timeout = if t.state = Draining then 0.05 else 0.5 in
      match Unix.select reads writes [] timeout with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | exception Unix.Unix_error (EBADF, _, _) ->
        (* a fd closed under us (e.g. listener on shutdown) — next
           iteration rebuilds the sets from live connections *)
        ()
      | rs, ws, _ ->
        if List.memq t.wake_r rs then drain_wake_pipe t;
        if t.state = Running && List.memq t.lsock rs then accept_ready t;
        Hashtbl.iter
          (fun _ c ->
            if c.doomed = None && List.memq c.fd ws then write_ready t c)
          t.conns;
        Hashtbl.iter
          (fun _ c ->
            if c.doomed = None && List.memq c.fd rs then read_ready t c)
          t.conns;
        check_evictions t;
        sweep_doomed t
    end
  done

(* ------------------------------------------------------------------ *)
(* Hosted convenience                                                   *)
(* ------------------------------------------------------------------ *)

type handle = { relay : t; thread : Thread.t }

(** [start ()] runs a relay loop in a background thread (ephemeral port
    by default) — the embedding used by tests and benchmarks. *)
let start ?host ?port ?policy ?max_queue ?evict_grace_s ?sndbuf ?drain_s () :
    handle =
  let relay =
    create ?host ?port ?policy ?max_queue ?evict_grace_s ?sndbuf ?drain_s ()
  in
  { relay; thread = Thread.create run relay }

let relay (h : handle) : t = h.relay

(** [stop h] requests a graceful drain and waits for the loop to end. *)
let stop (h : handle) : unit =
  request_shutdown h.relay;
  Thread.join h.thread

(* ------------------------------------------------------------------ *)
(* Client                                                               *)
(* ------------------------------------------------------------------ *)

(** Blocking client for the relay protocol. One connection carries one
    role: after {!Client.publish} the link is an
    {!Omf_transport.Endpoint.Sender} channel, after {!Client.subscribe}
    it is receive-only. *)
module Client = struct
  exception Error of string

  type t = { link : Link.t }

  let ctrl kind (body : string) : Bytes.t =
    let b = Bytes.create (1 + String.length body) in
    Bytes.set b 0 kind;
    Bytes.blit_string body 0 b 1 (String.length body);
    b

  let rpc (t : t) kind body : string =
    Link.send t.link (ctrl kind body);
    match Link.recv t.link with
    | None -> raise (Error "relay closed the connection")
    | Some r when Bytes.length r >= 1 && Char.equal (Bytes.get r 0) k_ok ->
      Bytes.sub_string r 1 (Bytes.length r - 1)
    | Some r when Bytes.length r >= 1 && Char.equal (Bytes.get r 0) k_err ->
      raise (Error (Bytes.sub_string r 1 (Bytes.length r - 1)))
    | Some _ -> raise (Error "malformed reply")

  let creds_text creds =
    String.concat "\n" (List.map (fun (k, v) -> k ^ "=" ^ v) creds)

  let connect ?(host = "127.0.0.1") ~port ?(creds = []) () : t =
    let link = Tcp.connect ~host ~port () in
    let t = { link } in
    ignore (rpc t k_hello (creds_text creds));
    t

  let advertise (t : t) ~(stream : string) ~(schema : string) : unit =
    ignore (rpc t k_advertise (stream ^ "\n" ^ schema))

  let stats (t : t) : (string * int) list =
    Counters.of_text (rpc t k_stats "")

  (** [publish t ~stream] switches the connection into publisher mode
      and returns the raw link: drive it with
      {!Omf_transport.Endpoint.Sender}. *)
  let publish (t : t) ~(stream : string) : Link.t =
    ignore (rpc t k_publish stream);
    t.link

  (** [subscribe t ~stream] returns the (credential-scoped) stream
      schema and the raw link now carrying descriptor/message frames. *)
  let subscribe (t : t) ~(stream : string) : string * Link.t =
    let schema = rpc t k_subscribe stream in
    (schema, t.link)

  let close (t : t) = Link.close t.link
end

(* ------------------------------------------------------------------ *)
(* A fully wired remote consumer (mirror of Broker.attach_consumer)     *)
(* ------------------------------------------------------------------ *)

module Catalog = Omf_xml2wire.Catalog

type consumer = {
  client : Client.t;
  catalog : Catalog.t;
  endpoint : Endpoint.Receiver.t;
  schema : string;  (** the scoped schema the relay served *)
}

(** [attach_consumer ~port ~stream abi] connects, subscribes, registers
    the served (scoped) schema in a fresh catalog for [abi] and wraps
    the link in an endpoint receiver. *)
let attach_consumer ?host ~port ?creds ~(stream : string)
    (abi : Omf_machine.Abi.t) : consumer =
  let client = Client.connect ?host ~port ?creds () in
  let schema, link = Client.subscribe client ~stream in
  let catalog = Catalog.create abi in
  ignore
    (Omf_xml2wire.Xml2wire.register_schema ~source:("relay:" ^ stream) catalog
       schema);
  let endpoint =
    Endpoint.Receiver.create link
      (Catalog.registry catalog)
      (Omf_machine.Memory.create abi)
  in
  { client; catalog; endpoint; schema }

(** Blocking receive of the next decoded event ([None] = relay closed
    the stream). *)
let recv (c : consumer) : (Omf_pbio.Format.t * Omf_pbio.Value.t) option =
  Endpoint.Receiver.recv_value c.endpoint

let close_consumer (c : consumer) : unit = Client.close c.client
