(** The networked event relay: the {!Omf_backbone.Broker} served over
    real TCP by {!Omf_reactor.Reactor} event loops.

    This is the deployable form of the paper's event backbone (Figures 1
    and 3): capture points and subscribers are separate processes on
    separate machines; the relay hosts the broker — stream advertisement,
    per-stream format-descriptor caching with replay for late joiners,
    credential-scoped metadata — behind a small control protocol carried
    on the same length-prefixed TCP framing as the {!Omf_transport.Endpoint}
    descriptor/message frames it relays.

    Design points:

    - {b Single-threaded per shard.} One reactor loop owns every socket
      of its shard; non-blocking reads are reassembled into frames by
      {!Omf_reactor.Conn}, writes are queued per connection and flushed
      on writability. No locks on the hot path, deterministic fan-out
      order. {!Cluster} runs N such loops (one domain each) behind one
      acceptor, pinning each stream to a shard so per-stream ordering
      is preserved.
    - {b Bounded queues + backpressure.} Each subscriber has a bounded
      outbound queue of data frames. When a subscriber falls behind, the
      configured {!policy} decides: [Block] stops reading from the
      stream's publishers (loss-free — TCP pushes back to the capture
      point), [Drop_oldest] sheds the oldest queued data frame
      (descriptor frames are never shed, so the stream stays decodable),
      [Evict_slow] disconnects the laggard so the fast majority is
      unaffected.
    - {b Shared format machinery.} Descriptor frames are cached once per
      stream and replayed to every late joiner — the instance-level
      "compile once, serve many consumers" economics the paper's
      metadata design enables.
    - {b Graceful drain.} Shutdown stops accepting and reading, flushes
      every subscriber queue (up to a deadline), then closes.

    Control protocol (each frame: 1-byte kind + body; see PROTOCOLS.md
    section 11):

    - ['h'] HELLO     creds as ["k=v"] lines        -> ['o' banner]
    - ['a'] ADVERTISE ["stream\n<schema xml>"]      -> ['o']
    - ['p'] PUBLISH   ["stream"]                    -> ['o'], connection
      becomes the stream's publisher; subsequent ['D']/['M'] endpoint
      frames are fanned out verbatim
    - ['s'] SUBSCRIBE ["stream"]                    -> ['o' scoped-schema],
      then replayed ['D'] frames, then live frames
    - ['t'] STATS                                   -> ['o' "name value" lines]
    - ['l'] LIST                                    -> ['o' stream names]
    - ['q'] DESCRIBE  ["stream"]                    -> ['o' meta + schema]
    - ['m'] PROMOTE   ["stream"]                    -> ['o' "epoch=N"]
    - ['e' message] is the error reply to any of the above;
      ['b' "retry_ms=N"] is the retryable overload refusal
      (PROTOCOLS.md section 16) to PUBLISH / SUBSCRIBE [from=]. *)

open Omf_transport
module Broker = Omf_backbone.Broker
module Counters = Omf_util.Counters
module Slice = Omf_util.Slice
module Store = Omf_store.Store
module Compress = Omf_compress.Compress
module Governor = Governor
module Trace = Omf_trace.Trace

let log = Logs.Src.create "omf.relay" ~doc:"TCP event relay"

module Log = (val Logs.src_log log)

type policy = Block | Drop_oldest | Evict_slow

let policy_to_string = function
  | Block -> "block"
  | Drop_oldest -> "drop-oldest"
  | Evict_slow -> "evict-slow-consumer"

let policy_of_string = function
  | "block" -> Some Block
  | "drop-oldest" -> Some Drop_oldest
  | "evict-slow-consumer" | "evict-slow" | "evict" -> Some Evict_slow
  | _ -> None

(* control / reply frame kinds (lowercase; relayed endpoint frames are
   the uppercase 'D'/'M' of Omf_transport.Endpoint) *)
let k_hello = 'h'
let k_advertise = 'a'
let k_publish = 'p'
let k_subscribe = 's'
let k_stats = 't'
let k_ok = 'o'
let k_err = 'e'

let k_ack = 'k'
(** durability acknowledgement to an [acks=1] publisher: body is the
    decimal cumulative durable offset of its stream's store *)

let k_busy = 'b'
(** retryable overload refusal (PROTOCOLS.md §16): the shard's resource
    governor is [Overloaded], the command was shed rather than queued;
    body is ["retry_ms=N"], the suggested backoff before retrying on
    the {e same} connection *)

(* replication controls (PROTOCOLS.md §15) *)
let k_list = 'l'  (** LIST: reply is one hosted stream name per line *)

let k_describe = 'q'
(** DESCRIBE ["stream"]: reply is the advertisement metadata lines
    (always including [origin=]/[epoch=]) followed by the scoped
    schema; does not change the connection's role *)

let k_promote = 'm'
(** PROMOTE ["stream"]: take write ownership of a mirrored stream —
    origin becomes this relay, epoch is bumped; reply ["epoch=N"] *)


(* ------------------------------------------------------------------ *)
(* Connections and shards                                               *)
(* ------------------------------------------------------------------ *)

module Reactor = Omf_reactor.Reactor
module Rconn = Omf_reactor.Conn
module Token_bucket = Omf_util.Token_bucket

(** An in-flight chunked stored replay (PROTOCOLS.md §13): [r_next] is
    the next store offset to deliver. Replay is paced from the reactor's
    writable callback — a bounded chunk per pump, budgeted against the
    subscriber's queue watermark — so a [SUBSCRIBE from=0] of a large
    backlog neither materialises the whole log in the write queue nor
    stalls the loop thread. *)
type replay = { r_store : Store.t; mutable r_next : int }

type role =
  | Pending  (** control commands only, no stream attached yet *)
  | Publisher of {
      stream : string;
      link : Link.t;  (** the broker's fan-out entry for the stream *)
      acks : bool;
          (** [acks=1] was requested at PUBLISH on a store-backed
              stream: send ['k' durable] frames as appends harden *)
      mirror : bool;
          (** a replication link ([mirror=1], PROTOCOLS.md §15):
              admitted past the read-only gate on mirrored streams and
              doomed when the stream is promoted out from under it *)
      mutable skip_dup : int;
          (** store-backed resume: this many leading ['M'] frames are
              re-sends of offsets the store already holds ([tail -
              durable] at PUBLISH time) — swallow them instead of
              appending and fanning out duplicates *)
      mutable acked : int;  (** last durable offset sent as an ack *)
      ptrace : Trace.ctx option;
          (** trace context for this publisher's frames (doc/TRACE.md,
              PROTOCOLS.md §17): the [trace=] context supplied at
              PUBLISH, or one minted by the relay's head sampler;
              [None] iff tracing is disabled on the shard *)
    }
  | Subscriber of {
      stream : string;
      unsubscribe : unit -> unit;
      mutable skip_until : int;
          (** store-backed [from=] subscription: drop live ['M'] frames
              whose store offset is below this (they are re-appends the
              subscriber already received before a relay crash); [-1]
              disables the filter *)
      mutable replay : replay option;
          (** chunked stored replay still in flight; live ['M'] frames
              are withheld while set (the pump reads them from the
              store, preserving order) *)
    }

type state = Running | Draining | Stopped

(** Delivery-side tracing mark (doc/TRACE.md): stamped on a subscriber
    connection when a traced frame is enqueued, consumed by the [flush]
    span (first bytes written after the enqueue) and the [deliver] span
    (write queue fully drained). One mark per connection — sampling
    keeps traced frames rare, and a later traced enqueue simply
    restarts the clock — so the untraced path pays one [None] check. *)
type tmark = {
  tm_trace : int64;
  tm_parent : int64;
  tm_sampled : bool;
  tm_stream : string;
  tm_enq_us : int;  (** monotonic enqueue timestamp ({!Trace.now_us}) *)
  mutable tm_flushed : bool;  (** the [flush] span was already recorded *)
}

type conn = {
  cid : int;  (** unique across the cluster: strided by shard count *)
  io : Rconn.t;  (** the reactor-side buffered connection driver *)
  mutable creds : (string * string) list;
  mutable role : role;
  mutable over_since : float option;
      (** when the queue first crossed the watermark (Evict_slow) *)
  mutable grace_timer : Reactor.timer option;
      (** pending eviction deadline on the shard's timer wheel *)
  mutable congesting : bool;
      (** this subscriber currently pauses its stream's publishers *)
  mutable mac : Macframe.state option;
      (** HMAC frame mode, negotiated at HELLO; sealing starts with the
          frame after the HELLO exchange in each direction *)
  mutable mac_rejects : int;  (** frames that failed authentication *)
  mutable comp : bool;
      (** LZ frame compression, negotiated at HELLO ([comp=lz],
          PROTOCOLS.md §18) and armed after the plaintext banner like
          [mac]; composed outside authentication — every wire frame is
          [seal (compress body)] out, [decompress (open frame)] in *)
  mutable gov_debited : int;
      (** wire bytes debited against the shard governor and not yet
          credited back (written, dropped, or surrendered at close) —
          always equals this connection's unwritten queued bytes *)
  mutable throttled : bool;
      (** reads paused by the ingress token bucket; a reactor timer
          clears this when the bucket refills *)
  bucket : Token_bucket.t option;
      (** per-connection ingress token bucket ([--ingress-rate]),
          charged one token per publisher stream frame *)
  mutable trace_mark : tmark option;
      (** pending flush/deliver trace spans for the most recently
          enqueued traced frame (subscribers only) *)
  mutable home : t;  (** the shard whose loop owns this connection *)
}

(** Cluster-wide state: which shard owns which stream, and every shard
    (for merged stats). The pins table is the only cross-shard mutable
    structure on the request path; it is mutex-guarded and touched once
    per ADVERTISE/PUBLISH/SUBSCRIBE. *)
and shared = {
  pins_mu : Mutex.t;
  pins : (string, int) Hashtbl.t;  (** stream -> owning shard id *)
  mutable peers : t array;  (** every shard, indexed by shard id *)
}

and t = {
  host : string;
  port : int;
  relay_id : string;
      (** this relay's replication identity (PROTOCOLS.md §15): the
          [origin=] tag stamped on locally advertised streams, shared
          by every shard of a cluster; persisted under the store root
          so a restart keeps owning its streams *)
  policy : policy;
  max_queue : int;
  evict_grace : float;
      (** seconds a subscriber may stay over the watermark before
          [Evict_slow] dooms it; a consumer that drains back below the
          watermark in time is spared (momentary bursts are not
          slowness) *)
  sndbuf : int option;  (** forced SO_SNDBUF on accepted sockets *)
  auth_keys : (string * string) list;
      (** [key-id -> secret] table for HMAC frame negotiation; empty =
          authenticated mode unavailable *)
  mac_reject_limit : int;
      (** close a connection after this many unauthenticated frames *)
  drain_default_s : float;
  governor : Governor.t;
      (** the shard's byte-budget governor (overload control,
          doc/OVERLOAD.md); loop-thread only, like [conns] *)
  trace : Trace.collector option;
      (** sampled distributed tracing (doc/TRACE.md): the shard's span
          ring buffer; [None] = tracing disabled, zero cost *)
  stream_trace : (string, Trace.ctx) Hashtbl.t;
      (** last trace context per stream — served in DESCRIBE metadata
          so downstream mirrors join the same trace; loop-thread only *)
  mutable cur_trace : Trace.ctx option;
      (** context of the message currently being fanned out, visible to
          {!enqueue_relayed_frame} so subscriber marks inherit it *)
  ingress : (float * float) option;
      (** per-connection ingress token bucket [(rate, burst)] in
          frames/s; [None] = unlimited *)
  mutable lsock : Unix.file_descr option;
      (** shards in a cluster have no listener of their own *)
  mutable lreg : Reactor.registration option;
  reactor : Reactor.t;
  broker : Broker.t;
  conns : (int, conn) Hashtbl.t;  (** loop-thread only *)
  counters : Counters.t;
  shard_id : int;
  cid_stride : int;
  shared : shared option;  (** [None] for a standalone relay *)
  store_cfg : Store.config option;
      (** durable stream store; [None] = memory-only relay *)
  stores : (string, Store.t) Hashtbl.t;
      (** per-shard store handles, loop-thread only — the cluster path
          stays lock-free because a stream is pinned to one shard *)
  adverts : (string, (string * string) list) Hashtbl.t;
      (** per-stream advertisement metadata ([subject=] / [version=] /
          [fingerprint=] registry bindings, PROTOCOLS.md §14);
          loop-thread only, safe because the stream is pinned here *)
  mutable fanout_offset : int;
      (** store offset of the ['M'] frame currently being fanned out
          ([-1] outside store-backed fan-out); lets the subscriber-side
          [skip_until] filter see the offset without reframing *)
  mutable wire_cache_body : Bytes.t;
      (** the body whose framed wire message is cached below, keyed by
          physical identity: fanning one publish out to N subscribers
          encodes the wire slices once and every queue shares them *)
  mutable wire_cache : Slice.t list;
  mutable comp_cache_body : Bytes.t;
      (** same sharing for [comp=lz] subscribers, keyed the same way:
          the body is compressed once per fan-out and every compressed
          queue shares the block (plain MAC-less ones also share the
          framed wire message below; sealed ones re-seal the shared
          block per connection, as nonces are per-connection) *)
  mutable comp_cache_blk : Bytes.t;
  mutable comp_cache_wire : Slice.t list;
  comp_scratch : Compress.scratch;
      (** shard-owned match-finder workspace (the shard loop is
          single-threaded) — compression never allocates chain arrays
          per frame *)
  pending_acks : (string, unit) Hashtbl.t;
      (** streams with an appender awaiting a durability ack *)
  mutable ack_flush_scheduled : bool;
  mutable store_timer : Reactor.timer option;
  mutable gauge_timer : Reactor.timer option;
  mutable next_cid : int;
  mutable state : state;
  mutable drain_timer : Reactor.timer option;
  mutable stop_flag : bool;  (** set by {!request_shutdown} *)
}

let port t = t.port
let relay_id t = t.relay_id

(** The embedded broker — for scope policies and direct inspection
    ([Broker.set_scope] installs credential-based field scoping exactly
    as for the in-process broker). *)
let broker t = t.broker

(** One counter snapshot: cluster-wide (summed over every shard) when
    sharded, so a STATS reply from any shard reports whole-relay
    traffic; just this relay's counters when standalone. *)
let counter_snapshot (t : t) : (string * int) list =
  match t.shared with
  | Some sh when Array.length sh.peers > 0 ->
    Counters.merged (Array.to_list (Array.map (fun s -> s.counters) sh.peers))
  | _ -> Counters.dump t.counters

let stats t : (string * int) list =
  counter_snapshot t
  @ List.concat_map
      (fun s ->
        [ (Printf.sprintf "stream.%s.published" s, Broker.published_count t.broker ~stream:s)
        ; (Printf.sprintf "stream.%s.subscribers" s, Broker.subscriber_count t.broker ~stream:s) ])
      (Broker.stream_names t.broker)
  @ Hashtbl.fold
      (fun s st acc ->
        (Printf.sprintf "store.%s.tail" s, Store.tail st)
        :: (Printf.sprintf "store.%s.durable" s, Store.durable st)
        :: (Printf.sprintf "store.%s.segments" s, Store.segments st)
        :: (Printf.sprintf "store.%s.bytes" s, Store.bytes st)
        ::
        (if Store.comp_raw_bytes st > 0 then
           [ (Printf.sprintf "store.%s.comp_raw" s, Store.comp_raw_bytes st)
           ; ( Printf.sprintf "store.%s.comp_stored" s
             , Store.comp_stored_bytes st ) ]
         else [])
        @ acc)
      t.stores []

(** Bytes debited against this shard's governor and not yet credited
    back — by invariant exactly the unwritten queued bytes (test hook
    for the debit/credit symmetry guarantee). *)
let governor_used t = Governor.used t.governor

let stats_text t =
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf "%s %d\n" k v) (stats t))

(** Ask the loop to drain and stop. Safe from another thread or a signal
    handler: it only sets a flag and writes the wake pipe (the loop's
    per-iteration tick polls the flag — no mutex on this path). *)
let request_shutdown (t : t) : unit =
  t.stop_flag <- true;
  Reactor.wake t.reactor

(* ------------------------------------------------------------------ *)
(* Graceful drain                                                       *)
(* ------------------------------------------------------------------ *)

let total_queued (t : t) : int =
  Hashtbl.fold (fun _ c acc -> acc + Rconn.queued c.io) t.conns 0

(** Flush deadline reached (or everything flushed): doom what is left
    and stop the loop. *)
let finish_drain (t : t) =
  if t.state <> Stopped then begin
    t.state <- Stopped;
    (match t.drain_timer with
    | Some tm ->
      Reactor.cancel t.reactor tm;
      t.drain_timer <- None
    | None -> ());
    let live = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    List.iter (fun c -> Rconn.doom c.io "shutdown") live;
    (match t.store_timer with
    | Some tm ->
      Reactor.cancel t.reactor tm;
      t.store_timer <- None
    | None -> ());
    (match t.gauge_timer with
    | Some tm ->
      Reactor.cancel t.reactor tm;
      t.gauge_timer <- None
    | None -> ());
    Hashtbl.iter
      (fun stream st ->
        try Store.close st
        with Store.Store_error msg ->
          Log.err (fun m -> m "store %s: close: %s" stream msg))
      t.stores;
    Hashtbl.reset t.stores;
    Reactor.stop t.reactor;
    Log.info (fun m -> m "shard %d stopped" t.shard_id)
  end

let check_drain_done (t : t) =
  if t.state = Draining && total_queued t = 0 then finish_drain t

(** Stop accepting and reading, keep flushing subscriber queues until
    they empty or the drain deadline fires. Loop-thread only. *)
let begin_drain (t : t) =
  if t.state = Running then begin
    t.state <- Draining;
    (match t.lreg with
    | Some r ->
      Reactor.deregister t.reactor r;
      t.lreg <- None
    | None -> ());
    (match t.lsock with
    | Some s ->
      (try Unix.close s with Unix.Unix_error _ -> ());
      t.lsock <- None
    | None -> ());
    Hashtbl.iter (fun _ c -> Rconn.set_read_intent c.io false) t.conns;
    t.drain_timer <-
      Some (Reactor.after t.reactor t.drain_default_s (fun () -> finish_drain t));
    Log.info (fun m -> m "draining %d connections" (Hashtbl.length t.conns));
    check_drain_done t
  end

(* ------------------------------------------------------------------ *)
(* Outbound queues and backpressure                                     *)
(* ------------------------------------------------------------------ *)

(* Debit the shard governor with the wire size (slice total = body +
   the 4-byte length prefix) before queueing; credited back as the
   bytes are written, dropped, or the connection closes. Dead
   connections silently discard the send, so they are not debited. *)
let enqueue_wire (c : conn) ~droppable (wire : Slice.t list) =
  if Rconn.alive c.io then begin
    let wire_bytes = Slice.total wire in
    c.gov_debited <- c.gov_debited + wire_bytes;
    Governor.debit c.home.governor wire_bytes
  end;
  Rconn.send_wire c.io ~droppable wire

(* Compression accounting (doc/COMPRESS.md): monotonic raw/wire byte
   totals per stream, plus the achieved ratio (x100) as a histogram —
   [comp.control.*] covers pre-role and control-only connections. *)
let comp_ratio_bounds = [ 100; 110; 125; 150; 200; 300; 500; 800; 1600 ]

let note_comp (c : conn) ~(raw : int) ~(wire : int) =
  let t = c.home in
  let subject =
    match c.role with
    | Publisher p -> p.stream
    | Subscriber s -> s.stream
    | Pending -> "control"
  in
  Counters.incr t.counters ~by:raw (Printf.sprintf "comp.%s.raw_bytes" subject);
  Counters.incr t.counters ~by:wire
    (Printf.sprintf "comp.%s.wire_bytes" subject);
  if wire > 0 then
    Counters.observe t.counters ~bounds:comp_ratio_bounds "compress_ratio"
      (raw * 100 / wire)

let enqueue_entry (c : conn) ~droppable (frame : Bytes.t) =
  let t = c.home in
  let wire =
    if c.comp then begin
      (* compress once per fan-out (same physical-identity key as the
         plain wire cache below), then frame or seal the shared block *)
      let blk =
        if frame == t.comp_cache_body then t.comp_cache_blk
        else begin
          let b = Compress.compress ~scratch:t.comp_scratch frame in
          t.comp_cache_body <- frame;
          t.comp_cache_blk <- b;
          t.comp_cache_wire <- Frame.wire [ Slice.of_bytes b ];
          b
        end
      in
      note_comp c ~raw:(Bytes.length frame) ~wire:(Bytes.length blk);
      match c.mac with
      | Some st -> Frame.wire [ Slice.of_bytes (Macframe.seal_next st blk) ]
      | None -> t.comp_cache_wire
    end
    else
      match c.mac with
      | Some st ->
        (* under negotiated HMAC mode every outbound frame is sealed;
           sealing happens at enqueue time so nonces follow queue order
           exactly — the frame path's one copy-on-seal *)
        Frame.wire [ Slice.of_bytes (Macframe.seal_next st frame) ]
      | None ->
        (* encode the wire message once per published body: the broker
           fans the same physical [frame] to every subscriber, so all N
           queues share one header slice and one body buffer *)
        if frame == t.wire_cache_body then t.wire_cache
        else begin
          let w = Frame.wire [ Slice.of_bytes frame ] in
          t.wire_cache_body <- frame;
          t.wire_cache <- w;
          w
        end
  in
  enqueue_wire c ~droppable wire

(** Enqueue a body that is a view into a shared buffer (stored-replay
    chunks): framed without copying on plain connections, sealed (the
    copy-on-seal) and/or compressed on negotiated ones. *)
let enqueue_entry_slice (c : conn) ~droppable (body : Slice.t) =
  let wire =
    if c.comp then begin
      let blk = Compress.compress_slice ~scratch:c.home.comp_scratch body in
      note_comp c ~raw:(Slice.length body) ~wire:(Bytes.length blk);
      match c.mac with
      | Some st -> Frame.wire [ Slice.of_bytes (Macframe.seal_next st blk) ]
      | None -> Frame.wire [ Slice.of_bytes blk ]
    end
    else
      match c.mac with
      | Some st ->
        Frame.wire [ Slice.of_bytes (Macframe.seal_next_slices st [ body ]) ]
      | None -> Frame.wire [ body ]
  in
  enqueue_wire c ~droppable wire

(** Return [n] freshly written-or-shed wire bytes to the governor. *)
let credit_conn (c : conn) (n : int) =
  let n = min n c.gov_debited in
  if n > 0 then begin
    c.gov_debited <- c.gov_debited - n;
    Governor.credit c.home.governor n
  end

(* --- tracing span recorders (doc/TRACE.md) ------------------------- *)

(* A span is written only when the trace is sampled or the duration
   crosses the slow threshold; the same gate feeds the stage-latency
   histogram so "stage_us.*" and /trace/spans always agree. *)
let trace_record (t : t) ~(trace : int64) ~(parent : int64)
    ~(sampled : bool) ~(stage : string) ~(stream : string) ~(t0_us : int) =
  match t.trace with
  | None -> ()
  | Some col ->
    let dur = Trace.now_us () - t0_us in
    if Trace.should_record col ~sampled ~dur_us:dur then begin
      Trace.record col ~trace ~parent ~stage ~stream ~start_us:t0_us
        ~dur_us:dur;
      Counters.observe t.counters ("stage_us." ^ stage) dur
    end

let trace_span (t : t) (ctx : Trace.ctx) ~(stage : string)
    ~(stream : string) ~(t0_us : int) =
  trace_record t ~trace:ctx.Trace.trace_id ~parent:ctx.Trace.span_id
    ~sampled:ctx.Trace.sampled ~stage ~stream ~t0_us

let trace_mark_span (t : t) (tm : tmark) ~(stage : string) =
  trace_record t ~trace:tm.tm_trace ~parent:tm.tm_parent
    ~sampled:tm.tm_sampled ~stage ~stream:tm.tm_stream ~t0_us:tm.tm_enq_us

let reply (c : conn) kind (body : string) =
  let b = Bytes.create (1 + String.length body) in
  Bytes.set b 0 kind;
  Bytes.blit_string body 0 b 1 (String.length body);
  enqueue_entry c ~droppable:false b

let reply_ok c body = reply c k_ok body

let reply_err (t : t) c msg =
  Counters.incr t.counters "errors";
  reply c k_err msg

(** Shed a command with the retryable overload status (PROTOCOLS.md
    §16). The connection keeps its (Pending) role and stays usable —
    the client is expected to back off [retry_ms] and retry on the same
    connection. *)
let reply_busy (t : t) c (what : string) =
  Counters.incr t.counters (what ^ "_busy");
  reply c k_busy
    (Printf.sprintf "retry_ms=%d" (Governor.busy_retry_ms t.governor))

(* ------------------------------------------------------------------ *)
(* Durable store plumbing (loop-thread only)                            *)
(* ------------------------------------------------------------------ *)

(** The shard's store handle for [stream], opened (and recovered) on
    first touch. [None] when the relay runs memory-only. Raises
    {!Store.Store_error} if the on-disk log is damaged beyond the
    torn-tail repair. *)
let store_handle (t : t) (stream : string) : Store.t option =
  match t.store_cfg with
  | None -> None
  | Some cfg -> (
    match Hashtbl.find_opt t.stores stream with
    | Some st -> Some st
    | None ->
      let st = Store.open_stream cfg stream in
      Hashtbl.replace t.stores stream st;
      Some st)

(** Send ['k' durable] to every [acks=1] publisher of the streams
    marked in [pending_acks] whose durable watermark advanced since the
    last ack. Coalesced: scheduled at most once per dispatch round. *)
let flush_acks (t : t) =
  t.ack_flush_scheduled <- false;
  if Hashtbl.length t.pending_acks > 0 then begin
    let streams = Hashtbl.fold (fun s () acc -> s :: acc) t.pending_acks [] in
    Hashtbl.reset t.pending_acks;
    List.iter
      (fun stream ->
        match Hashtbl.find_opt t.stores stream with
        | None -> ()
        | Some st ->
          let durable = Store.durable st in
          Hashtbl.iter
            (fun _ c ->
              match c.role with
              | Publisher p
                when p.acks
                     && String.equal p.stream stream
                     && durable > p.acked
                     && Rconn.alive c.io ->
                p.acked <- durable;
                reply c k_ack (string_of_int durable)
              | _ -> ())
            t.conns)
      streams
  end

let schedule_ack_flush (t : t) (stream : string) =
  Hashtbl.replace t.pending_acks stream ();
  if not t.ack_flush_scheduled then begin
    t.ack_flush_scheduled <- true;
    Reactor.defer t.reactor (fun () -> flush_acks t)
  end

(** Periodic store maintenance: fsync dirty logs (this is the whole of
    the [Interval] policy, and bounds straggler latency for [Every_n]),
    wake acks whose durable advanced, and enforce age-based retention.
    Re-arms itself while the shard runs. *)
let rec store_tick (t : t) (period : float) =
  Hashtbl.iter
    (fun stream st ->
      let before = Store.durable st in
      (match Store.sync st with
      | d -> if d > before then schedule_ack_flush t stream
      | exception Store.Store_error msg ->
        Counters.incr t.counters "store_errors";
        Log.err (fun m -> m "store %s: %s" stream msg));
      ignore (Store.apply_retention st))
    t.stores;
  if t.state = Running then
    t.store_timer <-
      Some (Reactor.after t.reactor period (fun () -> store_tick t period))

(** Refresh the Prometheus-visible gauges: per-stream subscriber queue
    depth and per-stream store segments/bytes/tail/durable. Runs every
    second on the shard's own loop, so no locks are needed; the gauges
    land in [t.counters] and flow through STATS, [Counters.merged] and
    [Http.serve_metrics] like any counter. *)
let rec gauge_tick (t : t) =
  List.iter
    (fun stream ->
      let depth =
        Hashtbl.fold
          (fun _ c acc ->
            match c.role with
            | Subscriber s when String.equal s.stream stream ->
              acc + Rconn.queued_droppable c.io
            | _ -> acc)
          t.conns 0
      in
      Counters.set t.counters
        (Printf.sprintf "stream.%s.queue_depth" stream)
        depth)
    (Broker.stream_names t.broker);
  Hashtbl.iter
    (fun stream st ->
      let g name v =
        Counters.set t.counters (Printf.sprintf "store.%s.%s" stream name) v
      in
      g "segments" (Store.segments st);
      g "bytes" (Store.bytes st);
      g "tail" (Store.tail st);
      g "durable" (Store.durable st);
      if Store.comp_raw_bytes st > 0 then begin
        g "comp_raw" (Store.comp_raw_bytes st);
        g "comp_stored" (Store.comp_stored_bytes st)
      end)
    t.stores;
  Governor.note_tick t.governor ~now:(Unix.gettimeofday ());
  Counters.set t.counters "governor_used_bytes" (Governor.used t.governor);
  Counters.set t.counters "governor_health"
    (Governor.health_level (Governor.health t.governor));
  if Governor.enabled t.governor then begin
    Counters.set t.counters "governor_budget_bytes"
      (Governor.budget t.governor);
    Counters.set t.counters "governor_retry_ms"
      (Governor.busy_retry_ms t.governor)
  end;
  if t.state = Running then
    t.gauge_timer <- Some (Reactor.after t.reactor 1.0 (fun () -> gauge_tick t))

(** Under [Block]: is some subscriber of [stream] over the watermark? *)
let stream_congested (t : t) (stream : string) : bool =
  t.policy = Block
  && Hashtbl.fold
       (fun _ c acc ->
         acc
         || match c.role with
            | Subscriber s ->
              String.equal s.stream stream
              && Rconn.alive c.io
              && Rconn.queued_droppable c.io >= t.max_queue
            | _ -> false)
       t.conns false

(** May this publisher connection be read from at all? False while the
    shard is not running, the connection's ingress bucket is in debt,
    or the governor is [Overloaded] (ingress shed until usage falls
    back below the low watermark). Per-stream [Block] congestion is a
    separate condition checked by the callers that know the stream. *)
let publisher_read_ok (t : t) (c : conn) : bool =
  t.state = Running
  && (not c.throttled)
  && Governor.health t.governor <> Governor.Overloaded

let set_publishers_reading (t : t) (stream : string) (b : bool) =
  Hashtbl.iter
    (fun _ c ->
      match c.role with
      | Publisher p when String.equal p.stream stream ->
        Rconn.set_read_intent c.io (b && publisher_read_ok t c)
      | _ -> ())
    t.conns

let maybe_resume_stream (t : t) (stream : string) =
  if t.policy = Block && t.state = Running && not (stream_congested t stream)
  then set_publishers_reading t stream true

let clear_grace (c : conn) =
  c.over_since <- None;
  match c.grace_timer with
  | Some tm ->
    Reactor.cancel c.home.reactor tm;
    c.grace_timer <- None
  | None -> ()

(** Doom [c] as a slow consumer. *)
let evict_slow (t : t) (c : conn) =
  Counters.incr t.counters "subscribers_evicted";
  Log.info (fun m -> m "conn %d: evicting slow consumer" c.cid);
  Rconn.doom c.io "slow consumer evicted"

(** Start the eviction grace clock: if the subscriber is still over the
    watermark when the timer fires, it is evicted — an actively
    draining consumer that recovers in time is spared ({!conn_progress}
    cancels the timer). *)
let arm_grace (t : t) (c : conn) =
  match c.grace_timer with
  | Some _ -> ()
  | None ->
    c.grace_timer <-
      Some
        (Reactor.after t.reactor t.evict_grace (fun () ->
             c.grace_timer <- None;
             match c.over_since with
             | Some _ when Rconn.alive c.io -> evict_slow t c
             | _ -> ()))

let replay_chunk = 64
(** frames delivered per pump of a chunked stored replay: small enough
    that one pump cannot monopolise the loop thread, large enough to
    amortise the per-chunk segment walk *)

(** Advance [c]'s chunked stored replay by one bounded chunk. Budgeted
    against the queue watermark ([max_queue - queued]): a full queue
    pumps nothing and the next writable callback ({!conn_progress})
    resumes — stored replay is flow-controlled by the consumer's own
    drain rate instead of materialising the whole backlog at once. When
    the pump catches the store tail, the replay ends and [skip_until]
    moves up so live delivery takes over at exactly the next offset —
    no gap, no duplicate. *)
let pump_replay (t : t) (c : conn) =
  match c.role with
  | Subscriber ({ replay = Some r; _ } as s) ->
    if t.state <> Running || not (Rconn.alive c.io) then s.replay <- None
    else begin
      let failed = ref false in
      (* graceful degradation: a Degraded shard pumps smaller chunks so
         stored replays stop amplifying the pressure that degraded it;
         an Overloaded shard pumps nothing — stalled replays resume from
         the writable callback or the downward health transition *)
      let chunk =
        match Governor.health t.governor with
        | Governor.Healthy -> replay_chunk
        | Governor.Degraded ->
          Counters.incr t.counters "store_replay_throttled";
          replay_chunk / 4
        | Governor.Overloaded -> 0
      in
      let budget = min chunk (t.max_queue - Rconn.queued_droppable c.io) in
      (if budget > 0 then
         let upto = min (r.r_next + budget) (Store.tail r.r_store) in
         match
           (* slice replay: bodies are views into the store's segment
              read buffers, enqueued without copying *)
           Store.iter_range_slices r.r_store r.r_next upto (fun off body ->
               Counters.incr t.counters "store_replay_frames";
               Counters.incr t.counters "frames_out";
               enqueue_entry_slice c ~droppable:true body;
               r.r_next <- off + 1)
         with
         | () -> ()
         | exception Store.Store_error msg ->
           (* a partial replay would silently gap the stream: kill the
              subscription so the client retries *)
           failed := true;
           s.replay <- None;
           Counters.incr t.counters "store_errors";
           Log.err (fun m -> m "store %s: replay: %s" s.stream msg);
           Rconn.doom c.io "store replay failed");
      if not !failed then
        if r.r_next >= Store.tail r.r_store then begin
          s.skip_until <- r.r_next;
          s.replay <- None;
          Counters.incr t.counters "store_replay_done"
        end
        else Counters.incr t.counters "store_replay_chunks"
    end
  | Subscriber _ | Publisher _ | Pending -> ()

(** Enqueue a relayed stream frame onto a subscriber, applying the
    backpressure policy. Raises {!Link.Closed} when the subscriber is
    dead so the broker skips it. *)
let rec enqueue_relayed (t : t) (c : conn) (frame : Bytes.t) =
  if not (Rconn.alive c.io) then raise Link.Closed;
  (* Store-backed crash recovery: a resuming publisher re-appends
     offsets a resubscribed consumer already received live before the
     crash; the subscriber declared its high-water mark at SUBSCRIBE
     ([skip_until]) and live frames below it are silently elided.
     While a chunked replay is in flight {e every} store-offset frame
     is withheld: it was appended before fan-out, so the pump will
     deliver it from the store in order. *)
  match c.role with
  | Subscriber { replay = Some _; _ } when t.fanout_offset >= 0 ->
    Counters.incr t.counters "store_fanout_deferred";
    pump_replay t c
  | Subscriber s
    when t.fanout_offset >= 0 && s.skip_until >= 0
         && t.fanout_offset < s.skip_until ->
    Counters.incr t.counters "store_fanout_skipped"
  | Subscriber _ | Publisher _ | Pending -> enqueue_relayed_frame t c frame

and enqueue_relayed_frame (t : t) (c : conn) (frame : Bytes.t) =
  let droppable =
    not
      (Bytes.length frame > 0
      && Char.equal (Bytes.get frame 0) Endpoint.frame_descriptor)
  in
  if droppable && Rconn.queued_droppable c.io >= t.max_queue then begin
    match t.policy with
    | Block ->
      (* over the high-watermark: pause the stream's publishers until
         this queue drains ({!conn_progress} resumes them); nothing is
         lost — TCP pushes back to the capture point *)
      if not c.congesting then begin
        c.congesting <- true;
        match c.role with
        | Subscriber s -> set_publishers_reading t s.stream false
        | Publisher _ | Pending -> ()
      end
    | Drop_oldest ->
      let shed = Rconn.drop_oldest_droppable c.io in
      if shed > 0 then begin
        credit_conn c shed;
        Counters.incr t.counters "frames_dropped"
      end
    | Evict_slow -> (
      if Governor.health t.governor <> Governor.Healthy then begin
        (* Degraded: no grace for laggards — shed the slow consumer now
           so its queue bytes come back before the shard overloads *)
        Counters.incr t.counters "evictions_eager";
        evict_slow t c
      end
      else
        (* over the watermark: start the grace clock rather than evicting
           outright.  The queue may grow past the watermark during the
           grace window; it is bounded by grace x publish rate. *)
        match c.over_since with
        | None ->
          c.over_since <- Some (Reactor.now ());
          arm_grace t c
        | Some _ -> ())
  end;
  (match t.cur_trace with
  | Some ctx -> (
    match c.role with
    | Subscriber s ->
      c.trace_mark <-
        Some
          { tm_trace = ctx.Trace.trace_id
          ; tm_parent = ctx.Trace.span_id
          ; tm_sampled = ctx.Trace.sampled
          ; tm_stream = s.stream
          ; tm_enq_us = Trace.now_us ()
          ; tm_flushed = false }
    | Publisher _ | Pending -> ())
  | None -> ());
  enqueue_entry c ~droppable frame;
  Counters.incr t.counters "frames_out"

(** Governor health changed (called synchronously from a debit or
    credit). Entering [Overloaded] pauses ingress from every publisher
    — control traffic, subscriber drains and descriptor replays keep
    flowing, so the shard sheds load without going dark. Leaving it
    resumes publishers (unless individually throttled or their stream
    is Block-congested) and re-pumps stored replays stalled at the
    zero-chunk budget. *)
let on_governor_transition (t : t) (prev : Governor.health)
    (next : Governor.health) =
  Counters.set t.counters "governor_health" (Governor.health_level next);
  Counters.incr t.counters
    (match next with
    | Governor.Healthy -> "governor_recovered"
    | Governor.Degraded -> "governor_degraded"
    | Governor.Overloaded -> "governor_overloaded");
  Log.info (fun m ->
      m "shard %d: governor %s -> %s (%d of %d budget bytes queued)"
        t.shard_id
        (Governor.health_name prev)
        (Governor.health_name next)
        (Governor.used t.governor) (Governor.budget t.governor));
  let was_over = prev = Governor.Overloaded in
  let is_over = next = Governor.Overloaded in
  if is_over && not was_over then
    Hashtbl.iter
      (fun _ c ->
        match c.role with
        | Publisher _ -> Rconn.set_read_intent c.io false
        | Subscriber _ | Pending -> ())
      t.conns
  else if was_over && not is_over then
    Hashtbl.iter
      (fun _ c ->
        match c.role with
        | Publisher p ->
          if publisher_read_ok t c && not (stream_congested t p.stream) then
            Rconn.set_read_intent c.io true
        | Subscriber { replay = Some _; _ } -> pump_replay t c
        | Subscriber _ | Pending -> ())
      t.conns

(* ------------------------------------------------------------------ *)
(* Frame dispatch                                                       *)
(* ------------------------------------------------------------------ *)

let parse_creds (s : string) : (string * string) list =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         match String.index_opt line '=' with
         | None -> None
         | Some i ->
           Some
             ( String.sub line 0 i
             , String.sub line (i + 1) (String.length line - i - 1) ))

(** Reject a connection at the protocol level: count it, reply, doom
    (the doom's opportunistic flush usually gets the ['e'] out). *)
let protocol_reject (t : t) (c : conn) (msg : string) =
  Counters.incr t.counters "frames_rejected";
  Log.warn (fun m -> m "conn %d: %s" c.cid msg);
  reply_err t c msg;
  Rconn.doom c.io "protocol error"

(** HELLO: record credentials and negotiate the frame mode. With
    [auth=hmac] + a known [key-id], the ['o'] reply is sent in the
    clear and every subsequent frame in both directions is sealed
    ({!Macframe}); an unknown key or unsupported mode is refused and
    the connection dropped. A client that reconnects after an outage
    marks itself with an [omf-reconnect] credential so operators can
    see churn in STATS. *)
let handle_hello (t : t) (c : conn) (body : string) =
  c.creds <- parse_creds body;
  if List.mem_assoc "omf-reconnect" c.creds then
    Counters.incr t.counters "reconnects_accepted";
  (* comp=lz (PROTOCOLS.md §18) negotiates down, never refuses: an
     unknown mode simply isn't echoed in the banner, so both sides fall
     back to plain frames — exactly what an old peer would do *)
  let comp = List.assoc_opt "comp" c.creds = Some "lz" in
  let comp_tok = if comp then " comp=lz" else "" in
  let arm_comp () =
    if comp then begin
      Counters.incr t.counters "comp_sessions";
      c.comp <- true
    end
  in
  match List.assoc_opt "auth" c.creds with
  | None ->
    reply_ok c ("omf-relay 1" ^ comp_tok);
    arm_comp ()
  | Some "hmac" -> (
    match List.assoc_opt "key-id" c.creds with
    | None ->
      Counters.incr t.counters "auth_denied";
      reply_err t c "hello: auth=hmac requires key-id";
      Rconn.doom c.io "auth denied"
    | Some id -> (
      match List.assoc_opt id t.auth_keys with
      | None ->
        Counters.incr t.counters "auth_denied";
        reply_err t c (Printf.sprintf "hello: unknown key-id %s" id);
        Rconn.doom c.io "auth denied"
      | Some key ->
        Counters.incr t.counters "auth_sessions";
        reply_ok c ("omf-relay 1 mac" ^ comp_tok);
        (* armed after the reply: the reply itself is plaintext, the
           next outbound frame is the first sealed (and compressed)
           one *)
        c.mac <- Some (Macframe.state ~key);
        arm_comp ()))
  | Some other ->
    Counters.incr t.counters "auth_denied";
    reply_err t c (Printf.sprintf "hello: unsupported auth mode %s" other);
    Rconn.doom c.io "auth denied"

(** Which shard owns [stream]? First toucher pins it (standalone relays
    always own everything). Thread-safe; called from any shard loop. *)
let stream_owner (t : t) (stream : string) : t =
  match t.shared with
  | None -> t
  | Some sh ->
    Mutex.lock sh.pins_mu;
    let owner =
      match Hashtbl.find_opt sh.pins stream with
      | Some id -> sh.peers.(id)
      | None ->
        Hashtbl.replace sh.pins stream t.shard_id;
        t
    in
    Mutex.unlock sh.pins_mu;
    owner

(* PUBLISH and SUBSCRIBE bodies are the stream name, optionally
   followed by "k=v" option lines (PROTOCOLS.md §13): a publisher sends
   [acks=1] to request durability acks, a subscriber sends [from=N] to
   request stored replay. A body with no newline is the bare stream
   name — the pre-store wire format, still fully supported. *)
let parse_stream_body (body : string) : string * (string * string) list =
  match String.index_opt body '\n' with
  | None -> (body, [])
  | Some i ->
    ( String.sub body 0 i,
      parse_creds (String.sub body (i + 1) (String.length body - i - 1)) )

(* ADVERTISE bodies are "stream\nschema", optionally with "k=v"
   metadata lines between the stream name and the schema text
   (PROTOCOLS.md §14): [subject=] / [version=] / [fingerprint=] bind
   the stream to a schema-registry entry so receivers can resolve
   conversion plans by content fingerprint. A metadata line is one
   whose key is a bare identifier and whose text contains no ['<']; the
   schema resumes at the first line failing that test, so the pre-§14
   "stream\nschema" body parses unchanged (XML starts with ['<']). *)
let is_meta_line (line : string) : bool =
  match String.index_opt line '=' with
  | None -> false
  | Some i ->
    i > 0
    && (not (String.contains line '<'))
    && String.for_all
         (fun ch ->
           (ch >= 'a' && ch <= 'z')
           || (ch >= 'A' && ch <= 'Z')
           || (ch >= '0' && ch <= '9')
           || Char.equal ch '-' || Char.equal ch '_')
         (String.sub line 0 i)

let split_advert_meta (rest : string) : (string * string) list * string =
  let rec go acc off =
    match String.index_from_opt rest off '\n' with
    | Some j when is_meta_line (String.sub rest off (j - off)) ->
      let line = String.sub rest off (j - off) in
      let k = String.index line '=' in
      go
        ((String.sub line 0 k, String.sub line (k + 1) (String.length line - k - 1))
        :: acc)
        (j + 1)
    | Some _ | None -> (List.rev acc, String.sub rest off (String.length rest - off))
  in
  go [] 0

let meta_text (kvs : (string * string) list) : string =
  String.concat "" (List.map (fun (k, v) -> Printf.sprintf "%s=%s\n" k v) kvs)

(* Every advertised stream's metadata carries a replication tag
   (PROTOCOLS.md §15): [origin=] is the relay id that owns writes,
   [epoch=] a monotonically increasing ownership generation bumped by
   PROMOTE. A stream whose origin is not this relay is read-only here:
   only a mirror link carrying the matching tag may append. *)
let advert_origin (kvs : (string * string) list) : string option =
  List.assoc_opt "origin" kvs

let advert_epoch (kvs : (string * string) list) : int =
  match Option.bind (List.assoc_opt "epoch" kvs) int_of_string_opt with
  | Some n -> n
  | None -> 0

let with_origin (kvs : (string * string) list) ~origin ~epoch :
    (string * string) list =
  List.filter (fun (k, _) -> k <> "origin" && k <> "epoch") kvs
  @ [ ("origin", origin); ("epoch", string_of_int epoch) ]

(** The stream's advertisement metadata, defaulting streams advertised
    before origin tracking (or recovered from a pre-§15 store) to
    owned-here at epoch 0. *)
let advert_info (t : t) (stream : string) : (string * string) list =
  match Hashtbl.find_opt t.adverts stream with
  | Some kvs when advert_origin kvs <> None -> kvs
  | Some kvs -> kvs @ [ ("origin", t.relay_id); ("epoch", "0") ]
  | None -> [ ("origin", t.relay_id); ("epoch", "0") ]

(** Record (and, when store-backed, persist) the stream's metadata so a
    restarted relay re-advertises it — registry binding and origin tag
    included — before any publisher returns. *)
let persist_advert (t : t) (stream : string) (kvs : (string * string) list) =
  Hashtbl.replace t.adverts stream kvs;
  match store_handle t stream with
  | None -> ()
  | Some st -> Store.set_meta st kvs
  | exception Store.Store_error msg ->
    Counters.incr t.counters "store_errors";
    Log.err (fun m -> m "store %s: %s" stream msg)

(** Gate an ADVERTISE by (origin, epoch) against what this relay holds:
    [Ok kvs] is the full metadata to record, [Error msg] a refusal.
    This is the loop/ownership arbiter — a relay's own advert coming
    back around a mirror cycle, a plain advertise of a mirrored
    (read-only) stream, and a stale epoch after a promote are all
    refused; a strictly higher epoch from elsewhere wins ownership
    (demotion — failback after the old origin returns). *)
let gate_advert (t : t) (stream : string) (meta : (string * string) list) :
    ((string * string) list, string) result =
  let cur = Hashtbl.find_opt t.adverts stream in
  match (advert_origin meta, cur) with
  | None, None -> Ok (with_origin meta ~origin:t.relay_id ~epoch:0)
  | None, Some cur_kvs ->
    let cur_origin =
      Option.value (advert_origin cur_kvs) ~default:t.relay_id
    in
    if String.equal cur_origin t.relay_id then
      Ok (with_origin meta ~origin:t.relay_id ~epoch:(advert_epoch cur_kvs))
    else
      Error
        (Printf.sprintf "advertise %s: read-only (mirrored from %s)" stream
           cur_origin)
  | Some o, _ when String.equal o t.relay_id ->
    Error
      (Printf.sprintf "advertise %s: origin loop (stream originates here)"
         stream)
  | Some o, None -> Ok (with_origin meta ~origin:o ~epoch:(advert_epoch meta))
  | Some o, Some cur_kvs ->
    let cur_origin =
      Option.value (advert_origin cur_kvs) ~default:t.relay_id
    in
    let cur_epoch = advert_epoch cur_kvs in
    let e = advert_epoch meta in
    if String.equal cur_origin o then
      Ok (with_origin meta ~origin:o ~epoch:(max e cur_epoch))
    else if e > cur_epoch then Ok (with_origin meta ~origin:o ~epoch:e)
    else
      Error
        (Printf.sprintf "advertise %s: stale epoch %d (held by %s at epoch %d)"
           stream e cur_origin cur_epoch)

let rec handle_control (t : t) (c : conn) kind (body : string) =
  if Char.equal kind k_hello then handle_hello t c body
  else if Char.equal kind k_stats then reply_ok c (stats_text t)
  else if Char.equal kind k_advertise then begin
    match String.index_opt body '\n' with
    | None -> reply_err t c "advertise: want \"stream\\n[k=v...]\\nschema\""
    | Some i -> (
      let stream = String.sub body 0 i in
      let owner = stream_owner t stream in
      if owner != t then route t owner c kind body stream
      else
        let rest = String.sub body (i + 1) (String.length body - i - 1) in
        let meta, schema = split_advert_meta rest in
        match gate_advert t stream meta with
        | Error msg ->
          Counters.incr t.counters "advert_refused";
          reply_err t c msg
        | Ok kvs -> (
          match Broker.advertise t.broker ~stream ~schema with
          | () ->
            Counters.incr t.counters "advertisements";
            if meta <> [] then Counters.incr t.counters "advert_meta";
            (* persist the schema so a restarted relay can re-advertise
               the stream before any publisher returns *)
            (match store_handle t stream with
            | None -> ()
            | Some st -> Store.set_schema st schema
            | exception Store.Store_error msg ->
              Counters.incr t.counters "store_errors";
              Log.err (fun m -> m "store %s: %s" stream msg));
            persist_advert t stream kvs;
            reply_ok c ""
          | exception Omf_xschema.Schema.Schema_error m ->
            reply_err t c (Printf.sprintf "advertise %s: %s" stream m)))
  end
  else if Char.equal kind k_publish then begin
    match c.role with
    | Publisher _ | Subscriber _ ->
      reply_err t c "publish: connection already has a role"
    | Pending -> (
      let stream, opts = parse_stream_body body in
      let owner = stream_owner t stream in
      if owner != t then route t owner c kind body stream
      else if Governor.health t.governor = Governor.Overloaded then
        (* shed by class: new ingress is refused retryably while
           descriptor/control traffic (ADVERTISE, DESCRIBE, STATS,
           live SUBSCRIBE) still flows, so streams stay decodable *)
        reply_busy t c "publish"
      else
        match Broker.publisher_link t.broker ~stream with
        | link -> (
          let kvs = advert_info t stream in
          let origin = Option.value (advert_origin kvs) ~default:t.relay_id in
          let epoch = advert_epoch kvs in
          let owned = String.equal origin t.relay_id in
          let mirror =
            match List.assoc_opt "mirror" opts with
            | Some "1" -> true
            | _ -> false
          in
          (* The replication write gate (PROTOCOLS.md §15): a mirrored
             stream takes appends only from a mirror link whose
             (origin, epoch) tag matches the local record — a plain
             publisher is told the stream is read-only, a mirror link
             that outlived a promote (or looped back to the origin) is
             told to re-handshake. *)
          if (not mirror) && not owned then
            reply_err t c
              (Printf.sprintf "publish %s: read-only (mirrored from %s)"
                 stream origin)
          else if
            mirror
            && (owned
               || List.assoc_opt "origin" opts <> Some origin
               || Option.bind (List.assoc_opt "epoch" opts) int_of_string_opt
                  <> Some epoch)
          then begin
            Counters.incr t.counters "mirror_publish_refused";
            reply_err t c
              (Printf.sprintf
                 "publish %s: stale mirror link (stream is %s@%d here)"
                 stream origin epoch)
          end
          else
            let become ~acks ~skip_dup ~acked reply_body =
              (* Trace head sampling happens here, once per publisher:
                 a supplied [trace=] context (a capture point or an
                 upstream relay already decided) is adopted verbatim;
                 otherwise this relay draws the sampling decision. The
                 unsampled case still mints ids so the slow-span
                 always-record path has a trace to attribute to. *)
              let ptrace =
                match t.trace with
                | None -> None
                | Some col ->
                  let ctx =
                    match
                      Option.bind (List.assoc_opt "trace" opts)
                        Trace.of_string
                    with
                    | Some ctx -> ctx
                    | None -> Trace.make ~sampled:(Trace.sample col) ()
                  in
                  Hashtbl.replace t.stream_trace stream ctx;
                  Some ctx
              in
              c.role <-
                Publisher { stream; link; acks; mirror; skip_dup; acked; ptrace };
              Counters.incr t.counters
                (if mirror then "mirror_publishers" else "publishers");
              (* joining a stream that is already congested: start paused *)
              if stream_congested t stream then
                Rconn.set_read_intent c.io false;
              reply_ok c reply_body
            in
            match store_handle t stream with
            | None -> become ~acks:false ~skip_dup:0 ~acked:0 ""
            | Some st ->
              (* Store-backed: report the durable watermark. An [acks=1]
                 publisher resumes from it — it resends every buffered
                 frame at or past [durable] and numbers new frames from
                 it, so the watermark must be exact at the handshake:
                 sync first, making [durable = tail]. (Without the sync a
                 fresh publisher racing a dead one's unsynced appends
                 would have its first [tail - durable] frames mistaken
                 for resends.) [skip_dup] stays as a guard should the two
                 ever diverge between the sync and the reply. A mirror
                 link gets the same exact handshake plus the tail — the
                 offset it resumes pumping source frames from. *)
              let acks =
                match List.assoc_opt "acks" opts with
                | Some "1" -> true
                | _ -> false
              in
              if acks || mirror then ignore (Store.sync st);
              let durable = Store.durable st in
              let skip_dup =
                if acks || mirror then Store.tail st - durable else 0
              in
              become ~acks ~skip_dup ~acked:durable
                (if mirror then
                   Printf.sprintf "durable=%d\ntail=%d" durable (Store.tail st)
                 else Printf.sprintf "durable=%d" durable)
            | exception Store.Store_error msg ->
              Counters.incr t.counters "store_errors";
              reply_err t c (Printf.sprintf "publish %s: store: %s" stream msg)
            )
        | exception Broker.Unknown_stream s ->
          reply_err t c (Printf.sprintf "publish: unknown stream %s" s))
  end
  else if Char.equal kind k_subscribe then begin
    match c.role with
    | Publisher _ | Subscriber _ ->
      reply_err t c "subscribe: connection already has a role"
    | Pending -> (
      let stream, opts = parse_stream_body body in
      let owner = stream_owner t stream in
      if owner != t then route t owner c kind body stream
      else if
        Governor.health t.governor = Governor.Overloaded
        && (match
              Option.bind (List.assoc_opt "from" opts) int_of_string_opt
            with
           | Some from -> from >= 0
           | None -> false)
      then
        (* a stored replay would queue an arbitrary backlog against an
           exhausted budget; live (tail) subscriptions drain the shard
           and are still admitted *)
        reply_busy t c "subscribe"
      else
        match Broker.metadata_for t.broker ~stream c.creds with
        | schema -> (
          let link =
            { Link.send = (fun frame -> enqueue_relayed t c frame)
            ; recv = (fun () -> None)
            ; close = (fun () -> ()) }
          in
          (* [meta=1]: prefix the stream's advertised registry binding
             ([subject=] / [fingerprint=] ...) to the schema reply —
             only on request, so pre-§14 clients parse the body as
             before *)
          let meta_prefix =
            match List.assoc_opt "meta" opts with
            | Some "1" ->
              (match Hashtbl.find_opt t.adverts stream with
              | Some kvs -> meta_text kvs
              | None -> "")
            | _ -> ""
          in
          let plain () =
            (* reply first so the scoped schema precedes replayed frames *)
            reply_ok c (meta_prefix ^ schema);
            let unsubscribe =
              Broker.subscribe t.broker ~stream ~creds:c.creds link
            in
            c.role <-
              Subscriber { stream; unsubscribe; skip_until = -1; replay = None };
            Counters.incr t.counters "subscriptions"
          in
          let from =
            Option.bind (List.assoc_opt "from" opts) int_of_string_opt
          in
          match from with
          | None -> plain ()
          | Some from -> (
            match store_handle t stream with
            | None ->
              (* [from=] against a memory-only relay degrades to a live
                 subscription (the reply carries no offset line, which
                 tells the session that offsets are not tracked) *)
              plain ()
            | Some st ->
              (* [start] is where delivery begins: the tail for a
                 live-only subscription (from=-1), otherwise the
                 requested offset clamped up past retention. When the
                 subscriber is {e ahead} of the store (it outlived a
                 crash that lost unsynced appends), [start > tail]:
                 nothing is replayed and the [skip_until] filter elides
                 the re-appended offsets below [start]. *)
              let tail = Store.tail st in
              let oldest = Store.oldest st in
              let start = if from < 0 then tail else max from oldest in
              if from >= 0 && start > from then
                Counters.incr t.counters "store_replay_clamped";
              reply_ok c
                (Printf.sprintf "offset=%d\n%s%s" start meta_prefix schema);
              let unsubscribe =
                Broker.subscribe t.broker ~stream ~creds:c.creds link
              in
              (* replay runs chunked off the writable callback
                 ({!pump_replay}): the first pump goes out now, the
                 rest are paced by the subscriber's own drain rate *)
              let replay =
                if start < tail then begin
                  Counters.incr t.counters "store_replays";
                  Some { r_store = st; r_next = start }
                end
                else None
              in
              let pump = Option.is_some replay in
              c.role <-
                Subscriber { stream; unsubscribe; skip_until = start; replay };
              if pump then pump_replay t c;
              Counters.incr t.counters "subscriptions"
            | exception Store.Store_error msg ->
              Counters.incr t.counters "store_errors";
              reply_err t c
                (Printf.sprintf "subscribe %s: store: %s" stream msg)))
        | exception Broker.Unknown_stream s ->
          reply_err t c (Printf.sprintf "subscribe: unknown stream %s" s)
        | exception Broker.Access_denied m ->
          reply_err t c (Printf.sprintf "subscribe: access denied: %s" m))
  end
  else if Char.equal kind k_list then begin
    (* cluster-wide: the pins table names every stream any shard owns,
       so a mirror scanning for streams needs no shard awareness *)
    let names =
      match t.shared with
      | Some sh ->
        Mutex.lock sh.pins_mu;
        let l = Hashtbl.fold (fun s _ acc -> s :: acc) sh.pins [] in
        Mutex.unlock sh.pins_mu;
        l
      | None -> Broker.stream_names t.broker
    in
    Counters.incr t.counters "lists";
    reply_ok c (String.concat "\n" (List.sort compare names))
  end
  else if Char.equal kind k_describe then begin
    let stream, _ = parse_stream_body body in
    let owner = stream_owner t stream in
    if owner != t then route t owner c kind body stream
    else
      match Broker.metadata_for t.broker ~stream c.creds with
      | schema ->
        Counters.incr t.counters "describes";
        (* §17: when tracing is on and the stream's publisher carries a
           context, serve it as a [trace=] metadata line — a mirror
           DESCRIBEs before replicating and joins the same trace, so
           spans line up across relays. Never persisted (the mirror
           strips it before re-advertising). *)
        let meta =
          let kvs = advert_info t stream in
          match
            if t.trace = None then None
            else Hashtbl.find_opt t.stream_trace stream
          with
          | Some ctx -> kvs @ [ ("trace", Trace.to_string ctx) ]
          | None -> kvs
        in
        reply_ok c (meta_text meta ^ schema)
      | exception Broker.Unknown_stream s ->
        reply_err t c (Printf.sprintf "describe: unknown stream %s" s)
      | exception Broker.Access_denied m ->
        reply_err t c (Printf.sprintf "describe: access denied: %s" m)
  end
  else if Char.equal kind k_promote then begin
    let stream, _ = parse_stream_body body in
    let owner = stream_owner t stream in
    if owner != t then route t owner c kind body stream
    else if
      not (List.exists (String.equal stream) (Broker.stream_names t.broker))
    then reply_err t c (Printf.sprintf "promote: unknown stream %s" stream)
    else begin
      let kvs = advert_info t stream in
      let origin = Option.value (advert_origin kvs) ~default:t.relay_id in
      let epoch = advert_epoch kvs in
      if String.equal origin t.relay_id then
        (* already owned here: idempotent, no epoch burn *)
        reply_ok c (Printf.sprintf "epoch=%d" epoch)
      else begin
        let epoch = epoch + 1 in
        persist_advert t stream (with_origin kvs ~origin:t.relay_id ~epoch);
        Counters.incr t.counters "promotes";
        (* any live replication link into this stream predates the
           ownership change: doom it so its epoch check re-runs *)
        Hashtbl.iter
          (fun _ pc ->
            match pc.role with
            | Publisher p when p.mirror && String.equal p.stream stream ->
              Rconn.doom pc.io "stream promoted"
            | _ -> ())
          t.conns;
        Log.info (fun m ->
            m "stream %s promoted: now %s@%d (was %s)" stream t.relay_id epoch
              origin);
        reply_ok c (Printf.sprintf "epoch=%d" epoch)
      end
    end
  end
  else protocol_reject t c (Printf.sprintf "unknown command %C" kind)

(** The stream named by this command lives on another shard. A
    still-roleless connection migrates there (fd, decoder backlog, write
    queue and MAC state travel; the command re-dispatches on the target
    loop, then any buffered frames — per-connection order preserved). A
    connection that already has a role is wedded to its shard's broker,
    so the command is refused instead. *)
and route (src : t) (target : t) (c : conn) kind (body : string)
    (stream : string) =
  match c.role with
  | Publisher _ | Subscriber _ ->
    reply_err src c
      (Printf.sprintf "%s: stream %s is pinned to another shard"
         (match kind with
         | 'a' -> "advertise"
         | 'p' -> "publish"
         | 'q' -> "describe"
         | 'm' -> "promote"
         | _ -> "subscribe")
         stream)
  | Pending ->
    Counters.incr src.counters "shard_handoffs";
    Hashtbl.remove src.conns c.cid;
    (* the write queue travels with the connection: surrender its byte
       accounting to the source governor here (source loop thread) and
       re-debit the target governor on its own loop after adoption *)
    if c.gov_debited > 0 then begin
      Governor.credit src.governor c.gov_debited;
      c.gov_debited <- 0
    end;
    Rconn.detach c.io;
    Reactor.inject target.reactor (fun () ->
        if target.state = Running && Rconn.alive c.io then begin
          c.home <- target;
          Hashtbl.replace target.conns c.cid c;
          c.gov_debited <- Rconn.queued_bytes c.io;
          Governor.debit target.governor c.gov_debited;
          Rconn.adopt target.reactor c.io;
          handle_control target c kind body
        end
        else Rconn.doom c.io "shard draining")

let handle_frame (t : t) (c : conn) (frame : Bytes.t) =
  Counters.incr t.counters "frames_in";
  if Bytes.length frame = 0 then protocol_reject t c "empty frame"
  else
    let kind = Bytes.get frame 0 in
    let is_stream_frame =
      Char.equal kind Endpoint.frame_descriptor
      || Char.equal kind Endpoint.frame_message
    in
    if is_stream_frame then
      match c.role with
      | Publisher p ->
        (* ingress token bucket: this frame is already decoded (charge
           it), and once the bucket is in debt stop reading from the
           connection until it refills — one hot publisher is paced
           before it can run the whole shard into its governor *)
        (match c.bucket with
        | Some b when not c.throttled ->
          let now = Reactor.now () in
          Token_bucket.take b ~now 1.0;
          if not (Token_bucket.ready b ~now) then begin
            c.throttled <- true;
            Counters.incr t.counters "ingress_throttled";
            Rconn.set_read_intent c.io false;
            let d = Float.max 0.001 (Token_bucket.delay b ~now) in
            ignore
              (Reactor.after t.reactor d (fun () ->
                   c.throttled <- false;
                   if Rconn.alive c.io then
                     match c.role with
                     | Publisher p when
                         publisher_read_ok t c
                         && not (stream_congested t p.stream) ->
                       Rconn.set_read_intent c.io true
                     | _ -> ()))
          end
        | Some _ | None -> ());
        let is_message = Char.equal kind Endpoint.frame_message in
        if is_message && p.skip_dup > 0 then begin
          (* a resuming publisher replaying offsets the store already
             holds: swallow — they were fanned out before the outage
             and stored replay serves late joiners *)
          p.skip_dup <- p.skip_dup - 1;
          Counters.incr t.counters "store_dup_skipped"
        end
        else begin
          let admit_t0 = Unix.gettimeofday () in
          (* the message's trace context, if any: stage spans below are
             recorded against it (sampled, or slow enough to force) *)
          let tctx = if is_message then p.ptrace else None in
          let admit_us =
            match tctx with Some _ -> Trace.now_us () | None -> 0
          in
          let send_fanout frame =
            match tctx with
            | None -> Link.send p.link frame
            | Some ctx ->
              let f0 = Trace.now_us () in
              t.cur_trace <- Some ctx;
              Fun.protect
                ~finally:(fun () -> t.cur_trace <- None)
                (fun () -> Link.send p.link frame);
              trace_span t ctx ~stage:"fanout_enqueue" ~stream:p.stream
                ~t0_us:f0
          in
          if is_message then Counters.incr t.counters "events_relayed";
          (match Hashtbl.find_opt t.stores p.stream with
          | Some st when is_message -> (
            let ap0 =
              match tctx with Some _ -> Trace.now_us () | None -> 0
            in
            match Store.append st frame with
            | off ->
              Counters.incr t.counters "store_appends";
              (match tctx with
              | Some ctx ->
                trace_span t ctx ~stage:"store_append" ~stream:p.stream
                  ~t0_us:ap0
              | None -> ());
              if p.acks then schedule_ack_flush t p.stream;
              (* thread the fresh offset through fan-out so subscriber
                 [skip_until] filters can see it without reframing *)
              t.fanout_offset <- off;
              Fun.protect
                ~finally:(fun () -> t.fanout_offset <- -1)
                (fun () -> send_fanout frame)
            | exception Store.Store_error msg ->
              (* refuse loudly: fanning out an unstored frame would let
                 the publisher believe it is durable *)
              Counters.incr t.counters "store_errors";
              protocol_reject t c
                (Printf.sprintf "store %s: append: %s" p.stream msg))
          | Some st ->
            (try ignore (Store.append_descriptor st frame)
             with Store.Store_error msg ->
               Counters.incr t.counters "store_errors";
               Log.err (fun m -> m "store %s: descriptor: %s" p.stream msg));
            send_fanout frame
          | None -> send_fanout frame);
          (* publish -> queue admission latency: the full cost of
             accepting this message (store append + fan-out enqueues) *)
          if is_message then begin
            Counters.observe t.counters "publish_admit_us"
              (int_of_float ((Unix.gettimeofday () -. admit_t0) *. 1e6));
            match tctx with
            | Some ctx ->
              trace_span t ctx ~stage:"publish_admit" ~stream:p.stream
                ~t0_us:admit_us
            | None -> ()
          end
        end
      | Pending -> protocol_reject t c "stream frame before PUBLISH"
      | Subscriber _ ->
        protocol_reject t c "subscriber connections are receive-only"
    else
      match c.role with
      | Publisher _ | Pending ->
        handle_control t c kind
          (Bytes.sub_string frame 1 (Bytes.length frame - 1))
      | Subscriber _ ->
        (* replies would interleave with relayed frames: refuse *)
        protocol_reject t c "subscriber connections are receive-only"

(** Unseal an inbound frame on an authenticated connection. A frame
    that fails authentication is counted and skipped; once the reject
    limit is reached the connection is doomed. [None] = drop frame. *)
let unseal (t : t) (c : conn) (frame : Bytes.t) : Bytes.t option =
  match c.mac with
  | None -> Some frame
  | Some st -> (
    match Macframe.open_next st frame with
    | payload -> Some payload
    | exception Macframe.Auth_error msg ->
      Counters.incr t.counters "frames_rejected";
      c.mac_rejects <- c.mac_rejects + 1;
      Log.warn (fun m ->
          m "conn %d: rejected frame (%d/%d): %s" c.cid c.mac_rejects
            t.mac_reject_limit msg);
      if c.mac_rejects >= t.mac_reject_limit then
        Rconn.doom c.io "authentication failures";
      None)

(** Inflate an inbound frame on a [comp=lz] connection — after
    {!unseal}, mirroring the outbound [seal (compress _)] order. A
    malformed block means the peer lost framing sync entirely (there is
    no per-frame tolerance to build on, unlike MAC rejects): doom. *)
let decompress_in (t : t) (c : conn) (frame : Bytes.t) : Bytes.t option =
  if not c.comp then Some frame
  else
    match Compress.decompress frame with
    | raw -> Some raw
    | exception Compress.Error msg ->
      Counters.incr t.counters "frames_rejected";
      Log.warn (fun m -> m "conn %d: corrupt compressed frame: %s" c.cid msg);
      Rconn.doom c.io "compression error";
      None

(* ------------------------------------------------------------------ *)
(* Reactor callbacks                                                    *)
(* ------------------------------------------------------------------ *)

(** One complete inbound frame. The callbacks consult [c.home] rather
    than a captured shard so a handed-off connection dispatches on its
    adopting shard. *)
let conn_frame (c : conn) (frame : Bytes.t) =
  let t = c.home in
  match Option.bind (unseal t c frame) (decompress_in t c) with
  | None -> ()
  | Some frame -> (
    try handle_frame t c frame with
    | Frame.Frame_error m | Broker.Unknown_stream m ->
      Counters.incr t.counters "frames_rejected";
      Rconn.doom c.io m
    | Link.Closed -> ()
    (* subscriber died mid-fanout; its own doom is already set *))

let conn_closed (c : conn) (reason : string) =
  let t = c.home in
  clear_grace c;
  (* whatever was queued and unwritten dies with the connection *)
  if c.gov_debited > 0 then begin
    Governor.credit t.governor c.gov_debited;
    c.gov_debited <- 0
  end;
  Hashtbl.remove t.conns c.cid;
  (match c.role with
  | Subscriber s ->
    s.unsubscribe ();
    maybe_resume_stream t s.stream
  | Publisher _ | Pending -> ());
  if t.state = Draining then check_drain_done t;
  Log.debug (fun m -> m "conn %d closed (%s)" c.cid reason)

(** The write queue moved: a recovered consumer stops its eviction
    clock and lifts any [Block] pause; during a drain, an emptied queue
    may complete it. *)
let conn_progress (c : conn) =
  let t = c.home in
  if Rconn.queued_droppable c.io < t.max_queue then begin
    clear_grace c;
    if c.congesting then begin
      c.congesting <- false;
      match c.role with
      | Subscriber s -> maybe_resume_stream t s.stream
      | Publisher _ | Pending -> ()
    end
  end;
  (* a draining write queue is what paces chunked stored replay *)
  (match c.role with
  | Subscriber { replay = Some _; _ } -> pump_replay t c
  | Subscriber _ | Publisher _ | Pending -> ());
  (* the traced frame (and everything queued behind it) is fully on the
     wire: close out its end-to-end [deliver] span *)
  (match c.trace_mark with
  | Some tm when Rconn.queued c.io = 0 ->
    trace_mark_span t tm ~stage:"deliver";
    c.trace_mark <- None
  | Some _ | None -> ());
  if t.state = Draining && Rconn.queued c.io = 0 then check_drain_done t

(** Wire an accepted socket into shard [t] (loop-thread only; the
    cluster acceptor reaches this through {!Reactor.inject}). *)
let adopt_fd (t : t) (fd : Unix.file_descr) =
  if t.state <> Running then (
    try Unix.close fd with Unix.Unix_error _ -> ())
  else begin
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    (match t.sndbuf with
    | Some n -> (
      try Unix.setsockopt_int fd Unix.SO_SNDBUF n
      with Unix.Unix_error _ -> ())
    | None -> ());
    let cid = t.next_cid in
    t.next_cid <- cid + t.cid_stride;
    let cell = ref None in
    let the_conn () = Option.get !cell in
    let io =
      Rconn.attach t.reactor fd
        ~on_frame:(fun _ frame -> conn_frame (the_conn ()) frame)
        ~on_close:(fun _ reason -> conn_closed (the_conn ()) reason)
        ~on_progress:(fun _ -> conn_progress (the_conn ()))
        ~on_decode_error:(fun _ msg ->
          (* length-framing corruption is unrecoverable: count the
             malformed-frame disconnect alongside MAC rejects *)
          let c = the_conn () in
          Counters.incr c.home.counters "frames_rejected";
          Log.warn (fun m -> m "conn %d: %s" c.cid msg))
        ~on_bytes:(fun _ dir n ->
          let c = the_conn () in
          match dir with
          | `In -> Counters.incr c.home.counters ~by:n "bytes_in"
          | `Out ->
            Counters.incr c.home.counters ~by:n "bytes_out";
            credit_conn c n;
            (* first write after a traced enqueue: the [flush] span —
               time from fan-out to bytes reaching the socket *)
            (match c.trace_mark with
            | Some tm when not tm.tm_flushed ->
              tm.tm_flushed <- true;
              trace_mark_span c.home tm ~stage:"flush"
            | Some _ | None -> ()))
        ()
    in
    let bucket =
      match t.ingress with
      | Some (rate, burst) ->
        Some (Token_bucket.create ~rate ~burst ~now:(Reactor.now ()))
      | None -> None
    in
    let c =
      { cid; io; creds = []; role = Pending; over_since = None
      ; grace_timer = None; congesting = false; mac = None; mac_rejects = 0
      ; comp = false; gov_debited = 0; throttled = false; bucket
      ; trace_mark = None; home = t }
    in
    cell := Some c;
    Hashtbl.replace t.conns cid c;
    Counters.incr t.counters "connections";
    Log.debug (fun m -> m "conn %d accepted (shard %d)" cid t.shard_id)
  end

(* ------------------------------------------------------------------ *)
(* Construction and the loop                                            *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Replication identity                                                 *)
(* ------------------------------------------------------------------ *)

let gen_relay_id () : string =
  let seed =
    Printf.sprintf "%.9f:%d:relay-id" (Unix.gettimeofday ()) (Unix.getpid ())
  in
  String.sub (Omf_util.Sha256.hex (Omf_util.Sha256.digest seed)) 0 12

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(** A store-backed relay's identity must survive restarts — otherwise
    every stream it owns would look foreign (read-only) to its own
    successor — so an unconfigured id is minted once and kept in
    [<root>/relay-id]. Memory-only relays get a fresh random id. *)
let resolve_relay_id ?relay_id (store : Store.config option) : string =
  match (relay_id, store) with
  | Some id, _ -> id
  | None, None -> gen_relay_id ()
  | None, Some cfg -> (
    let path = Filename.concat cfg.Store.root "relay-id" in
    match
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> String.trim (input_line ic))
    with
    | id when id <> "" -> id
    | _ | (exception _) ->
      let id = gen_relay_id () in
      (try
         mkdir_p cfg.Store.root;
         let oc = open_out path in
         output_string oc (id ^ "\n");
         close_out oc
       with Sys_error _ | Unix.Unix_error _ -> ());
      id)

let create_shard ~host ~port ~relay_id ~policy ~max_queue ~evict_grace
    ~sndbuf ~auth_keys ~mac_reject_limit ~drain_s ~governor ~ingress ~trace
    ~shard_id ~cid_stride ~shared ~store () : t =
  let gov = Governor.create governor in
  let t =
    { host; port; relay_id; policy; max_queue; evict_grace; sndbuf; auth_keys
    ; mac_reject_limit; drain_default_s = drain_s; governor = gov; ingress
    ; trace = Option.map (fun s -> Trace.collector ~shard:shard_id s) trace
    ; stream_trace = Hashtbl.create 8; cur_trace = None
    ; lsock = None; lreg = None
    ; reactor = Reactor.create (); broker = Broker.create ()
    ; conns = Hashtbl.create 64; counters = Counters.create (); shard_id
    ; cid_stride; shared; store_cfg = store; stores = Hashtbl.create 8
    ; adverts = Hashtbl.create 8
    ; fanout_offset = -1
    ; wire_cache_body = Bytes.empty
    ; wire_cache = Frame.wire [ Slice.of_bytes Bytes.empty ]
    ; comp_cache_body = Bytes.empty
    ; comp_cache_blk = Bytes.empty
    ; comp_cache_wire = Frame.wire [ Slice.of_bytes Bytes.empty ]
    ; comp_scratch = Compress.scratch ()
    ; pending_acks = Hashtbl.create 8
    ; ack_flush_scheduled = false; store_timer = None; gauge_timer = None
    ; next_cid = shard_id + 1; state = Running
    ; drain_timer = None; stop_flag = false }
  in
  Governor.on_transition gov (fun prev next ->
      on_governor_transition t prev next);
  Counters.set t.counters "governor_health" 0;
  t

let install_listener (t : t) (lsock : Unix.file_descr) =
  Unix.set_nonblock lsock;
  t.lsock <- Some lsock;
  let rec accept_all () =
    match Unix.accept ~cloexec:true lsock with
    | fd, _ ->
      adopt_fd t fd;
      accept_all ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  t.lreg <-
    Some
      (Reactor.register t.reactor lsock ~on_readable:accept_all
         ~on_writable:ignore)

(** Reopen every stored stream assigned to this shard: recover the log
    (torn-tail truncation happens here), re-advertise the persisted
    schema and replay the stored descriptor frames into the broker's
    cache, so late joiners can decode history without the original
    publisher. Runs before the loop (single-threaded). *)
let recover_streams (t : t) (streams : string list) =
  List.iter
    (fun stream ->
      match store_handle t stream with
      | None -> ()
      | Some st ->
        (match Store.schema st with
        | None -> ()
        | Some schema -> (
          match Broker.advertise t.broker ~stream ~schema with
          | () ->
            (* restore the advertisement metadata — registry binding
               and origin/epoch tag — exactly as last persisted, so a
               mirrored stream stays read-only across the restart and
               registry-bound consumers resolve as before *)
            (match Store.meta st with
            | [] -> ()
            | kvs ->
              Hashtbl.replace t.adverts stream kvs;
              Counters.incr t.counters "advert_meta_recovered");
            (match Broker.publisher_link t.broker ~stream with
            | link ->
              List.iter (fun d -> Link.send link d) (Store.descriptors st)
            | exception Broker.Unknown_stream _ -> ())
          | exception Omf_xschema.Schema.Schema_error msg ->
            Log.err (fun m ->
                m "store %s: recovered schema rejected: %s" stream msg)));
        Counters.incr t.counters "store_streams_recovered";
        Log.info (fun m ->
            m "store: recovered stream %s at offset %d (%d segment%s, \
               durable %d)"
              stream (Store.tail st) (Store.segments st)
              (if Store.segments st = 1 then "" else "s")
              (Store.durable st))
      | exception Store.Store_error msg ->
        Counters.incr t.counters "store_errors";
        Log.err (fun m -> m "store %s: recovery failed: %s" stream msg))
    streams

let create ?(host = "127.0.0.1") ?(port = 0) ?relay_id ?(policy = Block)
    ?(max_queue = 256) ?(evict_grace_s = 1.0) ?sndbuf ?(auth_keys = [])
    ?(mac_reject_limit = 3) ?(drain_s = 2.0)
    ?(governor = Governor.config ~budget:0 ()) ?ingress ?trace ?store () : t =
  let lsock, bound_port = Tcp.listener ~host ~port () in
  let relay_id = resolve_relay_id ?relay_id store in
  let t =
    create_shard ~host ~port:bound_port ~relay_id ~policy ~max_queue
      ~evict_grace:evict_grace_s ~sndbuf ~auth_keys ~mac_reject_limit
      ~drain_s ~governor ~ingress ~trace ~shard_id:0 ~cid_stride:1
      ~shared:None ~store ()
  in
  install_listener t lsock;
  (match store with
  | Some cfg -> recover_streams t (Store.streams cfg)
  | None -> ());
  t

(** Snapshot of the relay's recorded trace spans, oldest first (empty
    when tracing is disabled). Safe from any thread. *)
let trace_spans (t : t) : Trace.span list =
  match t.trace with None -> [] | Some col -> Trace.spans col

(** Run the loop until {!request_shutdown} (then drain) completes. *)
let run (t : t) : unit =
  (match t.lsock with
  | Some _ ->
    Log.info (fun m ->
        m "listening on %s:%d (policy %s, max queue %d%s)" t.host t.port
          (policy_to_string t.policy) t.max_queue
          (match t.store_cfg with
          | Some cfg ->
            Printf.sprintf ", store %s fsync %s" cfg.Store.root
              (Store.fsync_policy_to_string cfg.Store.fsync)
          | None -> ""))
  | None -> Log.debug (fun m -> m "shard %d loop running" t.shard_id));
  (match t.store_cfg with
  | Some cfg ->
    let period =
      match cfg.Store.fsync with Store.Interval s -> s | _ -> 0.1
    in
    store_tick t period
  | None -> ());
  gauge_tick t;
  Reactor.set_on_tick t.reactor (fun () ->
      if t.stop_flag && t.state = Running then begin_drain t);
  Reactor.run t.reactor;
  Reactor.dispose t.reactor

(* ------------------------------------------------------------------ *)
(* Sharded cluster                                                      *)
(* ------------------------------------------------------------------ *)

(** N relay shards — one reactor loop per domain — behind a single
    blocking acceptor thread that deals accepted sockets out
    round-robin. The first ADVERTISE/PUBLISH/SUBSCRIBE naming a stream
    pins it to the shard that received it; a connection landing on the
    wrong shard migrates there before taking a role, so every frame of
    a stream flows through exactly one loop and per-stream order is
    what a standalone relay gives. *)
module Cluster = struct
  type relay = t

  type t = {
    lsock : Unix.file_descr;
    cport : int;
    shards : relay array;
    mutable acceptor : Thread.t option;
    mutable domains : unit Domain.t array;
    mutable stopped : bool;
    mutable joined : bool;
  }

  let start ?(host = "127.0.0.1") ?(port = 0) ?relay_id ?(shards = 1)
      ?(policy = Block) ?(max_queue = 256) ?(evict_grace_s = 1.0) ?sndbuf
      ?(auth_keys = []) ?(mac_reject_limit = 3) ?(drain_s = 2.0)
      ?(governor = Governor.config ~budget:0 ()) ?ingress ?trace ?store () :
      t =
    if shards < 1 then invalid_arg "Cluster.start: shards must be >= 1";
    let lsock, bound_port = Tcp.listener ~host ~port () in
    let relay_id = resolve_relay_id ?relay_id store in
    let shared =
      { pins_mu = Mutex.create (); pins = Hashtbl.create 32; peers = [||] }
    in
    let arr =
      Array.init shards (fun i ->
          create_shard ~host ~port:bound_port ~relay_id ~policy ~max_queue
            ~evict_grace:evict_grace_s ~sndbuf ~auth_keys ~mac_reject_limit
            ~drain_s ~governor ~ingress ~trace ~shard_id:i ~cid_stride:shards
            ~shared:(Some shared) ~store ())
    in
    shared.peers <- arr;
    let cl =
      { lsock; cport = bound_port; shards = arr; acceptor = None
      ; domains = [||]; stopped = false; joined = false }
    in
    (* Recover stored streams before any loop runs: pin each stream to
       a shard by name hash (a restart reproduces the same pinning, and
       per-shard store handles stay single-threaded), then let that
       shard reopen its logs. *)
    (match store with
    | Some cfg ->
      let per_shard = Array.make shards [] in
      List.iter
        (fun stream ->
          let sid = Hashtbl.hash stream mod shards in
          Hashtbl.replace shared.pins stream sid;
          per_shard.(sid) <- stream :: per_shard.(sid))
        (Store.streams cfg);
      Array.iteri (fun i streams -> recover_streams arr.(i) streams) per_shard
    | None -> ());
    cl.domains <- Array.map (fun s -> Domain.spawn (fun () -> run s)) arr;
    let acceptor () =
      let next = ref 0 in
      let continue = ref true in
      (* Governor-aware dealing (doc/OVERLOAD.md): scan the round-robin
         order but skip shards currently Overloaded, so a drowning loop
         is not handed fresh connections while its healthy siblings
         have room. The health read crosses threads unlocked — it is a
         monotone-ish hint, and a stale read only costs one connection
         landing on a shard that was recovering anyway. When every
         shard is overloaded the plain round-robin pick stands (the
         governor's admission control sheds work from there). *)
      let pick () =
        let first = !next mod shards in
        incr next;
        let rec scan k =
          if k = shards then arr.(first)
          else
            let cand = arr.((first + k) mod shards) in
            if Governor.health cand.governor <> Governor.Overloaded then begin
              if k > 0 then
                Counters.incr cand.counters ~by:k "accept_deferred";
              cand
            end
            else scan (k + 1)
        in
        scan 0
      in
      while !continue do
        match Unix.accept ~cloexec:true lsock with
        | fd, _ ->
          let shard = pick () in
          Reactor.inject shard.reactor (fun () -> adopt_fd shard fd)
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | exception Unix.Unix_error _ ->
          (* listener shut down (or died): stop dealing *)
          continue := false
      done
    in
    cl.acceptor <- Some (Thread.create acceptor ());
    Log.info (fun m ->
        m "cluster listening on %s:%d (%d shard%s, policy %s)" host
          bound_port shards
          (if shards = 1 then "" else "s")
          (policy_to_string policy));
    cl

  let port (cl : t) = cl.cport
  let shard_count (cl : t) = Array.length cl.shards
  let relay_id (cl : t) = cl.shards.(0).relay_id

  (** Cluster-wide counter totals (per-shard counters summed). Broker
      gauges are per-shard state and are only reported over the wire
      (STATS is answered by the shard that owns the connection). *)
  let stats (cl : t) : (string * int) list =
    Counters.merged
      (Array.to_list (Array.map (fun s -> s.counters) cl.shards))

  (** Every shard's recorded trace spans, merged and time-ordered. *)
  let trace_spans (cl : t) : Trace.span list =
    Array.to_list cl.shards
    |> List.concat_map (fun (s : relay) ->
           match s.trace with None -> [] | Some col -> Trace.spans col)
    |> List.sort (fun a b ->
           compare a.Trace.sp_start_us b.Trace.sp_start_us)

  (** Signal-handler safe: unblock the acceptor and ask every shard to
      drain. *)
  let request_shutdown (cl : t) =
    cl.stopped <- true;
    (try Unix.shutdown cl.lsock Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    Array.iter request_shutdown cl.shards

  (** Join the acceptor and every shard domain (call after
      {!request_shutdown}). *)
  let wait (cl : t) =
    if not cl.joined then begin
      cl.joined <- true;
      Option.iter Thread.join cl.acceptor;
      Array.iter Domain.join cl.domains;
      try Unix.close cl.lsock with Unix.Unix_error _ -> ()
    end

  let stop (cl : t) =
    request_shutdown cl;
    wait cl
end

(* ------------------------------------------------------------------ *)
(* Hosted convenience                                                   *)
(* ------------------------------------------------------------------ *)

type handle = { relay : t; thread : Thread.t }

(** [start ()] runs a relay loop in a background thread (ephemeral port
    by default) — the embedding used by tests and benchmarks. *)
let start ?host ?port ?relay_id ?policy ?max_queue ?evict_grace_s ?sndbuf
    ?auth_keys ?mac_reject_limit ?drain_s ?governor ?ingress ?trace ?store
    () : handle =
  let relay =
    create ?host ?port ?relay_id ?policy ?max_queue ?evict_grace_s ?sndbuf
      ?auth_keys ?mac_reject_limit ?drain_s ?governor ?ingress ?trace ?store
      ()
  in
  { relay; thread = Thread.create run relay }

let relay (h : handle) : t = h.relay

(** [stop h] requests a graceful drain and waits for the loop to end. *)
let stop (h : handle) : unit =
  request_shutdown h.relay;
  Thread.join h.thread
(* ------------------------------------------------------------------ *)
(* Client                                                               *)
(* ------------------------------------------------------------------ *)

(** Blocking client for the relay protocol. One connection carries one
    role: after {!Client.publish} the link is an
    {!Omf_transport.Endpoint.Sender} channel, after {!Client.subscribe}
    it is receive-only. *)
module Client = struct
  exception Error of string

  exception Busy of { retry_ms : int }
  (** The relay shed the command under overload (PROTOCOLS.md §16).
      Retryable: wait about [retry_ms] and re-issue the same command on
      the {e same} connection — the relay kept it open on purpose. *)

  type comp_totals = { mutable raw_bytes : int; mutable wire_bytes : int }
  (** Bytes through the compression wrapper, both directions: frame
      bodies before compression vs blocks on the wire. *)

  type t = { link : Link.t; comp : comp_totals option }

  (* The client-side twin of the relay's negotiated frame mode: blocks
     out, inflated frames in. Stacked OUTSIDE {!Macframe.wrap} so the
     wire order matches the relay — seal (compress body). *)
  let compress_wrap (totals : comp_totals) (link : Link.t) : Link.t =
    (* owned by the sending side of this connection only; recv never
       compresses, so one scratch is race-free even when send and recv
       run on different threads *)
    let ws = Compress.scratch () in
    { Link.send =
        (fun msg ->
          let blk = Compress.compress ~scratch:ws msg in
          totals.raw_bytes <- totals.raw_bytes + Bytes.length msg;
          totals.wire_bytes <- totals.wire_bytes + Bytes.length blk;
          Link.send link blk)
    ; recv =
        (fun () ->
          match Link.recv link with
          | None -> None
          | Some blk -> (
            match Compress.decompress blk with
            | raw ->
              totals.raw_bytes <- totals.raw_bytes + Bytes.length raw;
              totals.wire_bytes <- totals.wire_bytes + Bytes.length blk;
              Some raw
            | exception Compress.Error msg ->
              raise (Error ("compression: " ^ msg))))
    ; close = (fun () -> Link.close link)
    }

  let ctrl kind (body : string) : Bytes.t =
    let b = Bytes.create (1 + String.length body) in
    Bytes.set b 0 kind;
    Bytes.blit_string body 0 b 1 (String.length body);
    b

  (* every transport-level failure surfaces as Client.Error with a
     readable message; raw Unix_error / Tcp_error never escape *)
  let reraise (context : string) = function
    | Error m -> raise (Error m)
    | Link.Closed -> raise (Error (context ^ ": connection closed"))
    | Link.Timeout -> raise (Error (context ^ ": timeout"))
    | Tcp.Tcp_error m | Frame.Frame_error m ->
      raise (Error (context ^ ": " ^ m))
    | Macframe.Auth_error m ->
      raise (Error (context ^ ": authentication: " ^ m))
    | End_of_file -> raise (Error (context ^ ": connection closed"))
    | Unix.Unix_error (e, fn, _) ->
      raise (Error (Printf.sprintf "%s: %s: %s" context fn (Unix.error_message e)))
    | e -> raise e

  let rpc (t : t) kind body : string =
    match
      Link.send t.link (ctrl kind body);
      Link.recv t.link
    with
    | None -> raise (Error "relay closed the connection")
    | Some r when Bytes.length r >= 1 && Char.equal (Bytes.get r 0) k_ok ->
      Bytes.sub_string r 1 (Bytes.length r - 1)
    | Some r when Bytes.length r >= 1 && Char.equal (Bytes.get r 0) k_err ->
      raise (Error (Bytes.sub_string r 1 (Bytes.length r - 1)))
    | Some r when Bytes.length r >= 1 && Char.equal (Bytes.get r 0) k_busy ->
      let kvs = parse_creds (Bytes.sub_string r 1 (Bytes.length r - 1)) in
      let retry_ms =
        match
          Option.bind (List.assoc_opt "retry_ms" kvs) int_of_string_opt
        with
        | Some n when n > 0 -> n
        | _ -> 250
      in
      raise (Busy { retry_ms })
    | Some _ -> raise (Error "malformed reply")
    | exception e -> reraise "relay rpc" e

  let creds_text creds =
    String.concat "\n" (List.map (fun (k, v) -> k ^ "=" ^ v) creds)

  (** [connect ~port ()] dials and HELLOs. With [?auth:(key_id, key)]
      the HELLO requests HMAC frame mode; the handshake itself is
      plaintext and every later frame is sealed. With [~compress:true]
      the HELLO offers [comp=lz] (PROTOCOLS.md §18); if the relay
      echoes it in the banner every later frame in both directions is
      an LZ block — an old relay simply doesn't echo, and the
      connection proceeds uncompressed (check {!compressed}). Failures
      — unreachable port, handshake timeout, an ['e'] reply — raise
      {!Error} with the reason, and the socket is closed on every error
      path. *)
  let connect ?(host = "127.0.0.1") ~port ?(creds = []) ?auth
      ?(compress = false) ?connect_timeout_s ?io_timeout_s () : t =
    let link =
      try Tcp.connect ~host ~port ?connect_timeout_s ?io_timeout_s ()
      with e -> reraise (Printf.sprintf "relay connect %s:%d" host port) e
    in
    try
      let hello_creds =
        (if compress then [ ("comp", "lz") ] else [])
        @
        match auth with
        | None -> creds
        | Some (key_id, _) ->
          creds @ [ ("auth", "hmac"); ("key-id", key_id) ]
      in
      let banner =
        rpc { link; comp = None } k_hello (creds_text hello_creds)
      in
      let granted = String.split_on_char ' ' banner in
      (* the relay must have granted the auth mode we asked for *)
      if auth <> None && not (List.mem "mac" granted) then
        raise (Error "relay did not negotiate authenticated framing");
      let link =
        match auth with
        | None -> link
        | Some (_, key) -> Macframe.wrap (Macframe.state ~key) link
      in
      if compress && List.mem "comp=lz" granted then begin
        let totals = { raw_bytes = 0; wire_bytes = 0 } in
        { link = compress_wrap totals link; comp = Some totals }
      end
      else { link; comp = None }
    with e ->
      (* no fd leak on handshake failure *)
      (try Link.close link with _ -> ());
      reraise "relay handshake" e

  let compressed (t : t) : bool = t.comp <> None

  (** Raw/wire byte totals through the negotiated compression wrapper
      (both directions); [None] when the connection is uncompressed. *)
  let comp_totals (t : t) : (int * int) option =
    match t.comp with
    | None -> None
    | Some c -> Some (c.raw_bytes, c.wire_bytes)

  let advertise (t : t) ~(stream : string) ~(schema : string) : unit =
    ignore (rpc t k_advertise (stream ^ "\n" ^ schema))

  (** [advertise_meta t ~stream ~schema ()] is {!advertise} with the
      stream's schema-registry binding (PROTOCOLS.md §14) attached as
      advertisement metadata lines; subscribers asking with [meta=1]
      (see {!subscribe_meta}) get them back and can bind conversion
      plans by content fingerprint instead of re-parsing schema
      text. *)
  let advertise_meta (t : t) ?subject ?version ?fingerprint
      ~(stream : string) ~(schema : string) () : unit =
    let meta =
      (match subject with Some s -> [ ("subject", s) ] | None -> [])
      @ (match version with
        | Some v -> [ ("version", string_of_int v) ]
        | None -> [])
      @ (match fingerprint with Some f -> [ ("fingerprint", f) ] | None -> [])
    in
    ignore (rpc t k_advertise (stream ^ "\n" ^ meta_text meta ^ schema))

  let stats (t : t) : (string * int) list =
    Counters.of_text (rpc t k_stats "")

  (* PROTOCOLS.md §17: an optional trace context rides PUBLISH as one
     more [k=v] option line *)
  let trace_opt = function
    | None -> ""
    | Some ctx -> "\ntrace=" ^ Trace.to_string ctx

  (** [publish t ~stream] switches the connection into publisher mode
      and returns the raw link: drive it with
      {!Omf_transport.Endpoint.Sender}. [?trace] attaches a trace
      context to the stream (PROTOCOLS.md §17): a tracing-enabled relay
      adopts it instead of head-sampling its own. *)
  let publish ?trace (t : t) ~(stream : string) : Link.t =
    ignore (rpc t k_publish (stream ^ trace_opt trace));
    t.link

  (** [subscribe t ~stream] returns the (credential-scoped) stream
      schema and the raw link now carrying descriptor/message frames. *)
  let subscribe (t : t) ~(stream : string) : string * Link.t =
    let schema = rpc t k_subscribe stream in
    (schema, t.link)

  (** [subscribe_meta t ~stream] is {!subscribe} plus the stream's
      advertised registry-binding metadata — [("subject", _)],
      [("version", _)], [("fingerprint", _)] — when the advertiser
      supplied any (empty list otherwise). *)
  let subscribe_meta (t : t) ~(stream : string) :
      (string * string) list * string * Link.t =
    let body = rpc t k_subscribe (stream ^ "\nmeta=1") in
    let meta, schema = split_advert_meta body in
    (meta, schema, t.link)

  (** [publish_acked t ~stream] enters publisher mode requesting
      durability acks (PROTOCOLS.md §13). Against a store-backed relay
      the reply carries the stream's durable watermark — returned as
      [Some durable]; the relay then sends a ['k' durable] frame on
      this link whenever the watermark advances. [None] means the relay
      is memory-only and will never ack. *)
  let publish_acked ?trace (t : t) ~(stream : string) : int option * Link.t =
    let body = rpc t k_publish (stream ^ "\nacks=1" ^ trace_opt trace) in
    let durable =
      if String.length body >= 8 && String.sub body 0 8 = "durable=" then
        int_of_string_opt (String.sub body 8 (String.length body - 8))
      else None
    in
    (durable, t.link)

  (** [subscribe_from t ~stream ~from] subscribes with stored replay
      (PROTOCOLS.md §13): delivery starts at offset [from] (clamped up
      past retention), or at the live tail when [from] is negative.
      Returns [(Some start, schema, link)] where [start] is the offset
      of the first message frame the link will carry; [(None, …)] when
      the relay is memory-only and offsets are not tracked. *)
  let subscribe_from (t : t) ~(stream : string) ~(from : int) :
      int option * string * Link.t =
    let body = rpc t k_subscribe (Printf.sprintf "%s\nfrom=%d" stream from) in
    match String.index_opt body '\n' with
    | Some i when String.length body >= 7 && String.sub body 0 7 = "offset=" ->
      let off = int_of_string_opt (String.sub body 7 (i - 7)) in
      let schema = String.sub body (i + 1) (String.length body - i - 1) in
      (off, schema, t.link)
    | _ -> (None, body, t.link)

  (** [list_streams t] names every stream the relay (all shards of a
      cluster) currently hosts, sorted. *)
  let list_streams (t : t) : string list =
    rpc t k_list "" |> String.split_on_char '\n'
    |> List.filter (fun s -> s <> "")

  (** [describe t ~stream] returns the stream's advertisement metadata
      — always including its [origin]/[epoch] replication tag
      (PROTOCOLS.md §15) — and its (credential-scoped) schema, without
      changing the connection's role. *)
  let describe (t : t) ~(stream : string) : (string * string) list * string =
    split_advert_meta (rpc t k_describe stream)

  (** [advertise_with_meta t ~stream ~meta ~schema] is {!advertise}
      with an explicit metadata list — the mirror re-advertises a
      replicated stream with the source's metadata verbatim (registry
      binding plus [origin]/[epoch]). *)
  let advertise_with_meta (t : t) ~(stream : string)
      ~(meta : (string * string) list) ~(schema : string) : unit =
    ignore (rpc t k_advertise (stream ^ "\n" ^ meta_text meta ^ schema))

  (** [promote t ~stream] transfers write ownership of a mirrored
      stream to the relay (PROTOCOLS.md §15): its origin becomes the
      relay's id with a bumped epoch, returned here. Idempotent on
      streams the relay already owns. *)
  let promote (t : t) ~(stream : string) : int =
    let body = rpc t k_promote stream in
    match
      if String.length body >= 6 && String.sub body 0 6 = "epoch=" then
        int_of_string_opt (String.sub body 6 (String.length body - 6))
      else None
    with
    | Some e -> e
    | None ->
      raise (Error (Printf.sprintf "promote %s: malformed reply %S" stream body))

  (** [publish_mirror t ~stream ~origin ~epoch] enters publisher mode
      as a replication link (PROTOCOLS.md §15): accepted only while
      [(origin, epoch)] matches the relay's record for the stream.
      [Some (durable, tail)] against a store-backed relay — the mirror
      resumes pumping source offsets from [tail]; [None] against a
      memory-only relay (live-only replication). *)
  let publish_mirror ?trace (t : t) ~(stream : string) ~(origin : string)
      ~(epoch : int) : (int * int) option * Link.t =
    let body =
      rpc t k_publish
        (Printf.sprintf "%s\nmirror=1\norigin=%s\nepoch=%d%s" stream origin
           epoch (trace_opt trace))
    in
    let kvs = parse_creds body in
    let watermarks =
      match
        ( Option.bind (List.assoc_opt "durable" kvs) int_of_string_opt,
          Option.bind (List.assoc_opt "tail" kvs) int_of_string_opt )
      with
      | Some d, Some tl -> Some (d, tl)
      | _ -> None
    in
    (watermarks, t.link)

  let close (t : t) = try Link.close t.link with _ -> ()
end

(* ------------------------------------------------------------------ *)
(* A fully wired remote consumer (mirror of Broker.attach_consumer)     *)
(* ------------------------------------------------------------------ *)

module Catalog = Omf_xml2wire.Catalog

type consumer = {
  client : Client.t;
  catalog : Catalog.t;
  endpoint : Endpoint.Receiver.t;
  schema : string;  (** the scoped schema the relay served *)
}

(** [attach_consumer ~port ~stream abi] connects, subscribes, registers
    the served (scoped) schema in a fresh catalog for [abi] and wraps
    the link in an endpoint receiver. *)
let attach_consumer ?host ~port ?creds ?auth ?compress ~(stream : string)
    (abi : Omf_machine.Abi.t) : consumer =
  let client = Client.connect ?host ~port ?creds ?auth ?compress () in
  let schema, link =
    try Client.subscribe client ~stream
    with e ->
      Client.close client;
      raise e
  in
  let catalog = Catalog.create abi in
  ignore
    (Omf_xml2wire.Xml2wire.register_schema ~source:("relay:" ^ stream) catalog
       schema);
  let endpoint =
    Endpoint.Receiver.create link
      (Catalog.registry catalog)
      (Omf_machine.Memory.create abi)
  in
  { client; catalog; endpoint; schema }

(** Blocking receive of the next decoded event ([None] = relay closed
    the stream). *)
let recv (c : consumer) : (Omf_pbio.Format.t * Omf_pbio.Value.t) option =
  Endpoint.Receiver.recv_value c.endpoint

let close_consumer (c : consumer) : unit = Client.close c.client

(* ------------------------------------------------------------------ *)
(* Fault-tolerant sessions                                              *)
(* ------------------------------------------------------------------ *)

module Pbio = Omf_pbio.Pbio
module Format = Omf_pbio.Format
module Value = Omf_pbio.Value
module Prng = Omf_util.Prng
module Sha256 = Omf_util.Sha256

(** Fault-tolerant relay sessions: {!Client} plus automatic
    reconnect/replay, mirroring the metadata layer's fallback-chain
    philosophy at the transport layer — a dropped TCP connection
    degrades to a retry loop instead of killing the consumer.

    A {e subscriber session} detects a broken link (close, reset, MAC
    failure, deadline), reconnects under a retry budget with
    exponential backoff + jitter, replays its HELLO/SUBSCRIBE state,
    and relies on the relay's cached descriptor replay to stay
    decodable; descriptor frames already learned are deduplicated by
    content digest, so a relayd restart cannot corrupt or re-register
    formats.

    A {e publisher session} replays HELLO/ADVERTISE/PUBLISH on
    reconnect, re-announces format descriptors on the fresh connection
    (the relay restarts empty), and buffers data frames that could not
    be written — up to a bounded in-flight window; past the window,
    {!Overflow} is raised rather than silently dropping or blocking
    forever. *)
module Session = struct
  exception Gave_up of string
  (** The reconnect budget for one outage was exhausted. *)

  exception Overflow of string
  (** The publisher's bounded in-flight window is full while the relay
      is unreachable. *)

  type config = {
    host : string;
    port : int;
    creds : (string * string) list;
    auth : (string * string) option;  (** [(key-id, secret)] *)
    compress : bool;
        (** offer [comp=lz] on every (re)connect; negotiated down
            against a relay that doesn't speak it *)
    max_attempts : int;  (** reconnect attempts per outage *)
    base_delay_s : float;  (** first backoff step *)
    max_delay_s : float;  (** backoff cap *)
    connect_timeout_s : float option;
    io_timeout_s : float option;
    jitter_seed : int64;  (** deterministic jitter (tests) *)
  }

  let config ?(host = "127.0.0.1") ?(creds = []) ?auth ?(compress = false)
      ?(max_attempts = 10) ?(base_delay_s = 0.05) ?(max_delay_s = 2.0)
      ?(connect_timeout_s = 5.0) ?io_timeout_s ?(jitter_seed = 1L) ~port () :
      config =
    { host; port; creds; auth; compress; max_attempts; base_delay_s
    ; max_delay_s; connect_timeout_s = Some connect_timeout_s; io_timeout_s
    ; jitter_seed }

  (* attempt k (0-based) sleeps min(cap, base * 2^k) scaled into
     [0.5, 1.0) — full-jitter halves thundering-herd resubscription
     after a relayd restart while keeping tests deterministic via the
     seeded PRNG *)
  let backoff_delay (cfg : config) rng attempt =
    let d = cfg.base_delay_s *. (2.0 ** float_of_int attempt) in
    Float.min cfg.max_delay_s d *. (0.5 +. (0.5 *. Prng.float rng))

  let connect_client ?(reconnect = false) (cfg : config) : Client.t =
    let creds =
      if reconnect then cfg.creds @ [ ("omf-reconnect", "1") ] else cfg.creds
    in
    Client.connect ~host:cfg.host ~port:cfg.port ~creds ?auth:cfg.auth
      ~compress:cfg.compress ?connect_timeout_s:cfg.connect_timeout_s
      ?io_timeout_s:cfg.io_timeout_s ()

  let transient = function
    | Client.Error _ | Link.Closed | Link.Timeout | End_of_file
    | Tcp.Tcp_error _ | Frame.Frame_error _ | Macframe.Auth_error _
    | Unix.Unix_error _ ->
      true
    | _ -> false

  (** Reconnect and replay session state: dial a fresh connection and
      run [f] (which re-issues SUBSCRIBE or ADVERTISE/PUBLISH) against
      it, retrying transient failures under the budget. *)
  let with_retries (cfg : config) rng ~(what : string) (f : Client.t -> 'a) :
      'a =
    let rec go attempt =
      if attempt >= cfg.max_attempts then
        raise
          (Gave_up
             (Printf.sprintf "%s: gave up after %d reconnect attempts" what
                cfg.max_attempts));
      Thread.delay (backoff_delay cfg rng attempt);
      match
        let client = connect_client ~reconnect:true cfg in
        match f client with
        | v -> Ok v
        | exception e ->
          Client.close client;
          Error e
      with
      | Ok v -> v
      | Error e | exception e ->
        if transient e then begin
          Log.debug (fun m ->
              m "%s: reconnect attempt %d failed: %s" what (attempt + 1)
                (Printexc.to_string e));
          go (attempt + 1)
        end
        else raise e
    in
    go 0

  (** A [busy] reply is not an outage: the relay is alive and asked us
      to slow down (PROTOCOLS.md §16). Sleep the suggested [retry_ms]
      (full jitter, like {!backoff_delay}) and retry [f] on the {e
      same} connection — reconnecting would only add handshake load to
      an overloaded relay. [on_busy] is called once per wait (session
      counters). The attempt budget is [max_attempts], after which
      {!Gave_up} is raised. *)
  let with_busy_backoff (cfg : config) rng ~(what : string)
      ?(on_busy = fun () -> ()) (f : unit -> 'a) : 'a =
    let rec go attempt =
      match f () with
      | v -> v
      | exception Client.Busy { retry_ms } ->
        if attempt + 1 >= Stdlib.max 1 cfg.max_attempts then
          raise
            (Gave_up
               (Printf.sprintf
                  "%s: relay still overloaded after %d busy retries" what
                  (attempt + 1)));
        on_busy ();
        let d =
          float_of_int retry_ms /. 1000. *. (0.5 +. (0.5 *. Prng.float rng))
        in
        Log.debug (fun m ->
            m "%s: relay busy, retrying in %.0f ms (attempt %d)" what
              (d *. 1000.) (attempt + 1));
        Thread.delay d;
        go (attempt + 1)
    in
    go 0

  (* ---------------------------------------------------------------- *)
  (* Subscriber sessions                                                *)
  (* ---------------------------------------------------------------- *)

  type subscriber = {
    s_cfg : config;
    s_stream : string;
    s_catalog : Catalog.t;
    s_pbio : Pbio.Receiver.t;
    s_seen : (string, unit) Hashtbl.t;
        (** digests of descriptor blobs already learned — replayed
            descriptors after a reconnect are skipped, not re-registered *)
    s_rng : Prng.t;
    mutable s_client : Client.t option;
    mutable s_link : Link.t option;
    mutable s_schema : string;
    mutable s_next : int;
        (** store offset of the next expected message frame; [-1] when
            the relay does not track offsets (memory-only) *)
    mutable s_reconnects : int;
    mutable s_busy_waits : int;
        (** [busy]-triggered backoff sleeps — overload slowdowns, not
            outages; reconnect counters stay untouched *)
    mutable s_trace : Trace.ctx option;
        (** the stream's trace context as served by DESCRIBE at
            subscribe time ([want_trace] only) *)
    mutable s_closed : bool;
  }

  (** [subscribe cfg ~stream abi] connects and subscribes; failures on
      this {e first} attempt raise immediately (an unknown stream at
      session start is a configuration error, not an outage).

      [from] is the store offset to start at against a store-backed
      relay: [-1] (the default) for the live tail, [0] for the oldest
      retained event. The session then counts delivered message frames
      and resubscribes with [from = next-expected-offset], so a relay
      restart replays exactly the missed suffix — no loss, and the
      relay's [skip_until] filter guarantees no duplicates. Against a
      memory-only relay [from] is ignored and resubscribes are
      tail-only, as before. *)
  let subscribe ?(from = -1) ?(want_trace = false) (cfg : config)
      ~(stream : string) (abi : Omf_machine.Abi.t) : subscriber =
    let busy_waits = ref 0 in
    let client = connect_client cfg in
    match
      (* [want_trace]: learn the stream's trace context (PROTOCOLS.md
         §17) with a DESCRIBE on the still-roleless connection, before
         SUBSCRIBE pins it receive-only. Best-effort — a relay without
         tracing simply serves no [trace=] line. *)
      let trace =
        if not want_trace then None
        else
          match Client.describe client ~stream with
          | meta, _ -> Option.bind (List.assoc_opt "trace" meta) Trace.of_string
          | exception _ -> None
      in
      ( trace,
        with_busy_backoff cfg
          (Prng.create ~seed:cfg.jitter_seed ())
          ~what:(Printf.sprintf "subscriber %s" stream)
          ~on_busy:(fun () -> incr busy_waits)
          (fun () -> Client.subscribe_from client ~stream ~from) )
    with
    | trace, (offset, schema, link) ->
      let catalog = Catalog.create abi in
      ignore
        (Omf_xml2wire.Xml2wire.register_schema ~source:("relay:" ^ stream)
           catalog schema);
      let pbio =
        Pbio.Receiver.create
          (Catalog.registry catalog)
          (Omf_machine.Memory.create abi)
      in
      { s_cfg = cfg; s_stream = stream; s_catalog = catalog; s_pbio = pbio
      ; s_seen = Hashtbl.create 8
      ; s_rng = Prng.create ~seed:cfg.jitter_seed ()
      ; s_client = Some client; s_link = Some link; s_schema = schema
      ; s_next = Option.value offset ~default:(-1)
      ; s_reconnects = 0; s_busy_waits = !busy_waits; s_trace = trace
      ; s_closed = false }
    | exception e ->
      Client.close client;
      raise e

  let drop_subscriber_link (s : subscriber) =
    (match s.s_client with Some c -> Client.close c | None -> ());
    s.s_client <- None;
    s.s_link <- None

  let resubscribe (s : subscriber) : unit =
    with_retries s.s_cfg s.s_rng
      ~what:(Printf.sprintf "subscriber %s" s.s_stream)
      (fun client ->
        let offset, schema, link =
          (* an overloaded relay refuses the [from=] replay with [busy]:
             hold this connection and wait it out instead of burning
             reconnect attempts *)
          with_busy_backoff s.s_cfg s.s_rng
            ~what:(Printf.sprintf "subscriber %s" s.s_stream)
            ~on_busy:(fun () -> s.s_busy_waits <- s.s_busy_waits + 1)
            (fun () ->
              Client.subscribe_from client ~stream:s.s_stream ~from:s.s_next)
        in
        s.s_client <- Some client;
        s.s_link <- Some link;
        s.s_schema <- schema;
        (* a clamped offset (> the request) means retention outran this
           subscriber during the outage: the gap is unrecoverable and
           delivery resumes at the oldest retained event *)
        s.s_next <- Option.value offset ~default:(-1);
        s.s_reconnects <- s.s_reconnects + 1;
        Log.info (fun m ->
            m "subscriber %s: resubscribed from offset %d (reconnect %d)"
              s.s_stream s.s_next s.s_reconnects))

  (** Blocking receive of the next decoded event, reconnecting across
      outages. [None] only after {!close_subscriber}; a hopeless outage
      raises {!Gave_up}. *)
  let rec recv_subscriber (s : subscriber) :
      (Format.t * Value.t) option =
    if s.s_closed then None
    else
      match s.s_link with
      | None ->
        resubscribe s;
        recv_subscriber s
      | Some link -> (
        match Link.recv link with
        | Some frame
          when Bytes.length frame > 0
               && Char.equal (Bytes.get frame 0) Endpoint.frame_descriptor ->
          let blob = Bytes.sub_string frame 1 (Bytes.length frame - 1) in
          let digest = Sha256.digest blob in
          if not (Hashtbl.mem s.s_seen digest) then begin
            Hashtbl.replace s.s_seen digest ();
            ignore (Pbio.Receiver.learn s.s_pbio blob)
          end;
          recv_subscriber s
        | Some frame
          when Bytes.length frame > 0
               && Char.equal (Bytes.get frame 0) Endpoint.frame_message ->
          if s.s_next >= 0 then s.s_next <- s.s_next + 1;
          Some
            (Pbio.Receiver.receive_value s.s_pbio
               (Bytes.sub frame 1 (Bytes.length frame - 1)))
        | Some _ | None ->
          (* graceful close or garbage: either way, this link is done *)
          if s.s_closed then None
          else begin
            drop_subscriber_link s;
            recv_subscriber s
          end
        | exception e ->
          if s.s_closed then None
          else if transient e then begin
            drop_subscriber_link s;
            recv_subscriber s
          end
          else raise e)

  let subscriber_schema (s : subscriber) = s.s_schema

  let subscriber_offset (s : subscriber) = s.s_next
  (** Store offset of the next message frame this session expects
      ([-1] against a memory-only relay). *)

  let subscriber_reconnects (s : subscriber) = s.s_reconnects

  let subscriber_busy_waits (s : subscriber) = s.s_busy_waits
  (** Overload backoffs served ([busy] replies waited out on a live
      connection) — distinct from {!subscriber_reconnects}. *)

  let subscriber_trace (s : subscriber) = s.s_trace
  (** The stream's trace context (PROTOCOLS.md §17) as learned at
      subscribe time; [None] unless the session was opened with
      [~want_trace:true] against a tracing relay. *)

  let subscriber_catalog (s : subscriber) = s.s_catalog

  let subscriber_stats (s : subscriber) : Pbio.Receiver.stats =
    Pbio.Receiver.stats s.s_pbio

  let close_subscriber (s : subscriber) : unit =
    s.s_closed <- true;
    drop_subscriber_link s

  (* ---------------------------------------------------------------- *)
  (* Publisher sessions                                                 *)
  (* ---------------------------------------------------------------- *)

  type pending = { p_fmt : Format.t; p_frame : Bytes.t; mutable p_seq : int }
  (** [p_seq] is the store offset this frame occupies (ack mode only;
      renumbered when a reconnect learns the store regressed). *)

  type publisher = {
    b_cfg : config;
    b_stream : string;
    b_schema : string;
    b_trace : Trace.ctx option;
        (** trace context re-attached to every PUBLISH, including the
            replayed one after a reconnect (PROTOCOLS.md §17) *)
    b_window : int;
    b_catalog : Catalog.t;
    b_mem : Omf_machine.Memory.t;
    b_rng : Prng.t;
    b_buf : pending Queue.t;
        (** plain mode: marshalled frames not yet written to a live
            link. Ack mode: every frame not yet acknowledged durable —
            sent frames stay queued until the relay's ['k'] ack covers
            them, so a relay crash loses nothing. *)
    b_announced : (int, unit) Hashtbl.t;
        (** format ids announced on the {e current} connection *)
    mutable b_ack_mode : bool;
        (** publishing with [acks=1] against a store-backed relay *)
    mutable b_durable : int;  (** relay's durable watermark (ack mode) *)
    mutable b_next_seq : int;  (** store offset of the next new frame *)
    mutable b_sent : int;
        (** ack mode: length of the queue prefix already written to the
            current connection (those frames await acks, not resends) *)
    mutable b_client : Client.t option;
    mutable b_link : Link.t option;
    mutable b_reconnects : int;
    mutable b_busy_waits : int;
        (** [busy]-triggered backoff sleeps (overload, not outage) *)
    mutable b_closed : bool;
  }

  let stream_frame kind (body : Bytes.t) : Bytes.t =
    let b = Bytes.create (1 + Bytes.length body) in
    Bytes.set b 0 kind;
    Bytes.blit body 0 b 1 (Bytes.length body);
    b

  (** [publisher cfg ~stream ~schema abi] connects, advertises and
      enters publisher mode. First-attempt failures raise immediately,
      as for {!subscribe}. [window] bounds buffered data frames during
      an outage (default 1024).

      With [~acked:true] the session publishes with [acks=1]
      (PROTOCOLS.md §13): frames stay buffered until the relay reports
      them durable, so even a relay killed mid-publish loses nothing —
      the reconnect resends exactly the store's missing suffix, and the
      relay's resume handshake guarantees no duplicates. The window
      then bounds {e unacknowledged} frames, and a full window blocks
      on the ack channel instead of raising. Against a memory-only
      relay the mode degrades to the plain fire-and-forget session. *)
  let publisher ?(window = 1024) ?(acked = false) ?trace (cfg : config)
      ~(stream : string) ~(schema : string) (abi : Omf_machine.Abi.t) :
      publisher =
    let busy_waits = ref 0 in
    let client = connect_client cfg in
    match
      Client.advertise client ~stream ~schema;
      (* ADVERTISE is control traffic and always admitted; PUBLISH may
         be shed under overload — wait it out on this connection *)
      with_busy_backoff cfg
        (Prng.create ~seed:cfg.jitter_seed ())
        ~what:(Printf.sprintf "publisher %s" stream)
        ~on_busy:(fun () -> incr busy_waits)
        (fun () ->
          if acked then Client.publish_acked client ?trace ~stream
          else (None, Client.publish client ?trace ~stream))
    with
    | durable, link ->
      let catalog = Catalog.create abi in
      ignore (Omf_xml2wire.Xml2wire.register_schema catalog schema);
      let d = Option.value durable ~default:0 in
      { b_cfg = cfg; b_stream = stream; b_schema = schema; b_trace = trace
      ; b_window = window
      ; b_catalog = catalog; b_mem = Omf_machine.Memory.create abi
      ; b_rng = Prng.create ~seed:cfg.jitter_seed ()
      ; b_buf = Queue.create (); b_announced = Hashtbl.create 4
      ; b_ack_mode = durable <> None; b_durable = d; b_next_seq = d
      ; b_sent = 0; b_client = Some client; b_link = Some link
      ; b_reconnects = 0; b_busy_waits = !busy_waits; b_closed = false }
    | exception e ->
      Client.close client;
      raise e

  let publisher_format (p : publisher) (name : string) : Format.t option =
    Catalog.find_format p.b_catalog name

  let publisher_reconnects (p : publisher) = p.b_reconnects

  let publisher_busy_waits (p : publisher) = p.b_busy_waits
  (** Overload backoffs served ([busy] replies waited out on a live
      connection) — distinct from {!publisher_reconnects}. *)

  let publisher_buffered (p : publisher) = Queue.length p.b_buf
  (** Plain mode: frames awaiting a live connection. Ack mode: frames
      not yet acknowledged durable. *)

  let publisher_acked (p : publisher) = p.b_ack_mode

  let publisher_durable (p : publisher) = p.b_durable
  (** The relay's durable watermark as of the last ack (ack mode). *)

  let drop_publisher_link (p : publisher) =
    (match p.b_client with Some c -> Client.close c | None -> ());
    p.b_client <- None;
    p.b_link <- None;
    p.b_sent <- 0

  let announce_format (p : publisher) link (fmt : Format.t) =
    if not (Hashtbl.mem p.b_announced fmt.Format.id) then begin
      Link.send link
        (stream_frame Endpoint.frame_descriptor
           (Bytes.of_string (Omf_pbio.Format_codec.encode fmt)));
      Hashtbl.replace p.b_announced fmt.Format.id ()
    end

  (** Write buffered frames to the live link, announcing each format's
      descriptor first if this connection has not seen it. Plain mode
      pops each frame once written; ack mode only advances [b_sent] —
      frames leave the queue when an ack covers them. [false] = the
      link broke (the unwritten tail stays buffered). *)
  let try_flush (p : publisher) : bool =
    match p.b_link with
    | None -> false
    | Some link -> (
      try
        if p.b_ack_mode then begin
          let i = ref 0 in
          Queue.iter
            (fun e ->
              if !i >= p.b_sent then begin
                announce_format p link e.p_fmt;
                Link.send link e.p_frame;
                p.b_sent <- p.b_sent + 1
              end;
              incr i)
            p.b_buf
        end
        else
          while not (Queue.is_empty p.b_buf) do
            let e = Queue.peek p.b_buf in
            announce_format p link e.p_fmt;
            Link.send link e.p_frame;
            ignore (Queue.pop p.b_buf)
          done;
        true
      with e ->
        if transient e then begin
          drop_publisher_link p;
          false
        end
        else raise e)

  (** An ack covering offsets below [n] retires the acked queue
      prefix. *)
  let process_ack (p : publisher) (n : int) =
    if n > p.b_durable then p.b_durable <- n;
    let rec pop () =
      match Queue.peek_opt p.b_buf with
      | Some e when e.p_seq < n ->
        ignore (Queue.pop p.b_buf);
        if p.b_sent > 0 then p.b_sent <- p.b_sent - 1;
        pop ()
      | _ -> ()
    in
    pop ()

  (** Blocking read of one frame from the publisher link — ['k'] acks
      retire buffered frames, ['e'] is a relay-reported error. [false]
      = the link is gone (dropped here on any transient failure). *)
  let drain_ack (p : publisher) : bool =
    match p.b_link with
    | None -> false
    | Some link -> (
      match Link.recv link with
      | Some frame
        when Bytes.length frame >= 1 && Char.equal (Bytes.get frame 0) k_ack
        -> (
        (match
           int_of_string_opt
             (Bytes.sub_string frame 1 (Bytes.length frame - 1))
         with
        | Some n -> process_ack p n
        | None -> ());
        true)
      | Some frame
        when Bytes.length frame >= 1 && Char.equal (Bytes.get frame 0) k_err
        ->
        raise
          (Client.Error (Bytes.sub_string frame 1 (Bytes.length frame - 1)))
      | Some _ -> true
      | None ->
        drop_publisher_link p;
        false
      | exception e ->
        if transient e then begin
          drop_publisher_link p;
          false
        end
        else raise e)

  (** Align the session with the watermark a resume handshake returned:
      frames the store already holds durably are retired, the surviving
      suffix is renumbered consecutively from the watermark (identity
      in the common case; a wiped store restarts numbering from its
      fresh tail) and will be resent. [None] means the relay came back
      without a store — acks will never arrive, so the session degrades
      to plain fire-and-forget. *)
  let resync_acked (p : publisher) (durable : int option) =
    match durable with
    | None ->
      p.b_ack_mode <- false;
      Log.warn (fun m ->
          m "publisher %s: relay no longer store-backed; acks disabled"
            p.b_stream)
    | Some d ->
      p.b_durable <- d;
      let rec trim () =
        match Queue.peek_opt p.b_buf with
        | Some e when e.p_seq < d ->
          ignore (Queue.pop p.b_buf);
          trim ()
        | _ -> ()
      in
      trim ();
      let i = ref d in
      Queue.iter
        (fun e ->
          e.p_seq <- !i;
          incr i)
        p.b_buf;
      p.b_next_seq <- !i

  (** Bounded reconnect: replay ADVERTISE (the relay may have restarted
      with no streams) and PUBLISH, and forget per-connection descriptor
      announcements. [false] = budget exhausted; buffered frames are
      kept for the next attempt. *)
  let reconnect_publisher (p : publisher) : bool =
    p.b_cfg.max_attempts > 0
    && match
         with_retries p.b_cfg p.b_rng
           ~what:(Printf.sprintf "publisher %s" p.b_stream)
           (fun client ->
             Client.advertise client ~stream:p.b_stream ~schema:p.b_schema;
             let republish () =
               with_busy_backoff p.b_cfg p.b_rng
                 ~what:(Printf.sprintf "publisher %s" p.b_stream)
                 ~on_busy:(fun () -> p.b_busy_waits <- p.b_busy_waits + 1)
             in
             if p.b_ack_mode then begin
               let durable, link =
                 republish () (fun () ->
                     Client.publish_acked client ?trace:p.b_trace
                       ~stream:p.b_stream)
               in
               p.b_client <- Some client;
               p.b_link <- Some link;
               p.b_sent <- 0;
               resync_acked p durable
             end
             else begin
               let link =
                 republish () (fun () ->
                     Client.publish client ?trace:p.b_trace
                       ~stream:p.b_stream)
               in
               p.b_client <- Some client;
               p.b_link <- Some link;
               p.b_sent <- 0
             end;
             Hashtbl.reset p.b_announced;
             p.b_reconnects <- p.b_reconnects + 1;
             Log.info (fun m ->
                 m "publisher %s: reconnected (reconnect %d, %d frames \
                    buffered)"
                   p.b_stream p.b_reconnects (Queue.length p.b_buf)))
       with
       | () -> true
       | exception Gave_up _ -> false

  (** Ack mode, window full: block on the ack channel until the relay
      retires a slot, reconnecting (boundedly) when the link breaks.
      {!Overflow} when the relay stays unreachable. *)
  let wait_for_window (p : publisher) : unit =
    let reconnect_rounds = ref 0 in
    while p.b_ack_mode && Queue.length p.b_buf >= p.b_window do
      match p.b_link with
      | Some _ -> ignore (drain_ack p)
      | None ->
        if !reconnect_rounds >= 3 || not (reconnect_publisher p) then
          raise
            (Overflow
               (Printf.sprintf
                  "publisher %s: window full (%d unacknowledged frames) and \
                   the relay is unreachable"
                  p.b_stream p.b_window))
        else begin
          incr reconnect_rounds;
          ignore (try_flush p)
        end
    done

  (** [publish_value p fmt v] marshals and ships one event. During an
      outage the frame is buffered and reconnection attempted under the
      budget; a full window raises {!Overflow} (the event is {e not}
      enqueued) in plain mode and blocks for acks in ack mode; an
      exhausted budget returns with the frame buffered for the next
      call. *)
  let publish_value (p : publisher) (fmt : Format.t) (v : Value.t) : unit =
    if p.b_closed then raise (Client.Error "publisher session closed");
    if Queue.length p.b_buf >= p.b_window then begin
      if p.b_ack_mode then wait_for_window p;
      if Queue.length p.b_buf >= p.b_window then
        raise
          (Overflow
             (Printf.sprintf
                "publisher %s: in-flight window (%d frames) full while relay \
                 unreachable"
                p.b_stream p.b_window))
    end;
    (* marshal now: the value is captured even if the relay is down *)
    Omf_machine.Memory.reset p.b_mem;
    let addr = Omf_pbio.Native.store p.b_mem fmt v in
    let frame =
      stream_frame Endpoint.frame_message (Pbio.message p.b_mem fmt addr)
    in
    let seq = p.b_next_seq in
    if p.b_ack_mode then p.b_next_seq <- seq + 1;
    Queue.add { p_fmt = fmt; p_frame = frame; p_seq = seq } p.b_buf;
    if not (try_flush p) then
      if reconnect_publisher p then ignore (try_flush p)

  (** Block until every buffered frame is acknowledged durable (ack
      mode) or written (plain mode), reconnecting under the budget.
      {!Gave_up} when the relay stays unreachable. *)
  let flush_acked (p : publisher) : unit =
    if not p.b_ack_mode then ignore (try_flush p)
    else begin
      let reconnect_rounds = ref 0 in
      while p.b_ack_mode && not (Queue.is_empty p.b_buf) do
        match p.b_link with
        | Some _ ->
          ignore (try_flush p);
          if p.b_ack_mode && not (Queue.is_empty p.b_buf) then
            ignore (drain_ack p)
        | None ->
          if !reconnect_rounds >= 3 || not (reconnect_publisher p) then
            raise
              (Gave_up
                 (Printf.sprintf
                    "publisher %s: flush: relay unreachable with %d \
                     unacknowledged frames"
                    p.b_stream (Queue.length p.b_buf)))
          else incr reconnect_rounds
      done
    end

  (** Close, flushing buffered frames best-effort (no reconnect; call
      {!flush_acked} first for a durable handoff). *)
  let close_publisher (p : publisher) : unit =
    if not p.b_closed then begin
      p.b_closed <- true;
      ignore (try try_flush p with _ -> false);
      drop_publisher_link p
    end
end
