(** The networked event relay: the {!Omf_backbone.Broker} served over
    real TCP by a single-threaded, [Unix.select]-driven event loop.

    This is the deployable form of the paper's event backbone (Figures 1
    and 3): capture points and subscribers are separate processes on
    separate machines; the relay hosts the broker — stream advertisement,
    per-stream format-descriptor caching with replay for late joiners,
    credential-scoped metadata — behind a small control protocol carried
    on the same length-prefixed TCP framing as the {!Omf_transport.Endpoint}
    descriptor/message frames it relays.

    Design points:

    - {b Single-threaded.} One [select] loop owns every socket;
      non-blocking reads are reassembled into frames by
      {!Omf_transport.Frame.Decoder}, writes are queued per connection
      and flushed on writability. No locks, deterministic fan-out order.
    - {b Bounded queues + backpressure.} Each subscriber has a bounded
      outbound queue of data frames. When a subscriber falls behind, the
      configured {!policy} decides: [Block] stops reading from the
      stream's publishers (loss-free — TCP pushes back to the capture
      point), [Drop_oldest] sheds the oldest queued data frame
      (descriptor frames are never shed, so the stream stays decodable),
      [Evict_slow] disconnects the laggard so the fast majority is
      unaffected.
    - {b Shared format machinery.} Descriptor frames are cached once per
      stream and replayed to every late joiner — the instance-level
      "compile once, serve many consumers" economics the paper's
      metadata design enables.
    - {b Graceful drain.} Shutdown stops accepting and reading, flushes
      every subscriber queue (up to a deadline), then closes.

    Control protocol (each frame: 1-byte kind + body; see PROTOCOLS.md
    section 11):

    - ['h'] HELLO     creds as ["k=v"] lines        -> ['o' banner]
    - ['a'] ADVERTISE ["stream\n<schema xml>"]      -> ['o']
    - ['p'] PUBLISH   ["stream"]                    -> ['o'], connection
      becomes the stream's publisher; subsequent ['D']/['M'] endpoint
      frames are fanned out verbatim
    - ['s'] SUBSCRIBE ["stream"]                    -> ['o' scoped-schema],
      then replayed ['D'] frames, then live frames
    - ['t'] STATS                                   -> ['o' "name value" lines]
    - ['e' message] is the error reply to any of the above. *)

open Omf_transport
module Broker = Omf_backbone.Broker
module Counters = Omf_util.Counters

let log = Logs.Src.create "omf.relay" ~doc:"TCP event relay"

module Log = (val Logs.src_log log)

type policy = Block | Drop_oldest | Evict_slow

let policy_to_string = function
  | Block -> "block"
  | Drop_oldest -> "drop-oldest"
  | Evict_slow -> "evict-slow-consumer"

let policy_of_string = function
  | "block" -> Some Block
  | "drop-oldest" -> Some Drop_oldest
  | "evict-slow-consumer" | "evict-slow" | "evict" -> Some Evict_slow
  | _ -> None

(* control / reply frame kinds (lowercase; relayed endpoint frames are
   the uppercase 'D'/'M' of Omf_transport.Endpoint) *)
let k_hello = 'h'
let k_advertise = 'a'
let k_publish = 'p'
let k_subscribe = 's'
let k_stats = 't'
let k_ok = 'o'
let k_err = 'e'

(* ------------------------------------------------------------------ *)
(* Connections                                                          *)
(* ------------------------------------------------------------------ *)

type role =
  | Pending  (** control commands only, no stream attached yet *)
  | Publisher of { stream : string; link : Link.t }
      (** [link] is the broker's fan-out entry for the stream *)
  | Subscriber of { stream : string; unsubscribe : unit -> unit }

type out_entry = {
  ebuf : Bytes.t;  (** wire bytes: header + frame *)
  mutable eoff : int;  (** bytes already written *)
  droppable : bool;  (** data frame, sheddable under [Drop_oldest] *)
}

type conn = {
  cid : int;
  fd : Unix.file_descr;
  decoder : Frame.Decoder.t;
  outq : out_entry Queue.t;
  mutable q_data : int;  (** droppable frames currently queued *)
  mutable creds : (string * string) list;
  mutable role : role;
  mutable over_since : float option;
      (** when the queue first crossed the watermark (Evict_slow) *)
  mutable mac : Macframe.state option;
      (** HMAC frame mode, negotiated at HELLO; sealing starts with the
          frame after the HELLO exchange in each direction *)
  mutable mac_rejects : int;  (** frames that failed authentication *)
  mutable doomed : string option;  (** close reason, swept after dispatch *)
}

type state = Running | Draining | Stopped

type t = {
  host : string;
  port : int;
  policy : policy;
  max_queue : int;
  evict_grace : float;
      (** seconds a subscriber may stay over the watermark before
          [Evict_slow] dooms it; a consumer that drains back below the
          watermark in time is spared (momentary bursts are not
          slowness) *)
  sndbuf : int option;  (** forced SO_SNDBUF on accepted sockets *)
  auth_keys : (string * string) list;
      (** [key-id -> secret] table for HMAC frame negotiation; empty =
          authenticated mode unavailable *)
  mac_reject_limit : int;
      (** close a connection after this many unauthenticated frames *)
  drain_default_s : float;
  lsock : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  broker : Broker.t;
  conns : (int, conn) Hashtbl.t;
  counters : Counters.t;
  scratch : Bytes.t;
  mutable next_cid : int;
  mutable state : state;
  mutable stop_requested : bool;
  mutable drain_deadline : float;
}

let create ?(host = "127.0.0.1") ?(port = 0) ?(policy = Block)
    ?(max_queue = 256) ?(evict_grace_s = 1.0) ?sndbuf ?(auth_keys = [])
    ?(mac_reject_limit = 3) ?(drain_s = 2.0) () : t =
  let lsock, bound_port = Tcp.listener ~host ~port () in
  Unix.set_nonblock lsock;
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  { host; port = bound_port; policy; max_queue; evict_grace = evict_grace_s
  ; sndbuf; auth_keys; mac_reject_limit
  ; drain_default_s = drain_s
  ; lsock; wake_r; wake_w; broker = Broker.create ()
  ; conns = Hashtbl.create 64; counters = Counters.create ()
  ; scratch = Bytes.create 65536; next_cid = 1; state = Running
  ; stop_requested = false; drain_deadline = infinity }

let port t = t.port

(** The embedded broker — for scope policies and direct inspection
    ([Broker.set_scope] installs credential-based field scoping exactly
    as for the in-process broker). *)
let broker t = t.broker

let stats t : (string * int) list =
  Counters.dump t.counters
  @ List.concat_map
      (fun s ->
        [ (Printf.sprintf "stream.%s.published" s, Broker.published_count t.broker ~stream:s)
        ; (Printf.sprintf "stream.%s.subscribers" s, Broker.subscriber_count t.broker ~stream:s) ])
      (Broker.stream_names t.broker)

let stats_text t =
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf "%s %d\n" k v) (stats t))

(** Ask the loop to drain and stop. Safe from another thread or a signal
    handler: it only sets a flag and writes the wake pipe. *)
let request_shutdown (t : t) : unit =
  t.stop_requested <- true;
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Outbound queues and backpressure                                     *)
(* ------------------------------------------------------------------ *)

let enqueue_entry (c : conn) ~droppable (frame : Bytes.t) =
  (* under negotiated HMAC mode every outbound frame is sealed; sealing
     happens at enqueue time so nonces follow queue order exactly *)
  let frame =
    match c.mac with None -> frame | Some st -> Macframe.seal_next st frame
  in
  Queue.add { ebuf = Frame.encode frame; eoff = 0; droppable } c.outq;
  if droppable then c.q_data <- c.q_data + 1

(** Drop the oldest fully-unwritten data frame, if any. *)
let drop_oldest_droppable (c : conn) : bool =
  let dropped = ref false in
  let keep = Queue.create () in
  Queue.iter
    (fun e ->
      if (not !dropped) && e.droppable && e.eoff = 0 then dropped := true
      else Queue.add e keep)
    c.outq;
  if !dropped then begin
    Queue.clear c.outq;
    Queue.transfer keep c.outq;
    c.q_data <- c.q_data - 1
  end;
  !dropped

(** Doom [c] as a slow consumer (swept after the current dispatch). *)
let evict_slow (t : t) (c : conn) =
  c.doomed <- Some "slow consumer evicted";
  Counters.incr t.counters "subscribers_evicted";
  Log.info (fun m -> m "conn %d: evicting slow consumer" c.cid)

(** Enqueue a relayed stream frame onto a subscriber, applying the
    backpressure policy. Raises {!Link.Closed} when the subscriber is
    (or becomes) dead so the broker skips it. *)
let enqueue_relayed (t : t) (c : conn) (frame : Bytes.t) =
  if c.doomed <> None then raise Link.Closed;
  let droppable =
    not
      (Bytes.length frame > 0
      && Char.equal (Bytes.get frame 0) Endpoint.frame_descriptor)
  in
  if droppable && c.q_data >= t.max_queue then begin
    match t.policy with
    | Block ->
      (* over the high-watermark: the loop pauses the stream's
         publishers until this queue drains; nothing is lost *)
      ()
    | Drop_oldest ->
      if drop_oldest_droppable c then
        Counters.incr t.counters "frames_dropped"
    | Evict_slow -> (
      (* over the watermark: start (or check) the grace clock rather
         than evicting outright — an actively draining consumer that
         is merely behind for a moment must not be killed.  The queue
         may grow past the watermark during the grace window; it is
         bounded by grace x publish rate. *)
      let now = Unix.gettimeofday () in
      match c.over_since with
      | None -> c.over_since <- Some now
      | Some t0 when now -. t0 >= t.evict_grace ->
        evict_slow t c;
        raise Link.Closed
      | Some _ -> ())
  end;
  enqueue_entry c ~droppable frame;
  Counters.incr t.counters "frames_out"

let reply (t : t) (c : conn) kind (body : string) =
  let b = Bytes.create (1 + String.length body) in
  Bytes.set b 0 kind;
  Bytes.blit_string body 0 b 1 (String.length body);
  enqueue_entry c ~droppable:false b;
  ignore t

let reply_ok t c body = reply t c k_ok body
let reply_err t c msg =
  Counters.incr t.counters "errors";
  reply t c k_err msg

(** Under [Block]: is some subscriber of [stream] over the watermark? *)
let stream_congested (t : t) (stream : string) : bool =
  t.policy = Block
  && Hashtbl.fold
       (fun _ c acc ->
         acc
         || match c.role with
            | Subscriber s ->
              String.equal s.stream stream
              && c.doomed = None && c.q_data >= t.max_queue
            | _ -> false)
       t.conns false

(* ------------------------------------------------------------------ *)
(* Frame dispatch                                                       *)
(* ------------------------------------------------------------------ *)

let parse_creds (s : string) : (string * string) list =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         match String.index_opt line '=' with
         | None -> None
         | Some i ->
           Some
             ( String.sub line 0 i
             , String.sub line (i + 1) (String.length line - i - 1) ))

(** Reject a connection at the protocol level: count it, reply, doom. *)
let protocol_reject (t : t) (c : conn) (msg : string) =
  Counters.incr t.counters "frames_rejected";
  Log.warn (fun m -> m "conn %d: %s" c.cid msg);
  reply_err t c msg;
  c.doomed <- Some "protocol error"

(** HELLO: record credentials and negotiate the frame mode. With
    [auth=hmac] + a known [key-id], the ['o'] reply is sent in the
    clear and every subsequent frame in both directions is sealed
    ({!Macframe}); an unknown key or unsupported mode is refused and
    the connection dropped. A client that reconnects after an outage
    marks itself with an [omf-reconnect] credential so operators can
    see churn in STATS. *)
let handle_hello (t : t) (c : conn) (body : string) =
  c.creds <- parse_creds body;
  if List.mem_assoc "omf-reconnect" c.creds then
    Counters.incr t.counters "reconnects_accepted";
  match List.assoc_opt "auth" c.creds with
  | None -> reply_ok t c "omf-relay 1"
  | Some "hmac" -> (
    match List.assoc_opt "key-id" c.creds with
    | None ->
      Counters.incr t.counters "auth_denied";
      reply_err t c "hello: auth=hmac requires key-id";
      c.doomed <- Some "auth denied"
    | Some id -> (
      match List.assoc_opt id t.auth_keys with
      | None ->
        Counters.incr t.counters "auth_denied";
        reply_err t c (Printf.sprintf "hello: unknown key-id %s" id);
        c.doomed <- Some "auth denied"
      | Some key ->
        Counters.incr t.counters "auth_sessions";
        reply_ok t c "omf-relay 1 mac";
        (* armed after the reply: the reply itself is plaintext, the
           next outbound frame is the first sealed one *)
        c.mac <- Some (Macframe.state ~key)))
  | Some other ->
    Counters.incr t.counters "auth_denied";
    reply_err t c (Printf.sprintf "hello: unsupported auth mode %s" other);
    c.doomed <- Some "auth denied"

let handle_control (t : t) (c : conn) kind (body : string) =
  if Char.equal kind k_hello then handle_hello t c body
  else if Char.equal kind k_stats then reply_ok t c (stats_text t)
  else if Char.equal kind k_advertise then begin
    match String.index_opt body '\n' with
    | None -> reply_err t c "advertise: want \"stream\\nschema\""
    | Some i -> (
      let stream = String.sub body 0 i in
      let schema = String.sub body (i + 1) (String.length body - i - 1) in
      match Broker.advertise t.broker ~stream ~schema with
      | () ->
        Counters.incr t.counters "advertisements";
        reply_ok t c ""
      | exception Omf_xschema.Schema.Schema_error m ->
        reply_err t c (Printf.sprintf "advertise %s: %s" stream m))
  end
  else if Char.equal kind k_publish then begin
    match c.role with
    | Publisher _ | Subscriber _ ->
      reply_err t c "publish: connection already has a role"
    | Pending -> (
      match Broker.publisher_link t.broker ~stream:body with
      | link ->
        c.role <- Publisher { stream = body; link };
        Counters.incr t.counters "publishers";
        reply_ok t c ""
      | exception Broker.Unknown_stream s ->
        reply_err t c (Printf.sprintf "publish: unknown stream %s" s))
  end
  else if Char.equal kind k_subscribe then begin
    match c.role with
    | Publisher _ | Subscriber _ ->
      reply_err t c "subscribe: connection already has a role"
    | Pending -> (
      match Broker.metadata_for t.broker ~stream:body c.creds with
      | schema ->
        (* reply first so the scoped schema precedes replayed frames *)
        reply_ok t c schema;
        let link =
          { Link.send = (fun frame -> enqueue_relayed t c frame)
          ; recv = (fun () -> None)
          ; close = (fun () -> ()) }
        in
        let unsubscribe =
          Broker.subscribe t.broker ~stream:body ~creds:c.creds link
        in
        c.role <- Subscriber { stream = body; unsubscribe };
        Counters.incr t.counters "subscriptions"
      | exception Broker.Unknown_stream s ->
        reply_err t c (Printf.sprintf "subscribe: unknown stream %s" s)
      | exception Broker.Access_denied m ->
        reply_err t c (Printf.sprintf "subscribe: access denied: %s" m))
  end
  else protocol_reject t c (Printf.sprintf "unknown command %C" kind)

let handle_frame (t : t) (c : conn) (frame : Bytes.t) =
  Counters.incr t.counters "frames_in";
  if Bytes.length frame = 0 then protocol_reject t c "empty frame"
  else
    let kind = Bytes.get frame 0 in
    let is_stream_frame =
      Char.equal kind Endpoint.frame_descriptor
      || Char.equal kind Endpoint.frame_message
    in
    if is_stream_frame then
      match c.role with
      | Publisher p ->
        if Char.equal kind Endpoint.frame_message then
          Counters.incr t.counters "events_relayed";
        Link.send p.link frame
      | Pending -> protocol_reject t c "stream frame before PUBLISH"
      | Subscriber _ ->
        protocol_reject t c "subscriber connections are receive-only"
    else
      match c.role with
      | Publisher _ | Pending ->
        handle_control t c kind
          (Bytes.sub_string frame 1 (Bytes.length frame - 1))
      | Subscriber _ ->
        (* replies would interleave with relayed frames: refuse *)
        protocol_reject t c "subscriber connections are receive-only"

(** Unseal an inbound frame on an authenticated connection. A frame
    that fails authentication is counted and skipped; once the reject
    limit is reached the connection is doomed. [None] = drop frame. *)
let unseal (t : t) (c : conn) (frame : Bytes.t) : Bytes.t option =
  match c.mac with
  | None -> Some frame
  | Some st -> (
    match Macframe.open_next st frame with
    | payload -> Some payload
    | exception Macframe.Auth_error msg ->
      Counters.incr t.counters "frames_rejected";
      c.mac_rejects <- c.mac_rejects + 1;
      Log.warn (fun m ->
          m "conn %d: rejected frame (%d/%d): %s" c.cid c.mac_rejects
            t.mac_reject_limit msg);
      if c.mac_rejects >= t.mac_reject_limit then
        c.doomed <- Some "authentication failures";
      None)

(* ------------------------------------------------------------------ *)
(* The event loop                                                       *)
(* ------------------------------------------------------------------ *)

let accept_ready (t : t) =
  let continue = ref true in
  while !continue do
    match Unix.accept t.lsock with
    | fd, _ ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      (match t.sndbuf with
      | Some n -> (
        try Unix.setsockopt_int fd Unix.SO_SNDBUF n
        with Unix.Unix_error _ -> ())
      | None -> ());
      let cid = t.next_cid in
      t.next_cid <- cid + 1;
      Hashtbl.replace t.conns cid
        { cid; fd; decoder = Frame.Decoder.create (); outq = Queue.create ()
        ; q_data = 0; creds = []; role = Pending; over_since = None
        ; mac = None; mac_rejects = 0; doomed = None };
      Counters.incr t.counters "connections";
      Log.debug (fun m -> m "conn %d accepted" cid)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

let read_ready (t : t) (c : conn) =
  match Unix.read c.fd t.scratch 0 (Bytes.length t.scratch) with
  | 0 -> c.doomed <- Some "peer closed"
  | n -> (
    Counters.incr t.counters ~by:n "bytes_in";
    Frame.Decoder.feed c.decoder t.scratch 0 n;
    try
      let rec drain () =
        if c.doomed = None then
          match Frame.Decoder.pop c.decoder with
          | Some frame ->
            (match unseal t c frame with
            | Some frame -> handle_frame t c frame
            | None -> ());
            drain ()
          | None -> ()
      in
      drain ()
    with
    | Frame.Frame_error m | Broker.Unknown_stream m ->
      (* length-framing corruption (or a stream error) is unrecoverable:
         count the malformed-frame disconnect alongside MAC rejects *)
      Counters.incr t.counters "frames_rejected";
      c.doomed <- Some m
    | Link.Closed -> ()
    (* subscriber died mid-fanout; its own doom is already set *))
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> c.doomed <- Some "read error"

let write_ready (t : t) (c : conn) =
  let continue = ref true in
  while !continue && not (Queue.is_empty c.outq) do
    let e = Queue.peek c.outq in
    match Unix.write c.fd e.ebuf e.eoff (Bytes.length e.ebuf - e.eoff) with
    | n ->
      Counters.incr t.counters ~by:n "bytes_out";
      e.eoff <- e.eoff + n;
      if e.eoff = Bytes.length e.ebuf then begin
        ignore (Queue.pop c.outq);
        if e.droppable then begin
          c.q_data <- c.q_data - 1;
          (* drained back below the watermark: the consumer recovered,
             so stop the eviction grace clock *)
          if c.q_data < t.max_queue then c.over_since <- None
        end
      end
      else continue := false
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error _ ->
      c.doomed <- Some "write error";
      continue := false
  done

let close_conn (t : t) (c : conn) =
  (* best-effort flush first: a conn doomed for a protocol error has
     its 'e' reply still queued, and the peer should learn why it was
     dropped — push whatever the socket will take without blocking *)
  write_ready t c;
  (match c.role with
  | Subscriber s -> s.unsubscribe ()
  | Publisher _ | Pending -> ());
  Hashtbl.remove t.conns c.cid;
  (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  Log.debug (fun m ->
      m "conn %d closed (%s)" c.cid
        (Option.value ~default:"normal" c.doomed))

let sweep_doomed (t : t) =
  let doomed =
    Hashtbl.fold
      (fun _ c acc -> if c.doomed <> None then c :: acc else acc)
      t.conns []
  in
  List.iter (close_conn t) doomed

(** Sweep grace deadlines: a subscriber that stayed over the watermark
    for the whole grace window is evicted even if no new frame arrives
    to trigger the check in {!enqueue_relayed}. *)
let check_evictions (t : t) =
  if t.policy = Evict_slow then
    let now = Unix.gettimeofday () in
    Hashtbl.iter
      (fun _ c ->
        match c.over_since with
        | Some t0 when c.doomed = None && now -. t0 >= t.evict_grace ->
          evict_slow t c
        | _ -> ())
      t.conns

let drain_wake_pipe (t : t) =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 64 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let conn_wants_read (t : t) (c : conn) : bool =
  c.doomed = None
  && t.state = Running
  &&
  match c.role with
  | Publisher p -> not (stream_congested t p.stream)
  | Pending | Subscriber _ -> true

(** Run the loop until {!request_shutdown} (then drain) completes. *)
let run (t : t) : unit =
  Log.info (fun m ->
      m "listening on %s:%d (policy %s, max queue %d)" t.host t.port
        (policy_to_string t.policy) t.max_queue);
  while t.state <> Stopped do
    (* enter drain on request *)
    if t.stop_requested && t.state = Running then begin
      t.state <- Draining;
      t.drain_deadline <- Unix.gettimeofday () +. t.drain_default_s;
      (try Unix.close t.lsock with Unix.Unix_error _ -> ());
      Log.info (fun m ->
          m "draining %d connections" (Hashtbl.length t.conns))
    end;
    if t.state = Draining then begin
      let pending =
        Hashtbl.fold
          (fun _ c acc -> acc + Queue.length c.outq)
          t.conns 0
      in
      if pending = 0 || Unix.gettimeofday () > t.drain_deadline then begin
        Hashtbl.iter (fun _ c -> c.doomed <- Some "shutdown") t.conns;
        sweep_doomed t;
        (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
        (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
        t.state <- Stopped;
        Log.info (fun m -> m "stopped")
      end
    end;
    if t.state <> Stopped then begin
      let reads =
        t.wake_r
        :: (if t.state = Running then [ t.lsock ] else [])
        @ Hashtbl.fold
            (fun _ c acc -> if conn_wants_read t c then c.fd :: acc else acc)
            t.conns []
      in
      let writes =
        Hashtbl.fold
          (fun _ c acc ->
            if c.doomed = None && not (Queue.is_empty c.outq) then
              c.fd :: acc
            else acc)
          t.conns []
      in
      let timeout = if t.state = Draining then 0.05 else 0.5 in
      match Unix.select reads writes [] timeout with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | exception Unix.Unix_error (EBADF, _, _) ->
        (* a fd closed under us (e.g. listener on shutdown) — next
           iteration rebuilds the sets from live connections *)
        ()
      | rs, ws, _ ->
        if List.memq t.wake_r rs then drain_wake_pipe t;
        if t.state = Running && List.memq t.lsock rs then accept_ready t;
        Hashtbl.iter
          (fun _ c ->
            if c.doomed = None && List.memq c.fd ws then write_ready t c)
          t.conns;
        Hashtbl.iter
          (fun _ c ->
            if c.doomed = None && List.memq c.fd rs then read_ready t c)
          t.conns;
        check_evictions t;
        sweep_doomed t
    end
  done

(* ------------------------------------------------------------------ *)
(* Hosted convenience                                                   *)
(* ------------------------------------------------------------------ *)

type handle = { relay : t; thread : Thread.t }

(** [start ()] runs a relay loop in a background thread (ephemeral port
    by default) — the embedding used by tests and benchmarks. *)
let start ?host ?port ?policy ?max_queue ?evict_grace_s ?sndbuf ?auth_keys
    ?mac_reject_limit ?drain_s () : handle =
  let relay =
    create ?host ?port ?policy ?max_queue ?evict_grace_s ?sndbuf ?auth_keys
      ?mac_reject_limit ?drain_s ()
  in
  { relay; thread = Thread.create run relay }

let relay (h : handle) : t = h.relay

(** [stop h] requests a graceful drain and waits for the loop to end. *)
let stop (h : handle) : unit =
  request_shutdown h.relay;
  Thread.join h.thread

(* ------------------------------------------------------------------ *)
(* Client                                                               *)
(* ------------------------------------------------------------------ *)

(** Blocking client for the relay protocol. One connection carries one
    role: after {!Client.publish} the link is an
    {!Omf_transport.Endpoint.Sender} channel, after {!Client.subscribe}
    it is receive-only. *)
module Client = struct
  exception Error of string

  type t = { link : Link.t }

  let ctrl kind (body : string) : Bytes.t =
    let b = Bytes.create (1 + String.length body) in
    Bytes.set b 0 kind;
    Bytes.blit_string body 0 b 1 (String.length body);
    b

  (* every transport-level failure surfaces as Client.Error with a
     readable message; raw Unix_error / Tcp_error never escape *)
  let reraise (context : string) = function
    | Error m -> raise (Error m)
    | Link.Closed -> raise (Error (context ^ ": connection closed"))
    | Link.Timeout -> raise (Error (context ^ ": timeout"))
    | Tcp.Tcp_error m | Frame.Frame_error m ->
      raise (Error (context ^ ": " ^ m))
    | Macframe.Auth_error m ->
      raise (Error (context ^ ": authentication: " ^ m))
    | End_of_file -> raise (Error (context ^ ": connection closed"))
    | Unix.Unix_error (e, fn, _) ->
      raise (Error (Printf.sprintf "%s: %s: %s" context fn (Unix.error_message e)))
    | e -> raise e

  let rpc (t : t) kind body : string =
    match
      Link.send t.link (ctrl kind body);
      Link.recv t.link
    with
    | None -> raise (Error "relay closed the connection")
    | Some r when Bytes.length r >= 1 && Char.equal (Bytes.get r 0) k_ok ->
      Bytes.sub_string r 1 (Bytes.length r - 1)
    | Some r when Bytes.length r >= 1 && Char.equal (Bytes.get r 0) k_err ->
      raise (Error (Bytes.sub_string r 1 (Bytes.length r - 1)))
    | Some _ -> raise (Error "malformed reply")
    | exception e -> reraise "relay rpc" e

  let creds_text creds =
    String.concat "\n" (List.map (fun (k, v) -> k ^ "=" ^ v) creds)

  (** [connect ~port ()] dials and HELLOs. With [?auth:(key_id, key)]
      the HELLO requests HMAC frame mode; the handshake itself is
      plaintext and every later frame is sealed. Failures — unreachable
      port, handshake timeout, an ['e'] reply — raise {!Error} with the
      reason, and the socket is closed on every error path. *)
  let connect ?(host = "127.0.0.1") ~port ?(creds = []) ?auth
      ?connect_timeout_s ?io_timeout_s () : t =
    let link =
      try Tcp.connect ~host ~port ?connect_timeout_s ?io_timeout_s ()
      with e -> reraise (Printf.sprintf "relay connect %s:%d" host port) e
    in
    try
      let hello_creds =
        match auth with
        | None -> creds
        | Some (key_id, _) ->
          creds @ [ ("auth", "hmac"); ("key-id", key_id) ]
      in
      let banner = rpc { link } k_hello (creds_text hello_creds) in
      match auth with
      | None -> { link }
      | Some (_, key) ->
        (* the relay must have granted the mode we asked for *)
        if not (String.length banner >= 3
                && String.sub banner (String.length banner - 3) 3 = "mac")
        then raise (Error "relay did not negotiate authenticated framing");
        { link = Macframe.wrap (Macframe.state ~key) link }
    with e ->
      (* no fd leak on handshake failure *)
      (try Link.close link with _ -> ());
      reraise "relay handshake" e

  let advertise (t : t) ~(stream : string) ~(schema : string) : unit =
    ignore (rpc t k_advertise (stream ^ "\n" ^ schema))

  let stats (t : t) : (string * int) list =
    Counters.of_text (rpc t k_stats "")

  (** [publish t ~stream] switches the connection into publisher mode
      and returns the raw link: drive it with
      {!Omf_transport.Endpoint.Sender}. *)
  let publish (t : t) ~(stream : string) : Link.t =
    ignore (rpc t k_publish stream);
    t.link

  (** [subscribe t ~stream] returns the (credential-scoped) stream
      schema and the raw link now carrying descriptor/message frames. *)
  let subscribe (t : t) ~(stream : string) : string * Link.t =
    let schema = rpc t k_subscribe stream in
    (schema, t.link)

  let close (t : t) = try Link.close t.link with _ -> ()
end

(* ------------------------------------------------------------------ *)
(* A fully wired remote consumer (mirror of Broker.attach_consumer)     *)
(* ------------------------------------------------------------------ *)

module Catalog = Omf_xml2wire.Catalog

type consumer = {
  client : Client.t;
  catalog : Catalog.t;
  endpoint : Endpoint.Receiver.t;
  schema : string;  (** the scoped schema the relay served *)
}

(** [attach_consumer ~port ~stream abi] connects, subscribes, registers
    the served (scoped) schema in a fresh catalog for [abi] and wraps
    the link in an endpoint receiver. *)
let attach_consumer ?host ~port ?creds ?auth ~(stream : string)
    (abi : Omf_machine.Abi.t) : consumer =
  let client = Client.connect ?host ~port ?creds ?auth () in
  let schema, link =
    try Client.subscribe client ~stream
    with e ->
      Client.close client;
      raise e
  in
  let catalog = Catalog.create abi in
  ignore
    (Omf_xml2wire.Xml2wire.register_schema ~source:("relay:" ^ stream) catalog
       schema);
  let endpoint =
    Endpoint.Receiver.create link
      (Catalog.registry catalog)
      (Omf_machine.Memory.create abi)
  in
  { client; catalog; endpoint; schema }

(** Blocking receive of the next decoded event ([None] = relay closed
    the stream). *)
let recv (c : consumer) : (Omf_pbio.Format.t * Omf_pbio.Value.t) option =
  Endpoint.Receiver.recv_value c.endpoint

let close_consumer (c : consumer) : unit = Client.close c.client

(* ------------------------------------------------------------------ *)
(* Fault-tolerant sessions                                              *)
(* ------------------------------------------------------------------ *)

module Pbio = Omf_pbio.Pbio
module Format = Omf_pbio.Format
module Value = Omf_pbio.Value
module Prng = Omf_util.Prng
module Sha256 = Omf_util.Sha256

(** Fault-tolerant relay sessions: {!Client} plus automatic
    reconnect/replay, mirroring the metadata layer's fallback-chain
    philosophy at the transport layer — a dropped TCP connection
    degrades to a retry loop instead of killing the consumer.

    A {e subscriber session} detects a broken link (close, reset, MAC
    failure, deadline), reconnects under a retry budget with
    exponential backoff + jitter, replays its HELLO/SUBSCRIBE state,
    and relies on the relay's cached descriptor replay to stay
    decodable; descriptor frames already learned are deduplicated by
    content digest, so a relayd restart cannot corrupt or re-register
    formats.

    A {e publisher session} replays HELLO/ADVERTISE/PUBLISH on
    reconnect, re-announces format descriptors on the fresh connection
    (the relay restarts empty), and buffers data frames that could not
    be written — up to a bounded in-flight window; past the window,
    {!Overflow} is raised rather than silently dropping or blocking
    forever. *)
module Session = struct
  exception Gave_up of string
  (** The reconnect budget for one outage was exhausted. *)

  exception Overflow of string
  (** The publisher's bounded in-flight window is full while the relay
      is unreachable. *)

  type config = {
    host : string;
    port : int;
    creds : (string * string) list;
    auth : (string * string) option;  (** [(key-id, secret)] *)
    max_attempts : int;  (** reconnect attempts per outage *)
    base_delay_s : float;  (** first backoff step *)
    max_delay_s : float;  (** backoff cap *)
    connect_timeout_s : float option;
    io_timeout_s : float option;
    jitter_seed : int64;  (** deterministic jitter (tests) *)
  }

  let config ?(host = "127.0.0.1") ?(creds = []) ?auth ?(max_attempts = 10)
      ?(base_delay_s = 0.05) ?(max_delay_s = 2.0)
      ?(connect_timeout_s = 5.0) ?io_timeout_s ?(jitter_seed = 1L) ~port () :
      config =
    { host; port; creds; auth; max_attempts; base_delay_s; max_delay_s
    ; connect_timeout_s = Some connect_timeout_s; io_timeout_s; jitter_seed }

  (* attempt k (0-based) sleeps min(cap, base * 2^k) scaled into
     [0.5, 1.0) — full-jitter halves thundering-herd resubscription
     after a relayd restart while keeping tests deterministic via the
     seeded PRNG *)
  let backoff_delay (cfg : config) rng attempt =
    let d = cfg.base_delay_s *. (2.0 ** float_of_int attempt) in
    Float.min cfg.max_delay_s d *. (0.5 +. (0.5 *. Prng.float rng))

  let connect_client ?(reconnect = false) (cfg : config) : Client.t =
    let creds =
      if reconnect then cfg.creds @ [ ("omf-reconnect", "1") ] else cfg.creds
    in
    Client.connect ~host:cfg.host ~port:cfg.port ~creds ?auth:cfg.auth
      ?connect_timeout_s:cfg.connect_timeout_s ?io_timeout_s:cfg.io_timeout_s
      ()

  let transient = function
    | Client.Error _ | Link.Closed | Link.Timeout | End_of_file
    | Tcp.Tcp_error _ | Frame.Frame_error _ | Macframe.Auth_error _
    | Unix.Unix_error _ ->
      true
    | _ -> false

  (** Reconnect and replay session state: dial a fresh connection and
      run [f] (which re-issues SUBSCRIBE or ADVERTISE/PUBLISH) against
      it, retrying transient failures under the budget. *)
  let with_retries (cfg : config) rng ~(what : string) (f : Client.t -> 'a) :
      'a =
    let rec go attempt =
      if attempt >= cfg.max_attempts then
        raise
          (Gave_up
             (Printf.sprintf "%s: gave up after %d reconnect attempts" what
                cfg.max_attempts));
      Thread.delay (backoff_delay cfg rng attempt);
      match
        let client = connect_client ~reconnect:true cfg in
        match f client with
        | v -> Ok v
        | exception e ->
          Client.close client;
          Error e
      with
      | Ok v -> v
      | Error e | exception e ->
        if transient e then begin
          Log.debug (fun m ->
              m "%s: reconnect attempt %d failed: %s" what (attempt + 1)
                (Printexc.to_string e));
          go (attempt + 1)
        end
        else raise e
    in
    go 0

  (* ---------------------------------------------------------------- *)
  (* Subscriber sessions                                                *)
  (* ---------------------------------------------------------------- *)

  type subscriber = {
    s_cfg : config;
    s_stream : string;
    s_catalog : Catalog.t;
    s_pbio : Pbio.Receiver.t;
    s_seen : (string, unit) Hashtbl.t;
        (** digests of descriptor blobs already learned — replayed
            descriptors after a reconnect are skipped, not re-registered *)
    s_rng : Prng.t;
    mutable s_client : Client.t option;
    mutable s_link : Link.t option;
    mutable s_schema : string;
    mutable s_reconnects : int;
    mutable s_closed : bool;
  }

  (** [subscribe cfg ~stream abi] connects and subscribes; failures on
      this {e first} attempt raise immediately (an unknown stream at
      session start is a configuration error, not an outage). *)
  let subscribe (cfg : config) ~(stream : string) (abi : Omf_machine.Abi.t) :
      subscriber =
    let client = connect_client cfg in
    match Client.subscribe client ~stream with
    | schema, link ->
      let catalog = Catalog.create abi in
      ignore
        (Omf_xml2wire.Xml2wire.register_schema ~source:("relay:" ^ stream)
           catalog schema);
      let pbio =
        Pbio.Receiver.create
          (Catalog.registry catalog)
          (Omf_machine.Memory.create abi)
      in
      { s_cfg = cfg; s_stream = stream; s_catalog = catalog; s_pbio = pbio
      ; s_seen = Hashtbl.create 8
      ; s_rng = Prng.create ~seed:cfg.jitter_seed ()
      ; s_client = Some client; s_link = Some link; s_schema = schema
      ; s_reconnects = 0; s_closed = false }
    | exception e ->
      Client.close client;
      raise e

  let drop_subscriber_link (s : subscriber) =
    (match s.s_client with Some c -> Client.close c | None -> ());
    s.s_client <- None;
    s.s_link <- None

  let resubscribe (s : subscriber) : unit =
    with_retries s.s_cfg s.s_rng
      ~what:(Printf.sprintf "subscriber %s" s.s_stream)
      (fun client ->
        let schema, link = Client.subscribe client ~stream:s.s_stream in
        s.s_client <- Some client;
        s.s_link <- Some link;
        s.s_schema <- schema;
        s.s_reconnects <- s.s_reconnects + 1;
        Log.info (fun m ->
            m "subscriber %s: resubscribed (reconnect %d)" s.s_stream
              s.s_reconnects))

  (** Blocking receive of the next decoded event, reconnecting across
      outages. [None] only after {!close_subscriber}; a hopeless outage
      raises {!Gave_up}. *)
  let rec recv_subscriber (s : subscriber) :
      (Format.t * Value.t) option =
    if s.s_closed then None
    else
      match s.s_link with
      | None ->
        resubscribe s;
        recv_subscriber s
      | Some link -> (
        match Link.recv link with
        | Some frame
          when Bytes.length frame > 0
               && Char.equal (Bytes.get frame 0) Endpoint.frame_descriptor ->
          let blob = Bytes.sub_string frame 1 (Bytes.length frame - 1) in
          let digest = Sha256.digest blob in
          if not (Hashtbl.mem s.s_seen digest) then begin
            Hashtbl.replace s.s_seen digest ();
            ignore (Pbio.Receiver.learn s.s_pbio blob)
          end;
          recv_subscriber s
        | Some frame
          when Bytes.length frame > 0
               && Char.equal (Bytes.get frame 0) Endpoint.frame_message ->
          Some
            (Pbio.Receiver.receive_value s.s_pbio
               (Bytes.sub frame 1 (Bytes.length frame - 1)))
        | Some _ | None ->
          (* graceful close or garbage: either way, this link is done *)
          if s.s_closed then None
          else begin
            drop_subscriber_link s;
            recv_subscriber s
          end
        | exception e ->
          if s.s_closed then None
          else if transient e then begin
            drop_subscriber_link s;
            recv_subscriber s
          end
          else raise e)

  let subscriber_schema (s : subscriber) = s.s_schema
  let subscriber_reconnects (s : subscriber) = s.s_reconnects
  let subscriber_catalog (s : subscriber) = s.s_catalog

  let subscriber_stats (s : subscriber) : Pbio.Receiver.stats =
    Pbio.Receiver.stats s.s_pbio

  let close_subscriber (s : subscriber) : unit =
    s.s_closed <- true;
    drop_subscriber_link s

  (* ---------------------------------------------------------------- *)
  (* Publisher sessions                                                 *)
  (* ---------------------------------------------------------------- *)

  type pending = { p_fmt : Format.t; p_frame : Bytes.t }

  type publisher = {
    b_cfg : config;
    b_stream : string;
    b_schema : string;
    b_window : int;
    b_catalog : Catalog.t;
    b_mem : Omf_machine.Memory.t;
    b_rng : Prng.t;
    b_buf : pending Queue.t;
        (** marshalled data frames not yet written to a live link *)
    b_announced : (int, unit) Hashtbl.t;
        (** format ids announced on the {e current} connection *)
    mutable b_client : Client.t option;
    mutable b_link : Link.t option;
    mutable b_reconnects : int;
    mutable b_closed : bool;
  }

  let stream_frame kind (body : Bytes.t) : Bytes.t =
    let b = Bytes.create (1 + Bytes.length body) in
    Bytes.set b 0 kind;
    Bytes.blit body 0 b 1 (Bytes.length body);
    b

  (** [publisher cfg ~stream ~schema abi] connects, advertises and
      enters publisher mode. First-attempt failures raise immediately,
      as for {!subscribe}. [window] bounds buffered data frames during
      an outage (default 1024). *)
  let publisher ?(window = 1024) (cfg : config) ~(stream : string)
      ~(schema : string) (abi : Omf_machine.Abi.t) : publisher =
    let client = connect_client cfg in
    match
      Client.advertise client ~stream ~schema;
      Client.publish client ~stream
    with
    | link ->
      let catalog = Catalog.create abi in
      ignore (Omf_xml2wire.Xml2wire.register_schema catalog schema);
      { b_cfg = cfg; b_stream = stream; b_schema = schema; b_window = window
      ; b_catalog = catalog; b_mem = Omf_machine.Memory.create abi
      ; b_rng = Prng.create ~seed:cfg.jitter_seed ()
      ; b_buf = Queue.create (); b_announced = Hashtbl.create 4
      ; b_client = Some client; b_link = Some link; b_reconnects = 0
      ; b_closed = false }
    | exception e ->
      Client.close client;
      raise e

  let publisher_format (p : publisher) (name : string) : Format.t option =
    Catalog.find_format p.b_catalog name

  let publisher_reconnects (p : publisher) = p.b_reconnects
  let publisher_buffered (p : publisher) = Queue.length p.b_buf

  let drop_publisher_link (p : publisher) =
    (match p.b_client with Some c -> Client.close c | None -> ());
    p.b_client <- None;
    p.b_link <- None

  (** Write every buffered frame to the live link, announcing each
      format's descriptor first if this connection has not seen it.
      [false] = the link broke (the unwritten tail stays buffered). *)
  let try_flush (p : publisher) : bool =
    match p.b_link with
    | None -> false
    | Some link -> (
      try
        while not (Queue.is_empty p.b_buf) do
          let e = Queue.peek p.b_buf in
          if not (Hashtbl.mem p.b_announced e.p_fmt.Format.id) then begin
            Link.send link
              (stream_frame Endpoint.frame_descriptor
                 (Bytes.of_string (Omf_pbio.Format_codec.encode e.p_fmt)));
            Hashtbl.replace p.b_announced e.p_fmt.Format.id ()
          end;
          Link.send link e.p_frame;
          ignore (Queue.pop p.b_buf)
        done;
        true
      with e ->
        if transient e then begin
          drop_publisher_link p;
          false
        end
        else raise e)

  (** Bounded reconnect: replay ADVERTISE (the relay may have restarted
      with no streams) and PUBLISH, and forget per-connection descriptor
      announcements. [false] = budget exhausted; buffered frames are
      kept for the next attempt. *)
  let reconnect_publisher (p : publisher) : bool =
    p.b_cfg.max_attempts > 0
    && match
         with_retries p.b_cfg p.b_rng
           ~what:(Printf.sprintf "publisher %s" p.b_stream)
           (fun client ->
             Client.advertise client ~stream:p.b_stream ~schema:p.b_schema;
             let link = Client.publish client ~stream:p.b_stream in
             p.b_client <- Some client;
             p.b_link <- Some link;
             Hashtbl.reset p.b_announced;
             p.b_reconnects <- p.b_reconnects + 1;
             Log.info (fun m ->
                 m "publisher %s: reconnected (reconnect %d, %d frames \
                    buffered)"
                   p.b_stream p.b_reconnects (Queue.length p.b_buf)))
       with
       | () -> true
       | exception Gave_up _ -> false

  (** [publish_value p fmt v] marshals and ships one event. During an
      outage the frame is buffered and reconnection attempted under the
      budget; a full window raises {!Overflow} (the event is {e not}
      enqueued), and an exhausted budget returns with the frame
      buffered for the next call. *)
  let publish_value (p : publisher) (fmt : Format.t) (v : Value.t) : unit =
    if p.b_closed then raise (Client.Error "publisher session closed");
    if Queue.length p.b_buf >= p.b_window then
      raise
        (Overflow
           (Printf.sprintf
              "publisher %s: in-flight window (%d frames) full while relay \
               unreachable"
              p.b_stream p.b_window));
    (* marshal now: the value is captured even if the relay is down *)
    Omf_machine.Memory.reset p.b_mem;
    let addr = Omf_pbio.Native.store p.b_mem fmt v in
    let frame =
      stream_frame Endpoint.frame_message (Pbio.message p.b_mem fmt addr)
    in
    Queue.add { p_fmt = fmt; p_frame = frame } p.b_buf;
    if not (try_flush p) then
      if reconnect_publisher p then ignore (try_flush p)

  (** Close, flushing buffered frames best-effort (no reconnect). *)
  let close_publisher (p : publisher) : unit =
    if not p.b_closed then begin
      p.b_closed <- true;
      ignore (try try_flush p with _ -> false);
      drop_publisher_link p
    end
end
