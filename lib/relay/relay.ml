(** The networked event relay: the {!Omf_backbone.Broker} served over
    real TCP by {!Omf_reactor.Reactor} event loops.

    This is the deployable form of the paper's event backbone (Figures 1
    and 3): capture points and subscribers are separate processes on
    separate machines; the relay hosts the broker — stream advertisement,
    per-stream format-descriptor caching with replay for late joiners,
    credential-scoped metadata — behind a small control protocol carried
    on the same length-prefixed TCP framing as the {!Omf_transport.Endpoint}
    descriptor/message frames it relays.

    Design points:

    - {b Single-threaded per shard.} One reactor loop owns every socket
      of its shard; non-blocking reads are reassembled into frames by
      {!Omf_reactor.Conn}, writes are queued per connection and flushed
      on writability. No locks on the hot path, deterministic fan-out
      order. {!Cluster} runs N such loops (one domain each) behind one
      acceptor, pinning each stream to a shard so per-stream ordering
      is preserved.
    - {b Bounded queues + backpressure.} Each subscriber has a bounded
      outbound queue of data frames. When a subscriber falls behind, the
      configured {!policy} decides: [Block] stops reading from the
      stream's publishers (loss-free — TCP pushes back to the capture
      point), [Drop_oldest] sheds the oldest queued data frame
      (descriptor frames are never shed, so the stream stays decodable),
      [Evict_slow] disconnects the laggard so the fast majority is
      unaffected.
    - {b Shared format machinery.} Descriptor frames are cached once per
      stream and replayed to every late joiner — the instance-level
      "compile once, serve many consumers" economics the paper's
      metadata design enables.
    - {b Graceful drain.} Shutdown stops accepting and reading, flushes
      every subscriber queue (up to a deadline), then closes.

    Control protocol (each frame: 1-byte kind + body; see PROTOCOLS.md
    section 11):

    - ['h'] HELLO     creds as ["k=v"] lines        -> ['o' banner]
    - ['a'] ADVERTISE ["stream\n<schema xml>"]      -> ['o']
    - ['p'] PUBLISH   ["stream"]                    -> ['o'], connection
      becomes the stream's publisher; subsequent ['D']/['M'] endpoint
      frames are fanned out verbatim
    - ['s'] SUBSCRIBE ["stream"]                    -> ['o' scoped-schema],
      then replayed ['D'] frames, then live frames
    - ['t'] STATS                                   -> ['o' "name value" lines]
    - ['e' message] is the error reply to any of the above. *)

open Omf_transport
module Broker = Omf_backbone.Broker
module Counters = Omf_util.Counters

let log = Logs.Src.create "omf.relay" ~doc:"TCP event relay"

module Log = (val Logs.src_log log)

type policy = Block | Drop_oldest | Evict_slow

let policy_to_string = function
  | Block -> "block"
  | Drop_oldest -> "drop-oldest"
  | Evict_slow -> "evict-slow-consumer"

let policy_of_string = function
  | "block" -> Some Block
  | "drop-oldest" -> Some Drop_oldest
  | "evict-slow-consumer" | "evict-slow" | "evict" -> Some Evict_slow
  | _ -> None

(* control / reply frame kinds (lowercase; relayed endpoint frames are
   the uppercase 'D'/'M' of Omf_transport.Endpoint) *)
let k_hello = 'h'
let k_advertise = 'a'
let k_publish = 'p'
let k_subscribe = 's'
let k_stats = 't'
let k_ok = 'o'
let k_err = 'e'


(* ------------------------------------------------------------------ *)
(* Connections and shards                                               *)
(* ------------------------------------------------------------------ *)

module Reactor = Omf_reactor.Reactor
module Rconn = Omf_reactor.Conn

type role =
  | Pending  (** control commands only, no stream attached yet *)
  | Publisher of { stream : string; link : Link.t }
      (** [link] is the broker's fan-out entry for the stream *)
  | Subscriber of { stream : string; unsubscribe : unit -> unit }

type state = Running | Draining | Stopped

type conn = {
  cid : int;  (** unique across the cluster: strided by shard count *)
  io : Rconn.t;  (** the reactor-side buffered connection driver *)
  mutable creds : (string * string) list;
  mutable role : role;
  mutable over_since : float option;
      (** when the queue first crossed the watermark (Evict_slow) *)
  mutable grace_timer : Reactor.timer option;
      (** pending eviction deadline on the shard's timer wheel *)
  mutable congesting : bool;
      (** this subscriber currently pauses its stream's publishers *)
  mutable mac : Macframe.state option;
      (** HMAC frame mode, negotiated at HELLO; sealing starts with the
          frame after the HELLO exchange in each direction *)
  mutable mac_rejects : int;  (** frames that failed authentication *)
  mutable home : t;  (** the shard whose loop owns this connection *)
}

(** Cluster-wide state: which shard owns which stream, and every shard
    (for merged stats). The pins table is the only cross-shard mutable
    structure on the request path; it is mutex-guarded and touched once
    per ADVERTISE/PUBLISH/SUBSCRIBE. *)
and shared = {
  pins_mu : Mutex.t;
  pins : (string, int) Hashtbl.t;  (** stream -> owning shard id *)
  mutable peers : t array;  (** every shard, indexed by shard id *)
}

and t = {
  host : string;
  port : int;
  policy : policy;
  max_queue : int;
  evict_grace : float;
      (** seconds a subscriber may stay over the watermark before
          [Evict_slow] dooms it; a consumer that drains back below the
          watermark in time is spared (momentary bursts are not
          slowness) *)
  sndbuf : int option;  (** forced SO_SNDBUF on accepted sockets *)
  auth_keys : (string * string) list;
      (** [key-id -> secret] table for HMAC frame negotiation; empty =
          authenticated mode unavailable *)
  mac_reject_limit : int;
      (** close a connection after this many unauthenticated frames *)
  drain_default_s : float;
  mutable lsock : Unix.file_descr option;
      (** shards in a cluster have no listener of their own *)
  mutable lreg : Reactor.registration option;
  reactor : Reactor.t;
  broker : Broker.t;
  conns : (int, conn) Hashtbl.t;  (** loop-thread only *)
  counters : Counters.t;
  shard_id : int;
  cid_stride : int;
  shared : shared option;  (** [None] for a standalone relay *)
  mutable next_cid : int;
  mutable state : state;
  mutable drain_timer : Reactor.timer option;
  mutable stop_flag : bool;  (** set by {!request_shutdown} *)
}

let port t = t.port

(** The embedded broker — for scope policies and direct inspection
    ([Broker.set_scope] installs credential-based field scoping exactly
    as for the in-process broker). *)
let broker t = t.broker

(** One counter snapshot: cluster-wide (summed over every shard) when
    sharded, so a STATS reply from any shard reports whole-relay
    traffic; just this relay's counters when standalone. *)
let counter_snapshot (t : t) : (string * int) list =
  match t.shared with
  | Some sh when Array.length sh.peers > 0 ->
    Counters.merged (Array.to_list (Array.map (fun s -> s.counters) sh.peers))
  | _ -> Counters.dump t.counters

let stats t : (string * int) list =
  counter_snapshot t
  @ List.concat_map
      (fun s ->
        [ (Printf.sprintf "stream.%s.published" s, Broker.published_count t.broker ~stream:s)
        ; (Printf.sprintf "stream.%s.subscribers" s, Broker.subscriber_count t.broker ~stream:s) ])
      (Broker.stream_names t.broker)

let stats_text t =
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf "%s %d\n" k v) (stats t))

(** Ask the loop to drain and stop. Safe from another thread or a signal
    handler: it only sets a flag and writes the wake pipe (the loop's
    per-iteration tick polls the flag — no mutex on this path). *)
let request_shutdown (t : t) : unit =
  t.stop_flag <- true;
  Reactor.wake t.reactor

(* ------------------------------------------------------------------ *)
(* Graceful drain                                                       *)
(* ------------------------------------------------------------------ *)

let total_queued (t : t) : int =
  Hashtbl.fold (fun _ c acc -> acc + Rconn.queued c.io) t.conns 0

(** Flush deadline reached (or everything flushed): doom what is left
    and stop the loop. *)
let finish_drain (t : t) =
  if t.state <> Stopped then begin
    t.state <- Stopped;
    (match t.drain_timer with
    | Some tm ->
      Reactor.cancel t.reactor tm;
      t.drain_timer <- None
    | None -> ());
    let live = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    List.iter (fun c -> Rconn.doom c.io "shutdown") live;
    Reactor.stop t.reactor;
    Log.info (fun m -> m "shard %d stopped" t.shard_id)
  end

let check_drain_done (t : t) =
  if t.state = Draining && total_queued t = 0 then finish_drain t

(** Stop accepting and reading, keep flushing subscriber queues until
    they empty or the drain deadline fires. Loop-thread only. *)
let begin_drain (t : t) =
  if t.state = Running then begin
    t.state <- Draining;
    (match t.lreg with
    | Some r ->
      Reactor.deregister t.reactor r;
      t.lreg <- None
    | None -> ());
    (match t.lsock with
    | Some s ->
      (try Unix.close s with Unix.Unix_error _ -> ());
      t.lsock <- None
    | None -> ());
    Hashtbl.iter (fun _ c -> Rconn.set_read_intent c.io false) t.conns;
    t.drain_timer <-
      Some (Reactor.after t.reactor t.drain_default_s (fun () -> finish_drain t));
    Log.info (fun m -> m "draining %d connections" (Hashtbl.length t.conns));
    check_drain_done t
  end

(* ------------------------------------------------------------------ *)
(* Outbound queues and backpressure                                     *)
(* ------------------------------------------------------------------ *)

let enqueue_entry (c : conn) ~droppable (frame : Bytes.t) =
  (* under negotiated HMAC mode every outbound frame is sealed; sealing
     happens at enqueue time so nonces follow queue order exactly *)
  let frame =
    match c.mac with None -> frame | Some st -> Macframe.seal_next st frame
  in
  Rconn.send c.io ~droppable frame

let reply (c : conn) kind (body : string) =
  let b = Bytes.create (1 + String.length body) in
  Bytes.set b 0 kind;
  Bytes.blit_string body 0 b 1 (String.length body);
  enqueue_entry c ~droppable:false b

let reply_ok c body = reply c k_ok body

let reply_err (t : t) c msg =
  Counters.incr t.counters "errors";
  reply c k_err msg

(** Under [Block]: is some subscriber of [stream] over the watermark? *)
let stream_congested (t : t) (stream : string) : bool =
  t.policy = Block
  && Hashtbl.fold
       (fun _ c acc ->
         acc
         || match c.role with
            | Subscriber s ->
              String.equal s.stream stream
              && Rconn.alive c.io
              && Rconn.queued_droppable c.io >= t.max_queue
            | _ -> false)
       t.conns false

let set_publishers_reading (t : t) (stream : string) (b : bool) =
  Hashtbl.iter
    (fun _ c ->
      match c.role with
      | Publisher p when String.equal p.stream stream ->
        Rconn.set_read_intent c.io (b && t.state = Running)
      | _ -> ())
    t.conns

let maybe_resume_stream (t : t) (stream : string) =
  if t.policy = Block && t.state = Running && not (stream_congested t stream)
  then set_publishers_reading t stream true

let clear_grace (c : conn) =
  c.over_since <- None;
  match c.grace_timer with
  | Some tm ->
    Reactor.cancel c.home.reactor tm;
    c.grace_timer <- None
  | None -> ()

(** Doom [c] as a slow consumer. *)
let evict_slow (t : t) (c : conn) =
  Counters.incr t.counters "subscribers_evicted";
  Log.info (fun m -> m "conn %d: evicting slow consumer" c.cid);
  Rconn.doom c.io "slow consumer evicted"

(** Start the eviction grace clock: if the subscriber is still over the
    watermark when the timer fires, it is evicted — an actively
    draining consumer that recovers in time is spared ({!conn_progress}
    cancels the timer). *)
let arm_grace (t : t) (c : conn) =
  match c.grace_timer with
  | Some _ -> ()
  | None ->
    c.grace_timer <-
      Some
        (Reactor.after t.reactor t.evict_grace (fun () ->
             c.grace_timer <- None;
             match c.over_since with
             | Some _ when Rconn.alive c.io -> evict_slow t c
             | _ -> ()))

(** Enqueue a relayed stream frame onto a subscriber, applying the
    backpressure policy. Raises {!Link.Closed} when the subscriber is
    dead so the broker skips it. *)
let enqueue_relayed (t : t) (c : conn) (frame : Bytes.t) =
  if not (Rconn.alive c.io) then raise Link.Closed;
  let droppable =
    not
      (Bytes.length frame > 0
      && Char.equal (Bytes.get frame 0) Endpoint.frame_descriptor)
  in
  if droppable && Rconn.queued_droppable c.io >= t.max_queue then begin
    match t.policy with
    | Block ->
      (* over the high-watermark: pause the stream's publishers until
         this queue drains ({!conn_progress} resumes them); nothing is
         lost — TCP pushes back to the capture point *)
      if not c.congesting then begin
        c.congesting <- true;
        match c.role with
        | Subscriber s -> set_publishers_reading t s.stream false
        | Publisher _ | Pending -> ()
      end
    | Drop_oldest ->
      if Rconn.drop_oldest_droppable c.io then
        Counters.incr t.counters "frames_dropped"
    | Evict_slow -> (
      (* over the watermark: start the grace clock rather than evicting
         outright.  The queue may grow past the watermark during the
         grace window; it is bounded by grace x publish rate. *)
      match c.over_since with
      | None ->
        c.over_since <- Some (Reactor.now ());
        arm_grace t c
      | Some _ -> ())
  end;
  enqueue_entry c ~droppable frame;
  Counters.incr t.counters "frames_out"

(* ------------------------------------------------------------------ *)
(* Frame dispatch                                                       *)
(* ------------------------------------------------------------------ *)

let parse_creds (s : string) : (string * string) list =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         match String.index_opt line '=' with
         | None -> None
         | Some i ->
           Some
             ( String.sub line 0 i
             , String.sub line (i + 1) (String.length line - i - 1) ))

(** Reject a connection at the protocol level: count it, reply, doom
    (the doom's opportunistic flush usually gets the ['e'] out). *)
let protocol_reject (t : t) (c : conn) (msg : string) =
  Counters.incr t.counters "frames_rejected";
  Log.warn (fun m -> m "conn %d: %s" c.cid msg);
  reply_err t c msg;
  Rconn.doom c.io "protocol error"

(** HELLO: record credentials and negotiate the frame mode. With
    [auth=hmac] + a known [key-id], the ['o'] reply is sent in the
    clear and every subsequent frame in both directions is sealed
    ({!Macframe}); an unknown key or unsupported mode is refused and
    the connection dropped. A client that reconnects after an outage
    marks itself with an [omf-reconnect] credential so operators can
    see churn in STATS. *)
let handle_hello (t : t) (c : conn) (body : string) =
  c.creds <- parse_creds body;
  if List.mem_assoc "omf-reconnect" c.creds then
    Counters.incr t.counters "reconnects_accepted";
  match List.assoc_opt "auth" c.creds with
  | None -> reply_ok c "omf-relay 1"
  | Some "hmac" -> (
    match List.assoc_opt "key-id" c.creds with
    | None ->
      Counters.incr t.counters "auth_denied";
      reply_err t c "hello: auth=hmac requires key-id";
      Rconn.doom c.io "auth denied"
    | Some id -> (
      match List.assoc_opt id t.auth_keys with
      | None ->
        Counters.incr t.counters "auth_denied";
        reply_err t c (Printf.sprintf "hello: unknown key-id %s" id);
        Rconn.doom c.io "auth denied"
      | Some key ->
        Counters.incr t.counters "auth_sessions";
        reply_ok c "omf-relay 1 mac";
        (* armed after the reply: the reply itself is plaintext, the
           next outbound frame is the first sealed one *)
        c.mac <- Some (Macframe.state ~key)))
  | Some other ->
    Counters.incr t.counters "auth_denied";
    reply_err t c (Printf.sprintf "hello: unsupported auth mode %s" other);
    Rconn.doom c.io "auth denied"

(** Which shard owns [stream]? First toucher pins it (standalone relays
    always own everything). Thread-safe; called from any shard loop. *)
let stream_owner (t : t) (stream : string) : t =
  match t.shared with
  | None -> t
  | Some sh ->
    Mutex.lock sh.pins_mu;
    let owner =
      match Hashtbl.find_opt sh.pins stream with
      | Some id -> sh.peers.(id)
      | None ->
        Hashtbl.replace sh.pins stream t.shard_id;
        t
    in
    Mutex.unlock sh.pins_mu;
    owner

let rec handle_control (t : t) (c : conn) kind (body : string) =
  if Char.equal kind k_hello then handle_hello t c body
  else if Char.equal kind k_stats then reply_ok c (stats_text t)
  else if Char.equal kind k_advertise then begin
    match String.index_opt body '\n' with
    | None -> reply_err t c "advertise: want \"stream\\nschema\""
    | Some i -> (
      let stream = String.sub body 0 i in
      let owner = stream_owner t stream in
      if owner != t then route t owner c kind body stream
      else
        let schema = String.sub body (i + 1) (String.length body - i - 1) in
        match Broker.advertise t.broker ~stream ~schema with
        | () ->
          Counters.incr t.counters "advertisements";
          reply_ok c ""
        | exception Omf_xschema.Schema.Schema_error m ->
          reply_err t c (Printf.sprintf "advertise %s: %s" stream m))
  end
  else if Char.equal kind k_publish then begin
    match c.role with
    | Publisher _ | Subscriber _ ->
      reply_err t c "publish: connection already has a role"
    | Pending -> (
      let owner = stream_owner t body in
      if owner != t then route t owner c kind body body
      else
        match Broker.publisher_link t.broker ~stream:body with
        | link ->
          c.role <- Publisher { stream = body; link };
          Counters.incr t.counters "publishers";
          (* joining a stream that is already congested: start paused *)
          if stream_congested t body then Rconn.set_read_intent c.io false;
          reply_ok c ""
        | exception Broker.Unknown_stream s ->
          reply_err t c (Printf.sprintf "publish: unknown stream %s" s))
  end
  else if Char.equal kind k_subscribe then begin
    match c.role with
    | Publisher _ | Subscriber _ ->
      reply_err t c "subscribe: connection already has a role"
    | Pending -> (
      let owner = stream_owner t body in
      if owner != t then route t owner c kind body body
      else
        match Broker.metadata_for t.broker ~stream:body c.creds with
        | schema ->
          (* reply first so the scoped schema precedes replayed frames *)
          reply_ok c schema;
          let link =
            { Link.send = (fun frame -> enqueue_relayed t c frame)
            ; recv = (fun () -> None)
            ; close = (fun () -> ()) }
          in
          let unsubscribe =
            Broker.subscribe t.broker ~stream:body ~creds:c.creds link
          in
          c.role <- Subscriber { stream = body; unsubscribe };
          Counters.incr t.counters "subscriptions"
        | exception Broker.Unknown_stream s ->
          reply_err t c (Printf.sprintf "subscribe: unknown stream %s" s)
        | exception Broker.Access_denied m ->
          reply_err t c (Printf.sprintf "subscribe: access denied: %s" m))
  end
  else protocol_reject t c (Printf.sprintf "unknown command %C" kind)

(** The stream named by this command lives on another shard. A
    still-roleless connection migrates there (fd, decoder backlog, write
    queue and MAC state travel; the command re-dispatches on the target
    loop, then any buffered frames — per-connection order preserved). A
    connection that already has a role is wedded to its shard's broker,
    so the command is refused instead. *)
and route (src : t) (target : t) (c : conn) kind (body : string)
    (stream : string) =
  match c.role with
  | Publisher _ | Subscriber _ ->
    reply_err src c
      (Printf.sprintf "%s: stream %s is pinned to another shard"
         (match kind with
         | 'a' -> "advertise"
         | 'p' -> "publish"
         | _ -> "subscribe")
         stream)
  | Pending ->
    Counters.incr src.counters "shard_handoffs";
    Hashtbl.remove src.conns c.cid;
    Rconn.detach c.io;
    Reactor.inject target.reactor (fun () ->
        if target.state = Running && Rconn.alive c.io then begin
          c.home <- target;
          Hashtbl.replace target.conns c.cid c;
          Rconn.adopt target.reactor c.io;
          handle_control target c kind body
        end
        else Rconn.doom c.io "shard draining")

let handle_frame (t : t) (c : conn) (frame : Bytes.t) =
  Counters.incr t.counters "frames_in";
  if Bytes.length frame = 0 then protocol_reject t c "empty frame"
  else
    let kind = Bytes.get frame 0 in
    let is_stream_frame =
      Char.equal kind Endpoint.frame_descriptor
      || Char.equal kind Endpoint.frame_message
    in
    if is_stream_frame then
      match c.role with
      | Publisher p ->
        if Char.equal kind Endpoint.frame_message then
          Counters.incr t.counters "events_relayed";
        Link.send p.link frame
      | Pending -> protocol_reject t c "stream frame before PUBLISH"
      | Subscriber _ ->
        protocol_reject t c "subscriber connections are receive-only"
    else
      match c.role with
      | Publisher _ | Pending ->
        handle_control t c kind
          (Bytes.sub_string frame 1 (Bytes.length frame - 1))
      | Subscriber _ ->
        (* replies would interleave with relayed frames: refuse *)
        protocol_reject t c "subscriber connections are receive-only"

(** Unseal an inbound frame on an authenticated connection. A frame
    that fails authentication is counted and skipped; once the reject
    limit is reached the connection is doomed. [None] = drop frame. *)
let unseal (t : t) (c : conn) (frame : Bytes.t) : Bytes.t option =
  match c.mac with
  | None -> Some frame
  | Some st -> (
    match Macframe.open_next st frame with
    | payload -> Some payload
    | exception Macframe.Auth_error msg ->
      Counters.incr t.counters "frames_rejected";
      c.mac_rejects <- c.mac_rejects + 1;
      Log.warn (fun m ->
          m "conn %d: rejected frame (%d/%d): %s" c.cid c.mac_rejects
            t.mac_reject_limit msg);
      if c.mac_rejects >= t.mac_reject_limit then
        Rconn.doom c.io "authentication failures";
      None)

(* ------------------------------------------------------------------ *)
(* Reactor callbacks                                                    *)
(* ------------------------------------------------------------------ *)

(** One complete inbound frame. The callbacks consult [c.home] rather
    than a captured shard so a handed-off connection dispatches on its
    adopting shard. *)
let conn_frame (c : conn) (frame : Bytes.t) =
  let t = c.home in
  match unseal t c frame with
  | None -> ()
  | Some frame -> (
    try handle_frame t c frame with
    | Frame.Frame_error m | Broker.Unknown_stream m ->
      Counters.incr t.counters "frames_rejected";
      Rconn.doom c.io m
    | Link.Closed -> ()
    (* subscriber died mid-fanout; its own doom is already set *))

let conn_closed (c : conn) (reason : string) =
  let t = c.home in
  clear_grace c;
  Hashtbl.remove t.conns c.cid;
  (match c.role with
  | Subscriber s ->
    s.unsubscribe ();
    maybe_resume_stream t s.stream
  | Publisher _ | Pending -> ());
  if t.state = Draining then check_drain_done t;
  Log.debug (fun m -> m "conn %d closed (%s)" c.cid reason)

(** The write queue moved: a recovered consumer stops its eviction
    clock and lifts any [Block] pause; during a drain, an emptied queue
    may complete it. *)
let conn_progress (c : conn) =
  let t = c.home in
  if Rconn.queued_droppable c.io < t.max_queue then begin
    clear_grace c;
    if c.congesting then begin
      c.congesting <- false;
      match c.role with
      | Subscriber s -> maybe_resume_stream t s.stream
      | Publisher _ | Pending -> ()
    end
  end;
  if t.state = Draining && Rconn.queued c.io = 0 then check_drain_done t

(** Wire an accepted socket into shard [t] (loop-thread only; the
    cluster acceptor reaches this through {!Reactor.inject}). *)
let adopt_fd (t : t) (fd : Unix.file_descr) =
  if t.state <> Running then (
    try Unix.close fd with Unix.Unix_error _ -> ())
  else begin
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    (match t.sndbuf with
    | Some n -> (
      try Unix.setsockopt_int fd Unix.SO_SNDBUF n
      with Unix.Unix_error _ -> ())
    | None -> ());
    let cid = t.next_cid in
    t.next_cid <- cid + t.cid_stride;
    let cell = ref None in
    let the_conn () = Option.get !cell in
    let io =
      Rconn.attach t.reactor fd
        ~on_frame:(fun _ frame -> conn_frame (the_conn ()) frame)
        ~on_close:(fun _ reason -> conn_closed (the_conn ()) reason)
        ~on_progress:(fun _ -> conn_progress (the_conn ()))
        ~on_decode_error:(fun _ msg ->
          (* length-framing corruption is unrecoverable: count the
             malformed-frame disconnect alongside MAC rejects *)
          let c = the_conn () in
          Counters.incr c.home.counters "frames_rejected";
          Log.warn (fun m -> m "conn %d: %s" c.cid msg))
        ~on_bytes:(fun _ dir n ->
          let c = the_conn () in
          Counters.incr c.home.counters ~by:n
            (match dir with `In -> "bytes_in" | `Out -> "bytes_out"))
        ()
    in
    let c =
      { cid; io; creds = []; role = Pending; over_since = None
      ; grace_timer = None; congesting = false; mac = None; mac_rejects = 0
      ; home = t }
    in
    cell := Some c;
    Hashtbl.replace t.conns cid c;
    Counters.incr t.counters "connections";
    Log.debug (fun m -> m "conn %d accepted (shard %d)" cid t.shard_id)
  end

(* ------------------------------------------------------------------ *)
(* Construction and the loop                                            *)
(* ------------------------------------------------------------------ *)

let create_shard ~host ~port ~policy ~max_queue ~evict_grace ~sndbuf
    ~auth_keys ~mac_reject_limit ~drain_s ~shard_id ~cid_stride ~shared () : t
    =
  { host; port; policy; max_queue; evict_grace; sndbuf; auth_keys
  ; mac_reject_limit; drain_default_s = drain_s; lsock = None; lreg = None
  ; reactor = Reactor.create (); broker = Broker.create ()
  ; conns = Hashtbl.create 64; counters = Counters.create (); shard_id
  ; cid_stride; shared; next_cid = shard_id + 1; state = Running
  ; drain_timer = None; stop_flag = false }

let install_listener (t : t) (lsock : Unix.file_descr) =
  Unix.set_nonblock lsock;
  t.lsock <- Some lsock;
  let rec accept_all () =
    match Unix.accept ~cloexec:true lsock with
    | fd, _ ->
      adopt_fd t fd;
      accept_all ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  t.lreg <-
    Some
      (Reactor.register t.reactor lsock ~on_readable:accept_all
         ~on_writable:ignore)

let create ?(host = "127.0.0.1") ?(port = 0) ?(policy = Block)
    ?(max_queue = 256) ?(evict_grace_s = 1.0) ?sndbuf ?(auth_keys = [])
    ?(mac_reject_limit = 3) ?(drain_s = 2.0) () : t =
  let lsock, bound_port = Tcp.listener ~host ~port () in
  let t =
    create_shard ~host ~port:bound_port ~policy ~max_queue
      ~evict_grace:evict_grace_s ~sndbuf ~auth_keys ~mac_reject_limit
      ~drain_s ~shard_id:0 ~cid_stride:1 ~shared:None ()
  in
  install_listener t lsock;
  t

(** Run the loop until {!request_shutdown} (then drain) completes. *)
let run (t : t) : unit =
  (match t.lsock with
  | Some _ ->
    Log.info (fun m ->
        m "listening on %s:%d (policy %s, max queue %d)" t.host t.port
          (policy_to_string t.policy) t.max_queue)
  | None -> Log.debug (fun m -> m "shard %d loop running" t.shard_id));
  Reactor.set_on_tick t.reactor (fun () ->
      if t.stop_flag && t.state = Running then begin_drain t);
  Reactor.run t.reactor;
  Reactor.dispose t.reactor

(* ------------------------------------------------------------------ *)
(* Sharded cluster                                                      *)
(* ------------------------------------------------------------------ *)

(** N relay shards — one reactor loop per domain — behind a single
    blocking acceptor thread that deals accepted sockets out
    round-robin. The first ADVERTISE/PUBLISH/SUBSCRIBE naming a stream
    pins it to the shard that received it; a connection landing on the
    wrong shard migrates there before taking a role, so every frame of
    a stream flows through exactly one loop and per-stream order is
    what a standalone relay gives. *)
module Cluster = struct
  type relay = t

  type t = {
    lsock : Unix.file_descr;
    cport : int;
    shards : relay array;
    mutable acceptor : Thread.t option;
    mutable domains : unit Domain.t array;
    mutable stopped : bool;
    mutable joined : bool;
  }

  let start ?(host = "127.0.0.1") ?(port = 0) ?(shards = 1)
      ?(policy = Block) ?(max_queue = 256) ?(evict_grace_s = 1.0) ?sndbuf
      ?(auth_keys = []) ?(mac_reject_limit = 3) ?(drain_s = 2.0) () : t =
    if shards < 1 then invalid_arg "Cluster.start: shards must be >= 1";
    let lsock, bound_port = Tcp.listener ~host ~port () in
    let shared =
      { pins_mu = Mutex.create (); pins = Hashtbl.create 32; peers = [||] }
    in
    let arr =
      Array.init shards (fun i ->
          create_shard ~host ~port:bound_port ~policy ~max_queue
            ~evict_grace:evict_grace_s ~sndbuf ~auth_keys ~mac_reject_limit
            ~drain_s ~shard_id:i ~cid_stride:shards ~shared:(Some shared) ())
    in
    shared.peers <- arr;
    let cl =
      { lsock; cport = bound_port; shards = arr; acceptor = None
      ; domains = [||]; stopped = false; joined = false }
    in
    cl.domains <- Array.map (fun s -> Domain.spawn (fun () -> run s)) arr;
    let acceptor () =
      let next = ref 0 in
      let continue = ref true in
      while !continue do
        match Unix.accept ~cloexec:true lsock with
        | fd, _ ->
          let shard = arr.(!next mod shards) in
          incr next;
          Reactor.inject shard.reactor (fun () -> adopt_fd shard fd)
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | exception Unix.Unix_error _ ->
          (* listener shut down (or died): stop dealing *)
          continue := false
      done
    in
    cl.acceptor <- Some (Thread.create acceptor ());
    Log.info (fun m ->
        m "cluster listening on %s:%d (%d shard%s, policy %s)" host
          bound_port shards
          (if shards = 1 then "" else "s")
          (policy_to_string policy));
    cl

  let port (cl : t) = cl.cport
  let shard_count (cl : t) = Array.length cl.shards

  (** Cluster-wide counter totals (per-shard counters summed). Broker
      gauges are per-shard state and are only reported over the wire
      (STATS is answered by the shard that owns the connection). *)
  let stats (cl : t) : (string * int) list =
    Counters.merged
      (Array.to_list (Array.map (fun s -> s.counters) cl.shards))

  (** Signal-handler safe: unblock the acceptor and ask every shard to
      drain. *)
  let request_shutdown (cl : t) =
    cl.stopped <- true;
    (try Unix.shutdown cl.lsock Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    Array.iter request_shutdown cl.shards

  (** Join the acceptor and every shard domain (call after
      {!request_shutdown}). *)
  let wait (cl : t) =
    if not cl.joined then begin
      cl.joined <- true;
      Option.iter Thread.join cl.acceptor;
      Array.iter Domain.join cl.domains;
      try Unix.close cl.lsock with Unix.Unix_error _ -> ()
    end

  let stop (cl : t) =
    request_shutdown cl;
    wait cl
end

(* ------------------------------------------------------------------ *)
(* Hosted convenience                                                   *)
(* ------------------------------------------------------------------ *)

type handle = { relay : t; thread : Thread.t }

(** [start ()] runs a relay loop in a background thread (ephemeral port
    by default) — the embedding used by tests and benchmarks. *)
let start ?host ?port ?policy ?max_queue ?evict_grace_s ?sndbuf ?auth_keys
    ?mac_reject_limit ?drain_s () : handle =
  let relay =
    create ?host ?port ?policy ?max_queue ?evict_grace_s ?sndbuf ?auth_keys
      ?mac_reject_limit ?drain_s ()
  in
  { relay; thread = Thread.create run relay }

let relay (h : handle) : t = h.relay

(** [stop h] requests a graceful drain and waits for the loop to end. *)
let stop (h : handle) : unit =
  request_shutdown h.relay;
  Thread.join h.thread
(* ------------------------------------------------------------------ *)
(* Client                                                               *)
(* ------------------------------------------------------------------ *)

(** Blocking client for the relay protocol. One connection carries one
    role: after {!Client.publish} the link is an
    {!Omf_transport.Endpoint.Sender} channel, after {!Client.subscribe}
    it is receive-only. *)
module Client = struct
  exception Error of string

  type t = { link : Link.t }

  let ctrl kind (body : string) : Bytes.t =
    let b = Bytes.create (1 + String.length body) in
    Bytes.set b 0 kind;
    Bytes.blit_string body 0 b 1 (String.length body);
    b

  (* every transport-level failure surfaces as Client.Error with a
     readable message; raw Unix_error / Tcp_error never escape *)
  let reraise (context : string) = function
    | Error m -> raise (Error m)
    | Link.Closed -> raise (Error (context ^ ": connection closed"))
    | Link.Timeout -> raise (Error (context ^ ": timeout"))
    | Tcp.Tcp_error m | Frame.Frame_error m ->
      raise (Error (context ^ ": " ^ m))
    | Macframe.Auth_error m ->
      raise (Error (context ^ ": authentication: " ^ m))
    | End_of_file -> raise (Error (context ^ ": connection closed"))
    | Unix.Unix_error (e, fn, _) ->
      raise (Error (Printf.sprintf "%s: %s: %s" context fn (Unix.error_message e)))
    | e -> raise e

  let rpc (t : t) kind body : string =
    match
      Link.send t.link (ctrl kind body);
      Link.recv t.link
    with
    | None -> raise (Error "relay closed the connection")
    | Some r when Bytes.length r >= 1 && Char.equal (Bytes.get r 0) k_ok ->
      Bytes.sub_string r 1 (Bytes.length r - 1)
    | Some r when Bytes.length r >= 1 && Char.equal (Bytes.get r 0) k_err ->
      raise (Error (Bytes.sub_string r 1 (Bytes.length r - 1)))
    | Some _ -> raise (Error "malformed reply")
    | exception e -> reraise "relay rpc" e

  let creds_text creds =
    String.concat "\n" (List.map (fun (k, v) -> k ^ "=" ^ v) creds)

  (** [connect ~port ()] dials and HELLOs. With [?auth:(key_id, key)]
      the HELLO requests HMAC frame mode; the handshake itself is
      plaintext and every later frame is sealed. Failures — unreachable
      port, handshake timeout, an ['e'] reply — raise {!Error} with the
      reason, and the socket is closed on every error path. *)
  let connect ?(host = "127.0.0.1") ~port ?(creds = []) ?auth
      ?connect_timeout_s ?io_timeout_s () : t =
    let link =
      try Tcp.connect ~host ~port ?connect_timeout_s ?io_timeout_s ()
      with e -> reraise (Printf.sprintf "relay connect %s:%d" host port) e
    in
    try
      let hello_creds =
        match auth with
        | None -> creds
        | Some (key_id, _) ->
          creds @ [ ("auth", "hmac"); ("key-id", key_id) ]
      in
      let banner = rpc { link } k_hello (creds_text hello_creds) in
      match auth with
      | None -> { link }
      | Some (_, key) ->
        (* the relay must have granted the mode we asked for *)
        if not (String.length banner >= 3
                && String.sub banner (String.length banner - 3) 3 = "mac")
        then raise (Error "relay did not negotiate authenticated framing");
        { link = Macframe.wrap (Macframe.state ~key) link }
    with e ->
      (* no fd leak on handshake failure *)
      (try Link.close link with _ -> ());
      reraise "relay handshake" e

  let advertise (t : t) ~(stream : string) ~(schema : string) : unit =
    ignore (rpc t k_advertise (stream ^ "\n" ^ schema))

  let stats (t : t) : (string * int) list =
    Counters.of_text (rpc t k_stats "")

  (** [publish t ~stream] switches the connection into publisher mode
      and returns the raw link: drive it with
      {!Omf_transport.Endpoint.Sender}. *)
  let publish (t : t) ~(stream : string) : Link.t =
    ignore (rpc t k_publish stream);
    t.link

  (** [subscribe t ~stream] returns the (credential-scoped) stream
      schema and the raw link now carrying descriptor/message frames. *)
  let subscribe (t : t) ~(stream : string) : string * Link.t =
    let schema = rpc t k_subscribe stream in
    (schema, t.link)

  let close (t : t) = try Link.close t.link with _ -> ()
end

(* ------------------------------------------------------------------ *)
(* A fully wired remote consumer (mirror of Broker.attach_consumer)     *)
(* ------------------------------------------------------------------ *)

module Catalog = Omf_xml2wire.Catalog

type consumer = {
  client : Client.t;
  catalog : Catalog.t;
  endpoint : Endpoint.Receiver.t;
  schema : string;  (** the scoped schema the relay served *)
}

(** [attach_consumer ~port ~stream abi] connects, subscribes, registers
    the served (scoped) schema in a fresh catalog for [abi] and wraps
    the link in an endpoint receiver. *)
let attach_consumer ?host ~port ?creds ?auth ~(stream : string)
    (abi : Omf_machine.Abi.t) : consumer =
  let client = Client.connect ?host ~port ?creds ?auth () in
  let schema, link =
    try Client.subscribe client ~stream
    with e ->
      Client.close client;
      raise e
  in
  let catalog = Catalog.create abi in
  ignore
    (Omf_xml2wire.Xml2wire.register_schema ~source:("relay:" ^ stream) catalog
       schema);
  let endpoint =
    Endpoint.Receiver.create link
      (Catalog.registry catalog)
      (Omf_machine.Memory.create abi)
  in
  { client; catalog; endpoint; schema }

(** Blocking receive of the next decoded event ([None] = relay closed
    the stream). *)
let recv (c : consumer) : (Omf_pbio.Format.t * Omf_pbio.Value.t) option =
  Endpoint.Receiver.recv_value c.endpoint

let close_consumer (c : consumer) : unit = Client.close c.client

(* ------------------------------------------------------------------ *)
(* Fault-tolerant sessions                                              *)
(* ------------------------------------------------------------------ *)

module Pbio = Omf_pbio.Pbio
module Format = Omf_pbio.Format
module Value = Omf_pbio.Value
module Prng = Omf_util.Prng
module Sha256 = Omf_util.Sha256

(** Fault-tolerant relay sessions: {!Client} plus automatic
    reconnect/replay, mirroring the metadata layer's fallback-chain
    philosophy at the transport layer — a dropped TCP connection
    degrades to a retry loop instead of killing the consumer.

    A {e subscriber session} detects a broken link (close, reset, MAC
    failure, deadline), reconnects under a retry budget with
    exponential backoff + jitter, replays its HELLO/SUBSCRIBE state,
    and relies on the relay's cached descriptor replay to stay
    decodable; descriptor frames already learned are deduplicated by
    content digest, so a relayd restart cannot corrupt or re-register
    formats.

    A {e publisher session} replays HELLO/ADVERTISE/PUBLISH on
    reconnect, re-announces format descriptors on the fresh connection
    (the relay restarts empty), and buffers data frames that could not
    be written — up to a bounded in-flight window; past the window,
    {!Overflow} is raised rather than silently dropping or blocking
    forever. *)
module Session = struct
  exception Gave_up of string
  (** The reconnect budget for one outage was exhausted. *)

  exception Overflow of string
  (** The publisher's bounded in-flight window is full while the relay
      is unreachable. *)

  type config = {
    host : string;
    port : int;
    creds : (string * string) list;
    auth : (string * string) option;  (** [(key-id, secret)] *)
    max_attempts : int;  (** reconnect attempts per outage *)
    base_delay_s : float;  (** first backoff step *)
    max_delay_s : float;  (** backoff cap *)
    connect_timeout_s : float option;
    io_timeout_s : float option;
    jitter_seed : int64;  (** deterministic jitter (tests) *)
  }

  let config ?(host = "127.0.0.1") ?(creds = []) ?auth ?(max_attempts = 10)
      ?(base_delay_s = 0.05) ?(max_delay_s = 2.0)
      ?(connect_timeout_s = 5.0) ?io_timeout_s ?(jitter_seed = 1L) ~port () :
      config =
    { host; port; creds; auth; max_attempts; base_delay_s; max_delay_s
    ; connect_timeout_s = Some connect_timeout_s; io_timeout_s; jitter_seed }

  (* attempt k (0-based) sleeps min(cap, base * 2^k) scaled into
     [0.5, 1.0) — full-jitter halves thundering-herd resubscription
     after a relayd restart while keeping tests deterministic via the
     seeded PRNG *)
  let backoff_delay (cfg : config) rng attempt =
    let d = cfg.base_delay_s *. (2.0 ** float_of_int attempt) in
    Float.min cfg.max_delay_s d *. (0.5 +. (0.5 *. Prng.float rng))

  let connect_client ?(reconnect = false) (cfg : config) : Client.t =
    let creds =
      if reconnect then cfg.creds @ [ ("omf-reconnect", "1") ] else cfg.creds
    in
    Client.connect ~host:cfg.host ~port:cfg.port ~creds ?auth:cfg.auth
      ?connect_timeout_s:cfg.connect_timeout_s ?io_timeout_s:cfg.io_timeout_s
      ()

  let transient = function
    | Client.Error _ | Link.Closed | Link.Timeout | End_of_file
    | Tcp.Tcp_error _ | Frame.Frame_error _ | Macframe.Auth_error _
    | Unix.Unix_error _ ->
      true
    | _ -> false

  (** Reconnect and replay session state: dial a fresh connection and
      run [f] (which re-issues SUBSCRIBE or ADVERTISE/PUBLISH) against
      it, retrying transient failures under the budget. *)
  let with_retries (cfg : config) rng ~(what : string) (f : Client.t -> 'a) :
      'a =
    let rec go attempt =
      if attempt >= cfg.max_attempts then
        raise
          (Gave_up
             (Printf.sprintf "%s: gave up after %d reconnect attempts" what
                cfg.max_attempts));
      Thread.delay (backoff_delay cfg rng attempt);
      match
        let client = connect_client ~reconnect:true cfg in
        match f client with
        | v -> Ok v
        | exception e ->
          Client.close client;
          Error e
      with
      | Ok v -> v
      | Error e | exception e ->
        if transient e then begin
          Log.debug (fun m ->
              m "%s: reconnect attempt %d failed: %s" what (attempt + 1)
                (Printexc.to_string e));
          go (attempt + 1)
        end
        else raise e
    in
    go 0

  (* ---------------------------------------------------------------- *)
  (* Subscriber sessions                                                *)
  (* ---------------------------------------------------------------- *)

  type subscriber = {
    s_cfg : config;
    s_stream : string;
    s_catalog : Catalog.t;
    s_pbio : Pbio.Receiver.t;
    s_seen : (string, unit) Hashtbl.t;
        (** digests of descriptor blobs already learned — replayed
            descriptors after a reconnect are skipped, not re-registered *)
    s_rng : Prng.t;
    mutable s_client : Client.t option;
    mutable s_link : Link.t option;
    mutable s_schema : string;
    mutable s_reconnects : int;
    mutable s_closed : bool;
  }

  (** [subscribe cfg ~stream abi] connects and subscribes; failures on
      this {e first} attempt raise immediately (an unknown stream at
      session start is a configuration error, not an outage). *)
  let subscribe (cfg : config) ~(stream : string) (abi : Omf_machine.Abi.t) :
      subscriber =
    let client = connect_client cfg in
    match Client.subscribe client ~stream with
    | schema, link ->
      let catalog = Catalog.create abi in
      ignore
        (Omf_xml2wire.Xml2wire.register_schema ~source:("relay:" ^ stream)
           catalog schema);
      let pbio =
        Pbio.Receiver.create
          (Catalog.registry catalog)
          (Omf_machine.Memory.create abi)
      in
      { s_cfg = cfg; s_stream = stream; s_catalog = catalog; s_pbio = pbio
      ; s_seen = Hashtbl.create 8
      ; s_rng = Prng.create ~seed:cfg.jitter_seed ()
      ; s_client = Some client; s_link = Some link; s_schema = schema
      ; s_reconnects = 0; s_closed = false }
    | exception e ->
      Client.close client;
      raise e

  let drop_subscriber_link (s : subscriber) =
    (match s.s_client with Some c -> Client.close c | None -> ());
    s.s_client <- None;
    s.s_link <- None

  let resubscribe (s : subscriber) : unit =
    with_retries s.s_cfg s.s_rng
      ~what:(Printf.sprintf "subscriber %s" s.s_stream)
      (fun client ->
        let schema, link = Client.subscribe client ~stream:s.s_stream in
        s.s_client <- Some client;
        s.s_link <- Some link;
        s.s_schema <- schema;
        s.s_reconnects <- s.s_reconnects + 1;
        Log.info (fun m ->
            m "subscriber %s: resubscribed (reconnect %d)" s.s_stream
              s.s_reconnects))

  (** Blocking receive of the next decoded event, reconnecting across
      outages. [None] only after {!close_subscriber}; a hopeless outage
      raises {!Gave_up}. *)
  let rec recv_subscriber (s : subscriber) :
      (Format.t * Value.t) option =
    if s.s_closed then None
    else
      match s.s_link with
      | None ->
        resubscribe s;
        recv_subscriber s
      | Some link -> (
        match Link.recv link with
        | Some frame
          when Bytes.length frame > 0
               && Char.equal (Bytes.get frame 0) Endpoint.frame_descriptor ->
          let blob = Bytes.sub_string frame 1 (Bytes.length frame - 1) in
          let digest = Sha256.digest blob in
          if not (Hashtbl.mem s.s_seen digest) then begin
            Hashtbl.replace s.s_seen digest ();
            ignore (Pbio.Receiver.learn s.s_pbio blob)
          end;
          recv_subscriber s
        | Some frame
          when Bytes.length frame > 0
               && Char.equal (Bytes.get frame 0) Endpoint.frame_message ->
          Some
            (Pbio.Receiver.receive_value s.s_pbio
               (Bytes.sub frame 1 (Bytes.length frame - 1)))
        | Some _ | None ->
          (* graceful close or garbage: either way, this link is done *)
          if s.s_closed then None
          else begin
            drop_subscriber_link s;
            recv_subscriber s
          end
        | exception e ->
          if s.s_closed then None
          else if transient e then begin
            drop_subscriber_link s;
            recv_subscriber s
          end
          else raise e)

  let subscriber_schema (s : subscriber) = s.s_schema
  let subscriber_reconnects (s : subscriber) = s.s_reconnects
  let subscriber_catalog (s : subscriber) = s.s_catalog

  let subscriber_stats (s : subscriber) : Pbio.Receiver.stats =
    Pbio.Receiver.stats s.s_pbio

  let close_subscriber (s : subscriber) : unit =
    s.s_closed <- true;
    drop_subscriber_link s

  (* ---------------------------------------------------------------- *)
  (* Publisher sessions                                                 *)
  (* ---------------------------------------------------------------- *)

  type pending = { p_fmt : Format.t; p_frame : Bytes.t }

  type publisher = {
    b_cfg : config;
    b_stream : string;
    b_schema : string;
    b_window : int;
    b_catalog : Catalog.t;
    b_mem : Omf_machine.Memory.t;
    b_rng : Prng.t;
    b_buf : pending Queue.t;
        (** marshalled data frames not yet written to a live link *)
    b_announced : (int, unit) Hashtbl.t;
        (** format ids announced on the {e current} connection *)
    mutable b_client : Client.t option;
    mutable b_link : Link.t option;
    mutable b_reconnects : int;
    mutable b_closed : bool;
  }

  let stream_frame kind (body : Bytes.t) : Bytes.t =
    let b = Bytes.create (1 + Bytes.length body) in
    Bytes.set b 0 kind;
    Bytes.blit body 0 b 1 (Bytes.length body);
    b

  (** [publisher cfg ~stream ~schema abi] connects, advertises and
      enters publisher mode. First-attempt failures raise immediately,
      as for {!subscribe}. [window] bounds buffered data frames during
      an outage (default 1024). *)
  let publisher ?(window = 1024) (cfg : config) ~(stream : string)
      ~(schema : string) (abi : Omf_machine.Abi.t) : publisher =
    let client = connect_client cfg in
    match
      Client.advertise client ~stream ~schema;
      Client.publish client ~stream
    with
    | link ->
      let catalog = Catalog.create abi in
      ignore (Omf_xml2wire.Xml2wire.register_schema catalog schema);
      { b_cfg = cfg; b_stream = stream; b_schema = schema; b_window = window
      ; b_catalog = catalog; b_mem = Omf_machine.Memory.create abi
      ; b_rng = Prng.create ~seed:cfg.jitter_seed ()
      ; b_buf = Queue.create (); b_announced = Hashtbl.create 4
      ; b_client = Some client; b_link = Some link; b_reconnects = 0
      ; b_closed = false }
    | exception e ->
      Client.close client;
      raise e

  let publisher_format (p : publisher) (name : string) : Format.t option =
    Catalog.find_format p.b_catalog name

  let publisher_reconnects (p : publisher) = p.b_reconnects
  let publisher_buffered (p : publisher) = Queue.length p.b_buf

  let drop_publisher_link (p : publisher) =
    (match p.b_client with Some c -> Client.close c | None -> ());
    p.b_client <- None;
    p.b_link <- None

  (** Write every buffered frame to the live link, announcing each
      format's descriptor first if this connection has not seen it.
      [false] = the link broke (the unwritten tail stays buffered). *)
  let try_flush (p : publisher) : bool =
    match p.b_link with
    | None -> false
    | Some link -> (
      try
        while not (Queue.is_empty p.b_buf) do
          let e = Queue.peek p.b_buf in
          if not (Hashtbl.mem p.b_announced e.p_fmt.Format.id) then begin
            Link.send link
              (stream_frame Endpoint.frame_descriptor
                 (Bytes.of_string (Omf_pbio.Format_codec.encode e.p_fmt)));
            Hashtbl.replace p.b_announced e.p_fmt.Format.id ()
          end;
          Link.send link e.p_frame;
          ignore (Queue.pop p.b_buf)
        done;
        true
      with e ->
        if transient e then begin
          drop_publisher_link p;
          false
        end
        else raise e)

  (** Bounded reconnect: replay ADVERTISE (the relay may have restarted
      with no streams) and PUBLISH, and forget per-connection descriptor
      announcements. [false] = budget exhausted; buffered frames are
      kept for the next attempt. *)
  let reconnect_publisher (p : publisher) : bool =
    p.b_cfg.max_attempts > 0
    && match
         with_retries p.b_cfg p.b_rng
           ~what:(Printf.sprintf "publisher %s" p.b_stream)
           (fun client ->
             Client.advertise client ~stream:p.b_stream ~schema:p.b_schema;
             let link = Client.publish client ~stream:p.b_stream in
             p.b_client <- Some client;
             p.b_link <- Some link;
             Hashtbl.reset p.b_announced;
             p.b_reconnects <- p.b_reconnects + 1;
             Log.info (fun m ->
                 m "publisher %s: reconnected (reconnect %d, %d frames \
                    buffered)"
                   p.b_stream p.b_reconnects (Queue.length p.b_buf)))
       with
       | () -> true
       | exception Gave_up _ -> false

  (** [publish_value p fmt v] marshals and ships one event. During an
      outage the frame is buffered and reconnection attempted under the
      budget; a full window raises {!Overflow} (the event is {e not}
      enqueued), and an exhausted budget returns with the frame
      buffered for the next call. *)
  let publish_value (p : publisher) (fmt : Format.t) (v : Value.t) : unit =
    if p.b_closed then raise (Client.Error "publisher session closed");
    if Queue.length p.b_buf >= p.b_window then
      raise
        (Overflow
           (Printf.sprintf
              "publisher %s: in-flight window (%d frames) full while relay \
               unreachable"
              p.b_stream p.b_window));
    (* marshal now: the value is captured even if the relay is down *)
    Omf_machine.Memory.reset p.b_mem;
    let addr = Omf_pbio.Native.store p.b_mem fmt v in
    let frame =
      stream_frame Endpoint.frame_message (Pbio.message p.b_mem fmt addr)
    in
    Queue.add { p_fmt = fmt; p_frame = frame } p.b_buf;
    if not (try_flush p) then
      if reconnect_publisher p then ignore (try_flush p)

  (** Close, flushing buffered frames best-effort (no reconnect). *)
  let close_publisher (p : publisher) : unit =
    if not p.b_closed then begin
      p.b_closed <- true;
      ignore (try try_flush p with _ -> false);
      drop_publisher_link p
    end
end
