(** Binary journals: NDR messages "written to data files in a
    heterogeneous computing environment" (the second use PBIO was built
    for, section 4.1.2).

    A journal is a sequence of length-prefixed records, each either a
    format descriptor (written once per format, before its first use) or
    a framed NDR message. Because descriptors are embedded, a journal is
    self-describing: it can be replayed years later, on a machine with a
    different ABI, by a process that never talked to the writer — the
    reader converts exactly as a live receiver would.

    File layout:
    {v
    "OMFJRNL1"                                magic (8 bytes)
    repeat:
      u32 big-endian record length
      kind byte: 'D' descriptor | 'M' message
      body
    v} *)

open Omf_machine
open Omf_pbio

exception Journal_error of string

let journal_error fmt = Printf.ksprintf (fun s -> raise (Journal_error s)) fmt

let magic = "OMFJRNL1"

let kind_descriptor = 'D'
let kind_message = 'M'

(* ------------------------------------------------------------------ *)
(* Writer                                                               *)
(* ------------------------------------------------------------------ *)

module Writer = struct
  type t = {
    oc : out_channel;
    announced : (string, unit) Hashtbl.t;
        (** keyed by descriptor blob, not registry id: ids collide across
            registries and across format upgrades *)
    mutable records : int;
  }

  let u32 oc v =
    output_char oc (Char.chr ((v lsr 24) land 0xFF));
    output_char oc (Char.chr ((v lsr 16) land 0xFF));
    output_char oc (Char.chr ((v lsr 8) land 0xFF));
    output_char oc (Char.chr (v land 0xFF))

  let record t kind (body : bytes) =
    u32 t.oc (1 + Bytes.length body);
    output_char t.oc kind;
    output_bytes t.oc body;
    t.records <- t.records + 1

  let create (oc : out_channel) : t =
    output_string oc magic;
    { oc; announced = Hashtbl.create 8; records = 0 }

  let to_file (path : string) : t * (unit -> unit) =
    let oc = open_out_bin path in
    (create oc, fun () -> close_out oc)

  (** [append t mem fmt addr] writes the struct at [addr], preceded by
      [fmt]'s descriptor if this journal has not seen it yet. *)
  let append (t : t) (mem : Memory.t) (fmt : Format.t) (addr : int) : unit =
    let blob = Format_codec.encode fmt in
    if not (Hashtbl.mem t.announced blob) then begin
      record t kind_descriptor (Bytes.of_string blob);
      Hashtbl.replace t.announced blob ()
    end;
    record t kind_message (Pbio.message mem fmt addr)

  let append_value (t : t) (abi : Abi.t) (fmt : Format.t) (v : Value.t) : unit
      =
    let mem = Memory.create abi in
    append t mem fmt (Native.store mem fmt v)

  let flush t = flush t.oc
  let record_count t = t.records
end

(* ------------------------------------------------------------------ *)
(* Reader                                                               *)
(* ------------------------------------------------------------------ *)

module Reader = struct
  type t = {
    ic : in_channel;
    receiver : Pbio.Receiver.t;
  }

  let create ?mode (ic : in_channel) (registry : Format.Registry.t)
      (mem : Memory.t) : t =
    let m =
      try really_input_string ic (String.length magic)
      with End_of_file -> journal_error "not a journal: file too short"
    in
    if not (String.equal m magic) then journal_error "bad journal magic %S" m;
    { ic; receiver = Pbio.Receiver.create ?mode registry mem }

  let of_file ?mode (path : string) (registry : Format.Registry.t)
      (mem : Memory.t) : t * (unit -> unit) =
    let ic = open_in_bin path in
    match create ?mode ic registry mem with
    | t -> (t, fun () -> close_in ic)
    | exception e ->
      close_in_noerr ic;
      raise e

  (* A length prefix that stops short is a torn tail, not a clean end:
     only 0 bytes before EOF counts as end-of-journal. Every failure
     reports the byte offset of the record it was parsing so a torn or
     corrupt file points at its own damage. *)
  let read_u32_opt ic ~at =
    match input_char ic with
    | exception End_of_file -> None
    | c0 ->
      let rest =
        try really_input_string ic 3
        with End_of_file ->
          journal_error
            "journal truncated in record length prefix at byte %d" at
      in
      Some
        ((Char.code c0 lsl 24)
        lor (Char.code rest.[0] lsl 16)
        lor (Char.code rest.[1] lsl 8)
        lor Char.code rest.[2])

  (** [next t] returns the next message as [(format, address)] in the
      reader's memory, ingesting descriptor records transparently.
      [None] at a clean end of file; raises {!Journal_error} (naming
      the byte offset of the offending record) on a truncated or
      corrupt journal. *)
  let rec next (t : t) : (Format.t * int) option =
    let at = pos_in t.ic in
    match read_u32_opt t.ic ~at with
    | None -> None
    | Some len ->
      if len < 1 || len > 1 lsl 30 then
        journal_error "bad record length %d at byte %d" len at;
      let body =
        try really_input_string t.ic len
        with End_of_file ->
          journal_error
            "journal truncated mid-record at byte %d (need %d body bytes, \
             have %d)"
            at len
            (pos_in t.ic - at - 4)
      in
      let kind = body.[0] in
      let payload = String.sub body 1 (len - 1) in
      if Char.equal kind kind_descriptor then begin
        (try ignore (Pbio.Receiver.learn t.receiver payload)
         with
        | Journal_error _ as e -> raise e
        | e ->
          journal_error "corrupt descriptor record at byte %d: %s" at
            (Printexc.to_string e));
        next t
      end
      else if Char.equal kind kind_message then
        try Some (Pbio.Receiver.receive t.receiver (Bytes.of_string payload))
        with
        | Journal_error _ as e -> raise e
        | e ->
          journal_error "corrupt message record at byte %d: %s" at
            (Printexc.to_string e)
      else journal_error "unknown record kind %C at byte %d" kind at

  let next_value (t : t) : (Format.t * Value.t) option =
    match next t with
    | None -> None
    | Some (fmt, addr) ->
      Some (fmt, Native.load (Pbio.Receiver.memory t.receiver) fmt addr)

  (** [fold t f acc] replays the whole journal. *)
  let fold (t : t) (f : 'a -> Format.t * Value.t -> 'a) (acc : 'a) : 'a =
    let rec go acc =
      match next_value t with None -> acc | Some ev -> go (f acc ev)
    in
    go acc
end
