external now_us : unit -> int = "omf_trace_now_us" [@@noalloc]

(* ------------------------------------------------------------------ *)
(* Ids                                                                  *)
(* ------------------------------------------------------------------ *)

(* splitmix64: one multiply-shift-xor chain per draw. Good enough for
   trace ids (collision resistance, not security) and for the sampling
   coin; cheap enough that it never shows up in a profile. *)
let splitmix64 (state : int64) : int64 * int64 =
  let open Int64 in
  let s = add state 0x9E3779B97F4A7C15L in
  let z = s in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  (s, logxor z (shift_right_logical z 31))

(* global id source: ctx creation is per publish session (rare) and may
   happen from any thread, so a mutex is fine here *)
let id_mu = Mutex.create ()

let id_state =
  ref
    (Int64.logxor
       (Int64.of_float (Unix.gettimeofday () *. 1e6))
       (Int64.shift_left (Int64.of_int (Unix.getpid ())) 40))

let fresh_id () : int64 =
  Mutex.lock id_mu;
  let s, z = splitmix64 !id_state in
  id_state := s;
  Mutex.unlock id_mu;
  (* never 0: 0 reads as "no id" in exports *)
  if Int64.equal z 0L then 1L else z

let id_to_string (id : int64) : string = Printf.sprintf "%016Lx" id

(* ------------------------------------------------------------------ *)
(* Context                                                              *)
(* ------------------------------------------------------------------ *)

type ctx = { trace_id : int64; span_id : int64; sampled : bool }

let make ~sampled () : ctx =
  { trace_id = fresh_id (); span_id = fresh_id (); sampled }

let to_string (c : ctx) : string =
  Printf.sprintf "%016Lx-%016Lx-%02x" c.trace_id c.span_id
    (if c.sampled then 1 else 0)

let hex64 (s : string) (off : int) : int64 option =
  let rec go i acc =
    if i = 16 then Some acc
    else
      match s.[off + i] with
      | '0' .. '9' as ch ->
        go (i + 1)
          (Int64.logor (Int64.shift_left acc 4)
             (Int64.of_int (Char.code ch - Char.code '0')))
      | 'a' .. 'f' as ch ->
        go (i + 1)
          (Int64.logor (Int64.shift_left acc 4)
             (Int64.of_int (Char.code ch - Char.code 'a' + 10)))
      | _ -> None
  in
  go 0 0L

let of_string (s : string) : ctx option =
  if
    String.length s = 36
    && s.[16] = '-' && s.[33] = '-'
  then
    match (hex64 s 0, hex64 s 17, int_of_string_opt ("0x" ^ String.sub s 34 2))
    with
    | Some trace_id, Some span_id, Some flags ->
      Some { trace_id; span_id; sampled = flags land 1 = 1 }
    | _ -> None
  else None

(* ------------------------------------------------------------------ *)
(* Settings                                                             *)
(* ------------------------------------------------------------------ *)

type settings = { sample : float; buffer : int; slow_us : int }

let settings ?(sample = 0.) ?(buffer = 4096) ?(slow_us = 0) () : settings =
  { sample = Float.max 0.0 (Float.min 1.0 sample)
  ; buffer = max 16 buffer
  ; slow_us = max 0 slow_us }

(* ------------------------------------------------------------------ *)
(* Spans and collectors                                                 *)
(* ------------------------------------------------------------------ *)

type span = {
  sp_trace : int64;
  sp_id : int64;
  sp_parent : int64;
  sp_stage : string;
  sp_stream : string;
  sp_shard : int;
  sp_start_us : int;
  sp_dur_us : int;
}

type collector = {
  col_shard : int;
  col_slow_us : int;
  col_rate : float;
  mutable col_rng : int64;  (** sampling PRNG; owning loop thread only *)
  mu : Mutex.t;  (** guards the ring (record vs. export snapshot) *)
  ring : span option array;
  mutable next : int;  (** ring write cursor *)
  mutable total : int;  (** spans ever recorded *)
}

let collector ?(shard = 0) (s : settings) : collector =
  { col_shard = shard
  ; col_slow_us = s.slow_us
  ; col_rate = s.sample
  ; col_rng = fresh_id ()
  ; mu = Mutex.create ()
  ; ring = Array.make s.buffer None
  ; next = 0
  ; total = 0 }

let shard (c : collector) = c.col_shard
let slow_us (c : collector) = c.col_slow_us

let sample (c : collector) : bool =
  c.col_rate > 0.0
  && (c.col_rate >= 1.0
     ||
     let s, z = splitmix64 c.col_rng in
     c.col_rng <- s;
     (* top 53 bits as a float in [0,1) *)
     Int64.to_float (Int64.shift_right_logical z 11) *. (1.0 /. 9007199254740992.0)
     < c.col_rate)

let should_record (c : collector) ~(sampled : bool) ~(dur_us : int) : bool =
  sampled || (c.col_slow_us > 0 && dur_us >= c.col_slow_us)

let record (c : collector) ~trace ~parent ~stage ~stream ~start_us ~dur_us :
    unit =
  let sp =
    { sp_trace = trace; sp_id = fresh_id (); sp_parent = parent
    ; sp_stage = stage; sp_stream = stream; sp_shard = c.col_shard
    ; sp_start_us = start_us; sp_dur_us = dur_us }
  in
  Mutex.lock c.mu;
  c.ring.(c.next) <- Some sp;
  c.next <- (c.next + 1) mod Array.length c.ring;
  c.total <- c.total + 1;
  Mutex.unlock c.mu

let spans (c : collector) : span list =
  Mutex.lock c.mu;
  let n = Array.length c.ring in
  let acc = ref [] in
  (* walk backwards from the newest slot so the result is oldest-first *)
  for i = 0 to n - 1 do
    match c.ring.((c.next + n - 1 - i) mod n) with
    | Some sp -> acc := sp :: !acc
    | None -> ()
  done;
  Mutex.unlock c.mu;
  !acc

let recorded (c : collector) : int =
  Mutex.lock c.mu;
  let v = c.total in
  Mutex.unlock c.mu;
  v

let dropped (c : collector) : int =
  Mutex.lock c.mu;
  let v = max 0 (c.total - Array.length c.ring) in
  Mutex.unlock c.mu;
  v

let clear (c : collector) : unit =
  Mutex.lock c.mu;
  Array.fill c.ring 0 (Array.length c.ring) None;
  c.next <- 0;
  c.total <- 0;
  Mutex.unlock c.mu

(* ------------------------------------------------------------------ *)
(* Export                                                               *)
(* ------------------------------------------------------------------ *)

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chrome_json (l : span list) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"relay\",\"ph\":\"X\",\"ts\":%d,\
            \"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"trace\":\"%s\",\
            \"span\":\"%s\",\"parent\":\"%s\",\"stream\":\"%s\"}}"
           (json_escape sp.sp_stage) sp.sp_start_us sp.sp_dur_us sp.sp_shard
           sp.sp_shard (id_to_string sp.sp_trace) (id_to_string sp.sp_id)
           (id_to_string sp.sp_parent)
           (json_escape sp.sp_stream)))
    l;
  Buffer.add_string b "]}";
  Buffer.contents b

(* nearest-rank percentile over a sorted array *)
let pct (sorted : int array) (p : int) : int =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = (p * n + 99) / 100 in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let summary (l : span list) : (string * (int * int * int * int * int)) list =
  let tbl : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      match Hashtbl.find_opt tbl sp.sp_stage with
      | Some r -> r := sp.sp_dur_us :: !r
      | None -> Hashtbl.replace tbl sp.sp_stage (ref [ sp.sp_dur_us ]))
    l;
  Hashtbl.fold
    (fun stage durs acc ->
      let a = Array.of_list !durs in
      Array.sort compare a;
      let n = Array.length a in
      (stage, (n, pct a 50, pct a 95, pct a 99, a.(n - 1))) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let summary_json (l : span list) : string =
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (stage, (n, p50, p95, p99, mx)) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"p50_us\":%d,\"p95_us\":%d,\"p99_us\":%d,\
            \"max_us\":%d}"
           (json_escape stage) n p50 p95 p99 mx))
    (summary l);
  Buffer.add_char b '}';
  Buffer.contents b
