/* Monotonic clock for span timestamps.
 *
 * Omf_util.Clock deliberately sticks to Sys.time (CPU seconds, no unix
 * dependency); tracing needs wall-clock-rate monotonic time that keeps
 * advancing while a thread blocks in select/write, and it needs it
 * cheap enough to call twice per traced frame.  CLOCK_MONOTONIC in
 * microseconds fits a tagged OCaml int (2^62 us ~ 146k years), so the
 * stub allocates nothing and is safe to mark noalloc. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value omf_trace_now_us(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((long)ts.tv_sec * 1000000 + ts.tv_nsec / 1000);
}
