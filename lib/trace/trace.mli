(** Sampled, low-overhead distributed tracing for the frame path
    (doc/TRACE.md, PROTOCOLS.md §17).

    A {e trace} is one publish session's journey through the relay
    fabric: the publisher mints a {!ctx} (64-bit trace id, span id,
    sampled flag) and carries it as [trace=] metadata on PUBLISH; every
    hop that touches a frame of that session — admission, store append,
    fan-out enqueue, socket flush, mirror replication, delivery —
    records a {!span} against the context into its local {!collector}.
    A mirror re-injects the context on its own [mirror=1] PUBLISH, so
    one trace crosses relays.

    The cost model is the point: the {e untraced} path does no
    allocation and no locking — the per-frame check is one option match
    plus (when tracing is enabled at all) two monotonic-clock reads.
    Spans are recorded only when the context was head-sampled at
    creation, or when a span's duration breaches the collector's
    slow-span threshold (always-record for outliers, whatever the
    sampling decision). *)

val now_us : unit -> int
(** Monotonic wall-rate clock in microseconds ([CLOCK_MONOTONIC]);
    allocation-free. Only differences are meaningful, and only within
    one process. *)

(* ------------------------------------------------------------------ *)
(* Trace context                                                        *)
(* ------------------------------------------------------------------ *)

type ctx = {
  trace_id : int64;  (** the whole end-to-end trace *)
  span_id : int64;  (** the minting hop; parent of every recorded span *)
  sampled : bool;  (** head-sampling decision, made once at creation *)
}

val make : sampled:bool -> unit -> ctx
(** Fresh random context. The [sampled] flag is the head-sampling
    decision: it travels with the context, so every hop agrees without
    re-rolling dice. *)

val to_string : ctx -> string
(** Compact wire codec: ["<trace:16hex>-<span:16hex>-<flags:2hex>"]
    (36 bytes; flags bit 0 = sampled). This is the [trace=] metadata
    value (PROTOCOLS.md §17). *)

val of_string : string -> ctx option
(** Parse {!to_string} output; [None] on anything malformed (an old
    peer echoing garbage must not kill the connection). *)

val id_to_string : int64 -> string
(** 16-digit lower-case hex, as used inside {!to_string}. *)

(* ------------------------------------------------------------------ *)
(* Settings                                                             *)
(* ------------------------------------------------------------------ *)

type settings = {
  sample : float;  (** head-sampling rate in [0,1] for publishers that
                       arrive without a context of their own *)
  buffer : int;  (** per-collector span ring capacity *)
  slow_us : int;  (** always-record spans at least this long; [0]
                      disables the slow path *)
}

val settings : ?sample:float -> ?buffer:int -> ?slow_us:int -> unit -> settings
(** Defaults: [sample = 0.], [buffer = 4096], [slow_us = 0]. [sample]
    is clamped into [0,1]; [buffer] to at least 16. *)

(* ------------------------------------------------------------------ *)
(* Spans and collectors                                                 *)
(* ------------------------------------------------------------------ *)

type span = {
  sp_trace : int64;
  sp_id : int64;  (** fresh per recorded span *)
  sp_parent : int64;  (** the context's span id *)
  sp_stage : string;  (** e.g. ["store_append"], ["deliver"] *)
  sp_stream : string;
  sp_shard : int;  (** recording collector's shard ([-1] = mirror) *)
  sp_start_us : int;  (** {!now_us} at span start *)
  sp_dur_us : int;
}

type collector
(** A fixed-capacity ring of spans. [record]/[spans] are mutex-guarded
    (export runs on the HTTP thread while shard loops record);
    sampling draws from a collector-local PRNG and belongs to the
    owning loop thread, like the rest of the shard state. *)

val collector : ?shard:int -> settings -> collector
(** [shard] defaults to [0]; mirrors use [-1]. *)

val shard : collector -> int
val slow_us : collector -> int

val sample : collector -> bool
(** One head-sampling draw at the configured rate (for publishers that
    supplied no context). Owning-thread only. *)

val should_record : collector -> sampled:bool -> dur_us:int -> bool
(** The record gate: the context was sampled, or the span breached the
    slow threshold. *)

val record :
  collector ->
  trace:int64 ->
  parent:int64 ->
  stage:string ->
  stream:string ->
  start_us:int ->
  dur_us:int ->
  unit
(** Append one span (fresh span id); the oldest span is overwritten
    when the ring is full. Call only after {!should_record} — this is
    what keeps the untraced path allocation-free. *)

val spans : collector -> span list
(** Snapshot, oldest first. Any thread. *)

val recorded : collector -> int
(** Total spans ever recorded (including overwritten ones). *)

val dropped : collector -> int
(** Spans overwritten by ring wrap-around. *)

val clear : collector -> unit

(* ------------------------------------------------------------------ *)
(* Export                                                               *)
(* ------------------------------------------------------------------ *)

val chrome_json : span list -> string
(** Chrome trace-event JSON (load in [chrome://tracing] / Perfetto):
    one complete event (["ph":"X"]) per span, [pid] = shard, with
    trace/span/parent ids and the stream name in [args]. *)

val summary : span list -> (string * (int * int * int * int * int)) list
(** Per-stage latency decomposition:
    [(stage, (count, p50, p95, p99, max))] in microseconds, sorted by
    stage name. Percentiles are nearest-rank. *)

val summary_json : span list -> string
(** {!summary} as a JSON object keyed by stage. *)
