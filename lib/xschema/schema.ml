(** XML Schema subset: the metadata definition language.

    Supports the profile the paper uses (sections 4.1.1 and Appendix A):
    [xsd:schema] containing named [xsd:complexType]s whose children are
    [xsd:element]s with [type], [minOccurs] and [maxOccurs] attributes.
    Both the 1999 draft spellings the paper uses ([xsd:unsigned-long],
    [maxOccurs="*"]) and the final 2001 recommendation spellings
    ([xsd:unsignedLong], [maxOccurs="unbounded"], elements wrapped in
    [xsd:sequence]) are accepted.

    The AST is deliberately independent of the communication layers; the
    xml2wire core maps it onto PBIO declarations. *)

(** Recognised XML Schema namespace URIs (draft and final). *)
let schema_namespaces =
  [ "http://www.w3.org/1999/XMLSchema"
  ; "http://www.w3.org/2000/10/XMLSchema"
  ; "http://www.w3.org/2001/XMLSchema" ]

let is_schema_uri uri = List.mem uri schema_namespaces

type max_occurs =
  | Bounded of int  (** numeric: a static array bound *)
  | Unbounded  (** "*" or "unbounded": dynamically sized *)
  | Counted_by of string
      (** a sibling integer element gives the run-time count *)

type element = {
  el_name : string;
  el_type : type_ref;
  min_occurs : int;
  max_occurs : max_occurs option;  (** [None] = plain scalar element *)
}

and type_ref =
  | Builtin of builtin  (** a type from the XML Schema namespace *)
  | Defined of string  (** a named complexType from this document *)

and builtin =
  | B_string
  | B_boolean
  | B_byte
  | B_unsigned_byte
  | B_short
  | B_unsigned_short
  | B_int  (** xsd:int and xsd:integer *)
  | B_unsigned_int
  | B_long
  | B_unsigned_long
  | B_float
  | B_double

type complex_type = {
  ct_name : string;
  ct_elements : element list;
  ct_documentation : string option;
}

(** A named simple type derived by restriction of a builtin (the paper's
    footnote 1): usable wherever a builtin is, with extra lexical
    constraints checked by validation. *)
type simple_type = {
  st_name : string;
  st_base : builtin;
  st_enumeration : string list;  (** empty = unconstrained *)
  st_min_inclusive : float option;
  st_max_inclusive : float option;
}

type t = {
  target_namespace : string option;
  documentation : string option;
  types : complex_type list;  (** in document order *)
  simple_types : simple_type list;
}

let find_type t name =
  List.find_opt (fun ct -> String.equal ct.ct_name name) t.types

let find_simple_type t name =
  List.find_opt (fun st -> String.equal st.st_name name) t.simple_types

let builtin_name = function
  | B_string -> "string"
  | B_boolean -> "boolean"
  | B_byte -> "byte"
  | B_unsigned_byte -> "unsignedByte"
  | B_short -> "short"
  | B_unsigned_short -> "unsignedShort"
  | B_int -> "integer"
  | B_unsigned_int -> "unsignedInt"
  | B_long -> "long"
  | B_unsigned_long -> "unsigned-long"
  | B_float -> "float"
  | B_double -> "double"

(** Both draft ("unsigned-long") and final ("unsignedLong") spellings. *)
let builtin_of_name = function
  | "string" -> Some B_string
  | "boolean" -> Some B_boolean
  | "byte" -> Some B_byte
  | "unsigned-byte" | "unsignedByte" -> Some B_unsigned_byte
  | "short" -> Some B_short
  | "unsigned-short" | "unsignedShort" -> Some B_unsigned_short
  | "integer" | "int" -> Some B_int
  | "unsigned-int" | "unsignedInt" | "nonNegativeInteger" -> Some B_unsigned_int
  | "long" -> Some B_long
  | "unsigned-long" | "unsignedLong" -> Some B_unsigned_long
  | "float" -> Some B_float
  | "double" -> Some B_double
  | _ -> None

exception Schema_error of string

let schema_error fmt = Printf.ksprintf (fun s -> raise (Schema_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                     *)
(* ------------------------------------------------------------------ *)

(** [canonical t] renders the structural content of a schema as a
    deterministic string: one line per type/element carrying only the
    fields that affect the wire contract (names, types, occurrence
    bounds, simple-type facets). Documentation, the target namespace
    prose and source formatting are excluded, so two documents that
    differ only in whitespace, comments or annotation text canonicalize
    identically. Registries fingerprint this rendering (SHA-256) to get
    content addressing: same structure, same fingerprint. *)
let canonical (t : t) : string =
  let b = Buffer.create 256 in
  let type_ref_name = function
    | Builtin bt -> "xsd:" ^ builtin_name bt
    | Defined n -> n
  in
  let max_name = function
    | None -> "-"
    | Some (Bounded n) -> string_of_int n
    | Some Unbounded -> "*"
    | Some (Counted_by f) -> "#" ^ f
  in
  let by_name name_of l = List.sort (fun a b -> compare (name_of a) (name_of b)) l in
  List.iter
    (fun ct ->
      Buffer.add_string b (Printf.sprintf "type %s\n" ct.ct_name);
      List.iter
        (fun el ->
          Buffer.add_string b
            (Printf.sprintf " el %s %s min=%d max=%s\n" el.el_name
               (type_ref_name el.el_type) el.min_occurs
               (max_name el.max_occurs)))
        ct.ct_elements)
    (by_name (fun ct -> ct.ct_name) t.types);
  List.iter
    (fun st ->
      Buffer.add_string b
        (Printf.sprintf "simple %s base=xsd:%s enum=[%s] min=%s max=%s\n"
           st.st_name (builtin_name st.st_base)
           (String.concat ";" st.st_enumeration)
           (match st.st_min_inclusive with
           | None -> "-"
           | Some f -> Printf.sprintf "%h" f)
           (match st.st_max_inclusive with
           | None -> "-"
           | Some f -> Printf.sprintf "%h" f)))
    (by_name (fun st -> st.st_name) t.simple_types);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

open Omf_xml

let is_schema_element env el local =
  match Ns.resolve env el.Doc.tag with
  | Some (uri, l) -> is_schema_uri uri && String.equal l local
  | None -> false

let parse_type_ref env (raw : string) : type_ref =
  match Ns.resolve env raw with
  | Some (uri, local) when is_schema_uri uri -> (
    match builtin_of_name local with
    | Some b -> Builtin b
    | None -> schema_error "unsupported XML Schema datatype %S" raw)
  | _ ->
    (* unqualified or target-namespace-qualified: a user-defined type *)
    Defined (Doc.local_name raw)

let parse_occurs_attrs el : int * max_occurs option =
  let min_occurs =
    match Doc.attr el "minOccurs" with
    | None -> 1
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> n
      | _ -> schema_error "element %S: bad minOccurs %S"
               (Option.value ~default:"?" (Doc.attr el "name")) s)
  in
  let max_occurs =
    match Doc.attr el "maxOccurs" with
    | None -> None
    | Some "*" | Some "unbounded" -> Some Unbounded
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> Some (Bounded n)
      | Some n ->
        schema_error "element %S: bad maxOccurs %d"
          (Option.value ~default:"?" (Doc.attr el "name")) n
      | None -> Some (Counted_by s))
  in
  (min_occurs, max_occurs)

let parse_element env (el : Doc.element) : element =
  let el_name =
    match Doc.attr el "name" with
    | Some n when not (String.equal n "") -> n
    | _ -> schema_error "element without a name attribute"
  in
  let raw_type =
    match Doc.attr el "type" with
    | Some t -> t
    | None -> schema_error "element %S: missing type attribute" el_name
  in
  let min_occurs, max_occurs = parse_occurs_attrs el in
  { el_name; el_type = parse_type_ref env raw_type; min_occurs; max_occurs }

let documentation_of env (el : Doc.element) : string option =
  (* <xsd:annotation><xsd:documentation>text</...></...> *)
  let anns =
    List.filter (fun c -> is_schema_element env c "annotation")
      (Doc.child_elements el)
  in
  let docs =
    List.concat_map
      (fun ann ->
        let env = Ns.extend env ann in
        List.filter_map
          (fun c ->
            if is_schema_element env c "documentation" then
              Some (String.trim (Doc.deep_text c))
            else None)
          (Doc.child_elements ann))
      anns
  in
  match docs with [] -> None | d :: _ -> Some d

let parse_simple_type env (el : Doc.element) : simple_type =
  let st_name =
    match Doc.attr el "name" with
    | Some n when not (String.equal n "") -> n
    | _ -> schema_error "simpleType without a name attribute"
  in
  let env = Ns.extend env el in
  let restriction =
    match
      List.find_opt (fun c -> is_schema_element env c "restriction")
        (Doc.child_elements el)
    with
    | Some r -> r
    | None -> schema_error "simpleType %S: only restriction is supported" st_name
  in
  let env = Ns.extend env restriction in
  let st_base =
    match Doc.attr restriction "base" with
    | None -> schema_error "simpleType %S: restriction lacks a base" st_name
    | Some raw -> (
      match parse_type_ref env raw with
      | Builtin b -> b
      | Defined other ->
        schema_error "simpleType %S: base %S is not a builtin" st_name other)
  in
  let facet name =
    List.filter_map
      (fun c ->
        if is_schema_element env c name then
          match Doc.attr c "value" with
          | Some v -> Some v
          | None -> schema_error "simpleType %S: %s without a value" st_name name
        else None)
      (Doc.child_elements restriction)
  in
  let number name = function
    | [] -> None
    | [ v ] -> (
      match float_of_string_opt v with
      | Some f -> Some f
      | None -> schema_error "simpleType %S: %s %S is not numeric" st_name name v)
    | _ -> schema_error "simpleType %S: duplicate %s facet" st_name name
  in
  { st_name; st_base
  ; st_enumeration = facet "enumeration"
  ; st_min_inclusive = number "minInclusive" (facet "minInclusive")
  ; st_max_inclusive = number "maxInclusive" (facet "maxInclusive") }

let parse_complex_type env (el : Doc.element) : complex_type =
  let ct_name =
    match Doc.attr el "name" with
    | Some n when not (String.equal n "") -> n
    | _ -> schema_error "complexType without a name attribute"
  in
  let env = Ns.extend env el in
  (* accept both direct children (the paper's draft style) and an
     xsd:sequence wrapper (the final recommendation) *)
  let containers =
    let seqs =
      List.filter (fun c -> is_schema_element env c "sequence")
        (Doc.child_elements el)
    in
    if seqs = [] then [ el ] else seqs
  in
  let ct_elements =
    List.concat_map
      (fun container ->
        let env = Ns.extend env container in
        List.filter_map
          (fun c ->
            let env = Ns.extend env c in
            if is_schema_element env c "element" then
              Some (parse_element env c)
            else if
              is_schema_element env c "annotation"
              || is_schema_element env c "sequence"
            then None
            else
              schema_error "complexType %S: unsupported child <%s>" ct_name
                c.Doc.tag)
          (Doc.child_elements container))
      containers
  in
  if ct_elements = [] then
    schema_error "complexType %S has no elements" ct_name;
  { ct_name; ct_elements; ct_documentation = documentation_of env el }

(** [of_document doc] parses a schema document. Raises {!Schema_error}. *)
let of_document (doc : Doc.t) : t =
  let root = doc.Doc.root in
  let env = Ns.extend Ns.empty root in
  if not (is_schema_element env root "schema") then
    schema_error "root element <%s> is not an XML Schema" root.Doc.tag;
  let types =
    List.filter_map
      (fun c ->
        let env = Ns.extend env c in
        if is_schema_element env c "complexType" then
          Some (parse_complex_type env c)
        else None)
      (Doc.child_elements root)
  in
  let simple_types =
    List.filter_map
      (fun c ->
        let env = Ns.extend env c in
        if is_schema_element env c "simpleType" then
          Some (parse_simple_type env c)
        else None)
      (Doc.child_elements root)
  in
  if types = [] then schema_error "schema defines no complexType";
  (* names must be unique across both kinds *)
  let seen = Hashtbl.create 8 in
  let check_name kind name =
    if Hashtbl.mem seen name then schema_error "duplicate %s %S" kind name;
    Hashtbl.add seen name ()
  in
  List.iter (fun ct -> check_name "complexType" ct.ct_name) types;
  List.iter (fun st -> check_name "simpleType" st.st_name) simple_types;
  { target_namespace = Doc.attr root "targetNamespace"
  ; documentation = documentation_of env root
  ; types; simple_types }

(** [of_string s] parses schema text. Raises {!Schema_error} (wrapping
    XML parse errors). *)
let of_string (s : string) : t =
  let doc =
    try Parse.document s
    with Parse.Error _ as e ->
      schema_error "not well-formed XML: %s" (Printexc.to_string e)
  in
  of_document doc
