(** XML Schema subset: the metadata definition language of the paper
    (sections 4.1.1 and Appendix A). Accepts both the 1999 draft
    spellings ([xsd:unsigned-long], [maxOccurs="*"]) and the final 2001
    recommendation ([xsd:unsignedLong], [maxOccurs="unbounded"],
    [xsd:sequence] wrappers). The AST is independent of the
    communication layers; {!Omf_xml2wire.Mapper} maps it onto PBIO. *)

val schema_namespaces : string list
val is_schema_uri : string -> bool

type max_occurs =
  | Bounded of int  (** numeric: a static array bound *)
  | Unbounded  (** "*" or "unbounded": dynamically sized *)
  | Counted_by of string
      (** a sibling integer element gives the run-time count *)

type element = {
  el_name : string;
  el_type : type_ref;
  min_occurs : int;
  max_occurs : max_occurs option;  (** [None] = plain scalar element *)
}

and type_ref =
  | Builtin of builtin  (** a type from the XML Schema namespace *)
  | Defined of string  (** a named complexType from this document *)

and builtin =
  | B_string
  | B_boolean
  | B_byte
  | B_unsigned_byte
  | B_short
  | B_unsigned_short
  | B_int  (** xsd:int and xsd:integer *)
  | B_unsigned_int
  | B_long
  | B_unsigned_long
  | B_float
  | B_double

type complex_type = {
  ct_name : string;
  ct_elements : element list;
  ct_documentation : string option;
}

(** A named simple type derived by restriction of a builtin (the paper's
    footnote 1): usable wherever a builtin is, with extra lexical
    constraints checked by validation. *)
type simple_type = {
  st_name : string;
  st_base : builtin;
  st_enumeration : string list;  (** empty = unconstrained *)
  st_min_inclusive : float option;
  st_max_inclusive : float option;
}

type t = {
  target_namespace : string option;
  documentation : string option;
  types : complex_type list;  (** in document order *)
  simple_types : simple_type list;
}

val find_type : t -> string -> complex_type option
val find_simple_type : t -> string -> simple_type option
val builtin_name : builtin -> string
val builtin_of_name : string -> builtin option
(** Accepts both draft and final spellings. *)

exception Schema_error of string

val canonical : t -> string
(** A deterministic rendering of the schema's structural content —
    names, types, occurrence bounds, simple-type facets — with
    documentation, namespace prose and source formatting excluded.
    Registries fingerprint this (SHA-256) for content addressing: two
    documents that differ only in whitespace or annotations
    canonicalize identically. *)

val of_document : Omf_xml.Doc.t -> t
val of_string : string -> t
(** Raises {!Schema_error} (wrapping XML parse errors). *)
