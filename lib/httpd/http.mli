(** Minimal HTTP/1.0 over TCP (GET only): enough protocol for metadata
    documents to be retrieved "in the same manner that web browsers
    retrieve other XML documents" (section 7). *)

exception Http_error of string

type response = {
  status : int;
  reason : string;
  content_type : string;
  body : string;
}

val ok : ?content_type:string -> string -> response
val not_found : string -> response
val server_error : string -> response

(** {1 Server} *)

type handler = path:string -> headers:(string * string) list -> response

type server

val port : server -> int
(** The actually bound port (useful with [~port:0]). *)

val serve : ?host:string -> port:int -> handler -> server
(** Host the accept loop and every connection on one reactor thread —
    no thread per connection. Each request must complete within a 10 s
    deadline or its connection is dropped. [~port:0] binds an ephemeral
    port (read it from the result). *)

val shutdown : server -> unit
(** Stop accepting, close in-flight connections, join the loop thread.
    Idempotent. *)

val serve_table : ?host:string -> port:int -> (string * string) list -> server
(** Serve a fixed [path -> document] table. *)

val directory_handler : string -> handler
(** The handler behind {!serve_directory}: [/name.xsd ->
    dir/name.xsd], traversal-safe, 404 for anything else. Exposed so
    callers can wrap it (request counting, extra routes) before
    {!serve}. *)

val serve_directory : ?host:string -> port:int -> string -> server
(** Serve the [*.xsd] files of a directory; traversal-safe. *)

val metrics_handler :
  (string * (unit -> (string * int) list)) list -> handler
(** [metrics_handler sources] answers [GET /metrics] with each
    [(component, snapshot)] rendered as Prometheus text
    ([omf_<component>_<name> <value>] lines); snapshots are taken per
    request. Everything else is 404. *)

val serve_metrics :
  ?host:string ->
  port:int ->
  (string * (unit -> (string * int) list)) list ->
  server
(** Mount {!metrics_handler} on its own port (relayd [--metrics-port],
    format server [?metrics_port]). *)

(** {1 Client} *)

val get :
  ?host:string -> port:int -> path:string -> ?timeout_s:float -> unit -> string
(** Blocking GET; returns the body. Raises {!Http_error} on connection
    failure or non-200 — exactly what a discovery source should do so
    the fallback chain can take over. [timeout_s] bounds connection
    establishment and each read/write, so a server that accepts but
    never answers becomes an {!Http_error} instead of a hang. *)

val fetcher :
  ?host:string ->
  port:int ->
  path:string ->
  ?timeout_s:float ->
  unit ->
  unit ->
  string
(** A {!Omf_xml2wire.Discovery}-compatible fetch closure for a URL. *)
