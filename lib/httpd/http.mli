(** Minimal HTTP/1.0 over TCP (GET and POST): enough protocol for
    metadata documents to be retrieved "in the same manner that web
    browsers retrieve other XML documents" (section 7), plus the POST
    route the schema registry mounts for registration. *)

exception Http_error of string

type response = {
  status : int;
  reason : string;
  content_type : string;
  body : string;
}

val ok : ?content_type:string -> string -> response
val not_found : string -> response
val server_error : string -> response
val forbidden : string -> response
(** 403: the path tries to escape the served tree. *)

val conflict : string -> response
(** 409: the registry's compatibility-gate rejection. *)

val percent_decode : string -> string option
(** Decode [%XX] escapes; [None] on a malformed escape. *)

(** {1 Server} *)

type handler = path:string -> headers:(string * string) list -> response

type request = {
  meth : string;  (** "GET" or "POST" *)
  path : string;
  headers : (string * string) list;  (** lowercased names *)
  body : string;  (** "" when absent *)
}

type request_handler = request -> response

type server

val port : server -> int
(** The actually bound port (useful with [~port:0]). *)

val serve_requests : ?host:string -> port:int -> request_handler -> server
(** Host the accept loop and every connection on one reactor thread —
    no thread per connection. The handler sees the full request
    (method, path, headers, body) so POST routes can be mounted. Each
    request must complete within a 10 s deadline or its connection is
    dropped. [~port:0] binds an ephemeral port (read it from the
    result). *)

val serve : ?host:string -> port:int -> handler -> server
(** GET-only view of {!serve_requests}: the historical entry point;
    non-GET methods get a 400. *)

val shutdown : server -> unit
(** Stop accepting, close in-flight connections, join the loop thread.
    Idempotent. *)

val serve_table : ?host:string -> port:int -> (string * string) list -> server
(** Serve a fixed [path -> document] table. *)

val directory_handler : string -> handler
(** The handler behind {!serve_directory}: [/name.xsd -> dir/name.xsd].
    Percent-escapes are decoded before any check; a path that tries to
    escape the tree ([..] segments, absolute [//...]) is 403, one that
    merely names nothing served here (subdirectory, non-[.xsd],
    missing) is 404. Exposed so callers can wrap it (request counting,
    extra routes) before {!serve}. *)

val serve_directory : ?host:string -> port:int -> string -> server
(** Serve the [*.xsd] files of a directory; traversal-safe. *)

val metrics_handler :
  ?staleness:bool ->
  ?routes:(string * (unit -> response)) list ->
  (string * (unit -> (string * int) list)) list ->
  handler
(** [metrics_handler sources] answers [GET /metrics] with each
    [(component, snapshot)] rendered as Prometheus text
    ([omf_<component>_<name> <value>] lines); snapshots are taken per
    request. [~staleness:true] adds scrape-time staleness marks
    (default off): each scrape is compared against the previous one
    and annotated with a [# staleness] comment plus an
    [omf_<component>_stale] marker series counting unchanged series —
    see {!Omf_util.Counters.prometheus}. [routes] mounts extra
    [(path, thunk)] endpoints beside [/metrics] — relayd's
    [/trace/spans] and [/trace/summary] live here. Everything else is
    404. *)

val serve_metrics :
  ?host:string ->
  port:int ->
  ?staleness:bool ->
  ?routes:(string * (unit -> response)) list ->
  (string * (unit -> (string * int) list)) list ->
  server
(** Mount {!metrics_handler} on its own port (relayd [--metrics-port],
    format server [?metrics_port]). *)

(** {1 Client} *)

val request :
  ?host:string ->
  port:int ->
  meth:string ->
  path:string ->
  ?body:string ->
  ?timeout_s:float ->
  unit ->
  response
(** Blocking request returning the full parsed response — status
    included, so callers that care about 403-vs-404 or the registry's
    409 can inspect it. Raises {!Http_error} only on transport problems
    (connect failure, timeout, truncated or malformed response).
    [timeout_s] bounds connection establishment and each read/write. *)

val get :
  ?host:string -> port:int -> path:string -> ?timeout_s:float -> unit -> string
(** Blocking GET; returns the body. Raises {!Http_error} on connection
    failure or non-200 — exactly what a discovery source should do so
    the fallback chain can take over. [timeout_s] bounds connection
    establishment and each read/write, so a server that accepts but
    never answers becomes an {!Http_error} instead of a hang. *)

val fetcher :
  ?host:string ->
  port:int ->
  path:string ->
  ?timeout_s:float ->
  unit ->
  unit ->
  string
(** A {!Omf_xml2wire.Discovery}-compatible fetch closure for a URL. *)
