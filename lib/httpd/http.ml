(** Minimal HTTP/1.0 over TCP: enough protocol for metadata documents to
    be "retrieved from remote locations in the same manner that web
    browsers retrieve other XML documents" (section 7). GET only.

    The server dispatches on a handler function; {!serve_table} and
    {!serve_directory} cover the metaserver use cases. The client's
    {!get} returns the body and doubles as the fetch closure for
    {!Omf_xml2wire.Discovery.from_fetcher}. *)

let log = Logs.Src.create "omf.http" ~doc:"mini HTTP server/client"

module Log = (val Logs.src_log log)

exception Http_error of string

let http_error fmt = Printf.ksprintf (fun s -> raise (Http_error s)) fmt

type response = {
  status : int;
  reason : string;
  content_type : string;
  body : string;
}

let ok ?(content_type = "text/xml") body =
  { status = 200; reason = "OK"; content_type; body }

let not_found path =
  { status = 404; reason = "Not Found"; content_type = "text/plain"
  ; body = Printf.sprintf "no document at %s\n" path }

let server_error msg =
  { status = 500; reason = "Internal Server Error"
  ; content_type = "text/plain"; body = msg ^ "\n" }

(* ------------------------------------------------------------------ *)
(* Wire reading helpers                                                 *)
(* ------------------------------------------------------------------ *)

let read_line_crlf (ic : in_channel) : string =
  let b = Buffer.create 64 in
  let rec go () =
    match input_char ic with
    | '\n' -> ()
    | '\r' -> (
      match input_char ic with
      | '\n' -> ()
      | c ->
        Buffer.add_char b '\r';
        Buffer.add_char b c;
        go ())
    | c ->
      Buffer.add_char b c;
      go ()
  in
  go ();
  Buffer.contents b

let read_headers ic : (string * string) list =
  let rec go acc =
    let line = read_line_crlf ic in
    if String.equal line "" then List.rev acc
    else
      match String.index_opt line ':' with
      | None -> go acc (* tolerate junk header lines *)
      | Some i ->
        let k = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
        let v =
          String.trim (String.sub line (i + 1) (String.length line - i - 1))
        in
        go ((k, v) :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Server                                                               *)
(* ------------------------------------------------------------------ *)

type handler = path:string -> headers:(string * string) list -> response

let write_response oc (r : response) =
  output_string oc
    (Printf.sprintf
       "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
       r.status r.reason r.content_type (String.length r.body));
  output_string oc r.body;
  flush oc

let handle_connection (handler : handler) fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let request_line = read_line_crlf ic in
     let headers = read_headers ic in
     match String.split_on_char ' ' request_line with
     | [ "GET"; path; _ ] | [ "GET"; path ] ->
       let resp =
         try handler ~path ~headers
         with e -> server_error (Printexc.to_string e)
       in
       Log.info (fun m -> m "GET %s -> %d" path resp.status);
       write_response oc resp
     | _ ->
       write_response oc
         { status = 400; reason = "Bad Request"; content_type = "text/plain"
         ; body = "only GET is supported\n" }
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

type server = {
  socket : Unix.file_descr;
  port : int;
  stopping : bool ref;
  acceptor : Thread.t;  (** joined by {!shutdown}: no leaked listener *)
}

(** [serve ?host ~port handler] starts an accept loop in a thread.
    [~port:0] binds an ephemeral port; read it from the result. *)
let serve ?(host = "127.0.0.1") ~port (handler : handler) : server =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock 32;
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stopping = ref false in
  let accept_loop () =
    try
      while not !stopping do
        let fd, _ = Unix.accept sock in
        if !stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
        else ignore (Thread.create (handle_connection handler) fd)
      done
    with Unix.Unix_error _ -> ()
  in
  { socket = sock; port = bound_port; stopping
  ; acceptor = Thread.create accept_loop () }

let port (s : server) = s.port

(** Stop accepting and join the acceptor thread (in-flight request
    handlers finish on their own). *)
let shutdown (s : server) =
  s.stopping := true;
  (* shutdown() wakes a blocked accept(2); close alone may not *)
  (try Unix.shutdown s.socket Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close s.socket with Unix.Unix_error _ -> ());
  Thread.join s.acceptor

(** Serve a fixed table of [path -> document]. *)
let serve_table ?host ~port (table : (string * string) list) : server =
  serve ?host ~port (fun ~path ~headers:_ ->
      match List.assoc_opt path table with
      | Some body -> ok body
      | None -> not_found path)

(** Serve [*.xsd] files from a directory: [/name.xsd -> dir/name.xsd]. *)
let serve_directory ?host ~port (dir : string) : server =
  serve ?host ~port (fun ~path ~headers:_ ->
      let name = Filename.basename path in
      if
        String.equal name "" || String.contains name '/'
        || not (Filename.check_suffix name ".xsd")
      then not_found path
      else
        let file = Filename.concat dir name in
        if Sys.file_exists file then begin
          let ic = open_in_bin file in
          let body =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          ok body
        end
        else not_found path)

(* ------------------------------------------------------------------ *)
(* Client                                                               *)
(* ------------------------------------------------------------------ *)

(** [get ~host ~port ~path] performs a blocking GET and returns the body.
    Raises {!Http_error} on connection failure or non-200 status — which
    is exactly what a {!Omf_xml2wire.Discovery} source should do so the
    fallback chain can take over. [timeout_s] bounds connection
    establishment and each read/write: a server that accepts but never
    answers surfaces as [Http_error "...: timeout..."] instead of a
    hang. *)
let get ?(host = "127.0.0.1") ~port ~path ?timeout_s () : string =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        raise (Http_error s))
      fmt
  in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (match timeout_s with
  | None -> (
    try Unix.connect sock addr
    with Unix.Unix_error (e, _, _) ->
      fail "connect %s:%d: %s" host port (Unix.error_message e))
  | Some dt -> (
    (try
       Unix.setsockopt_float sock Unix.SO_RCVTIMEO dt;
       Unix.setsockopt_float sock Unix.SO_SNDTIMEO dt
     with Unix.Unix_error _ -> ());
    Unix.set_nonblock sock;
    (match Unix.connect sock addr with
    | () -> ()
    | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _)
      -> (
      match Unix.select [] [ sock ] [] dt with
      | _, [ _ ], _ -> (
        match Unix.getsockopt_error sock with
        | None -> ()
        | Some e -> fail "connect %s:%d: %s" host port (Unix.error_message e))
      | _ -> fail "connect %s:%d: timeout after %.3gs" host port dt)
    | exception Unix.Unix_error (e, _, _) ->
      fail "connect %s:%d: %s" host port (Unix.error_message e));
    Unix.clear_nonblock sock));
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      (* SO_RCVTIMEO expiry surfaces as EAGAIN (Sys_error/Sys_blocked_io
         through the channel layer): translate to a readable Http_error *)
      try
        let ic = Unix.in_channel_of_descr sock in
        let oc = Unix.out_channel_of_descr sock in
        output_string oc
          (Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\n\r\n" path host);
        flush oc;
        let status_line = read_line_crlf ic in
        let headers = read_headers ic in
        let status =
          match String.split_on_char ' ' status_line with
          | _ :: code :: _ -> (
            match int_of_string_opt code with
            | Some c -> c
            | None -> http_error "bad status line %S" status_line)
          | _ -> http_error "bad status line %S" status_line
        in
        let body =
          match List.assoc_opt "content-length" headers with
          | Some n -> (
            match int_of_string_opt n with
            | Some n when n >= 0 -> really_input_string ic n
            | _ -> http_error "bad content-length %S" n)
          | None ->
            (* HTTP/1.0: read to EOF *)
            let b = Buffer.create 1024 in
            (try
               while true do
                 Buffer.add_channel b ic 1
               done
             with End_of_file -> ());
            Buffer.contents b
        in
        if status <> 200 then http_error "GET %s: HTTP %d" path status;
        body
      with
      | End_of_file ->
        http_error "GET %s:%d%s: unexpected end of stream" host port path
      | (Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) | Sys_blocked_io)
        when timeout_s <> None ->
        http_error "GET %s:%d%s: timeout after %.3gs" host port path
          (Option.value ~default:0.0 timeout_s)
      | Sys_error m when timeout_s <> None ->
        (* channel layer turns the EAGAIN into Sys_error
           "Resource temporarily unavailable" *)
        if
          String.length m >= 11
          && String.sub m (String.length m - 11) 11 = "unavailable"
        then
          http_error "GET %s:%d%s: timeout after %.3gs" host port path
            (Option.value ~default:0.0 timeout_s)
        else http_error "GET %s:%d%s: %s" host port path m)

(** A {!Omf_xml2wire.Discovery}-compatible fetch closure for a URL. *)
let fetcher ?(host = "127.0.0.1") ~port ~path ?timeout_s () : unit -> string =
  fun () -> get ~host ~port ~path ?timeout_s ()
