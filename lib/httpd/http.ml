(** Minimal HTTP/1.0 over TCP: enough protocol for metadata documents to
    be "retrieved from remote locations in the same manner that web
    browsers retrieve other XML documents" (section 7). GET only.

    The server dispatches on a handler function; {!serve_table} and
    {!serve_directory} cover the metaserver use cases. The client's
    {!get} returns the body and doubles as the fetch closure for
    {!Omf_xml2wire.Discovery.from_fetcher}. *)

let log = Logs.Src.create "omf.http" ~doc:"mini HTTP server/client"

module Log = (val Logs.src_log log)

exception Http_error of string

let http_error fmt = Printf.ksprintf (fun s -> raise (Http_error s)) fmt

type response = {
  status : int;
  reason : string;
  content_type : string;
  body : string;
}

let ok ?(content_type = "text/xml") body =
  { status = 200; reason = "OK"; content_type; body }

let not_found path =
  { status = 404; reason = "Not Found"; content_type = "text/plain"
  ; body = Printf.sprintf "no document at %s\n" path }

let server_error msg =
  { status = 500; reason = "Internal Server Error"
  ; content_type = "text/plain"; body = msg ^ "\n" }

let forbidden path =
  { status = 403; reason = "Forbidden"; content_type = "text/plain"
  ; body = Printf.sprintf "%s escapes the served tree\n" path }

let conflict msg =
  { status = 409; reason = "Conflict"; content_type = "text/plain"
  ; body = msg ^ "\n" }

(** Decode [%XX] escapes; [None] on a malformed escape. ['+'] is left
    alone — these are paths, not form bodies. *)
let percent_decode (s : string) : string option =
  let n = String.length s in
  let b = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec go i =
    if i >= n then Some (Buffer.contents b)
    else if s.[i] = '%' then
      if i + 2 >= n then None
      else
        match (hex s.[i + 1], hex s.[i + 2]) with
        | Some hi, Some lo ->
          Buffer.add_char b (Char.chr ((hi * 16) + lo));
          go (i + 3)
        | _ -> None
    else begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Wire reading helpers                                                 *)
(* ------------------------------------------------------------------ *)

let read_line_crlf (ic : in_channel) : string =
  let b = Buffer.create 64 in
  let rec go () =
    match input_char ic with
    | '\n' -> ()
    | '\r' -> (
      match input_char ic with
      | '\n' -> ()
      | c ->
        Buffer.add_char b '\r';
        Buffer.add_char b c;
        go ())
    | c ->
      Buffer.add_char b c;
      go ()
  in
  go ();
  Buffer.contents b

let read_headers ic : (string * string) list =
  let rec go acc =
    let line = read_line_crlf ic in
    if String.equal line "" then List.rev acc
    else
      match String.index_opt line ':' with
      | None -> go acc (* tolerate junk header lines *)
      | Some i ->
        let k = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
        let v =
          String.trim (String.sub line (i + 1) (String.length line - i - 1))
        in
        go ((k, v) :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Server                                                               *)
(* ------------------------------------------------------------------ *)

type handler = path:string -> headers:(string * string) list -> response

type request = {
  meth : string;  (** "GET" or "POST" *)
  path : string;
  headers : (string * string) list;  (** lowercased names *)
  body : string;  (** "" when absent *)
}

type request_handler = request -> response

module Reactor = Omf_reactor.Reactor
module Conn = Omf_reactor.Conn

(** Every request must complete (headers in, response flushed) within
    this window or the connection is dropped — a client that connects
    and goes silent cannot pin server state. *)
let request_deadline_s = 10.0

(** Request headers larger than this are rejected with 400. *)
let max_request_bytes = 65536

let render (r : response) : Bytes.t =
  Bytes.of_string
    (Printf.sprintf
       "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
       r.status r.reason r.content_type (String.length r.body) r.body)

let bad_request msg =
  { status = 400; reason = "Bad Request"; content_type = "text/plain"
  ; body = msg ^ "\n" }

let parse_header_lines (lines : string list) : (string * string) list =
  List.filter_map
    (fun line ->
      match String.index_opt line ':' with
      | None -> None (* tolerate junk header lines *)
      | Some i ->
        let k = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
        let v =
          String.trim (String.sub line (i + 1) (String.length line - i - 1))
        in
        Some (k, v))
    lines

let split_crlf (s : string) : string list =
  String.split_on_char '\n' s
  |> List.map (fun l ->
         let n = String.length l in
         if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)

(** Index one past the ["\r\n\r\n"] header terminator, scanning from
    [from]. *)
let find_headers_end (b : Buffer.t) (from : int) : int option =
  let len = Buffer.length b in
  let rec go i =
    if i + 4 > len then None
    else if
      Buffer.nth b i = '\r'
      && Buffer.nth b (i + 1) = '\n'
      && Buffer.nth b (i + 2) = '\r'
      && Buffer.nth b (i + 3) = '\n'
    then Some (i + 4)
    else go (i + 1)
  in
  go (max 0 from)

type server = {
  socket : Unix.file_descr;
  port : int;
  loop : Reactor.t;
  mutable loop_thread : Thread.t;
  conns : (int, Conn.t) Hashtbl.t;  (** loop-thread only *)
  mutable next_id : int;
  mutable stopped : bool;
}

let respond (conn : Conn.t) (r : response) =
  Conn.send_raw conn (render r);
  Conn.flush_close conn

let dispatch (handler : request_handler) (conn : Conn.t) (req : request) =
  let resp =
    try handler req with e -> server_error (Printexc.to_string e)
  in
  Log.info (fun m -> m "%s %s -> %d" req.meth req.path resp.status);
  respond conn resp

(** Parse head (request line + header lines, CRLF-separated, without
    the blank line); [Ok (meth, path, headers, body_len)] or a ready
    error response. *)
let parse_head (head : string) : (string * string * (string * string) list * int, response) result =
  match split_crlf head with
  | [] -> Error (bad_request "empty request")
  | request_line :: header_lines -> (
    let headers = parse_header_lines header_lines in
    match String.split_on_char ' ' request_line with
    | ([ meth; path; _ ] | [ meth; path ])
      when String.equal meth "GET" || String.equal meth "POST" -> (
      match List.assoc_opt "content-length" headers with
      | None -> Ok (meth, path, headers, 0)
      | Some n -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> Ok (meth, path, headers, n)
        | _ -> Error (bad_request (Printf.sprintf "bad content-length %S" n))))
    | _ -> Error (bad_request "only GET and POST are supported"))

let accept_connection (s : server) (handler : request_handler) fd =
  let id = s.next_id in
  s.next_id <- s.next_id + 1;
  let buf = Buffer.create 256 in
  let done_ = ref false in
  (* set once the head is parsed; the request then waits for its body *)
  let pending = ref None in
  let finish conn =
    match !pending with
    | Some (meth, path, headers, stop, need)
      when Buffer.length buf >= stop + need ->
      done_ := true;
      let body = Buffer.sub buf stop need in
      dispatch handler conn { meth; path; headers; body }
    | _ -> ()
  in
  let conn =
    (* zero-copy chunk delivery: the slice borrows the reactor's
       scratch buffer, valid only inside this callback — consumed
       immediately into the request accumulator, so no intermediate
       per-read [Bytes.t] copy is ever allocated *)
    Conn.attach s.loop fd ~mode:Chunks
      ~on_chunk:(fun conn (chunk : Omf_util.Slice.t) ->
        if not !done_ then begin
          let scan_from = Buffer.length buf - 3 in
          Buffer.add_subbytes buf chunk.Omf_util.Slice.buf
            chunk.Omf_util.Slice.off chunk.Omf_util.Slice.len;
          if Buffer.length buf > max_request_bytes then begin
            done_ := true;
            respond conn (bad_request "request too large")
          end
          else if !pending <> None then finish conn
          else
            match find_headers_end buf scan_from with
            | None -> ()
            | Some stop -> (
              (* head excludes the blank line *)
              match parse_head (Buffer.sub buf 0 (stop - 4)) with
              | Error resp ->
                done_ := true;
                respond conn resp
              | Ok (_, _, _, need) when need > max_request_bytes ->
                done_ := true;
                respond conn (bad_request "request too large")
              | Ok (meth, path, headers, need) ->
                pending := Some (meth, path, headers, stop, need);
                finish conn)
        end)
      ~on_close:(fun _ _ -> Hashtbl.remove s.conns id)
      ()
  in
  Conn.set_deadline conn ~reason:"request timeout" (Some request_deadline_s);
  Hashtbl.replace s.conns id conn

(** [serve_requests ?host ~port handler] hosts the accept loop and
    every connection on one reactor thread — no thread per connection.
    The handler sees the full request (method, path, headers, body), so
    POST routes (registry registration) can be mounted. [~port:0] binds
    an ephemeral port; read it from the result. *)
let serve_requests ?(host = "127.0.0.1") ~port (handler : request_handler) :
    server =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock 32;
  Unix.set_nonblock sock;
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let loop = Reactor.create () in
  let s =
    { socket = sock; port = bound_port; loop; loop_thread = Thread.self ()
    ; conns = Hashtbl.create 16; next_id = 0; stopped = false }
  in
  let rec accept_all () =
    match Unix.accept ~cloexec:true sock with
    | fd, _ ->
      accept_connection s handler fd;
      accept_all ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  ignore (Reactor.register loop sock ~on_readable:accept_all ~on_writable:ignore);
  s.loop_thread <- Thread.create Reactor.run loop;
  s

(** GET-only view: the historical entry point. Non-GET methods get the
    same 400 they always did. *)
let serve ?host ~port (handler : handler) : server =
  serve_requests ?host ~port (fun (r : request) ->
      if String.equal r.meth "GET" then
        handler ~path:r.path ~headers:r.headers
      else bad_request "only GET is supported")

let port (s : server) = s.port

(** Stop accepting, close in-flight connections, and join the loop
    thread. Idempotent. *)
let shutdown (s : server) =
  if not s.stopped then begin
    s.stopped <- true;
    Reactor.inject s.loop (fun () ->
        (try Unix.shutdown s.socket Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ());
        let live = Hashtbl.fold (fun _ c acc -> c :: acc) s.conns [] in
        List.iter (fun c -> Conn.doom c "server shutdown") live;
        Reactor.stop s.loop);
    Thread.join s.loop_thread;
    (try Unix.close s.socket with Unix.Unix_error _ -> ());
    Reactor.dispose s.loop
  end

(** Serve a fixed table of [path -> document]. *)
let serve_table ?host ~port (table : (string * string) list) : server =
  serve ?host ~port (fun ~path ~headers:_ ->
      match List.assoc_opt path table with
      | Some body -> ok body
      | None -> not_found path)

(** The [*.xsd]-from-a-directory handler behind {!serve_directory}:
    [/name.xsd -> dir/name.xsd]. Percent-escapes are decoded before any
    check, so [%2e%2e] cannot smuggle a dot-dot past the filter. A path
    that tries to escape the tree ([..] segments, absolute [//...]) is
    a 403; a path that merely names nothing served here (subdirectory,
    non-[.xsd], missing file) is a 404. Exposed so callers (the
    metaserver) can wrap it — counting requests, mounting it next to
    other routes — before handing it to {!serve}. *)
let directory_handler (dir : string) : handler =
 fun ~path ~headers:_ ->
  match percent_decode path with
  | None -> bad_request (Printf.sprintf "malformed percent-encoding in %s" path)
  | Some decoded ->
    if String.length decoded = 0 || decoded.[0] <> '/' then
      bad_request "request path must be absolute"
    else
      let name = String.sub decoded 1 (String.length decoded - 1) in
      let segments = String.split_on_char '/' name in
      if List.exists (String.equal "..") segments then forbidden path
      else if String.length name > 0 && name.[0] = '/' then
        (* "//etc/passwd": an absolute path after the route slash *)
        forbidden path
      else if
        List.length segments > 1
        || String.equal name ""
        || not (Filename.check_suffix name ".xsd")
      then not_found path
      else
        let file = Filename.concat dir name in
        if Sys.file_exists file then begin
          let ic = open_in_bin file in
          let body =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          ok body
        end
        else not_found path

let serve_directory ?host ~port (dir : string) : server =
  serve ?host ~port (directory_handler dir)

(* ------------------------------------------------------------------ *)
(* Client                                                               *)
(* ------------------------------------------------------------------ *)

(** [request ~meth ~port ~path ?body ()] performs a blocking request
    and returns the full parsed response — status included, so callers
    that care about 403-vs-404 (tests) or 409 (registry compat
    rejection) can inspect it without exception plumbing. Raises
    {!Http_error} only on transport problems (connect failure, timeout,
    truncated stream, malformed response). [timeout_s] bounds
    connection establishment and each read/write. *)
let request ?(host = "127.0.0.1") ~port ~meth ~path ?(body = "") ?timeout_s ()
    : response =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        raise (Http_error s))
      fmt
  in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (match timeout_s with
  | None -> (
    try Unix.connect sock addr
    with Unix.Unix_error (e, _, _) ->
      fail "connect %s:%d: %s" host port (Unix.error_message e))
  | Some dt -> (
    (try
       Unix.setsockopt_float sock Unix.SO_RCVTIMEO dt;
       Unix.setsockopt_float sock Unix.SO_SNDTIMEO dt
     with Unix.Unix_error _ -> ());
    Unix.set_nonblock sock;
    (match Unix.connect sock addr with
    | () -> ()
    | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _)
      -> (
      match Unix.select [] [ sock ] [] dt with
      | _, [ _ ], _ -> (
        match Unix.getsockopt_error sock with
        | None -> ()
        | Some e -> fail "connect %s:%d: %s" host port (Unix.error_message e))
      | _ -> fail "connect %s:%d: timeout after %.3gs" host port dt)
    | exception Unix.Unix_error (e, _, _) ->
      fail "connect %s:%d: %s" host port (Unix.error_message e));
    Unix.clear_nonblock sock));
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      (* SO_RCVTIMEO expiry surfaces as EAGAIN (Sys_error/Sys_blocked_io
         through the channel layer): translate to a readable Http_error *)
      try
        let ic = Unix.in_channel_of_descr sock in
        let oc = Unix.out_channel_of_descr sock in
        output_string oc
          (Printf.sprintf
             "%s %s HTTP/1.0\r\nHost: %s\r\nContent-Length: %d\r\n\r\n%s" meth
             path host (String.length body) body);
        flush oc;
        let status_line = read_line_crlf ic in
        let headers = read_headers ic in
        let status, reason =
          match String.split_on_char ' ' status_line with
          | _ :: code :: rest -> (
            match int_of_string_opt code with
            | Some c -> (c, String.concat " " rest)
            | None -> http_error "bad status line %S" status_line)
          | _ -> http_error "bad status line %S" status_line
        in
        let resp_body =
          match List.assoc_opt "content-length" headers with
          | Some n -> (
            match int_of_string_opt n with
            | Some n when n >= 0 ->
              (* fill by hand: a server that closes early must surface
                 as a typed truncation error carrying the byte counts,
                 not a bare [End_of_file] or a silent short body *)
              let buf = Bytes.create n in
              let rec fill got =
                if got < n then begin
                  let r = input ic buf got (n - got) in
                  if r = 0 then
                    http_error "%s %s:%d%s: truncated body: got %d of %d bytes"
                      meth host port path got n;
                  fill (got + r)
                end
              in
              fill 0;
              Bytes.unsafe_to_string buf
            | _ -> http_error "bad content-length %S" n)
          | None ->
            (* HTTP/1.0: read to EOF *)
            let b = Buffer.create 1024 in
            (try
               while true do
                 Buffer.add_channel b ic 1
               done
             with End_of_file -> ());
            Buffer.contents b
        in
        { status; reason
        ; content_type =
            Option.value ~default:"text/plain"
              (List.assoc_opt "content-type" headers)
        ; body = resp_body }
      with
      | End_of_file ->
        http_error "%s %s:%d%s: unexpected end of stream" meth host port path
      | (Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) | Sys_blocked_io)
        when timeout_s <> None ->
        http_error "%s %s:%d%s: timeout after %.3gs" meth host port path
          (Option.value ~default:0.0 timeout_s)
      | Sys_error m ->
        (* channel layer turns the EAGAIN into Sys_error
           "Resource temporarily unavailable" *)
        if
          timeout_s <> None
          && String.length m >= 11
          && String.sub m (String.length m - 11) 11 = "unavailable"
        then
          http_error "%s %s:%d%s: timeout after %.3gs" meth host port path
            (Option.value ~default:0.0 timeout_s)
        else
          (* e.g. a connection reset mid-body: still a typed transport
             error, never a raw Sys_error *)
          http_error "%s %s:%d%s: %s" meth host port path m)

(** [get ~host ~port ~path] performs a blocking GET and returns the
    body. Raises {!Http_error} on connection failure or non-200 status
    — which is exactly what a {!Omf_xml2wire.Discovery} source should
    do so the fallback chain can take over. *)
let get ?host ~port ~path ?timeout_s () : string =
  let r = request ?host ~port ~meth:"GET" ~path ?timeout_s () in
  if r.status <> 200 then http_error "GET %s: HTTP %d" path r.status;
  r.body

(** A {!Omf_xml2wire.Discovery}-compatible fetch closure for a URL. *)
let fetcher ?(host = "127.0.0.1") ~port ~path ?timeout_s () : unit -> string =
  fun () -> get ~host ~port ~path ?timeout_s ()

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

(** [metrics_handler sources] answers [GET /metrics] with a
    Prometheus-text rendering of each [(component, snapshot)] source —
    snapshots are taken per request, so mounting a relay's merged
    per-shard counters here gives live scrape data. [routes] mounts
    extra [(path, thunk)] endpoints beside [/metrics] (relayd's
    [/trace/spans] and [/trace/summary]); thunks run per request.
    Everything else is 404. *)
let metrics_handler ?(staleness = false)
    ?(routes : (string * (unit -> response)) list = [])
    (sources : (string * (unit -> (string * int) list)) list) : handler =
  (* One tracker for the handler's lifetime: scrape N+1 is compared
     against scrape N. All requests run on the server's single reactor
     thread, so the unguarded mutation is safe. *)
  let tracker =
    if staleness then Some (Omf_util.Counters.staleness ()) else None
  in
  fun ~path ~headers:_ ->
    if String.equal path "/metrics" then
      ok
        ~content_type:"text/plain; version=0.0.4"
        (String.concat ""
           (List.map
              (fun (component, snapshot) ->
                Omf_util.Counters.prometheus ?staleness:tracker ~component
                  (snapshot ()))
              sources))
    else
      match List.assoc_opt path routes with
      | Some thunk -> thunk ()
      | None -> not_found path

(** Mount [metrics_handler] on its own ephemeral-or-fixed port. *)
let serve_metrics ?host ~port ?staleness ?routes sources : server =
  serve ?host ~port (metrics_handler ?staleness ?routes sources)
