(** Format server: a system-wide registry of format descriptors (the
    role real PBIO deployments used alongside per-connection
    negotiation). Senders register a descriptor once and get a global
    id; message headers carry it; receivers resolve ids with one cached
    lookup. Protocol: length-prefixed frames over TCP —
    ['R' blob] → ['I' id32] (idempotent), ['G' id32] → ['D' blob] / ['N'],
    ['F' fingerprint-hex] → ['I' id32 blob] / ['N'] (content-addressed:
    the SHA-256 carried in relay stream advertisements). *)

exception Protocol_error of string

module Server : sig
  type t = private {
    socket : Unix.file_descr;
    port : int;
    mutex : Mutex.t;
    by_blob : (string, int) Hashtbl.t;
    by_id : (int, string) Hashtbl.t;
    by_fingerprint : (string, int) Hashtbl.t;
    mutable next_id : int;
    counters : Omf_util.Counters.t;
    loop : Omf_reactor.Reactor.t;
    mutable loop_thread : Thread.t;
    conns : (int, Omf_reactor.Conn.t) Hashtbl.t;
    mutable next_conn : int;
    mutable metrics : Omf_httpd.Http.server option;
    mutable stopped : bool;
  }

  val start : ?host:string -> port:int -> ?metrics_port:int -> unit -> t
  (** Serve the registry on one reactor thread ([~port:0] binds an
      ephemeral port). [?metrics_port] additionally mounts a Prometheus
      [GET /metrics] endpoint rendering the server's counters. *)

  val metrics_port : t -> int option
  (** The actually bound metrics port, if metrics were requested. *)

  val stats : t -> (string * int) list
  (** Counter snapshot (registrations, lookups, connections, ...). *)

  val shutdown : t -> unit
  (** Stop accepting, close client connections, join the loop thread
      (and the metrics endpoint, if any). Idempotent. *)

  val size : t -> int
  (** Distinct formats registered so far. *)
end

module Client : sig
  type t

  exception Server_unavailable of string

  val connect : ?host:string -> port:int -> unit -> t
  (** Raises {!Server_unavailable} when nothing is listening. *)

  val register : t -> Omf_pbio.Format.t -> int
  (** Obtain the global id (registering the descriptor if new). *)

  val fetch : t -> int -> string option
  (** Resolve a global id to a descriptor blob; cached. *)

  val fetch_by_fingerprint : t -> string -> (int * string) option
  (** Resolve a blob's hex SHA-256 fingerprint (as carried in relay
      stream advertisements) to [(global id, blob)]; cached. [None]
      when unknown or the server is unavailable. *)

  val resolver : t -> int -> string option
  (** A resolve callback for {!Omf_pbio.Pbio.Receiver.create} that
      degrades to [None] (→ [Unknown_format]) when the server dies. *)

  val close : t -> unit
end
