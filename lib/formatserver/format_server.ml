(** A format server: the system-wide registry of format descriptors that
    production PBIO deployments used instead of (or alongside)
    per-connection negotiation.

    Senders register a format descriptor once and receive a *global id*;
    message headers then carry that id, and any receiver anywhere can
    resolve it with one lookup (cached thereafter). This trades the
    per-connection descriptor frame for a once-per-process round trip —
    and it is precisely the "configuration server" role the paper's
    fault-tolerance discussion assigns to compiled-in formats when the
    network is down.

    Protocol (length-prefixed frames over TCP, via {!Omf_transport.Tcp}):
    - ['R' blob]  register a descriptor; reply ['I' id32] (idempotent:
      re-registering the same blob returns the same id)
    - ['G' id32]  fetch a descriptor; reply ['D' blob] or ['N']
    - ['F' hex]   fetch by SHA-256 fingerprint of the blob (as carried
      in relay stream advertisements); reply ['I' id32 blob] or ['N'] *)

let log = Logs.Src.create "omf.formatserver" ~doc:"format server"

module Log = (val Logs.src_log log)

exception Protocol_error of string

let proto_error fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let u32_to_bytes v =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (v land 0xFF));
  b

let u32_of_bytes b off =
  let c i = Char.code (Bytes.get b (off + i)) in
  (c 0 lsl 24) lor (c 1 lsl 16) lor (c 2 lsl 8) lor c 3

(* ------------------------------------------------------------------ *)
(* Server                                                               *)
(* ------------------------------------------------------------------ *)

module Server = struct
  module Reactor = Omf_reactor.Reactor
  module Conn = Omf_reactor.Conn
  module Counters = Omf_util.Counters

  type t = {
    socket : Unix.file_descr;
    port : int;
    mutex : Mutex.t;  (** guards the registry: {!register}/{!lookup}/{!size}
                          are also called directly by embedding threads *)
    by_blob : (string, int) Hashtbl.t;
    by_id : (int, string) Hashtbl.t;
    by_fingerprint : (string, int) Hashtbl.t;
        (** hex SHA-256 of the blob -> id: receivers that learned a
            fingerprint from a relay advertisement resolve it without
            holding the blob *)
    mutable next_id : int;
    counters : Counters.t;
    loop : Reactor.t;
    mutable loop_thread : Thread.t;
    conns : (int, Conn.t) Hashtbl.t;  (** loop-thread only *)
    mutable next_conn : int;
    mutable metrics : Omf_httpd.Http.server option;
    mutable stopped : bool;
  }

  let register t (blob : string) : int =
    Mutex.lock t.mutex;
    let id =
      match Hashtbl.find_opt t.by_blob blob with
      | Some id ->
        Counters.incr t.counters "registration_hits";
        id
      | None ->
        (* reject blobs that do not decode: the server never serves junk *)
        (try ignore (Omf_pbio.Format_codec.decode blob)
         with Omf_pbio.Format_codec.Codec_error m ->
           Mutex.unlock t.mutex;
           Counters.incr t.counters "registration_rejects";
           proto_error "refusing malformed descriptor: %s" m);
        let id = t.next_id in
        t.next_id <- id + 1;
        Hashtbl.replace t.by_blob blob id;
        Hashtbl.replace t.by_id id blob;
        Hashtbl.replace t.by_fingerprint
          (Omf_util.Sha256.hex (Omf_util.Sha256.digest blob))
          id;
        Counters.incr t.counters "registrations";
        Log.info (fun m -> m "registered format id %d (%d bytes)" id (String.length blob));
        id
    in
    Mutex.unlock t.mutex;
    id

  let lookup t (id : int) : string option =
    Mutex.lock t.mutex;
    let r = Hashtbl.find_opt t.by_id id in
    Mutex.unlock t.mutex;
    Counters.incr t.counters
      (match r with Some _ -> "lookup_hits" | None -> "lookup_misses");
    r

  let lookup_fingerprint t (fp : string) : (int * string) option =
    Mutex.lock t.mutex;
    let r =
      match Hashtbl.find_opt t.by_fingerprint fp with
      | None -> None
      | Some id ->
        Option.map (fun blob -> (id, blob)) (Hashtbl.find_opt t.by_id id)
    in
    Mutex.unlock t.mutex;
    Counters.incr t.counters
      (match r with
      | Some _ -> "fingerprint_hits"
      | None -> "fingerprint_misses");
    r

  (** One registry request, one reply frame — runs on the reactor
      thread; the registry mutex is held only across the table access. *)
  let handle_frame t (conn : Conn.t) (frame : Bytes.t) =
    Counters.incr t.counters "frames_in";
    if Bytes.length frame < 1 then Conn.doom conn "empty frame"
    else
      match Bytes.get frame 0 with
      | 'R' -> (
        let blob = Bytes.sub_string frame 1 (Bytes.length frame - 1) in
        match register t blob with
        | id -> Conn.send conn (Bytes.cat (Bytes.of_string "I") (u32_to_bytes id))
        | exception Protocol_error _ -> Conn.send conn (Bytes.of_string "N"))
      | 'G' when Bytes.length frame >= 5 -> (
        let id = u32_of_bytes frame 1 in
        match lookup t id with
        | Some blob ->
          Conn.send conn (Bytes.cat (Bytes.of_string "D") (Bytes.of_string blob))
        | None -> Conn.send conn (Bytes.of_string "N"))
      | 'G' -> Conn.doom conn "short lookup frame"
      | 'F' -> (
        let fp = Bytes.sub_string frame 1 (Bytes.length frame - 1) in
        match lookup_fingerprint t fp with
        | Some (id, blob) ->
          Conn.send conn
            (Bytes.cat
               (Bytes.cat (Bytes.of_string "I") (u32_to_bytes id))
               (Bytes.of_string blob))
        | None -> Conn.send conn (Bytes.of_string "N"))
      | k -> Conn.doom conn (Printf.sprintf "unknown request kind %C" k)

  let accept_connection t fd =
    let id = t.next_conn in
    t.next_conn <- id + 1;
    Counters.incr t.counters "connections";
    let conn =
      Conn.attach t.loop fd
        ~on_frame:(fun conn frame -> handle_frame t conn frame)
        ~on_close:(fun _ _ -> Hashtbl.remove t.conns id)
        ()
    in
    Hashtbl.replace t.conns id conn

  (** [start ?host ~port ()] runs a format server on its own reactor
      thread (ephemeral port with [~port:0]); stop it with {!shutdown}.
      [?metrics_port] additionally mounts a Prometheus [GET /metrics]
      endpoint rendering the server's counters. *)
  let start ?(host = "127.0.0.1") ~port ?metrics_port () : t =
    let socket, bound_port = Omf_transport.Tcp.listener ~host ~port () in
    Unix.set_nonblock socket;
    let t =
      { socket; port = bound_port; mutex = Mutex.create ()
      ; by_blob = Hashtbl.create 32; by_id = Hashtbl.create 32
      ; by_fingerprint = Hashtbl.create 32; next_id = 1
      ; counters = Counters.create (); loop = Reactor.create ()
      ; loop_thread = Thread.self (); conns = Hashtbl.create 16
      ; next_conn = 0; metrics = None; stopped = false }
    in
    let rec accept_all () =
      match Unix.accept ~cloexec:true socket with
      | fd, _ ->
        accept_connection t fd;
        accept_all ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> ()
    in
    ignore
      (Reactor.register t.loop socket ~on_readable:accept_all
         ~on_writable:ignore);
    t.loop_thread <- Thread.create Reactor.run t.loop;
    (match metrics_port with
    | None -> ()
    | Some p ->
      t.metrics <-
        Some
          (Omf_httpd.Http.serve_metrics ~host ~port:p
             [ ("formatserver", fun () -> Counters.dump t.counters) ]));
    t

  (** The actually bound metrics port, if metrics were requested. *)
  let metrics_port t = Option.map Omf_httpd.Http.port t.metrics

  let stats t = Counters.dump t.counters

  (** Stop accepting, close client connections, join the loop thread
      (and the metrics endpoint, if any). Idempotent. *)
  let shutdown t =
    if not t.stopped then begin
      t.stopped <- true;
      Reactor.inject t.loop (fun () ->
          (try Unix.shutdown t.socket Unix.SHUTDOWN_ALL
           with Unix.Unix_error _ -> ());
          let live = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
          List.iter (fun c -> Conn.doom c "server shutdown") live;
          Reactor.stop t.loop);
      Thread.join t.loop_thread;
      (try Unix.close t.socket with Unix.Unix_error _ -> ());
      Reactor.dispose t.loop;
      Option.iter Omf_httpd.Http.shutdown t.metrics
    end

  (** Number of distinct formats registered so far. *)
  let size t =
    Mutex.lock t.mutex;
    let n = Hashtbl.length t.by_id in
    Mutex.unlock t.mutex;
    n
end

(* ------------------------------------------------------------------ *)
(* Client                                                               *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type t = {
    link : Omf_transport.Link.t;
    mutex : Mutex.t;
    id_cache : (string, int) Hashtbl.t;  (** blob -> global id *)
    blob_cache : (int, string) Hashtbl.t;
  }

  exception Server_unavailable of string

  let connect ?(host = "127.0.0.1") ~port () : t =
    match Omf_transport.Tcp.connect ~host ~port () with
    | link ->
      { link; mutex = Mutex.create (); id_cache = Hashtbl.create 8
      ; blob_cache = Hashtbl.create 8 }
    | exception Omf_transport.Tcp.Tcp_error m -> raise (Server_unavailable m)

  let rpc t frame =
    Mutex.lock t.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () ->
        Omf_transport.Link.send t.link frame;
        match Omf_transport.Link.recv t.link with
        | Some reply -> reply
        | None -> raise (Server_unavailable "connection closed"))

  (** [register t fmt] obtains the global id for [fmt], registering its
      descriptor if the server has not seen it before. *)
  let register (t : t) (fmt : Omf_pbio.Format.t) : int =
    let blob = Omf_pbio.Format_codec.encode fmt in
    match Hashtbl.find_opt t.id_cache blob with
    | Some id -> id
    | None ->
      let reply = rpc t (Bytes.cat (Bytes.of_string "R") (Bytes.of_string blob)) in
      if Bytes.length reply = 5 && Bytes.get reply 0 = 'I' then begin
        let id = u32_of_bytes reply 1 in
        Hashtbl.replace t.id_cache blob id;
        Hashtbl.replace t.blob_cache id blob;
        id
      end
      else proto_error "register: unexpected reply"

  (** [fetch t id] resolves a global id to a descriptor blob ([None] if
      the server does not know it). Suitable as the [?resolve] callback
      of {!Omf_pbio.Pbio.Receiver.create}. *)
  let fetch (t : t) (id : int) : string option =
    match Hashtbl.find_opt t.blob_cache id with
    | Some blob -> Some blob
    | None -> (
      match rpc t (Bytes.cat (Bytes.of_string "G") (u32_to_bytes id)) with
      | reply when Bytes.length reply >= 1 && Bytes.get reply 0 = 'D' ->
        let blob = Bytes.sub_string reply 1 (Bytes.length reply - 1) in
        Hashtbl.replace t.blob_cache id blob;
        Some blob
      | reply when Bytes.length reply >= 1 && Bytes.get reply 0 = 'N' -> None
      | _ -> proto_error "fetch: unexpected reply"
      | exception Server_unavailable _ -> None)

  (** [fetch_by_fingerprint t fp] resolves a blob fingerprint (learned
      from a relay stream advertisement) to [(global id, blob)] without
      ever holding the blob — the content-addressed path that lets a
      receiver bind its conversion plan before any descriptor frame
      arrives. Cached like {!fetch}. *)
  let fetch_by_fingerprint (t : t) (fp : string) : (int * string) option =
    match
      rpc t (Bytes.cat (Bytes.of_string "F") (Bytes.of_string fp))
    with
    | reply when Bytes.length reply >= 5 && Bytes.get reply 0 = 'I' ->
      let id = u32_of_bytes reply 1 in
      let blob = Bytes.sub_string reply 5 (Bytes.length reply - 5) in
      Hashtbl.replace t.blob_cache id blob;
      Hashtbl.replace t.id_cache blob id;
      Some (id, blob)
    | reply when Bytes.length reply >= 1 && Bytes.get reply 0 = 'N' -> None
    | _ -> proto_error "fetch_by_fingerprint: unexpected reply"
    | exception Server_unavailable _ -> None

  (** A resolve callback that degrades gracefully when the server dies:
      failed lookups return [None] and the receiver reports
      [Unknown_format] rather than crashing. *)
  let resolver (t : t) : int -> string option =
    fun id -> try fetch t id with Protocol_error _ -> None

  let close (t : t) = Omf_transport.Link.close t.link
end
