(** Metadata discovery: ordered fallback chains over document producers
    (files, HTTP fetchers, inline text) and compiled-in declarations —
    remote discovery as the primary method, compiled-in metadata as the
    fault-tolerant fallback (section 3.3). *)

open Omf_pbio

type source =
  | Document of { label : string; fetch : unit -> string }
      (** must return XML Schema text; any exception = source down *)
  | Compiled of { label : string; decls : Ftype.t list }

val source_label : source -> string

val from_string : ?label:string -> string -> source
val from_file : string -> source
val from_fetcher : label:string -> (unit -> string) -> source
val compiled : ?label:string -> Ftype.t list -> source

exception Discovery_failed of (string * string) list
(** Every source failed: [(source label, reason)] per attempt. *)

type outcome = {
  formats : Format.t list;  (** in registration order *)
  source : string;  (** which source won *)
  document : string option;  (** the schema text, for [Document] wins *)
}

val register_document : Catalog.t -> label:string -> string -> outcome
val register_compiled : Catalog.t -> label:string -> Ftype.t list -> outcome

val discover :
  ?attempts:int -> ?timeout_s:float -> Catalog.t -> source list -> outcome
(** Try each source in order; register every format the first working
    source defines. Raises {!Discovery_failed} when all fail.

    [timeout_s] puts a wall-clock deadline on each [Document] fetch (a
    hung metadata server becomes a fallback, not a hang); [attempts]
    (default 1) retries a failing source before falling through to the
    next one, so transient loss of the primary source does not flip the
    system onto degraded metadata. Defaults preserve plain blocking
    behaviour. *)

(** {1 Change tracking} *)

type watched
(** A discovery whose winning document is remembered so that metadata
    changes can be detected and re-registered at run time. *)

val watch :
  ?attempts:int -> ?timeout_s:float -> Catalog.t -> source list -> watched
(** As {!discover}; the attempt/deadline bounds also govern every later
    {!refresh}. *)

val current : watched -> outcome

val refresh : watched -> outcome option
(** Re-run discovery: [Some outcome] if the metadata changed (and was
    re-registered), [None] if unchanged. When all sources fail, raises
    {!Discovery_failed} and leaves the previous registration in force. *)
