(** Metadata discovery: ordered fallback chains over document producers
    (files, HTTP fetchers, inline text) and compiled-in declarations —
    remote discovery as the primary method, compiled-in metadata as the
    fault-tolerant fallback (section 3.3). *)

open Omf_pbio

type source =
  | Document of { label : string; fetch : unit -> string }
      (** must return XML Schema text; any exception = source down *)
  | Compiled of { label : string; decls : Ftype.t list }

val source_label : source -> string

val origin_of_label : string -> string
(** Provenance kind of a label: the prefix before [':'] when it is one
    we mint ourselves ([file] / [http] / [https] / [registry]),
    ["inline"] for inline text, ["document"] otherwise. *)

val origin_of_source : source -> string
(** As {!origin_of_label}; [Compiled] sources are ["compiled"]. *)

val stats : unit -> (string * int) list
(** Process-wide discovery counters: [source_<origin>] per win,
    [fallback_wins] when a non-primary source won, [source_failures]
    per failed probe, [cancelled]/[superseded] for async discoveries
    aborted by {!cancel} or a newer keyed {!discover_async} — so
    degraded metadata is observable, not silent. *)

val from_string : ?label:string -> string -> source
val from_file : string -> source
val from_fetcher : label:string -> (unit -> string) -> source
val compiled : ?label:string -> Ftype.t list -> source

exception Discovery_failed of (string * string) list
(** Every source failed: [(source label, reason)] per attempt. *)

type outcome = {
  formats : Format.t list;  (** in registration order *)
  source : string;  (** which source won *)
  origin : string;  (** its provenance kind, {!origin_of_label} *)
  document : string option;  (** the schema text, for [Document] wins *)
}

val register_document : Catalog.t -> label:string -> string -> outcome
val register_compiled : Catalog.t -> label:string -> Ftype.t list -> outcome

val discover :
  ?attempts:int -> ?timeout_s:float -> Catalog.t -> source list -> outcome
(** Try each source in order; register every format the first working
    source defines. Raises {!Discovery_failed} when all fail.

    [timeout_s] puts a wall-clock deadline on each [Document] fetch (a
    hung metadata server becomes a fallback, not a hang); [attempts]
    (default 1) retries a failing source before falling through to the
    next one, so transient loss of the primary source does not flip the
    system onto degraded metadata. Defaults preserve plain blocking
    behaviour. *)

(** {1 Async discovery} *)

type async
(** A discovery running on a background thread: a subscriber can start
    consuming messages (buffering raw frames) while its schema fetch is
    still in flight, then decode everything once the fetch lands. *)

exception Cancelled
(** The discovery was aborted by {!cancel} (directly, or superseded by
    a newer keyed {!discover_async}). *)

val discover_async :
  ?attempts:int ->
  ?timeout_s:float ->
  ?key:string ->
  Catalog.t ->
  source list ->
  async
(** Start {!discover} on a worker thread and return immediately.

    With [?key], a new discovery supersedes any still-in-flight one
    for the same key: the prior async is {!cancel}led — its {!poll} /
    {!await} raise {!Cancelled}, and even if its fetch later lands it
    registers nothing and bumps no win counters, so a stream whose
    discovery was re-triggered counts exactly one win. *)

val cancel : async -> unit
(** Abort a running discovery: {!poll} / {!await} raise {!Cancelled}
    from now on. First-writer-wins — cancelling an already completed
    discovery is a no-op, and a worker finishing after the cancel
    drops its outcome (no catalog mutation, no win counters). *)

val poll : async -> outcome option
(** [None] while the discovery is still running. Re-raises the
    discovery's exception ({!Discovery_failed}, {!Cancelled}...) if it
    failed. *)

val await : async -> outcome
(** Block until the discovery completes; re-raises on failure. *)

(** {1 Change tracking} *)

type watched
(** A discovery whose winning document is remembered so that metadata
    changes can be detected and re-registered at run time. *)

val watch :
  ?attempts:int -> ?timeout_s:float -> Catalog.t -> source list -> watched
(** As {!discover}; the attempt/deadline bounds also govern every later
    {!refresh}. *)

val current : watched -> outcome

val refresh : watched -> outcome option
(** Re-run discovery: [Some outcome] if the metadata changed (and was
    re-registered), [None] if unchanged. When all sources fail, raises
    {!Discovery_failed} and leaves the previous registration in force. *)
