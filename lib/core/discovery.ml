(** Metadata discovery: finding the XML that defines message structure.

    Sources are ordered fallback chains (section 3.3): a system can use
    remote discovery as its primary method and compiled-in declarations as
    the fault-tolerant fallback, retaining "a useful, if degraded, level
    of functionality" when the network or metadata server is down.

    A [Document] source is any producer of schema text — a local file, an
    HTTP URL (the fetch closure comes from {!Omf_httpd}), an in-memory
    registry, a test injector. A [Compiled] source contributes PBIO
    declarations directly, exactly like the paper's compiled-in PBIO
    metadata. *)

open Omf_pbio

let log = Logs.Src.create "omf.discovery" ~doc:"xml2wire metadata discovery"

module Log = (val Logs.src_log log)

type source =
  | Document of { label : string; fetch : unit -> string }
      (** fetch must return XML Schema text; any exception = source down *)
  | Compiled of { label : string; decls : Ftype.t list }

let source_label = function
  | Document { label; _ } -> label
  | Compiled { label; _ } -> label

(** Provenance kind of a winning label: the prefix before [':'] when it
    is one we mint ourselves ([file:], [http:], [registry:]...),
    ["inline"] for inline text, ["compiled"] for compiled-in
    declarations, ["document"] otherwise. *)
let origin_of_label (label : string) : string =
  match String.index_opt label ':' with
  | Some i -> (
    match String.sub label 0 i with
    | ("file" | "http" | "https" | "registry") as kind -> kind
    | _ -> "document")
  | None -> if String.equal label "inline" then "inline" else "document"

let origin_of_source = function
  | Compiled _ -> "compiled"
  | Document { label; _ } -> origin_of_label label

(** Process-wide discovery observability: which source kinds win, and
    how often a fallback had to ("fallback_wins") — so a system quietly
    running on degraded compiled-in metadata shows up on /metrics
    instead of staying silent. *)
let counters = Omf_util.Counters.create ()

let stats () = Omf_util.Counters.dump counters

(** Convenience constructors. *)

let from_string ?(label = "inline") text =
  Document { label; fetch = (fun () -> text) }

let from_file path =
  Document
    { label = "file:" ^ path
    ; fetch =
        (fun () ->
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))) }

let from_fetcher ~label fetch = Document { label; fetch }
let compiled ?(label = "compiled-in") decls = Compiled { label; decls }

exception Discovery_failed of (string * string) list
(** every source failed: [(source label, reason)] per attempt *)

type outcome = {
  formats : Format.t list;  (** in registration order *)
  source : string;  (** which source won *)
  origin : string;  (** its provenance kind, {!origin_of_label} *)
  document : string option;  (** the schema text, for [Document] sources *)
}

let register_document catalog ~label (text : string) : outcome =
  let schema = Omf_xschema.Schema.of_string text in
  let simple = Omf_xschema.Schema.find_simple_type schema in
  let formats =
    List.map
      (fun ct ->
        let decl = Mapper.decl_of_complex_type ~simple ct in
        Catalog.register catalog ~source:label decl)
      schema.Omf_xschema.Schema.types
  in
  { formats; source = label; origin = origin_of_label label
  ; document = Some text }

let register_compiled catalog ~label (decls : Ftype.t list) : outcome =
  let formats =
    List.map (fun d -> Catalog.register catalog ~source:label d) decls
  in
  { formats; source = label; origin = "compiled"; document = None }

(* ------------------------------------------------------------------ *)
(* Bounded fetching                                                     *)
(* ------------------------------------------------------------------ *)

(** Run [fetch] under a wall-clock deadline: the fetch runs in a worker
    thread and the caller polls for its result. On expiry the source is
    declared down and the chain moves on — the worker may linger until
    its own I/O fails, but it can no longer win (first writer takes the
    slot) and the chain is not blocked on it. This matters for fetchers
    with no native deadline: a TCP connect to a silently dropping host
    can hang for minutes, far longer than falling back to compiled-in
    metadata should take. *)
let fetch_bounded ~(timeout_s : float option) (fetch : unit -> string) :
    (string, string) result =
  match timeout_s with
  | None -> ( try Ok (fetch ()) with e -> Error (Printexc.to_string e))
  | Some dt ->
    let result = ref None in
    let lock = Mutex.create () in
    let put r =
      Mutex.lock lock;
      (match !result with None -> result := Some r | Some _ -> ());
      Mutex.unlock lock
    in
    ignore
      (Thread.create
         (fun () ->
           put (try Ok (fetch ()) with e -> Error (Printexc.to_string e)))
         ());
    let deadline = Unix.gettimeofday () +. dt in
    let rec wait () =
      Mutex.lock lock;
      let r = !result in
      Mutex.unlock lock;
      match r with
      | Some r -> r
      | None ->
        if Unix.gettimeofday () >= deadline then begin
          let timeout = Error (Printf.sprintf "timeout after %.3gs" dt) in
          put timeout;
          timeout
        end
        else begin
          Thread.delay 0.002;
          wait ()
        end
    in
    wait ()

let probe_document ~attempts ~timeout_s ~label (fetch : unit -> string) :
    (string, string) result =
  let rec go attempt last =
    if attempt > attempts then Error last
    else
      match fetch_bounded ~timeout_s fetch with
      | Ok text -> Ok text
      | Error reason ->
        Log.warn (fun m ->
            m "source %s attempt %d/%d failed: %s" label attempt attempts
              reason);
        go (attempt + 1) reason
  in
  go 1 "no attempts"

(** [discover catalog sources] tries each source in order and registers
    every format the first working source defines. Raises
    {!Discovery_failed} when all sources fail.

    [timeout_s] puts a wall-clock deadline on each [Document] fetch (a
    hung metadata server becomes a fallback, not a hang) and
    [attempts] retries a failing source that many times before the
    chain falls through to the next one — transient loss of the
    primary source should not flip a system onto degraded metadata.
    The defaults (one attempt, no deadline) preserve plain blocking
    behaviour. *)
exception Cancelled
(** The discovery was cancelled ({!cancel}) — typically superseded by
    a newer {!discover_async} for the same key. *)

(** The fallback-chain walk shared by {!discover} and the async
    worker. [cancelled] is consulted before each source and — crucially
    — after a successful fetch, {e before} registration and the win
    counters: a discovery superseded mid-fetch neither mutates the
    catalog nor double-counts a win when its fetch finally lands. *)
let discover_chain ~attempts ~timeout_s ~(cancelled : unit -> bool)
    (catalog : Catalog.t) (sources : source list) : outcome =
  let rec go failures = function
    | [] -> raise (Discovery_failed (List.rev failures))
    | source :: rest -> (
      if cancelled () then raise Cancelled;
      let label = source_label source in
      match
        match source with
        | Document { fetch; _ } -> (
          match probe_document ~attempts ~timeout_s ~label fetch with
          | Ok text ->
            if cancelled () then raise Cancelled;
            Ok (register_document catalog ~label text)
          | Error reason -> Error reason)
        | Compiled { decls; _ } ->
          Ok (register_compiled catalog ~label decls)
      with
      | Ok outcome ->
        Omf_util.Counters.incr counters ("source_" ^ outcome.origin);
        if failures <> [] then
          Omf_util.Counters.incr counters "fallback_wins";
        Log.info (fun m ->
            m "discovered %d format(s) from %s"
              (List.length outcome.formats) label);
        outcome
      | Error reason ->
        Omf_util.Counters.incr counters "source_failures";
        go ((label, reason) :: failures) rest
      | exception Cancelled -> raise Cancelled
      | exception e ->
        (* a fetched document that fails schema parsing / registration *)
        let reason = Printexc.to_string e in
        Omf_util.Counters.incr counters "source_failures";
        Log.warn (fun m -> m "source %s failed: %s" label reason);
        go ((label, reason) :: failures) rest)
  in
  go [] sources

let discover ?(attempts = 1) ?timeout_s (catalog : Catalog.t)
    (sources : source list) : outcome =
  if sources = [] then invalid_arg "Discovery.discover: no sources";
  if attempts < 1 then invalid_arg "Discovery.discover: attempts < 1";
  discover_chain ~attempts ~timeout_s
    ~cancelled:(fun () -> false)
    catalog sources

(* ------------------------------------------------------------------ *)
(* Async discovery                                                      *)
(* ------------------------------------------------------------------ *)

(** A discovery running on a background thread, so a subscriber can
    start consuming messages (buffering the raw frames) while its
    schema fetch is still in flight — the overlap the ROADMAP's "async
    discovery" item asks for. *)
type async = {
  a_mutex : Mutex.t;
  a_cond : Condition.t;
  mutable a_result : (outcome, exn) result option;
  mutable a_cancelled : bool;
      (** read without the mutex by the worker between sources — a
          benign race: a just-missed flag costs one extra probe, and
          the result slot itself is first-writer-wins under the
          mutex *)
}

(** First-writer-wins on the result slot: a cancel that loses the race
    to a completed discovery is a no-op, and a worker finishing after
    a cancel finds the slot taken and drops its outcome. *)
let cancel (a : async) : unit =
  Mutex.lock a.a_mutex;
  a.a_cancelled <- true;
  (match a.a_result with
  | None ->
    a.a_result <- Some (Error Cancelled);
    Omf_util.Counters.incr counters "cancelled";
    Condition.broadcast a.a_cond
  | Some _ -> ());
  Mutex.unlock a.a_mutex

(* the ?key supersede table: a new keyed discovery aborts the one
   still in flight for the same key, so only the newest can win *)
let keyed_mu = Mutex.create ()
let keyed : (string, async) Hashtbl.t = Hashtbl.create 8

let discover_async ?attempts ?timeout_s ?key (catalog : Catalog.t)
    (sources : source list) : async =
  if sources = [] then invalid_arg "Discovery.discover_async: no sources";
  let attempts = Option.value attempts ~default:1 in
  if attempts < 1 then invalid_arg "Discovery.discover_async: attempts < 1";
  let a =
    { a_mutex = Mutex.create (); a_cond = Condition.create ()
    ; a_result = None; a_cancelled = false }
  in
  (match key with
  | None -> ()
  | Some k ->
    Mutex.lock keyed_mu;
    let prior = Hashtbl.find_opt keyed k in
    Hashtbl.replace keyed k a;
    Mutex.unlock keyed_mu;
    (match prior with
    | Some p ->
      Omf_util.Counters.incr counters "superseded";
      cancel p
    | None -> ()));
  ignore
    (Thread.create
       (fun () ->
         let r =
           try
             Ok
               (discover_chain
                  ~attempts ~timeout_s
                  ~cancelled:(fun () -> a.a_cancelled)
                  catalog sources)
           with e -> Error e
         in
         Mutex.lock a.a_mutex;
         (match a.a_result with
         | None ->
           a.a_result <- Some r;
           Condition.broadcast a.a_cond
         | Some _ -> ());
         Mutex.unlock a.a_mutex)
       ());
  a

let poll (a : async) : outcome option =
  Mutex.lock a.a_mutex;
  let r = a.a_result in
  Mutex.unlock a.a_mutex;
  match r with
  | None -> None
  | Some (Ok outcome) -> Some outcome
  | Some (Error e) -> raise e

let await (a : async) : outcome =
  Mutex.lock a.a_mutex;
  while a.a_result = None do
    Condition.wait a.a_cond a.a_mutex
  done;
  let r = a.a_result in
  Mutex.unlock a.a_mutex;
  match r with
  | Some (Ok outcome) -> outcome
  | Some (Error e) -> raise e
  | None -> assert false

(* ------------------------------------------------------------------ *)
(* Change tracking / re-discovery                                       *)
(* ------------------------------------------------------------------ *)

(** A watched discovery: remembers the winning document so that a later
    [refresh] can detect metadata changes (the paper's "dynamically react
    to message format changes") and re-register only when something
    actually changed. *)
type watched = {
  catalog : Catalog.t;
  sources : source list;
  attempts : int;
  timeout_s : float option;
  mutable last : outcome;
}

let watch ?(attempts = 1) ?timeout_s (catalog : Catalog.t)
    (sources : source list) : watched =
  { catalog; sources; attempts; timeout_s
  ; last = discover ~attempts ?timeout_s catalog sources }

let current (w : watched) = w.last

(** [refresh w] re-runs discovery (under the watch's per-source attempt
    and deadline bounds); returns [Some outcome] if the metadata
    changed (and was re-registered), [None] if it is unchanged. A refresh
    whose sources all fail raises {!Discovery_failed} and leaves the
    previous registration in force. *)
let refresh (w : watched) : outcome option =
  let rec probe failures = function
    | [] -> raise (Discovery_failed (List.rev failures))
    | source :: rest -> (
      let label = source_label source in
      match source with
      | Document { fetch; _ } -> (
        match
          probe_document ~attempts:w.attempts ~timeout_s:w.timeout_s ~label
            fetch
        with
        | Ok text -> `Document (label, text)
        | Error reason -> probe ((label, reason) :: failures) rest)
      | Compiled { decls; _ } -> `Compiled (label, decls))
  in
  match probe [] w.sources with
  | `Document (label, text) ->
    if w.last.document = Some text then None
    else begin
      let outcome = register_document w.catalog ~label text in
      w.last <- outcome;
      Some outcome
    end
  | `Compiled (label, decls) ->
    (* compiled metadata cannot change at run time *)
    if w.last.document = None then None
    else begin
      let outcome = register_compiled w.catalog ~label decls in
      w.last <- outcome;
      Some outcome
    end
