(** Relay-to-relay stream replication with failover (doc/MIRROR.md,
    PROTOCOLS.md §15).

    A mirror keeps a local relay a live replica of a source relay: per
    replicated stream it re-advertises the source's metadata verbatim
    (registry binding plus the [origin]/[epoch] replication tag),
    enters the local relay as a [mirror=1] publisher — the only writer
    a foreign-origin (read-only) stream admits — and pumps the
    source's descriptor/message frames in, resuming from the local
    store's tail so store offsets stay aligned end to end. Consumers
    fail over with their ordinary {!Omf_relay.Relay.Session} resume
    path: resubscribe against the mirror at the next expected offset.

    Loop prevention is origin-tagged: streams whose origin is the
    local relay are skipped client-side, and the relay's gates refuse
    stale epochs and a relay's own adverts arriving around a cycle —
    an A<->B pair replicates each stream exactly once, in one
    direction, with no frame amplification.

    A broken link re-handshakes under a bounded exponential-backoff
    budget; when the budget is exhausted and [promote_on_loss] is set,
    the stream is promoted locally (ownership transfers at a bumped
    epoch) so publishers and consumers carry on against the replica. *)

type config = {
  source_host : string;
  source_port : int;
  local_host : string;
  local_port : int;
  local_relay_id : string;
      (** the local relay's identity ({!Omf_relay.Relay.relay_id}) —
          the client-side loop guard *)
  globs : string list;
      (** replicate only matching streams (['*'] wildcards); [[]] =
          all *)
  rescan_s : float;
  max_attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  promote_on_loss : bool;
  source_auth : (string * string) option;
  local_auth : (string * string) option;
  compress : bool;
      (** offer [comp=lz] on both legs of every replication link
          (doc/COMPRESS.md, PROTOCOLS.md §18); a source or local relay
          that does not speak compression negotiates down to plain
          frames, so the flag is safe against old peers *)
  io_timeout_s : float;
  trace : Omf_trace.Trace.settings option;
      (** record [mirror_replicate] spans and carry the source
          stream's trace context across relays (doc/TRACE.md,
          PROTOCOLS.md §17); [None] = tracing off *)
}

val config :
  ?globs:string list ->
  ?rescan_s:float ->
  ?max_attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?promote_on_loss:bool ->
  ?source_auth:string * string ->
  ?local_auth:string * string ->
  ?compress:bool ->
  ?io_timeout_s:float ->
  ?trace:Omf_trace.Trace.settings ->
  ?local_host:string ->
  source_host:string ->
  source_port:int ->
  local_port:int ->
  local_relay_id:string ->
  unit ->
  config
(** Defaults: every stream, rescan every 1s, 8 consecutive failed
    re-handshakes before the source is declared lost (backoff
    0.05s..1s), no promote-on-loss, 0.5s per-operation deadline. *)

type t

val start : config -> t
(** Launch the manager thread: it discovers source streams (LIST +
    globs) every [rescan_s], runs one replication-link thread per
    stream, and refreshes per-stream [mirror.<stream>.lag_frames]
    gauges (source tail minus local tail). *)

val stop : t -> unit
(** Stop the manager and every link thread and join them. Links notice
    within [io_timeout_s]; replicated streams stay advertised (and
    read-only) on the local relay. *)

val counters : t -> Omf_util.Counters.t
(** Live counters — [frames_replicated], [descriptors_replicated],
    [streams_linked], [links_established], [loops_skipped],
    [reconnects], [sources_lost], [promotes], and the per-stream
    [mirror.<stream>.lag_frames] gauges. The embedding daemon merges
    these into its STATS / [/metrics] output. *)

val stats : t -> (string * int) list
(** A sorted snapshot of {!counters}. *)

val link_frames : t -> (string * int) list
(** Per-stream message frames replicated so far, sorted by stream. *)

val trace_spans : t -> Omf_trace.Trace.span list
(** The mirror's recorded [mirror_replicate] spans (shard [-1]),
    oldest first; empty when [config.trace] is unset. *)
