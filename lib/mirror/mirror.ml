(** Relay-to-relay stream replication (doc/MIRROR.md, PROTOCOLS.md §15).

    A mirror runs next to a local relay and keeps it a live replica of
    a source relay: it lists the source's streams, and for each one it
    wants it re-advertises the stream locally with the source's
    metadata verbatim (registry binding plus [origin]/[epoch] tag),
    enters the local relay as a [mirror=1] publisher — the only writer
    admitted past the read-only gate on a foreign-origin stream — and
    pumps the source's descriptor/message frames into it, resuming
    from the local store's tail so offsets stay aligned with the
    source and a consumer can fail over by resubscribing at its next
    expected offset.

    Loop prevention is the origin tag: a stream whose origin is the
    {e local} relay id is skipped client-side (its frames would only
    come back around), and the relay's advertise/publish gates refuse
    anything the tag arbitration loses (stale epochs after a promote,
    a relay's own advert arriving around a cycle), so an A<->B
    bidirectional pair replicates each stream exactly once in the
    right direction.

    Failure handling mirrors {!Omf_relay.Relay.Session}: a broken link
    tears down both sides and re-handshakes under a bounded
    exponential-backoff budget ([publish_mirror] returns the fresh
    local tail, which is exactly the resume point). An exhausted
    budget with [promote_on_loss] promotes the stream locally — the
    replica becomes writable at a bumped epoch and consumers carry on
    against it; without it the link parks until the next manager
    rescan finds the source again. *)

module Relay = Omf_relay.Relay
module Client = Relay.Client
module Counters = Omf_util.Counters
module Trace = Omf_trace.Trace
open Omf_transport

let log = Logs.Src.create "omf.mirror" ~doc:"relay-to-relay replication"

module Log = (val Logs.src_log log)

type config = {
  source_host : string;
  source_port : int;
  local_host : string;
  local_port : int;
  local_relay_id : string;
      (** the local relay's replication identity
          ({!Omf_relay.Relay.relay_id}) — the client-side loop guard:
          source streams carrying this origin are our own and are
          never replicated back *)
  globs : string list;
      (** replicate only streams matching one of these patterns
          (['*'] wildcards); [[]] = every stream *)
  rescan_s : float;  (** manager period: stream discovery + lag gauges *)
  max_attempts : int;
      (** consecutive failed re-handshakes before a link declares the
          source lost *)
  base_delay_s : float;  (** first backoff step *)
  max_delay_s : float;  (** backoff cap *)
  promote_on_loss : bool;
      (** on a lost source, promote the stream locally (bumped epoch)
          instead of parking the link *)
  source_auth : (string * string) option;
  local_auth : (string * string) option;
  compress : bool;
      (** offer [comp=lz] on both legs of every replication link
          (PROTOCOLS.md §18): the replay/live frame stream from the
          source and the [mirror=1] re-publish into the local relay
          both travel as LZ blocks when the peer grants it, and
          negotiate down transparently when it doesn't *)
  io_timeout_s : float;
      (** per-operation deadline on every connection; also how quickly
          an idle pump notices a stop request *)
  trace : Trace.settings option;
      (** record [mirror_replicate] spans (doc/TRACE.md, PROTOCOLS.md
          §17): the mirror adopts the source stream's trace context
          (served in DESCRIBE metadata) and re-attaches it to the
          local [mirror=1] PUBLISH, so one trace crosses relays *)
}

let config ?(globs = []) ?(rescan_s = 1.0) ?(max_attempts = 8)
    ?(base_delay_s = 0.05) ?(max_delay_s = 1.0) ?(promote_on_loss = false)
    ?source_auth ?local_auth ?(compress = false) ?(io_timeout_s = 0.5) ?trace
    ?(local_host = "127.0.0.1") ~source_host ~source_port ~local_port
    ~local_relay_id () : config =
  { source_host; source_port; local_host; local_port; local_relay_id; globs
  ; rescan_s; max_attempts; base_delay_s; max_delay_s; promote_on_loss
  ; source_auth; local_auth; compress; io_timeout_s; trace }

(* ------------------------------------------------------------------ *)
(* Stream-name globs                                                    *)
(* ------------------------------------------------------------------ *)

(* '*' matches any run of characters; everything else is literal *)
let glob_match (pat : string) (s : string) : bool =
  let np = String.length pat and ns = String.length s in
  let rec go pi si =
    if pi = np then si = ns
    else
      match pat.[pi] with
      | '*' ->
        let rec try_at k = k <= ns && (go (pi + 1) k || try_at (k + 1)) in
        try_at si
      | c -> si < ns && Char.equal s.[si] c && go (pi + 1) (si + 1)
  in
  go 0 0

let wanted (cfg : config) (stream : string) : bool =
  cfg.globs = [] || List.exists (fun p -> glob_match p stream) cfg.globs

(* ------------------------------------------------------------------ *)
(* State                                                                *)
(* ------------------------------------------------------------------ *)

type link_state = {
  l_stream : string;
  mutable l_thread : Thread.t option;
  mutable l_stop : bool;
  mutable l_done : bool;  (** thread returned; manager may respawn *)
  mutable l_promoted : bool;  (** stream promoted locally: link retired *)
  mutable l_replicated : int;  (** message frames pumped by this link *)
}

type t = {
  cfg : config;
  counters : Counters.t;
  trace_col : Trace.collector option;
      (** the mirror's own span ring (shard [-1], distinguishing its
          spans from relay shards in merged exports) *)
  mu : Mutex.t;  (** guards [links] (manager vs. stop) *)
  links : (string, link_state) Hashtbl.t;
  mutable manager : Thread.t option;
  mutable stopped : bool;
}

let counters (t : t) = t.counters
let stats (t : t) : (string * int) list = Counters.dump t.counters

let trace_spans (t : t) : Trace.span list =
  match t.trace_col with None -> [] | Some col -> Trace.spans col

let link_frames (t : t) : (string * int) list =
  Mutex.lock t.mu;
  let l =
    Hashtbl.fold (fun s ls acc -> (s, ls.l_replicated) :: acc) t.links []
  in
  Mutex.unlock t.mu;
  List.sort compare l

(** Interruptible sleep: wakes within 50ms of a stop request. *)
let nap (t : t) (ls : link_state option) (secs : float) =
  let deadline = Unix.gettimeofday () +. secs in
  let stop_asked () =
    t.stopped || match ls with Some l -> l.l_stop | None -> false
  in
  let rec go () =
    let left = deadline -. Unix.gettimeofday () in
    if left > 0.0 && not (stop_asked ()) then begin
      Thread.delay (Float.min 0.05 left);
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* One replication session                                              *)
(* ------------------------------------------------------------------ *)

let connect_source (cfg : config) : Client.t =
  Client.connect ~host:cfg.source_host ~port:cfg.source_port
    ?auth:cfg.source_auth ~compress:cfg.compress
    ~io_timeout_s:cfg.io_timeout_s ()

let connect_local (cfg : config) : Client.t =
  Client.connect ~host:cfg.local_host ~port:cfg.local_port
    ?auth:cfg.local_auth ~compress:cfg.compress
    ~io_timeout_s:cfg.io_timeout_s ()

(* A relay refusal that retrying cannot fix (the gate said no, or the
   stream is gone); everything else is an outage worth a backoff. *)
let is_refusal (msg : string) : bool =
  let has needle =
    let nl = String.length needle and ml = String.length msg in
    let rec at i = i + nl <= ml && (String.sub msg i nl = needle || at (i + 1)) in
    at 0
  in
  has "stale epoch" || has "stale mirror link" || has "read-only"
  || has "originates here" || has "unknown stream" || has "access denied"

type session_end =
  | Stopped  (** stop requested mid-pump *)
  | Refused  (** gate refusal / vanished stream: park until rescan *)
  | Busy of int
      (** a relay shed the handshake with [busy retry_ms=N]
          (PROTOCOLS.md §16): pause catch-up for the hinted delay and
          retry — overload is neither an outage nor a refusal, so it
          burns no reconnect budget and never parks the link *)
  | Lost of bool  (** link broke; [true] = the session had established *)

(** Run one full replication session for [ls.l_stream]: handshake both
    sides, then pump until something breaks. *)
let replicate_once (t : t) (ls : link_state) : session_end =
  let cfg = t.cfg in
  let stream = ls.l_stream in
  let established = ref false in
  match
    let src = connect_source cfg in
    Fun.protect ~finally:(fun () -> Client.close src) @@ fun () ->
    let meta, schema = Client.describe src ~stream in
    let origin = Option.value (List.assoc_opt "origin" meta) ~default:"" in
    let epoch =
      match Option.bind (List.assoc_opt "epoch" meta) int_of_string_opt with
      | Some e -> e
      | None -> 0
    in
    if origin = "" then begin
      (* source predates origin tags: replicating without arbitration
         could amplify cycles, so refuse *)
      Counters.incr t.counters "untagged_skipped";
      Refused
    end
    else if String.equal origin cfg.local_relay_id then begin
      (* our own stream coming back around a cycle *)
      Counters.incr t.counters "loops_skipped";
      Refused
    end
    else begin
      (* §17: the source relay serves the stream's trace context as a
         [trace=] DESCRIBE metadata line. Adopt it for the local
         [mirror=1] PUBLISH — downstream spans join the same trace —
         and strip it before re-advertising: it is per-publisher state,
         not stream metadata to persist. *)
      let trace =
        match t.trace_col with
        | None -> None
        | Some _ ->
          Option.bind (List.assoc_opt "trace" meta) Trace.of_string
      in
      let meta = List.filter (fun (k, _) -> k <> "trace") meta in
      let lc = connect_local cfg in
      Fun.protect ~finally:(fun () -> Client.close lc) @@ fun () ->
      Client.advertise_with_meta lc ~stream ~meta ~schema;
      let wm, local_link =
        Client.publish_mirror ?trace lc ~stream ~origin ~epoch
      in
      (* the local tail is the exact resume point: source offsets and
         local offsets are aligned (both dense from 0, appended in the
         same order), so failover consumers resume seamlessly *)
      let from = match wm with Some (_, tail) -> tail | None -> -1 in
      let off, _schema, src_link = Client.subscribe_from src ~stream ~from in
      (match (off, wm) with
      | Some start, Some _ when from >= 0 && start > from ->
        (* source retention outran this replica: the gap is gone *)
        Counters.incr t.counters "resume_gap_clamped"
      | _ -> ());
      established := true;
      Counters.incr t.counters "links_established";
      Log.info (fun m ->
          m "stream %s: replicating %s@%d from offset %d" stream origin epoch
            from);
      (* forward one message frame, recording a [mirror_replicate]
         span (time to hand the frame to the local relay) when the
         stream's trace is sampled or the send was slow *)
      let send_traced frame =
        match (t.trace_col, trace) with
        | Some col, Some ctx ->
          let t0 = Trace.now_us () in
          Link.send local_link frame;
          let dur = Trace.now_us () - t0 in
          if Trace.should_record col ~sampled:ctx.Trace.sampled ~dur_us:dur
          then begin
            Trace.record col ~trace:ctx.Trace.trace_id
              ~parent:ctx.Trace.span_id ~stage:"mirror_replicate" ~stream
              ~start_us:t0 ~dur_us:dur;
            Counters.observe t.counters "stage_us.mirror_replicate" dur
          end
        | _ -> Link.send local_link frame
      in
      let rec pump () =
        if ls.l_stop || t.stopped then Stopped
        else
          match Link.recv src_link with
          | Some frame
            when Bytes.length frame > 0
                 && Char.equal (Bytes.get frame 0) Endpoint.frame_descriptor
            ->
            Link.send local_link frame;
            Counters.incr t.counters "descriptors_replicated";
            pump ()
          | Some frame
            when Bytes.length frame > 0
                 && Char.equal (Bytes.get frame 0) Endpoint.frame_message ->
            send_traced frame;
            ls.l_replicated <- ls.l_replicated + 1;
            Counters.incr t.counters "frames_replicated";
            pump ()
          | Some _ -> pump ()
          | None -> Lost true
          | exception Link.Timeout ->
            (* idle source: just a chance to notice a stop request *)
            pump ()
      in
      pump ()
    end
  with
  | v -> v
  | exception Client.Busy { retry_ms } ->
    Counters.incr t.counters "busy_backoffs";
    Log.info (fun m ->
        m "stream %s: relay overloaded; pausing catch-up %dms" stream retry_ms);
    Busy retry_ms
  | exception Client.Error msg when is_refusal msg ->
    Counters.incr t.counters "links_refused";
    Log.info (fun m -> m "stream %s: refused: %s" stream msg);
    Refused
  | exception
      ( Client.Error _ | Link.Closed | Link.Timeout | End_of_file
      | Tcp.Tcp_error _ | Frame.Frame_error _ | Unix.Unix_error _ ) ->
    Lost !established

(** The source is gone for good (budget exhausted): take ownership
    locally so consumers keep a writable stream. *)
let promote_local (t : t) (ls : link_state) =
  match
    let lc = connect_local t.cfg in
    Fun.protect
      ~finally:(fun () -> Client.close lc)
      (fun () -> Client.promote lc ~stream:ls.l_stream)
  with
  | epoch ->
    ls.l_promoted <- true;
    Counters.incr t.counters "promotes";
    Log.warn (fun m ->
        m "stream %s: source lost; promoted locally at epoch %d" ls.l_stream
          epoch)
  | exception e ->
    Counters.incr t.counters "promote_failures";
    Log.err (fun m ->
        m "stream %s: promote failed: %s" ls.l_stream (Printexc.to_string e))

(** Per-stream link driver: session after session under the reconnect
    budget. Consecutive failures count against [max_attempts]; any
    established session resets the clock. *)
let link_loop (t : t) (ls : link_state) =
  let cfg = t.cfg in
  let failures = ref 0 in
  let running = ref true in
  while (not ls.l_stop) && (not t.stopped) && !running do
    (match replicate_once t ls with
    | Stopped -> running := false
    | Refused -> running := false  (* parked; the next rescan retries *)
    | Busy retry_ms ->
      (* graceful degradation, not failure: announce the lag (the
         gauges keep refreshing from the manager) and retry after the
         relay's own hint without touching the failure budget *)
      nap t (Some ls) (float_of_int retry_ms /. 1000.)
    | Lost established ->
      if established then failures := 0;
      incr failures;
      Counters.incr t.counters "reconnects";
      if !failures >= cfg.max_attempts then begin
        Counters.incr t.counters "sources_lost";
        if cfg.promote_on_loss && not (ls.l_stop || t.stopped) then
          promote_local t ls;
        running := false
      end
      else
        nap t (Some ls)
          (Float.min cfg.max_delay_s
             (cfg.base_delay_s *. (2.0 ** float_of_int (!failures - 1)))));
    ()
  done;
  ls.l_done <- true

(* ------------------------------------------------------------------ *)
(* Manager: discovery + lag gauges                                      *)
(* ------------------------------------------------------------------ *)

let spawn_link (t : t) (stream : string) =
  let ls =
    { l_stream = stream; l_thread = None; l_stop = false; l_done = false
    ; l_promoted = false; l_replicated = 0 }
  in
  Hashtbl.replace t.links stream ls;
  Counters.incr t.counters "streams_linked";
  ls.l_thread <- Some (Thread.create (fun () -> link_loop t ls) ())

(** One manager pass: LIST the source, link every wanted stream that
    has no live (or retired-by-promote) link, and refresh the
    per-stream replication-lag gauges from both ends' STATS. *)
let scan (t : t) =
  let src = connect_source t.cfg in
  Fun.protect ~finally:(fun () -> Client.close src) @@ fun () ->
  let streams = Client.list_streams src |> List.filter (wanted t.cfg) in
  Mutex.lock t.mu;
  let to_spawn =
    List.filter
      (fun s ->
        match Hashtbl.find_opt t.links s with
        | None -> not t.stopped
        | Some ls -> ls.l_done && (not ls.l_promoted) && not t.stopped)
      streams
  in
  Mutex.unlock t.mu;
  List.iter
    (fun s ->
      Mutex.lock t.mu;
      spawn_link t s;
      Mutex.unlock t.mu)
    to_spawn;
  (* replication lag: source tail minus local tail, per linked stream.
     The gauge names follow the <group>.<subject>.<metric> convention,
     so /metrics renders them as
     omf_..._mirror_lag_frames{stream="..."}. *)
  match
    let src_stats = Client.stats src in
    let lc = connect_local t.cfg in
    Fun.protect
      ~finally:(fun () -> Client.close lc)
      (fun () -> (src_stats, Client.stats lc))
  with
  | src_stats, local_stats ->
    List.iter
      (fun stream ->
        let tail stats =
          List.assoc_opt (Printf.sprintf "store.%s.tail" stream) stats
        in
        match (tail src_stats, tail local_stats) with
        | Some s, Some l ->
          Counters.set t.counters
            (Printf.sprintf "mirror.%s.lag_frames" stream)
            (max 0 (s - l))
        | _ -> ())
      streams
  | exception _ -> ()

let manager_loop (t : t) =
  while not t.stopped do
    (match scan t with
    | () -> ()
    | exception _ -> Counters.incr t.counters "scan_failures");
    nap t None t.cfg.rescan_s
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)
(* ------------------------------------------------------------------ *)

let start (cfg : config) : t =
  let t =
    { cfg; counters = Counters.create ()
    ; trace_col = Option.map (fun s -> Trace.collector ~shard:(-1) s) cfg.trace
    ; mu = Mutex.create ()
    ; links = Hashtbl.create 8; manager = None; stopped = false }
  in
  t.manager <- Some (Thread.create (fun () -> manager_loop t) ());
  Log.info (fun m ->
      m "mirroring %s:%d -> %s:%d%s%s" cfg.source_host cfg.source_port
        cfg.local_host cfg.local_port
        (match cfg.globs with
        | [] -> ""
        | gs -> Printf.sprintf " (streams %s)" (String.concat "," gs))
        (if cfg.promote_on_loss then ", promote-on-loss" else ""));
  t

let stop (t : t) : unit =
  if not t.stopped then begin
    t.stopped <- true;
    Mutex.lock t.mu;
    let links = Hashtbl.fold (fun _ ls acc -> ls :: acc) t.links [] in
    Mutex.unlock t.mu;
    List.iter (fun ls -> ls.l_stop <- true) links;
    Option.iter Thread.join t.manager;
    t.manager <- None;
    List.iter (fun ls -> Option.iter Thread.join ls.l_thread) links
  end
