(** Tests for the networked event relay: frame reassembly from partial
    reads (property-tested), subscribe/replay and credential scoping
    over real TCP, zero-loss fan-out to 64 concurrent subscribers under
    the [Block] policy, slow-consumer shedding and eviction, and
    graceful drain-and-shutdown. *)

open Omf_machine
open Omf_pbio.Pbio
open Omf_transport
module Relay = Omf_relay.Relay
module Broker = Omf_backbone.Broker
module Fx = Omf_fixtures.Paper_structs
module Catalog = Omf_xml2wire.Catalog
module X2W = Omf_xml2wire.Xml2wire

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Frame codec                                                          *)
(* ------------------------------------------------------------------ *)

(* random frame sequences, split at random byte boundaries (the partial
   reads a non-blocking socket delivers), must round-trip exactly *)
let prop_frame_reassembly =
  QCheck.Test.make ~name:"frame reassembly across arbitrary splits"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 16) (string_of_size Gen.(0 -- 400)))
        int)
    (fun (frames, seed) ->
      let wire = Buffer.create 1024 in
      List.iter
        (fun f -> Buffer.add_bytes wire (Frame.encode (Bytes.of_string f)))
        frames;
      let wire = Buffer.to_bytes wire in
      let rng = Omf_util.Prng.create ~seed:(Int64.of_int seed) () in
      let dec = Frame.Decoder.create () in
      let out = ref [] in
      let off = ref 0 in
      while !off < Bytes.length wire do
        let n = min (1 + Omf_util.Prng.int rng 7) (Bytes.length wire - !off) in
        Frame.Decoder.feed dec wire !off n;
        off := !off + n;
        let rec drain () =
          match Frame.Decoder.pop dec with
          | Some f -> out := Bytes.to_string f :: !out; drain ()
          | None -> ()
        in
        drain ()
      done;
      List.rev !out = frames && Frame.Decoder.pending_bytes dec = 0)

let test_frame_max_length () =
  let dec = Frame.Decoder.create ~max_frame:100 () in
  let b = Bytes.create 4 in
  Frame.write_header b 0 1000;
  Frame.Decoder.feed dec b 0 4;
  try
    ignore (Frame.Decoder.pop dec);
    Alcotest.fail "expected Frame_error"
  with Frame.Frame_error _ -> ()

(* sealed (HMAC) frames: a sequence survives the frame codec across
   arbitrary read boundaries and verifies in order; flipping any single
   bit of any sealed frame — header nonce, tag, or payload — is
   rejected, and the receive nonce does not advance past the damage *)
let prop_macframe_roundtrip_and_tamper =
  QCheck.Test.make ~name:"sealed frames round-trip; any bit flip rejected"
    ~count:300
    QCheck.(
      pair (list_of_size Gen.(1 -- 8) (string_of_size Gen.(0 -- 300))) int)
    (fun (payloads, seed) ->
      let key = "a shared capture-point secret" in
      let rng = Omf_util.Prng.create ~seed:(Int64.of_int seed) () in
      let tx = Macframe.state ~key in
      let sealed =
        List.map (fun p -> Macframe.seal_next tx (Bytes.of_string p)) payloads
      in
      (* wire = framed sealed bodies, fed to the decoder in ragged chunks *)
      let wire = Buffer.create 1024 in
      List.iter (fun f -> Buffer.add_bytes wire (Frame.encode f)) sealed;
      let wire = Buffer.to_bytes wire in
      let dec = Frame.Decoder.create () in
      let rx = Macframe.state ~key in
      let out = ref [] in
      let off = ref 0 in
      while !off < Bytes.length wire do
        let n = min (1 + Omf_util.Prng.int rng 9) (Bytes.length wire - !off) in
        Frame.Decoder.feed dec wire !off n;
        off := !off + n;
        let rec drain () =
          match Frame.Decoder.pop dec with
          | Some f ->
            out := Bytes.to_string (Macframe.open_next rx f) :: !out;
            drain ()
          | None -> ()
        in
        drain ()
      done;
      let roundtrips = List.rev !out = payloads in
      (* tamper: pick a frame, flip one random bit anywhere in it *)
      let victim_ix = Omf_util.Prng.int rng (List.length sealed) in
      let rx2 = Macframe.state ~key in
      let rejected = ref false in
      List.iteri
        (fun i f ->
          if i < victim_ix then ignore (Macframe.open_next rx2 f)
          else if i = victim_ix then begin
            let f = Bytes.copy f in
            let byte = Omf_util.Prng.int rng (Bytes.length f) in
            let bit = Omf_util.Prng.int rng 8 in
            Bytes.set f byte
              (Char.chr (Char.code (Bytes.get f byte) lxor (1 lsl bit)));
            (match Macframe.open_next rx2 f with
            | _ -> ()
            | exception Macframe.Auth_error _ -> rejected := true);
            (* the chain stays broken: even the genuine next frame is
               now refused (no silent deletion of the damaged one) *)
            match List.nth_opt sealed (i + 1) with
            | None -> ()
            | Some next -> (
              match Macframe.open_next rx2 next with
              | _ -> rejected := false
              | exception Macframe.Auth_error _ -> ())
          end)
        sealed;
      roundtrips && !rejected)

module Slice = Omf_util.Slice

(* the zero-copy slice codecs must be byte-identical to the copying
   ones: a wire message assembled from arbitrary body splits (empty
   slices and an empty body included) concatenates to [Frame.encode]
   of the whole body, seals identically under the same nonce chain,
   and the stream round-trips through reassembly across ragged reads —
   including at exactly the decoder's max-frame limit *)
let prop_slice_codec_equivalence =
  QCheck.Test.make ~name:"slice codecs byte-identical to Bytes codecs"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 8) (string_of_size Gen.(0 -- 300)))
        int)
    (fun (pieces, seed) ->
      let rng = Omf_util.Prng.create ~seed:(Int64.of_int seed) () in
      let body = Bytes.of_string (String.concat "" pieces) in
      let slices = List.map Slice.of_string pieces in
      let wire = Frame.wire slices in
      let flat = Slice.concat wire in
      let encoded_identical = Bytes.equal flat (Frame.encode body) in
      (* sealing an iovec payload = sealing its concatenation *)
      let key = "a shared capture-point secret" in
      let tx_ref = Macframe.state ~key and tx_io = Macframe.state ~key in
      let sealed_identical =
        Bytes.equal (Macframe.seal_next tx_ref body)
          (Macframe.seal_next_slices tx_io slices)
        (* a second frame: the send nonce advanced in lockstep *)
        && Bytes.equal (Macframe.seal_next tx_ref body)
             (Macframe.seal_next_slices tx_io slices)
      in
      (* the slice-built wire reassembles to the body across arbitrary
         read boundaries, with max_frame set exactly to the body size *)
      let dec = Frame.Decoder.create ~max_frame:(Bytes.length body) () in
      let out = ref None in
      let off = ref 0 in
      while !off < Bytes.length flat do
        let n = min (1 + Omf_util.Prng.int rng 7) (Bytes.length flat - !off) in
        Frame.Decoder.feed dec flat !off n;
        off := !off + n;
        match Frame.Decoder.pop dec with
        | Some f -> out := Some f
        | None -> ()
      done;
      (match Frame.Decoder.pop dec with Some f -> out := Some f | None -> ());
      let roundtrips =
        match !out with Some f -> Bytes.equal f body | None -> false
      in
      encoded_identical && sealed_identical && roundtrips)

(* ------------------------------------------------------------------ *)
(* Helpers                                                              *)
(* ------------------------------------------------------------------ *)

let event ?(pad = 0) seq =
  match Fx.value_a with
  | Value.Record fields ->
    Value.Record
      (List.map
         (fun (k, v) ->
           match k with
           | "fltNum" -> (k, Value.Int (Int64.of_int seq))
           | "equip" when pad > 0 -> (k, Value.String (String.make pad 'x'))
           | _ -> (k, v))
         fields)
  | _ -> assert false

let seq_of v =
  match Value.field_exn v "fltNum" with
  | Value.Int i -> Int64.to_int i
  | _ -> -1

(* an advertised stream plus a ready publisher endpoint *)
let make_publisher ~port ~stream =
  let client = Relay.Client.connect ~port () in
  Relay.Client.advertise client ~stream ~schema:Fx.schema_a;
  let link = Relay.Client.publish client ~stream in
  let catalog = Catalog.create Abi.x86_64 in
  ignore (X2W.register_schema catalog Fx.schema_a);
  let fmt = Option.get (Catalog.find_format catalog "ASDOffEvent") in
  let sender = Endpoint.Sender.create link (Memory.create Abi.x86_64) in
  (client, sender, fmt)

let publish sender fmt ?pad seq =
  Endpoint.Sender.send_value sender fmt (event ?pad seq)

(* poll the relay's stats (via a fresh control connection) until [key]
   reaches [target] — makes async milestones deterministic *)
let wait_stat ~port key target =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let c = Relay.Client.connect ~port () in
    let v = Option.value ~default:0 (List.assoc_opt key (Relay.Client.stats c)) in
    Relay.Client.close c;
    if v >= target then v
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timeout waiting for %s >= %d (at %d)" key target v
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Pub/sub over real TCP                                                *)
(* ------------------------------------------------------------------ *)

let test_pubsub_and_descriptor_replay () =
  let h = Relay.start () in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let pub, sender, fmt = make_publisher ~port ~stream:"flights" in
  (* publish before anyone subscribes: the descriptor frame is cached *)
  publish sender fmt 0;
  ignore (wait_stat ~port "events_relayed" 1);
  let late = Relay.attach_consumer ~port ~stream:"flights" Abi.sparc_32 in
  publish sender fmt 1;
  (* the late joiner missed event 0 but decodes event 1, because the
     relay replayed the cached format descriptor on subscribe *)
  (match Relay.recv late with
  | Some (f, v) ->
    check Alcotest.string "format" "ASDOffEvent" f.Format.name;
    check int "replayed descriptor decodes the live event" 1 (seq_of v)
  | None -> Alcotest.fail "no event");
  Relay.close_consumer late;
  Relay.Client.close pub

let test_scoped_credentials_over_tcp () =
  let h = Relay.start () in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let pub, sender, fmt = make_publisher ~port ~stream:"flights" in
  Broker.set_scope (Relay.broker (Relay.relay h)) ~stream:"flights"
    (fun creds ->
      match List.assoc_opt "role" creds with
      | Some "display" | None -> None
      | Some _ -> Some [ "fltNum"; "org"; "dest" ]);
  let display =
    Relay.attach_consumer ~port ~creds:[ ("role", "display") ]
      ~stream:"flights" Abi.sparc_32
  in
  let handheld =
    Relay.attach_consumer ~port ~creds:[ ("role", "handheld") ]
      ~stream:"flights" Abi.arm_32
  in
  publish sender fmt 7;
  let _, full = Option.get (Relay.recv display) in
  let _, scoped = Option.get (Relay.recv handheld) in
  check bool "display sees cntrID" true (Value.field full "cntrID" <> None);
  check bool "handheld does not see cntrID" true
    (Value.field scoped "cntrID" = None);
  check int "handheld sees the sequence" 7 (seq_of scoped);
  (* the scoped schema the relay served is itself reduced *)
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check bool "scoped schema omits cntrID" false
    (contains handheld.Relay.schema "cntrID");
  Relay.close_consumer display;
  Relay.close_consumer handheld;
  Relay.Client.close pub

let test_unknown_stream_and_role_errors () =
  let h = Relay.start () in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  (try
     ignore (Relay.attach_consumer ~port ~stream:"nope" Abi.x86_64);
     Alcotest.fail "expected Client.Error"
   with Relay.Client.Error _ -> ());
  let pub, _sender, _fmt = make_publisher ~port ~stream:"flights" in
  (* a publisher connection cannot also subscribe *)
  (try
     ignore (Relay.Client.subscribe pub ~stream:"flights");
     Alcotest.fail "expected Client.Error"
   with Relay.Client.Error _ -> ());
  Relay.Client.close pub

let test_stats_protocol () =
  let h = Relay.start () in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let pub, sender, fmt = make_publisher ~port ~stream:"flights" in
  let consumer = Relay.attach_consumer ~port ~stream:"flights" Abi.x86_64 in
  publish sender fmt 0;
  ignore (Relay.recv consumer);
  let c = Relay.Client.connect ~port () in
  let stats = Relay.Client.stats c in
  let get k = Option.value ~default:0 (List.assoc_opt k stats) in
  check bool "connections counted" true (get "connections" >= 3);
  check int "events relayed" 1 (get "events_relayed");
  check int "stream gauge: published (descriptor + event)" 2
    (get "stream.flights.published");
  check int "stream gauge: subscribers" 1 (get "stream.flights.subscribers");
  Relay.Client.close c;
  Relay.close_consumer consumer;
  Relay.Client.close pub

(* ------------------------------------------------------------------ *)
(* Acceptance: 64 concurrent TCP subscribers, zero loss, in order       *)
(* ------------------------------------------------------------------ *)

let test_64_subscribers_zero_loss_in_order () =
  let nsubs = 64 and nevents = 50 in
  (* a tight queue bound forces the Block policy to pause and resume
     the publisher repeatedly while subscribers drain *)
  let h = Relay.start ~policy:Relay.Block ~max_queue:4 () in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let pub, sender, fmt = make_publisher ~port ~stream:"flights" in
  let received = Array.make nsubs 0 in
  let ordered = Array.make nsubs true in
  let threads =
    Array.init nsubs (fun i ->
        Thread.create
          (fun () ->
            let abi = List.nth Abi.all (i mod List.length Abi.all) in
            let consumer = Relay.attach_consumer ~port ~stream:"flights" abi in
            let rec go prev =
              if prev < nevents - 1 then
                match Relay.recv consumer with
                | None -> ()
                | Some (_, v) ->
                  let seq = seq_of v in
                  received.(i) <- received.(i) + 1;
                  if seq <> prev + 1 then ordered.(i) <- false;
                  go seq
            in
            go (-1);
            Relay.close_consumer consumer)
          ())
  in
  ignore (wait_stat ~port "stream.flights.subscribers" nsubs);
  for seq = 0 to nevents - 1 do
    publish sender fmt seq
  done;
  Array.iter Thread.join threads;
  Array.iteri
    (fun i n -> check int (Printf.sprintf "subscriber %d event count" i) nevents n)
    received;
  check bool "every subscriber saw 0..49 strictly in order" true
    (Array.for_all Fun.id ordered);
  let c = Relay.Client.connect ~port () in
  let stats = Relay.Client.stats c in
  check int "no drops under block" 0
    (Option.value ~default:0 (List.assoc_opt "frames_dropped" stats));
  check int "no evictions under block" 0
    (Option.value ~default:0 (List.assoc_opt "subscribers_evicted" stats));
  Relay.Client.close c;
  Relay.Client.close pub

(* ------------------------------------------------------------------ *)
(* Slow consumers: eviction and shedding                                *)
(* ------------------------------------------------------------------ *)

(* a subscriber that never reads; ~64 KiB events overwhelm the socket
   buffers (SO_SNDBUF forced small) and then the bounded queue *)
let test_evict_slow_consumer () =
  let h =
    (* the grace window needs slack over the publish pacing below: under
       a loaded test host the reading consumer's backlog can take a few
       hundred ms to drain, and it must never be the one evicted *)
    Relay.start ~policy:Relay.Evict_slow ~max_queue:8 ~evict_grace_s:0.75
      ~sndbuf:8192 ()
  in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let pub, sender, fmt = make_publisher ~port ~stream:"flights" in
  let stalled = Relay.Client.connect ~port () in
  ignore (Relay.Client.subscribe stalled ~stream:"flights");
  let nevents = 80 in
  let healthy_done = ref false in
  let healthy_count = ref 0 in
  let healthy =
    Thread.create
      (fun () ->
        let consumer = Relay.attach_consumer ~port ~stream:"flights" Abi.x86_64 in
        let rec go prev =
          if prev < nevents - 1 then
            match Relay.recv consumer with
            | None -> ()
            | Some (_, v) ->
              incr healthy_count;
              go (seq_of v)
        in
        go (-1);
        healthy_done := true;
        Relay.close_consumer consumer)
      ()
  in
  ignore (wait_stat ~port "stream.flights.subscribers" 2);
  for seq = 0 to nevents - 1 do
    publish sender fmt ~pad:65536 seq;
    (* pace the burst so the reading consumer's transient backlog
       stays well inside the eviction grace window; the stalled one
       (whose socket buffers fill no matter what) stays over the
       watermark for the whole window and is evicted *)
    Thread.delay 0.002
  done;
  Thread.join healthy;
  ignore (wait_stat ~port "subscribers_evicted" 1);
  check bool "healthy subscriber unaffected" true !healthy_done;
  check int "healthy subscriber got every event" nevents !healthy_count;
  check int "stalled subscriber evicted" 1
    (wait_stat ~port "subscribers_evicted" 1);
  Relay.Client.close stalled;
  Relay.Client.close pub

let test_drop_oldest_keeps_stream_decodable () =
  let h = Relay.start ~policy:Relay.Drop_oldest ~max_queue:8 ~sndbuf:8192 () in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let pub, sender, fmt = make_publisher ~port ~stream:"flights" in
  let lagging = Relay.attach_consumer ~port ~stream:"flights" Abi.sparc_32 in
  ignore (wait_stat ~port "stream.flights.subscribers" 1);
  let nevents = 80 in
  for seq = 0 to nevents - 1 do
    publish sender fmt ~pad:65536 seq
  done;
  ignore (wait_stat ~port "events_relayed" nevents);
  ignore (wait_stat ~port "frames_dropped" 1);
  (* now start reading: dropped frames leave gaps but the descriptor
     was never shed, so everything that survived still decodes, in
     order, and the newest event is among them *)
  let seen = ref [] in
  let rec go () =
    match Relay.recv lagging with
    | None -> ()
    | Some (_, v) ->
      seen := seq_of v :: !seen;
      if seq_of v < nevents - 1 then go ()
  in
  go ();
  let seen = List.rev !seen in
  check bool "some events shed" true (List.length seen < nevents);
  check bool "survivors decode in order" true
    (List.sort compare seen = seen);
  check bool "newest event survived" true
    (List.mem (nevents - 1) seen);
  Relay.close_consumer lagging;
  Relay.Client.close pub

(* ------------------------------------------------------------------ *)
(* Chunked stored replay                                                *)
(* ------------------------------------------------------------------ *)

(* A SUBSCRIBE from=0 against a backlog much larger than the queue
   watermark: replay is paced in chunks from the writable callback, so
   the subscriber still receives every stored frame, in order, while
   the relay's queue never has to hold the whole backlog at once. *)
let test_chunked_replay_backpressure () =
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "omf-relay-replay-%d-%d" (Unix.getpid ())
         (Random.int 1000000))
  in
  let rec rm path =
    match (Unix.lstat path).Unix.st_kind with
    | Unix.S_DIR ->
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Sys.remove path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  Fun.protect ~finally:(fun () -> rm root) @@ fun () ->
  let store = Omf_store.Store.default_config ~root in
  let nevents = 400 in
  let max_queue = 16 in
  let h = Relay.start ~max_queue ~store () in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let pub, sender, fmt = make_publisher ~port ~stream:"flights" in
  for seq = 0 to nevents - 1 do
    publish sender fmt seq
  done;
  ignore (wait_stat ~port "store_appends" nevents);
  (* replay the whole backlog through a 16-frame watermark *)
  let sub = Relay.Client.connect ~port () in
  let start, _schema, link =
    Relay.Client.subscribe_from sub ~stream:"flights" ~from:0
  in
  check bool "store-backed reply carries the offset" true (start = Some 0);
  let catalog = Catalog.create Abi.arm_32 in
  ignore (X2W.register_schema catalog Fx.schema_a);
  let receiver =
    Endpoint.Receiver.create link
      (Catalog.registry catalog)
      (Memory.create Abi.arm_32)
  in
  for expect = 0 to nevents - 1 do
    match Endpoint.Receiver.recv_value receiver with
    | Some (_, v) -> check int "in order, zero loss" expect (seq_of v)
    | None -> Alcotest.failf "stream closed at %d" expect
  done;
  (* the replay really was chunked, and it finished *)
  let stats = Relay.Client.stats pub in
  let stat key = Option.value ~default:0 (List.assoc_opt key stats) in
  check int "replay completed" 1 (stat "store_replay_done");
  check int "every frame came from the store" nevents
    (stat "store_replay_frames");
  check bool "paced in multiple chunks" true (stat "store_replay_chunks" > 1);
  Relay.Client.close sub;
  Relay.Client.close pub

(* ------------------------------------------------------------------ *)
(* Graceful drain-and-shutdown                                          *)
(* ------------------------------------------------------------------ *)

let test_graceful_drain_on_shutdown () =
  let h = Relay.start ~sndbuf:8192 ~drain_s:10.0 () in
  let port = Relay.port (Relay.relay h) in
  let pub, sender, fmt = make_publisher ~port ~stream:"flights" in
  let consumer = Relay.attach_consumer ~port ~stream:"flights" Abi.x86_64 in
  let nevents = 100 in
  for seq = 0 to nevents - 1 do
    publish sender fmt ~pad:4096 seq
  done;
  (* wait until the relay has ingested everything, then shut down while
     most frames are still queued for the (unread) subscriber *)
  ignore (wait_stat ~port "events_relayed" nevents);
  let stopper = Thread.create (fun () -> Relay.stop h) () in
  let count = ref 0 in
  let rec go () =
    match Relay.recv consumer with
    | Some _ ->
      incr count;
      go ()
    | None -> ()
  in
  go ();
  Thread.join stopper;
  check int "drain delivered every queued event before closing" nevents !count;
  Relay.close_consumer consumer;
  (try Relay.Client.close pub with _ -> ())

(* ------------------------------------------------------------------ *)
(* Overload governor (pure state machine; doc/OVERLOAD.md)              *)
(* ------------------------------------------------------------------ *)

let test_governor_hysteresis () =
  let module G = Relay.Governor in
  (* budget 1000: degraded at 700 (recover < 500), overloaded at 900
     (recover < 700) *)
  let g = G.create (G.config ~budget:1000 ()) in
  let transitions = ref [] in
  G.on_transition g (fun prev next ->
      transitions := (G.health_name prev, G.health_name next) :: !transitions);
  let health () = G.health_level (G.health g) in
  G.debit g 699;
  check int "below degraded_hi stays healthy" 0 (health ());
  G.debit g 1;
  check int "700 degrades" 1 (health ());
  (* hysteresis: dipping back under the high watermark is not recovery *)
  G.credit g 150;
  check int "550 still degraded" 1 (health ());
  G.credit g 51;
  check int "under 500 recovers" 0 (health ());
  G.debit g 401;
  check int "900 jumps straight to overloaded" 2 (health ());
  G.credit g 200;
  check int "700 still overloaded (recover < 700)" 2 (health ());
  G.credit g 1;
  check int "699 steps down to degraded" 1 (health ());
  G.credit g 300;
  check int "399 fully recovers" 0 (health ());
  check bool "every transition fired" true
    (List.rev !transitions
    = [ ("healthy", "degraded"); ("degraded", "healthy")
      ; ("healthy", "overloaded"); ("overloaded", "degraded")
      ; ("degraded", "healthy") ]);
  (* credits clamp at zero instead of going negative *)
  G.credit g 10_000;
  check int "used clamps at 0" 0 (G.used g);
  (* a disabled governor tracks usage but never changes health *)
  let off = G.create (G.config ~budget:0 ()) in
  G.debit off 1_000_000;
  check int "disabled stays healthy" 0 (G.health_level (G.health off));
  check bool "disabled reports so" false (G.enabled off)

(* the busy retry hint adapts to the observed drain rate: used bytes /
   credited-bytes-per-second, clamped to [configured, 10x configured] *)
let test_governor_adaptive_retry () =
  let module G = Relay.Governor in
  let g = G.create (G.config ~budget:10_000 ~busy_retry_ms:100 ()) in
  check int "no drain rate yet: the configured floor" 100 (G.busy_retry_ms g);
  G.debit g 1000;
  G.note_tick g ~now:10.0;
  (* first tick only arms the window; still the floor *)
  check int "first tick arms, floor holds" 100 (G.busy_retry_ms g);
  G.credit g 500;
  G.note_tick g ~now:11.0;
  check bool "rate observed" true (abs_float (G.drain_rate g -. 500.0) < 1e-6);
  (* 500 bytes still queued at 500 B/s -> ~1000ms estimate *)
  check int "estimate = used / rate" 1000 (G.busy_retry_ms g);
  (* a much faster drain pulls the hint down toward the floor *)
  G.credit g 450;
  G.note_tick g ~now:12.0;
  (* EWMA(0.5): (500 + 450) / 2 = 475 B/s; 50 B left -> ~105ms *)
  let hint = G.busy_retry_ms g in
  check bool "fast drain shrinks the hint" true (hint >= 100 && hint < 200);
  G.credit g 50;
  check int "nothing queued: floor again" 100 (G.busy_retry_ms g);
  (* a stalled queue cannot push the hint past the 10x ceiling *)
  G.debit g 10_000;
  G.note_tick g ~now:13.0;
  G.credit g 1;
  G.note_tick g ~now:14.0;
  check int "stall clamps at 10x the floor" 1000 (G.busy_retry_ms g);
  (* sub-10ms ticks are ignored so a burst of gauge refreshes cannot
     produce a garbage rate *)
  let before = G.drain_rate g in
  G.credit g 100;
  G.note_tick g ~now:14.001;
  check bool "too-close tick ignored" true
    (abs_float (G.drain_rate g -. before) < 1e-6)

let test_governor_overload_sheds_publish () =
  (* a tiny budget + a subscriber that never reads: publishing into the
     backlog must flip the shard to overloaded and shed PUBLISH with a
     retryable busy reply, while control traffic (STATS) still flows *)
  let handle =
    Relay.start ~policy:Relay.Block ~max_queue:100_000 ~sndbuf:4096
      ~governor:(Relay.Governor.config ~budget:16_384 ~busy_retry_ms:50 ())
      ()
  in
  Fun.protect ~finally:(fun () -> Relay.stop handle) @@ fun () ->
  let port = Relay.port (Relay.relay handle) in
  let admin = Relay.Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Relay.Client.close admin) @@ fun () ->
  Relay.Client.advertise admin ~stream:"storm" ~schema:Fx.schema_a;
  (* subscriber that never reads: its queue absorbs the budget *)
  let sub = Relay.Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Relay.Client.close sub) @@ fun () ->
  let _schema, _link = Relay.Client.subscribe sub ~stream:"storm" in
  let pub = Relay.Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Relay.Client.close pub) @@ fun () ->
  let link = Relay.Client.publish pub ~stream:"storm" in
  let frame = Bytes.make 1024 'x' in
  Bytes.set frame 0 'M';
  (* pump from a side thread: once the shard overloads it pauses this
     publisher's reads, so send eventually blocks — closing the socket
     in the finalizers unblocks it *)
  let stop = ref false in
  ignore
    (Thread.create
       (fun () ->
         try
           while not !stop do
             Omf_transport.Link.send link frame
           done
         with _ -> ())
       ());
  (* wait for the governor to notice the backlog *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec wait () =
    let stats = Relay.Client.stats admin in
    if List.assoc_opt "governor_health" stats = Some 2 then ()
    else if Unix.gettimeofday () > deadline then begin
      stop := true;
      Alcotest.fail "governor never reached overloaded"
    end
    else begin
      Thread.delay 0.02;
      wait ()
    end
  in
  wait ();
  stop := true;
  (* an overloaded shard refuses new PUBLISH retryably... *)
  let late = Relay.Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Relay.Client.close late) @@ fun () ->
  (match Relay.Client.publish late ~stream:"storm" with
  | _ -> Alcotest.fail "expected Busy from an overloaded relay"
  | exception Relay.Client.Busy { retry_ms } ->
    check int "busy carries the configured retry hint" 50 retry_ms);
  (* ...but control traffic still flows (STATS answered above, and the
     shed was counted) *)
  let stats = Relay.Client.stats admin in
  check bool "publish_busy counted" true
    (match List.assoc_opt "publish_busy" stats with
    | Some n -> n >= 1
    | None -> false);
  check bool "governor budget gauge exported" true
    (List.assoc_opt "governor_budget_bytes" stats = Some 16_384)

(* governor debits are taken from slice lengths at enqueue and credited
   back on write, shed, eviction, and close; whatever mix of those a
   connection's life ends in, the books must balance: once every
   subscriber is gone, [used] is exactly 0 — not merely small *)
let test_governor_accounting_symmetry () =
  let wait_used_zero h =
    let r = Relay.relay h in
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec go () =
      if Relay.governor_used r <> 0 && Unix.gettimeofday () < deadline then begin
        Thread.delay 0.01;
        go ()
      end
    in
    go ();
    Relay.governor_used r
  in
  let big_budget = Relay.Governor.config ~budget:(1 lsl 30) () in
  let nevents = 40 in
  (* phase 1: drop-oldest sheds + a draining consumer + closes *)
  (let h =
     Relay.start ~policy:Relay.Drop_oldest ~max_queue:8 ~sndbuf:8192
       ~governor:big_budget ()
   in
   Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
   let pub, sender, fmt = make_publisher ~port:(Relay.port (Relay.relay h)) ~stream:"flights" in
   let port = Relay.port (Relay.relay h) in
   let stalled = Relay.Client.connect ~port () in
   ignore (Relay.Client.subscribe stalled ~stream:"flights");
   let healthy =
     Thread.create
       (fun () ->
         let consumer =
           Relay.attach_consumer ~port ~stream:"flights" Abi.x86_64
         in
         let rec go prev =
           if prev < nevents - 1 then
             match Relay.recv consumer with
             | None -> ()
             | Some (_, v) -> go (seq_of v)
         in
         go (-1);
         Relay.close_consumer consumer)
       ()
   in
   ignore (wait_stat ~port "stream.flights.subscribers" 2);
   for seq = 0 to nevents - 1 do
     publish sender fmt ~pad:65536 seq
   done;
   ignore (wait_stat ~port "frames_dropped" 1);
   Thread.join healthy;
   Relay.Client.close stalled;
   Relay.Client.close pub;
   check int "used returns to 0 after sheds+writes+closes" 0
     (wait_used_zero h));
  (* phase 2: a slow-consumer eviction must also hand its bytes back *)
  let h =
    Relay.start ~policy:Relay.Evict_slow ~max_queue:8 ~evict_grace_s:0.2
      ~sndbuf:8192 ~governor:big_budget ()
  in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let port = Relay.port (Relay.relay h) in
  let pub, sender, fmt = make_publisher ~port ~stream:"flights" in
  let stalled = Relay.Client.connect ~port () in
  ignore (Relay.Client.subscribe stalled ~stream:"flights");
  ignore (wait_stat ~port "stream.flights.subscribers" 1);
  for seq = 0 to nevents - 1 do
    publish sender fmt ~pad:65536 seq
  done;
  ignore (wait_stat ~port "subscribers_evicted" 1);
  Relay.Client.close stalled;
  Relay.Client.close pub;
  check int "used returns to 0 after an eviction" 0 (wait_used_zero h)

let () =
  Alcotest.run "relay"
    [ ( "frames",
        [ QCheck_alcotest.to_alcotest prop_frame_reassembly
        ; Alcotest.test_case "oversized frame rejected" `Quick
            test_frame_max_length
        ; QCheck_alcotest.to_alcotest prop_macframe_roundtrip_and_tamper
        ; QCheck_alcotest.to_alcotest prop_slice_codec_equivalence ] )
    ; ( "pubsub",
        [ Alcotest.test_case "publish/subscribe + descriptor replay" `Quick
            test_pubsub_and_descriptor_replay
        ; Alcotest.test_case "credential scoping over TCP" `Quick
            test_scoped_credentials_over_tcp
        ; Alcotest.test_case "unknown stream / role errors" `Quick
            test_unknown_stream_and_role_errors
        ; Alcotest.test_case "stats protocol" `Quick test_stats_protocol ] )
    ; ( "scale",
        [ Alcotest.test_case "64 TCP subscribers, zero loss, in order" `Quick
            test_64_subscribers_zero_loss_in_order ] )
    ; ( "backpressure",
        [ Alcotest.test_case "evict-slow-consumer" `Quick
            test_evict_slow_consumer
        ; Alcotest.test_case "drop-oldest keeps stream decodable" `Quick
            test_drop_oldest_keeps_stream_decodable
        ; Alcotest.test_case "chunked stored replay under backpressure" `Quick
            test_chunked_replay_backpressure ] )
    ; ( "governor",
        [ Alcotest.test_case "hysteresis state machine" `Quick
            test_governor_hysteresis
        ; Alcotest.test_case "adaptive busy retry hint" `Quick
            test_governor_adaptive_retry
        ; Alcotest.test_case "overload sheds publish with busy" `Quick
            test_governor_overload_sheds_publish
        ; Alcotest.test_case "byte accounting symmetry" `Quick
            test_governor_accounting_symmetry ] )
    ; ( "shutdown",
        [ Alcotest.test_case "graceful drain" `Quick
            test_graceful_drain_on_shutdown ] ) ]
