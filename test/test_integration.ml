(** Integration tests: whole-system scenarios that cross every layer —
    HTTP metadata discovery, the catalog, the backbone, NDR transfer with
    mixed ABIs, the format server, and failure injection. These are the
    checked versions of the example programs. *)

open Omf_machine
open Omf_pbio.Pbio
module X2W = Omf_xml2wire.Xml2wire
module Catalog = Omf_xml2wire.Catalog
module Discovery = Omf_xml2wire.Discovery
module Broker = Omf_backbone.Broker
module Http = Omf_httpd.Http
module Fs = Omf_formatserver.Format_server
module Endpoint = Omf_transport.Endpoint
module Fx = Omf_fixtures.Paper_structs

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let str = Alcotest.string

let value_testable =
  Alcotest.testable (fun ppf v -> Fmt.string ppf (Value.to_string v)) Value.equal

(* ------------------------------------------------------------------ *)
(* Scenario 1: the airline system, end to end                           *)
(* ------------------------------------------------------------------ *)

let test_airline_system () =
  (* metaserver *)
  let server = Http.serve_table ~port:0 [ ("/flights.xsd", Fx.schema_a) ] in
  Fun.protect
    ~finally:(fun () -> Http.shutdown server)
    (fun () ->
      let broker = Broker.create () in
      (* capture point discovers its metadata over HTTP *)
      let catalog = Catalog.create Abi.x86_64 in
      let outcome =
        Discovery.discover catalog
          [ Discovery.from_fetcher ~label:"http"
              (Http.fetcher ~port:(Http.port server) ~path:"/flights.xsd" ())
          ; Discovery.compiled [ Fx.decl_a ] ]
      in
      check str "metadata came from HTTP" "http" outcome.Discovery.source;
      Broker.advertise broker ~stream:"flights"
        ~schema:(Option.get outcome.Discovery.document);
      Broker.set_scope broker ~stream:"flights" (fun creds ->
          if List.mem_assoc "restricted" creds then Some [ "fltNum"; "dest" ]
          else None);
      let link = Broker.publisher_link broker ~stream:"flights" in
      let sender = Endpoint.Sender.create link (Memory.create Abi.x86_64) in
      let fmt = Option.get (Catalog.find_format catalog "ASDOffEvent") in
      (* consumers on every ABI, one of them scoped *)
      let consumers =
        List.map
          (fun abi -> Broker.attach_consumer broker ~stream:"flights" abi)
          Abi.all
      in
      let scoped =
        Broker.attach_consumer broker ~stream:"flights"
          ~creds:[ ("restricted", "1") ] Abi.arm_32
      in
      for _ = 1 to 3 do
        Endpoint.Sender.send_value sender fmt Fx.value_a
      done;
      List.iteri
        (fun i c ->
          let events = Broker.poll c in
          check int (Printf.sprintf "consumer %d got all events" i) 3
            (List.length events);
          let _, v = List.hd events in
          check value_testable "payload correct" (Value.String "KMCO")
            (Value.field_exn v "dest"))
        consumers;
      let scoped_events = Broker.poll scoped in
      check int "scoped consumer got all events" 3 (List.length scoped_events);
      let _, v = List.hd scoped_events in
      check bool "scoped consumer sees only the slice" true
        (Value.field v "cntrID" = None && Value.field v "fltNum" <> None))

(* ------------------------------------------------------------------ *)
(* Scenario 2: live upgrade while the system runs                       *)
(* ------------------------------------------------------------------ *)

let test_upgrade_mid_stream () =
  let schema_v2 =
    Omf_testkit.Strings.replace
      ~sub:{|<xsd:element name="eta" type="xsd:unsigned-long" />|}
      ~by:{|<xsd:element name="eta" type="xsd:unsigned-long" />
    <xsd:element name="gate" type="xsd:string" />|}
      Fx.schema_a
  in
  let docs = ref Fx.schema_a in
  let server = Http.serve ~port:0 (fun ~path:_ ~headers:_ -> Http.ok !docs) in
  Fun.protect
    ~finally:(fun () -> Http.shutdown server)
    (fun () ->
      let broker = Broker.create () in
      let catalog = Catalog.create Abi.x86_64 in
      let watch =
        Discovery.watch catalog
          [ Discovery.from_fetcher ~label:"http"
              (Http.fetcher ~port:(Http.port server) ~path:"/f.xsd" ()) ]
      in
      Broker.advertise broker ~stream:"flights" ~schema:Fx.schema_a;
      let link = Broker.publisher_link broker ~stream:"flights" in
      let sender = Endpoint.Sender.create link (Memory.create Abi.x86_64) in
      let old_consumer =
        Broker.attach_consumer broker ~stream:"flights" Abi.sparc_32
      in
      let fmt_v1 = Option.get (Catalog.find_format catalog "ASDOffEvent") in
      Endpoint.Sender.send_value sender fmt_v1 Fx.value_a;
      check int "v1 flows" 1 (List.length (Broker.poll old_consumer));
      (* metadata changes at the server; publisher refreshes *)
      docs := schema_v2;
      (match Discovery.refresh watch with
      | Some _ -> ()
      | None -> Alcotest.fail "refresh missed the upgrade");
      Broker.advertise broker ~stream:"flights" ~schema:schema_v2;
      let fmt_v2 = Option.get (Catalog.find_format catalog "ASDOffEvent") in
      check bool "upgraded format differs" false
        (Format.same_wire_layout fmt_v1 fmt_v2);
      let v2_value =
        Value.set_field Fx.value_a "gate" (Value.String "T7")
      in
      Endpoint.Sender.send_value sender fmt_v2 v2_value;
      (* the running v1 consumer keeps decoding, dropping the new field *)
      (match Broker.poll old_consumer with
      | [ (_, v) ] ->
        check bool "old consumer: no gate" true (Value.field v "gate" = None);
        check value_testable "old consumer: payload intact"
          (Value.String "KMCO") (Value.field_exn v "dest")
      | other -> Alcotest.failf "expected 1 event, got %d" (List.length other));
      (* a new consumer discovers v2 and sees everything *)
      let new_consumer =
        Broker.attach_consumer broker ~stream:"flights" Abi.power_64
      in
      Endpoint.Sender.send_value sender fmt_v2 v2_value;
      match Broker.poll new_consumer with
      | (_, v) :: _ ->
        check value_testable "new consumer sees the gate" (Value.String "T7")
          (Value.field_exn v "gate")
      | [] -> Alcotest.fail "new consumer got nothing")

(* ------------------------------------------------------------------ *)
(* Scenario 3: format server instead of per-connection negotiation      *)
(* ------------------------------------------------------------------ *)

let test_format_server_based_system () =
  let fs = Fs.Server.start ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Fs.Server.shutdown fs)
    (fun () ->
      (* the sender discovers metadata from XML and registers the physical
         format with the format server *)
      let catalog = Catalog.create Abi.x86_64 in
      ignore (X2W.register_schema catalog Fx.schema_b);
      let fmt = Option.get (Catalog.find_format catalog "ASDOffEventB") in
      let sc = Fs.Client.connect ~port:fs.Fs.Server.port () in
      let gid = Fs.Client.register sc fmt in
      let mem = Memory.create Abi.x86_64 in
      let addr = Native.store mem fmt Fx.value_b in
      let msgs = List.init 5 (fun _ -> message ~id:gid mem fmt addr) in
      (* two receivers on different ABIs resolve via the server *)
      List.iter
        (fun abi ->
          let rc = Fs.Client.connect ~port:fs.Fs.Server.port () in
          let rcat = Catalog.create abi in
          ignore (X2W.register_schema rcat Fx.schema_b);
          let receiver =
            Receiver.create
              ~resolve:(Fs.Client.resolver rc)
              (Catalog.registry rcat) (Memory.create abi)
          in
          List.iter
            (fun msg ->
              let _, v = Receiver.receive_value receiver msg in
              check value_testable (abi.Abi.name ^ " via format server")
                (Value.String "ZTL-ARTCC-0004")
                (Value.field_exn v "cntrID"))
            msgs;
          Fs.Client.close rc)
        [ Abi.sparc_32; Abi.alpha_64 ];
      Fs.Client.close sc)

(* ------------------------------------------------------------------ *)
(* Scenario 4: all three wire formats agree, full stack, random data    *)
(* ------------------------------------------------------------------ *)

let prop_stack_wire_format_agreement =
  QCheck.Test.make
    ~name:"NDR / XDR / XML text agree end-to-end (random formats)" ~count:100
    (QCheck.make
       (QCheck.Gen.pair (Omf_testkit.Gen.format_and_value ())
          Omf_testkit.Gen.abi))
    (fun ((sender_abi, sfmt, v), receiver_abi) ->
      let smem = Memory.create sender_abi in
      let addr = Native.store smem sfmt v in
      let rreg = Registry.create receiver_abi in
      let native = Registry.register rreg sfmt.Format.decl in
      (* NDR *)
      let ndr =
        let receiver = Receiver.create rreg (Memory.create receiver_abi) in
        ignore (Receiver.learn receiver (Format_codec.encode sfmt));
        snd (Receiver.receive_value receiver (message smem sfmt addr))
      in
      (* XDR *)
      let xdr =
        let rmem = Memory.create receiver_abi in
        Native.load rmem native
          (Omf_xdr.Xdr.decode native rmem (Omf_xdr.Xdr.encode smem sfmt addr))
      in
      (* XML text *)
      let xml =
        let rmem = Memory.create receiver_abi in
        Native.load rmem native
          (Omf_xmlwire.Xmlwire.decode native rmem
             (Omf_xmlwire.Xmlwire.encode smem sfmt addr))
      in
      Value.equal ndr xdr && Value.equal ndr xml)

(* ------------------------------------------------------------------ *)
(* Scenario 5: graceful degradation under infrastructure failure        *)
(* ------------------------------------------------------------------ *)

let test_total_infrastructure_failure () =
  (* the metaserver dies (and stays dead: we inject a failing fetcher
     rather than racing on a recycled port); the system keeps working on
     compiled-in metadata and per-connection negotiation *)
  let catalog = Catalog.create Abi.x86_64 in
  let outcome =
    Discovery.discover catalog
      [ Discovery.from_fetcher ~label:"dead-http" (fun () ->
            raise (Http.Http_error "connect: ECONNREFUSED"))
      ; Discovery.compiled ~label:"compiled-in" [ Fx.decl_a ] ]
  in
  check str "compiled fallback" "compiled-in" outcome.Discovery.source;
  let fmt = Option.get (Catalog.find_format catalog "ASDOffEvent") in
  let rreg = Registry.create Abi.sparc_32 in
  ignore (Registry.register rreg Fx.decl_a);
  let receiver = Receiver.create rreg (Memory.create Abi.sparc_32) in
  ignore (Receiver.learn receiver (Format_codec.encode fmt));
  let _, v =
    Receiver.receive_value receiver
      (message_of_value Abi.x86_64 fmt Fx.value_a)
  in
  check value_testable "degraded system still moves data"
    (Value.String "DELTA") (Value.field_exn v "arln")

(* ------------------------------------------------------------------ *)
(* Scenario 6: duplex TCP exchange between two full endpoints           *)
(* ------------------------------------------------------------------ *)

let test_duplex_tcp_exchange () =
  let server_got = ref None and done_flag = ref false in
  let mu = Mutex.create () and cond = Condition.create () in
  let server =
    Omf_transport.Tcp.serve ~port:0 (fun link ->
        (* server side: its own catalog, receives then replies *)
        let catalog = Catalog.create Abi.power_64 in
        ignore (X2W.register_schema catalog Fx.schema_a);
        let mem = Memory.create Abi.power_64 in
        let receiver =
          Endpoint.Receiver.create link (Catalog.registry catalog) mem
        in
        (match Endpoint.Receiver.recv_value receiver with
        | Some (_, v) ->
          Mutex.lock mu;
          server_got := Some v;
          Mutex.unlock mu;
          (* reply with an ack on the same link, opposite direction *)
          let sender = Endpoint.Sender.create link mem in
          let fmt = Option.get (Catalog.find_format catalog "ASDOffEvent") in
          Endpoint.Sender.send_value sender fmt
            (Value.set_field v "dest" (Value.String "ACKD"))
        | None -> ());
        Mutex.lock mu;
        done_flag := true;
        Condition.signal cond;
        Mutex.unlock mu)
  in
  let port = Omf_transport.Tcp.server_port server in
  Fun.protect
    ~finally:(fun () -> Omf_transport.Tcp.shutdown server)
    (fun () ->
      let link = Omf_transport.Tcp.connect ~port () in
      let catalog = Catalog.create Abi.x86_32 in
      ignore (X2W.register_schema catalog Fx.schema_a);
      let mem = Memory.create Abi.x86_32 in
      let sender = Endpoint.Sender.create link mem in
      let fmt = Option.get (Catalog.find_format catalog "ASDOffEvent") in
      Endpoint.Sender.send_value sender fmt Fx.value_a;
      let receiver =
        Endpoint.Receiver.create link (Catalog.registry catalog) mem
      in
      let reply = Endpoint.Receiver.recv_value receiver in
      Mutex.lock mu;
      while not !done_flag do
        Condition.wait cond mu
      done;
      Mutex.unlock mu;
      Omf_transport.Link.close link;
      (match !server_got with
      | Some v ->
        check value_testable "server decoded client's event"
          (Value.String "KATL") (Value.field_exn v "org")
      | None -> Alcotest.fail "server got nothing");
      match reply with
      | Some (_, v) ->
        check value_testable "client decoded the ack" (Value.String "ACKD")
          (Value.field_exn v "dest")
      | None -> Alcotest.fail "no reply")

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "integration"
    [ ( "scenarios",
        [ Alcotest.test_case "airline system end-to-end" `Quick
            test_airline_system
        ; Alcotest.test_case "live upgrade mid-stream" `Quick
            test_upgrade_mid_stream
        ; Alcotest.test_case "format-server-based system" `Quick
            test_format_server_based_system
        ; Alcotest.test_case "total infrastructure failure" `Quick
            test_total_infrastructure_failure
        ; Alcotest.test_case "duplex TCP exchange" `Quick
            test_duplex_tcp_exchange ]
        @ qsuite [ prop_stack_wire_format_agreement ] ) ]
