(* lib/compress — LZ block codec round-trips, adversarial inputs, and
   decoder hardening (doc/COMPRESS.md). *)

module Slice = Omf_util.Slice
module Compress = Omf_compress.Compress

let bytes_testable =
  Alcotest.testable
    (fun fmt b -> Fmt.pf fmt "%d bytes" (Bytes.length b))
    Bytes.equal

let roundtrip what raw =
  let blk = Compress.compress raw in
  Alcotest.(check bool)
    (what ^ ": within bound")
    true
    (Bytes.length blk <= Compress.bound (Bytes.length raw));
  Alcotest.check bytes_testable (what ^ ": round-trip") raw
    (Compress.decompress blk)

let test_empty () =
  roundtrip "empty" Bytes.empty;
  Alcotest.(check int) "empty block is one byte" 1
    (Bytes.length (Compress.compress Bytes.empty))

let test_all_zero () =
  let raw = Bytes.make 65536 '\000' in
  let blk = Compress.compress raw in
  roundtrip "zeros" raw;
  Alcotest.(check bool) "zeros use the lz form" true (Compress.is_lz blk);
  Alcotest.(check bool)
    (Printf.sprintf "zeros shrink >100x (got %d)" (Bytes.length blk))
    true
    (Bytes.length blk * 100 < Bytes.length raw)

let test_structured () =
  (* paper-struct flavour: repeated field names, varying numbers *)
  let b = Buffer.create 4096 in
  for i = 0 to 499 do
    Buffer.add_string b
      (Printf.sprintf "<event><ts>%d</ts><host>node-%d</host><val>%f</val></event>"
         (1_000_000 + i) (i mod 7) (float_of_int i *. 0.25))
  done;
  let raw = Buffer.to_bytes b in
  let blk = Compress.compress raw in
  roundtrip "structured" raw;
  Alcotest.(check bool)
    (Printf.sprintf "structured shrinks >=2x (%d -> %d)" (Bytes.length raw)
       (Bytes.length blk))
    true
    (Bytes.length blk * 2 <= Bytes.length raw)

let test_incompressible () =
  let st = Random.State.make [| 0xC0FFEE |] in
  let raw =
    Bytes.init 8192 (fun _ -> Char.chr (Random.State.int st 256))
  in
  let blk = Compress.compress raw in
  roundtrip "random" raw;
  (* stored passthrough: worst case is exactly one byte of framing *)
  Alcotest.(check int) "random costs exactly 1 byte" (Bytes.length raw + 1)
    (Bytes.length blk)

let test_ragged_slices () =
  let backing = Bytes.make 1000 'x' in
  for i = 0 to 999 do
    Bytes.set backing i (Char.chr ((i * 7) mod 251))
  done;
  List.iter
    (fun (off, len) ->
      let s = Slice.make backing off len in
      let blk = Compress.compress_slice s in
      let got = Compress.decompress blk in
      Alcotest.check bytes_testable
        (Printf.sprintf "slice %d+%d" off len)
        (Bytes.sub backing off len) got)
    [ (0, 1000); (1, 999); (13, 100); (999, 1); (500, 0); (3, 997) ]

let test_slices_gather () =
  let a = Slice.of_string "header|" in
  let b = Slice.of_string (String.concat "," (List.init 200 string_of_int)) in
  let c = Slice.of_string "|footer" in
  let blk = Compress.compress_slices [ a; b; c ] in
  let want = Slice.concat [ a; b; c ] in
  Alcotest.check bytes_testable "gathered round-trip" want
    (Compress.decompress blk)

let expect_error what blk =
  match Compress.decompress blk with
  | exception Compress.Error _ -> ()
  | _ -> Alcotest.failf "%s: decoder accepted a malformed block" what

let test_malformed () =
  expect_error "empty input" Bytes.empty;
  expect_error "bad tag" (Bytes.of_string "\x07abc");
  expect_error "truncated header" (Bytes.of_string "\x01\x00\x00");
  (* valid block, then flip the distance past the output start *)
  let raw = Bytes.of_string (String.concat "" (List.init 64 (fun _ -> "abcd"))) in
  let blk = Compress.compress raw in
  Alcotest.(check bool) "fixture compresses" true (Compress.is_lz blk);
  let evil = Bytes.copy blk in
  (* grow the declared output so the token stream under-fills it *)
  Bytes.set evil 4 (Char.chr (Char.code (Bytes.get evil 4) lxor 0x40));
  expect_error "length mismatch" evil;
  let short = Bytes.sub blk 0 (Bytes.length blk - 3) in
  expect_error "truncated stream" short

let gen_payload =
  (* mix of compressible and adversarial shapes *)
  QCheck.Gen.(
    frequency
      [ (3, map Bytes.of_string (string_size (int_bound 2000)))
      ; ( 2,
          map2
            (fun c n -> Bytes.make n c)
            (map Char.chr (int_bound 255))
            (int_bound 5000) )
      ; ( 2,
          map2
            (fun pat n ->
              let b = Buffer.create (n * String.length pat) in
              for _ = 1 to n do
                Buffer.add_string b pat
              done;
              Buffer.to_bytes b)
            (string_size ~gen:printable (int_range 1 40))
            (int_bound 300) )
      ; ( 2,
          map
            (fun n ->
              let st = Random.State.make [| n |] in
              Bytes.init n (fun _ -> Char.chr (Random.State.int st 256)))
            (int_bound 4000) ) ])

let prop_roundtrip =
  QCheck.Test.make ~name:"lz round-trip (arbitrary payloads)" ~count:300
    (QCheck.make gen_payload)
    (fun raw ->
      let blk = Compress.compress raw in
      Bytes.length blk <= Compress.bound (Bytes.length raw)
      && Bytes.equal raw (Compress.decompress blk))

let prop_slice_roundtrip =
  QCheck.Test.make ~name:"lz round-trip (ragged slice windows)" ~count:200
    (QCheck.make
       QCheck.Gen.(pair gen_payload (pair (int_bound 50) (int_bound 50)))
    )
    (fun (raw, (skew_l, skew_r)) ->
      let n = Bytes.length raw in
      let off = min skew_l n in
      let len = max 0 (n - off - min skew_r (n - off)) in
      let s = Slice.make raw off len in
      let got = Compress.decompress_slice (Slice.of_bytes (Compress.compress_slice s)) in
      Bytes.equal (Bytes.sub raw off len) got)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "compress"
    [ ( "codec",
        [ Alcotest.test_case "empty" `Quick test_empty
        ; Alcotest.test_case "all-zero" `Quick test_all_zero
        ; Alcotest.test_case "structured >=2x" `Quick test_structured
        ; Alcotest.test_case "incompressible passthrough" `Quick
            test_incompressible
        ; Alcotest.test_case "ragged slice offsets" `Quick test_ragged_slices
        ; Alcotest.test_case "gathered wire message" `Quick test_slices_gather
        ; Alcotest.test_case "malformed blocks rejected" `Quick test_malformed ]
        @ qsuite [ prop_roundtrip; prop_slice_roundtrip ] ) ]
