(** Tests for the utility modules: hexdump, the deterministic PRNG, the
    coarse timing helpers, and the SHA-256/HMAC primitives. *)

module Hexdump = Omf_util.Hexdump
module Prng = Omf_util.Prng
module Clock = Omf_util.Clock
module Sha256 = Omf_util.Sha256

let check = Alcotest.check
let str = Alcotest.string
let bool = Alcotest.bool
let int = Alcotest.int

let test_hexdump_short () =
  check str "empty" "" (Hexdump.short Bytes.empty);
  check str "bytes" "00ff10" (Hexdump.short (Bytes.of_string "\x00\xff\x10"))

let test_hexdump_canonical () =
  let dump = Hexdump.of_bytes (Bytes.of_string "Hello, world!\x00\x01\x02\x03") in
  check bool "offset column" true (String.length dump > 0 && String.sub dump 0 8 = "00000000");
  check bool "ascii gutter shows printables" true
    (let rec contains i =
       i + 5 <= String.length dump
       && (String.sub dump i 5 = "Hello" || contains (i + 1))
     in
     contains 0);
  check bool "non-printables dotted" true (String.contains dump '.');
  (* 17 bytes -> two lines *)
  check int "line count" 2
    (List.length (List.filter (fun s -> s <> "") (String.split_on_char '\n' dump)))

let test_hexdump_alignment () =
  (* every full line has the same width *)
  let dump = Hexdump.of_bytes (Bytes.init 64 (fun i -> Char.chr i)) in
  let lines = List.filter (fun s -> s <> "") (String.split_on_char '\n' dump) in
  let widths = List.map String.length lines in
  check bool "uniform line width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_prng_deterministic () =
  let a = Prng.create ~seed:7L () in
  let b = Prng.create ~seed:7L () in
  let xs = List.init 100 (fun _ -> Prng.int a 1000) in
  let ys = List.init 100 (fun _ -> Prng.int b 1000) in
  check bool "same seed, same stream" true (xs = ys);
  let c = Prng.create ~seed:8L () in
  let zs = List.init 100 (fun _ -> Prng.int c 1000) in
  check bool "different seed, different stream" true (xs <> zs)

let test_prng_ranges () =
  let r = Prng.create () in
  for _ = 1 to 1000 do
    let v = Prng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "int out of range: %d" v;
    let f = Prng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_prng_strings () =
  let r = Prng.create () in
  let s = Prng.string r 20 in
  check int "length" 20 (String.length s);
  check bool "printable" true
    (String.for_all (fun c -> c >= ' ' && c <= '~') s);
  let id = Prng.ident r 12 in
  check bool "identifier shape" true
    (id.[0] >= 'a' && id.[0] <= 'z'
    && String.for_all
         (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
         id)

let test_prng_zero_seed_is_usable () =
  let r = Prng.create ~seed:0L () in
  (* xorshift with state 0 would be stuck at 0 forever; the constructor
     must avoid that *)
  let distinct = List.sort_uniq compare (List.init 10 (fun _ -> Prng.int r 1000000)) in
  check bool "not stuck" true (List.length distinct > 1)

let test_prng_distribution_rough () =
  let r = Prng.create () in
  let buckets = Array.make 10 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let v = Prng.int r 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < n / 20 || c > n / 5 then
        Alcotest.failf "bucket %d wildly off: %d/%d" i c n)
    buckets

let test_clock_measures_something () =
  let _, ns =
    Clock.time_ns (fun () ->
        let acc = ref 0 in
        for i = 1 to 100_000 do
          acc := !acc + i
        done;
        !acc)
  in
  check bool "non-negative" true (Int64.compare ns 0L >= 0);
  let per = Clock.repeat_ns 10 (fun () -> Sys.opaque_identity (List.init 100 Fun.id)) in
  check bool "repeat gives a finite mean" true (Float.is_finite per && per >= 0.0)

(* FIPS 180-4 / NIST CAVP and RFC 4231 vectors *)
let test_sha256_vectors () =
  check str "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex (Sha256.digest ""));
  check str "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex (Sha256.digest "abc"));
  check str "448-bit two-block message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex
       (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
  check str "million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (Sha256.digest (String.make 1_000_000 'a')))

let test_sha256_incremental_matches_oneshot () =
  let r = Prng.create ~seed:99L () in
  for _ = 1 to 50 do
    let s = Prng.string r (Prng.int r 300) in
    let c = Sha256.init () in
    (* feed in ragged pieces *)
    let off = ref 0 in
    while !off < String.length s do
      let n = min (1 + Prng.int r 17) (String.length s - !off) in
      Sha256.feed c (String.sub s !off n);
      off := !off + n
    done;
    check str "ragged = one-shot" (Sha256.hex (Sha256.digest s))
      (Sha256.hex (Sha256.finish c))
  done

let test_hmac_vectors () =
  (* RFC 4231 test case 1 *)
  check str "rfc4231 tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Sha256.hex (Sha256.hmac ~key:(String.make 20 '\x0b') "Hi There"));
  (* RFC 4231 test case 2: key and data shorter than the block *)
  check str "rfc4231 tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Sha256.hex (Sha256.hmac ~key:"Jefe" "what do ya want for nothing?"));
  (* RFC 4231 test case 6: key longer than the block (hashed first) *)
  check str "rfc4231 tc6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Sha256.hex
       (Sha256.hmac
          ~key:(String.make 131 '\xaa')
          "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_constant_time_equal () =
  check bool "equal" true (Sha256.equal_constant_time "abcd" "abcd");
  check bool "different content" false (Sha256.equal_constant_time "abcd" "abce");
  check bool "different length" false (Sha256.equal_constant_time "abc" "abcd")

let test_prometheus_labels () =
  let text =
    Omf_util.Counters.prometheus ~component:"relay"
      [ ("events_relayed", 42)
      ; ("stream.flights.queue_depth", 7)
      ; ("mirror.EU/ops:alerts.lag_frames", 3)
      ; ("store.a.b.tail", 9)
      ; ("g.su\"bj.m", 1)
      ; ("weird.name", 5) ]
  in
  let has line =
    List.mem line (String.split_on_char '\n' text)
  in
  check bool "plain counter" true (has "omf_relay_events_relayed 42");
  check bool "per-stream gauge gets a label" true
    (has "omf_relay_stream_queue_depth{stream=\"flights\"} 7");
  check bool "subject keeps punctuation verbatim" true
    (has "omf_relay_mirror_lag_frames{stream=\"EU/ops:alerts\"} 3");
  (* the subject is everything between the first and last dot, so it
     may itself contain dots *)
  check bool "dotted subject" true
    (has "omf_relay_store_tail{stream=\"a.b\"} 9");
  check bool "quotes in the subject are escaped" true
    (has "omf_relay_g_m{stream=\"su\\\"bj\"} 1");
  (* a single-dot name has no <group>.<subject>.<metric> shape: it
     renders as a plain sanitised metric, no label *)
  check bool "single-dot name stays plain" true (has "omf_relay_weird_name 5")

let test_histogram_observe () =
  let c = Omf_util.Counters.create () in
  (* samples straddling the 50 / 100 / 250 default bounds *)
  List.iter (Omf_util.Counters.observe c "admit_us") [ 10; 50; 70; 200; 2_000_000 ];
  let get = Omf_util.Counters.get c in
  (* cumulative buckets: le_50 counts 10 and 50, le_100 adds 70, ... *)
  check int "le 50" 2 (get "hist.admit_us.le_000000050");
  check int "le 100" 3 (get "hist.admit_us.le_000000100");
  check int "le 250" 4 (get "hist.admit_us.le_000000250");
  check int "le 1000000" 4 (get "hist.admit_us.le_001000000");
  check int "le inf" 5 (get "hist.admit_us.le_inf");
  check int "count" 5 (get "hist.admit_us.count");
  check int "sum" 2_000_330 (get "hist.admit_us.sum");
  (* bucket keys are zero-padded so the sorted dump is in bound order *)
  let bucket_keys =
    List.filter_map
      (fun (k, _) ->
        if
          String.length k > 19
          && String.sub k 0 19 = "hist.admit_us.le_00"
        then Some k
        else None)
      (Omf_util.Counters.dump c)
  in
  check bool "alphabetical = numeric bucket order" true
    (bucket_keys = List.sort compare bucket_keys
    && List.length bucket_keys = List.length Omf_util.Counters.default_bounds);
  (* histograms merge bucket-wise across shards like any counter *)
  let c2 = Omf_util.Counters.create () in
  Omf_util.Counters.observe c2 "admit_us" 60;
  let merged = Omf_util.Counters.merged [ c; c2 ] in
  check int "merged le 100" 4 (List.assoc "hist.admit_us.le_000000100" merged);
  check int "merged count" 6 (List.assoc "hist.admit_us.count" merged)

let test_histogram_prometheus () =
  let c = Omf_util.Counters.create () in
  List.iter (Omf_util.Counters.observe c "admit_us") [ 10; 9_999_999 ];
  let text = Omf_util.Counters.prometheus ~component:"relay" (Omf_util.Counters.dump c) in
  let has line = List.mem line (String.split_on_char '\n' text) in
  check bool "bucket with le label (padding stripped)" true
    (has "omf_relay_admit_us_bucket{le=\"50\"} 1");
  check bool "higher cumulative bucket" true
    (has "omf_relay_admit_us_bucket{le=\"1000000\"} 1");
  check bool "+Inf overflow bucket" true
    (has "omf_relay_admit_us_bucket{le=\"+Inf\"} 2");
  check bool "sum" true (has "omf_relay_admit_us_sum 10000009");
  check bool "count" true (has "omf_relay_admit_us_count 2")

let test_token_bucket () =
  let module Tb = Omf_util.Token_bucket in
  let b = Tb.create ~rate:10.0 ~burst:5.0 ~now:100.0 in
  (* the burst allowance goes first *)
  for _ = 1 to 5 do
    Tb.take b ~now:100.0 1.0
  done;
  check bool "burst exhausted but not in debt" true (Tb.ready b ~now:100.0);
  Tb.take b ~now:100.0 1.0;
  check bool "in debt" false (Tb.ready b ~now:100.0);
  (* one token of debt at 10/s refills in 0.1s *)
  check bool "delay ~0.1s" true (abs_float (Tb.delay b ~now:100.0 -. 0.1) < 1e-9);
  check bool "ready after the refill" true (Tb.ready b ~now:100.11);
  (* tokens cap at burst no matter how long the idle gap *)
  check bool "capped at burst" true (Tb.tokens b ~now:1000.0 <= 5.0 +. 1e-9);
  (* a clock that jumps backwards must not mint tokens or go negative *)
  Tb.take b ~now:1000.0 5.0;
  let before = Tb.tokens b ~now:1000.0 in
  check bool "monotonic guard" true (Tb.tokens b ~now:500.0 >= before -. 1e-9);
  (* rate <= 0 = unlimited *)
  let u = Tb.create ~rate:0.0 ~burst:1.0 ~now:0.0 in
  for _ = 1 to 1000 do
    Tb.take u ~now:0.0 1.0
  done;
  check bool "unlimited never throttles" true (Tb.ready u ~now:0.0)

(* index of the first occurrence of [sub] in [s], if any *)
let find_sub s sub =
  let n = String.length sub in
  let rec go i =
    if i + n > String.length s then None
    else if String.equal (String.sub s i n) sub then Some i
    else go (i + 1)
  in
  go 0

let test_slice_bounds () =
  let module Slice = Omf_util.Slice in
  let b = Bytes.of_string "abcdefgh" in
  check str "window view" "cde" (Slice.to_string (Slice.of_bytes ~off:2 ~len:3 b));
  check str "sub view" "de"
    (Slice.to_string (Slice.sub (Slice.of_bytes ~off:2 ~len:3 b) 1 2));
  let expect_invalid name want f =
    match f () with
    | (_ : Slice.t) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument m ->
      if not (Omf_testkit.Strings.contains m want) then
        Alcotest.failf "%s: message %S does not name the window (%S)" name m
          want
  in
  expect_invalid "of_bytes past end" "[4,9) escapes buffer of 8" (fun () ->
      Slice.of_bytes ~off:4 ~len:5 b);
  expect_invalid "of_bytes negative off" "[-1," (fun () ->
      Slice.of_bytes ~off:(-1) b);
  expect_invalid "of_bytes negative len" "escapes buffer of 8" (fun () ->
      Slice.of_bytes ~len:(-2) b);
  expect_invalid "sub escapes view" "[2,4) escapes slice of 3" (fun () ->
      Slice.sub (Slice.of_bytes ~off:2 ~len:3 b) 2 2);
  expect_invalid "sub negative off" "[-1,0) escapes slice of 3" (fun () ->
      Slice.sub (Slice.of_bytes ~off:2 ~len:3 b) (-1) 1);
  expect_invalid "make out of bounds" "[0,9) escapes buffer of 8" (fun () ->
      Slice.make b 0 9)

(** A one-shot push-gateway: accept one connection, read the request,
    answer 200, and hand the request text back. *)
let mini_gateway () =
  let srv = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt srv Unix.SO_REUSEADDR true;
  Unix.bind srv (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen srv 1;
  let port =
    match Unix.getsockname srv with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let seen = ref "" in
  let th =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept srv in
        let buf = Bytes.create 65536 in
        let body_complete req =
          match find_sub req "\r\n\r\n" with
          | None -> false
          | Some i ->
            let cl =
              match find_sub req "Content-Length: " with
              | None -> 0
              | Some j ->
                let rest = String.sub req (j + 16) (String.length req - j - 16) in
                int_of_string (String.sub rest 0 (String.index rest '\r'))
            in
            String.length req >= i + 4 + cl
        in
        let rec read_req acc =
          if body_complete acc then acc
          else
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> acc
            | n -> read_req (acc ^ Bytes.sub_string buf 0 n)
        in
        seen := read_req "";
        let resp = "HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n" in
        ignore (Unix.write_substring fd resp 0 (String.length resp));
        Unix.close fd;
        Unix.close srv)
      ()
  in
  (port, seen, th)

let test_counters_push () =
  let module C = Omf_util.Counters in
  let port, seen, th = mini_gateway () in
  let url = Printf.sprintf "http://127.0.0.1:%d/metrics/job/test" port in
  (match C.push ~url [ ("loadgen", [ ("frames", 42) ]) ] with
  | Ok () -> ()
  | Error m -> Alcotest.failf "push failed: %s" m);
  Thread.join th;
  check bool "POSTs the given path" true
    (Omf_testkit.Strings.contains !seen "POST /metrics/job/test HTTP/1.1");
  check bool "body is prometheus text" true
    (Omf_testkit.Strings.contains !seen "omf_loadgen_frames 42");
  (* failures are returned, never raised *)
  (match C.push ~timeout_s:0.2 ~url:"http://127.0.0.1:1/x" [] with
  | Ok () -> Alcotest.fail "push to a closed port succeeded"
  | Error m -> check bool "error mentions push" true
      (Omf_testkit.Strings.contains m "push"));
  match C.push ~url:"ftp://nope" [] with
  | Ok () -> Alcotest.fail "bad scheme accepted"
  | Error m ->
    check bool "bad scheme named" true
      (Omf_testkit.Strings.contains m "unsupported url")

let test_strings_replace () =
  check str "basic" "a-Y-c" (Omf_testkit.Strings.replace ~sub:"b" ~by:"Y" "a-b-c");
  check str "multiple" "xx" (Omf_testkit.Strings.replace ~sub:"ab" ~by:"x" "abab");
  check str "absent" "hello" (Omf_testkit.Strings.replace ~sub:"zz" ~by:"x" "hello");
  check str "longer replacement" "aXXXb"
    (Omf_testkit.Strings.replace ~sub:"-" ~by:"XXX" "a-b")

let () =
  Alcotest.run "util"
    [ ( "hexdump",
        [ Alcotest.test_case "short form" `Quick test_hexdump_short
        ; Alcotest.test_case "canonical form" `Quick test_hexdump_canonical
        ; Alcotest.test_case "alignment" `Quick test_hexdump_alignment ] )
    ; ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic
        ; Alcotest.test_case "ranges" `Quick test_prng_ranges
        ; Alcotest.test_case "strings" `Quick test_prng_strings
        ; Alcotest.test_case "zero seed" `Quick test_prng_zero_seed_is_usable
        ; Alcotest.test_case "rough uniformity" `Quick
            test_prng_distribution_rough ] )
    ; ( "clock",
        [ Alcotest.test_case "measures" `Quick test_clock_measures_something ] )
    ; ( "sha256",
        [ Alcotest.test_case "digest vectors" `Quick test_sha256_vectors
        ; Alcotest.test_case "incremental feed" `Quick
            test_sha256_incremental_matches_oneshot
        ; Alcotest.test_case "hmac vectors" `Quick test_hmac_vectors
        ; Alcotest.test_case "constant-time compare" `Quick
            test_constant_time_equal ] )
    ; ( "counters",
        [ Alcotest.test_case "prometheus per-stream labels" `Quick
            test_prometheus_labels
        ; Alcotest.test_case "histogram observe/merge" `Quick
            test_histogram_observe
        ; Alcotest.test_case "histogram prometheus rendering" `Quick
            test_histogram_prometheus ] )
    ; ( "token-bucket",
        [ Alcotest.test_case "refill, debt, monotonic clock" `Quick
            test_token_bucket ] )
    ; ( "slice",
        [ Alcotest.test_case "bounds checks name the window" `Quick
            test_slice_bounds ] )
    ; ( "push",
        [ Alcotest.test_case "one-shot POST to a gateway" `Quick
            test_counters_push ] )
    ; ( "strings",
        [ Alcotest.test_case "replace" `Quick test_strings_replace ] ) ]
