(** Fault-injection suite: what the relay stack does when the network
    misbehaves. Exercises {!Omf_relay.Relay.Session} reconnect/replay
    across a relayd kill+restart and across severed links (via the
    {!Omf_testkit.Chaos} proxy), HMAC frame authentication under forged
    and corrupted traffic, the publisher's bounded in-flight window,
    and {!Discovery.discover}'s deadline-bounded fallback when a
    metadata server accepts connections but never answers.

    Run via [dune build @faults]; the smoke alias runs it with
    [OMF_FAULTS_QUICK=1] (reduced event counts). *)

open Omf_machine
open Omf_transport
module Relay = Omf_relay.Relay
module Session = Relay.Session
module Chaos = Omf_testkit.Chaos
module Http = Omf_httpd.Http
module Catalog = Omf_xml2wire.Catalog
module Discovery = Omf_xml2wire.Discovery
module Fx = Omf_fixtures.Paper_structs
module Value = Omf_pbio.Value
module Mirror = Omf_mirror.Mirror

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let quick = Sys.getenv_opt "OMF_FAULTS_QUICK" <> None
let scale n = if quick then max 4 (n / 4) else n

(* ------------------------------------------------------------------ *)
(* Helpers                                                              *)
(* ------------------------------------------------------------------ *)

let event seq =
  match Fx.value_a with
  | Value.Record fields ->
    Value.Record
      (List.map
         (fun (k, v) ->
           if String.equal k "fltNum" then (k, Value.Int (Int64.of_int seq))
           else (k, v))
         fields)
  | _ -> assert false

let seq_of v =
  match Value.field_exn v "fltNum" with
  | Value.Int i -> Int64.to_int i
  | _ -> -1

let keys = [ ("capture-1", "a long shared secret for the capture point") ]

(* a session config tuned for tests: fast, generous budget *)
let cfg ?auth ?(max_attempts = 80) ~port () =
  Session.config ~port ?auth ~max_attempts ~base_delay_s:0.01
    ~max_delay_s:0.15 ~connect_timeout_s:2.0 ()

let poll ?(deadline_s = 15.0) ~what (cond : unit -> bool) =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timeout waiting for %s" what
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let relay_stat ~port key =
  match Relay.Client.connect ~port () with
  | c ->
    let v = Option.value ~default:0 (List.assoc_opt key (Relay.Client.stats c)) in
    Relay.Client.close c;
    v
  | exception Relay.Client.Error _ -> 0

(* a TCP port that nothing listens on (bound ephemeral, then closed) *)
let dead_port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close sock;
  port

(* collect decoded events off a subscriber session in a thread *)
type collector = {
  seqs : int list ref;  (** newest first; read under [lock] *)
  lock : Mutex.t;
  thread : Thread.t;
}

let collect (sub : Session.subscriber) : collector =
  let seqs = ref [] and lock = Mutex.create () in
  let thread =
    Thread.create
      (fun () ->
        let rec go () =
          match Session.recv_subscriber sub with
          | Some (_, v) ->
            Mutex.lock lock;
            seqs := seq_of v :: !seqs;
            Mutex.unlock lock;
            go ()
          | None -> ()
          | exception Session.Gave_up _ -> ()
        in
        go ())
      ()
  in
  { seqs; lock; thread }

let collected (c : collector) : int list =
  Mutex.lock c.lock;
  let l = List.rev !(c.seqs) in
  Mutex.unlock c.lock;
  l

let count (c : collector) : int =
  Mutex.lock c.lock;
  let n = List.length !(c.seqs) in
  Mutex.unlock c.lock;
  n

let strictly_increasing l =
  let rec go = function
    | a :: (b :: _ as rest) -> a < b && go rest
    | _ -> true
  in
  go l

let contains_range l lo hi =
  let rec go n = n > hi || (List.mem n l && go (n + 1)) in
  go lo

(* ------------------------------------------------------------------ *)
(* Clear client errors (no raw Unix_error, no fd leak)                  *)
(* ------------------------------------------------------------------ *)

let test_connect_refused_is_client_error () =
  let port = dead_port () in
  match Relay.Client.connect ~port ~connect_timeout_s:2.0 () with
  | _ -> Alcotest.fail "connect to dead port succeeded"
  | exception Relay.Client.Error m ->
    check bool "message names the address" true
      (Omf_testkit.Strings.contains m (string_of_int port))
  | exception e ->
    Alcotest.failf "expected Client.Error, got %s" (Printexc.to_string e)

let test_handshake_failure_closes_socket () =
  (* an 'e' HELLO reply (auth refused) must not leak the socket: open
     many failing connections; if fds leaked, this would exhaust the
     default soft limit quickly under the faults alias's repetitions *)
  let h = Relay.start () in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  for _ = 1 to 100 do
    match Relay.Client.connect ~port ~auth:("nope", "k") () with
    | _ -> Alcotest.fail "auth against keyless relay succeeded"
    | exception Relay.Client.Error _ -> ()
  done;
  check bool "relay still healthy" true (relay_stat ~port "connections" > 0)

(* ------------------------------------------------------------------ *)
(* HMAC-authenticated framing                                           *)
(* ------------------------------------------------------------------ *)

let test_auth_pubsub_end_to_end () =
  let h = Relay.start ~auth_keys:keys () in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let auth = List.hd keys in
  let pub =
    Session.publisher (cfg ~auth ~port ()) ~stream:"flights"
      ~schema:Fx.schema_a Abi.x86_64
  in
  let fmt = Option.get (Session.publisher_format pub "ASDOffEvent") in
  let consumer =
    Relay.attach_consumer ~port ~auth ~stream:"flights" Abi.sparc_32
  in
  let n = scale 16 in
  for seq = 0 to n - 1 do
    Session.publish_value pub fmt (event seq)
  done;
  let got = ref [] in
  for _ = 1 to n do
    match Relay.recv consumer with
    | Some (_, v) -> got := seq_of v :: !got
    | None -> Alcotest.fail "stream closed early"
  done;
  check bool "all events decode through sealed frames" true
    (List.rev !got = List.init n Fun.id);
  check bool "two authenticated sessions" true
    (relay_stat ~port "auth_sessions" >= 2);
  check int "nothing rejected" 0 (relay_stat ~port "frames_rejected");
  Relay.close_consumer consumer;
  Session.close_publisher pub

let test_forged_frames_counted_then_closed () =
  let h = Relay.start ~auth_keys:keys ~mac_reject_limit:3 () in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  (* speak the handshake honestly, then send frames sealed with the
     wrong key: every one must be rejected and counted, and the third
     must close the connection *)
  let link = Tcp.connect ~port ~io_timeout_s:5.0 () in
  let hello = "hauth=hmac\nkey-id=capture-1" in
  Link.send link (Bytes.of_string hello);
  (match Link.recv link with
  | Some r ->
    check bool "mac granted" true
      (Omf_testkit.Strings.contains (Bytes.to_string r) "mac")
  | None -> Alcotest.fail "no HELLO reply");
  let forged = Macframe.state ~key:"not the real secret" in
  for _ = 1 to 3 do
    Link.send link (Macframe.seal_next forged (Bytes.of_string "tflood"))
  done;
  (* the relay drops us after the third reject: EOF (its error replies
     are sealed with the true key and fail *our* verify — also fine) *)
  (try
     let rec drain () =
       match Link.recv link with Some _ -> drain () | None -> ()
     in
     drain ()
   with Macframe.Auth_error _ | Link.Closed | Link.Timeout -> ());
  Link.close link;
  check int "every forged frame counted" 3
    (relay_stat ~port "frames_rejected");
  check bool "honest clients unaffected" true
    (relay_stat ~port "auth_sessions" >= 1)

let test_corrupted_handshake_counted_via_chaos () =
  (* chaos flips a bit in the first length header: the relay sees a
     nonsense frame length, counts the malformed-frame disconnect, and
     the client gets a clear error, not a hang *)
  let h = Relay.start () in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let chaos = Chaos.start ~upstream_port:port () in
  Fun.protect ~finally:(fun () -> Chaos.stop chaos) @@ fun () ->
  Chaos.set_fault chaos ~dir:Chaos.Up (Chaos.Corrupt_at 0);
  (match
     Relay.Client.connect ~port:(Chaos.port chaos) ~connect_timeout_s:2.0
       ~io_timeout_s:2.0 ()
   with
  | c ->
    (* the relay may instead read a huge length and wait for it: our
       io deadline turns that into an error too *)
    Relay.Client.close c
  | exception Relay.Client.Error _ -> ());
  poll ~what:"malformed frame counted" (fun () ->
      relay_stat ~port "frames_rejected" >= 1)

(* ------------------------------------------------------------------ *)
(* Session survives a relayd kill + restart                             *)
(* ------------------------------------------------------------------ *)

let test_session_survives_relayd_restart () =
  let h1 = Relay.start ~auth_keys:keys () in
  let port = Relay.port (Relay.relay h1) in
  let auth = List.hd keys in
  let pub =
    Session.publisher (cfg ~auth ~port ()) ~stream:"flights"
      ~schema:Fx.schema_a Abi.x86_64
  in
  let fmt = Option.get (Session.publisher_format pub "ASDOffEvent") in
  let sub = Session.subscribe (cfg ~auth ~port ()) ~stream:"flights" Abi.arm_32 in
  let col = collect sub in
  let first = scale 20 in
  for seq = 0 to first - 1 do
    Session.publish_value pub fmt (event seq)
  done;
  poll ~what:"first half delivered" (fun () -> count col >= first);
  (* kill and restart relayd on the same port: all streams, descriptor
     caches and connections are gone *)
  Relay.stop h1;
  let h2 = Relay.start ~port ~auth_keys:keys () in
  Fun.protect
    ~finally:(fun () -> Relay.stop h2)
    (fun () ->
      (* probe publishes force the publisher to notice the dead link,
         reconnect and re-advertise; the subscriber's resubscribe can
         only succeed after that, so these two may race it and be
         missed — everything after the resubscribe must not be *)
      Session.publish_value pub fmt (event first);
      Thread.delay 0.05;
      Session.publish_value pub fmt (event (first + 1));
      poll ~what:"subscriber resubscribed" (fun () ->
          Session.subscriber_reconnects sub >= 1);
      let second_lo = first + 2 in
      let second_hi = first + scale 20 + 1 in
      for seq = second_lo to second_hi do
        Session.publish_value pub fmt (event seq)
      done;
      poll ~what:"second half delivered" (fun () ->
          List.mem second_hi (collected col));
      Session.close_subscriber sub;
      Thread.join col.thread;
      let seqs = collected col in
      check bool "no duplicates, in order" true (strictly_increasing seqs);
      check bool "nothing lost before the outage" true
        (contains_range seqs 0 (first - 1));
      check bool "nothing lost after resubscribe" true
        (contains_range seqs second_lo second_hi);
      check bool "publisher reconnected" true
        (Session.publisher_reconnects pub >= 1);
      (* descriptor replay after restart was deduped: the format was
         learned exactly once, not re-registered per reconnect *)
      check int "format learned once across restart" 1
        (Session.subscriber_stats sub).formats_learned;
      check bool "relay counted the reconnects" true
        (relay_stat ~port "reconnects_accepted" >= 2);
      Session.close_publisher pub)

(* ------------------------------------------------------------------ *)
(* Session survives severed links (chaos proxy outage)                  *)
(* ------------------------------------------------------------------ *)

let test_session_survives_severed_link () =
  let h = Relay.start () in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let chaos = Chaos.start ~upstream_port:port () in
  Fun.protect ~finally:(fun () -> Chaos.stop chaos) @@ fun () ->
  (* publisher talks to the relay directly; the subscriber's bytes all
     flow through the chaos proxy *)
  let pub =
    Session.publisher (cfg ~port ()) ~stream:"flights" ~schema:Fx.schema_a
      Abi.x86_64
  in
  let fmt = Option.get (Session.publisher_format pub "ASDOffEvent") in
  let sub =
    Session.subscribe (cfg ~port:(Chaos.port chaos) ()) ~stream:"flights"
      Abi.sparc_32
  in
  let col = collect sub in
  let half = scale 8 in
  for seq = 0 to half - 1 do
    Session.publish_value pub fmt (event seq)
  done;
  poll ~what:"pre-outage events" (fun () -> count col >= half);
  Chaos.sever_all chaos;
  poll ~what:"resubscribe through chaos" (fun () ->
      Session.subscriber_reconnects sub >= 1);
  for seq = half to (2 * half) - 1 do
    Session.publish_value pub fmt (event seq)
  done;
  poll ~what:"post-outage events" (fun () -> count col >= 2 * half);
  Session.close_subscriber sub;
  Thread.join col.thread;
  check bool "zero loss, no duplicates, in order" true
    (collected col = List.init (2 * half) Fun.id);
  check bool "the proxy saw a second connection" true
    (Chaos.accepted chaos >= 2);
  check int "one format registration" 1
    (Session.subscriber_stats sub).formats_learned;
  Session.close_publisher pub

(* ------------------------------------------------------------------ *)
(* Durable store: restart and SIGKILL recovery                          *)
(* ------------------------------------------------------------------ *)

let with_store_root f =
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "omf-faults-store-%d-%d" (Unix.getpid ())
         (Random.int 1_000_000))
  in
  let rec rm path =
    match (Unix.lstat path).Unix.st_kind with
    | Unix.S_DIR ->
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Sys.remove path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  Fun.protect ~finally:(fun () -> try rm root with _ -> ()) (fun () -> f root)

let store_cfg root =
  { (Relay.Store.default_config ~root) with
    fsync = Relay.Store.Interval 0.02 }

(** A store-backed relay restarted gracefully: the acked publisher's
    resume handshake resends only what the store is missing (nothing,
    here) and the subscriber resumes from its next expected offset —
    unlike the memory-only restart test above, {e nothing} may be
    missed, not even during the reconnect race. *)
let test_store_relay_restart_zero_loss () =
  with_store_root @@ fun root ->
  let store = store_cfg root in
  let h1 = Relay.start ~store () in
  let port = Relay.port (Relay.relay h1) in
  let pub =
    Session.publisher ~acked:true (cfg ~port ()) ~stream:"flights"
      ~schema:Fx.schema_a Abi.x86_64
  in
  check bool "session negotiated acks" true (Session.publisher_acked pub);
  let fmt = Option.get (Session.publisher_format pub "ASDOffEvent") in
  let sub =
    Session.subscribe ~from:0 (cfg ~port ()) ~stream:"flights" Abi.arm_32
  in
  let col = collect sub in
  let first = scale 20 in
  for seq = 0 to first - 1 do
    Session.publish_value pub fmt (event seq)
  done;
  Session.flush_acked pub;
  check int "everything acked durable" first (Session.publisher_durable pub);
  poll ~what:"first half delivered" (fun () -> count col >= first);
  Relay.stop h1;
  let h2 = Relay.start ~port ~store () in
  Fun.protect
    ~finally:(fun () -> Relay.stop h2)
    (fun () ->
      let last = (2 * first) - 1 in
      for seq = first to last do
        Session.publish_value pub fmt (event seq)
      done;
      Session.flush_acked pub;
      poll ~what:"second half delivered" (fun () ->
          List.mem last (collected col));
      Session.close_subscriber sub;
      Thread.join col.thread;
      let seqs = collected col in
      check bool "in order, no duplicates" true (strictly_increasing seqs);
      check bool "zero loss across the restart" true
        (seqs = List.init (last + 1) Fun.id);
      check int "format learned once across restart" 1
        (Session.subscriber_stats sub).formats_learned;
      check bool "publisher reconnected" true
        (Session.publisher_reconnects pub >= 1);
      Session.close_publisher pub)

(** The acceptance drill: a separate relayd process killed with SIGKILL
    mid-stream — no drain, no close, stores recovered from whatever hit
    the file system — then restarted on the same port and store. The
    acked publisher and offset-tracking subscriber between them must
    account for every event exactly once. Requires the relayd binary
    via [OMF_RELAYD] (set by the dune alias); skipped when absent. *)
let test_store_survives_sigkill () =
  match Sys.getenv_opt "OMF_RELAYD" with
  | None -> Alcotest.skip ()
  | Some exe ->
    with_store_root @@ fun root ->
    let port = dead_port () in
    let spawn () =
      let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
      let pid =
        Unix.create_process exe
          [| exe; "--port"; string_of_int port; "--store"; root
           ; "--store-fsync"; "interval=0.02" |]
          null null Unix.stderr
      in
      Unix.close null;
      poll ~what:"relayd listening" (fun () ->
          match Relay.Client.connect ~port ~connect_timeout_s:0.2 () with
          | c ->
            Relay.Client.close c;
            true
          | exception Relay.Client.Error _ -> false);
      pid
    in
    let pid = ref (spawn ()) in
    let kill_hard () =
      Unix.kill !pid Sys.sigkill;
      ignore (Unix.waitpid [] !pid)
    in
    Fun.protect ~finally:(fun () -> try kill_hard () with Unix.Unix_error _ -> ())
    @@ fun () ->
    let pub =
      Session.publisher ~acked:true (cfg ~port ()) ~stream:"flights"
        ~schema:Fx.schema_a Abi.x86_64
    in
    let fmt = Option.get (Session.publisher_format pub "ASDOffEvent") in
    let sub =
      Session.subscribe ~from:0 (cfg ~port ()) ~stream:"flights" Abi.sparc_32
    in
    let col = collect sub in
    let first = scale 24 in
    for seq = 0 to first - 1 do
      Session.publish_value pub fmt (event seq)
    done;
    poll ~what:"pre-kill events delivered" (fun () -> count col >= first);
    (* SIGKILL: no graceful drain, no Store.close — recovery must cope
       with whatever the page cache flushed, including a torn tail *)
    kill_hard ();
    pid := spawn ();
    let last = (2 * first) - 1 in
    for seq = first to last do
      Session.publish_value pub fmt (event seq)
    done;
    Session.flush_acked pub;
    poll ~what:"post-restart events delivered" (fun () ->
        List.mem last (collected col));
    Session.close_subscriber sub;
    Thread.join col.thread;
    let seqs = collected col in
    check bool "in order, no duplicates" true (strictly_increasing seqs);
    check bool "zero loss across SIGKILL + restart" true
      (seqs = List.init (last + 1) Fun.id);
    check int "format learned once" 1
      (Session.subscriber_stats sub).formats_learned;
    Session.close_publisher pub

(** The mirror acceptance drill (doc/MIRROR.md): a separate source
    relayd killed with SIGKILL mid-publish while an A->B replication
    link is live and [promote_on_loss] armed. The replica must promote
    itself; every event the source durably accepted must be readable
    from the replica exactly once — the pre-kill consumer's prefix and
    the post-failover resume must interleave with zero loss and zero
    duplication — and the promoted replica must accept new publishers.
    With [~compress:true] the replication link carries LZ blocks
    ([relayd --mirror-compress], PROTOCOLS.md §18) — the kill lands
    mid-compressed-stream and the loss/dup accounting must hold
    unchanged. Requires the relayd binary via [OMF_RELAYD]; skipped
    when absent. *)
let mirror_failover_sigkill ~compress () =
  match Sys.getenv_opt "OMF_RELAYD" with
  | None -> Alcotest.skip ()
  | Some exe ->
    with_store_root @@ fun root_a ->
    with_store_root @@ fun root_b ->
    let port_a = dead_port () in
    let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
    let pid =
      Unix.create_process exe
        [| exe; "--port"; string_of_int port_a; "--store"; root_a
         ; "--store-fsync"; "interval=0.02" |]
        null null Unix.stderr
    in
    Unix.close null;
    let killed = ref false in
    let kill_hard () =
      killed := true;
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid)
    in
    Fun.protect ~finally:(fun () -> if not !killed then kill_hard ())
    @@ fun () ->
    poll ~what:"source relayd listening" (fun () ->
        match Relay.Client.connect ~port:port_a ~connect_timeout_s:0.2 () with
        | c ->
          Relay.Client.close c;
          true
        | exception Relay.Client.Error _ -> false);
    let hb = Relay.start ~store:(store_cfg root_b) () in
    let port_b = Relay.port (Relay.relay hb) in
    Fun.protect ~finally:(fun () -> Relay.stop hb) @@ fun () ->
    let m =
      Mirror.start
        (Mirror.config ~rescan_s:0.05 ~io_timeout_s:0.25 ~max_attempts:3
           ~base_delay_s:0.02 ~max_delay_s:0.1 ~promote_on_loss:true
           ~compress ~source_host:"127.0.0.1" ~source_port:port_a
           ~local_port:port_b
           ~local_relay_id:(Relay.relay_id (Relay.relay hb)) ())
    in
    Fun.protect ~finally:(fun () -> Mirror.stop m) @@ fun () ->
    let mstat k = Option.value ~default:0 (List.assoc_opt k (Mirror.stats m)) in
    let pub =
      Session.publisher ~acked:true
        (cfg ~max_attempts:3 ~port:port_a ())
        ~stream:"flights" ~schema:Fx.schema_a Abi.x86_64
    in
    let fmt = Option.get (Session.publisher_format pub "ASDOffEvent") in
    let sub =
      Session.subscribe ~from:0
        (cfg ~max_attempts:3 ~port:port_a ())
        ~stream:"flights" Abi.arm_32
    in
    let col = collect sub in
    let first = scale 16 in
    for seq = 0 to first - 1 do
      Session.publish_value pub fmt (event seq)
    done;
    Session.flush_acked pub;
    poll ~what:"pre-kill events delivered" (fun () -> count col >= first);
    poll ~what:"replica caught up before the kill" (fun () ->
        relay_stat ~port:port_b "store.flights.tail" >= first);
    check bool "link established" true (mstat "links_established" >= 1);
    if compress then
      (* the kill must land on a genuinely compressed link, not one
         that negotiated down *)
      check bool "source granted comp=lz" true
        (relay_stat ~port:port_a "comp_sessions" >= 1);
    (* stream a second batch slowly so the kill lands mid-publish *)
    let sent = ref first in
    let pusher =
      Thread.create
        (fun () ->
          try
            for seq = first to first + scale 16 - 1 do
              Session.publish_value pub fmt (event seq);
              sent := seq + 1;
              Thread.delay 0.005
            done
          with Session.Overflow _ | Session.Gave_up _ | Relay.Client.Error _ ->
            ())
        ()
    in
    poll ~what:"second batch replicating" (fun () ->
        relay_stat ~port:port_b "store.flights.tail" >= first + 4);
    kill_hard ();
    Thread.join pusher;
    (try Session.close_publisher pub with _ -> ());
    (* the reconnect budget (3 x <=0.1s backoff) runs out and the
       replica promotes itself *)
    poll ~deadline_s:20.0 ~what:"replica promoted on loss" (fun () ->
        mstat "promotes" >= 1);
    Session.close_subscriber sub;
    Thread.join col.thread;
    let seqs_a = collected col in
    let next = List.length seqs_a in
    check bool "pre-kill consumer: in order, no gaps" true
      (seqs_a = List.init next Fun.id);
    let tail_b = relay_stat ~port:port_b "store.flights.tail" in
    check bool "no amplification: replica holds at most what was sent" true
      (tail_b <= !sent);
    (* transparent failover: resume against the mirror at the next
       expected offset and drain whatever it durably replicated; the
       two reads must cover 0..max(next,tail_b)-1 exactly once *)
    let seqs_b =
      if tail_b <= next then []
      else begin
        let sub2 =
          Session.subscribe ~from:next
            (cfg ~port:port_b ())
            ~stream:"flights" Abi.arm_32
        in
        let col2 = collect sub2 in
        poll ~what:"failover resume drained" (fun () ->
            count col2 >= tail_b - next);
        Session.close_subscriber sub2;
        Thread.join col2.thread;
        collected col2
      end
    in
    let final = max next tail_b in
    check bool "zero loss, zero dup across failover" true
      (seqs_a @ seqs_b = List.init final Fun.id);
    (* the promoted replica accepts writes again *)
    let pub2 =
      Session.publisher ~acked:true (cfg ~port:port_b ()) ~stream:"flights"
        ~schema:Fx.schema_a Abi.x86_64
    in
    let fmt2 = Option.get (Session.publisher_format pub2 "ASDOffEvent") in
    let extra = 4 in
    for seq = tail_b to tail_b + extra - 1 do
      Session.publish_value pub2 fmt2 (event seq)
    done;
    Session.flush_acked pub2;
    poll ~what:"post-failover appends" (fun () ->
        relay_stat ~port:port_b "store.flights.tail" >= tail_b + extra);
    Session.close_publisher pub2

(** Resume renumbering when the relay's durable watermark has moved
    {e past} the publisher's entire unacked window: events are
    published without draining acks (acks are only consumed inside
    publish/flush calls, so the whole burst stays buffered), the relay
    restarts over its store, and the resume handshake must trim every
    already-durable frame and renumber nothing — republishing the
    window verbatim would duplicate the whole prefix. *)
let test_acked_resume_watermark_ahead () =
  with_store_root @@ fun root ->
  let store =
    { (Relay.Store.default_config ~root) with
      fsync = Relay.Store.Every_n 1 }
  in
  let h1 = Relay.start ~store () in
  let port = Relay.port (Relay.relay h1) in
  let pub =
    Session.publisher ~window:64 ~acked:true (cfg ~port ()) ~stream:"flights"
      ~schema:Fx.schema_a Abi.x86_64
  in
  let fmt = Option.get (Session.publisher_format pub "ASDOffEvent") in
  let first = scale 12 in
  for seq = 0 to first - 1 do
    Session.publish_value pub fmt (event seq)
  done;
  (* no flush: the acks sit unread in the socket, so the publisher
     still considers the entire burst in flight... *)
  check int "whole burst still buffered" first (Session.publisher_buffered pub);
  (* ...while the relay has already made all of it durable *)
  poll ~what:"burst durable at the relay" (fun () ->
      relay_stat ~port "store.flights.tail" >= first);
  Relay.stop h1;
  let h2 = Relay.start ~port ~store () in
  Fun.protect ~finally:(fun () -> Relay.stop h2) @@ fun () ->
  let last = (2 * first) - 1 in
  for seq = first to last do
    Session.publish_value pub fmt (event seq)
  done;
  Session.flush_acked pub;
  check int "durable watermark covers both batches" (last + 1)
    (Session.publisher_durable pub);
  check bool "publisher reconnected" true
    (Session.publisher_reconnects pub >= 1);
  let sub = Session.subscribe ~from:0 (cfg ~port ()) ~stream:"flights" Abi.arm_32 in
  let col = collect sub in
  poll ~what:"full stream delivered" (fun () -> List.mem last (collected col));
  Session.close_subscriber sub;
  Thread.join col.thread;
  check bool "no duplicated prefix, no renumbered gap" true
    (collected col = List.init (last + 1) Fun.id);
  Session.close_publisher pub

(* ------------------------------------------------------------------ *)
(* Publisher window overflow is explicit                                *)
(* ------------------------------------------------------------------ *)

let test_publisher_overflow_is_explicit () =
  let h = Relay.start () in
  let port = Relay.port (Relay.relay h) in
  (* max_attempts = 0: never reconnect, so frames accumulate *)
  let pub =
    Session.publisher ~window:3
      (cfg ~max_attempts:0 ~port ())
      ~stream:"flights" ~schema:Fx.schema_a Abi.x86_64
  in
  let fmt = Option.get (Session.publisher_format pub "ASDOffEvent") in
  Session.publish_value pub fmt (event 0);
  Relay.stop h;
  (* early sends may still land in dead socket buffers; once the broken
     link is detected, frames buffer up to the window, then Overflow *)
  let overflowed = ref false in
  (try
     for seq = 1 to 50 do
       Session.publish_value pub fmt (event seq)
     done
   with Session.Overflow _ -> overflowed := true);
  check bool "overflow surfaced" true !overflowed;
  check int "window intact (nothing silently dropped)" 3
    (Session.publisher_buffered pub);
  Session.close_publisher pub

(* ------------------------------------------------------------------ *)
(* Sharded cluster: pinned streams, handoffs, zero loss                 *)
(* ------------------------------------------------------------------ *)

(* Three streams on a two-shard cluster: the round-robin acceptor is
   guaranteed to land some connections on the shard that does not own
   their stream, so this exercises the detach/adopt handoff path —
   under HMAC framing, whose per-direction nonces must survive the
   migration. *)
let test_cluster_pubsub_across_shards () =
  let cl = Relay.Cluster.start ~shards:2 ~auth_keys:keys () in
  Fun.protect ~finally:(fun () -> Relay.Cluster.stop cl) @@ fun () ->
  let port = Relay.Cluster.port cl in
  let auth = List.hd keys in
  let streams = [ "flights-a"; "flights-b"; "flights-c" ] in
  let pubs =
    List.map
      (fun stream ->
        let p =
          Session.publisher (cfg ~auth ~port ()) ~stream ~schema:Fx.schema_a
            Abi.x86_64
        in
        (p, Option.get (Session.publisher_format p "ASDOffEvent")))
      streams
  in
  let subs =
    List.map
      (fun stream ->
        let s = Session.subscribe (cfg ~auth ~port ()) ~stream Abi.arm_32 in
        (s, collect s))
      streams
  in
  let n = scale 40 in
  for seq = 0 to n - 1 do
    List.iter (fun (p, fmt) -> Session.publish_value p fmt (event seq)) pubs
  done;
  List.iteri
    (fun i (_, col) ->
      poll
        ~what:(Printf.sprintf "stream %d delivered" i)
        (fun () -> count col >= n))
    subs;
  List.iter
    (fun (s, col) ->
      Session.close_subscriber s;
      Thread.join col.thread)
    subs;
  List.iter (fun (p, _) -> Session.close_publisher p) pubs;
  List.iter
    (fun (_, col) ->
      check bool "zero loss, in order, across shards" true
        (collected col = List.init n Fun.id))
    subs;
  let stats = Relay.Cluster.stats cl in
  let stat k = Option.value ~default:0 (List.assoc_opt k stats) in
  check bool "wrong-shard connections migrated" true
    (stat "shard_handoffs" >= 1);
  check bool "merged stats count every connection" true
    (stat "connections" >= 6);
  check int "every event relayed exactly once" (3 * n)
    (stat "events_relayed")

(* The chaos-proxy outage scenario against a 2-shard cluster: the
   resubscribing connection lands on whichever shard the round-robin
   points at and must migrate to the stream's pinned shard before the
   descriptor replay — a relay restartless version of severed-link
   recovery. *)
let test_cluster_survives_severed_link () =
  let cl = Relay.Cluster.start ~shards:2 () in
  Fun.protect ~finally:(fun () -> Relay.Cluster.stop cl) @@ fun () ->
  let port = Relay.Cluster.port cl in
  let chaos = Chaos.start ~upstream_port:port () in
  Fun.protect ~finally:(fun () -> Chaos.stop chaos) @@ fun () ->
  let pub =
    Session.publisher (cfg ~port ()) ~stream:"flights" ~schema:Fx.schema_a
      Abi.x86_64
  in
  let fmt = Option.get (Session.publisher_format pub "ASDOffEvent") in
  let sub =
    Session.subscribe (cfg ~port:(Chaos.port chaos) ()) ~stream:"flights"
      Abi.sparc_32
  in
  let col = collect sub in
  let half = scale 8 in
  for seq = 0 to half - 1 do
    Session.publish_value pub fmt (event seq)
  done;
  poll ~what:"pre-outage events (cluster)" (fun () -> count col >= half);
  Chaos.sever_all chaos;
  poll ~what:"resubscribe through chaos (cluster)" (fun () ->
      Session.subscriber_reconnects sub >= 1);
  for seq = half to (2 * half) - 1 do
    Session.publish_value pub fmt (event seq)
  done;
  poll ~what:"post-outage events (cluster)" (fun () ->
      count col >= 2 * half);
  Session.close_subscriber sub;
  Thread.join col.thread;
  check bool "zero loss through a 2-shard relay" true
    (collected col = List.init (2 * half) Fun.id);
  check int "one format registration across the outage" 1
    (Session.subscriber_stats sub).formats_learned;
  Session.close_publisher pub

(* ------------------------------------------------------------------ *)
(* Overload: governor, retryable busy, graceful degradation             *)
(* ------------------------------------------------------------------ *)

(** The overload acceptance drill (doc/OVERLOAD.md), SIGKILL-free: a
    relay with a tiny governor budget takes an open-loop storm aimed at
    a subscriber that never reads. The shard must go
    [Healthy -> Overloaded] and shed retryably — PUBLISH answered
    [busy] and counted — while control traffic (every STATS poll below)
    keeps flowing; once the hoarder disconnects it must return to
    [Healthy], the busy-shed publisher must be admitted on the {e same}
    connection (no reconnect churn), and an acked VIP session that
    straddled the whole episode must account for every accepted frame
    exactly once. *)
let test_overload_governor_drill () =
  with_store_root @@ fun root ->
  let h =
    Relay.start ~store:(store_cfg root) ~sndbuf:4096 ~max_queue:100_000
      ~governor:(Relay.Governor.config ~budget:32_768 ~busy_retry_ms:30 ())
      ()
  in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let port = Relay.port (Relay.relay h) in
  (* VIP: an acked publisher session established while healthy *)
  let vip =
    Session.publisher ~acked:true (cfg ~port ()) ~stream:"vip"
      ~schema:Fx.schema_a Abi.x86_64
  in
  let fmt = Option.get (Session.publisher_format vip "ASDOffEvent") in
  let batch = scale 8 in
  for seq = 0 to batch - 1 do
    Session.publish_value vip fmt (event seq)
  done;
  Session.flush_acked vip;
  (* the storm: a raw publisher pumping 1KB frames at a subscriber
     that never reads, so the shard's outbound backlog only grows *)
  let adv = Relay.Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Relay.Client.close adv) @@ fun () ->
  Relay.Client.advertise adv ~stream:"storm" ~schema:Fx.schema_a;
  let ssub = Relay.Client.connect ~port () in
  let ssub_closed = ref false in
  Fun.protect
    ~finally:(fun () -> if not !ssub_closed then Relay.Client.close ssub)
  @@ fun () ->
  let _schema, _link = Relay.Client.subscribe ssub ~stream:"storm" in
  let spub = Relay.Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Relay.Client.close spub) @@ fun () ->
  let slink = Relay.Client.publish spub ~stream:"storm" in
  let frame = Bytes.make 1024 'x' in
  Bytes.set frame 0 'M';
  let stop = ref false in
  ignore
    (Thread.create
       (fun () ->
         try
           while not !stop do
             Link.send slink frame
           done
         with _ -> ())
       ());
  (* the relay must stay responsive while the storm drives it into
     overload: every poll below is a served STATS round-trip *)
  poll ~what:"governor overloaded" (fun () ->
      relay_stat ~port "governor_health" = 2);
  (* a publish session arriving mid-overload is shed retryably and
     waits out the backlog on the SAME connection *)
  let late = ref None in
  let late_thread =
    Thread.create
      (fun () ->
        match
          Session.publisher
            (cfg ~max_attempts:500 ~port ())
            ~stream:"vip2" ~schema:Fx.schema_a Abi.x86_64
        with
        | p -> late := Some p
        | exception _ -> ())
      ()
  in
  poll ~what:"late publisher shed with busy" (fun () ->
      relay_stat ~port "publish_busy" >= 1);
  (* vip keeps publishing mid-overload: its data frames are paced by
     TCP (publisher reads paused), never refused, never disconnected *)
  for seq = batch to (2 * batch) - 1 do
    Session.publish_value vip fmt (event seq)
  done;
  (* relieve the pressure: the hoarding subscriber goes away, its
     queued bytes are credited back, and the shard recovers *)
  stop := true;
  ssub_closed := true;
  Relay.Client.close ssub;
  poll ~what:"governor recovered" (fun () ->
      relay_stat ~port "governor_health" = 0);
  Thread.join late_thread;
  (match !late with
  | None -> Alcotest.fail "late publisher never admitted after recovery"
  | Some p ->
    check bool "late publisher waited out busy" true
      (Session.publisher_busy_waits p >= 1);
    check int "late publisher never reconnected" 0
      (Session.publisher_reconnects p);
    Session.close_publisher p);
  (* vip resumes on the same connection and acks everything *)
  for seq = 2 * batch to (3 * batch) - 1 do
    Session.publish_value vip fmt (event seq)
  done;
  Session.flush_acked vip;
  check int "every accepted frame acked durable" (3 * batch)
    (Session.publisher_durable vip);
  check int "vip never reconnected" 0 (Session.publisher_reconnects vip);
  (* zero loss among accepted frames: replay the stream from offset 0 *)
  let sub = Session.subscribe ~from:0 (cfg ~port ()) ~stream:"vip" Abi.arm_32 in
  let col = collect sub in
  poll ~what:"vip stream replayed" (fun () -> count col >= 3 * batch);
  Session.close_subscriber sub;
  Thread.join col.thread;
  check bool "zero loss, in order, across the overload" true
    (collected col = List.init (3 * batch) Fun.id);
  check bool "overload transition counted" true
    (relay_stat ~port "governor_overloaded" >= 1);
  check bool "recovery transition counted" true
    (relay_stat ~port "governor_recovered" >= 1);
  Session.close_publisher vip

let test_ingress_rate_limit_paces_publisher () =
  (* a publisher bursting past the per-connection token bucket has its
     reads paused — pacing through TCP pushback, never loss *)
  let h = Relay.start ~ingress:(100.0, 8.0) () in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let port = Relay.port (Relay.relay h) in
  let pub =
    Session.publisher (cfg ~port ()) ~stream:"paced" ~schema:Fx.schema_a
      Abi.x86_64
  in
  let fmt = Option.get (Session.publisher_format pub "ASDOffEvent") in
  let sub = Session.subscribe (cfg ~port ()) ~stream:"paced" Abi.arm_32 in
  let col = collect sub in
  let n = scale 60 in
  for seq = 0 to n - 1 do
    Session.publish_value pub fmt (event seq)
  done;
  poll ~what:"paced events delivered" (fun () -> count col >= n);
  Session.close_subscriber sub;
  Thread.join col.thread;
  check bool "throttle engaged" true (relay_stat ~port "ingress_throttled" >= 1);
  check bool "pacing drops nothing" true (collected col = List.init n Fun.id);
  Session.close_publisher pub

(* ------------------------------------------------------------------ *)
(* Discovery under a hung (not dead) metadata server                    *)
(* ------------------------------------------------------------------ *)

let test_discovery_falls_back_within_deadline () =
  (* a server that accepts and never answers — the failure mode a
     connection-refused test never exercises. Without a deadline the
     fetch would hang forever; with one, the chain must reach the
     compiled-in fallback promptly. *)
  let server = Http.serve_table ~port:0 [ ("/flight.xsd", Fx.schema_a) ] in
  Fun.protect ~finally:(fun () -> Http.shutdown server) @@ fun () ->
  let chaos = Chaos.start ~upstream_port:(Http.port server) () in
  Fun.protect ~finally:(fun () -> Chaos.stop chaos) @@ fun () ->
  Chaos.set_fault chaos ~dir:Chaos.Down Chaos.Blackhole;
  (* Http.get's own socket deadline also fires cleanly *)
  (match
     Http.get ~port:(Chaos.port chaos) ~path:"/flight.xsd" ~timeout_s:0.2 ()
   with
  | _ -> Alcotest.fail "blackholed GET returned"
  | exception Http.Http_error m ->
    check bool "timeout named" true (Omf_testkit.Strings.contains m "timeout"));
  let catalog = Catalog.create Abi.x86_64 in
  let t0 = Unix.gettimeofday () in
  let outcome =
    Discovery.discover ~attempts:2 ~timeout_s:0.3 catalog
      [ Discovery.from_fetcher ~label:"http://hung-metaserver/flight.xsd"
          (Http.fetcher ~port:(Chaos.port chaos) ~path:"/flight.xsd" ())
      ; Discovery.compiled ~label:"compiled-in" [ Fx.decl_a ] ]
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  check Alcotest.string "fell back to compiled metadata" "compiled-in"
    outcome.Discovery.source;
  check bool "still functional" true (Catalog.mem catalog "ASDOffEvent");
  check bool "within the deadline budget (2 attempts x 0.3s + slack)" true
    (elapsed < 5.0)

let test_discovery_retries_before_falling_through () =
  (* the primary source fails once then recovers: attempts=2 keeps the
     system on its primary metadata instead of flipping to degraded *)
  let calls = ref 0 in
  let flaky () =
    incr calls;
    if !calls = 1 then failwith "transient"
    else Fx.schema_a
  in
  let catalog = Catalog.create Abi.x86_64 in
  let outcome =
    Discovery.discover ~attempts:2 catalog
      [ Discovery.from_fetcher ~label:"flaky-primary" flaky
      ; Discovery.compiled ~label:"compiled-in" [ Fx.decl_a ] ]
  in
  check Alcotest.string "primary retained after retry" "flaky-primary"
    outcome.Discovery.source;
  check int "exactly two fetch attempts" 2 !calls

let () =
  Alcotest.run "faults"
    [ ( "client-errors",
        [ Alcotest.test_case "connect refused -> Client.Error" `Quick
            test_connect_refused_is_client_error
        ; Alcotest.test_case "handshake failure closes socket" `Quick
            test_handshake_failure_closes_socket ] )
    ; ( "hmac",
        [ Alcotest.test_case "authenticated pub/sub end-to-end" `Quick
            test_auth_pubsub_end_to_end
        ; Alcotest.test_case "forged frames counted, then closed" `Quick
            test_forged_frames_counted_then_closed
        ; Alcotest.test_case "corrupted handshake counted (chaos)" `Quick
            test_corrupted_handshake_counted_via_chaos ] )
    ; ( "sessions",
        [ Alcotest.test_case "survives relayd kill+restart" `Quick
            test_session_survives_relayd_restart
        ; Alcotest.test_case "survives severed links (chaos)" `Quick
            test_session_survives_severed_link
        ; Alcotest.test_case "publisher overflow is explicit" `Quick
            test_publisher_overflow_is_explicit ] )
    ; ( "store",
        [ Alcotest.test_case "store-backed restart: zero loss, zero dup"
            `Quick test_store_relay_restart_zero_loss
        ; Alcotest.test_case "relayd SIGKILL + restart: zero loss, zero dup"
            `Quick test_store_survives_sigkill
        ; Alcotest.test_case "acked resume with watermark past the window"
            `Quick test_acked_resume_watermark_ahead ] )
    ; ( "mirror",
        [ Alcotest.test_case "source SIGKILL: promote-on-loss failover"
            `Quick (mirror_failover_sigkill ~compress:false)
        ; Alcotest.test_case
            "source SIGKILL on a compressed link (--mirror-compress)" `Quick
            (mirror_failover_sigkill ~compress:true) ] )
    ; ( "cluster",
        [ Alcotest.test_case "2 shards: handoffs, zero loss, HMAC" `Quick
            test_cluster_pubsub_across_shards
        ; Alcotest.test_case "2 shards survive severed links (chaos)" `Quick
            test_cluster_survives_severed_link ] )
    ; ( "overload",
        [ Alcotest.test_case "governor drill: shed, recover, zero loss"
            `Quick test_overload_governor_drill
        ; Alcotest.test_case "ingress token bucket paces, never drops"
            `Quick test_ingress_rate_limit_paces_publisher ] )
    ; ( "discovery",
        [ Alcotest.test_case "falls back within deadline (blackhole)" `Quick
            test_discovery_falls_back_within_deadline
        ; Alcotest.test_case "retries before falling through" `Quick
            test_discovery_retries_before_falling_through ] ) ]
