(** Tests for the durable per-stream store: segmented append-only logs
    with CRC-checked framing, sparse offset indexes, fsync policies,
    torn-tail recovery and retention (doc/STORE.md). *)

module Store = Omf_store.Store

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let with_root f =
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "omf-store-%d-%d" (Unix.getpid ()) (Random.int 1000000))
  in
  let rec rm path =
    match (Unix.lstat path).Unix.st_kind with
    | Unix.S_DIR ->
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Sys.remove path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  Fun.protect ~finally:(fun () -> rm root) (fun () -> f root)

let cfg ?(segment_bytes = 256) ?(fsync = Store.Never) ?(retain_segments = 0)
    ?(retain_bytes = 0) ?(retain_age = 0.0) root =
  { (Store.default_config ~root) with
    segment_bytes
  ; index_every = 4
  ; fsync
  ; retain_segments
  ; retain_bytes
  ; retain_age }

let frame seq = Bytes.of_string (Printf.sprintf "Mevent-%06d" seq)

let read_all st from =
  let acc = ref [] in
  Store.iter_from st from (fun off f -> acc := (off, Bytes.to_string f) :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)

let test_append_roll_iter () =
  with_root (fun root ->
      let st = Store.open_stream (cfg root) "flights" in
      let n = 100 in
      for seq = 0 to n - 1 do
        check int "offset is dense" seq (Store.append st (frame seq))
      done;
      check int "tail" n (Store.tail st);
      check bool "rolled into several segments" true (Store.segments st > 1);
      let got = read_all st 0 in
      check int "every frame back" n (List.length got);
      List.iteri
        (fun i (off, body) ->
          check int "offset in order" i off;
          check string "body intact" (Bytes.to_string (frame i)) body)
        got;
      (* reading from the middle lands exactly there, across segments *)
      let mid = read_all st 57 in
      check int "suffix length" (n - 57) (List.length mid);
      check int "suffix starts at 57" 57 (fst (List.hd mid));
      Store.close st)

let test_reopen_recovers () =
  with_root (fun root ->
      let st = Store.open_stream (cfg root) "flights" in
      Store.set_schema st "<schema/>";
      ignore (Store.append_descriptor st (Bytes.of_string "Ddescriptor-1"));
      for seq = 0 to 19 do
        ignore (Store.append st (frame seq))
      done;
      Store.close st;
      let st = Store.open_stream (cfg root) "flights" in
      check int "tail recovered" 20 (Store.tail st);
      check int "recovery makes everything durable" 20 (Store.durable st);
      check (Alcotest.option string) "schema recovered" (Some "<schema/>")
        (Store.schema st);
      check int "descriptors recovered" 1 (List.length (Store.descriptors st));
      (* appending continues the dense numbering *)
      check int "next offset" 20 (Store.append st (frame 20));
      check int "all frames readable" 21 (List.length (read_all st 0));
      Store.close st)

let test_descriptor_dedupe () =
  with_root (fun root ->
      let st = Store.open_stream (cfg root) "flights" in
      let d = Bytes.of_string "Ddescriptor-1" in
      check bool "first write" true (Store.append_descriptor st d);
      check bool "identical content skipped" false (Store.append_descriptor st d);
      check bool "different content written" true
        (Store.append_descriptor st (Bytes.of_string "Ddescriptor-2"));
      Store.close st;
      let st = Store.open_stream (cfg root) "flights" in
      check bool "dedupe survives reopen" false (Store.append_descriptor st d);
      check int "two descriptors stored" 2 (List.length (Store.descriptors st));
      Store.close st)

let test_torn_tail_truncated () =
  with_root (fun root ->
      let st = Store.open_stream (cfg ~segment_bytes:100_000 root) "flights" in
      for seq = 0 to 9 do
        ignore (Store.append st (frame seq))
      done;
      Store.close st;
      (* tear the last record: drop 3 bytes off the tail segment, as a
         crash mid-write would *)
      let seg =
        Filename.concat (Filename.concat root "flights")
          (Printf.sprintf "%020d.seg" 0)
      in
      let size = (Unix.stat seg).Unix.st_size in
      let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (size - 3);
      Unix.close fd;
      let st = Store.open_stream (cfg ~segment_bytes:100_000 root) "flights" in
      check int "torn record dropped" 9 (Store.tail st);
      check bool "truncation accounted" true (Store.truncated_bytes st > 0);
      check int "surviving frames intact" 9 (List.length (read_all st 0));
      (* the torn offset is reused, not skipped *)
      check int "offset 9 reassigned" 9 (Store.append st (frame 9));
      check int "all ten read back" 10 (List.length (read_all st 0));
      Store.close st)

let test_corrupt_sealed_record_detected () =
  with_root (fun root ->
      (* many small segments, so segment 0 is sealed (a corrupt TAIL
         record is torn-tail territory and silently truncated instead) *)
      let st = Store.open_stream (cfg root) "flights" in
      for seq = 0 to 99 do
        ignore (Store.append st (frame seq))
      done;
      check bool "several segments" true (Store.segments st > 2);
      Store.close st;
      (* flip one byte mid-record in the sealed first segment: the
         record's CRC must catch it on read *)
      let seg =
        Filename.concat (Filename.concat root "flights")
          (Printf.sprintf "%020d.seg" 0)
      in
      let fd = Unix.openfile seg [ Unix.O_RDWR ] 0 in
      let pos = ((Unix.stat seg).Unix.st_size / 2) + 12 in
      ignore (Unix.lseek fd pos Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
      ignore (Unix.lseek fd pos Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      let st = Store.open_stream (cfg root) "flights" in
      check int "recovery still trusts sealed structure" 100 (Store.tail st);
      (match read_all st 0 with
      | _ -> Alcotest.fail "expected Store_error on CRC mismatch"
      | exception Store.Store_error _ -> ());
      Store.close st)

let test_retention () =
  with_root (fun root ->
      let st =
        Store.open_stream (cfg ~retain_segments:3 root) "flights"
      in
      for seq = 0 to 99 do
        ignore (Store.append st (frame seq))
      done;
      check bool "segments capped" true (Store.segments st <= 3);
      check bool "oldest advanced" true (Store.oldest st > 0);
      check int "tail unaffected" 100 (Store.tail st);
      (* reads clamp up to the oldest retained offset *)
      let got = read_all st 0 in
      check int "first readable = oldest" (Store.oldest st) (fst (List.hd got));
      check int "suffix complete" (100 - Store.oldest st) (List.length got);
      (* retention never deletes the tail segment *)
      check bool "tail survives" true (Store.segments st >= 1);
      Store.close st)

let test_fsync_policies () =
  (* string round-trips *)
  List.iter
    (fun (s, p) ->
      (match Store.fsync_policy_of_string s with
      | Ok q ->
        check string "round-trip" (Store.fsync_policy_to_string p)
          (Store.fsync_policy_to_string q)
      | Error m -> Alcotest.failf "%s: %s" s m);
      check string "to_string" s (Store.fsync_policy_to_string p))
    [ ("never", Store.Never)
    ; ("every=8", Store.Every_n 8)
    ; ("interval=0.5", Store.Interval 0.5) ];
  check bool "garbage rejected" true
    (Result.is_error (Store.fsync_policy_of_string "sometimes"));
  (* Every_n advances durable on the boundary *)
  with_root (fun root ->
      let st =
        Store.open_stream
          (cfg ~segment_bytes:100_000 ~fsync:(Store.Every_n 4) root)
          "flights"
      in
      for seq = 0 to 2 do
        ignore (Store.append st (frame seq))
      done;
      check int "below the boundary: not yet durable" 0 (Store.durable st);
      ignore (Store.append st (frame 3));
      check int "boundary fsync" 4 (Store.durable st);
      (* an explicit sync drains stragglers *)
      ignore (Store.append st (frame 4));
      check int "sync returns durable" 5 (Store.sync st);
      Store.close st)

let test_stream_names () =
  with_root (fun root ->
      let c = cfg root in
      let open_close name =
        let st = Store.open_stream c name in
        ignore (Store.append st (frame 0));
        Store.close st
      in
      (* names with characters unsafe in file systems round-trip *)
      let names = [ "flights"; "EU/ops:alerts"; "weather.v2" ] in
      List.iter open_close names;
      check
        (Alcotest.slist string compare)
        "streams listed under their wire names" names (Store.streams c);
      (* and reopen under the original name *)
      let st = Store.open_stream c "EU/ops:alerts" in
      check string "stream name preserved" "EU/ops:alerts" (Store.stream st);
      check int "its frame is there" 1 (Store.tail st);
      Store.close st)

let () =
  Alcotest.run "store"
    [ ( "store",
        [ Alcotest.test_case "append, roll, iterate" `Quick test_append_roll_iter
        ; Alcotest.test_case "reopen recovers tail + meta" `Quick
            test_reopen_recovers
        ; Alcotest.test_case "descriptor dedupe" `Quick test_descriptor_dedupe
        ; Alcotest.test_case "torn tail truncated, offset reused" `Quick
            test_torn_tail_truncated
        ; Alcotest.test_case "sealed-record corruption detected" `Quick
            test_corrupt_sealed_record_detected
        ; Alcotest.test_case "retention drops old segments" `Quick
            test_retention
        ; Alcotest.test_case "fsync policies" `Quick test_fsync_policies
        ; Alcotest.test_case "stream name sanitisation" `Quick test_stream_names
        ] ) ]
