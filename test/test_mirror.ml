(** Tests for relay-to-relay stream replication (lib/mirror,
    doc/MIRROR.md): an A->B link replicating frames and advertisement
    metadata verbatim, read-only enforcement on the replica, exact
    frame counts across a bidirectional A<->B pair (origin-tagged loop
    prevention — no amplification), explicit promotion, promote-on-loss
    failover, and re-advertisement of persisted metadata after a
    relayd restart.

    Timing-sensitive (live links, rescans, backoff budgets): runs
    under [dune build @mirror] and the smoke alias, not tier-1
    [runtest]. *)

open Omf_machine
open Omf_pbio.Pbio
open Omf_transport
module Relay = Omf_relay.Relay
module Mirror = Omf_mirror.Mirror
module Fx = Omf_fixtures.Paper_structs
module Catalog = Omf_xml2wire.Catalog
module X2W = Omf_xml2wire.Xml2wire

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Helpers                                                              *)
(* ------------------------------------------------------------------ *)

let with_root f =
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "omf-mirror-%d-%d" (Unix.getpid ()) (Random.int 1000000))
  in
  let rec rm path =
    match (Unix.lstat path).Unix.st_kind with
    | Unix.S_DIR ->
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Sys.remove path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  Fun.protect ~finally:(fun () -> try rm root with _ -> ()) (fun () -> f root)

let store_cfg root =
  { (Relay.Store.default_config ~root) with fsync = Relay.Store.Interval 0.02 }

let event seq =
  match Fx.value_a with
  | Value.Record fields ->
    Value.Record
      (List.map
         (fun (k, v) ->
           if String.equal k "fltNum" then (k, Value.Int (Int64.of_int seq))
           else (k, v))
         fields)
  | _ -> assert false

let seq_of v =
  match Value.field_exn v "fltNum" with
  | Value.Int i -> Int64.to_int i
  | _ -> -1

(* an advertised stream (with a registry binding) plus a publisher
   endpoint on it *)
let make_publisher ?subject ?version ?fingerprint ~port ~stream () =
  let client = Relay.Client.connect ~port () in
  Relay.Client.advertise_meta client ?subject ?version ?fingerprint ~stream
    ~schema:Fx.schema_a ();
  let link = Relay.Client.publish client ~stream in
  let catalog = Catalog.create Abi.x86_64 in
  ignore (X2W.register_schema catalog Fx.schema_a);
  let fmt = Option.get (Catalog.find_format catalog "ASDOffEvent") in
  let sender = Endpoint.Sender.create link (Memory.create Abi.x86_64) in
  (client, sender, fmt)

let publish sender fmt seq = Endpoint.Sender.send_value sender fmt (event seq)

let relay_stat ~port key =
  match Relay.Client.connect ~port () with
  | c ->
    let v =
      Option.value ~default:0 (List.assoc_opt key (Relay.Client.stats c))
    in
    Relay.Client.close c;
    v
  | exception Relay.Client.Error _ -> 0

let poll ?(deadline_s = 15.0) ~what (cond : unit -> bool) =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timeout waiting for %s" what
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let assoc key stats = Option.value ~default:0 (List.assoc_opt key stats)

(* a fast mirror config for tests *)
let mcfg ?globs ?(max_attempts = 3) ?(promote_on_loss = false)
    ?(compress = false) ~source_port ~local_port ~local_relay_id () =
  Mirror.config ?globs ~rescan_s:0.05 ~io_timeout_s:0.25 ~max_attempts
    ~base_delay_s:0.02 ~max_delay_s:0.1 ~promote_on_loss ~compress
    ~source_host:"127.0.0.1" ~source_port ~local_port ~local_relay_id ()

(* read exactly [n] decoded events off a replica, starting at store
   offset [from] *)
let read_from ~port ~stream ~from n =
  let c = Relay.Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Relay.Client.close c) @@ fun () ->
  let start, _schema, link = Relay.Client.subscribe_from c ~stream ~from in
  check bool "store-backed reply carries the offset" true (start <> None);
  let catalog = Catalog.create Abi.arm_32 in
  ignore (X2W.register_schema catalog Fx.schema_a);
  let receiver =
    Endpoint.Receiver.create link
      (Catalog.registry catalog)
      (Memory.create Abi.arm_32)
  in
  List.init n (fun i ->
      match Endpoint.Receiver.recv_value receiver with
      | Some (_, v) -> seq_of v
      | None -> Alcotest.failf "stream closed at %d" i)

(* ------------------------------------------------------------------ *)
(* A -> B replication: frames, metadata, read-only replica              *)
(* ------------------------------------------------------------------ *)

let test_replicates_frames_and_metadata () =
  with_root @@ fun root_a ->
  with_root @@ fun root_b ->
  let ha = Relay.start ~store:(store_cfg root_a) () in
  let port_a = Relay.port (Relay.relay ha) in
  Fun.protect ~finally:(fun () -> Relay.stop ha) @@ fun () ->
  let hb = Relay.start ~store:(store_cfg root_b) () in
  let port_b = Relay.port (Relay.relay hb) in
  Fun.protect ~finally:(fun () -> Relay.stop hb) @@ fun () ->
  let id_a = Relay.relay_id (Relay.relay ha) in
  let id_b = Relay.relay_id (Relay.relay hb) in
  check bool "relay ids differ" true (not (String.equal id_a id_b));
  let pub, sender, fmt =
    make_publisher ~subject:"flights" ~version:3 ~fingerprint:"fp-abc"
      ~port:port_a ~stream:"flights" ()
  in
  let n = 20 in
  for seq = 0 to n - 1 do
    publish sender fmt seq
  done;
  poll ~what:"source stored the burst" (fun () ->
      relay_stat ~port:port_a "store.flights.tail" >= n);
  let m =
    Mirror.start
      (mcfg ~source_port:port_a ~local_port:port_b ~local_relay_id:id_b ())
  in
  Fun.protect ~finally:(fun () -> Mirror.stop m) @@ fun () ->
  poll ~what:"replica caught up" (fun () ->
      relay_stat ~port:port_b "store.flights.tail" >= n);
  (* the replica re-advertises the source's metadata verbatim, plus
     the origin tag naming the source relay *)
  let c = Relay.Client.connect ~port:port_b () in
  let meta, schema = Relay.Client.describe c ~stream:"flights" in
  check (Alcotest.option string) "subject preserved" (Some "flights")
    (List.assoc_opt "subject" meta);
  check (Alcotest.option string) "version preserved" (Some "3")
    (List.assoc_opt "version" meta);
  check (Alcotest.option string) "fingerprint preserved" (Some "fp-abc")
    (List.assoc_opt "fingerprint" meta);
  check (Alcotest.option string) "origin is the source relay" (Some id_a)
    (List.assoc_opt "origin" meta);
  check (Alcotest.option string) "epoch 0" (Some "0")
    (List.assoc_opt "epoch" meta);
  check string "schema replicated" Fx.schema_a schema;
  (* a foreign-origin stream is read-only: plain publish refused *)
  (match Relay.Client.publish c ~stream:"flights" with
  | _ -> Alcotest.fail "plain publish on a mirrored stream succeeded"
  | exception Relay.Client.Error msg ->
    check bool "refusal says read-only" true (contains msg "read-only"));
  Relay.Client.close c;
  (* a consumer on the replica reads the full history, in order, at
     the same offsets as the source *)
  check
    (Alcotest.list int)
    "replica serves 0..n-1 from offset 0"
    (List.init n Fun.id)
    (read_from ~port:port_b ~stream:"flights" ~from:0 n);
  (* replication-lag gauge appears (and reads 0 once caught up) *)
  poll ~what:"lag gauge" (fun () ->
      List.mem_assoc "mirror.flights.lag_frames" (Mirror.stats m));
  check int "descriptor replicated too" 1
    (assoc "descriptors_replicated" (Mirror.stats m));
  check int "every message frame counted" n
    (assoc "frames_replicated" (Mirror.stats m));
  Relay.Client.close pub

(* ------------------------------------------------------------------ *)
(* Compressed replication link: byte-exact fidelity                     *)
(* ------------------------------------------------------------------ *)

(* With [--mirror-compress] both legs of the link carry LZ blocks
   (PROTOCOLS.md §18). The replica must end up byte-identical to the
   plain-link case: same offsets, same decoded sequence, same
   advertisement metadata — and the source relay's [comp.*] counters
   must prove frames actually travelled compressed. *)
let test_compressed_link_fidelity () =
  with_root @@ fun root_a ->
  with_root @@ fun root_b ->
  let ha = Relay.start ~store:(store_cfg root_a) () in
  let port_a = Relay.port (Relay.relay ha) in
  Fun.protect ~finally:(fun () -> Relay.stop ha) @@ fun () ->
  let hb = Relay.start ~store:(store_cfg root_b) () in
  let port_b = Relay.port (Relay.relay hb) in
  Fun.protect ~finally:(fun () -> Relay.stop hb) @@ fun () ->
  let id_b = Relay.relay_id (Relay.relay hb) in
  let pub, sender, fmt =
    make_publisher ~subject:"flights" ~version:3 ~fingerprint:"fp-z"
      ~port:port_a ~stream:"flights" ()
  in
  let n = 40 in
  for seq = 0 to n - 1 do
    publish sender fmt seq
  done;
  poll ~what:"source stored the burst" (fun () ->
      relay_stat ~port:port_a "store.flights.tail" >= n);
  let m =
    Mirror.start
      (mcfg ~compress:true ~source_port:port_a ~local_port:port_b
         ~local_relay_id:id_b ())
  in
  Fun.protect ~finally:(fun () -> Mirror.stop m) @@ fun () ->
  poll ~what:"replica caught up over the compressed link" (fun () ->
      relay_stat ~port:port_b "store.flights.tail" >= n);
  (* every replicated frame decodes to the exact published sequence *)
  check
    (Alcotest.list int)
    "replica serves 0..n-1 from offset 0"
    (List.init n Fun.id)
    (read_from ~port:port_b ~stream:"flights" ~from:0 n);
  (* metadata rides the compressed link verbatim too *)
  let c = Relay.Client.connect ~port:port_b () in
  let meta, schema = Relay.Client.describe c ~stream:"flights" in
  check (Alcotest.option string) "fingerprint preserved" (Some "fp-z")
    (List.assoc_opt "fingerprint" meta);
  check string "schema replicated" Fx.schema_a schema;
  Relay.Client.close c;
  (* both relays granted comp=lz, and the source actually sent the
     replay as LZ blocks *)
  check bool "source granted a compressed session" true
    (relay_stat ~port:port_a "comp_sessions" >= 1);
  check bool "local relay granted a compressed session" true
    (relay_stat ~port:port_b "comp_sessions" >= 1);
  check bool "source counted compressed wire bytes" true
    (relay_stat ~port:port_a "comp.flights.wire_bytes" > 0);
  check bool "compressed raw bytes counted" true
    (relay_stat ~port:port_a "comp.flights.raw_bytes" > 0);
  check int "no frame lost or duplicated" n
    (assoc "frames_replicated" (Mirror.stats m));
  Relay.Client.close pub

(* ------------------------------------------------------------------ *)
(* Bidirectional A <-> B: loop prevention, no amplification             *)
(* ------------------------------------------------------------------ *)

let test_bidirectional_no_amplification () =
  with_root @@ fun root_a ->
  with_root @@ fun root_b ->
  let ha = Relay.start ~store:(store_cfg root_a) () in
  let port_a = Relay.port (Relay.relay ha) in
  Fun.protect ~finally:(fun () -> Relay.stop ha) @@ fun () ->
  let hb = Relay.start ~store:(store_cfg root_b) () in
  let port_b = Relay.port (Relay.relay hb) in
  Fun.protect ~finally:(fun () -> Relay.stop hb) @@ fun () ->
  let id_a = Relay.relay_id (Relay.relay ha) in
  let id_b = Relay.relay_id (Relay.relay hb) in
  let m_ab =
    Mirror.start
      (mcfg ~source_port:port_a ~local_port:port_b ~local_relay_id:id_b ())
  in
  Fun.protect ~finally:(fun () -> Mirror.stop m_ab) @@ fun () ->
  let m_ba =
    Mirror.start
      (mcfg ~source_port:port_b ~local_port:port_a ~local_relay_id:id_a ())
  in
  Fun.protect ~finally:(fun () -> Mirror.stop m_ba) @@ fun () ->
  let pub, sender, fmt = make_publisher ~port:port_a ~stream:"flights" () in
  let n = 25 in
  for seq = 0 to n - 1 do
    publish sender fmt seq
  done;
  poll ~what:"replica caught up" (fun () ->
      relay_stat ~port:port_b "store.flights.tail" >= n);
  (* the reverse link must refuse the stream (it originates at A) and
     the counts must settle exactly: the loop terminates *)
  poll ~what:"reverse link skipped the loop" (fun () ->
      assoc "loops_skipped" (Mirror.stats m_ba) >= 1);
  Thread.delay 0.4 (* several rescan periods: amplification would show *);
  check int "source tail unchanged (no frames came back around)" n
    (relay_stat ~port:port_a "store.flights.tail");
  check int "replica tail exact" n
    (relay_stat ~port:port_b "store.flights.tail");
  check int "forward link replicated each frame once" n
    (assoc "frames_replicated" (Mirror.stats m_ab));
  check int "reverse link replicated nothing" 0
    (assoc "frames_replicated" (Mirror.stats m_ba));
  Relay.Client.close pub

(* ------------------------------------------------------------------ *)
(* Promotion: explicit ownership transfer                               *)
(* ------------------------------------------------------------------ *)

let test_promote_transfers_ownership () =
  with_root @@ fun root_a ->
  with_root @@ fun root_b ->
  let ha = Relay.start ~store:(store_cfg root_a) () in
  let port_a = Relay.port (Relay.relay ha) in
  Fun.protect ~finally:(fun () -> Relay.stop ha) @@ fun () ->
  let hb = Relay.start ~store:(store_cfg root_b) () in
  let port_b = Relay.port (Relay.relay hb) in
  Fun.protect ~finally:(fun () -> Relay.stop hb) @@ fun () ->
  let id_b = Relay.relay_id (Relay.relay hb) in
  let pub, sender, fmt = make_publisher ~port:port_a ~stream:"flights" () in
  let n = 10 in
  for seq = 0 to n - 1 do
    publish sender fmt seq
  done;
  let m =
    Mirror.start
      (mcfg ~source_port:port_a ~local_port:port_b ~local_relay_id:id_b ())
  in
  Fun.protect ~finally:(fun () -> Mirror.stop m) @@ fun () ->
  poll ~what:"replica caught up" (fun () ->
      relay_stat ~port:port_b "store.flights.tail" >= n);
  let c = Relay.Client.connect ~port:port_b () in
  check int "promote bumps the epoch" 1
    (Relay.Client.promote c ~stream:"flights");
  check int "promote is idempotent" 1 (Relay.Client.promote c ~stream:"flights");
  let meta, _ = Relay.Client.describe c ~stream:"flights" in
  check (Alcotest.option string) "origin transferred" (Some id_b)
    (List.assoc_opt "origin" meta);
  Relay.Client.close c;
  (* the promoted stream is writable: a local publisher appends at the
     next offset, and a from-0 reader sees old + new contiguously *)
  let pub2, sender2, fmt2 = make_publisher ~port:port_b ~stream:"flights" () in
  publish sender2 fmt2 n;
  publish sender2 fmt2 (n + 1);
  poll ~what:"local appends" (fun () ->
      relay_stat ~port:port_b "store.flights.tail" >= n + 2);
  check
    (Alcotest.list int)
    "replicated history + local tail, contiguous"
    (List.init (n + 2) Fun.id)
    (read_from ~port:port_b ~stream:"flights" ~from:0 (n + 2));
  (* the stale A->B link is now refused (its epoch lost). The idle
     pump only notices through a failed local send, and TCP happily
     buffers the first write after the peer's close — so keep feeding
     frames through A until the broken link re-handshakes and hits the
     stale-epoch gate *)
  let fed = ref n in
  poll ~what:"stale link refused" (fun () ->
      publish sender fmt !fed;
      incr fed;
      Thread.delay 0.05;
      assoc "links_refused" (Mirror.stats m) >= 1);
  check int "replica did not regress" (n + 2)
    (relay_stat ~port:port_b "store.flights.tail");
  Relay.Client.close pub2;
  Relay.Client.close pub

(* ------------------------------------------------------------------ *)
(* Promote-on-loss failover                                             *)
(* ------------------------------------------------------------------ *)

let test_promote_on_loss_failover () =
  with_root @@ fun root_a ->
  with_root @@ fun root_b ->
  let ha = Relay.start ~store:(store_cfg root_a) () in
  let port_a = Relay.port (Relay.relay ha) in
  let stopped_a = ref false in
  Fun.protect
    ~finally:(fun () -> if not !stopped_a then Relay.stop ha)
  @@ fun () ->
  let hb = Relay.start ~store:(store_cfg root_b) () in
  let port_b = Relay.port (Relay.relay hb) in
  Fun.protect ~finally:(fun () -> Relay.stop hb) @@ fun () ->
  let id_b = Relay.relay_id (Relay.relay hb) in
  let pub, sender, fmt = make_publisher ~port:port_a ~stream:"flights" () in
  let n = 15 in
  for seq = 0 to n - 1 do
    publish sender fmt seq
  done;
  let m =
    Mirror.start
      (mcfg ~max_attempts:2 ~promote_on_loss:true ~source_port:port_a
         ~local_port:port_b ~local_relay_id:id_b ())
  in
  Fun.protect ~finally:(fun () -> Mirror.stop m) @@ fun () ->
  poll ~what:"replica caught up" (fun () ->
      relay_stat ~port:port_b "store.flights.tail" >= n);
  (* the source dies; the reconnect budget runs out; the replica
     promotes itself *)
  (try Relay.Client.close pub with _ -> ());
  stopped_a := true;
  Relay.stop ha;
  poll ~deadline_s:20.0 ~what:"promote on loss" (fun () ->
      assoc "promotes" (Mirror.stats m) >= 1);
  let c = Relay.Client.connect ~port:port_b () in
  let meta, _ = Relay.Client.describe c ~stream:"flights" in
  check (Alcotest.option string) "ownership failed over" (Some id_b)
    (List.assoc_opt "origin" meta);
  check bool "epoch bumped" true
    (match List.assoc_opt "epoch" meta with
    | Some e -> int_of_string e >= 1
    | None -> false);
  Relay.Client.close c;
  (* consumers resume against the promoted replica with zero loss *)
  check
    (Alcotest.list int)
    "full history served after failover"
    (List.init n Fun.id)
    (read_from ~port:port_b ~stream:"flights" ~from:0 n);
  (* and it accepts writes again *)
  let _pub2, sender2, fmt2 = make_publisher ~port:port_b ~stream:"flights" () in
  publish sender2 fmt2 n;
  poll ~what:"post-failover append" (fun () ->
      relay_stat ~port:port_b "store.flights.tail" >= n + 1)

(* ------------------------------------------------------------------ *)
(* Restart: persisted advertisement metadata is re-advertised           *)
(* ------------------------------------------------------------------ *)

let test_restart_readvertises_metadata () =
  with_root @@ fun root ->
  let h1 = Relay.start ~store:(store_cfg root) () in
  let port1 = Relay.port (Relay.relay h1) in
  let id1 = Relay.relay_id (Relay.relay h1) in
  let pub, sender, fmt =
    make_publisher ~subject:"flights" ~version:7 ~fingerprint:"fp-persist"
      ~port:port1 ~stream:"flights" ()
  in
  publish sender fmt 0;
  poll ~what:"frame stored" (fun () ->
      relay_stat ~port:port1 "store.flights.tail" >= 1);
  Relay.Client.close pub;
  Relay.stop h1;
  (* a fresh process over the same store: the stream comes back with
     its registry binding and its replication identity *)
  let h2 = Relay.start ~store:(store_cfg root) () in
  let port2 = Relay.port (Relay.relay h2) in
  Fun.protect ~finally:(fun () -> Relay.stop h2) @@ fun () ->
  check string "relay id persisted across restart" id1
    (Relay.relay_id (Relay.relay h2));
  let c = Relay.Client.connect ~port:port2 () in
  let meta, schema = Relay.Client.describe c ~stream:"flights" in
  check (Alcotest.option string) "subject recovered" (Some "flights")
    (List.assoc_opt "subject" meta);
  check (Alcotest.option string) "version recovered" (Some "7")
    (List.assoc_opt "version" meta);
  check (Alcotest.option string) "fingerprint recovered" (Some "fp-persist")
    (List.assoc_opt "fingerprint" meta);
  check (Alcotest.option string) "still owned by the original id" (Some id1)
    (List.assoc_opt "origin" meta);
  check string "schema recovered" Fx.schema_a schema;
  check bool "recovery counted" true
    (relay_stat ~port:port2 "advert_meta_recovered" >= 1);
  (* LIST sees the recovered stream *)
  check (Alcotest.list string) "LIST serves the recovered stream"
    [ "flights" ]
    (Relay.Client.list_streams c);
  Relay.Client.close c

(* ------------------------------------------------------------------ *)

let () =
  Random.self_init ();
  Alcotest.run "mirror"
    [ ( "replication",
        [ Alcotest.test_case "A->B frames + metadata, read-only replica"
            `Quick test_replicates_frames_and_metadata
        ; Alcotest.test_case "compressed link: byte-exact fidelity" `Quick
            test_compressed_link_fidelity
        ; Alcotest.test_case "A<->B loops terminate, no amplification"
            `Quick test_bidirectional_no_amplification ] )
    ; ( "failover",
        [ Alcotest.test_case "explicit promote transfers ownership" `Quick
            test_promote_transfers_ownership
        ; Alcotest.test_case "promote-on-loss failover" `Quick
            test_promote_on_loss_failover ] )
    ; ( "restart",
        [ Alcotest.test_case "persisted metadata re-advertised" `Quick
            test_restart_readvertises_metadata ] ) ]
