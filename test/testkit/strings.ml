(** Tiny string helpers for tests (avoids a Str dependency). *)

(** [replace ~sub ~by s] replaces every literal occurrence of [sub]. *)
let replace ~sub ~by s =
  let n = String.length sub in
  if n = 0 then invalid_arg "Strings.replace: empty pattern";
  let b = Buffer.create (String.length s) in
  let rec go i =
    if i > String.length s - n then
      Buffer.add_string b (String.sub s i (String.length s - i))
    else if String.equal (String.sub s i n) sub then begin
      Buffer.add_string b by;
      go (i + n)
    end
    else begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents b

(** [contains s sub] is true when [sub] occurs literally in [s]. *)
let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.equal (String.sub s i n) sub || go (i + 1))
  in
  n = 0 || go 0
