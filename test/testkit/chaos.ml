(** A fault-injecting TCP proxy: sits between a client and an upstream
    server and misbehaves on command — delaying, corrupting, truncating,
    splicing bytes into, or severing the proxied streams. Built for the
    fault-tolerance suite: a relay client pointed at a chaos port
    experiences realistic network failures while the relay itself stays
    healthy, and an HTTP fetcher pointed at a [Blackhole] sees the
    accept-then-hang behaviour of a dying metadata server (the timeout
    path, which a closed port's connection-refused never exercises).

    One listener, thread-per-connection, two pump threads per proxied
    connection. Faults are directional ([Up] = client-to-server bytes,
    [Down] = server-to-client) and consulted per chunk, so a fault
    installed mid-connection applies to the next bytes through. Byte
    offsets are counted per connection per direction from 0. *)

type direction = Up | Down

type fault =
  | Passthrough
  | Delay of float  (** sleep this long before forwarding each chunk *)
  | Corrupt_at of int  (** flip one bit of stream byte [n], then pass *)
  | Truncate_at of int
      (** silently drop every byte past offset [n] (stream stays open —
          the victim sees a stall, not a close) *)
  | Splice_at of int  (** inject 16 alien bytes at offset [n] *)
  | Sever_at of int  (** forward [n] bytes, then kill the connection *)
  | Blackhole  (** swallow everything; never forward a byte *)

type conn = {
  c_client : Unix.file_descr;
  c_server : Unix.file_descr;
  mutable c_alive : bool;
}

type t = {
  lsock : Unix.file_descr;
  port : int;
  lock : Mutex.t;
  mutable up_fault : fault;
  mutable down_fault : fault;
  mutable conns : conn list;
  mutable accepted : int;
  mutable stopping : bool;
  mutable acceptor : Thread.t option;
}

let close_quiet fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let kill_conn (cn : conn) =
  if cn.c_alive then begin
    cn.c_alive <- false;
    close_quiet cn.c_client;
    close_quiet cn.c_server
  end

let fault_for (t : t) = function Up -> t.up_fault | Down -> t.down_fault

let set_fault (t : t) ~(dir : direction) (f : fault) : unit =
  Mutex.lock t.lock;
  (match dir with Up -> t.up_fault <- f | Down -> t.down_fault <- f);
  Mutex.unlock t.lock

(** Cut every live proxied connection (an outage; the listener keeps
    accepting, so reconnects succeed unless a fault says otherwise). *)
let sever_all (t : t) : unit =
  Mutex.lock t.lock;
  let cs = t.conns in
  t.conns <- [];
  Mutex.unlock t.lock;
  List.iter kill_conn cs

let accepted (t : t) : int = t.accepted
let port (t : t) : int = t.port

let write_all fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write fd buf off len in
      go (off + n) (len - n)
    end
  in
  go off len

(* forward one direction, consulting the installed fault per chunk *)
let pump (t : t) (cn : conn) (dir : direction) ~src ~dst : unit =
  let buf = Bytes.create 4096 in
  let seen = ref 0 in
  let hold = ref false in
  (try
     let continue = ref true in
     while !continue do
       let n = Unix.read src buf 0 (Bytes.length buf) in
       if n = 0 then begin
         (* a blackholed direction swallows the close too: the victim
            must keep hanging, not see a tidy EOF *)
         Mutex.lock t.lock;
         if fault_for t dir = Blackhole then hold := true;
         Mutex.unlock t.lock;
         continue := false
       end
       else begin
         Mutex.lock t.lock;
         let fault = fault_for t dir in
         Mutex.unlock t.lock;
         (match fault with
         | Passthrough -> write_all dst buf 0 n
         | Delay d ->
           Thread.delay d;
           write_all dst buf 0 n
         | Blackhole -> ()
         | Corrupt_at k ->
           (* the high bit, so corrupting a length header always yields
              an impossible frame length rather than a large legal one *)
           if k >= !seen && k < !seen + n then
             Bytes.set buf (k - !seen)
               (Char.chr (Char.code (Bytes.get buf (k - !seen)) lxor 0x80));
           write_all dst buf 0 n
         | Truncate_at k ->
           let keep = max 0 (min n (k - !seen)) in
           if keep > 0 then write_all dst buf 0 keep
         | Splice_at k ->
           if k >= !seen && k < !seen + n then begin
             let cut = k - !seen in
             write_all dst buf 0 cut;
             write_all dst (Bytes.make 16 '\xA5') 0 16;
             write_all dst buf cut (n - cut)
           end
           else write_all dst buf 0 n
         | Sever_at k ->
           let keep = max 0 (min n (k - !seen)) in
           if keep > 0 then write_all dst buf 0 keep;
           if !seen + n >= k then continue := false);
         seen := !seen + n
       end
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  if not !hold then kill_conn cn

(** [start ~upstream_port ()] listens on an ephemeral port and proxies
    every accepted connection to the upstream address, faults applied. *)
let start ?(host = "127.0.0.1") ?(upstream_host = "127.0.0.1")
    ~(upstream_port : int) () : t =
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_of_string host, 0));
  Unix.listen lsock 16;
  let port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let t =
    { lsock; port; lock = Mutex.create (); up_fault = Passthrough
    ; down_fault = Passthrough; conns = []; accepted = 0; stopping = false
    ; acceptor = None }
  in
  let accept_loop () =
    try
      while not t.stopping do
        let client, _ = Unix.accept t.lsock in
        if t.stopping then close_quiet client
        else begin
          match
            let server = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            (try
               Unix.connect server
                 (Unix.ADDR_INET
                    (Unix.inet_addr_of_string upstream_host, upstream_port))
             with e ->
               close_quiet server;
               raise e);
            server
          with
          | server ->
            let cn = { c_client = client; c_server = server; c_alive = true } in
            Mutex.lock t.lock;
            t.conns <- cn :: List.filter (fun c -> c.c_alive) t.conns;
            t.accepted <- t.accepted + 1;
            Mutex.unlock t.lock;
            ignore
              (Thread.create (fun () -> pump t cn Up ~src:client ~dst:server) ());
            ignore
              (Thread.create (fun () -> pump t cn Down ~src:server ~dst:client)
                 ())
          | exception _ ->
            (* upstream down: refuse by closing — the client sees a
               reset, which is exactly the outage being simulated *)
            close_quiet client
        end
      done
    with Unix.Unix_error _ -> ()
  in
  t.acceptor <- Some (Thread.create accept_loop ());
  t

let stop (t : t) : unit =
  t.stopping <- true;
  close_quiet t.lsock;
  sever_all t;
  match t.acceptor with None -> () | Some th -> Thread.join th
