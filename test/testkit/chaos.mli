(** A fault-injecting TCP proxy for the fault-tolerance suite: a relay
    client pointed at a chaos port experiences delay, corruption,
    truncation, splicing, or a severed link while the relay itself stays
    healthy; an HTTP fetcher pointed at a {!Blackhole} sees a server
    that accepts and then never answers — the timeout path that a closed
    port's connection-refused never exercises. *)

type direction =
  | Up  (** client-to-server bytes *)
  | Down  (** server-to-client bytes *)

type fault =
  | Passthrough
  | Delay of float  (** sleep this long before forwarding each chunk *)
  | Corrupt_at of int  (** flip one bit of stream byte [n], then pass *)
  | Truncate_at of int
      (** silently drop every byte past offset [n] (stream stays open —
          the victim sees a stall, not a close) *)
  | Splice_at of int  (** inject 16 alien bytes at offset [n] *)
  | Sever_at of int  (** forward [n] bytes, then kill the connection *)
  | Blackhole  (** swallow everything; never forward a byte *)

type t

val start :
  ?host:string -> ?upstream_host:string -> upstream_port:int -> unit -> t
(** Listen on an ephemeral port ({!port}) and proxy every accepted
    connection to the upstream address. When the upstream is down the
    accepted client socket is closed immediately (a reset — the outage
    being simulated). *)

val port : t -> int

val set_fault : t -> dir:direction -> fault -> unit
(** Install a fault for one direction; consulted per forwarded chunk,
    so it applies to the next bytes through live connections too. Byte
    offsets count per connection per direction from 0. *)

val sever_all : t -> unit
(** Cut every live proxied connection; the listener keeps accepting. *)

val accepted : t -> int
(** Connections accepted so far (reconnect visibility). *)

val stop : t -> unit
