(** Tests for the mini HTTP server/client and HTTP-based remote metadata
    discovery (the paper's section 7 future work, realised). *)

open Omf_machine
open Omf_xml2wire
module Http = Omf_httpd.Http
module Fx = Omf_fixtures.Paper_structs

let check = Alcotest.check
let str = Alcotest.string
let bool = Alcotest.bool
let int = Alcotest.int

let with_server table f =
  let server = Http.serve_table ~port:0 table in
  Fun.protect ~finally:(fun () -> Http.shutdown server) (fun () -> f server)

let test_get_roundtrip () =
  with_server [ ("/flight.xsd", Fx.schema_a); ("/hello", "hi") ] (fun server ->
      check str "document body" Fx.schema_a
        (Http.get ~port:(Http.port server) ~path:"/flight.xsd" ());
      check str "second path" "hi"
        (Http.get ~port:(Http.port server) ~path:"/hello" ()))

let test_404 () =
  with_server [] (fun server ->
      try
        ignore (Http.get ~port:(Http.port server) ~path:"/nope" ());
        Alcotest.fail "expected Http_error"
      with Http.Http_error _ -> ())

(* A port guaranteed to refuse connections for the duration of [f]: we
   hold it bound (so no parallel test can take it) but never listen. *)
let with_dead_port f =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Fun.protect ~finally:(fun () -> Unix.close sock) (fun () -> f port)

let test_connection_refused () =
  with_dead_port (fun port ->
      try
        ignore (Http.get ~port ~path:"/x" ());
        Alcotest.fail "expected Http_error"
      with Http.Http_error _ -> ())

let test_concurrent_requests () =
  with_server [ ("/d.xsd", Fx.schema_b) ] (fun server ->
      let results = Array.make 8 "" in
      let threads =
        List.init 8 (fun i ->
            Thread.create
              (fun i ->
                results.(i) <- Http.get ~port:(Http.port server) ~path:"/d.xsd" ())
              i)
      in
      List.iter Thread.join threads;
      Array.iter (fun r -> check str "every thread got the document" Fx.schema_b r) results)

let test_metrics_endpoint () =
  let counters = Omf_util.Counters.create () in
  Omf_util.Counters.incr counters ~by:42 "frames_in";
  Omf_util.Counters.incr counters "weird.name-x";
  let server =
    Http.serve_metrics ~port:0
      [ ("relay", fun () -> Omf_util.Counters.dump counters) ]
  in
  Fun.protect
    ~finally:(fun () -> Http.shutdown server)
    (fun () ->
      let body = Http.get ~port:(Http.port server) ~path:"/metrics" () in
      let lines = String.split_on_char '\n' body in
      check bool "prometheus counter line" true
        (List.mem "omf_relay_frames_in 42" lines);
      check bool "names sanitized to [a-zA-Z0-9_]" true
        (List.mem "omf_relay_weird_name_x 1" lines);
      (* non-metrics paths 404 *)
      (try
         ignore (Http.get ~port:(Http.port server) ~path:"/other" ());
         Alcotest.fail "expected Http_error"
       with Http.Http_error _ -> ()))

let test_serve_directory () =
  let dir = Filename.temp_file "omf" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "flight.xsd" in
  let oc = open_out path in
  output_string oc Fx.schema_a;
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Unix.rmdir dir)
    (fun () ->
      let server = Http.serve_directory ~port:0 dir in
      Fun.protect
        ~finally:(fun () -> Http.shutdown server)
        (fun () ->
          check str "served from directory" Fx.schema_a
            (Http.get ~port:(Http.port server) ~path:"/flight.xsd" ());
          (* traversal and non-xsd requests rejected *)
          (try
             ignore (Http.get ~port:(Http.port server) ~path:"/flight.txt" ());
             Alcotest.fail "expected 404 for non-xsd"
           with Http.Http_error _ -> ());
          try
            ignore (Http.get ~port:(Http.port server) ~path:"/../etc/passwd" ());
            Alcotest.fail "expected 404 for traversal"
          with Http.Http_error _ -> ()))

(* The directory handler's traversal hardening, status by status:
   escapes are decoded before any check (%2e%2e can't smuggle a ".."),
   escape attempts are 403, things that merely aren't served here are
   404, and served documents carry text/xml. *)
let test_directory_handler_hardening () =
  let dir = Filename.temp_file "omf" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "flight.xsd" in
  let oc = open_out path in
  output_string oc Fx.schema_a;
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Unix.rmdir dir)
    (fun () ->
      let server = Http.serve ~port:0 (Http.directory_handler dir) in
      Fun.protect
        ~finally:(fun () -> Http.shutdown server)
        (fun () ->
          let port = Http.port server in
          let status ?(meth = "GET") p =
            (Http.request ~port ~meth ~path:p ()).Http.status
          in
          let ok = Http.request ~port ~meth:"GET" ~path:"/flight.xsd" () in
          check int "served document is 200" 200 ok.Http.status;
          check str "served with text/xml" "text/xml" ok.Http.content_type;
          check str "body intact" Fx.schema_a ok.Http.body;
          (* escape attempts are 403, in every spelling *)
          check int "dot-dot segment" 403 (status "/../etc/passwd");
          check int "nested dot-dot" 403 (status "/a/../../flight.xsd");
          check int "percent-encoded dot-dot" 403
            (status "/%2e%2e/etc/passwd");
          check int "double slash (absolute)" 403 (status "//etc/passwd");
          (* things that merely don't exist here are 404 *)
          check int "missing document" 404 (status "/missing.xsd");
          check int "non-xsd name" 404 (status "/flight.txt");
          check int "subdirectory" 404 (status "/sub/flight.xsd");
          (* malformed or non-HTTP-shaped requests are 400 *)
          check int "malformed escape" 400 (status "/%zz.xsd");
          check int "relative path" 400 (status "flight.xsd");
          check int "POST refused by the GET-only adapter" 400
            (status ~meth:"POST" "/flight.xsd");
          (* percent-decoding also works in the benign direction *)
          check int "encoded benign name decodes" 200
            (status "/%66light.xsd")))

(* A raw-socket server that advertises Content-Length [claim] but sends
   only [body] and then either closes or holds the connection open —
   the misbehaving peer the client's body reader must survive. *)
let with_short_body_server ~claim ~body ~close_after f =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen sock 1;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let stop = ref false in
  let th =
    Thread.create
      (fun () ->
        match Unix.accept sock with
        | fd, _ ->
          (* drain the request so our close is a clean FIN, not an RST *)
          (try ignore (Unix.read fd (Bytes.create 4096) 0 4096)
           with Unix.Unix_error _ -> ());
          let resp =
            Printf.sprintf
              "HTTP/1.0 200 OK\r\nContent-Length: %d\r\n\r\n%s" claim body
          in
          ignore (Unix.write_substring fd resp 0 (String.length resp));
          if close_after then Unix.close fd
          else begin
            (* hold the connection open with the body short *)
            while not !stop do
              Thread.delay 0.02
            done;
            Unix.close fd
          end
        | exception Unix.Unix_error _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      stop := true;
      (try Unix.shutdown sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      Unix.close sock;
      Thread.join th)
    (fun () -> f port)

let test_truncated_body_is_typed_error () =
  (* server closes after 5 of 100 promised bytes: the client must raise
     a typed truncation error carrying both byte counts, not return a
     silent short body or a bare end-of-stream *)
  with_short_body_server ~claim:100 ~body:"hello" ~close_after:true
    (fun port ->
      match Http.get ~port ~path:"/doc" () with
      | _ -> Alcotest.fail "expected Http_error on truncated body"
      | exception Http.Http_error msg ->
        check bool
          (Printf.sprintf "message names the shortfall (%s)" msg)
          true
          (Omf_testkit.Strings.replace ~sub:"truncated body: got 5 of 100 bytes"
             ~by:"" msg
          <> msg))

let test_short_body_held_open_times_out () =
  (* same shortfall but the server holds the socket: with a timeout the
     client must surface a deadline error instead of hanging forever *)
  with_short_body_server ~claim:100 ~body:"hello" ~close_after:false
    (fun port ->
      match Http.get ~port ~path:"/doc" ~timeout_s:0.3 () with
      | _ -> Alcotest.fail "expected Http_error on stalled body"
      | exception Http.Http_error msg ->
        check bool (Printf.sprintf "timeout surfaced (%s)" msg) true
          (Omf_testkit.Strings.replace ~sub:"timeout" ~by:"" msg <> msg))

(* ------------------------------------------------------------------ *)
(* HTTP discovery: the xml2wire use case                                *)
(* ------------------------------------------------------------------ *)

let test_discovery_over_http () =
  with_server [ ("/flight.xsd", Fx.schema_a) ] (fun server ->
      let catalog = Catalog.create Abi.x86_64 in
      let outcome =
        Discovery.discover catalog
          [ Discovery.from_fetcher ~label:"http://127.0.0.1/flight.xsd"
              (Http.fetcher ~port:(Http.port server) ~path:"/flight.xsd" ()) ]
      in
      check int "one format from HTTP" 1 (List.length outcome.Discovery.formats);
      check bool "registered" true (Catalog.mem catalog "ASDOffEvent"))

let test_discovery_http_down_falls_back_to_compiled () =
  (* the paper's fault-tolerance story end-to-end: metadata server dead,
     compiled-in formats keep the system limping along *)
  with_dead_port (fun port ->
      let catalog = Catalog.create Abi.x86_64 in
      let outcome =
        Discovery.discover catalog
          [ Discovery.from_fetcher ~label:"http://dead-metaserver/flight.xsd"
              (Http.fetcher ~port ~path:"/flight.xsd" ())
          ; Discovery.compiled ~label:"compiled-in" [ Fx.decl_a ] ]
      in
      check str "fallback used" "compiled-in" outcome.Discovery.source;
      check bool "still functional" true (Catalog.mem catalog "ASDOffEvent"))

let test_metadata_change_via_http () =
  (* re-discovery over HTTP: server starts serving an upgraded document *)
  let current = ref Fx.schema_a in
  let server =
    Http.serve ~port:0 (fun ~path:_ ~headers:_ -> Http.ok !current)
  in
  Fun.protect
    ~finally:(fun () -> Http.shutdown server)
    (fun () ->
      let catalog = Catalog.create Abi.x86_64 in
      let w =
        Discovery.watch catalog
          [ Discovery.from_fetcher ~label:"http"
              (Http.fetcher ~port:(Http.port server) ~path:"/flight.xsd" ()) ]
      in
      check bool "initial discovery" true (Catalog.mem catalog "ASDOffEvent");
      check bool "no spurious refresh" true (Discovery.refresh w = None);
      current :=
        Omf_testkit.Strings.replace
          ~sub:{|<xsd:element name="eta" type="xsd:unsigned-long" />|}
          ~by:{|<xsd:element name="eta" type="xsd:unsigned-long" />
                <xsd:element name="gate" type="xsd:string" />|}
          Fx.schema_a;
      match Discovery.refresh w with
      | Some _ ->
        let fmt = Option.get (Catalog.find_format catalog "ASDOffEvent") in
        check bool "upgraded over HTTP" true
          (Option.is_some (Omf_pbio.Format.find_field fmt "gate"))
      | None -> Alcotest.fail "HTTP change not detected")

let () =
  Alcotest.run "httpd"
    [ ( "http",
        [ Alcotest.test_case "GET round-trip" `Quick test_get_roundtrip
        ; Alcotest.test_case "404" `Quick test_404
        ; Alcotest.test_case "connection refused" `Quick test_connection_refused
        ; Alcotest.test_case "concurrent requests" `Quick test_concurrent_requests
        ; Alcotest.test_case "directory serving" `Quick test_serve_directory
        ; Alcotest.test_case "directory handler hardening" `Quick
            test_directory_handler_hardening
        ; Alcotest.test_case "prometheus /metrics" `Quick test_metrics_endpoint
        ; Alcotest.test_case "truncated body is a typed error" `Quick
            test_truncated_body_is_typed_error
        ; Alcotest.test_case "short body held open times out" `Quick
            test_short_body_held_open_times_out ] )
    ; ( "discovery",
        [ Alcotest.test_case "discover over HTTP" `Quick test_discovery_over_http
        ; Alcotest.test_case "HTTP down -> compiled fallback" `Quick
            test_discovery_http_down_falls_back_to_compiled
        ; Alcotest.test_case "metadata change via HTTP" `Quick
            test_metadata_change_via_http ] ) ]
