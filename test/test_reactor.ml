(** Tests for the shared readiness engine: the timer wheel's firing
    order against a sorted model (property-tested under random
    insert/cancel), fd churn through the buffered connection driver
    without leaking registrations, cross-thread [inject] under load,
    and per-connection deadlines. *)

module Reactor = Omf_reactor.Reactor
module Conn = Omf_reactor.Conn
module Wheel = Omf_reactor.Reactor.Wheel

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Timer wheel                                                          *)
(* ------------------------------------------------------------------ *)

(* Random schedule/cancel sequences: firing must visit exactly the
   still-live timers with deadline <= cut, in (deadline, insertion)
   order — i.e. the order of the sorted model. Deadlines are drawn from
   a small integer range so ties (the interesting case for the seq
   tie-break) are common. *)
let prop_wheel_order =
  QCheck.Test.make ~name:"timer wheel fires in (deadline, seq) order"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 40) (int_range 0 9))
        (list_of_size Gen.(0 -- 20) small_nat))
    (fun (deadlines, cancels) ->
      let h = Wheel.create () in
      let fired = ref [] in
      (* model: (deadline, seq) for every scheduled timer *)
      let timers =
        List.mapi
          (fun seq d ->
            let tm =
              Wheel.schedule h ~at:(float_of_int d) (fun () ->
                  fired := (d, seq) :: !fired)
            in
            (d, seq, tm))
          deadlines
      in
      let cancelled =
        List.filter_map
          (fun i ->
            match List.nth_opt timers (i mod max 1 (List.length timers)) with
            | Some (d, seq, tm) when List.length timers > 0 ->
              Wheel.cancel tm;
              Some (d, seq)
            | _ -> None)
          cancels
      in
      let live (d, seq) = not (List.mem (d, seq) cancelled) in
      (* fire in two stages to exercise partial cuts *)
      ignore (Wheel.fire h ~now:4.5);
      let mid = List.rev !fired in
      ignore (Wheel.fire h ~now:100.0);
      let all = List.rev !fired in
      let model = List.map (fun (d, seq, _) -> (d, seq)) timers in
      let expect_mid =
        List.filter (fun (d, _) -> d <= 4) (List.filter live model)
      in
      let expect_all = List.filter live model in
      (* the model is already in (deadline-stable, seq) order only if
         sorted; insertion order is seq order, so sort by deadline
         keeping seq order (stable sort) *)
      let sorted l =
        List.stable_sort (fun (d1, _) (d2, _) -> compare d1 d2) l
      in
      mid = sorted expect_mid && all = sorted expect_all)

let test_wheel_reschedule () =
  let h = Wheel.create () in
  let hits = ref 0 in
  (* an action that re-arms itself must be safe (it runs after removal) *)
  let rec arm at =
    ignore
      (Wheel.schedule h ~at (fun () ->
           incr hits;
           if !hits < 3 then arm (at +. 1.0)))
  in
  arm 1.0;
  ignore (Wheel.fire h ~now:10.0);
  (* the re-armed timers are due within the same cut and fire too *)
  check int "chained re-arms all fired" 3 !hits;
  check int "wheel drained" 0 (Wheel.pending h)

let test_wheel_cancel_counts () =
  let h = Wheel.create () in
  let t1 = Wheel.schedule h ~at:1.0 ignore in
  let _t2 = Wheel.schedule h ~at:2.0 ignore in
  check int "two pending" 2 (Wheel.pending h);
  Wheel.cancel t1;
  check int "one live after cancel" 1 (Wheel.pending h);
  check bool "next deadline skips the cancelled head" true
    (Wheel.next_deadline h = Some 2.0);
  check int "only the live timer fires" 1 (Wheel.fire h ~now:5.0)

(* ------------------------------------------------------------------ *)
(* A reactor on a thread, with helpers                                  *)
(* ------------------------------------------------------------------ *)

let with_loop fn =
  let loop = Reactor.create () in
  let thread = Thread.create Reactor.run loop in
  Fun.protect
    ~finally:(fun () ->
      Reactor.stop loop;
      Thread.join thread;
      Reactor.dispose loop)
    (fun () -> fn loop)

(* run [fn] on the loop thread and wait for its result *)
let on_loop loop fn =
  let mu = Mutex.create () and cond = Condition.create () in
  let result = ref None in
  Reactor.inject loop (fun () ->
      let r = fn () in
      Mutex.lock mu;
      result := Some r;
      Condition.signal cond;
      Mutex.unlock mu);
  Mutex.lock mu;
  while !result = None do
    Condition.wait cond mu
  done;
  Mutex.unlock mu;
  Option.get !result

(* ------------------------------------------------------------------ *)
(* Conn: fd churn without leaks                                         *)
(* ------------------------------------------------------------------ *)

(* Attach an echoing Conn over one end of a socketpair, talk to it from
   this thread, close, repeat. Registrations must not accumulate. *)
let test_fd_churn () =
  with_loop (fun loop ->
      let baseline = on_loop loop (fun () -> Reactor.fd_count loop) in
      for round = 1 to 25 do
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let closed = ref false in
        ignore
          (on_loop loop (fun () ->
               Conn.attach loop b
                 ~on_frame:(fun c frame -> Conn.send c frame)
                 ~on_close:(fun _ _ -> closed := true)
                 ()));
        let msg = Bytes.of_string (Printf.sprintf "ping %d" round) in
        let wire = Omf_reactor.Frame.encode msg in
        let n = Unix.write a wire 0 (Bytes.length wire) in
        check int "request written" (Bytes.length wire) n;
        (* blocking read of the echoed frame *)
        let hdr = Bytes.create 4 in
        let rec really_read buf off len =
          if len > 0 then begin
            let n = Unix.read a buf off len in
            if n = 0 then Alcotest.fail "echo peer closed early";
            really_read buf (off + n) (len - n)
          end
        in
        really_read hdr 0 4;
        let body_len = Omf_reactor.Frame.read_header hdr 0 in
        let body = Bytes.create body_len in
        really_read body 0 body_len;
        check bool "echoed intact" true (Bytes.equal body msg);
        Unix.close a;
        (* wait for the loop to notice the close and deregister *)
        let rec settle tries =
          if on_loop loop (fun () -> Reactor.fd_count loop) > baseline then
            if tries = 0 then Alcotest.fail "conn registration leaked"
            else begin
              Thread.delay 0.01;
              settle (tries - 1)
            end
        in
        settle 200;
        check bool "on_close fired" true !closed
      done;
      let final = on_loop loop (fun () -> Reactor.fd_count loop) in
      check int "no registrations leaked over 25 churns" baseline final)

(* ------------------------------------------------------------------ *)
(* Wakeup under cross-thread load                                       *)
(* ------------------------------------------------------------------ *)

let test_inject_under_load () =
  with_loop (fun loop ->
      let total = 4 * 250 in
      let hits = ref 0 in
      (* many threads hammering inject concurrently; every thunk must
         run exactly once, on the loop thread *)
      let loop_thread_ok = ref true in
      let loop_tid = on_loop loop (fun () -> Thread.id (Thread.self ())) in
      let senders =
        List.init 4 (fun _ ->
            Thread.create
              (fun () ->
                for _ = 1 to 250 do
                  Reactor.inject loop (fun () ->
                      if Thread.id (Thread.self ()) <> loop_tid then
                        loop_thread_ok := false;
                      incr hits)
                done)
              ())
      in
      List.iter Thread.join senders;
      (* one more injection as a barrier: the queue is FIFO *)
      ignore (on_loop loop (fun () -> ()));
      check int "every injected thunk ran" total !hits;
      check bool "thunks ran on the loop thread" true !loop_thread_ok)

(* ------------------------------------------------------------------ *)
(* Conn deadlines                                                       *)
(* ------------------------------------------------------------------ *)

let test_conn_deadline () =
  with_loop (fun loop ->
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let mu = Mutex.create () in
      let reason = ref None in
      ignore
        (on_loop loop (fun () ->
             let c =
               Conn.attach loop b
                 ~on_frame:(fun _ _ -> ())
                 ~on_close:(fun _ r ->
                   Mutex.lock mu;
                   reason := Some r;
                   Mutex.unlock mu)
                 ()
             in
             Conn.set_deadline c ~reason:"idle timeout" (Some 0.05)));
      (* never write: the deadline must doom the conn *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec wait () =
        Mutex.lock mu;
        let r = !reason in
        Mutex.unlock mu;
        if r = None && Unix.gettimeofday () < deadline then begin
          Thread.delay 0.01;
          wait ()
        end
      in
      wait ();
      check bool "deadline closed the conn" true
        (!reason = Some "idle timeout");
      Unix.close a)

(* Chunks-mode reads borrow the reactor's scratch buffer: the slice
   handed to [on_chunk] is valid only inside the callback. The next
   read refills the same backing buffer, so a retained slice silently
   changes underneath — escaping the callback requires a copy
   ([Slice.to_bytes] / [to_string]), which is the documented
   contract. *)
let test_chunks_borrow_contract () =
  with_loop (fun loop ->
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let borrowed = ref None in
      let copies = ref [] in
      ignore
        (on_loop loop (fun () ->
             Conn.attach loop b ~mode:Conn.Chunks
               ~on_chunk:(fun _ chunk ->
                 if !borrowed = None then borrowed := Some chunk;
                 copies := Omf_util.Slice.to_string chunk :: !copies)
               ~on_close:(fun _ _ -> ())
               ()));
      let await what cond =
        let deadline = Unix.gettimeofday () +. 5.0 in
        while (not (cond ())) && Unix.gettimeofday () < deadline do
          Thread.delay 0.005
        done;
        if not (cond ()) then Alcotest.failf "timeout waiting for %s" what
      in
      ignore (Unix.write_substring a "AAAA" 0 4);
      await "first chunk" (fun () -> !borrowed <> None);
      let retained = Option.get !borrowed in
      check Alcotest.string "borrow still reads AAAA before the next read"
        "AAAA"
        (Omf_util.Slice.to_string retained);
      (* the first chunk was delivered, so this write lands in a fresh
         read that reuses the scratch buffer *)
      ignore (Unix.write_substring a "BBBB" 0 4);
      await "second chunk" (fun () -> List.length !copies >= 2);
      check
        (Alcotest.list Alcotest.string)
        "escaped copies are stable" [ "BBBB"; "AAAA" ] !copies;
      check Alcotest.string "retained borrow was overwritten" "BBBB"
        (Omf_util.Slice.to_string retained);
      Unix.close a)

let () =
  Alcotest.run "reactor"
    [ ( "wheel"
      , [ QCheck_alcotest.to_alcotest prop_wheel_order
        ; Alcotest.test_case "re-arming actions" `Quick test_wheel_reschedule
        ; Alcotest.test_case "lazy cancellation" `Quick
            test_wheel_cancel_counts ] )
    ; ( "conn"
      , [ Alcotest.test_case "fd churn leaks nothing" `Quick test_fd_churn
        ; Alcotest.test_case "deadline dooms idle conn" `Quick
            test_conn_deadline
        ; Alcotest.test_case "chunk slices borrow the scratch buffer"
            `Quick test_chunks_borrow_contract ] )
    ; ( "wakeup"
      , [ Alcotest.test_case "inject under cross-thread load" `Quick
            test_inject_under_load ] )
    ]
