(** Tests for binary journals: cross-ABI replay, descriptor embedding,
    mixed formats, format upgrades mid-file, corruption detection. *)

open Omf_machine
open Omf_pbio.Pbio
module Journal = Omf_journal.Journal
module Fx = Omf_fixtures.Paper_structs

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let value_testable =
  Alcotest.testable (fun ppf v -> Fmt.string ppf (Value.to_string v)) Value.equal

let with_tmp f =
  let path = Filename.temp_file "omf-journal" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let write_events path abi events =
  let reg = Registry.create abi in
  List.iter (fun d -> ignore (Registry.register reg d)) [ Fx.decl_a; Fx.decl_b ]
  |> ignore;
  let writer, close = Journal.Writer.to_file path in
  List.iter
    (fun (name, v) ->
      let fmt = Option.get (Registry.find reg name) in
      Journal.Writer.append_value writer abi fmt v)
    events;
  close ()

let read_all path abi =
  let reg = Registry.create abi in
  List.iter (fun d -> ignore (Registry.register reg d)) [ Fx.decl_a; Fx.decl_b ];
  let reader, close =
    Journal.Reader.of_file path reg (Memory.create abi)
  in
  Fun.protect ~finally:close (fun () ->
      List.rev (Journal.Reader.fold reader (fun acc ev -> ev :: acc) []))

let test_roundtrip_cross_abi () =
  with_tmp (fun path ->
      write_events path Abi.x86_64
        [ ("ASDOffEvent", Fx.value_a)
        ; ("ASDOffEventB", Fx.value_b)
        ; ("ASDOffEvent", Fx.value_a) ];
      (* replay on a big-endian 32-bit machine *)
      let events = read_all path Abi.sparc_32 in
      check int "three messages" 3 (List.length events);
      let fmt0, v0 = List.nth events 0 in
      check Alcotest.string "first format" "ASDOffEvent" fmt0.Format.name;
      check value_testable "payload survives the file + ABI change"
        (Value.String "ZTL-ARTCC-0004")
        (Value.field_exn v0 "cntrID");
      let fmt1, v1 = List.nth events 1 in
      check Alcotest.string "second format" "ASDOffEventB" fmt1.Format.name;
      check value_testable "array payload"
        (Value.Int 3L) (Value.field_exn v1 "eta_count"))

let test_descriptors_written_once () =
  with_tmp (fun path ->
      let abi = Abi.x86_64 in
      let reg = Registry.create abi in
      let fmt = Registry.register reg Fx.decl_a in
      let writer, close = Journal.Writer.to_file path in
      for _ = 1 to 10 do
        Journal.Writer.append_value writer abi fmt Fx.value_a
      done;
      close ();
      (* 1 descriptor + 10 messages *)
      check int "record count" 11
        (let reg2 = Registry.create abi in
         ignore (Registry.register reg2 Fx.decl_a);
         List.length (read_all path abi) + 1);
      check bool "writer counted the same" true
        (Journal.Writer.record_count writer = 11))

let test_format_upgrade_mid_file () =
  with_tmp (fun path ->
      let abi = Abi.x86_64 in
      let writer, close = Journal.Writer.to_file path in
      (* v1 events *)
      let reg1 = Registry.create abi in
      let fmt1 = Registry.register reg1 Fx.decl_a in
      Journal.Writer.append_value writer abi fmt1 Fx.value_a;
      (* upgraded format from a fresh registry: different descriptor *)
      let reg2 = Registry.create abi in
      let decl_v2 =
        { Fx.decl_a with
          Ftype.fields = Fx.decl_a.Ftype.fields @ [ Ftype.io_field "gate" "string" ] }
      in
      let fmt2 = Registry.register reg2 decl_v2 in
      Journal.Writer.append_value writer abi fmt2
        (Value.set_field Fx.value_a "gate" (Value.String "T7"));
      close ();
      (* a v2-aware reader sees both, the old event with a zero gate *)
      let reg = Registry.create Abi.sparc_32 in
      ignore (Registry.register reg decl_v2);
      let reader, rclose =
        Journal.Reader.of_file path reg (Memory.create Abi.sparc_32)
      in
      Fun.protect ~finally:rclose (fun () ->
          let events =
            List.rev (Journal.Reader.fold reader (fun acc ev -> ev :: acc) [])
          in
          check int "both events" 2 (List.length events);
          let _, v1 = List.nth events 0 in
          check value_testable "old event: empty gate" (Value.String "")
            (Value.field_exn v1 "gate");
          let _, v2 = List.nth events 1 in
          check value_testable "new event: gate present" (Value.String "T7")
            (Value.field_exn v2 "gate")))

let test_corruption_detected () =
  with_tmp (fun path ->
      write_events path Abi.x86_64 [ ("ASDOffEvent", Fx.value_a) ];
      (* truncate the file mid-record *)
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (size - 5);
      Unix.close fd;
      let reg = Registry.create Abi.x86_64 in
      ignore (Registry.register reg Fx.decl_a);
      let reader, close =
        Journal.Reader.of_file path reg (Memory.create Abi.x86_64)
      in
      Fun.protect ~finally:close (fun () ->
          try
            ignore (Journal.Reader.fold reader (fun acc _ -> acc) ());
            Alcotest.fail "expected Journal_error"
          with Journal.Journal_error _ -> ()))

let expect_journal_error ~substring f =
  try
    f ();
    Alcotest.fail "expected Journal_error"
  with Journal.Journal_error msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      nn = 0 || go 0
    in
    check bool (Printf.sprintf "error %S mentions %S" msg substring) true
      (contains msg substring)

let read_with_decl path =
  let reg = Registry.create Abi.x86_64 in
  ignore (Registry.register reg Fx.decl_a);
  let reader, close = Journal.Reader.of_file path reg (Memory.create Abi.x86_64) in
  Fun.protect ~finally:close (fun () ->
      ignore (Journal.Reader.fold reader (fun acc _ -> acc) ()))

let truncate_to path size =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd size;
  Unix.close fd

let test_torn_length_prefix () =
  (* A record whose u32 length prefix itself is cut short (a crash
     between the first and fourth prefix byte) is a torn tail, not a
     clean EOF: the reader must say so, with the offset. It used to be
     swallowed as end-of-journal. *)
  with_tmp (fun path ->
      write_events path Abi.x86_64 [ ("ASDOffEvent", Fx.value_a) ];
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "\x00\x00";
      close_out oc;
      expect_journal_error ~substring:"length prefix at byte" (fun () ->
          read_with_decl path))

let test_truncation_offset_reported () =
  with_tmp (fun path ->
      write_events path Abi.x86_64 [ ("ASDOffEvent", Fx.value_a) ];
      let size = (Unix.stat path).Unix.st_size in
      truncate_to path (size - 5);
      expect_journal_error ~substring:"mid-record at byte" (fun () ->
          read_with_decl path))

let test_unknown_kind_offset () =
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "OMFJRNL1";
      (* one record: len=3, kind 'X' (unknown), body "ab" *)
      output_string oc "\x00\x00\x00\x03Xab";
      close_out oc;
      expect_journal_error ~substring:"kind 'X' at byte 8" (fun () ->
          read_with_decl path))

let test_garbage_descriptor_payload () =
  (* A descriptor record whose payload is noise must surface as a
     Journal_error naming the offset, not a random decoder exception. *)
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "OMFJRNL1";
      let payload = "not a descriptor at all \x01\x02\x03" in
      let len = 1 + String.length payload in
      output_char oc (Char.chr ((len lsr 24) land 0xFF));
      output_char oc (Char.chr ((len lsr 16) land 0xFF));
      output_char oc (Char.chr ((len lsr 8) land 0xFF));
      output_char oc (Char.chr (len land 0xFF));
      output_char oc 'D';
      output_string oc payload;
      close_out oc;
      expect_journal_error ~substring:"at byte 8" (fun () ->
          read_with_decl path))

let test_bad_magic_detected () =
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "NOTAJRNL and then some bytes";
      close_out oc;
      let reg = Registry.create Abi.x86_64 in
      try
        ignore (Journal.Reader.of_file path reg (Memory.create Abi.x86_64));
        Alcotest.fail "expected Journal_error"
      with Journal.Journal_error _ -> ())

let test_empty_journal () =
  with_tmp (fun path ->
      let writer, close = Journal.Writer.to_file path in
      ignore writer;
      close ();
      check int "no events" 0 (List.length (read_all path Abi.x86_64)))

let test_large_journal () =
  with_tmp (fun path ->
      let abi = Abi.x86_64 in
      let reg = Registry.create abi in
      let fmt = Registry.register reg Fx.decl_b in
      let mem = Memory.create abi in
      let addr = Omf_pbio.Native.store mem fmt Fx.value_b in
      let writer, close = Journal.Writer.to_file path in
      let n = 2000 in
      for _ = 1 to n do
        Journal.Writer.append writer mem fmt addr
      done;
      close ();
      let events = read_all path Abi.power_64 in
      check int "all events replayed" n (List.length events))

let prop_journal_roundtrip =
  QCheck.Test.make ~name:"journal replay preserves values (random formats)"
    ~count:100
    (QCheck.make
       (QCheck.Gen.pair (Omf_testkit.Gen.format_and_value ())
          Omf_testkit.Gen.abi))
    (fun ((writer_abi, fmt, v), reader_abi) ->
      with_tmp (fun path ->
          let mem = Memory.create writer_abi in
          let addr = Omf_pbio.Native.store mem fmt v in
          let sent = Omf_pbio.Native.load mem fmt addr in
          let writer, close = Journal.Writer.to_file path in
          Journal.Writer.append writer mem fmt addr;
          Journal.Writer.append writer mem fmt addr;
          close ();
          let reg = Registry.create reader_abi in
          ignore (Registry.register reg fmt.Format.decl);
          let reader, rclose =
            Journal.Reader.of_file path reg (Memory.create reader_abi)
          in
          Fun.protect ~finally:rclose (fun () ->
              let events =
                List.rev
                  (Journal.Reader.fold reader (fun acc ev -> ev :: acc) [])
              in
              List.length events = 2
              && List.for_all (fun (_, got) -> Value.equal sent got) events)))

let () =
  Alcotest.run "journal"
    [ ( "journal",
        [ Alcotest.test_case "cross-ABI replay" `Quick test_roundtrip_cross_abi
        ; Alcotest.test_case "descriptors written once" `Quick
            test_descriptors_written_once
        ; Alcotest.test_case "format upgrade mid-file" `Quick
            test_format_upgrade_mid_file
        ; Alcotest.test_case "corruption detected" `Quick test_corruption_detected
        ; Alcotest.test_case "torn length prefix detected" `Quick
            test_torn_length_prefix
        ; Alcotest.test_case "truncation reports byte offset" `Quick
            test_truncation_offset_reported
        ; Alcotest.test_case "unknown kind reports byte offset" `Quick
            test_unknown_kind_offset
        ; Alcotest.test_case "garbage descriptor wrapped with offset" `Quick
            test_garbage_descriptor_payload
        ; Alcotest.test_case "bad magic detected" `Quick test_bad_magic_detected
        ; Alcotest.test_case "empty journal" `Quick test_empty_journal
        ; Alcotest.test_case "large journal" `Quick test_large_journal ]
        @ [ QCheck_alcotest.to_alcotest prop_journal_roundtrip ] ) ]
