(** Tests for the versioned schema registry (doc/REGISTRY.md):
    fingerprint-idempotent registration, compatibility gating with
    structured diffs, journal-backed recovery across restarts, the
    binary and HTTP JSON surfaces, the caching resolver, and async
    discovery overlapping first-message delivery with the registry
    fetch (zero loss). *)

open Omf_machine
open Omf_pbio.Pbio
open Omf_transport
module Registry = Omf_registry.Registry
module Store = Omf_store.Store
module Http = Omf_httpd.Http
module Relay = Omf_relay.Relay
module Discovery = Omf_xml2wire.Discovery
module Catalog = Omf_xml2wire.Catalog
module Fx = Omf_fixtures.Paper_structs

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let replace = Omf_testkit.Strings.replace

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1))
  in
  go 0

let with_root f =
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "omf-registry-%d-%d" (Unix.getpid ())
         (Random.int 1000000))
  in
  let rec rm path =
    match (Unix.lstat path).Unix.st_kind with
    | Unix.S_DIR ->
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Sys.remove path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  Fun.protect ~finally:(fun () -> rm root) (fun () -> f root)

(* schema_a with one additive field: a backward-safe upgrade *)
let schema_v2 =
  replace
    ~sub:{|<xsd:element name="eta" type="xsd:unsigned-long" />|}
    ~by:
      {|<xsd:element name="eta" type="xsd:unsigned-long" />
    <xsd:element name="gate" type="xsd:string" />|}
    Fx.schema_a

(* schema_a with a field removed: rejected by the backward gate *)
let schema_removed =
  replace
    ~sub:{|    <xsd:element name="equip" type="xsd:string" />
|}
    ~by:"" Fx.schema_a

(* same structure as schema_a, different documentation text: must
   canonicalize to the same fingerprint *)
let schema_reworded =
  replace ~sub:"<xsd:documentation>ASDOff</xsd:documentation>"
    ~by:"<xsd:documentation>ASDOff, reworded docs</xsd:documentation>"
    Fx.schema_a

(* ------------------------------------------------------------------ *)
(* Fingerprints and idempotent registration                             *)
(* ------------------------------------------------------------------ *)

let test_idempotent_registration () =
  let reg = Registry.create () in
  let v1 = Registry.register reg ~subject:"flights" Fx.schema_a in
  check int "first registration is version 1" 1 v1.Registry.version;
  check string "fingerprint is the canonical digest"
    (Registry.fingerprint_of Fx.schema_a)
    v1.Registry.fingerprint;
  (* same structure, different prose: same fingerprint, same version *)
  check string "documentation does not change the fingerprint"
    v1.Registry.fingerprint
    (Registry.fingerprint_of schema_reworded);
  let again = Registry.register reg ~subject:"flights" schema_reworded in
  check int "re-registration is idempotent" 1 again.Registry.version;
  check int "chain did not grow" 1
    (List.length (Registry.versions reg "flights"));
  (* a genuinely new structure appends *)
  let v2 = Registry.register reg ~subject:"flights" schema_v2 in
  check int "additive upgrade becomes version 2" 2 v2.Registry.version;
  check bool "fingerprints differ" true
    (not (String.equal v1.Registry.fingerprint v2.Registry.fingerprint));
  (* chains are per subject *)
  let other = Registry.register reg ~subject:"weather" Fx.schema_a in
  check int "fresh subject starts at 1" 1 other.Registry.version;
  check bool "content addressing finds the first home" true
    (Registry.by_fingerprint reg v1.Registry.fingerprint <> None);
  let stats = Registry.stats reg in
  check bool "idempotent hits counted" true
    (Option.value ~default:0 (List.assoc_opt "register_idempotent" stats) >= 1);
  Registry.close reg

(* ------------------------------------------------------------------ *)
(* Compatibility gating                                                 *)
(* ------------------------------------------------------------------ *)

let test_backward_gate_rejects_removal () =
  let reg = Registry.create () in
  (* default mode is Backward *)
  ignore (Registry.register reg ~subject:"flights" Fx.schema_a);
  (match Registry.register reg ~subject:"flights" schema_removed with
  | _ -> Alcotest.fail "expected Incompatible"
  | exception Registry.Incompatible { subject; mode; reports } ->
    check string "refusal names the subject" "flights" subject;
    check bool "refusal names the mode" true (mode = Registry.Backward);
    let lines = Registry.diff_lines reports in
    check bool "structured diff present" true (lines <> []);
    check bool "diff names the removed field" true
      (List.exists (fun l -> contains l "equip") lines));
  check int "refused registration did not append" 1
    (List.length (Registry.versions reg "flights"));
  (* the same document passes once the subject is gated forward-only *)
  Registry.set_mode reg ~subject:"flights" Registry.Forward;
  let v = Registry.register reg ~subject:"flights" schema_removed in
  check int "removal is fine under the forward gate" 2 v.Registry.version;
  (* and No_check accepts even a retype *)
  let retyped =
    replace
      ~sub:{|<xsd:element name="fltNum" type="xsd:integer" />|}
      ~by:{|<xsd:element name="fltNum" type="xsd:string" />|}
      Fx.schema_a
  in
  Registry.set_mode reg ~subject:"flights" Registry.No_check;
  check int "no_check accepts a retype" 3
    (Registry.register reg ~subject:"flights" retyped).Registry.version;
  let stats = Registry.stats reg in
  check bool "rejections counted" true
    (Option.value ~default:0 (List.assoc_opt "register_rejected" stats) >= 1);
  Registry.close reg

(* ------------------------------------------------------------------ *)
(* Journal-backed recovery                                              *)
(* ------------------------------------------------------------------ *)

let test_recovery_across_restart () =
  with_root (fun root ->
      let cfg = Store.default_config ~root in
      let reg = Registry.create ~store:cfg () in
      let v1 = Registry.register reg ~subject:"flights" Fx.schema_a in
      let v2 = Registry.register reg ~subject:"flights" schema_v2 in
      Registry.set_mode reg ~subject:"weather" Registry.No_check;
      ignore (Registry.register reg ~subject:"weather" Fx.schema_b);
      Registry.close reg;
      (* reopen the same root: everything must come back *)
      let reg = Registry.create ~store:cfg () in
      check
        Alcotest.(list string)
        "subjects recovered"
        [ "flights"; "weather" ]
        (Registry.subjects reg);
      check int "chain recovered" 2
        (List.length (Registry.versions reg "flights"));
      let latest = Option.get (Registry.latest reg "flights") in
      check int "latest version" 2 latest.Registry.version;
      check string "fingerprint stable across restart"
        v2.Registry.fingerprint latest.Registry.fingerprint;
      check string "schema text verbatim" schema_v2 latest.Registry.schema;
      check bool "per-subject mode override recovered" true
        (Registry.mode reg ~subject:"weather" = Registry.No_check);
      check bool "content addressing recovered" true
        (Registry.by_fingerprint reg v1.Registry.fingerprint <> None);
      (* idempotency holds across the restart *)
      check int "re-registering the latest is idempotent" 2
        (Registry.register reg ~subject:"flights" schema_v2).Registry.version;
      check int "chain did not grow" 2
        (List.length (Registry.versions reg "flights"));
      (* and the gate still stands on recovered state *)
      (match Registry.register reg ~subject:"flights" schema_removed with
      | _ -> Alcotest.fail "expected Incompatible after recovery"
      | exception Registry.Incompatible _ -> ());
      Registry.close reg)

(* ------------------------------------------------------------------ *)
(* Binary protocol + HTTP JSON surfaces                                 *)
(* ------------------------------------------------------------------ *)

let test_server_roundtrip () =
  let reg = Registry.create () in
  let srv = Registry.Server.start ~port:0 ~http_port:0 reg in
  Fun.protect ~finally:(fun () -> Registry.Server.shutdown srv) @@ fun () ->
  let port = Registry.Server.port srv in
  let hport = Option.get (Registry.Server.http_port srv) in
  let c = Registry.Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Registry.Client.close c) @@ fun () ->
  let v, fp = Registry.Client.register c ~subject:"flights" Fx.schema_a in
  check int "registered v1 over the wire" 1 v;
  check string "wire fingerprint" (Registry.fingerprint_of Fx.schema_a) fp;
  (* a gate refusal carries the diff lines over the wire *)
  (match Registry.Client.register c ~subject:"flights" schema_removed with
  | _ -> Alcotest.fail "expected Rejected"
  | exception Registry.Client.Rejected msg ->
    check bool "refusal carries the diff" true (contains msg "equip"));
  let got = Option.get (Registry.Client.get c ~subject:"flights" `Latest) in
  check string "schema round-trips" Fx.schema_a got.Registry.schema;
  let byfp = Option.get (Registry.Client.by_fingerprint c fp) in
  check int "content-addressed fetch" 1 byfp.Registry.version;
  check bool "unknown version is None" true
    (Registry.Client.get c ~subject:"flights" (`N 9) = None);
  (match Registry.Client.subjects c with
  | [ (s, n, m) ] ->
    check string "listed subject" "flights" s;
    check int "listed versions" 1 n;
    check string "listed mode" "backward" m
  | l -> Alcotest.failf "unexpected subject list (%d entries)" (List.length l));
  check bool "server counters visible" true
    (Registry.Client.stats c <> []);
  (* the HTTP JSON surface over the same registry *)
  let r = Http.request ~port:hport ~meth:"GET" ~path:"/subjects" () in
  check int "GET /subjects" 200 r.Http.status;
  check bool "subjects listed as JSON" true (contains r.Http.body "\"flights\"");
  let r =
    Http.request ~port:hport ~meth:"POST" ~path:"/subjects/flights/versions"
      ~body:schema_v2 ()
  in
  check int "POST register is 201" 201 r.Http.status;
  check bool "POST returns the version" true
    (contains r.Http.body "\"version\":2");
  let r =
    Http.request ~port:hport ~meth:"POST" ~path:"/subjects/flights/versions"
      ~body:schema_removed ()
  in
  check int "gate refusal is 409" 409 r.Http.status;
  check bool "409 body carries the diff" true (contains r.Http.body "equip");
  let r =
    Http.request ~port:hport ~meth:"POST" ~path:"/subjects/flights/versions"
      ~body:"<not-a-schema>" ()
  in
  check int "malformed schema is 400" 400 r.Http.status;
  let r =
    Http.request ~port:hport ~meth:"GET" ~path:"/subjects/flights/versions/latest"
      ()
  in
  check int "GET latest" 200 r.Http.status;
  check bool "latest carries its fingerprint" true
    (contains r.Http.body (Registry.fingerprint_of schema_v2));
  let r = Http.request ~port:hport ~meth:"GET" ~path:("/schemas/ids/" ^ fp) () in
  check int "GET /schemas/ids/<fp>" 200 r.Http.status;
  check bool "fingerprint lookup names the subject" true
    (contains r.Http.body "\"flights\"");
  let r =
    Http.request ~port:hport ~meth:"GET" ~path:"/subjects/none/versions/latest"
      ()
  in
  check int "unknown subject is 404" 404 r.Http.status

(* ------------------------------------------------------------------ *)
(* Caching resolver                                                     *)
(* ------------------------------------------------------------------ *)

let assoc key stats = Option.value ~default:0 (List.assoc_opt key stats)

let test_resolver_caching () =
  let reg = Registry.create () in
  let srv = Registry.Server.start ~port:0 reg in
  Fun.protect ~finally:(fun () -> Registry.Server.shutdown srv) @@ fun () ->
  let c = Registry.Client.connect ~port:(Registry.Server.port srv) () in
  Fun.protect ~finally:(fun () -> Registry.Client.close c) @@ fun () ->
  let r = Registry.Resolver.create ~neg_ttl_s:0.05 c in
  check bool "miss before registration" true
    (Registry.Resolver.resolve r ~subject:"flights" `Latest = None);
  check bool "miss is negatively cached" true
    (Registry.Resolver.resolve r ~subject:"flights" `Latest = None);
  check bool "negative hit counted" true
    (assoc "negative_hits" (Registry.Resolver.stats r) >= 1);
  ignore (Registry.Client.register c ~subject:"flights" Fx.schema_a);
  Thread.delay 0.08;
  (* the negative entry expired *)
  let v =
    Option.get (Registry.Resolver.resolve r ~subject:"flights" `Latest)
  in
  check int "resolves to version 1" 1 v.Registry.version;
  (* positive entries are immutable: (subject, N) hits never refetch *)
  let hits0 = assoc "hits" (Registry.Resolver.stats r) in
  ignore (Registry.Resolver.resolve r ~subject:"flights" (`N 1));
  ignore (Registry.Resolver.resolve r ~subject:"flights" (`N 1));
  check bool "pinned-version resolves hit the cache" true
    (assoc "hits" (Registry.Resolver.stats r) >= hits0 + 2);
  check bool "fingerprint resolves from the cache" true
    (Registry.Resolver.resolve_fingerprint r v.Registry.fingerprint <> None);
  (* prefetch warms the cache from a background thread *)
  Registry.Resolver.prefetch r ~subject:"flights" (`N 1);
  check bool "prefetch counted" true
    (assoc "prefetches" (Registry.Resolver.stats r) >= 1);
  (* the discovery source plugs the resolver into a fallback chain *)
  let catalog = Catalog.create Abi.x86_64 in
  let outcome =
    Discovery.discover catalog
      [ Registry.discovery_source r ~subject:"flights" () ]
  in
  check string "discovery origin is the registry" "registry" outcome.Discovery.origin;
  check bool "formats registered" true (outcome.Discovery.formats <> [])

(* ------------------------------------------------------------------ *)
(* Async discovery overlapping first-message delivery                   *)
(* ------------------------------------------------------------------ *)

(* A subscriber connects to the relay and starts buffering raw frames
   immediately, while its schema fetch from the registry is still in
   flight (gated on a condition variable we control); once the fetch
   lands, every buffered frame decodes — the first message arrived
   before the fetch completed, and nothing was lost. *)
let test_async_discovery_zero_loss () =
  let reg = Registry.create () in
  let rsrv = Registry.Server.start ~port:0 reg in
  Fun.protect ~finally:(fun () -> Registry.Server.shutdown rsrv) @@ fun () ->
  let rc = Registry.Client.connect ~port:(Registry.Server.port rsrv) () in
  Fun.protect ~finally:(fun () -> Registry.Client.close rc) @@ fun () ->
  let rv, fp = Registry.Client.register rc ~subject:"flights" Fx.schema_a in
  let resolver = Registry.Resolver.create rc in
  (* the relay side: a publisher advertising its registry binding *)
  let h = Relay.start () in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let pub = Relay.Client.connect ~port () in
  Relay.Client.advertise_meta pub ~subject:"flights" ~version:rv
    ~fingerprint:fp ~stream:"flights" ~schema:Fx.schema_a ();
  let plink = Relay.Client.publish pub ~stream:"flights" in
  let pcat = Catalog.create Abi.x86_64 in
  ignore (Omf_xml2wire.Xml2wire.register_schema pcat Fx.schema_a);
  let fmt = Option.get (Catalog.find_format pcat "ASDOffEvent") in
  let sender = Endpoint.Sender.create plink (Memory.create Abi.x86_64) in
  (* the subscriber: stream advertisement carries subject@version +
     fingerprint, so it knows what to ask the registry for *)
  let sub = Relay.Client.connect ~port () in
  let meta, _schema, slink = Relay.Client.subscribe_meta sub ~stream:"flights" in
  check bool "advertisement carries the subject" true
    (List.assoc_opt "subject" meta = Some "flights");
  check bool "advertisement carries the version" true
    (List.assoc_opt "version" meta = Some (string_of_int rv));
  check bool "advertisement carries the fingerprint" true
    (List.assoc_opt "fingerprint" meta = Some fp);
  (* the registry fetch, gated so it cannot complete until released *)
  let gate = Mutex.create () in
  let cv = Condition.create () in
  let released = ref false in
  let subject = Option.get (List.assoc_opt "subject" meta) in
  let gated_source =
    Discovery.from_fetcher ~label:("registry:" ^ subject) (fun () ->
        Mutex.lock gate;
        while not !released do
          Condition.wait cv gate
        done;
        Mutex.unlock gate;
        match Registry.Resolver.resolve resolver ~subject `Latest with
        | Some v -> v.Registry.schema
        | None -> failwith "subject not registered")
  in
  let catalog = Catalog.create Abi.sparc_32 in
  let async = Discovery.discover_async catalog [ gated_source ] in
  (* publish while the fetch is parked; buffer the raw frames *)
  let n = 5 in
  let event seq =
    match Fx.value_a with
    | Value.Record fields ->
      Value.Record
        (List.map
           (fun (k, v) ->
             if String.equal k "fltNum" then (k, Value.Int (Int64.of_int seq))
             else (k, v))
           fields)
    | _ -> assert false
  in
  for seq = 0 to n - 1 do
    Endpoint.Sender.send_value sender fmt (event seq)
  done;
  let buffered = ref [] in
  let messages = ref 0 in
  while !messages < n do
    match Link.recv slink with
    | None -> Alcotest.fail "relay closed the stream"
    | Some frame ->
      buffered := frame :: !buffered;
      if
        Bytes.length frame > 0
        && Char.equal (Bytes.get frame 0) Endpoint.frame_message
      then incr messages
  done;
  let buffered = List.rev !buffered in
  (* the acceptance point: all n messages are in hand while the
     registry fetch is still in flight *)
  check bool "messages received before the fetch completed" true
    (Discovery.poll async = None);
  Mutex.lock gate;
  released := true;
  Condition.broadcast cv;
  Mutex.unlock gate;
  let outcome = Discovery.await async in
  check string "fetch came from the registry" "registry"
    outcome.Discovery.origin;
  (* now decode the buffer: zero loss, in order *)
  let q = ref buffered in
  let replay_link =
    { Link.send = (fun _ -> ())
    ; recv =
        (fun () ->
          match !q with
          | [] -> None
          | f :: rest ->
            q := rest;
            Some f)
    ; close = (fun () -> ()) }
  in
  let receiver =
    Endpoint.Receiver.create replay_link
      (Catalog.registry catalog)
      (Memory.create Abi.sparc_32)
  in
  let seq_of v =
    match Value.field_exn v "fltNum" with
    | Value.Int i -> Int64.to_int i
    | _ -> -1
  in
  for expect = 0 to n - 1 do
    match Endpoint.Receiver.recv_value receiver with
    | Some (f, v) ->
      check string "decoded format" "ASDOffEvent" f.Format.name;
      check int "in order, zero loss" expect (seq_of v)
    | None -> Alcotest.failf "lost message %d" expect
  done;
  check bool "buffer fully drained" true
    (Endpoint.Receiver.recv_value receiver = None);
  Relay.Client.close sub;
  Relay.Client.close pub

(* A re-triggered keyed discovery supersedes the in-flight one: the
   superseded async raises {!Discovery.Cancelled} immediately, and even
   when its (gated) fetch later lands it registers nothing and bumps no
   win counters — exactly one win is recorded for the stream. *)
let test_async_discovery_supersede_cancels () =
  let stats0 = Discovery.stats () in
  let delta key = assoc key (Discovery.stats ()) - assoc key stats0 in
  let wait ~what cond =
    let deadline = Unix.gettimeofday () +. 10.0 in
    while not (cond ()) && Unix.gettimeofday () < deadline do
      Thread.delay 0.005
    done;
    if not (cond ()) then Alcotest.failf "timeout waiting for %s" what
  in
  let gate = Mutex.create () in
  let cv = Condition.create () in
  let released = ref false in
  let entered = ref 0 in
  let exited = ref 0 in
  let gated_source () =
    Discovery.from_fetcher ~label:"registry:flights" (fun () ->
        Mutex.lock gate;
        incr entered;
        while not !released do
          Condition.wait cv gate
        done;
        Mutex.unlock gate;
        incr exited;
        Fx.schema_a)
  in
  let c1 = Catalog.create Abi.x86_64 in
  let a1 = Discovery.discover_async ~key:"flights" c1 [ gated_source () ] in
  (* make sure the first fetch is really parked inside the gate before
     the supersede, so its completion races the cancellation *)
  wait ~what:"first fetch in flight" (fun () -> !entered >= 1);
  let c2 = Catalog.create Abi.x86_64 in
  let a2 = Discovery.discover_async ~key:"flights" c2 [ gated_source () ] in
  (* the superseded discovery fails fast — before its fetch returns *)
  (match Discovery.await a1 with
  | _ -> Alcotest.fail "superseded discovery returned an outcome"
  | exception Discovery.Cancelled -> ());
  check int "supersede counted" 1 (delta "superseded");
  (* release both fetches: the live one registers and wins; the
     cancelled worker must drop its outcome on the floor *)
  Mutex.lock gate;
  released := true;
  Condition.broadcast cv;
  Mutex.unlock gate;
  let outcome = Discovery.await a2 in
  check string "live discovery won from the registry source" "registry"
    outcome.Discovery.origin;
  check bool "live catalog registered the format" true
    (Catalog.mem c2 "ASDOffEvent");
  (* both workers have returned from their fetches; give the cancelled
     one a beat to take its (non-)registration path *)
  wait ~what:"both fetches returned" (fun () -> !exited >= 2);
  Thread.delay 0.1;
  check bool "superseded catalog untouched" false (Catalog.mem c1 "ASDOffEvent");
  check int "exactly one win counted (no double-count)" 1
    (delta "source_registry");
  check int "cancellation counted" 1 (delta "cancelled");
  (* cancelling a completed discovery is a no-op *)
  Discovery.cancel a2;
  check bool "completed outcome survives a late cancel" true
    (Discovery.await a2 == outcome
     || (Discovery.await a2).Discovery.source = outcome.Discovery.source)

(* ------------------------------------------------------------------ *)

let () =
  Random.self_init ();
  Alcotest.run "registry"
    [ ( "registry"
      , [ Alcotest.test_case "fingerprint-idempotent registration" `Quick
            test_idempotent_registration
        ; Alcotest.test_case "backward gate rejects removal" `Quick
            test_backward_gate_rejects_removal
        ; Alcotest.test_case "journal-backed recovery" `Quick
            test_recovery_across_restart ] )
    ; ( "server"
      , [ Alcotest.test_case "binary + HTTP JSON round-trip" `Quick
            test_server_roundtrip ] )
    ; ( "resolver"
      , [ Alcotest.test_case "caching resolver" `Quick test_resolver_caching ]
      )
    ; ( "async"
      , [ Alcotest.test_case "async discovery: zero loss" `Quick
            test_async_discovery_zero_loss
        ; Alcotest.test_case "keyed supersede cancels in-flight discovery"
            `Quick test_async_discovery_supersede_cancels ] ) ]
