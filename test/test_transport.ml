(** Tests for the transport layer: loopback, the deterministic netsim
    link, the format-negotiation endpoint protocol, and real TCP. *)

open Omf_machine
open Omf_pbio.Pbio
open Omf_transport
module Fx = Omf_fixtures.Paper_structs

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let value_testable =
  Alcotest.testable (fun ppf v -> Fmt.string ppf (Value.to_string v)) Value.equal

(* ------------------------------------------------------------------ *)
(* Loopback                                                             *)
(* ------------------------------------------------------------------ *)

let test_loopback_fifo () =
  let a, b = Loopback.pair () in
  Link.send a (Bytes.of_string "one");
  Link.send a (Bytes.of_string "two");
  check Alcotest.string "fifo 1" "one" (Bytes.to_string (Link.recv_exn b));
  check Alcotest.string "fifo 2" "two" (Bytes.to_string (Link.recv_exn b));
  Link.send b (Bytes.of_string "back");
  check Alcotest.string "duplex" "back" (Bytes.to_string (Link.recv_exn a))

let test_loopback_close_semantics () =
  let a, b = Loopback.pair () in
  Link.send a (Bytes.of_string "last");
  Link.close a;
  check bool "queued data still readable" true
    (Link.recv b = Some (Bytes.of_string "last"));
  check bool "then end of stream" true (Link.recv b = None);
  try
    Link.send a (Bytes.of_string "x");
    Alcotest.fail "expected Closed"
  with Link.Closed -> ()

let test_loopback_would_block () =
  let _, b = Loopback.pair () in
  try
    ignore (Link.recv b);
    Alcotest.fail "expected Would_block"
  with Loopback.Would_block -> ()

let test_loopback_isolation () =
  (* sent buffers are copied: mutating after send must not corrupt *)
  let a, b = Loopback.pair () in
  let msg = Bytes.of_string "data" in
  Link.send a msg;
  Bytes.set msg 0 'X';
  check Alcotest.string "copy on send" "data" (Bytes.to_string (Link.recv_exn b))

(* ------------------------------------------------------------------ *)
(* Netsim                                                               *)
(* ------------------------------------------------------------------ *)

let test_netsim_latency_accounting () =
  let profile =
    { Netsim.propagation_us = 100.0; per_message_us = 5.0; bytes_per_us = 10.0 }
  in
  let a, b, clock, stats = Netsim.pair profile in
  Link.send a (Bytes.make 1000 'x');
  (* sender clock advances past serialisation: 5 + 100 us *)
  check (Alcotest.float 1e-9) "sender sees serialisation time" 105.0
    (Netsim.now clock);
  ignore (Link.recv_exn b);
  (* receiver additionally waits for propagation *)
  check (Alcotest.float 1e-9) "receiver sees arrival time" 205.0
    (Netsim.now clock);
  check int "stats messages" 1 stats.Netsim.messages;
  check int "stats bytes" 1000 stats.Netsim.bytes

let test_netsim_pipelining () =
  (* two back-to-back messages share the pipe: second is delayed by the
     first's serialisation, not by its propagation *)
  let profile =
    { Netsim.propagation_us = 1000.0; per_message_us = 0.0; bytes_per_us = 1.0 }
  in
  let a, b, clock, _ = Netsim.pair profile in
  Link.send a (Bytes.make 500 'x');
  Link.send a (Bytes.make 500 'y');
  ignore (Link.recv_exn b);
  ignore (Link.recv_exn b);
  (* serialisation: 500 + 500; second arrives at 1000 + 1000 *)
  check (Alcotest.float 1e-9) "pipelined arrival" 2000.0 (Netsim.now clock)

let test_netsim_transmit_time () =
  check (Alcotest.float 1e-9) "transmit time formula" 85.0
    (Netsim.transmit_time
       { Netsim.propagation_us = 9.0; per_message_us = 5.0; bytes_per_us = 10.0 }
       800)

let prop_netsim_monotone =
  QCheck.Test.make ~name:"netsim delivery order and clock monotonicity"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 1 30) (int_range 0 5000))
    (fun sizes ->
      let a, b, clock, stats =
        Netsim.pair
          { Netsim.propagation_us = 50.0; per_message_us = 2.0
          ; bytes_per_us = 10.0 }
      in
      List.iter (fun n -> Link.send a (Bytes.make n 'x')) sizes;
      let rec drain last times =
        match Link.recv b with
        | None -> List.rev times
        | Some msg ->
          let now = Netsim.now clock in
          if now < last then failwith "clock went backwards";
          drain now ((now, Bytes.length msg) :: times)
      in
      let times = drain 0.0 [] in
      (* all messages delivered, in order, with matching lengths *)
      List.length times = List.length sizes
      && List.for_all2 (fun (_, len) n -> len = n) times sizes
      && stats.Netsim.messages = List.length sizes
      && stats.Netsim.bytes = List.fold_left ( + ) 0 sizes)

let prop_netsim_latency_lower_bound =
  QCheck.Test.make ~name:"netsim: every delivery respects the physics"
    ~count:200
    QCheck.(pair (int_range 0 10000) (int_range 1 100))
    (fun (size, _) ->
      let profile =
        { Netsim.propagation_us = 75.0; per_message_us = 3.0
        ; bytes_per_us = 12.5 }
      in
      let a, b, clock, _ = Netsim.pair profile in
      Link.send a (Bytes.make size 'x');
      ignore (Link.recv_exn b);
      (* arrival >= serialisation + propagation, exactly for a lone msg *)
      let expect = Netsim.transmit_time profile size +. profile.Netsim.propagation_us in
      Float.abs (Netsim.now clock -. expect) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Endpoint protocol                                                    *)
(* ------------------------------------------------------------------ *)

let endpoint_pair sender_abi receiver_abi decl =
  let sreg = Registry.create sender_abi in
  let sfmt = Registry.register sreg decl in
  let rreg = Registry.create receiver_abi in
  ignore (Registry.register rreg decl);
  let a, b = Loopback.pair () in
  let sender = Endpoint.Sender.create a (Memory.create sender_abi) in
  let receiver =
    Endpoint.Receiver.create b rreg (Memory.create receiver_abi)
  in
  (sender, sfmt, receiver)

let test_endpoint_negotiation_automatic () =
  let sender, sfmt, receiver =
    endpoint_pair Abi.x86_64 Abi.sparc_32 Fx.decl_a
  in
  Endpoint.Sender.send_value sender sfmt Fx.value_a;
  match Endpoint.Receiver.recv_value receiver with
  | Some (fmt, v) ->
    check Alcotest.string "format name" "ASDOffEvent" fmt.Format.name;
    check value_testable "field survives" (Value.String "DELTA")
      (Value.field_exn v "arln")
  | None -> Alcotest.fail "no message"

let test_endpoint_descriptor_sent_once () =
  let sender, sfmt, receiver =
    endpoint_pair Abi.x86_64 Abi.x86_64 Fx.decl_a
  in
  let count = ref 0 in
  for _ = 1 to 10 do
    Endpoint.Sender.send_value sender sfmt Fx.value_a
  done;
  (* drain: 10 data messages; exactly one descriptor frame was prepended *)
  (try
     while Option.is_some (Endpoint.Receiver.recv_value receiver) do
       incr count
     done
   with Loopback.Would_block -> ());
  check int "ten data messages decoded" 10 !count

let test_endpoint_rejects_garbage_frame () =
  let reg = Registry.create Abi.x86_64 in
  let a, b = Loopback.pair () in
  let receiver = Endpoint.Receiver.create b reg (Memory.create Abi.x86_64) in
  Link.send a (Bytes.of_string "Zjunk");
  (try
     ignore (Endpoint.Receiver.recv receiver);
     Alcotest.fail "expected Protocol_error"
   with Endpoint.Protocol_error _ -> ());
  Link.send a (Bytes.of_string "");
  try
    ignore (Endpoint.Receiver.recv receiver);
    Alcotest.fail "expected Protocol_error (empty)"
  with Endpoint.Protocol_error _ -> ()

let test_endpoint_over_netsim () =
  (* the protocol is transport-agnostic: same flow over a netsim link *)
  let sreg = Registry.create Abi.x86_64 in
  let sfmt = Registry.register sreg Fx.decl_b in
  let rreg = Registry.create Abi.power_64 in
  ignore (Registry.register rreg Fx.decl_b);
  let a, b, clock, _ = Netsim.pair Netsim.lan_1999 in
  let sender = Endpoint.Sender.create a (Memory.create Abi.x86_64) in
  let receiver = Endpoint.Receiver.create b rreg (Memory.create Abi.power_64) in
  Endpoint.Sender.send_value sender sfmt Fx.value_b;
  (match Endpoint.Receiver.recv_value receiver with
  | Some (_, v) ->
    check value_testable "value over netsim"
      (Value.Uint 1579874834L)
      (match Value.field_exn v "eta" with
      | Value.Array a -> a.(0)
      | _ -> Value.Uint 0L)
  | None -> Alcotest.fail "no message");
  check bool "virtual time advanced" true (Netsim.now clock > 0.0)

(* ------------------------------------------------------------------ *)
(* TCP                                                                  *)
(* ------------------------------------------------------------------ *)

let test_tcp_roundtrip () =
  let received = ref None in
  let done_flag = ref false in
  let mu = Mutex.create () and cond = Condition.create () in
  let server =
    Tcp.serve ~port:0 (fun link ->
        let rreg = Registry.create Abi.sparc_32 in
        ignore (Registry.register rreg Fx.decl_a);
        let receiver =
          Endpoint.Receiver.create link rreg (Memory.create Abi.sparc_32)
        in
        let v = Endpoint.Receiver.recv_value receiver in
        Mutex.lock mu;
        received := v;
        done_flag := true;
        Condition.signal cond;
        Mutex.unlock mu)
  in
  let port = Tcp.server_port server in
  Fun.protect
    ~finally:(fun () -> Tcp.shutdown server)
    (fun () ->
      let link = Tcp.connect ~port () in
      let sreg = Registry.create Abi.x86_64 in
      let sfmt = Registry.register sreg Fx.decl_a in
      let sender = Endpoint.Sender.create link (Memory.create Abi.x86_64) in
      Endpoint.Sender.send_value sender sfmt Fx.value_a;
      Mutex.lock mu;
      while not !done_flag do
        Condition.wait cond mu
      done;
      Mutex.unlock mu;
      Link.close link;
      match !received with
      | Some (_, v) ->
        check value_testable "value over real TCP, cross-ABI"
          (Value.String "ZTL-ARTCC-0004")
          (Value.field_exn v "cntrID")
      | None -> Alcotest.fail "server saw nothing")

let test_tcp_connect_refused () =
  try
    ignore (Tcp.connect ~port:1 ());
    Alcotest.fail "expected Tcp_error"
  with Tcp.Tcp_error _ -> ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "transport"
    [ ( "loopback",
        [ Alcotest.test_case "fifo + duplex" `Quick test_loopback_fifo
        ; Alcotest.test_case "close semantics" `Quick test_loopback_close_semantics
        ; Alcotest.test_case "would-block" `Quick test_loopback_would_block
        ; Alcotest.test_case "buffer isolation" `Quick test_loopback_isolation ] )
    ; ( "netsim",
        [ Alcotest.test_case "latency accounting" `Quick
            test_netsim_latency_accounting
        ; Alcotest.test_case "pipelining" `Quick test_netsim_pipelining
        ; Alcotest.test_case "transmit time" `Quick test_netsim_transmit_time ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_netsim_monotone; prop_netsim_latency_lower_bound ] )
    ; ( "endpoint",
        [ Alcotest.test_case "automatic negotiation" `Quick
            test_endpoint_negotiation_automatic
        ; Alcotest.test_case "descriptor sent once" `Quick
            test_endpoint_descriptor_sent_once
        ; Alcotest.test_case "garbage frames rejected" `Quick
            test_endpoint_rejects_garbage_frame
        ; Alcotest.test_case "works over netsim" `Quick test_endpoint_over_netsim ] )
    ; ( "tcp",
        [ Alcotest.test_case "cross-ABI over real sockets" `Quick test_tcp_roundtrip
        ; Alcotest.test_case "connection refused" `Quick test_tcp_connect_refused ] )
    ]
