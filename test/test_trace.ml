(** Tests for sampled end-to-end tracing (lib/trace, doc/TRACE.md,
    PROTOCOLS.md §17): the context codec, the head sampler, the
    fixed-capacity span ring, the slow-span always-record gate, the
    export formats, and the integration path — a traced publish
    session whose spans cover admission, store append, fan-out
    enqueue, socket flush and delivery on a live relay, then the same
    trace crossing a two-relay mirror chain and coming back out of
    [GET /trace/spans].

    Timing-sensitive (live relays, mirror rescans): runs under
    [dune build @trace] and the smoke alias, not tier-1 [runtest]. *)

open Omf_machine
open Omf_pbio.Pbio
open Omf_transport
module Relay = Omf_relay.Relay
module Trace = Omf_trace.Trace
module Mirror = Omf_mirror.Mirror
module Http = Omf_httpd.Http
module Fx = Omf_fixtures.Paper_structs
module Catalog = Omf_xml2wire.Catalog
module X2W = Omf_xml2wire.Xml2wire

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Context codec                                                        *)
(* ------------------------------------------------------------------ *)

let test_ctx_codec () =
  let ctx = Trace.make ~sampled:true () in
  let s = Trace.to_string ctx in
  check int "fixed width" 36 (String.length s);
  (match Trace.of_string s with
  | Some c ->
    check bool "trace id round-trips" true (Int64.equal c.trace_id ctx.trace_id);
    check bool "span id round-trips" true (Int64.equal c.span_id ctx.span_id);
    check bool "sampled round-trips" true c.sampled
  | None -> Alcotest.fail "own output did not parse");
  let unsampled = Trace.make ~sampled:false () in
  (match Trace.of_string (Trace.to_string unsampled) with
  | Some c -> check bool "unsampled flag round-trips" false c.sampled
  | None -> Alcotest.fail "unsampled ctx did not parse");
  let fresh = Trace.make ~sampled:true () in
  check bool "fresh contexts differ" false
    (Int64.equal ctx.trace_id fresh.trace_id);
  (* malformed inputs must parse to None, never raise *)
  List.iter
    (fun bad ->
      match Trace.of_string bad with
      | None -> ()
      | Some _ -> Alcotest.failf "parsed garbage %S" bad)
    [ ""
    ; "hello"
    ; "0123456789abcdef-0123456789abcdef"          (* no flags *)
    ; "0123456789abcdef:0123456789abcdef:01"       (* wrong separator *)
    ; "0123456789abcdeg-0123456789abcdef-01"       (* bad hex *)
    ; "0123456789abcdef-0123456789abcdef-01x"      (* trailing junk *)
    ; String.make 35 'z' ]

(* ------------------------------------------------------------------ *)
(* Sampler                                                              *)
(* ------------------------------------------------------------------ *)

let test_sampler_rate () =
  let always = Trace.collector (Trace.settings ~sample:1.0 ()) in
  for _ = 1 to 100 do
    if not (Trace.sample always) then Alcotest.fail "rate 1.0 said no"
  done;
  let never = Trace.collector (Trace.settings ~sample:0.0 ()) in
  for _ = 1 to 100 do
    if Trace.sample never then Alcotest.fail "rate 0.0 said yes"
  done;
  let half = Trace.collector (Trace.settings ~sample:0.5 ()) in
  let hits = ref 0 in
  let n = 4000 in
  for _ = 1 to n do
    if Trace.sample half then incr hits
  done;
  check bool "rate 0.5 lands near half" true
    (!hits > (2 * n) / 5 && !hits < (3 * n) / 5)

(* ------------------------------------------------------------------ *)
(* Span ring                                                            *)
(* ------------------------------------------------------------------ *)

let test_ring_capacity () =
  (* buffer is clamped to at least 16 *)
  let col = Trace.collector (Trace.settings ~sample:1.0 ~buffer:1 ()) in
  for i = 0 to 39 do
    Trace.record col ~trace:7L ~parent:1L ~stage:"s" ~stream:"x"
      ~start_us:(1000 + i) ~dur_us:i
  done;
  let spans = Trace.spans col in
  check int "ring holds the clamped capacity" 16 (List.length spans);
  check int "all recordings counted" 40 (Trace.recorded col);
  check int "wrap-around counted as dropped" 24 (Trace.dropped col);
  (* survivors are the newest, oldest first *)
  check (Alcotest.list int) "newest 16, oldest first"
    (List.init 16 (fun i -> 24 + i))
    (List.map (fun sp -> sp.Trace.sp_dur_us) spans);
  Trace.clear col;
  check int "clear empties the ring" 0 (List.length (Trace.spans col))

let test_slow_gate () =
  let col = Trace.collector (Trace.settings ~sample:0.0 ~slow_us:500 ()) in
  check bool "sampled records regardless of duration" true
    (Trace.should_record col ~sampled:true ~dur_us:0);
  check bool "unsampled fast span skipped" false
    (Trace.should_record col ~sampled:false ~dur_us:499);
  check bool "unsampled slow span always recorded" true
    (Trace.should_record col ~sampled:false ~dur_us:500);
  let off = Trace.collector (Trace.settings ~sample:0.0 ()) in
  check bool "slow_us 0 disables the slow path" false
    (Trace.should_record off ~sampled:false ~dur_us:max_int)

(* ------------------------------------------------------------------ *)
(* Export                                                               *)
(* ------------------------------------------------------------------ *)

let test_export_shapes () =
  let col = Trace.collector ~shard:3 (Trace.settings ~sample:1.0 ()) in
  (* durations 1..100 under one stage: nearest-rank percentiles are
     exactly the rank values *)
  for d = 1 to 100 do
    Trace.record col ~trace:0xabcL ~parent:2L ~stage:"store_append"
      ~stream:"flights" ~start_us:d ~dur_us:d
  done;
  Trace.record col ~trace:0xabcL ~parent:2L ~stage:"deliver" ~stream:"flights"
    ~start_us:200 ~dur_us:7;
  let spans = Trace.spans col in
  let json = Trace.chrome_json spans in
  check bool "complete events" true (contains json "\"ph\":\"X\"");
  check bool "shard becomes pid" true (contains json "\"pid\":3");
  check bool "stage named" true (contains json "\"name\":\"store_append\"");
  check bool "stream in args" true (contains json "\"stream\":\"flights\"");
  check bool "trace id in args" true
    (contains json (Trace.id_to_string 0xabcL));
  (match List.assoc_opt "store_append" (Trace.summary spans) with
  | Some (count, p50, p95, p99, mx) ->
    check int "count" 100 count;
    check int "p50" 50 p50;
    check int "p95" 95 p95;
    check int "p99" 99 p99;
    check int "max" 100 mx
  | None -> Alcotest.fail "summary lost a stage");
  let sj = Trace.summary_json spans in
  check bool "summary json keyed by stage" true (contains sj "\"deliver\"");
  check bool "summary json carries counts" true (contains sj "\"count\"");
  check string "empty span list is an empty object" "{}"
    (Trace.summary_json [])

(* ------------------------------------------------------------------ *)
(* Integration helpers (test_mirror idioms)                             *)
(* ------------------------------------------------------------------ *)

let with_root f =
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "omf-trace-%d-%d" (Unix.getpid ()) (Random.int 1000000))
  in
  let rec rm path =
    match (Unix.lstat path).Unix.st_kind with
    | Unix.S_DIR ->
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Sys.remove path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  Fun.protect ~finally:(fun () -> try rm root with _ -> ()) (fun () -> f root)

let store_cfg root =
  { (Relay.Store.default_config ~root) with fsync = Relay.Store.Interval 0.02 }

let event seq =
  match Fx.value_a with
  | Value.Record fields ->
    Value.Record
      (List.map
         (fun (k, v) ->
           if String.equal k "fltNum" then (k, Value.Int (Int64.of_int seq))
           else (k, v))
         fields)
  | _ -> assert false

let make_publisher ?trace ~port ~stream () =
  let client = Relay.Client.connect ~port () in
  Relay.Client.advertise_meta client ~stream ~schema:Fx.schema_a ();
  let link = Relay.Client.publish ?trace client ~stream in
  let catalog = Catalog.create Abi.x86_64 in
  ignore (X2W.register_schema catalog Fx.schema_a);
  let fmt = Option.get (Catalog.find_format catalog "ASDOffEvent") in
  let sender = Endpoint.Sender.create link (Memory.create Abi.x86_64) in
  (client, sender, fmt)

let publish sender fmt seq = Endpoint.Sender.send_value sender fmt (event seq)

let relay_stat ~port key =
  match Relay.Client.connect ~port () with
  | c ->
    let v =
      Option.value ~default:0 (List.assoc_opt key (Relay.Client.stats c))
    in
    Relay.Client.close c;
    v
  | exception Relay.Client.Error _ -> 0

let poll ?(deadline_s = 15.0) ~what (cond : unit -> bool) =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timeout waiting for %s" what
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

(* stages recorded for [trace_id] in [spans] *)
let stages_of ~trace_id spans =
  List.sort_uniq compare
    (List.filter_map
       (fun sp ->
         if Int64.equal sp.Trace.sp_trace trace_id then
           Some sp.Trace.sp_stage
         else None)
       spans)

let has_stages ~trace_id ~want spans =
  let got = stages_of ~trace_id spans in
  List.for_all (fun s -> List.mem s got) want

(* ------------------------------------------------------------------ *)
(* Single relay: a traced session covers the whole frame path           *)
(* ------------------------------------------------------------------ *)

let test_single_relay_stages () =
  with_root @@ fun root ->
  let h =
    Relay.start ~trace:(Trace.settings ~sample:0.0 ()) ~store:(store_cfg root)
      ()
  in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let ctx = Trace.make ~sampled:true () in
  let pub, sender, fmt =
    make_publisher ~trace:ctx ~port ~stream:"flights" ()
  in
  (* a live subscriber so fan-out, flush and delivery all happen *)
  let sc = Relay.Client.connect ~port () in
  let _schema, sub_link = Relay.Client.subscribe sc ~stream:"flights" in
  let n = 10 in
  for seq = 0 to n - 1 do
    publish sender fmt seq
  done;
  let seen = ref 0 in
  while !seen < n do
    match Link.recv sub_link with
    | Some f when Bytes.length f > 0 && Bytes.get f 0 = 'M' -> incr seen
    | Some _ -> ()
    | None -> Alcotest.fail "subscriber closed early"
  done;
  let want =
    [ "publish_admit"; "store_append"; "fanout_enqueue"; "flush"; "deliver" ]
  in
  poll ~what:"all five stages recorded" (fun () ->
      has_stages ~trace_id:ctx.Trace.trace_id ~want
        (Relay.trace_spans (Relay.relay h)));
  let spans = Relay.trace_spans (Relay.relay h) in
  (* every span hangs off the publisher's context *)
  List.iter
    (fun sp ->
      check bool "span belongs to the session trace" true
        (Int64.equal sp.Trace.sp_trace ctx.Trace.trace_id);
      check bool "parented on the minting hop" true
        (Int64.equal sp.Trace.sp_parent ctx.Trace.span_id);
      check string "stream recorded" "flights" sp.Trace.sp_stream)
    spans;
  (* per-stage histograms rode the counters: visible over STATS *)
  let stats = relay_stat ~port in
  check bool "stage histogram in merged stats" true
    (stats "hist.stage_us.publish_admit.count" >= n);
  (* DESCRIBE serves the session's context for late subscribers *)
  let c = Relay.Client.connect ~port () in
  let meta, _schema = Relay.Client.describe c ~stream:"flights" in
  (match Option.bind (List.assoc_opt "trace" meta) Trace.of_string with
  | Some served ->
    check bool "describe serves the publish context" true
      (Int64.equal served.Trace.trace_id ctx.Trace.trace_id)
  | None -> Alcotest.fail "describe did not serve trace= metadata");
  Relay.Client.close c;
  Relay.Client.close sc;
  Relay.Client.close pub

(* an untraced relay mints nothing and serves no trace metadata *)
let test_tracing_off_is_inert () =
  let h = Relay.start () in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let ctx = Trace.make ~sampled:true () in
  let pub, sender, fmt =
    make_publisher ~trace:ctx ~port ~stream:"flights" ()
  in
  for seq = 0 to 4 do
    publish sender fmt seq
  done;
  poll ~what:"frames relayed" (fun () ->
      relay_stat ~port "events_relayed" >= 5);
  check int "no spans without trace settings" 0
    (List.length (Relay.trace_spans (Relay.relay h)));
  let c = Relay.Client.connect ~port () in
  let meta, _schema = Relay.Client.describe c ~stream:"flights" in
  check bool "no trace= metadata either" true
    (List.assoc_opt "trace" meta = None);
  Relay.Client.close c;
  Relay.Client.close pub

(* relay-side head sampling: a publisher without a context gets one
   minted at the configured rate *)
let test_relay_head_sampling () =
  let h = Relay.start ~trace:(Trace.settings ~sample:1.0 ()) () in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let pub, sender, fmt = make_publisher ~port ~stream:"flights" () in
  for seq = 0 to 4 do
    publish sender fmt seq
  done;
  poll ~what:"relay-minted spans" (fun () ->
      Relay.trace_spans (Relay.relay h) <> []);
  let spans = Relay.trace_spans (Relay.relay h) in
  let ids =
    List.sort_uniq compare (List.map (fun sp -> sp.Trace.sp_trace) spans)
  in
  check int "one minted context for the session" 1 (List.length ids);
  Relay.Client.close pub

(* ------------------------------------------------------------------ *)
(* Session API: context injection and surfacing                         *)
(* ------------------------------------------------------------------ *)

let test_session_trace_handoff () =
  let h = Relay.start ~trace:(Trace.settings ~sample:0.0 ()) () in
  let port = Relay.port (Relay.relay h) in
  Fun.protect ~finally:(fun () -> Relay.stop h) @@ fun () ->
  let ctx = Trace.make ~sampled:true () in
  let cfg = Relay.Session.config ~port () in
  let p =
    Relay.Session.publisher ~trace:ctx cfg ~stream:"flights"
      ~schema:Fx.schema_a Abi.x86_64
  in
  Fun.protect ~finally:(fun () -> Relay.Session.close_publisher p)
  @@ fun () ->
  let s = Relay.Session.subscribe ~want_trace:true cfg ~stream:"flights"
      Abi.arm_32
  in
  Fun.protect ~finally:(fun () -> Relay.Session.close_subscriber s)
  @@ fun () ->
  (match Relay.Session.subscriber_trace s with
  | Some served ->
    check bool "subscriber sees the publisher's context" true
      (Int64.equal served.Trace.trace_id ctx.Trace.trace_id);
    check bool "sampled flag travels" true served.Trace.sampled
  | None -> Alcotest.fail "want_trace surfaced nothing");
  let fmt = Option.get (Relay.Session.publisher_format p "ASDOffEvent") in
  Relay.Session.publish_value p fmt (event 0);
  match Relay.Session.recv_subscriber s with
  | Some (_, v) ->
    check bool "event delivered on the traced stream" true
      (match Value.field_exn v "fltNum" with
      | Value.Int 0L -> true
      | _ -> false)
  | None -> Alcotest.fail "subscriber closed early"

(* ------------------------------------------------------------------ *)
(* Two relays: one trace crosses a mirror chain, served over HTTP       *)
(* ------------------------------------------------------------------ *)

let test_mirror_chain_trace () =
  with_root @@ fun root_a ->
  with_root @@ fun root_b ->
  let tset = Trace.settings ~sample:0.0 () in
  let ha = Relay.start ~trace:tset ~store:(store_cfg root_a) () in
  let port_a = Relay.port (Relay.relay ha) in
  Fun.protect ~finally:(fun () -> Relay.stop ha) @@ fun () ->
  let hb = Relay.start ~trace:tset ~store:(store_cfg root_b) () in
  let port_b = Relay.port (Relay.relay hb) in
  Fun.protect ~finally:(fun () -> Relay.stop hb) @@ fun () ->
  let id_b = Relay.relay_id (Relay.relay hb) in
  let ctx = Trace.make ~sampled:true () in
  let pub, sender, fmt =
    make_publisher ~trace:ctx ~port:port_a ~stream:"flights" ()
  in
  for seq = 0 to 4 do
    publish sender fmt seq
  done;
  poll ~what:"source stored the burst" (fun () ->
      relay_stat ~port:port_a "store.flights.tail" >= 5);
  let m =
    Mirror.start
      (Mirror.config ~rescan_s:0.05 ~io_timeout_s:0.25 ~max_attempts:3
         ~base_delay_s:0.02 ~max_delay_s:0.1 ~trace:tset
         ~source_host:"127.0.0.1" ~source_port:port_a ~local_port:port_b
         ~local_relay_id:id_b ())
  in
  Fun.protect ~finally:(fun () -> Mirror.stop m) @@ fun () ->
  poll ~what:"replica caught up" (fun () ->
      relay_stat ~port:port_b "store.flights.tail" >= 5);
  (* the replicated context is served by the replica's DESCRIBE *)
  let cb = Relay.Client.connect ~port:port_b () in
  let meta_b, _schema = Relay.Client.describe cb ~stream:"flights" in
  (match Option.bind (List.assoc_opt "trace" meta_b) Trace.of_string with
  | Some served ->
    check bool "replica serves the origin's context" true
      (Int64.equal served.Trace.trace_id ctx.Trace.trace_id)
  | None -> Alcotest.fail "replica describe lost the trace context");
  (* live consumer on the replica, then a second traced burst from the
     source: those frames cross relay A, the mirror link, relay B and
     the consumer socket under one trace id *)
  let _schema, sub_link = Relay.Client.subscribe cb ~stream:"flights" in
  for seq = 5 to 9 do
    publish sender fmt seq
  done;
  let seen = ref 0 in
  while !seen < 5 do
    match Link.recv sub_link with
    | Some f when Bytes.length f > 0 && Bytes.get f 0 = 'M' -> incr seen
    | Some _ -> ()
    | None -> Alcotest.fail "replica subscriber closed early"
  done;
  let all_spans () =
    Relay.trace_spans (Relay.relay ha)
    @ Relay.trace_spans (Relay.relay hb)
    @ Mirror.trace_spans m
  in
  let want =
    [ "publish_admit"; "store_append"; "fanout_enqueue"; "flush"; "deliver"
    ; "mirror_replicate" ]
  in
  poll ~what:"all stages across the chain" (fun () ->
      has_stages ~trace_id:ctx.Trace.trace_id ~want (all_spans ())
      && has_stages ~trace_id:ctx.Trace.trace_id
           ~want:[ "publish_admit"; "store_append" ]
           (Relay.trace_spans (Relay.relay hb)));
  (* the mirror's hop is tagged shard -1 *)
  List.iter
    (fun sp ->
      check int "mirror spans carry shard -1" (-1) sp.Trace.sp_shard;
      check string "mirror stage" "mirror_replicate" sp.Trace.sp_stage)
    (Mirror.trace_spans m);
  (* export the merged trace the way relayd does: /trace/spans and
     /trace/summary mounted beside /metrics *)
  let srv =
    Http.serve_metrics ~port:0
      ~routes:
        [ ( "/trace/spans"
          , fun () ->
              Http.ok ~content_type:"application/json"
                (Trace.chrome_json (all_spans ())) )
        ; ( "/trace/summary"
          , fun () ->
              Http.ok ~content_type:"application/json"
                (Trace.summary_json (all_spans ())) )
        ]
      []
  in
  Fun.protect ~finally:(fun () -> Http.shutdown srv) @@ fun () ->
  let body = Http.get ~port:(Http.port srv) ~path:"/trace/spans" () in
  check bool "spans export has the trace id" true
    (contains body (Trace.id_to_string ctx.Trace.trace_id));
  List.iter
    (fun stage ->
      check bool (stage ^ " exported") true
        (contains body (Printf.sprintf "\"name\":\"%s\"" stage)))
    want;
  check bool "mirror hop exported as pid -1" true (contains body "\"pid\":-1");
  let summary = Http.get ~port:(Http.port srv) ~path:"/trace/summary" () in
  check bool "summary keyed by stage" true (contains summary "store_append");
  (* /metrics still answers beside the trace routes *)
  let metrics = Http.get ~port:(Http.port srv) ~path:"/metrics" () in
  check bool "metrics endpoint intact" true (String.length metrics >= 0);
  Relay.Client.close cb;
  Relay.Client.close pub

let () =
  Random.self_init ();
  Alcotest.run "trace"
    [ ( "codec"
      , [ Alcotest.test_case "context round-trip and rejects" `Quick
            test_ctx_codec ] )
    ; ( "sampler"
      , [ Alcotest.test_case "head-sampling rates" `Quick test_sampler_rate ]
      )
    ; ( "ring"
      , [ Alcotest.test_case "capacity, wrap, clear" `Quick
            test_ring_capacity
        ; Alcotest.test_case "slow-span gate" `Quick test_slow_gate ] )
    ; ( "export"
      , [ Alcotest.test_case "chrome json and summary" `Quick
            test_export_shapes ] )
    ; ( "relay"
      , [ Alcotest.test_case "one session covers the frame path" `Quick
            test_single_relay_stages
        ; Alcotest.test_case "tracing off is inert" `Quick
            test_tracing_off_is_inert
        ; Alcotest.test_case "relay-side head sampling" `Quick
            test_relay_head_sampling
        ; Alcotest.test_case "session handoff via describe" `Quick
            test_session_trace_handoff ] )
    ; ( "mirror"
      , [ Alcotest.test_case "one trace crosses a mirror chain" `Quick
            test_mirror_chain_trace ] ) ]
