lib/transport/loopback.mli: Link
