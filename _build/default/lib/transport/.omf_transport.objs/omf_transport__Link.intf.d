lib/transport/link.mli:
