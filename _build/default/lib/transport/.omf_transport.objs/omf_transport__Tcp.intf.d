lib/transport/tcp.mli: Link Unix
