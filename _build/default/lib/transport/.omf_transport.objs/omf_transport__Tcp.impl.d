lib/transport/tcp.ml: Bytes Char Link Printf Thread Unix
