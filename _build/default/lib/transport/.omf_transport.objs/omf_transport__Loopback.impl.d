lib/transport/loopback.ml: Bytes Link Queue
