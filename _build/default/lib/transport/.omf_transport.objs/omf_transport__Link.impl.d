lib/transport/link.ml:
