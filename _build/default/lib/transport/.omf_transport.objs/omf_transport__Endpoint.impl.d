lib/transport/endpoint.ml: Bytes Char Format Format_codec Hashtbl Link Memory Native Omf_machine Omf_pbio Pbio Printf Value
