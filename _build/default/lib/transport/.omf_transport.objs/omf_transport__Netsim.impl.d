lib/transport/netsim.ml: Bytes Float Link Queue
