lib/transport/endpoint.mli: Format Link Memory Omf_machine Omf_pbio Pbio Value
