lib/transport/netsim.mli: Link
