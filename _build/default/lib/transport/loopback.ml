(** In-process duplex link: a pair of FIFO queues. Synchronous and
    single-threaded — [recv] returns [None] when the queue is empty and
    the peer has closed, and raises on an empty queue otherwise (callers
    in the simulation always alternate send/recv deterministically). *)

type side = {
  inbox : bytes Queue.t;
  outbox : bytes Queue.t;
  mutable peer_closed : bool ref;
  closed : bool ref;
}

exception Would_block
(** receive on an empty queue whose peer is still open *)

let link_of_side (s : side) : Link.t =
  { Link.send =
      (fun msg ->
        if !(s.closed) then raise Link.Closed;
        Queue.push (Bytes.copy msg) s.outbox)
  ; recv =
      (fun () ->
        if not (Queue.is_empty s.inbox) then Some (Queue.pop s.inbox)
        else if !(s.peer_closed) then None
        else raise Would_block)
  ; close = (fun () -> s.closed := true) }

(** [pair ()] creates the two ends of a loopback link. *)
let pair () : Link.t * Link.t =
  let q1 = Queue.create () and q2 = Queue.create () in
  let c1 = ref false and c2 = ref false in
  let a = { inbox = q1; outbox = q2; peer_closed = c2; closed = c1 } in
  let b = { inbox = q2; outbox = q1; peer_closed = c1; closed = c2 } in
  (link_of_side a, link_of_side b)
