(** Deterministic simulated network link for controlled latency
    experiments: each message is charged
    [per_message + bytes/bandwidth] serialisation plus [propagation] on a
    shared virtual clock; back-to-back messages queue behind each other
    on the sending half. Time unit: microseconds. *)

type clock

val clock : unit -> clock
val now : clock -> float
val advance_to : clock -> float -> unit

type profile = {
  propagation_us : float;  (** one-way latency *)
  per_message_us : float;  (** fixed per-message processing cost *)
  bytes_per_us : float;  (** bandwidth, e.g. 12.5 = 100 Mbit/s *)
}

val lan_1999 : profile
(** 100 Mbit/s LAN, 100 us one-way — paper-era hardware. *)

val wan : profile

type stats = {
  mutable messages : int;
  mutable bytes : int;
}

val transmit_time : profile -> int -> float
(** Serialisation cost of one message of the given length. *)

val pair : ?clock:clock -> profile -> Link.t * Link.t * clock * stats
(** A duplex link whose ends share a virtual clock; the stats record
    counts a→b traffic. *)
