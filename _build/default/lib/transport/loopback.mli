(** In-process duplex link: a pair of FIFO queues, deterministic and
    single-threaded. Sent buffers are copied. *)

exception Would_block
(** Receive on an empty queue whose peer is still open. *)

val pair : unit -> Link.t * Link.t
