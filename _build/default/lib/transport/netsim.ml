(** Deterministic simulated network link.

    The end-to-end latency experiment (E1) needs a *controlled* link: real
    loopback TCP jitter would drown the effects being measured. A netsim
    link charges each message a configurable cost on a virtual clock:

      arrival = max(now, link_free) + propagation
      where the link is busy for per_message + bytes/bandwidth

    Virtual time is in microseconds. The clock is shared by both ends of
    a link (and can be shared across links to model a whole system). *)

type clock = { mutable now_us : float }

let clock () = { now_us = 0.0 }
let now (c : clock) = c.now_us
let advance_to (c : clock) t = if t > c.now_us then c.now_us <- t

type profile = {
  propagation_us : float;  (** one-way latency *)
  per_message_us : float;  (** fixed per-message processing cost *)
  bytes_per_us : float;  (** bandwidth; e.g. 100.0 = 100 MB/s *)
}

(** A 100 Mbit/s LAN with 100 us one-way latency — paper-era hardware. *)
let lan_1999 =
  { propagation_us = 100.0; per_message_us = 5.0; bytes_per_us = 12.5 }

(** A wide-area path: 20 ms one-way, T3-ish bandwidth. *)
let wan =
  { propagation_us = 20_000.0; per_message_us = 20.0; bytes_per_us = 5.6 }

type stats = {
  mutable messages : int;
  mutable bytes : int;
}

type side = {
  clock : clock;
  profile : profile;
  inbox : (float * bytes) Queue.t;  (** (arrival time, message) *)
  outbox : (float * bytes) Queue.t;
  mutable out_free_at : float ref;  (** when our sending half is idle *)
  stats : stats;
}

(** [transmit_time profile len] is the serialisation cost of one message —
    exposed for analytical checks in tests. *)
let transmit_time (p : profile) (len : int) : float =
  p.per_message_us +. (float_of_int len /. p.bytes_per_us)

let link_of_side (s : side) : Link.t =
  { Link.send =
      (fun msg ->
        let start = Float.max s.clock.now_us !(s.out_free_at) in
        let busy_until = start +. transmit_time s.profile (Bytes.length msg) in
        s.out_free_at := busy_until;
        let arrival = busy_until +. s.profile.propagation_us in
        s.stats.messages <- s.stats.messages + 1;
        s.stats.bytes <- s.stats.bytes + Bytes.length msg;
        (* the sender's clock advances past its own serialisation work *)
        advance_to s.clock busy_until;
        Queue.push (arrival, Bytes.copy msg) s.outbox)
  ; recv =
      (fun () ->
        if Queue.is_empty s.inbox then None
        else begin
          let arrival, msg = Queue.pop s.inbox in
          (* receiving blocks (virtually) until the message has arrived *)
          advance_to s.clock arrival;
          Some msg
        end)
  ; close = (fun () -> ()) }

(** [pair ?clock profile] creates a duplex link whose two ends share a
    virtual [clock]. Returns [(end_a, end_b, clock, stats_a_to_b)]. *)
let pair ?clock:(c = clock ()) (profile : profile) :
    Link.t * Link.t * clock * stats =
  let q1 = Queue.create () and q2 = Queue.create () in
  let free_a = ref 0.0 and free_b = ref 0.0 in
  let stats_ab = { messages = 0; bytes = 0 } in
  let stats_ba = { messages = 0; bytes = 0 } in
  let a =
    { clock = c; profile; inbox = q1; outbox = q2; out_free_at = free_a
    ; stats = stats_ab }
  in
  let b =
    { clock = c; profile; inbox = q2; outbox = q1; out_free_at = free_b
    ; stats = stats_ba }
  in
  (link_of_side a, link_of_side b, c, stats_ab)
