(** Endpoints: PBIO format negotiation over any {!Link.t}. A sender
    announces each format once per connection (descriptor frame) before
    its first data message; per-message metadata is then just the 4-byte
    format id in the NDR header. *)

open Omf_machine
open Omf_pbio

exception Protocol_error of string

val frame_descriptor : char
val frame_message : char

module Sender : sig
  type t

  val create : Link.t -> Memory.t -> t
  val memory : t -> Memory.t

  val announce : t -> Format.t -> unit
  (** Idempotent per connection. *)

  val send : t -> Format.t -> int -> unit
  (** Negotiate if needed, then ship the struct at the address in NDR. *)

  val send_value : t -> Format.t -> Value.t -> unit
end

module Receiver : sig
  type t

  val create :
    ?mode:Pbio.Receiver.mode -> Link.t -> Format.Registry.t -> Memory.t -> t

  val pbio_receiver : t -> Pbio.Receiver.t

  val recv : t -> (Format.t * int) option
  (** Process frames until a data message arrives (descriptor frames are
      ingested transparently); [None] when the link closes. *)

  val recv_value : t -> (Format.t * Value.t) option
end
