(** Endpoints: PBIO format negotiation over any {!Link.t}.

    The wire protocol has two frame kinds. A sender announces each format
    once per connection before its first use (frame [D] carrying the
    {!Omf_pbio.Format_codec} descriptor); data messages (frame [M]) then
    carry only the compact NDR framing. This is the "efficiently
    represented meta-information" of the paper: per-message metadata cost
    is a 4-byte format id, not a re-transmitted description. *)

open Omf_machine
open Omf_pbio

exception Protocol_error of string

let proto_error fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let frame_descriptor = 'D'
let frame_message = 'M'

let frame kind body =
  let b = Bytes.create (1 + Bytes.length body) in
  Bytes.set b 0 kind;
  Bytes.blit body 0 b 1 (Bytes.length body);
  b

(* ------------------------------------------------------------------ *)
(* Sending endpoint                                                     *)
(* ------------------------------------------------------------------ *)

module Sender = struct
  type t = {
    link : Link.t;
    mem : Memory.t;
    announced : (int, unit) Hashtbl.t;  (** format ids already negotiated *)
  }

  let create (link : Link.t) (mem : Memory.t) : t =
    { link; mem; announced = Hashtbl.create 8 }

  let memory t = t.mem

  let announce t (fmt : Format.t) =
    if not (Hashtbl.mem t.announced fmt.Format.id) then begin
      Link.send t.link
        (frame frame_descriptor (Bytes.of_string (Format_codec.encode fmt)));
      Hashtbl.replace t.announced fmt.Format.id ()
    end

  (** [send t fmt addr] negotiates [fmt] if needed and ships the struct at
      [addr] in NDR. *)
  let send (t : t) (fmt : Format.t) (addr : int) : unit =
    announce t fmt;
    Link.send t.link (frame frame_message (Pbio.message t.mem fmt addr))

  (** [send_value t fmt v] binds [v] into the endpoint's memory first. *)
  let send_value (t : t) (fmt : Format.t) (v : Value.t) : unit =
    send t fmt (Native.store t.mem fmt v)
end

(* ------------------------------------------------------------------ *)
(* Receiving endpoint                                                   *)
(* ------------------------------------------------------------------ *)

module Receiver = struct
  type t = {
    link : Link.t;
    pbio : Pbio.Receiver.t;
  }

  let create ?mode (link : Link.t) (registry : Format.Registry.t)
      (mem : Memory.t) : t =
    { link; pbio = Pbio.Receiver.create ?mode registry mem }

  let pbio_receiver t = t.pbio

  (** [recv t] processes frames until a data message arrives (descriptor
      frames are ingested transparently). [None] when the link closes. *)
  let rec recv (t : t) : (Format.t * int) option =
    match Link.recv t.link with
    | None -> None
    | Some b ->
      if Bytes.length b < 1 then proto_error "empty frame";
      let body () = Bytes.sub b 1 (Bytes.length b - 1) in
      let kind = Bytes.get b 0 in
      if Char.equal kind frame_descriptor then begin
        ignore (Pbio.Receiver.learn t.pbio (Bytes.to_string (body ())));
        recv t
      end
      else if Char.equal kind frame_message then
        Some (Pbio.Receiver.receive t.pbio (body ()))
      else proto_error "unknown frame kind %C" kind

  let recv_value (t : t) : (Format.t * Value.t) option =
    match recv t with
    | None -> None
    | Some (fmt, addr) ->
      Some (fmt, Native.load (Pbio.Receiver.memory t.pbio) fmt addr)
end
