(** XDR (RFC 1014) codec: the "commercial platform" baseline.

    XDR defines a single canonical wire format — big-endian, 4-byte basic
    units — and *both* sides convert: the sender translates its native
    bytes into the canonical form, the receiver translates the canonical
    form into its native bytes. NDR's claim to beat "XDR-based data
    representations" by >= 50% rests on skipping the sender half entirely
    and most of the receiver half between like machines, so this codec
    deliberately performs the classic work, memory image to memory image.

    Era-faithful type mapping (RFC 1014, pre-"hyper" extensions used only
    for [long long]):
    - char, short, int, long -> 4-byte big-endian (values must fit; C
      longs were 32-bit on the paper's platforms);
    - long long               -> 8-byte big-endian;
    - float / double          -> IEEE 4 / 8 bytes big-endian;
    - string                  -> u32 length + bytes + pad to 4;
    - char[N]                 -> opaque: N bytes + pad to 4;
    - T[N]                    -> N elements in sequence;
    - T[count_field]          -> u32 count + elements (the separate C
      control field is also encoded where declared, as a plain int).

    Unlike NDR, XDR-style stubs assume both parties compiled the same
    interface definition: there is no per-message format negotiation and
    no tolerance for format evolution. *)

open Omf_machine
open Omf_pbio

exception Xdr_error of string

let xdr_error fmt = Printf.ksprintf (fun s -> raise (Xdr_error s)) fmt

let unit_of_prim = function
  | Abi.Longlong | Abi.Ulonglong -> 8
  | Abi.Char | Abi.Uchar | Abi.Short | Abi.Ushort | Abi.Int | Abi.Uint
  | Abi.Long | Abi.Ulong ->
    4
  | Abi.Float -> 4
  | Abi.Double -> 8
  | Abi.Pointer -> 4

let pad4 n = (n + 3) land lnot 3

(* ------------------------------------------------------------------ *)
(* Encoding (sender-side conversion)                                    *)
(* ------------------------------------------------------------------ *)

let emit_u32 buf v =
  let b = Bytes.create 4 in
  Endian.write_uint Endian.Big b ~off:0 ~size:4 v;
  Buffer.add_bytes buf b

let emit_uint buf ~size v =
  let b = Bytes.create size in
  Endian.write_uint Endian.Big b ~off:0 ~size v;
  Buffer.add_bytes buf b

let emit_pad buf n =
  for _ = 1 to pad4 n - n do
    Buffer.add_char buf '\000'
  done

let emit_string buf s =
  emit_u32 buf (Int64.of_int (String.length s));
  Buffer.add_string buf s;
  emit_pad buf (String.length s)

let read_count mem (fmt : Format.t) addr control =
  match Format.find_field fmt control with
  | Some cf ->
    Int64.to_int
      (Memory.read_int mem
         (addr + cf.Format.rf_layout.Layout.offset)
         ~size:cf.Format.rf_layout.Layout.elem_size)
  | None -> assert false

let rec encode_record buf mem (fmt : Format.t) addr =
  List.iter
    (fun (f : Format.rfield) ->
      let slot = addr + f.Format.rf_layout.Layout.offset in
      let elem_size = f.Format.rf_layout.Layout.elem_size in
      let emit_scalar slot =
        match f.Format.rf_elem with
        | Format.Rint { prim; signed } ->
          let v =
            if signed then Memory.read_int mem slot ~size:elem_size
            else Memory.read_uint mem slot ~size:elem_size
          in
          emit_uint buf ~size:(unit_of_prim prim) v
        | Format.Rfloat prim ->
          let v = Memory.read_float mem slot ~size:elem_size in
          let size = unit_of_prim prim in
          let b = Bytes.create size in
          Endian.write_float Endian.Big b ~off:0 ~size v;
          Buffer.add_bytes buf b
        | Format.Rchar -> emit_uint buf ~size:4 (Memory.read_uint mem slot ~size:1)
        | Format.Rstring ->
          let ptr = Memory.read_pointer mem slot in
          emit_string buf
            (if ptr = Memory.null then "" else Memory.read_cstring mem ptr)
        | Format.Rnested nested -> encode_record buf mem nested slot
      in
      match (f.Format.rf_dim, f.Format.rf_elem) with
      | Format.Rscalar, _ -> emit_scalar slot
      | Format.Rfixed n, Format.Rchar ->
        (* opaque fixed *)
        Buffer.add_bytes buf (Memory.read_bytes mem slot n);
        emit_pad buf n
      | Format.Rfixed n, _ ->
        for i = 0 to n - 1 do
          emit_scalar (slot + (i * elem_size))
        done
      | Format.Rvar control, _ ->
        let count = read_count mem fmt addr control in
        emit_u32 buf (Int64.of_int count);
        let ptr = Memory.read_pointer mem slot in
        if count > 0 && ptr = Memory.null then
          xdr_error "format %s: %S count %d with null data" fmt.Format.name
            f.Format.rf_name count;
        (match f.Format.rf_elem with
        | Format.Rchar ->
          if count > 0 then
            Buffer.add_bytes buf (Memory.read_bytes mem ptr count);
          emit_pad buf count
        | _ ->
          for i = 0 to count - 1 do
            emit_scalar (ptr + (i * elem_size))
          done))
    fmt.Format.fields

(** [encode mem fmt addr] converts the native struct at [addr] to XDR. *)
let encode (mem : Memory.t) (fmt : Format.t) (addr : int) : bytes =
  let buf = Buffer.create (Format.struct_size fmt * 2) in
  encode_record buf mem fmt addr;
  Buffer.to_bytes buf

(* ------------------------------------------------------------------ *)
(* Decoding (receiver-side conversion)                                  *)
(* ------------------------------------------------------------------ *)

type cursor = { data : bytes; mutable pos : int }

let need c n =
  if c.pos + n > Bytes.length c.data then
    xdr_error "XDR data truncated at %d (+%d of %d)" c.pos n (Bytes.length c.data)

let take_uint c ~size =
  need c size;
  let v = Endian.read_uint Endian.Big c.data ~off:c.pos ~size in
  c.pos <- c.pos + size;
  v

let take_int c ~size =
  need c size;
  let v = Endian.read_int Endian.Big c.data ~off:c.pos ~size in
  c.pos <- c.pos + size;
  v

let take_float c ~size =
  need c size;
  let v = Endian.read_float Endian.Big c.data ~off:c.pos ~size in
  c.pos <- c.pos + size;
  v

let take_bytes c n =
  need c n;
  let b = Bytes.sub c.data c.pos n in
  c.pos <- c.pos + n;
  b

let skip_pad c n =
  let p = pad4 n - n in
  need c p;
  c.pos <- c.pos + p

let take_string c =
  let n = Int64.to_int (take_uint c ~size:4) in
  if n < 0 || n > Bytes.length c.data then xdr_error "bad string length %d" n;
  let s = Bytes.to_string (take_bytes c n) in
  skip_pad c n;
  s

let rec decode_record c mem (fmt : Format.t) addr =
  List.iter
    (fun (f : Format.rfield) ->
      let slot = addr + f.Format.rf_layout.Layout.offset in
      let elem_size = f.Format.rf_layout.Layout.elem_size in
      let take_scalar slot =
        match f.Format.rf_elem with
        | Format.Rint { prim; signed } ->
          let size = unit_of_prim prim in
          let v = if signed then take_int c ~size else take_uint c ~size in
          Memory.write_int mem slot ~size:elem_size v
        | Format.Rfloat prim ->
          Memory.write_float mem slot ~size:elem_size
            (take_float c ~size:(unit_of_prim prim))
        | Format.Rchar -> Memory.write_uint mem slot ~size:1 (take_uint c ~size:4)
        | Format.Rstring ->
          Memory.write_pointer mem slot (Memory.alloc_cstring mem (take_string c))
        | Format.Rnested nested -> decode_record c mem nested slot
      in
      match (f.Format.rf_dim, f.Format.rf_elem) with
      | Format.Rscalar, _ -> take_scalar slot
      | Format.Rfixed n, Format.Rchar ->
        Memory.write_bytes mem slot (take_bytes c n);
        skip_pad c n
      | Format.Rfixed n, _ ->
        for i = 0 to n - 1 do
          take_scalar (slot + (i * elem_size))
        done
      | Format.Rvar _, _ -> (
        let count = Int64.to_int (take_uint c ~size:4) in
        if count < 0 || count > Bytes.length c.data then
          xdr_error "bad array count %d" count;
        if count = 0 then Memory.write_pointer mem slot Memory.null
        else
          match f.Format.rf_elem with
          | Format.Rchar ->
            let block = Memory.alloc mem ~align:1 count in
            Memory.write_bytes mem block (take_bytes c count);
            skip_pad c count;
            Memory.write_pointer mem slot block
          | _ ->
            let align =
              match f.Format.rf_elem with
              | Format.Rint { prim; _ } | Format.Rfloat prim ->
                Abi.align_of (Memory.abi mem) prim
              | Format.Rnested nested -> nested.Format.layout.Layout.struct_align
              | Format.Rstring -> Abi.align_of (Memory.abi mem) Abi.Pointer
              | Format.Rchar -> 1
            in
            let block = Memory.alloc mem ~align (count * elem_size) in
            Memory.write_pointer mem slot block;
            for i = 0 to count - 1 do
              take_scalar (block + (i * elem_size))
            done))
    fmt.Format.fields

(** [decode fmt mem data] parses XDR [data] (produced from the *same
    interface declaration* — classic stub assumption) into a fresh native
    struct in [mem], returning its address. *)
let decode (fmt : Format.t) (mem : Memory.t) (data : bytes) : int =
  let c = { data; pos = 0 } in
  let addr =
    Memory.alloc mem
      ~align:fmt.Format.layout.Layout.struct_align
      (max (Format.struct_size fmt) 1)
  in
  decode_record c mem fmt addr;
  if c.pos <> Bytes.length data then
    xdr_error "trailing bytes: consumed %d of %d" c.pos (Bytes.length data);
  addr

(* ---- value-level conveniences (tests, examples) ---- *)

let encode_value (abi : Abi.t) (fmt : Format.t) (v : Value.t) : bytes =
  let mem = Memory.create abi in
  encode mem fmt (Native.store mem fmt v)

let decode_value (abi : Abi.t) (fmt : Format.t) (data : bytes) : Value.t =
  let mem = Memory.create abi in
  Native.load mem fmt (decode fmt mem data)
