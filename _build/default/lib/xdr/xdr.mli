(** XDR (RFC 1014) codec: the "commercial platform" baseline. Both sides
    convert: the sender translates native bytes into the canonical
    big-endian 4-byte-unit form, the receiver translates back. Assumes
    both parties compiled the same interface declaration (classic stub
    model): no negotiation, no format evolution.

    Era-faithful mapping: char/short/int/long → 4-byte big-endian;
    long long → 8; float/double → IEEE 4/8; string → u32 length + bytes +
    pad4; char[N] → opaque fixed; T[count] → u32 count + elements. *)

open Omf_machine
open Omf_pbio

exception Xdr_error of string

val encode : Memory.t -> Format.t -> int -> bytes
(** Sender-side conversion: native struct → canonical XDR. *)

val decode : Format.t -> Memory.t -> bytes -> int
(** Receiver-side conversion: parse XDR into a fresh native struct;
    returns its address. Raises {!Xdr_error} on truncated, oversized or
    trailing data. *)

val encode_value : Abi.t -> Format.t -> Value.t -> bytes
val decode_value : Abi.t -> Format.t -> bytes -> Value.t
