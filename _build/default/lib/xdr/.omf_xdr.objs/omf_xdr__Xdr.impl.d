lib/xdr/xdr.ml: Abi Buffer Bytes Endian Format Int64 Layout List Memory Native Omf_machine Omf_pbio Printf String Value
