lib/xdr/xdr.mli: Abi Format Memory Omf_machine Omf_pbio Value
