(** Instance validation and message classification: "schema-checking
    tools applicable to live messages", usable "to determine which of a
    set of structure definitions a message most closely fits"
    (section 4.1.1). *)

type problem = {
  path : string;  (** slash-separated element path *)
  reason : string;
}

val simple_type_ok : Schema.simple_type -> string -> (unit, string) result
(** Check instance text against a simpleType restriction (base lexical
    validity, enumeration, min/maxInclusive). *)

val validate : Schema.t -> type_name:string -> Omf_xml.Doc.element -> problem list
(** Check an instance element against the named complexType: occurrence
    bounds, content lexical checks, unexpected elements. Empty = valid. *)

val is_valid : Schema.t -> type_name:string -> Omf_xml.Doc.element -> bool

val classify : Schema.t -> Omf_xml.Doc.element -> (string * int) list
(** Score the element against every type; [(name, problem count)] pairs,
    best match first. *)

val best_match : Schema.t -> Omf_xml.Doc.element -> string option
(** The first cleanly validating type, if any. *)

val pp_problem : Stdlib.Format.formatter -> problem -> unit
