(** Render a {!Schema.t} back to an XML Schema document — the inverse
    direction ("wire2xml"): publish formats a process already holds as
    open metadata for others to discover. *)

val to_document : Schema.t -> Omf_xml.Doc.t

val to_string : Schema.t -> string
(** Compact, round-trip-safe rendering. *)

val to_pretty_string : Schema.t -> string
(** Indented rendering for human consumption. *)
