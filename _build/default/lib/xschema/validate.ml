(** Instance validation and message classification.

    The paper (section 4.1.1) notes that representing message structure in
    XML Schema makes "schema-checking tools applicable to live messages",
    usable "to determine which of a set of structure definitions a message
    most closely fits". This module provides both: validate an instance
    document against a complexType, and classify a document against all
    the types of a schema. *)

open Omf_xml

type problem = {
  path : string;  (** slash-separated element path *)
  reason : string;
}

let problem path fmt = Printf.ksprintf (fun reason -> { path; reason }) fmt

let is_integer_text s =
  match Int64.of_string_opt (String.trim s) with Some _ -> true | None -> false

let is_number_text s =
  match float_of_string_opt (String.trim s) with Some _ -> true | None -> false

let builtin_ok (b : Schema.builtin) (text : string) : bool =
  match b with
  | Schema.B_string -> true
  | Schema.B_boolean -> (
    match String.trim text with
    | "0" | "1" | "true" | "false" -> true
    | _ -> false)
  | Schema.B_float | Schema.B_double -> is_number_text text
  | Schema.B_byte | Schema.B_unsigned_byte | Schema.B_short
  | Schema.B_unsigned_short | Schema.B_int | Schema.B_unsigned_int
  | Schema.B_long | Schema.B_unsigned_long ->
    is_integer_text text

(** Check instance text against a simpleType restriction. *)
let simple_type_ok (st : Schema.simple_type) (text : string) :
    (unit, string) result =
  let text = String.trim text in
  if not (builtin_ok st.Schema.st_base text) then
    Error
      (Printf.sprintf "%S is not a valid %s (base of %s)" text
         (Schema.builtin_name st.Schema.st_base)
         st.Schema.st_name)
  else if
    st.Schema.st_enumeration <> []
    && not (List.mem text st.Schema.st_enumeration)
  then
    Error
      (Printf.sprintf "%S is not one of the enumerated values of %s" text
         st.Schema.st_name)
  else
    let numeric_check bound cmp label =
      match bound with
      | None -> Ok ()
      | Some b -> (
        match float_of_string_opt text with
        | Some v when cmp v b -> Ok ()
        | Some v ->
          Error
            (Printf.sprintf "%g violates %s of %s (%g)" v label
               st.Schema.st_name b)
        | None -> Ok () (* base check already decides lexical validity *))
    in
    match numeric_check st.Schema.st_min_inclusive (fun v b -> v >= b) "minInclusive" with
    | Error _ as e -> e
    | Ok () ->
      numeric_check st.Schema.st_max_inclusive (fun v b -> v <= b) "maxInclusive"

(** Expected occurrence interval for an element declaration. *)
let occurs_interval (e : Schema.element) : int * int option =
  match e.Schema.max_occurs with
  | None -> (1, Some 1)
  | Some (Schema.Bounded n) -> (min e.Schema.min_occurs n, Some n)
  | Some Schema.Unbounded | Some (Schema.Counted_by _) ->
    (e.Schema.min_occurs, None)

let rec check_type (schema : Schema.t) (ct : Schema.complex_type) path
    (el : Doc.element) (problems : problem list) : problem list =
  (* occurrence counts per declared element *)
  let problems =
    List.fold_left
      (fun problems (decl : Schema.element) ->
        let children = Doc.find_children el decl.Schema.el_name in
        let n = List.length children in
        let lo, hi = occurs_interval decl in
        let problems =
          if n < lo then
            problem path "element <%s> occurs %d times, expected at least %d"
              decl.Schema.el_name n lo
            :: problems
          else
            match hi with
            | Some h when n > h ->
              problem path "element <%s> occurs %d times, expected at most %d"
                decl.Schema.el_name n h
              :: problems
            | _ -> problems
        in
        (* content checks *)
        List.fold_left
          (fun problems child ->
            let cpath = path ^ "/" ^ decl.Schema.el_name in
            match decl.Schema.el_type with
            | Schema.Builtin b ->
              if builtin_ok b (Doc.text child) then problems
              else
                problem cpath "%S is not a valid %s" (Doc.text child)
                  (Schema.builtin_name b)
                :: problems
            | Schema.Defined name -> (
              match Schema.find_type schema name with
              | Some nested -> check_type schema nested cpath child problems
              | None -> (
                match Schema.find_simple_type schema name with
                | Some st -> (
                  match simple_type_ok st (Doc.text child) with
                  | Ok () -> problems
                  | Error reason -> { path = cpath; reason } :: problems)
                | None ->
                  problem cpath "references undefined type %S" name :: problems)))
          problems children)
      problems ct.Schema.ct_elements
  in
  (* unexpected children *)
  List.fold_left
    (fun problems child ->
      if
        List.exists
          (fun d -> String.equal d.Schema.el_name child.Doc.tag)
          ct.Schema.ct_elements
      then problems
      else problem path "unexpected element <%s>" child.Doc.tag :: problems)
    problems (Doc.child_elements el)

(** [validate schema ~type_name el] checks instance element [el] against
    the named complexType. Returns problems (empty = valid). *)
let validate (schema : Schema.t) ~(type_name : string) (el : Doc.element) :
    problem list =
  match Schema.find_type schema type_name with
  | None -> [ problem "" "schema has no complexType %S" type_name ]
  | Some ct -> List.rev (check_type schema ct ct.Schema.ct_name el [])

let is_valid schema ~type_name el = validate schema ~type_name el = []

(** [classify schema el] scores [el] against every complexType and
    returns [(type_name, problem_count)] pairs, best match first — the
    paper's "which of a set of structure definitions a message most
    closely fits". *)
let classify (schema : Schema.t) (el : Doc.element) :
    (string * int) list =
  Schema.(
    List.map
      (fun ct ->
        (ct.ct_name, List.length (validate schema ~type_name:ct.ct_name el)))
      schema.types)
  |> List.stable_sort (fun (_, a) (_, b) -> compare a b)

(** Best match, if any type validates cleanly. *)
let best_match (schema : Schema.t) (el : Doc.element) : string option =
  match classify schema el with
  | (name, 0) :: _ -> Some name
  | _ -> None

let pp_problem ppf p =
  if String.equal p.path "" then Fmt.string ppf p.reason
  else Fmt.pf ppf "%s: %s" p.path p.reason
