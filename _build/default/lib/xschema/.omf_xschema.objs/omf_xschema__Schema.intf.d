lib/xschema/schema.mli: Omf_xml
