lib/xschema/validate.mli: Omf_xml Schema Stdlib
