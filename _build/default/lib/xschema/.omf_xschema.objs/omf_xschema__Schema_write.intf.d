lib/xschema/schema_write.mli: Omf_xml Schema
