lib/xschema/schema.ml: Doc Hashtbl List Ns Omf_xml Option Parse Printexc Printf String
