lib/xschema/schema_write.ml: Doc List Omf_xml Printf Schema Write
