lib/xschema/validate.ml: Doc Fmt Int64 List Omf_xml Printf Schema String
