(** Render a {!Schema.t} back to an XML Schema document — the inverse
    direction ("wire2xml"): a process can publish the formats it already
    holds as open metadata for others to discover. *)

open Omf_xml

let xsd = "xsd"

let name_of_type_ref = function
  | Schema.Builtin b -> xsd ^ ":" ^ Schema.builtin_name b
  | Schema.Defined n -> n

let element_to_xml (e : Schema.element) : Doc.element =
  let attrs =
    [ ("name", e.Schema.el_name); ("type", name_of_type_ref e.Schema.el_type) ]
  in
  let attrs =
    match e.Schema.max_occurs with
    | None -> attrs
    | Some m ->
      let max_str =
        match m with
        | Schema.Bounded n -> string_of_int n
        | Schema.Unbounded -> "*"
        | Schema.Counted_by control -> control
      in
      attrs
      @ [ ("minOccurs", string_of_int e.Schema.min_occurs)
        ; ("maxOccurs", max_str) ]
  in
  Doc.element ~attrs (xsd ^ ":element")

let complex_type_to_xml (ct : Schema.complex_type) : Doc.element =
  let doc_nodes =
    match ct.Schema.ct_documentation with
    | None -> []
    | Some text ->
      [ Doc.Element
          (Doc.element
             ~children:
               [ Doc.Element
                   (Doc.element ~children:[ Doc.Text text ]
                      (xsd ^ ":documentation")) ]
             (xsd ^ ":annotation")) ]
  in
  Doc.element
    ~attrs:[ ("name", ct.Schema.ct_name) ]
    ~children:
      (doc_nodes
      @ List.map (fun e -> Doc.Element (element_to_xml e)) ct.Schema.ct_elements)
    (xsd ^ ":complexType")

let simple_type_to_xml (st : Schema.simple_type) : Doc.element =
  let facets =
    List.map
      (fun v ->
        Doc.Element
          (Doc.element ~attrs:[ ("value", v) ] (xsd ^ ":enumeration")))
      st.Schema.st_enumeration
    @ (match st.Schema.st_min_inclusive with
      | None -> []
      | Some v ->
        [ Doc.Element
            (Doc.element
               ~attrs:[ ("value", Printf.sprintf "%g" v) ]
               (xsd ^ ":minInclusive")) ])
    @
    match st.Schema.st_max_inclusive with
    | None -> []
    | Some v ->
      [ Doc.Element
          (Doc.element
             ~attrs:[ ("value", Printf.sprintf "%g" v) ]
             (xsd ^ ":maxInclusive")) ]
  in
  Doc.element
    ~attrs:[ ("name", st.Schema.st_name) ]
    ~children:
      [ Doc.Element
          (Doc.element
             ~attrs:
               [ ("base", xsd ^ ":" ^ Schema.builtin_name st.Schema.st_base) ]
             ~children:facets
             (xsd ^ ":restriction")) ]
    (xsd ^ ":simpleType")

let to_document (t : Schema.t) : Doc.t =
  let attrs =
    [ ("xmlns:" ^ xsd, List.hd Schema.schema_namespaces) ]
    @
    match t.Schema.target_namespace with
    | None -> []
    | Some ns -> [ ("targetNamespace", ns) ]
  in
  let doc_nodes =
    match t.Schema.documentation with
    | None -> []
    | Some text ->
      [ Doc.Element
          (Doc.element
             ~children:
               [ Doc.Element
                   (Doc.element ~children:[ Doc.Text text ]
                      (xsd ^ ":documentation")) ]
             (xsd ^ ":annotation")) ]
  in
  { Doc.decl = [ ("version", "1.0") ]
  ; root =
      Doc.element ~attrs
        ~children:
          (doc_nodes
          @ List.map
              (fun st -> Doc.Element (simple_type_to_xml st))
              t.Schema.simple_types
          @ List.map (fun ct -> Doc.Element (complex_type_to_xml ct)) t.Schema.types)
        (xsd ^ ":schema") }

let to_string (t : Schema.t) : string =
  Write.document_to_string (to_document t)

(** Indented rendering for human consumption (CLI tool, metaserver UI). *)
let to_pretty_string (t : Schema.t) : string =
  "<?xml version=\"1.0\"?>\n" ^ Write.pretty (to_document t).Doc.root
