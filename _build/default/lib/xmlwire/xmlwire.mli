(** XML as a wire format (XML-RPC style): the text baseline the paper
    argues against for high-performance exchange. One element per field;
    arrays repeat the element; dynamic-array control fields are implied
    by repetition and not transmitted; chars travel as character codes,
    floats as round-trip decimal. *)

open Omf_machine
open Omf_pbio

exception Xmlwire_error of string

val encode_value : Format.t -> Value.t -> string
val decode_value : Format.t -> string -> Value.t
(** Raises {!Xmlwire_error} on unparsable or schema-mismatched text. *)

val encode : Memory.t -> Format.t -> int -> string
(** Full sender-side cost: read native binary data, convert to markup. *)

val decode : Format.t -> Memory.t -> string -> int
(** Full receiver-side cost: parse markup, re-binarise, materialise the
    native struct; returns its address. *)
