(** XML as a *wire format* (XML-RPC style): the text baseline.

    This is the approach the paper argues against for high-performance
    data exchange: every record is converted from binary memory to ASCII
    text, transmitted with per-field markup, and parsed and re-binarised
    on the receiving side. It is self-describing and needs no a-priori
    agreement, but pays (a) binary->text->binary conversion on both ends
    and (b) a 6-8x message expansion (section 6).

    Conventions:
    - one element per field: [<fltNum>1771</fltNum>];
    - arrays repeat the element; dynamic-array control fields are implied
      by the repetition count and not transmitted;
    - chars travel as numeric character codes, floats as shortest
      round-trip decimal, strings as escaped character data. *)

open Omf_machine
open Omf_pbio

exception Xmlwire_error of string

let xw_error fmt = Printf.ksprintf (fun s -> raise (Xmlwire_error s)) fmt

let controls_of (fmt : Format.t) : string list =
  List.filter_map
    (fun (f : Format.rfield) ->
      match f.Format.rf_dim with
      | Format.Rvar control -> Some control
      | Format.Rscalar | Format.Rfixed _ -> None)
    fmt.Format.fields

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)
(* ------------------------------------------------------------------ *)

let float_text ~size v =
  if size = 4 then Printf.sprintf "%.9g" v else Printf.sprintf "%.17g" v

let rec element_of_record (fmt : Format.t) (v : Value.t) : Omf_xml.Doc.element
    =
  let fields = Value.to_record_exn v in
  let controls = controls_of fmt in
  let children =
    List.concat_map
      (fun (f : Format.rfield) ->
        if List.mem f.Format.rf_name controls then []
        else
          let fv =
            match List.assoc_opt f.Format.rf_name fields with
            | Some fv -> fv
            | None ->
              xw_error "format %s: value lacks field %S" fmt.Format.name
                f.Format.rf_name
          in
          let size = f.Format.rf_layout.Layout.elem_size in
          let scalar fv : Omf_xml.Doc.node list =
            match (f.Format.rf_elem, fv) with
            | Format.Rint _, _ ->
              [ Omf_xml.Doc.Text (Int64.to_string (Value.to_int64 fv)) ]
            | Format.Rfloat _, _ ->
              [ Omf_xml.Doc.Text (float_text ~size (Value.to_float_exn fv)) ]
            | Format.Rchar, Value.Char ch ->
              [ Omf_xml.Doc.Text (string_of_int (Char.code ch)) ]
            | Format.Rchar, _ ->
              [ Omf_xml.Doc.Text (Int64.to_string (Value.to_int64 fv)) ]
            | Format.Rstring, _ ->
              let s = Value.to_string_exn fv in
              if String.equal s "" then [] else [ Omf_xml.Doc.Text s ]
            | Format.Rnested nested, _ ->
              (element_of_record nested fv).Omf_xml.Doc.children
          in
          let mk children =
            Omf_xml.Doc.Element
              (Omf_xml.Doc.element ~children f.Format.rf_name)
          in
          match (f.Format.rf_dim, f.Format.rf_elem, fv) with
          | Format.Rscalar, _, _ -> [ mk (scalar fv) ]
          | Format.Rfixed _, Format.Rchar, Value.String s ->
            [ mk (if String.equal s "" then [] else [ Omf_xml.Doc.Text s ]) ]
          | (Format.Rfixed _ | Format.Rvar _), _, Value.Array a ->
            Array.to_list (Array.map (fun e -> mk (scalar e)) a)
          | _, _, other ->
            xw_error "format %s, field %S: expected an array, got %s"
              fmt.Format.name f.Format.rf_name (Value.to_string other))
      fmt.Format.fields
  in
  Omf_xml.Doc.element ~children fmt.Format.name

(** [encode_value fmt v] renders the record as an XML text message. *)
let encode_value (fmt : Format.t) (v : Value.t) : string =
  Omf_xml.Write.element_to_string (element_of_record fmt v)

(** [encode mem fmt addr] is the full sender-side cost the paper talks
    about: read native binary data and convert it to ASCII markup. *)
let encode (mem : Memory.t) (fmt : Format.t) (addr : int) : string =
  encode_value fmt (Native.load mem fmt addr)

(* ------------------------------------------------------------------ *)
(* Decoding                                                             *)
(* ------------------------------------------------------------------ *)

let int_of_text name s =
  match Int64.of_string_opt (String.trim s) with
  | Some v -> v
  | None -> xw_error "field %S: %S is not an integer" name s

let float_of_text name s =
  match float_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> xw_error "field %S: %S is not a number" name s

let rec record_of_element (fmt : Format.t) (el : Omf_xml.Doc.element) :
    Value.t =
  let controls = controls_of fmt in
  let scalar (f : Format.rfield) (child : Omf_xml.Doc.element) : Value.t =
    let text = Omf_xml.Doc.text child in
    let size = f.Format.rf_layout.Layout.elem_size in
    ignore size;
    match f.Format.rf_elem with
    | Format.Rint { signed; _ } ->
      let v = int_of_text f.Format.rf_name text in
      if signed then Value.Int v else Value.Uint v
    | Format.Rfloat _ -> Value.Float (float_of_text f.Format.rf_name text)
    | Format.Rchar ->
      let code = Int64.to_int (int_of_text f.Format.rf_name text) in
      if code < 0 || code > 255 then
        xw_error "field %S: char code %d out of range" f.Format.rf_name code;
      Value.Char (Char.chr code)
    | Format.Rstring -> Value.String text
    | Format.Rnested nested -> record_of_element nested child
  in
  let fields =
    List.concat_map
      (fun (f : Format.rfield) ->
        if List.mem f.Format.rf_name controls then
          (* reconstructed below from the repetition count *)
          []
        else
          let children = Omf_xml.Doc.find_children el f.Format.rf_name in
          match f.Format.rf_dim with
          | Format.Rscalar -> (
            match children with
            | [ child ] -> [ (f.Format.rf_name, scalar f child) ]
            | [] ->
              xw_error "format %s: message lacks element <%s>" fmt.Format.name
                f.Format.rf_name
            | _ ->
              xw_error "format %s: repeated scalar element <%s>"
                fmt.Format.name f.Format.rf_name)
          | Format.Rfixed n -> (
            match f.Format.rf_elem with
            | Format.Rchar -> (
              match children with
              | [ child ] ->
                let s = Omf_xml.Doc.text child in
                if String.length s > n then
                  xw_error "field %S: %S exceeds char[%d]" f.Format.rf_name s n;
                [ (f.Format.rf_name, Value.String s) ]
              | _ -> xw_error "field %S: expected one element" f.Format.rf_name)
            | _ ->
              if List.length children <> n then
                xw_error "field %S: expected %d elements, found %d"
                  f.Format.rf_name n (List.length children);
              [ ( f.Format.rf_name
                , Value.Array (Array.of_list (List.map (scalar f) children)) )
              ])
          | Format.Rvar control ->
            let arr = Array.of_list (List.map (scalar f) children) in
            [ (f.Format.rf_name, Value.Array arr)
            ; (control, Value.Int (Int64.of_int (Array.length arr))) ])
      fmt.Format.fields
  in
  (* order the control fields as declared *)
  let ordered =
    List.filter_map
      (fun (f : Format.rfield) -> List.assoc_opt f.Format.rf_name fields
        |> Option.map (fun v -> (f.Format.rf_name, v)))
      fmt.Format.fields
  in
  Value.Record ordered

(** [decode_value fmt text] parses an XML message back into a record. *)
let decode_value (fmt : Format.t) (text : string) : Value.t =
  let el =
    try Omf_xml.Parse.element text
    with Omf_xml.Parse.Error _ as e ->
      xw_error "unparsable message: %s" (Printexc.to_string e)
  in
  if not (String.equal el.Omf_xml.Doc.tag fmt.Format.name) then
    xw_error "message is <%s>, expected <%s>" el.Omf_xml.Doc.tag
      fmt.Format.name;
  record_of_element fmt el

(** [decode fmt mem text] is the full receiver-side cost: parse the
    markup, convert ASCII back to binary, and materialise the native
    struct. Returns its address. *)
let decode (fmt : Format.t) (mem : Memory.t) (text : string) : int =
  Native.store mem fmt (decode_value fmt text)
