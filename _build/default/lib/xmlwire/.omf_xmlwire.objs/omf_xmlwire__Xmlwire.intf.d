lib/xmlwire/xmlwire.mli: Format Memory Omf_machine Omf_pbio Value
