lib/xmlwire/xmlwire.ml: Array Char Format Int64 Layout List Memory Native Omf_machine Omf_pbio Omf_xml Option Printexc Printf String Value
