(** Binary serialisation of format descriptors — sent once per
    (connection, format) during negotiation, or registered with a format
    server. Records the sender-side physical layout plus the logical
    declaration, nested formats embedded recursively. Decoding
    cross-checks the transmitted offsets against a recomputation under
    the reconstructed ABI, so corrupt descriptors are rejected rather
    than mis-read. *)

exception Codec_error of string

val encode : Format.t -> string
val decode : string -> Format.t
(** Raises {!Codec_error} on malformed input. *)
