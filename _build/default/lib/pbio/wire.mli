(** Message framing: the compact per-message meta-information
    accompanying every NDR payload (magic, version, ABI fingerprint,
    format id, sizes). Header integers are big-endian regardless of
    either party's byte order. *)

exception Frame_error of string

val magic : string
val version : int
val header_length : int

type header = {
  abi_fingerprint : string;  (** see {!Omf_machine.Abi.fingerprint} *)
  format_id : int;
  base_size : int;  (** size of the base struct within the payload *)
  payload_length : int;
}

val write_header : header -> bytes
val read_header : bytes -> header

val message : ?id:int -> Format.t -> bytes -> bytes
(** Frame an NDR payload. The format id defaults to the sender's registry
    id (per-connection negotiation); pass [?id] for a format-server
    global id. *)

val split : bytes -> header * bytes
(** Parse and length-check a framed message. Raises {!Frame_error}. *)
