(** Binary serialisation of format descriptors — the "efficiently
    represented meta-information that identifies the precise formats of
    transmitted data". A descriptor travels once per (connection, format)
    when a sender first uses a format (format negotiation); thereafter
    message headers carry only the 4-byte format id.

    The descriptor records the *sender-side physical layout* (offsets and
    element sizes under the sender ABI) plus the logical declaration, so
    the receiver can compile a conversion plan without sharing any source
    code with the sender. Nested formats are embedded recursively, outer
    format last, so decoding can resolve references in order. *)

open Omf_machine

exception Codec_error of string

let codec_error fmt = Printf.ksprintf (fun s -> raise (Codec_error s)) fmt

(* ---- primitive emitters: big-endian, length-prefixed strings ---- *)

let emit_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let emit_u32 b v =
  let tmp = Bytes.create 4 in
  Endian.write_uint Endian.Big tmp ~off:0 ~size:4 (Int64.of_int v);
  Buffer.add_bytes b tmp

let emit_string b s =
  emit_u32 b (String.length s);
  Buffer.add_string b s

type cursor = { data : string; mutable pos : int }

let take_u8 c =
  if c.pos >= String.length c.data then codec_error "descriptor truncated";
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let take_u32 c =
  if c.pos + 4 > String.length c.data then codec_error "descriptor truncated";
  let b = Bytes.of_string (String.sub c.data c.pos 4) in
  c.pos <- c.pos + 4;
  Int64.to_int (Endian.read_uint Endian.Big b ~off:0 ~size:4)

let take_string c =
  let n = take_u32 c in
  if n < 0 || c.pos + n > String.length c.data then
    codec_error "descriptor truncated (string of %d)" n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

(* ---- element/dimension tags ---- *)

let prim_code = function
  | Abi.Char -> 0 | Abi.Uchar -> 1 | Abi.Short -> 2 | Abi.Ushort -> 3
  | Abi.Int -> 4 | Abi.Uint -> 5 | Abi.Long -> 6 | Abi.Ulong -> 7
  | Abi.Longlong -> 8 | Abi.Ulonglong -> 9 | Abi.Float -> 10
  | Abi.Double -> 11 | Abi.Pointer -> 12

let prim_of_code = function
  | 0 -> Abi.Char | 1 -> Abi.Uchar | 2 -> Abi.Short | 3 -> Abi.Ushort
  | 4 -> Abi.Int | 5 -> Abi.Uint | 6 -> Abi.Long | 7 -> Abi.Ulong
  | 8 -> Abi.Longlong | 9 -> Abi.Ulonglong | 10 -> Abi.Float
  | 11 -> Abi.Double | 12 -> Abi.Pointer
  | n -> codec_error "unknown primitive code %d" n

let emit_elem b = function
  | Ftype.Int_t p ->
    emit_u8 b 0;
    emit_u8 b (prim_code p)
  | Ftype.Float_t p ->
    emit_u8 b 1;
    emit_u8 b (prim_code p)
  | Ftype.Char_t -> emit_u8 b 2
  | Ftype.String_t -> emit_u8 b 3
  | Ftype.Named_t n ->
    emit_u8 b 4;
    emit_string b n

let take_elem c : Ftype.elem =
  match take_u8 c with
  | 0 -> Ftype.Int_t (prim_of_code (take_u8 c))
  | 1 -> Ftype.Float_t (prim_of_code (take_u8 c))
  | 2 -> Ftype.Char_t
  | 3 -> Ftype.String_t
  | 4 -> Ftype.Named_t (take_string c)
  | n -> codec_error "unknown element tag %d" n

let emit_dim b = function
  | Ftype.Scalar -> emit_u8 b 0
  | Ftype.Fixed n ->
    emit_u8 b 1;
    emit_u32 b n
  | Ftype.Var control ->
    emit_u8 b 2;
    emit_string b control

let take_dim c : Ftype.dim =
  match take_u8 c with
  | 0 -> Ftype.Scalar
  | 1 -> Ftype.Fixed (take_u32 c)
  | 2 -> Ftype.Var (take_string c)
  | n -> codec_error "unknown dimension tag %d" n

(* ---- formats ---- *)

let rec collect_nested acc (fmt : Format.t) : Format.t list =
  (* dependency order: nested first, dedup by name *)
  let acc =
    List.fold_left
      (fun acc (f : Format.rfield) ->
        match f.Format.rf_elem with
        | Format.Rnested nested -> collect_nested acc nested
        | _ -> acc)
      acc fmt.Format.fields
  in
  if List.exists (fun (g : Format.t) -> String.equal g.Format.name fmt.Format.name) acc
  then acc
  else acc @ [ fmt ]

let emit_one b (fmt : Format.t) =
  emit_string b fmt.Format.name;
  emit_u32 b fmt.Format.id;
  emit_u32 b fmt.Format.layout.Layout.size;
  emit_u32 b fmt.Format.layout.Layout.struct_align;
  emit_u32 b (List.length fmt.Format.fields);
  List.iter2
    (fun (f : Format.rfield) (d : Ftype.field) ->
      emit_string b f.Format.rf_name;
      emit_elem b d.Ftype.f_elem;
      emit_dim b d.Ftype.f_dim;
      emit_u32 b f.Format.rf_layout.Layout.offset;
      emit_u32 b f.Format.rf_layout.Layout.elem_size)
    fmt.Format.fields fmt.Format.decl.Ftype.fields

(** [encode fmt] serialises [fmt] (and, recursively, the formats it nests)
    into a self-contained descriptor blob. *)
let encode (fmt : Format.t) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b "OMFD";
  emit_string b (Abi.fingerprint fmt.Format.abi);
  let formats = collect_nested [] fmt in
  emit_u32 b (List.length formats);
  List.iter (emit_one b) formats;
  Buffer.contents b

(** [decode blob] reconstructs the sender's format as a *wire-side*
    {!Format.t} (laid out under the sender's ABI, usable as the [wire]
    argument of {!Convert.compile}). The descriptor's recorded offsets are
    cross-checked against a recomputation under the reconstructed ABI —
    a malformed or tampered descriptor is rejected rather than mis-read. *)
let decode (blob : string) : Format.t =
  let c = { data = blob; pos = 0 } in
  if String.length blob < 4 || not (String.equal (String.sub blob 0 4) "OMFD")
  then codec_error "bad descriptor magic";
  c.pos <- 4;
  let abi =
    try Abi.of_fingerprint (take_string c)
    with Abi.Bad_fingerprint m -> codec_error "bad ABI fingerprint: %s" m
  in
  let count = take_u32 c in
  if count <= 0 || count > 1024 then codec_error "unreasonable format count %d" count;
  let catalog : (string, Format.t) Hashtbl.t = Hashtbl.create 8 in
  let last = ref None in
  for _ = 1 to count do
    let name = take_string c in
    let id = take_u32 c in
    let size = take_u32 c in
    let align = take_u32 c in
    let nfields = take_u32 c in
    if nfields <= 0 || nfields > 4096 then
      codec_error "format %S: unreasonable field count %d" name nfields;
    let fields =
      List.init nfields (fun _ ->
          let f_name = take_string c in
          let f_elem = take_elem c in
          let f_dim = take_dim c in
          let offset = take_u32 c in
          let elem_size = take_u32 c in
          ({ Ftype.f_name; f_elem; f_dim }, offset, elem_size))
    in
    let decl = { Ftype.name; fields = List.map (fun (d, _, _) -> d) fields } in
    let fmt = Format.resolve ~abi ~id (Hashtbl.find_opt catalog) decl in
    (* Cross-check the transmitted physical layout against our own
       recomputation under the same ABI: they must agree, or our plans
       would read the payload at the wrong offsets. *)
    if fmt.Format.layout.Layout.size <> size then
      codec_error "format %S: size %d disagrees with recomputed %d" name size
        fmt.Format.layout.Layout.size;
    if fmt.Format.layout.Layout.struct_align <> align then
      codec_error "format %S: align %d disagrees with recomputed %d" name align
        fmt.Format.layout.Layout.struct_align;
    List.iter2
      (fun (f : Format.rfield) ((d : Ftype.field), offset, elem_size) ->
        ignore d;
        if f.Format.rf_layout.Layout.offset <> offset
           || f.Format.rf_layout.Layout.elem_size <> elem_size then
          codec_error "format %S: field %S layout (%d,%d) disagrees with (%d,%d)"
            name f.Format.rf_name offset elem_size
            f.Format.rf_layout.Layout.offset f.Format.rf_layout.Layout.elem_size)
      fmt.Format.fields fields;
    Hashtbl.replace catalog name fmt;
    last := Some fmt
  done;
  match !last with
  | Some fmt -> fmt
  | None -> codec_error "empty descriptor"
