(** Field and format *declarations*: the logical message description that
    both compiled-in metadata (the paper's [IOField] arrays, Figures 5, 8
    and 11) and xml2wire's schema translation produce, before any
    machine-specific layout is assigned. *)

open Omf_machine

type elem =
  | Int_t of Abi.prim  (** a signed or unsigned C integer type *)
  | Float_t of Abi.prim  (** [Abi.Float] or [Abi.Double] *)
  | Char_t  (** single character, marshaled as one byte *)
  | String_t  (** [char*], NUL-terminated *)
  | Named_t of string  (** a previously registered format, nested inline *)

type dim =
  | Scalar
  | Fixed of int  (** inline array with static bound, e.g. [integer[5]] *)
  | Var of string
      (** dynamically-allocated array whose length lives in the named
          integer control field of the same record, e.g.
          [integer[eta_count]] *)

type field = { f_name : string; f_elem : elem; f_dim : dim }

type t = { name : string; fields : field list }

let field ?(dim = Scalar) name elem = { f_name = name; f_elem = elem; f_dim = dim }

(* ------------------------------------------------------------------ *)
(* IOField-style type strings.                                         *)
(*                                                                     *)
(* PBIO metadata names types as strings: "integer", "unsigned",        *)
(* "float", "double", "char", "string", a registered format name, and  *)
(* array suffixes "[5]" / "[eta_count]". We accept exactly those, plus *)
(* explicit C-width spellings so ABIs with different "integer" widths  *)
(* can be described precisely.                                         *)
(* ------------------------------------------------------------------ *)

exception Bad_type_string of string

let base_of_string = function
  | "integer" | "int" -> Int_t Abi.Int
  | "short" -> Int_t Abi.Short
  | "long" -> Int_t Abi.Long
  | "long long" -> Int_t Abi.Longlong
  | "unsigned" | "unsigned int" -> Int_t Abi.Uint
  | "unsigned short" -> Int_t Abi.Ushort
  | "unsigned long" -> Int_t Abi.Ulong
  | "unsigned long long" -> Int_t Abi.Ulonglong
  | "float" -> Float_t Abi.Float
  | "double" -> Float_t Abi.Double
  | "char" -> Char_t
  | "string" -> String_t
  | other ->
    if String.length other = 0 then raise (Bad_type_string "empty type string")
    else Named_t other

(** [of_type_string s] parses an IOField type string such as
    ["integer"], ["integer[5]"], ["integer[eta_count]"] or
    ["ASDOffEvent"]. Raises {!Bad_type_string}. *)
let of_type_string (s : string) : elem * dim =
  match String.index_opt s '[' with
  | None -> (base_of_string s, Scalar)
  | Some i ->
    if s.[String.length s - 1] <> ']' then
      raise (Bad_type_string (Printf.sprintf "%S: missing ']'" s));
    let base = String.sub s 0 i in
    let inner = String.sub s (i + 1) (String.length s - i - 2) in
    if String.equal inner "" then
      raise (Bad_type_string (Printf.sprintf "%S: empty bound" s));
    let dim =
      match int_of_string_opt inner with
      | Some n when n > 0 -> Fixed n
      | Some n ->
        raise (Bad_type_string (Printf.sprintf "%S: bound %d not positive" s n))
      | None -> Var inner
    in
    (base_of_string base, dim)

let elem_to_string = function
  | Int_t Abi.Int -> "integer"
  | Int_t Abi.Short -> "short"
  | Int_t Abi.Long -> "long"
  | Int_t Abi.Longlong -> "long long"
  | Int_t Abi.Uint -> "unsigned"
  | Int_t Abi.Ushort -> "unsigned short"
  | Int_t Abi.Ulong -> "unsigned long"
  | Int_t Abi.Ulonglong -> "unsigned long long"
  | Int_t p -> Abi.prim_name p
  | Float_t Abi.Float -> "float"
  | Float_t Abi.Double -> "double"
  | Float_t p -> Abi.prim_name p
  | Char_t -> "char"
  | String_t -> "string"
  | Named_t n -> n

let to_type_string (elem, dim) =
  let base = elem_to_string elem in
  match dim with
  | Scalar -> base
  | Fixed n -> Printf.sprintf "%s[%d]" base n
  | Var control -> Printf.sprintf "%s[%s]" base control

(** [io_field name type_string] mirrors one row of a PBIO [IOField]
    array: [{ "eta", "integer[eta_count]", … }]. *)
let io_field name type_string =
  let f_elem, f_dim = of_type_string type_string in
  { f_name = name; f_elem; f_dim }

(** [declare name rows] builds a format declaration from IOField-style
    [(field_name, type_string)] rows — the compiled-in metadata style. *)
let declare name rows =
  { name; fields = List.map (fun (n, ts) -> io_field n ts) rows }

let pp_field ppf f =
  Fmt.pf ppf "{ %S, %S }" f.f_name (to_type_string (f.f_elem, f.f_dim))

let pp ppf t =
  Fmt.pf ppf "@[<v2>format %s:@,%a@]" t.name
    (Fmt.list ~sep:Fmt.cut pp_field) t.fields
