(** NDR (Natural Data Representation) encoding: the payload is the
    sender's struct base image (padding included) followed by the
    transitive closure of its heap blocks, with pointer slots rewritten
    to payload-relative offsets in the sender's own pointer width and
    byte order. The sender converts nothing. *)

open Omf_machine

exception Encode_error of string

val payload : Memory.t -> Format.t -> int -> bytes
(** Encode the struct at the given address (no header; see {!Wire}).
    Raises {!Encode_error} if the memory's ABI does not match the
    format's, or on inconsistent dynamic-array state. *)

val payload_of_value : Abi.t -> Format.t -> Value.t -> bytes
(** One-shot convenience (scratch memory) for tests and examples. *)
