(** Binding between typed {!Value.t}s and native in-memory byte images.

    [store] realises the paper's *binding* step output: given a registered
    format, it constructs in a simulated process {!Omf_machine.Memory} the
    exact bytes a C program on that ABI would hold — structs with compiler
    padding, strings and dynamic arrays as heap blocks referenced by
    pointers. [load] is the inverse.

    Conventions:
    - A [char[N]] field is presented as a [Value.String] truncated at the
      first NUL (C string-in-buffer semantics); [store] accepts a string of
      length <= N and zero-pads.
    - The control field of a dynamic array may be omitted from the record;
      it is then filled from the array's length. If present, it must agree.
    - [Value.String] fields always store as non-null pointers (an empty
      string is a 1-byte NUL block), matching what C senders do. *)

open Omf_machine

exception Bind_error of string

let bind_error fmt = Printf.ksprintf (fun s -> raise (Bind_error s)) fmt

(* Map control-field name -> var-array field, for auto-filling counts. *)
let controls_of (fmt : Format.t) : (string * Format.rfield) list =
  List.filter_map
    (fun (f : Format.rfield) ->
      match f.Format.rf_dim with
      | Format.Rvar control -> Some (control, f)
      | Format.Rscalar | Format.Rfixed _ -> None)
    fmt.Format.fields

let elem_align (abi : Abi.t) (elem : Format.relem) : int =
  match elem with
  | Format.Rint { prim; _ } | Format.Rfloat prim -> Abi.align_of abi prim
  | Format.Rchar -> 1
  | Format.Rstring -> Abi.align_of abi Abi.Pointer
  | Format.Rnested nested -> nested.Format.layout.Layout.struct_align

let rec store_into (mem : Memory.t) (fmt : Format.t) (addr : int)
    (record : Value.t) : unit =
  let fields =
    match record with
    | Value.Record fields -> fields
    | v -> bind_error "format %s: expected a record, got %s" fmt.Format.name
             (Value.to_string v)
  in
  let known name = Option.is_some (Format.find_field fmt name) in
  List.iter
    (fun (k, _) ->
      if not (known k) then
        bind_error "format %s: value has unknown field %S" fmt.Format.name k)
    fields;
  let controls = controls_of fmt in
  let field_value (f : Format.rfield) : Value.t =
    match List.assoc_opt f.Format.rf_name fields with
    | Some v -> (
      (* If this is a control field, validate against the array length. *)
      match List.assoc_opt f.Format.rf_name controls with
      | None -> v
      | Some arr_field -> (
        match List.assoc_opt arr_field.Format.rf_name fields with
        | Some (Value.Array a)
          when Int64.to_int (Value.to_int64 v) <> Array.length a ->
          bind_error
            "format %s: control field %S = %Ld disagrees with %S length %d"
            fmt.Format.name f.Format.rf_name (Value.to_int64 v)
            arr_field.Format.rf_name (Array.length a)
        | _ -> v))
    | None -> (
      match List.assoc_opt f.Format.rf_name controls with
      | Some arr_field -> (
        match List.assoc_opt arr_field.Format.rf_name fields with
        | Some (Value.Array a) -> Value.Int (Int64.of_int (Array.length a))
        | Some v ->
          bind_error "format %s: field %S must be an array, got %s"
            fmt.Format.name arr_field.Format.rf_name (Value.to_string v)
        | None ->
          bind_error "format %s: missing field %S" fmt.Format.name
            arr_field.Format.rf_name)
      | None ->
        bind_error "format %s: missing field %S" fmt.Format.name
          f.Format.rf_name)
  in
  let store_scalar (f : Format.rfield) slot v =
    let size = f.Format.rf_layout.Layout.elem_size in
    match f.Format.rf_elem with
    | Format.Rint _ -> Memory.write_int mem slot ~size (Value.to_int64 v)
    | Format.Rfloat _ -> Memory.write_float mem slot ~size (Value.to_float_exn v)
    | Format.Rchar -> (
      match v with
      | Value.Char c ->
        Memory.write_uint mem slot ~size:1 (Int64.of_int (Char.code c))
      | Value.Int n | Value.Uint n -> Memory.write_uint mem slot ~size:1 n
      | v ->
        bind_error "format %s, field %S: expected a char, got %s"
          fmt.Format.name f.Format.rf_name (Value.to_string v))
    | Format.Rstring ->
      let s = Value.to_string_exn v in
      Memory.write_pointer mem slot (Memory.alloc_cstring mem s)
    | Format.Rnested nested -> store_into mem nested slot v
  in
  List.iter
    (fun (f : Format.rfield) ->
      let v = field_value f in
      let slot = addr + f.Format.rf_layout.Layout.offset in
      let elem_size = f.Format.rf_layout.Layout.elem_size in
      match f.Format.rf_dim with
      | Format.Rscalar -> store_scalar f slot v
      | Format.Rfixed n -> (
        match (f.Format.rf_elem, v) with
        | Format.Rchar, Value.String s ->
          if String.length s > n then
            bind_error "format %s, field %S: string %S exceeds char[%d]"
              fmt.Format.name f.Format.rf_name s n;
          Memory.write_bytes mem slot (Bytes.of_string s)
          (* remaining bytes stay zero: Memory.alloc zero-fills *)
        | _, Value.Array a ->
          if Array.length a <> n then
            bind_error "format %s, field %S: expected %d elements, got %d"
              fmt.Format.name f.Format.rf_name n (Array.length a);
          Array.iteri (fun i v -> store_scalar f (slot + (i * elem_size)) v) a
        | _, v ->
          bind_error "format %s, field %S: expected an array, got %s"
            fmt.Format.name f.Format.rf_name (Value.to_string v))
      | Format.Rvar _ -> (
        match v with
        | Value.Array a when Array.length a = 0 ->
          Memory.write_pointer mem slot Memory.null
        | Value.Array a ->
          let align = elem_align (Memory.abi mem) f.Format.rf_elem in
          let block =
            Memory.alloc mem ~align (Array.length a * elem_size)
          in
          Array.iteri (fun i v -> store_scalar f (block + (i * elem_size)) v) a;
          Memory.write_pointer mem slot block
        | v ->
          bind_error "format %s, field %S: expected an array, got %s"
            fmt.Format.name f.Format.rf_name (Value.to_string v)))
    fmt.Format.fields

(** [store mem fmt record] allocates a struct block and writes [record]
    into it, returning its simulated address. *)
let store (mem : Memory.t) (fmt : Format.t) (record : Value.t) : int =
  let layout = fmt.Format.layout in
  let addr =
    Memory.alloc mem ~align:layout.Layout.struct_align (max layout.Layout.size 1)
  in
  store_into mem fmt addr record;
  addr

let rec load_from (mem : Memory.t) (fmt : Format.t) (addr : int) : Value.t =
  let read_count (control : string) : int =
    match Format.find_field fmt control with
    | Some cf ->
      Int64.to_int
        (Memory.read_int mem
           (addr + cf.Format.rf_layout.Layout.offset)
           ~size:cf.Format.rf_layout.Layout.elem_size)
    | None -> assert false (* registration validated this *)
  in
  let load_scalar (f : Format.rfield) slot : Value.t =
    let size = f.Format.rf_layout.Layout.elem_size in
    match f.Format.rf_elem with
    | Format.Rint { signed = true; _ } -> Value.Int (Memory.read_int mem slot ~size)
    | Format.Rint { signed = false; _ } -> Value.Uint (Memory.read_uint mem slot ~size)
    | Format.Rfloat _ -> Value.Float (Memory.read_float mem slot ~size)
    | Format.Rchar ->
      Value.Char (Char.chr (Int64.to_int (Memory.read_uint mem slot ~size:1)))
    | Format.Rstring ->
      let ptr = Memory.read_pointer mem slot in
      Value.String (if ptr = Memory.null then "" else Memory.read_cstring mem ptr)
    | Format.Rnested nested -> load_from mem nested slot
  in
  let load_field (f : Format.rfield) : string * Value.t =
    let slot = addr + f.Format.rf_layout.Layout.offset in
    let elem_size = f.Format.rf_layout.Layout.elem_size in
    let v =
      match f.Format.rf_dim with
      | Format.Rscalar -> load_scalar f slot
      | Format.Rfixed n -> (
        match f.Format.rf_elem with
        | Format.Rchar ->
          (* char[N]: C string-in-buffer semantics, stop at first NUL *)
          let raw = Memory.read_bytes mem slot n in
          let len =
            match Bytes.index_opt raw '\000' with Some i -> i | None -> n
          in
          Value.String (Bytes.sub_string raw 0 len)
        | _ ->
          Value.Array
            (Array.init n (fun i -> load_scalar f (slot + (i * elem_size)))))
      | Format.Rvar control ->
        let count = read_count control in
        let ptr = Memory.read_pointer mem slot in
        if count = 0 then Value.Array [||]
        else
          Value.Array
            (Array.init count (fun i -> load_scalar f (ptr + (i * elem_size))))
    in
    (f.Format.rf_name, v)
  in
  Value.Record (List.map load_field fmt.Format.fields)

(** [load mem fmt addr] reads the struct at [addr] back into a record, in
    declaration field order (control fields included). *)
let load = load_from
