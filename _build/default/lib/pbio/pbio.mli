(** PBIO-style binary communication mechanism: public facade.

    The flow mirrors the paper's decomposition: {b discovery} happens
    above this library (xml2wire or compiled-in declarations);
    {b binding} is {!Format.Registry.register} + {!Native.store};
    {b marshaling} is {!message} on the way out and {!Receiver.receive}
    on the way in — NDR with receiver-side conversion compiled per
    format pair. *)

open Omf_machine
module Value = Value
module Ftype = Ftype
module Format = Format
module Registry = Format.Registry
module Native = Native
module Encode = Encode
module Convert = Convert
module Wire = Wire
module Format_codec = Format_codec

exception Unknown_format of string

val message : ?id:int -> Memory.t -> Format.t -> int -> bytes
(** Marshal the struct at the given address: NDR payload plus framing
    header. The sender performs no data conversion. [?id] overrides the
    header's format id (global ids from a format server). *)

val message_of_value : Abi.t -> Format.t -> Value.t -> bytes
(** One-shot convenience (scratch memory). *)

(** A receiver corresponds to one incoming connection (or journal): it
    learns peer formats from negotiation descriptors (or a resolver),
    caches conversion plans, and materialises incoming messages in its
    process memory. *)
module Receiver : sig
  type mode =
    | Compiled  (** conversion plans compiled once per format pair *)
    | Interpreted  (** per-record metadata interpretation (baseline) *)

  (** Operational counters, for monitoring and tests. *)
  type stats = {
    mutable messages : int;
    mutable bytes : int;  (** payload bytes received *)
    mutable formats_learned : int;
    mutable plans_compiled : int;
    mutable resolver_lookups : int;
  }

  type t

  val create :
    ?mode:mode -> ?resolve:(int -> string option) -> Registry.t -> Memory.t ->
    t
  (** [resolve] fetches a descriptor blob for an unknown wire format id —
      typically {!Omf_formatserver.Format_server.Client.resolver}. *)

  val memory : t -> Memory.t
  val stats : t -> stats

  val learn : ?id:int -> t -> string -> Format.t
  (** Ingest a format descriptor, keyed by [?id] (a format-server global
      id) or the descriptor's embedded id (the negotiation case). *)

  val wire_format : t -> int -> Format.t option

  val receive : t -> bytes -> Format.t * int
  (** Demarshal a framed message into the receiver's memory; returns the
      native format and struct address. Raises {!Unknown_format} when the
      format id is unknown and unresolvable. *)

  val receive_value : t -> bytes -> Format.t * Value.t
end
