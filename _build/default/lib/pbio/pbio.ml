(** PBIO-style binary communication mechanism: public facade.

    The flow mirrors the paper's decomposition:
    - {b discovery} happens above this library (xml2wire, or compiled-in
      {!Ftype.declare} rows);
    - {b binding}: {!Format.Registry.register} + {!Native.store};
    - {b marshaling}: {!Encode.payload} / {!Receiver.receive} — NDR with
      receiver-side conversion compiled per format pair.

    A {!Receiver} corresponds to one incoming connection: it learns the
    peer's formats from negotiation descriptors, caches conversion plans,
    and materialises incoming messages in its process {!Memory}. *)

open Omf_machine
module Value = Value
module Ftype = Ftype
module Format = Format
module Registry = Format.Registry
module Native = Native
module Encode = Encode
module Convert = Convert
module Wire = Wire
module Format_codec = Format_codec

exception Unknown_format of string

(* ------------------------------------------------------------------ *)
(* Sending                                                             *)
(* ------------------------------------------------------------------ *)

(** [message ?id mem fmt addr] marshals the struct at [addr]: NDR payload
    plus framing header. The sender performs no data conversion. [?id]
    overrides the header's format id (global ids from a format server). *)
let message ?id (mem : Memory.t) (fmt : Format.t) (addr : int) : bytes =
  Wire.message ?id fmt (Encode.payload mem fmt addr)

(** [message_of_value abi fmt v] is the one-shot convenience used by
    examples and tests. *)
let message_of_value (abi : Abi.t) (fmt : Format.t) (v : Value.t) : bytes =
  Wire.message fmt (Encode.payload_of_value abi fmt v)

(* ------------------------------------------------------------------ *)
(* Receiving                                                           *)
(* ------------------------------------------------------------------ *)

module Receiver = struct
  type mode =
    | Compiled  (** conversion plans compiled once per format pair *)
    | Interpreted  (** per-record metadata interpretation (baseline) *)

  (** Operational counters, for monitoring and tests. *)
  type stats = {
    mutable messages : int;
    mutable bytes : int;  (** payload bytes received *)
    mutable formats_learned : int;
    mutable plans_compiled : int;
    mutable resolver_lookups : int;
  }

  type t = {
    registry : Registry.t;
    mem : Memory.t;
    mode : mode;
    resolve : (int -> string option) option;
        (** fetch a descriptor blob for an unknown wire id — typically a
            format-server lookup *)
    wire_formats : (int, Format.t) Hashtbl.t;  (** peer format id -> format *)
    plans : (int * int, Convert.t) Hashtbl.t;
        (** (peer format id, native format id) -> compiled plan *)
    stats : stats;
  }

  let create ?(mode = Compiled) ?resolve (registry : Registry.t)
      (mem : Memory.t) : t =
    if not (Abi.layout_equal (Registry.abi registry) (Memory.abi mem)) then
      invalid_arg "Receiver.create: registry and memory ABIs differ";
    { registry; mem; mode; resolve; wire_formats = Hashtbl.create 8
    ; plans = Hashtbl.create 8
    ; stats =
        { messages = 0; bytes = 0; formats_learned = 0; plans_compiled = 0
        ; resolver_lookups = 0 } }

  let memory t = t.mem
  let stats t = t.stats

  (** [learn ?id t blob] ingests a format descriptor, keyed by [?id] (a
      global format-server id) or the descriptor's own embedded id (the
      negotiation case). Returns the reconstructed wire format. *)
  let learn ?id (t : t) (blob : string) : Format.t =
    let fmt = Format_codec.decode blob in
    let fmt =
      match id with None -> fmt | Some id -> { fmt with Format.id }
    in
    Hashtbl.replace t.wire_formats fmt.Format.id fmt;
    t.stats.formats_learned <- t.stats.formats_learned + 1;
    (* any cached plans for this id are stale *)
    Hashtbl.iter
      (fun (wid, nid) _ ->
        if wid = fmt.Format.id then Hashtbl.remove t.plans (wid, nid))
      (Hashtbl.copy t.plans);
    fmt

  let wire_format (t : t) (id : int) : Format.t option =
    Hashtbl.find_opt t.wire_formats id

  let native_format_for (t : t) (wire : Format.t) : Format.t =
    match Registry.find t.registry wire.Format.name with
    | Some f -> f
    | None -> raise (Unknown_format wire.Format.name)

  let plan_for (t : t) (wire : Format.t) (native : Format.t) : Convert.t =
    let key = (wire.Format.id, native.Format.id) in
    match Hashtbl.find_opt t.plans key with
    | Some plan -> plan
    | None ->
      let plan = Convert.compile ~wire ~native in
      Hashtbl.replace t.plans key plan;
      t.stats.plans_compiled <- t.stats.plans_compiled + 1;
      plan

  (** [receive t msg] demarshals a framed message into [t]'s memory and
      returns [(native_format, struct_address)]. The struct is laid out
      for the receiver's ABI regardless of the sender's. *)
  let receive (t : t) (msg : bytes) : Format.t * int =
    let header, payload = Wire.split msg in
    let wire =
      match wire_format t header.Wire.format_id with
      | Some f -> f
      | None -> (
        (* last chance: ask the resolver (format server) for the blob *)
        match t.resolve with
        | Some fetch -> (
          t.stats.resolver_lookups <- t.stats.resolver_lookups + 1;
          match fetch header.Wire.format_id with
          | Some blob -> learn ~id:header.Wire.format_id t blob
          | None ->
            raise
              (Unknown_format
                 (Printf.sprintf "format id %d (unknown to the format server)"
                    header.Wire.format_id)))
        | None ->
          raise
            (Unknown_format
               (Printf.sprintf "peer format id %d (no negotiation seen)"
                  header.Wire.format_id)))
    in
    let native = native_format_for t wire in
    let addr =
      match t.mode with
      | Compiled -> Convert.run (plan_for t wire native) payload t.mem
      | Interpreted -> Convert.interpret ~wire ~native payload t.mem
    in
    t.stats.messages <- t.stats.messages + 1;
    t.stats.bytes <- t.stats.bytes + Bytes.length payload;
    (native, addr)

  (** [receive_value t msg] additionally lifts the struct to a
      {!Value.t} — convenient for applications that do not want to touch
      simulated memory. *)
  let receive_value (t : t) (msg : bytes) : Format.t * Value.t =
    let fmt, addr = receive t msg in
    (fmt, Native.load t.mem fmt addr)
end
