(** Field and format {e declarations}: the logical message description
    that both compiled-in metadata (the paper's [IOField] arrays) and
    xml2wire's schema translation produce, before machine-specific layout
    is assigned. *)

open Omf_machine

type elem =
  | Int_t of Abi.prim  (** a signed or unsigned C integer type *)
  | Float_t of Abi.prim  (** [Abi.Float] or [Abi.Double] *)
  | Char_t  (** single character, one byte *)
  | String_t  (** [char*], NUL-terminated *)
  | Named_t of string  (** a previously registered format, nested inline *)

type dim =
  | Scalar
  | Fixed of int  (** inline array with static bound, e.g. [integer[5]] *)
  | Var of string
      (** dynamically-allocated array; the named integer control field of
          the same record holds the run-time count *)

type field = { f_name : string; f_elem : elem; f_dim : dim }
type t = { name : string; fields : field list }

val field : ?dim:dim -> string -> elem -> field

(** {1 IOField-style type strings} — "integer", "string",
    "unsigned long[5]", "integer[eta_count]", or a format name. *)

exception Bad_type_string of string

val of_type_string : string -> elem * dim
val elem_to_string : elem -> string
val to_type_string : elem * dim -> string

val io_field : string -> string -> field
(** One row of a PBIO [IOField] array: [(name, type string)]. *)

val declare : string -> (string * string) list -> t
(** A whole declaration from IOField-style rows — the compiled-in
    metadata style. *)

val pp_field : Stdlib.Format.formatter -> field -> unit
val pp : Stdlib.Format.formatter -> t -> unit
