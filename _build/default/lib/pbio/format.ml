(** Registered message formats and the per-process format registry.

    Registration is the paper's *binding*-side bookkeeping: a declaration
    ({!Ftype.t}) is resolved against previously registered formats (the
    Catalog role), laid out for the registry's {!Abi.t} — computing the
    same sizes and offsets the host C compiler would — and assigned a
    format identifier that travels in every message header. *)

open Omf_machine

exception Registration_error of string

let reg_error fmt = Printf.ksprintf (fun s -> raise (Registration_error s)) fmt

type relem =
  | Rint of { prim : Abi.prim; signed : bool }
  | Rfloat of Abi.prim
  | Rchar
  | Rstring
  | Rnested of t

and rdim =
  | Rscalar
  | Rfixed of int
  | Rvar of string  (** control field name (same record) *)

and rfield = {
  rf_name : string;
  rf_elem : relem;
  rf_dim : rdim;
  rf_layout : Layout.field;  (** offset / sizes under [abi] *)
}

and t = {
  name : string;
  id : int;  (** registry-assigned; 0 for unregistered wire formats *)
  abi : Abi.t;
  fields : rfield list;
  layout : Layout.t;
  decl : Ftype.t;  (** the logical declaration this was resolved from *)
}

(* ------------------------------------------------------------------ *)
(* Resolution: declaration -> resolved fields + layout                 *)
(* ------------------------------------------------------------------ *)

let resolve_elem lookup fmt_name (f : Ftype.field) : relem =
  match f.Ftype.f_elem with
  | Ftype.Int_t p -> Rint { prim = p; signed = Abi.prim_signed p }
  | Ftype.Float_t p -> Rfloat p
  | Ftype.Char_t -> Rchar
  | Ftype.String_t -> Rstring
  | Ftype.Named_t n -> (
    match lookup n with
    | Some nested -> Rnested nested
    | None ->
      reg_error "format %S, field %S: unknown nested format %S" fmt_name
        f.Ftype.f_name n)

let layout_ctype (relem : relem) : Layout.ctype =
  match relem with
  | Rint { prim; _ } -> Layout.Prim prim
  | Rfloat p -> Layout.Prim p
  | Rchar -> Layout.Prim Abi.Char
  | Rstring -> Layout.Prim Abi.Pointer
  | Rnested nested -> Layout.Struct nested.layout

let pointee_of = function
  | Rstring -> Layout.Prim Abi.Char
  | other -> layout_ctype other

let layout_decl (f : Ftype.field) (relem : relem) : Layout.decl =
  match (f.Ftype.f_dim, relem) with
  | Ftype.Scalar, Rstring ->
    { Layout.d_name = f.Ftype.f_name; d_ctype = Layout.Prim Abi.Pointer
    ; d_dim = Layout.Pointer_to (Layout.Prim Abi.Char) }
  | Ftype.Scalar, other ->
    { Layout.d_name = f.Ftype.f_name; d_ctype = layout_ctype other
    ; d_dim = Layout.Scalar }
  | Ftype.Fixed n, Rstring ->
    (* an inline array of char* pointers *)
    { Layout.d_name = f.Ftype.f_name; d_ctype = Layout.Prim Abi.Pointer
    ; d_dim = Layout.Fixed_array n }
  | Ftype.Fixed n, other ->
    { Layout.d_name = f.Ftype.f_name; d_ctype = layout_ctype other
    ; d_dim = Layout.Fixed_array n }
  | Ftype.Var _, Rstring ->
    (* char**: a pointer to an array of char* elements *)
    { Layout.d_name = f.Ftype.f_name; d_ctype = Layout.Prim Abi.Pointer
    ; d_dim = Layout.Pointer_to (Layout.Prim Abi.Pointer) }
  | Ftype.Var _, other ->
    { Layout.d_name = f.Ftype.f_name; d_ctype = Layout.Prim Abi.Pointer
    ; d_dim = Layout.Pointer_to (pointee_of other) }

let rdim_of (f : Ftype.field) : rdim =
  match f.Ftype.f_dim with
  | Ftype.Scalar -> Rscalar
  | Ftype.Fixed n -> Rfixed n
  | Ftype.Var control -> Rvar control

let is_integer_field (f : rfield) =
  match (f.rf_elem, f.rf_dim) with
  | Rint _, Rscalar -> true
  | _ -> false

(** Resolve and lay out a declaration. [lookup] supplies nested formats
    (registry contents). *)
let resolve ~(abi : Abi.t) ~(id : int) (lookup : string -> t option)
    (decl : Ftype.t) : t =
  if String.equal decl.Ftype.name "" then reg_error "empty format name";
  if decl.Ftype.fields = [] then
    reg_error "format %S has no fields" decl.Ftype.name;
  let relems =
    List.map (fun f -> resolve_elem lookup decl.Ftype.name f) decl.Ftype.fields
  in
  let ldecls =
    List.map2 layout_decl decl.Ftype.fields relems
  in
  let layout = Layout.compute ~abi ~name:decl.Ftype.name ldecls in
  let fields =
    List.map2
      (fun f relem ->
        let lf =
          match Layout.find_field layout f.Ftype.f_name with
          | Some lf -> lf
          | None -> assert false
        in
        { rf_name = f.Ftype.f_name; rf_elem = relem; rf_dim = rdim_of f
        ; rf_layout = lf })
      decl.Ftype.fields relems
  in
  (* Validate dynamic-array control fields. *)
  List.iter
    (fun f ->
      match f.rf_dim with
      | Rvar control -> (
        match List.find_opt (fun g -> String.equal g.rf_name control) fields with
        | Some g when is_integer_field g -> ()
        | Some _ ->
          reg_error "format %S: control field %S of %S is not a scalar integer"
            decl.Ftype.name control f.rf_name
        | None ->
          reg_error "format %S: field %S references missing control field %S"
            decl.Ftype.name f.rf_name control)
      | Rscalar | Rfixed _ -> ())
    fields;
  { name = decl.Ftype.name; id; abi; fields; layout; decl }

let find_field t name =
  List.find_opt (fun f -> String.equal f.rf_name name) t.fields

let struct_size t = t.layout.Layout.size

(** A stable signature of the physical layout: two formats with equal
    signatures have byte-identical native images for equal logical data,
    so the receive path can skip conversion entirely (NDR's best case). *)
let rec layout_signature (t : t) : string =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (match t.abi.Abi.endianness with Endian.Little -> "L" | Endian.Big -> "B");
  Buffer.add_string b (string_of_int t.layout.Layout.size);
  List.iter
    (fun f ->
      Buffer.add_char b '|';
      Buffer.add_string b f.rf_name;
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int f.rf_layout.Layout.offset);
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int f.rf_layout.Layout.elem_size);
      Buffer.add_char b ',';
      (match f.rf_dim with
      | Rscalar -> Buffer.add_string b "s"
      | Rfixed n -> Buffer.add_string b (Printf.sprintf "f%d" n)
      | Rvar c -> Buffer.add_string b ("v" ^ c));
      Buffer.add_char b ',';
      match f.rf_elem with
      | Rint { signed; _ } -> Buffer.add_string b (if signed then "i" else "u")
      | Rfloat _ -> Buffer.add_string b "d"
      | Rchar -> Buffer.add_string b "c"
      | Rstring -> Buffer.add_string b ("p" ^ string_of_int (Abi.size_of t.abi Abi.Pointer))
      | Rnested nested ->
        Buffer.add_char b '{';
        Buffer.add_string b (layout_signature nested);
        Buffer.add_char b '}')
    t.fields;
  Buffer.contents b

let same_wire_layout a b = String.equal (layout_signature a) (layout_signature b)

(** Render the format as PBIO IOField rows (compare Figures 5/8/11). *)
let pp_io_fields ppf t =
  Fmt.pf ppf "@[<v2>IOField %sFields[] = {@," t.name;
  List.iter
    (fun (f : rfield) ->
      let decl_field =
        List.find
          (fun (d : Ftype.field) -> String.equal d.Ftype.f_name f.rf_name)
          t.decl.Ftype.fields
      in
      (* the paper's size column: sizeof(char* ) for strings, element size
         for everything else (Figures 5/8/11) *)
      let size =
        match f.rf_elem with
        | Rstring -> Abi.size_of t.abi Abi.Pointer
        | Rint _ | Rfloat _ | Rchar | Rnested _ -> f.rf_layout.Layout.elem_size
      in
      Fmt.pf ppf "{ %S, %S, %d, %d },@," f.rf_name
        (Ftype.to_type_string (decl_field.Ftype.f_elem, decl_field.Ftype.f_dim))
        size f.rf_layout.Layout.offset)
    t.fields;
  Fmt.pf ppf "{ NULL, NULL, 0, 0 }@]@,};"

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

module Registry = struct
  type format = t

  type t = {
    abi : Abi.t;
    mutable next_id : int;
    by_name : (string, format) Hashtbl.t;
    by_id : (int, format) Hashtbl.t;
  }

  let create (abi : Abi.t) : t =
    { abi; next_id = 1; by_name = Hashtbl.create 16; by_id = Hashtbl.create 16 }

  let abi t = t.abi
  let find t name = Hashtbl.find_opt t.by_name name
  let find_by_id t id = Hashtbl.find_opt t.by_id id

  (** [register t decl] resolves, lays out and registers a format. Nested
      format references are resolved against [t]'s current contents, as
      with the paper's Catalog. Re-registering a name replaces it (used by
      run-time format upgrades). *)
  let register t (decl : Ftype.t) : format =
    let id = t.next_id in
    let fmt = resolve ~abi:t.abi ~id (find t) decl in
    t.next_id <- id + 1;
    Hashtbl.replace t.by_name fmt.name fmt;
    Hashtbl.replace t.by_id id fmt;
    fmt

  let all t : format list =
    Hashtbl.fold (fun _ f acc -> f :: acc) t.by_name []
    |> List.sort (fun a b -> compare a.id b.id)
end
