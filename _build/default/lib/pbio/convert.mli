(** Receiver-side conversion from NDR wire payloads to native memory.

    A plan is compiled once per (wire format, native format) pair — the
    analogue of the paper's dynamic code generation — and executed by a
    tight loop; a coalescing pass merges conversion-free field runs into
    single blits so the homogeneous case degenerates to one copy plus
    pointer fixups. Field matching is by name (PBIO's restricted format
    evolution): wire-only fields are ignored, native-only fields stay
    zero. *)

open Omf_machine

exception Field_mismatch of string
(** Same-named fields that are structurally irreconcilable
    (string vs number, scalar vs array). *)

exception Decode_error of string
(** Malformed or malicious payload: offsets or counts escaping the
    buffer, unterminated strings. *)

type t
(** A compiled conversion plan. *)

val compile : wire:Format.t -> native:Format.t -> t
val compile_unoptimized : wire:Format.t -> native:Format.t -> t
(** Same semantics as {!compile}, without blit coalescing or bulk array
    copies — the ablation knob (bench A2). *)

val op_count : t -> int
(** Primitive ops in the plan (1 = pure blit) — exposed so tests can
    assert the homogeneous collapse. *)

val run : t -> bytes -> Memory.t -> int
(** Allocate the destination struct in the memory, execute the plan over
    the payload, return the struct's address. *)

val interpret : wire:Format.t -> native:Format.t -> bytes -> Memory.t -> int
(** Per-record metadata interpretation (no compiled plan): the baseline
    the DCG approach is measured against. Identical semantics. *)
