(** Application-level typed values: the OCaml face of the C data that a
    simulated process keeps in its {!Omf_machine.Memory}. A value is bound
    to a message format (see {!Native}) to produce the native byte image
    that NDR puts on the wire. *)

type t =
  | Int of int64  (** signed integer of any C width *)
  | Uint of int64  (** unsigned integer; bit pattern in an [int64] *)
  | Float of float
  | Char of char
  | String of string
  | Array of t array
  | Record of (string * t) list

let rec equal a b =
  match (a, b) with
  | Int x, Int y | Uint x, Uint y -> Int64.equal x y
  | Float x, Float y ->
    (* NaN-safe bit equality: round-trips must preserve bit patterns. *)
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Char x, Char y -> Char.equal x y
  | String x, String y -> String.equal x y
  | Array x, Array y ->
    Array.length x = Array.length y
    && (let ok = ref true in
        Array.iteri (fun i v -> if not (equal v y.(i)) then ok := false) x;
        !ok)
  | Record x, Record y ->
    List.length x = List.length y
    && List.for_all2
         (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
         x y
  | _ -> false

let rec pp ppf = function
  | Int v -> Fmt.pf ppf "%Ld" v
  | Uint v -> Fmt.pf ppf "%Lu" v
  | Float v -> Fmt.pf ppf "%h" v
  | Char c -> Fmt.pf ppf "%C" c
  | String s -> Fmt.pf ppf "%S" s
  | Array a ->
    Fmt.pf ppf "[|%a|]" Fmt.(array ~sep:(any "; ") pp) a
  | Record fields ->
    let pp_binding ppf (k, v) = Fmt.pf ppf "%s = %a" k pp v in
    Fmt.pf ppf "{ %a }" (Fmt.list ~sep:(Fmt.any "; ") pp_binding) fields

let to_string v = Fmt.str "%a" pp v

(* ---- record helpers ---- *)

let field record name =
  match record with
  | Record fields -> List.assoc_opt name fields
  | _ -> None

let field_exn record name =
  match field record name with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Value.field_exn: no field %S" name)

(** [set_field record name v] replaces or appends the binding. *)
let set_field record name v =
  match record with
  | Record fields ->
    if List.mem_assoc name fields then
      Record
        (List.map (fun (k, old) -> if String.equal k name then (k, v) else (k, old)) fields)
    else Record (fields @ [ (name, v) ])
  | _ -> invalid_arg "Value.set_field: not a record"

(* ---- coercion helpers used by codecs ---- *)

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let to_int64 = function
  | Int v | Uint v -> v
  | Char c -> Int64.of_int (Char.code c)
  | v -> type_error "expected an integer, got %s" (to_string v)

let to_float_exn = function
  | Float f -> f
  | Int v | Uint v -> Int64.to_float v
  | v -> type_error "expected a float, got %s" (to_string v)

let to_string_exn = function
  | String s -> s
  | v -> type_error "expected a string, got %s" (to_string v)

let to_array_exn = function
  | Array a -> a
  | v -> type_error "expected an array, got %s" (to_string v)

let to_record_exn = function
  | Record r -> r
  | v -> type_error "expected a record, got %s" (to_string v)
