(** NDR (Natural Data Representation) encoding.

    The sender's native bytes go onto the wire unchanged: the payload is
    the struct's base image (including compiler padding) followed by the
    transitive closure of its heap blocks (strings, dynamic arrays), with
    every pointer slot rewritten to a payload-relative offset — written in
    the *sender's* pointer width and byte order, because the whole point is
    that the sender does no conversion work at all. *)

open Omf_machine

exception Encode_error of string

let enc_error fmt = Printf.ksprintf (fun s -> raise (Encode_error s)) fmt

(* Growable byte sink with random-access patching (Buffer can't patch). *)
module Wbuf = struct
  type t = { mutable data : bytes; mutable len : int }

  let create n = { data = Bytes.make (max n 64) '\000'; len = 0 }

  let ensure t needed =
    if needed > Bytes.length t.data then begin
      let cap = max needed (2 * Bytes.length t.data) in
      let data = Bytes.make cap '\000' in
      Bytes.blit t.data 0 data 0 t.len;
      t.data <- data
    end

  (** Append [len] zero bytes, returning the offset of the block. *)
  let reserve t len =
    ensure t (t.len + len);
    let off = t.len in
    Bytes.fill t.data off len '\000';
    t.len <- t.len + len;
    off

  let append_mem t mem addr len =
    let off = reserve t len in
    Memory.blit_to_buffer mem addr len ~dst:t.data ~dst_off:off;
    off

  let append_string t s =
    let off = reserve t (String.length s) in
    Bytes.blit_string s 0 t.data off (String.length s);
    off

  let patch_uint t ~order ~off ~size v =
    Endian.write_uint order t.data ~off ~size v

  let contents t = Bytes.sub t.data 0 t.len
end

let read_count mem (fmt : Format.t) addr control =
  match Format.find_field fmt control with
  | Some cf ->
    let n =
      Memory.read_int mem
        (addr + cf.Format.rf_layout.Layout.offset)
        ~size:cf.Format.rf_layout.Layout.elem_size
    in
    if Int64.compare n 0L < 0 then
      enc_error "format %s: negative dynamic array count %Ld in %S"
        fmt.Format.name n control;
    Int64.to_int n
  | None -> assert false

(** Copy the record at [src_addr] into [buf] and recursively append its
    heap blocks, patching pointer slots to payload offsets. *)
let rec emit_record buf mem (fmt : Format.t) src_addr : int =
  let base = Wbuf.append_mem buf mem src_addr fmt.Format.layout.Layout.size in
  patch_record buf mem fmt src_addr base;
  base

and patch_record buf mem (fmt : Format.t) src_addr base =
  let order = (Memory.abi mem).Abi.endianness in
  let ptr_size = Abi.size_of (Memory.abi mem) Abi.Pointer in
  (* [at] is an absolute offset of a pointer slot within the payload *)
  let patch_pointer ~at v =
    Wbuf.patch_uint buf ~order ~off:at ~size:ptr_size (Int64.of_int v)
  in
  let emit_string ~at src_slot =
    let ptr = Memory.read_pointer mem src_slot in
    if ptr = Memory.null then patch_pointer ~at 0
    else begin
      let s = Memory.read_cstring mem ptr in
      let off = Wbuf.append_string buf (s ^ "\000") in
      patch_pointer ~at off
    end
  in
  List.iter
    (fun (f : Format.rfield) ->
      let foff = f.Format.rf_layout.Layout.offset in
      let elem_size = f.Format.rf_layout.Layout.elem_size in
      match (f.Format.rf_dim, f.Format.rf_elem) with
      | Format.Rscalar, Format.Rstring ->
        emit_string ~at:(base + foff) (src_addr + foff)
      | Format.Rscalar, Format.Rnested nested ->
        patch_record buf mem nested (src_addr + foff) (base + foff)
      | Format.Rfixed n, Format.Rstring ->
        for i = 0 to n - 1 do
          emit_string
            ~at:(base + foff + (i * elem_size))
            (src_addr + foff + (i * elem_size))
        done
      | Format.Rfixed n, Format.Rnested nested ->
        for i = 0 to n - 1 do
          patch_record buf mem nested
            (src_addr + foff + (i * elem_size))
            (base + foff + (i * elem_size))
        done
      | Format.Rvar control, elem -> (
        let count = read_count mem fmt src_addr control in
        let ptr = Memory.read_pointer mem (src_addr + foff) in
        if count = 0 || ptr = Memory.null then begin
          if count <> 0 then
            enc_error "format %s: %S has count %d but a null data pointer"
              fmt.Format.name f.Format.rf_name count;
          patch_pointer ~at:(base + foff) 0
        end
        else begin
          let data = Wbuf.append_mem buf mem ptr (count * elem_size) in
          patch_pointer ~at:(base + foff) data;
          match elem with
          | Format.Rnested nested ->
            for i = 0 to count - 1 do
              patch_record buf mem nested
                (ptr + (i * elem_size))
                (data + (i * elem_size))
            done
          | Format.Rstring ->
            (* char**: each element of the copied pointer block is itself
               a string pointer needing emission and fixup *)
            for i = 0 to count - 1 do
              emit_string
                ~at:(data + (i * elem_size))
                (ptr + (i * elem_size))
            done
          | Format.Rint _ | Format.Rfloat _ | Format.Rchar -> ()
        end)
      | Format.Rscalar, (Format.Rint _ | Format.Rfloat _ | Format.Rchar)
      | Format.Rfixed _, (Format.Rint _ | Format.Rfloat _ | Format.Rchar) ->
        (* plain data: already present in the base copy *)
        ())
    fmt.Format.fields

(** [payload mem fmt addr] encodes the struct at [addr] to an NDR payload
    (no message header; see {!Wire} for framing). *)
let payload (mem : Memory.t) (fmt : Format.t) (addr : int) : bytes =
  (* physical equality covers the hot path; the structural check is only
     for formats registered under a different-but-equal ABI profile *)
  if
    Memory.abi mem != fmt.Format.abi
    && not (Abi.layout_equal (Memory.abi mem) fmt.Format.abi)
  then
    enc_error "format %s was registered for ABI %s but memory uses %s"
      fmt.Format.name fmt.Format.abi.Abi.name (Memory.abi mem).Abi.name;
  let buf = Wbuf.create ((fmt.Format.layout.Layout.size * 2) + 256) in
  let base = emit_record buf mem fmt addr in
  assert (base = 0);
  Wbuf.contents buf

(** One-shot convenience: bind [record] in a scratch memory and encode it.
    Production senders keep their data in a long-lived {!Memory.t} and call
    {!payload}; this exists for tests and examples. *)
let payload_of_value (abi : Abi.t) (fmt : Format.t) (record : Value.t) : bytes =
  let mem = Memory.create abi in
  let addr = Native.store mem fmt record in
  payload mem fmt addr
