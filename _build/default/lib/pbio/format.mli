(** Registered message formats and the per-process format registry: a
    declaration resolved against previously registered formats (the
    Catalog role), laid out for the registry's {!Omf_machine.Abi.t}, and
    assigned the format id that travels in message headers. *)

open Omf_machine

exception Registration_error of string

type relem =
  | Rint of { prim : Abi.prim; signed : bool }
  | Rfloat of Abi.prim
  | Rchar
  | Rstring
  | Rnested of t

and rdim =
  | Rscalar
  | Rfixed of int
  | Rvar of string  (** control field name (same record) *)

and rfield = {
  rf_name : string;
  rf_elem : relem;
  rf_dim : rdim;
  rf_layout : Layout.field;  (** offsets / sizes under [abi] *)
}

and t = {
  name : string;
  id : int;  (** registry-assigned; wire-side formats carry the peer's *)
  abi : Abi.t;
  fields : rfield list;
  layout : Layout.t;
  decl : Ftype.t;  (** the logical declaration this was resolved from *)
}

val resolve : abi:Abi.t -> id:int -> (string -> t option) -> Ftype.t -> t
(** Resolve and lay out a declaration; [lookup] supplies nested formats.
    Raises {!Registration_error} on unknown nested formats, missing or
    non-integer control fields, or empty declarations. *)

val find_field : t -> string -> rfield option
val struct_size : t -> int

val layout_signature : t -> string
(** Stable signature of the physical layout: equal signatures mean
    byte-identical native images for equal logical data (the
    zero-conversion fast path). *)

val same_wire_layout : t -> t -> bool

val pp_io_fields : Stdlib.Format.formatter -> t -> unit
(** Render as PBIO IOField rows (compare the paper's Figures 5/8/11). *)

(** Per-process registry. *)
module Registry : sig
  type format = t
  type t

  val create : Abi.t -> t
  val abi : t -> Abi.t
  val find : t -> string -> format option
  val find_by_id : t -> int -> format option

  val register : t -> Ftype.t -> format
  (** Resolves nested references against current contents (Catalog
      ordering); re-registering a name replaces it (run-time upgrade). *)

  val all : t -> format list
end
