(** Message framing: the compact meta-information that accompanies every
    NDR payload. The header identifies the format (by registry id) and the
    sender's ABI fingerprint; everything else about the format travels
    once, out of band, via {!Format_codec} (format negotiation). Header
    integers are big-endian, independent of either party's byte order. *)

open Omf_machine

exception Frame_error of string

let frame_error fmt = Printf.ksprintf (fun s -> raise (Frame_error s)) fmt

let magic = "OMF1"
let version = 1
let header_length = 24

type header = {
  abi_fingerprint : string;  (** 6 bytes, see {!Abi.fingerprint} *)
  format_id : int;
  base_size : int;  (** size of the base struct within the payload *)
  payload_length : int;
}

let write_header (h : header) : bytes =
  let b = Bytes.make header_length '\000' in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr version);
  Bytes.set b 5 '\000';
  Bytes.blit_string h.abi_fingerprint 0 b 6 Abi.fingerprint_length;
  Endian.write_uint Endian.Big b ~off:12 ~size:4 (Int64.of_int h.format_id);
  Endian.write_uint Endian.Big b ~off:16 ~size:4 (Int64.of_int h.base_size);
  Endian.write_uint Endian.Big b ~off:20 ~size:4 (Int64.of_int h.payload_length);
  b

let read_header (b : bytes) : header =
  if Bytes.length b < header_length then
    frame_error "truncated header: %d bytes" (Bytes.length b);
  if not (String.equal (Bytes.sub_string b 0 4) magic) then
    frame_error "bad magic %S" (Bytes.sub_string b 0 4);
  let v = Char.code (Bytes.get b 4) in
  if v <> version then frame_error "unsupported version %d" v;
  let u32 off = Int64.to_int (Endian.read_uint Endian.Big b ~off ~size:4) in
  { abi_fingerprint = Bytes.sub_string b 6 Abi.fingerprint_length
  ; format_id = u32 12
  ; base_size = u32 16
  ; payload_length = u32 20 }

(** [message ?id fmt payload] frames an NDR payload produced by
    {!Encode.payload} for [fmt]. The format id defaults to the sender's
    registry id (per-connection negotiation); pass [?id] to use a global
    id from a format server instead. *)
let message ?id (fmt : Format.t) (payload : bytes) : bytes =
  let h =
    { abi_fingerprint = Abi.fingerprint fmt.Format.abi
    ; format_id = Option.value id ~default:fmt.Format.id
    ; base_size = fmt.Format.layout.Layout.size
    ; payload_length = Bytes.length payload }
  in
  Bytes.cat (write_header h) payload

(** [split msg] returns the parsed header and the payload. *)
let split (msg : bytes) : header * bytes =
  let h = read_header msg in
  if Bytes.length msg <> header_length + h.payload_length then
    frame_error "message length %d does not match header (%d + %d)"
      (Bytes.length msg) header_length h.payload_length;
  (h, Bytes.sub msg header_length h.payload_length)
