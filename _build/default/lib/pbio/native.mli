(** Binding between typed {!Value.t}s and native in-memory byte images:
    [store] constructs exactly the bytes a C program on that ABI would
    hold; [load] is the inverse.

    Conventions: [char[N]] fields bind from/to strings (truncated at the
    first NUL); dynamic-array control fields may be omitted (filled from
    the array length) and are validated when present; strings always
    store as non-null pointers. *)

open Omf_machine

exception Bind_error of string

val store_into : Memory.t -> Format.t -> int -> Value.t -> unit
(** Write a record into an existing struct block. *)

val store : Memory.t -> Format.t -> Value.t -> int
(** Allocate a struct block, write the record, return its address. *)

val load_from : Memory.t -> Format.t -> int -> Value.t
val load : Memory.t -> Format.t -> int -> Value.t
(** Read the struct back as a record in declaration field order (control
    fields included). *)
